package ned

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// This file is the sharded-equivalence suite: whatever the shard count,
// the engine must answer node-identically to the single-index engine —
// statically, under churn, and across snapshot round-trips — on every
// backend. It also pins the concurrency contracts the sharding exists
// for: Stats/ResetStats racing mutations, and queries proceeding while
// other shards rebuild.

// shardCorpora builds one corpus per shard count over the same nodes.
func shardCorpora(t *testing.T, g *Graph, k int, b Backend, shardCounts []int, extra ...CorpusOption) map[int]*Corpus {
	t.Helper()
	out := make(map[int]*Corpus, len(shardCounts))
	for _, n := range shardCounts {
		opts := append([]CorpusOption{WithBackend(b), WithShards(n)}, extra...)
		c, err := NewCorpus(g, k, opts...)
		if err != nil {
			t.Fatalf("NewCorpus(%v, shards=%d): %v", b, n, err)
		}
		out[n] = c
	}
	return out
}

// assertShardEquivalence runs a query battery against every corpus and
// requires node-identical answers to the shards=1 reference.
func assertShardEquivalence(t *testing.T, label string, corpora map[int]*Corpus, gq *Graph, k, rounds int, seed int64) {
	t.Helper()
	ctx := context.Background()
	ref := corpora[1]
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < rounds; q++ {
		sig := NewSignature(gq, NodeID(rng.Intn(gq.NumNodes())), k)
		l := 1 + rng.Intn(10)
		r := rng.Intn(5)
		wantKNN, err := ref.KNNSignature(ctx, sig, l)
		if err != nil {
			t.Fatalf("%s: reference KNN: %v", label, err)
		}
		wantRange, err := ref.Range(ctx, sig, r)
		if err != nil {
			t.Fatalf("%s: reference Range: %v", label, err)
		}
		wantNearest, err := ref.NearestSet(ctx, sig)
		if err != nil {
			t.Fatalf("%s: reference NearestSet: %v", label, err)
		}
		for n, c := range corpora {
			if n == 1 {
				continue
			}
			got, err := c.KNNSignature(ctx, sig, l)
			if err != nil {
				t.Fatalf("%s shards=%d: KNN: %v", label, n, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(wantKNN) {
				t.Errorf("%s query %d shards=%d: KNN %v, shards=1 %v", label, q, n, got, wantKNN)
			}
			gotRange, err := c.Range(ctx, sig, r)
			if err != nil {
				t.Fatalf("%s shards=%d: Range: %v", label, n, err)
			}
			if fmt.Sprint(gotRange) != fmt.Sprint(wantRange) {
				t.Errorf("%s query %d shards=%d: Range %v, shards=1 %v", label, q, n, gotRange, wantRange)
			}
			gotNearest, err := c.NearestSet(ctx, sig)
			if err != nil {
				t.Fatalf("%s shards=%d: NearestSet: %v", label, n, err)
			}
			if fmt.Sprint(gotNearest) != fmt.Sprint(wantNearest) {
				t.Errorf("%s query %d shards=%d: NearestSet %v, shards=1 %v", label, q, n, gotNearest, wantNearest)
			}
		}
	}
}

// TestCorpusShardedEquivalence: KNN/Range/NearestSet answers are
// node-identical between WithShards(1) and WithShards(4) across all
// four backends — statically, after churn batches (where the amortized
// per-shard rebuild path fires), and after snapshot round-trips into
// different shard counts.
func TestCorpusShardedEquivalence(t *testing.T) {
	const k = 2
	shardCounts := []int{1, 4}
	gCorpus := randomGraph(80, 170, 930)
	gQuery := randomGraph(50, 100, 931)

	for _, b := range allBackends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			corpora := shardCorpora(t, gCorpus, k, b, shardCounts, WithRebuildThreshold(0.3))
			assertShardEquivalence(t, "static", corpora, gQuery, k, 6, 932)

			// Churn: identical mutation batches on every corpus, queried
			// after each round.
			rng := rand.New(rand.NewSource(933))
			live := map[NodeID]bool{}
			for v := 0; v < gCorpus.NumNodes(); v++ {
				live[NodeID(v)] = true
			}
			for round := 0; round < 4; round++ {
				var rm []NodeID
				for _, v := range rng.Perm(gCorpus.NumNodes())[:8] {
					if live[NodeID(v)] {
						rm = append(rm, NodeID(v))
						delete(live, NodeID(v))
					}
				}
				var add []NodeID
				for v := 0; v < gCorpus.NumNodes() && len(add) < 4; v++ {
					if !live[NodeID(v)] && rng.Intn(3) == 0 {
						add = append(add, NodeID(v))
						live[NodeID(v)] = true
					}
				}
				for _, c := range corpora {
					if err := c.Remove(rm...); err != nil {
						t.Fatalf("round %d: Remove: %v", round, err)
					}
					if err := c.Insert(add...); err != nil {
						t.Fatalf("round %d: Insert: %v", round, err)
					}
				}
				assertShardEquivalence(t, fmt.Sprintf("churn round %d", round), corpora, gQuery, k, 3, 934+int64(round))
			}

			// Snapshot round-trip: the churned sharded corpus reloaded into
			// 1, 3, and its own shard count must keep answering identically.
			var buf bytes.Buffer
			if err := corpora[4].Snapshot(&buf); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			reloaded := map[int]*Corpus{}
			for _, n := range []int{1, 3, 4} {
				c, err := LoadCorpus(bytes.NewReader(buf.Bytes()), WithShards(n))
				if err != nil {
					t.Fatalf("LoadCorpus(shards=%d): %v", n, err)
				}
				if s := c.Stats(); s.Shards != n || s.Nodes != len(live) {
					t.Fatalf("reloaded shards=%d: stats %+v, want %d nodes", n, s, len(live))
				}
				reloaded[n] = c
			}
			assertShardEquivalence(t, "reloaded", reloaded, gQuery, k, 4, 939)
		})
	}
}

// TestCorpusShardedCascadeEquivalence covers the filter–verify cascade
// end to end: the corpus path (profiled items, precompiled query
// profiles, best-first evaluation, tier pruning) must answer
// node-identically to the cascade-free ground truth — an exhaustive
// unbudgeted TopL over raw signatures — on every backend, at shard
// counts 1 and 4, and the per-tier prune counters must aggregate
// consistently across the shards.
func TestCorpusShardedCascadeEquivalence(t *testing.T) {
	ctx := context.Background()
	const k = 2
	gCorpus := randomGraph(90, 200, 950)
	gQuery := randomGraph(40, 90, 951)
	var nodes []NodeID
	for v := 0; v < gCorpus.NumNodes(); v++ {
		nodes = append(nodes, NodeID(v))
	}
	cands := Signatures(gCorpus, nodes, k)

	for _, b := range allBackends {
		for _, shards := range []int{1, 4} {
			c, err := NewCorpus(gCorpus, k, WithBackend(b), WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 6; q++ {
				sig := NewSignature(gQuery, NodeID(q*5), k)
				want := TopL(sig, cands, 7)
				got, err := c.KNNSignature(ctx, sig, 7)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%v shards=%d query %d: cascade KNN %v, exhaustive TopL %v",
						b, shards, q, got, want)
				}
			}
			s := c.Stats()
			if s.LowerBoundPrunes != s.SizePrunes+s.PaddingPrunes+s.LabelPrunes {
				t.Errorf("%v shards=%d: LowerBoundPrunes %d != size %d + padding %d + label %d",
					b, shards, s.LowerBoundPrunes, s.SizePrunes, s.PaddingPrunes, s.LabelPrunes)
			}
			c.ResetStats()
			if s := c.Stats(); s.SizePrunes != 0 || s.PaddingPrunes != 0 || s.LabelPrunes != 0 {
				t.Errorf("%v shards=%d: ResetStats left tier counters %d/%d/%d",
					b, shards, s.SizePrunes, s.PaddingPrunes, s.LabelPrunes)
			}
		}
	}

	// Regression (first-query profiling order): the very first query of
	// a lazily built corpus must be profiled AFTER the build interns the
	// corpus shapes — profiled before, its label multisets would count
	// every shared shape as a mismatch and the label tier would prune
	// true neighbors. Fresh corpus per query, l=1 keeps the threshold
	// tight enough to expose any invalid bound.
	for q := 0; q < 4; q++ {
		sig := NewSignature(gQuery, NodeID(q*7), k)
		want := TopL(sig, cands, 1)
		for _, b := range allBackends {
			first, err := NewCorpus(gCorpus, k, WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			got, err := first.KNNSignature(ctx, sig, 1)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%v first-ever query %d: %v, exhaustive %v", b, q, got, want)
			}
		}
	}

	// The scan backends precompile every candidate's bounds, so a
	// small-l query over a 90-node corpus must show tier pruning at work
	// (the metric trees may legitimately prune structurally instead).
	c, err := NewCorpus(gCorpus, k, WithBackend(BackendPrunedLinear), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 6; q++ {
		if _, err := c.KNNSignature(ctx, NewSignature(gQuery, NodeID(q), k), 2); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.LowerBoundPrunes == 0 {
		t.Errorf("pruned backend: no cascade prunes across %d queries (stats %+v)", 6, s)
	}
}

// TestCorpusShardedBlockKernels extends the sharded-equivalence suite
// to the columnar block path: on every backend at shards 1 and 4, KNN
// and Range answers must agree node-identically across shard counts —
// and the BlockCandidates counter must prove the scan backends actually
// swept their candidates through the block kernels per shard (the tree
// backends, whose traversal is per-candidate, must report zero). The
// survivor counters must respect the tier chain.
func TestCorpusShardedBlockKernels(t *testing.T) {
	ctx := context.Background()
	const k = 2
	gCorpus := randomGraph(85, 190, 960)
	gQuery := randomGraph(45, 95, 961)

	for _, b := range allBackends {
		scan := b == BackendLinear || b == BackendPrunedLinear
		corpora := shardCorpora(t, gCorpus, k, b, []int{1, 4})
		assertShardEquivalence(t, fmt.Sprintf("%v block", b), corpora, gQuery, k, 5, 962)
		for shards, c := range corpora {
			s := c.Stats()
			if scan && s.BlockCandidates == 0 {
				t.Errorf("%v shards=%d: scan backend served queries without the block kernels (stats %+v)",
					b, shards, s)
			}
			if !scan && s.BlockCandidates != 0 {
				t.Errorf("%v shards=%d: tree backend reported %d block candidates",
					b, shards, s.BlockCandidates)
			}
			if s.BlockSizeSurvivors < s.BlockPaddingSurvivors || s.BlockPaddingSurvivors < s.BlockLabelSurvivors ||
				s.BlockCandidates < s.BlockSizeSurvivors {
				t.Errorf("%v shards=%d: survivor chain broken: candidates %d >= size %d >= padding %d >= label %d",
					b, shards, s.BlockCandidates, s.BlockSizeSurvivors, s.BlockPaddingSurvivors, s.BlockLabelSurvivors)
			}
			c.ResetStats()
			if s := c.Stats(); s.BlockCandidates != 0 || s.BlockLabelSurvivors != 0 {
				t.Errorf("%v shards=%d: ResetStats left block counters %+v", b, shards, s)
			}
		}
	}

	// Churn keeps the block path live: the scan backends recompile their
	// block on every mutation, so answers and counters must hold after
	// removals and re-inserts at both shard counts.
	for _, b := range []Backend{BackendLinear, BackendPrunedLinear} {
		corpora := shardCorpora(t, gCorpus, k, b, []int{1, 4})
		for _, c := range corpora {
			if err := c.Remove(NodeID(3), NodeID(11), NodeID(40)); err != nil {
				t.Fatal(err)
			}
			if err := c.Insert(NodeID(11)); err != nil {
				t.Fatal(err)
			}
		}
		assertShardEquivalence(t, fmt.Sprintf("%v block churn", b), corpora, gQuery, k, 4, 963)
		for shards, c := range corpora {
			if s := c.Stats(); s.BlockCandidates == 0 {
				t.Errorf("%v shards=%d: block kernels went dark after churn (stats %+v)", b, shards, s)
			}
		}
		// A Range through the corpus surface drives the bitmap kernel path.
		sig := NewSignature(gQuery, NodeID(7), k)
		for shards, c := range corpora {
			if _, err := c.Range(ctx, sig, 3); err != nil {
				t.Fatalf("%v shards=%d Range: %v", b, shards, err)
			}
		}
	}
}

// TestCorpusShardedNodeQueries: node-ID KNN (the path that resolves the
// query item out of the owning shard's table) agrees across shard
// counts, directed corpora included.
func TestCorpusShardedNodeQueries(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(940))
	b := NewGraphBuilder(40, true)
	for i := 0; i < 100; i++ {
		u, v := NodeID(rng.Intn(40)), NodeID(rng.Intn(40))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	for _, backend := range allBackends {
		c1, err := NewCorpus(g, 2, WithBackend(backend), WithDirected(), WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		c4, err := NewCorpus(g, 2, WithBackend(backend), WithDirected(), WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v += 7 {
			want, err := c1.KNN(ctx, NodeID(v), 6)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c4.KNN(ctx, NodeID(v), 6)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%v directed node %d: shards=4 KNN %v, shards=1 %v", backend, v, got, want)
			}
		}
	}
}

// TestCorpusShardStats pins the shard-visible statistics: the per-shard
// node counts must partition the corpus, and the configured shard count
// must be reported.
func TestCorpusShardStats(t *testing.T) {
	g := randomGraph(60, 120, 941)
	c, err := NewCorpus(g, 2, WithShards(5), WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Shards != 5 || len(s.ShardNodes) != 5 {
		t.Fatalf("Shards = %d with %d ShardNodes, want 5", s.Shards, len(s.ShardNodes))
	}
	sum := 0
	for _, n := range s.ShardNodes {
		sum += n
	}
	if sum != s.Nodes || s.Nodes != g.NumNodes() {
		t.Errorf("ShardNodes sum %d, Nodes %d, graph %d", sum, s.Nodes, g.NumNodes())
	}
}

// TestCorpusStatsRaceWithMutation is the Stats/ResetStats concurrency
// regression test: under -race, Stats, ResetStats, queries, and
// mutations must all interleave freely — per-shard counters are read
// and reset atomically, never under a mutation's lock.
func TestCorpusStatsRaceWithMutation(t *testing.T) {
	g := randomGraph(60, 120, 942)
	c, err := NewCorpus(g, 2, WithBackend(BackendVP), WithShards(4), WithRebuildThreshold(0.2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.KNN(ctx, 0, 3); err != nil { // build before the hammering
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				v := NodeID(30 + rng.Intn(30))
				if err := c.Remove(v); err != nil {
					t.Errorf("Remove: %v", err)
					return
				}
				if err := c.Insert(v); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(int64(w))
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 30; i++ {
				s := c.Stats()
				if s.Nodes < 30 {
					t.Errorf("Stats.Nodes = %d mid-churn, want >= 30", s.Nodes)
					return
				}
				if rng.Intn(10) == 0 {
					c.ResetStats()
				}
				if _, err := c.KNN(ctx, NodeID(rng.Intn(30)), 3); err != nil {
					t.Errorf("KNN: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if s := c.Stats(); s.Nodes != g.NumNodes() {
		t.Errorf("Nodes = %d after balanced churn, want %d", s.Nodes, g.NumNodes())
	}
}

// TestCorpusShardedUpdateGraph drives UpdateGraph on a sharded corpus
// and checks the result against a fresh build on the new version.
func TestCorpusShardedUpdateGraph(t *testing.T) {
	ctx := context.Background()
	const k = 2
	g1 := randomGraph(50, 100, 943)
	c, err := NewCorpus(g1, k, WithBackend(BackendBK), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(ctx, 0, 5); err != nil { // materialize
		t.Fatal(err)
	}
	// New version: drop one edge, add two.
	b := NewGraphBuilder(50, false)
	edges := g1.Edges()
	for _, e := range edges[1:] {
		b.AddEdge(e.U, e.V)
	}
	b.AddEdge(1, 47)
	b.AddEdge(12, 33)
	g2 := b.Build()
	if _, err := c.UpdateGraph(g2); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCorpus(g2, k, WithBackend(BackendLinear), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	gq := randomGraph(30, 60, 944)
	for q := 0; q < 5; q++ {
		sig := NewSignature(gq, NodeID(q), k)
		got, err := c.KNNSignature(ctx, sig, 8)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.KNNSignature(ctx, sig, 8)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("query %d after sharded UpdateGraph: got %v, want %v", q, got, want)
		}
	}
}

// TestCorpusShardedConcurrentChurn hammers a sharded corpus with
// queries and mutations concurrently under -race: the epoch protocol
// must keep every interleaving consistent, including amortized rebuilds
// firing mid-traffic.
func TestCorpusShardedConcurrentChurn(t *testing.T) {
	g := randomGraph(60, 120, 945)
	for _, b := range allBackends {
		c, err := NewCorpus(g, 2, WithBackend(b), WithShards(4), WithRebuildThreshold(0.15))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 15; i++ {
					if _, err := c.KNN(ctx, NodeID(rng.Intn(30)), 4); err != nil {
						t.Errorf("%v concurrent KNN: %v", b, err)
						return
					}
					c.Stats()
				}
			}(int64(w))
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(200 + seed))
				for i := 0; i < 10; i++ {
					v := NodeID(30 + rng.Intn(30))
					if err := c.Remove(v); err != nil {
						t.Errorf("%v concurrent Remove: %v", b, err)
						return
					}
					if err := c.Insert(v); err != nil {
						t.Errorf("%v concurrent Insert: %v", b, err)
						return
					}
				}
			}(int64(w))
		}
		wg.Wait()
		if s := c.Stats(); s.Nodes != g.NumNodes() {
			t.Errorf("%v: Nodes = %d after balanced churn, want %d", b, s.Nodes, g.NumNodes())
		}
	}
}
