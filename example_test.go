package ned_test

import (
	"context"
	"fmt"

	"ned"
)

// Two tiny fixture graphs: a path and a star, so structural differences
// are obvious.
func fixtures() (*ned.Graph, *ned.Graph) {
	bp := ned.NewGraphBuilder(5, false)
	for i := 0; i < 4; i++ {
		bp.AddEdge(ned.NodeID(i), ned.NodeID(i+1))
	}
	bs := ned.NewGraphBuilder(5, false)
	for i := 1; i < 5; i++ {
		bs.AddEdge(0, ned.NodeID(i))
	}
	return bp.Build(), bs.Build()
}

func ExampleDistance() {
	path, star := fixtures()
	// The middle of a path against the center of a star, comparing two
	// levels of neighborhood: delete the two depth-2 leaves, insert two
	// depth-1 leaves.
	fmt.Println(ned.Distance(path, 2, star, 0, 2))
	// Against another path interior node: identical neighborhoods.
	fmt.Println(ned.Distance(path, 2, path, 2, 2))
	// Output:
	// 4
	// 0
}

func ExampleTEDStarReport() {
	path, star := fixtures()
	t1 := ned.KAdjacentTree(path, 2, 2)
	t2 := ned.KAdjacentTree(star, 0, 2)
	rep := ned.TEDStarReport(t1, t2)
	fmt.Println("distance:", rep.Distance)
	for _, lc := range rep.Levels {
		fmt.Printf("depth %d: pad %d, move %d\n", lc.Depth, lc.Padding, lc.Matching)
	}
	// Output:
	// distance: 4
	// depth 0: pad 0, move 0
	// depth 1: pad 2, move 0
	// depth 2: pad 2, move 0
}

func ExampleTopL() {
	path, star := fixtures()
	query := ned.NewSignature(path, 2, 1) // path interior: degree 2
	var nodes []ned.NodeID
	for v := 0; v < star.NumNodes(); v++ {
		nodes = append(nodes, ned.NodeID(v))
	}
	candidates := ned.Signatures(star, nodes, 1)
	for _, n := range ned.TopL(query, candidates, 2) {
		fmt.Printf("node %d at distance %d\n", n.Node, n.Dist)
	}
	// Output:
	// node 1 at distance 1
	// node 2 at distance 1
}

func ExampleNewCorpus() {
	path, star := fixtures()
	// A Corpus serves similarity queries over one graph's nodes; the
	// query arrives as a signature from any graph.
	corpus, err := ned.NewCorpus(star, 1, ned.WithBackend(ned.BackendLinear))
	if err != nil {
		panic(err)
	}
	query := ned.NewSignature(path, 2, 1) // path interior: degree 2
	top, err := corpus.KNNSignature(context.Background(), query, 2)
	if err != nil {
		panic(err)
	}
	for _, n := range top {
		fmt.Printf("node %d at distance %d\n", n.Node, n.Dist)
	}
	// Output:
	// node 1 at distance 1
	// node 2 at distance 1
}

func ExampleCorpus_NearestSet() {
	path, star := fixtures()
	corpus, err := ned.NewCorpus(star, 1)
	if err != nil {
		panic(err)
	}
	// Every spoke of the star ties at distance 1 from a path interior
	// node: the nearest "neighbor" is a 4-node set (§13.3).
	query := ned.NewSignature(path, 2, 1)
	nearest, err := corpus.NearestSet(context.Background(), query)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(nearest), "nodes at distance", nearest[0].Dist)
	// Output:
	// 4 nodes at distance 1
}

func ExampleTEDStarLowerBound() {
	path, star := fixtures()
	t1 := ned.KAdjacentTree(path, 0, 3)
	t2 := ned.KAdjacentTree(star, 0, 3)
	fmt.Println("bound:", ned.TEDStarLowerBound(t1, t2), "<= distance:", ned.TEDStar(t1, t2))
	// Output:
	// bound: 5 <= distance: 5
}

func ExampleSimRankInterGraph() {
	path, star := fixtures()
	// Link-based similarity is identically zero across graphs — the
	// paper's §2 argument, executable.
	fmt.Println(ned.SimRankInterGraph(path, 0, star, 0))
	// Output:
	// 0
}
