package ned

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"ned/internal/faultfs"
	"ned/internal/fsx"
	"ned/internal/ned"
	"ned/internal/segment"
)

// Durable corpora. A durable directory holds numbered generations of
// two files: a binary segment checkpoint (the full corpus — items,
// compiled profiles, shape dictionary, backing graph — loadable
// without re-extraction or re-profiling) and a mutation write-ahead
// log. Every Insert, Remove, and UpdateGraph appends a checksummed
// record to the active log BEFORE its epoch publishes, so an
// acknowledged mutation survives a crash (under FsyncAlways) and an
// unacknowledged one never half-applies: recovery loads the latest
// checkpoint and replays the log tail, dropping only a torn final
// frame. Checkpoint rotates the log and supersedes it with a fresh
// segment, truncating recovery time and reclaiming the old
// generations.
//
// Failure model. Storage failure is a state, not a surprise: when a
// WAL commit or a checkpoint write fails (EIO, ENOSPC, a failed
// fsync), the corpus enters a sticky degraded mode — the post-failure
// world is unknowable (the kernel may have dropped the dirty pages;
// the fsync-and-retry lie is exactly the Postgres fsync-gate bug), so
// the engine refuses to pretend. While degraded: mutations fail fast
// with ErrDegraded and are never acknowledged; lock-free reads keep
// serving the last published epochs untouched; Checkpoint is the one
// road back, clearing the state only after a verified full-segment
// rewrite lands a provably-whole checkpoint on disk and a fresh WAL
// starts beside it. Recovery (OpenDurable) treats an unreadable
// checkpoint the same way: quarantine it aside, fall back to the
// previous generation plus the surviving WAL tail — never guess.
//
// Attach durability with MakeDurable before the corpus is shared (the
// attach itself is not atomic with respect to concurrent mutations);
// afterwards mutations, queries, and checkpoints are safe
// concurrently. Reopen with OpenDurable.

// ErrNotDurable reports a durability operation on a corpus that has no
// durable directory attached.
var ErrNotDurable = errors.New("ned: corpus is not durable (attach with MakeDurable or load with OpenDurable)")

// ErrDegraded reports a mutation refused because the corpus's durable
// storage failed and the engine can no longer promise the mutation
// would survive. Reads are unaffected. A successful Checkpoint — a
// verified full-segment rewrite — clears the state.
var ErrDegraded = errors.New("ned: corpus degraded: durable storage failed; mutations refused until a verified checkpoint succeeds")

// DegradedInfo describes why a corpus is degraded. It is immutable
// once published.
type DegradedInfo struct {
	Reason string    // which operation failed ("wal commit", "checkpoint write", ...)
	Cause  error     // the underlying I/O error
	Since  time.Time // when the failure was observed
}

// FsyncPolicy re-exports the WAL fsync policy: FsyncAlways fsyncs
// every committed mutation batch, FsyncNone leaves flushing to the OS
// (a crash may lose the latest acknowledged batches, never corrupt
// earlier ones).
type FsyncPolicy = segment.FsyncPolicy

const (
	FsyncAlways = segment.FsyncAlways
	FsyncNone   = segment.FsyncNone
)

// ParseFsyncPolicy parses the flag spellings "always" and "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return segment.ParseFsyncPolicy(s) }

// HasDurableState reports whether dir holds an initialized durable
// corpus (at least one checkpoint).
func HasDurableState(dir string) bool { return segment.HasState(dir) }

// degrade records the first durable-storage failure. The state is
// sticky: later failures while already degraded keep the original
// cause (first fault wins — it is the one that explains the rest).
func (c *Corpus) degrade(reason string, cause error) {
	info := &DegradedInfo{Reason: reason, Cause: cause, Since: time.Now()}
	c.degraded.CompareAndSwap(nil, info)
}

// degradedErr returns the typed refusal for a degraded corpus, nil
// while healthy. Mutation paths call it at entry for a fast fail;
// commitShard still catches the race where degradation lands after
// the check.
func (c *Corpus) degradedErr() error {
	info := c.degraded.Load()
	if info == nil {
		return nil
	}
	return fmt.Errorf("%w (%s: %v)", ErrDegraded, info.Reason, info.Cause)
}

// Degraded returns the degraded-mode state, nil while healthy.
func (c *Corpus) Degraded() *DegradedInfo { return c.degraded.Load() }

// MakeDurable attaches a durable directory to the corpus: it
// materializes the signatures, writes the generation-0 checkpoint
// segment, and opens the generation-0 mutation log that every
// subsequent mutation commits through. The directory is created if
// missing and must not already hold durable state (that is
// OpenDurable's job). Call it before the corpus is shared with
// concurrent mutators; mutations racing the attach itself may escape
// the log.
func (c *Corpus) MakeDurable(dir string, policy FsyncPolicy) error {
	c.gmu.Lock()
	c.materializeAllLocked()
	c.gmu.Unlock()
	c.durMu.Lock()
	defer c.durMu.Unlock()
	if c.wal.Load() != nil {
		return fmt.Errorf("ned: corpus is already durable in %s", c.durableDir)
	}
	if err := faultfs.Default().MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ned: creating durable directory: %w", err)
	}
	if segment.HasState(dir) {
		return fmt.Errorf("ned: %s already holds durable corpus state (open it with OpenDurable)", dir)
	}
	// A prior process may have died between creating an atomic-write
	// temporary and renaming it; orphans are garbage, not state.
	fsx.SweepTemps(dir)
	c.durableDir = dir
	if err := c.writeCheckpointFile(0); err != nil {
		// The atomic write may have renamed the segment into place
		// before a later step (directory sync, verify readback) failed.
		// A failed attach made no durable promise, so it must not leave
		// a loadable one behind.
		faultfs.Default().Remove(segment.CheckpointPath(dir, 0))
		c.durableDir = ""
		return err
	}
	w, err := segment.CreateWAL(segment.WALPath(dir, 0), policy)
	if err != nil {
		faultfs.Default().Remove(segment.CheckpointPath(dir, 0))
		c.durableDir = ""
		return err
	}
	c.walSeq = 0
	c.wal.Store(w)
	return nil
}

// OpenDurable recovers a corpus from a durable directory: it loads the
// newest loadable checkpoint segment, replays every log generation at
// or above it in order (a torn final frame — the residue of a crash
// mid-append — is dropped; corruption anywhere else fails loudly), and
// resumes appending to the newest log at its validated prefix. The
// result answers every query exactly as the original did after its
// last committed mutation.
//
// A checkpoint that fails to open or decode is quarantined — renamed
// to <name>.quarantined so it stops shadowing older generations — and
// recovery falls back to the next-lower checkpoint. The WAL
// generations between the fallback checkpoint and the head still
// replay, so no committed mutation is lost as long as one good
// checkpoint survives (checkpoint cleanup only runs after the
// replacing generation verifies, so one always should).
//
// Options apply as in LoadCorpus; the checkpoint's embedded graph is
// attached unless WithGraph overrides it.
func OpenDurable(dir string, policy FsyncPolicy, opts ...CorpusOption) (*Corpus, error) {
	// Sweep atomic-write temporaries a dead process left behind before
	// looking at anything else; they are never state.
	fsx.SweepTemps(dir)
	ckpts, err := segment.Checkpoints(dir)
	if err != nil {
		return nil, err
	}
	if len(ckpts) == 0 {
		return nil, fmt.Errorf("ned: %s holds no durable corpus state", dir)
	}

	var (
		c           *Corpus
		seq         int64
		quarantined int64
		firstErr    error
	)
	for _, s := range ckpts {
		path := segment.CheckpointPath(dir, s)
		loaded, lerr := loadCheckpoint(path, opts...)
		if lerr == nil {
			c, seq = loaded, s
			break
		}
		if os.IsNotExist(lerr) {
			continue
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("ned: checkpoint %s: %w", path, lerr)
		}
		// Unreadable: rename it aside so it stops shadowing older
		// generations, and fall back. The bytes are kept for inspection.
		if qerr := segment.Quarantine(path); qerr != nil {
			return nil, fmt.Errorf("ned: checkpoint %s unreadable (%v) and quarantine failed: %w", path, lerr, qerr)
		}
		quarantined++
	}
	if c == nil {
		return nil, fmt.Errorf("ned: no loadable checkpoint in %s (%d quarantined): %w", dir, quarantined, firstErr)
	}
	c.quarantined.Store(quarantined)

	// Replay the log generations the checkpoint does not cover. A
	// rotation advances the active generation even when the checkpoint
	// that prompted it failed to write, so several trailing generations
	// may hold committed mutations; they replay in order.
	seqs, err := segment.WALSeqs(dir)
	if err != nil {
		return nil, err
	}
	activeSeq, activeValid, activeRecs := seq, int64(0), int64(0)
	haveActive := false
	for _, s := range seqs {
		if s < seq {
			continue
		}
		recs, valid, err := segment.ReplayWAL(segment.WALPath(dir, s))
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			if err := c.applyRecovered(rec); err != nil {
				return nil, fmt.Errorf("ned: replaying %s: %w", segment.WALPath(dir, s), err)
			}
		}
		activeSeq, activeValid, activeRecs = s, valid, int64(len(recs))
		haveActive = true
	}

	var w *segment.WAL
	if haveActive {
		w, err = segment.OpenWALAt(segment.WALPath(dir, activeSeq), activeValid, activeRecs, policy)
	} else {
		w, err = segment.CreateWAL(segment.WALPath(dir, activeSeq), policy)
	}
	if err != nil {
		return nil, err
	}
	c.durableDir = dir
	c.walSeq = activeSeq
	c.wal.Store(w)
	// Generations below the checkpoint are garbage a crashed cleanup
	// may have left behind.
	if err := segment.RemoveObsolete(dir, seq); err != nil {
		return nil, err
	}
	return c, nil
}

// loadCheckpoint opens and fully decodes one checkpoint segment.
func loadCheckpoint(path string, opts ...CorpusOption) (*Corpus, error) {
	f, err := faultfs.Default().Open(path)
	if err != nil {
		return nil, err
	}
	c, err := LoadCorpus(f, opts...)
	f.Close()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// applyRecovered applies one replayed mutation record to the (not yet
// shared) corpus: upserts re-profile their trees against the corpus
// dictionary and land in their shard's item table, deletes drop
// theirs. Records are absolute, so re-applying a suffix is idempotent.
// A shard the replay touches drops any index that arrived prebuilt
// with the checkpoint — the dump describes the item set at checkpoint
// time, and an index answering for since-removed nodes is exactly the
// corruption replay exists to prevent; the shard re-indexes lazily.
func (c *Corpus) applyRecovered(rec segment.Record) error {
	for i := range rec.Upserts {
		it := rec.Upserts[i]
		if it.K != c.k {
			return fmt.Errorf("wal upsert of node %d has k=%d, corpus has k=%d", it.Node, it.K, c.k)
		}
		if c.cfg.directed != (it.In != nil) {
			return fmt.Errorf("wal upsert of node %d disagrees with corpus directedness", it.Node)
		}
		ned.ProfileItem(&it, c.dict)
		ep := c.shardFor(it.Node).epoch.Load()
		ep.byNode[it.Node] = it
		ep.ix = nil
	}
	for _, v := range rec.Deletes {
		ep := c.shardFor(v).epoch.Load()
		delete(ep.byNode, v)
		ep.ix = nil
	}
	return nil
}

// commitShard publishes ne as sh's current epoch. On a durable corpus
// the mutation (upserts = the full post-mutation items, deletes = the
// nodes removed) first appends to the WAL, and the publish runs under
// the log's commit mutex — the ordering Checkpoint relies on to cut a
// log generation consistent with the published epochs. An append
// failure leaves the epoch unpublished — the mutation never happened,
// for queries and recovery alike — and degrades the corpus: the WAL is
// wedged, so no later mutation could be made durable either, and
// acknowledging it would be a lie. Callers hold sh.mu.
func (c *Corpus) commitShard(sh *corpusShard, ne *shardEpoch, upserts []ned.Item, deletes []NodeID) error {
	w := c.wal.Load()
	if w == nil || (len(upserts) == 0 && len(deletes) == 0) {
		sh.epoch.Store(ne)
		return nil
	}
	err := w.Commit(segment.Record{Upserts: upserts, Deletes: deletes}, func() {
		sh.epoch.Store(ne)
	})
	if err != nil {
		c.degrade("wal commit", err)
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	return nil
}

// Checkpoint writes the current corpus as a fresh checkpoint segment
// and rotates the mutation log: the log is cut atomically with an
// epoch snapshot, the segment is written outside all locks (queries
// and mutations keep running), the written file is re-read and
// structurally verified, and only then are the superseded generations
// deleted — a torn or bit-flipped checkpoint must never destroy the
// generations that could recover it. If any step fails the corpus
// degrades but stays consistent on disk: the surviving generations
// recover every committed mutation.
//
// On a degraded corpus, Checkpoint is the recovery path: it attempts
// the verified full-segment rewrite that is the only way back to
// accepting mutations.
func (c *Corpus) Checkpoint() error {
	c.durMu.Lock()
	defer c.durMu.Unlock()
	return c.checkpointLocked()
}

// checkpointLocked is Checkpoint under an already-held durMu; it never
// touches gmu (durable corpora are permanently materialized), so
// UpdateGraph can checkpoint while holding the engine write gate.
func (c *Corpus) checkpointLocked() error {
	w := c.wal.Load()
	if w == nil {
		return ErrNotDurable
	}
	if c.degraded.Load() != nil {
		return c.recoverLocked()
	}
	next := c.walSeq + 1
	if err := w.Rotate(segment.WALPath(c.durableDir, next), nil); err != nil {
		// The rotate either failed to create the new generation (old log
		// intact) or wedged syncing the old one; both mean durable
		// storage is misbehaving under us.
		c.degrade("wal rotate", err)
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	// The active log IS generation next now, even if the segment write
	// below fails: recovery replays every generation at or above the
	// latest checkpoint, so advancing unconditionally keeps the naming
	// truthful.
	c.walSeq = next
	if err := c.writeCheckpointFile(next); err != nil {
		c.degrade("checkpoint write", err)
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	if err := c.verifyCheckpointFile(next); err != nil {
		// The rename landed but the bytes do not read back whole. Leave
		// the generations below in place — they are the recovery story —
		// and quarantine the bad file so a crash right now does not
		// recover from it.
		if segment.Quarantine(segment.CheckpointPath(c.durableDir, next)) == nil {
			c.quarantined.Add(1)
		}
		c.degrade("checkpoint verify", err)
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	return segment.RemoveObsolete(c.durableDir, next)
}

// recoverLocked is the verified full-segment rewrite that clears
// degraded mode. The broken WAL is abandoned where it lies (its
// committed prefix stays replayable); a brand-new checkpoint
// generation is written atomically and verified by readback, a fresh
// WAL starts beside it, and only once both exist does the corpus
// resume accepting mutations. Any failure leaves the corpus degraded
// and the directory exactly as recoverable as before the attempt.
func (c *Corpus) recoverLocked() error {
	c.recoveryAttempts.Add(1)
	next := c.walSeq + 1
	if err := c.writeCheckpointFile(next); err != nil {
		return fmt.Errorf("%w: recovery checkpoint: %w", ErrDegraded, err)
	}
	if err := c.verifyCheckpointFile(next); err != nil {
		if segment.Quarantine(segment.CheckpointPath(c.durableDir, next)) == nil {
			c.quarantined.Add(1)
		}
		return fmt.Errorf("%w: recovery checkpoint verify: %w", ErrDegraded, err)
	}
	// A previous failed recovery attempt may have created this WAL
	// generation and then died before the swap; it holds nothing an
	// epoch ever published without, so it is safe to clear.
	walPath := segment.WALPath(c.durableDir, next)
	if err := faultfs.Default().Remove(walPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("%w: recovery wal cleanup: %w", ErrDegraded, err)
	}
	w, err := segment.CreateWAL(walPath, c.walPolicy())
	if err != nil {
		return fmt.Errorf("%w: recovery wal create: %w", ErrDegraded, err)
	}
	old := c.wal.Load()
	c.wal.Store(w)
	c.walSeq = next
	if old != nil {
		old.Close()
	}
	c.degraded.Store(nil)
	// Cleanup failures after this point do not re-degrade: the new
	// generation is verified and active, leftovers are garbage.
	segment.RemoveObsolete(c.durableDir, next)
	return nil
}

// walPolicy reports the active log's fsync policy so recovery can
// carry it into the replacement log.
func (c *Corpus) walPolicy() FsyncPolicy {
	if w := c.wal.Load(); w != nil {
		return w.Policy()
	}
	return FsyncAlways
}

// writeCheckpointFile snapshots the epochs and atomically writes
// checkpoint generation seq. The epoch snapshot needs no lock beyond
// the implied ordering: epochs are immutable once published, and on
// the Checkpoint path the preceding Rotate already cut the log — any
// mutation committed after the cut lands in the new generation and
// merely also appears in the checkpoint, which replay tolerates
// (records are absolute and idempotent).
func (c *Corpus) writeCheckpointFile(seq int64) error {
	tab := c.tab.Load()
	eps := make([]*shardEpoch, len(tab.shards))
	for i, sh := range tab.shards {
		eps[i] = sh.epoch.Load()
	}
	g := c.g.Load()
	shardItems := make([][]ned.Item, len(eps))
	for i, ep := range eps {
		shardItems[i] = sortedShardItems(ep.byNode)
	}
	meta := segment.Meta{Backend: c.cfg.backend.String(), K: c.k, Directed: c.cfg.directed, Place: tab.place}
	path := segment.CheckpointPath(c.durableDir, seq)
	if err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return segment.Write(w, meta, c.dict, g, shardItems, shardIndexDumps(eps))
	}); err != nil {
		return fmt.Errorf("ned: checkpoint %d: %w", seq, err)
	}
	return nil
}

// verifyCheckpointFile re-reads checkpoint generation seq from disk
// and walks its section framing, checksums and all. What the write
// path believes it wrote is irrelevant; only bytes that read back
// whole may retire older generations or clear degraded mode.
func (c *Corpus) verifyCheckpointFile(seq int64) error {
	path := segment.CheckpointPath(c.durableDir, seq)
	f, err := faultfs.Default().Open(path)
	if err != nil {
		return fmt.Errorf("ned: verifying checkpoint %d: %w", seq, err)
	}
	defer f.Close()
	if err := segment.Verify(f); err != nil {
		return fmt.Errorf("ned: verifying checkpoint %d: %w", seq, err)
	}
	return nil
}

// CloseDurable syncs and closes the mutation log and detaches the
// durable directory. Mutations after the close fail; queries keep
// serving. The corpus is NOT checkpointed — the log already holds
// everything committed. Detaching clears degraded mode: the refusal
// guarded a durability promise that no longer exists.
func (c *Corpus) CloseDurable() error {
	c.durMu.Lock()
	defer c.durMu.Unlock()
	w := c.wal.Load()
	if w == nil {
		return nil
	}
	err := w.Close()
	c.wal.Store(nil)
	c.durableDir = ""
	c.degraded.Store(nil)
	return err
}

// DurableStats reports whether the corpus is durable and, if so, the
// records and bytes appended to the active log generation — the signal
// serving layers use to decide when to Checkpoint.
func (c *Corpus) DurableStats() (walRecords, walBytes int64, durable bool) {
	w := c.wal.Load()
	if w == nil {
		return 0, 0, false
	}
	r, b := w.Stats()
	return r, b, true
}

// DurableHealth is the serving layer's view of a corpus's durability:
// readiness, degraded-mode detail, and recovery bookkeeping.
type DurableHealth struct {
	Durable                bool      // a durable directory is attached
	Degraded               bool      // mutations currently refused
	Reason                 string    // which operation degraded it
	Since                  time.Time // when
	RecoveryAttempts       int64     // rewrite attempts while degraded (lifetime)
	QuarantinedCheckpoints int64     // checkpoints renamed aside (this open + since)
	WALRecords             int64     // records in the active log generation
	WALBytes               int64     // bytes in the active log generation
}

// DurableHealth reports the corpus's durability health. Cheap enough
// for every /readyz and /metrics scrape.
func (c *Corpus) DurableHealth() DurableHealth {
	h := DurableHealth{
		RecoveryAttempts:       c.recoveryAttempts.Load(),
		QuarantinedCheckpoints: c.quarantined.Load(),
	}
	if w := c.wal.Load(); w != nil {
		h.Durable = true
		h.WALRecords, h.WALBytes = w.Stats()
	}
	if info := c.degraded.Load(); info != nil {
		h.Degraded = true
		h.Reason = info.Reason
		h.Since = info.Since
	}
	return h
}
