package ned

import (
	"errors"
	"fmt"
	"io"
	"os"

	"ned/internal/fsx"
	"ned/internal/ned"
	"ned/internal/segment"
)

// Durable corpora. A durable directory holds numbered generations of
// two files: a binary segment checkpoint (the full corpus — items,
// compiled profiles, shape dictionary, backing graph — loadable
// without re-extraction or re-profiling) and a mutation write-ahead
// log. Every Insert, Remove, and UpdateGraph appends a checksummed
// record to the active log BEFORE its epoch publishes, so an
// acknowledged mutation survives a crash (under FsyncAlways) and an
// unacknowledged one never half-applies: recovery loads the latest
// checkpoint and replays the log tail, dropping only a torn final
// frame. Checkpoint rotates the log and supersedes it with a fresh
// segment, truncating recovery time and reclaiming the old
// generations.
//
// Attach durability with MakeDurable before the corpus is shared (the
// attach itself is not atomic with respect to concurrent mutations);
// afterwards mutations, queries, and checkpoints are safe
// concurrently. Reopen with OpenDurable.

// ErrNotDurable reports a durability operation on a corpus that has no
// durable directory attached.
var ErrNotDurable = errors.New("ned: corpus is not durable (attach with MakeDurable or load with OpenDurable)")

// FsyncPolicy re-exports the WAL fsync policy: FsyncAlways fsyncs
// every committed mutation batch, FsyncNone leaves flushing to the OS
// (a crash may lose the latest acknowledged batches, never corrupt
// earlier ones).
type FsyncPolicy = segment.FsyncPolicy

const (
	FsyncAlways = segment.FsyncAlways
	FsyncNone   = segment.FsyncNone
)

// ParseFsyncPolicy parses the flag spellings "always" and "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return segment.ParseFsyncPolicy(s) }

// HasDurableState reports whether dir holds an initialized durable
// corpus (at least one checkpoint).
func HasDurableState(dir string) bool { return segment.HasState(dir) }

// MakeDurable attaches a durable directory to the corpus: it
// materializes the signatures, writes the generation-0 checkpoint
// segment, and opens the generation-0 mutation log that every
// subsequent mutation commits through. The directory is created if
// missing and must not already hold durable state (that is
// OpenDurable's job). Call it before the corpus is shared with
// concurrent mutators; mutations racing the attach itself may escape
// the log.
func (c *Corpus) MakeDurable(dir string, policy FsyncPolicy) error {
	c.gmu.Lock()
	c.materializeAllLocked()
	c.gmu.Unlock()
	c.durMu.Lock()
	defer c.durMu.Unlock()
	if c.wal.Load() != nil {
		return fmt.Errorf("ned: corpus is already durable in %s", c.durableDir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ned: creating durable directory: %w", err)
	}
	if segment.HasState(dir) {
		return fmt.Errorf("ned: %s already holds durable corpus state (open it with OpenDurable)", dir)
	}
	c.durableDir = dir
	if err := c.writeCheckpointFile(0); err != nil {
		c.durableDir = ""
		return err
	}
	w, err := segment.CreateWAL(segment.WALPath(dir, 0), policy)
	if err != nil {
		c.durableDir = ""
		return err
	}
	c.walSeq = 0
	c.wal.Store(w)
	return nil
}

// OpenDurable recovers a corpus from a durable directory: it loads the
// highest-generation checkpoint segment, replays every log generation
// at or above it in order (a torn final frame — the residue of a crash
// mid-append — is dropped; corruption anywhere else fails loudly), and
// resumes appending to the newest log at its validated prefix. The
// result answers every query exactly as the original did after its
// last committed mutation. Options apply as in LoadCorpus; the
// checkpoint's embedded graph is attached unless WithGraph overrides
// it.
func OpenDurable(dir string, policy FsyncPolicy, opts ...CorpusOption) (*Corpus, error) {
	seq, ckptPath, ok, err := segment.LatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("ned: %s holds no durable corpus state", dir)
	}
	f, err := os.Open(ckptPath)
	if err != nil {
		return nil, fmt.Errorf("ned: opening checkpoint: %w", err)
	}
	c, err := LoadCorpus(f, opts...)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("ned: checkpoint %s: %w", ckptPath, err)
	}

	// Replay the log generations the checkpoint does not cover. A
	// rotation advances the active generation even when the checkpoint
	// that prompted it failed to write, so several trailing generations
	// may hold committed mutations; they replay in order.
	seqs, err := segment.WALSeqs(dir)
	if err != nil {
		return nil, err
	}
	activeSeq, activeValid, activeRecs := seq, int64(0), int64(0)
	haveActive := false
	for _, s := range seqs {
		if s < seq {
			continue
		}
		recs, valid, err := segment.ReplayWAL(segment.WALPath(dir, s))
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			if err := c.applyRecovered(rec); err != nil {
				return nil, fmt.Errorf("ned: replaying %s: %w", segment.WALPath(dir, s), err)
			}
		}
		activeSeq, activeValid, activeRecs = s, valid, int64(len(recs))
		haveActive = true
	}

	var w *segment.WAL
	if haveActive {
		w, err = segment.OpenWALAt(segment.WALPath(dir, activeSeq), activeValid, activeRecs, policy)
	} else {
		w, err = segment.CreateWAL(segment.WALPath(dir, activeSeq), policy)
	}
	if err != nil {
		return nil, err
	}
	c.durableDir = dir
	c.walSeq = activeSeq
	c.wal.Store(w)
	// Generations below the checkpoint are garbage a crashed cleanup
	// may have left behind.
	if err := segment.RemoveObsolete(dir, seq); err != nil {
		return nil, err
	}
	return c, nil
}

// applyRecovered applies one replayed mutation record to the (not yet
// shared) corpus: upserts re-profile their trees against the corpus
// dictionary and land in their shard's item table, deletes drop
// theirs. Records are absolute, so re-applying a suffix is idempotent.
func (c *Corpus) applyRecovered(rec segment.Record) error {
	for i := range rec.Upserts {
		it := rec.Upserts[i]
		if it.K != c.k {
			return fmt.Errorf("wal upsert of node %d has k=%d, corpus has k=%d", it.Node, it.K, c.k)
		}
		if c.cfg.directed != (it.In != nil) {
			return fmt.Errorf("wal upsert of node %d disagrees with corpus directedness", it.Node)
		}
		ned.ProfileItem(&it, c.dict)
		c.shardFor(it.Node).epoch.Load().byNode[it.Node] = it
	}
	for _, v := range rec.Deletes {
		delete(c.shardFor(v).epoch.Load().byNode, v)
	}
	return nil
}

// commitShard publishes ne as sh's current epoch. On a durable corpus
// the mutation (upserts = the full post-mutation items, deletes = the
// nodes removed) first appends to the WAL, and the publish runs under
// the log's commit mutex — the ordering Checkpoint relies on to cut a
// log generation consistent with the published epochs. An append
// failure leaves the epoch unpublished: the mutation never happened,
// for queries and recovery alike. Callers hold sh.mu.
func (c *Corpus) commitShard(sh *corpusShard, ne *shardEpoch, upserts []ned.Item, deletes []NodeID) error {
	w := c.wal.Load()
	if w == nil || (len(upserts) == 0 && len(deletes) == 0) {
		sh.epoch.Store(ne)
		return nil
	}
	return w.Commit(segment.Record{Upserts: upserts, Deletes: deletes}, func() {
		sh.epoch.Store(ne)
	})
}

// Checkpoint writes the current corpus as a fresh checkpoint segment
// and rotates the mutation log: the log is cut atomically with an
// epoch snapshot, the segment is written outside all locks (queries
// and mutations keep running), and on success the superseded
// generations are deleted. If the segment write fails the corpus stays
// consistent — the rotated log is already active, and recovery replays
// both generations onto the previous checkpoint.
func (c *Corpus) Checkpoint() error {
	c.durMu.Lock()
	defer c.durMu.Unlock()
	return c.checkpointLocked()
}

// checkpointLocked is Checkpoint under an already-held durMu; it never
// touches gmu (durable corpora are permanently materialized), so
// UpdateGraph can checkpoint while holding the engine write gate.
func (c *Corpus) checkpointLocked() error {
	w := c.wal.Load()
	if w == nil {
		return ErrNotDurable
	}
	next := c.walSeq + 1
	if err := w.Rotate(segment.WALPath(c.durableDir, next), nil); err != nil {
		return err
	}
	// The active log IS generation next now, even if the segment write
	// below fails: recovery replays every generation at or above the
	// latest checkpoint, so advancing unconditionally keeps the naming
	// truthful.
	c.walSeq = next
	if err := c.writeCheckpointFile(next); err != nil {
		return err
	}
	return segment.RemoveObsolete(c.durableDir, next)
}

// writeCheckpointFile snapshots the epochs and atomically writes
// checkpoint generation seq. The epoch snapshot needs no lock beyond
// the implied ordering: epochs are immutable once published, and on
// the Checkpoint path the preceding Rotate already cut the log — any
// mutation committed after the cut lands in the new generation and
// merely also appears in the checkpoint, which replay tolerates
// (records are absolute and idempotent).
func (c *Corpus) writeCheckpointFile(seq int64) error {
	tab := c.tab.Load()
	eps := make([]*shardEpoch, len(tab.shards))
	for i, sh := range tab.shards {
		eps[i] = sh.epoch.Load()
	}
	g := c.g.Load()
	shardItems := make([][]ned.Item, len(eps))
	for i, ep := range eps {
		shardItems[i] = sortedShardItems(ep.byNode)
	}
	meta := segment.Meta{Backend: c.cfg.backend.String(), K: c.k, Directed: c.cfg.directed, Place: tab.place}
	path := segment.CheckpointPath(c.durableDir, seq)
	if err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return segment.Write(w, meta, c.dict, g, shardItems, shardIndexDumps(eps))
	}); err != nil {
		return fmt.Errorf("ned: checkpoint %d: %w", seq, err)
	}
	return nil
}

// CloseDurable syncs and closes the mutation log and detaches the
// durable directory. Mutations after the close fail; queries keep
// serving. The corpus is NOT checkpointed — the log already holds
// everything committed.
func (c *Corpus) CloseDurable() error {
	c.durMu.Lock()
	defer c.durMu.Unlock()
	w := c.wal.Load()
	if w == nil {
		return nil
	}
	err := w.Close()
	c.wal.Store(nil)
	c.durableDir = ""
	return err
}

// DurableStats reports whether the corpus is durable and, if so, the
// records and bytes appended to the active log generation — the signal
// serving layers use to decide when to Checkpoint.
func (c *Corpus) DurableStats() (walRecords, walBytes int64, durable bool) {
	w := c.wal.Load()
	if w == nil {
		return 0, 0, false
	}
	r, b := w.Stats()
	return r, b, true
}
