package ned

import (
	"sort"
	"sync"
	"time"

	"ned/internal/ned"
)

// Adaptive shard rebalancing. The fixed splitmix hash that seeds the
// layout is blind to load: one hot graph region lands all its writers
// on one shard, where every mutation pays an epoch clone proportional
// to that shard's size while cold shards idle. The rebalancer watches
// the per-shard contention counters the mutation paths maintain
// (lock-wait time, mutation counts, clone bytes) and edits the
// placement directory MRV-style: split the shard carrying most of the
// write load, fold quiet dwarf shards back together. Each edit is the
// standard epoch discipline writ large — clone the affected shards'
// state into successor epochs, publish the new table between them —
// so readers never block and answers stay node-identical mid-move
// (see acquire's validation order).
//
// Ordering contract with acquire (the whole crash-free correctness
// argument): a rebalance publishes the epoch that GAINS nodes first,
// then the new table, then the epoch that loses them. A reader whose
// table stayed constant across its epoch loads therefore always finds
// every live node in the shard its table routes it to; transient
// double-sightings are deduplicated by the merge layer.
//
// Placement edits are deliberately not WAL-logged: they change where
// nodes live, never which nodes live, so a crash before the next
// checkpoint merely recovers into the older layout with identical
// answers.

// RebalancePolicy configures StartRebalancer / RebalanceTick. The zero
// value takes every default; see ned.BalancePolicy for the knobs'
// semantics.
type RebalancePolicy struct {
	// Interval between background ticks (StartRebalancer only);
	// default 2s.
	Interval time.Duration

	MaxShards         int
	MinShardNodes     int
	SplitFraction     float64
	SplitMinMutations int64
	MergeMaxMutations int64
}

func (p RebalancePolicy) withDefaults() RebalancePolicy {
	if p.Interval <= 0 {
		p.Interval = 2 * time.Second
	}
	return p
}

func (p RebalancePolicy) balancePolicy() ned.BalancePolicy {
	return ned.BalancePolicy{
		MaxShards:         p.MaxShards,
		MinShardNodes:     p.MinShardNodes,
		SplitFraction:     p.SplitFraction,
		SplitMinMutations: p.SplitMinMutations,
		MergeMaxMutations: p.MergeMaxMutations,
	}
}

// RebalanceResult reports what one tick did.
type RebalanceResult struct {
	// Split is the shard slot that was split (-1 if none); NewShard the
	// slot its moved nodes went to, and Moved how many moved.
	Split    int
	NewShard int
	Moved    int
	// MergedSrc/MergedDst are the fold's source and destination slots
	// (-1/-1 if none).
	MergedSrc int
	MergedDst int
}

// balanceSnap is one shard's contention reading at the previous tick;
// the next tick differences against it.
type balanceSnap struct {
	lockWaitNS int64
	mutations  int64
	cloneBytes int64
}

// RebalanceTick runs one rebalancing step synchronously: read the
// contention deltas since the previous tick, ask the policy for a
// verdict, and apply at most one split and one merge. A no-op (and no
// error) on corpora whose indexes have not been built yet — there is
// no load to observe. Ticks serialize with mutations and each other
// under the engine write gate, and with checkpoints under the durable
// gate (a checkpoint's epoch snapshot runs outside gmu and must not
// see a half-published move); queries keep serving throughout.
func (c *Corpus) RebalanceTick(pol RebalancePolicy) RebalanceResult {
	res := RebalanceResult{Split: -1, NewShard: -1, MergedSrc: -1, MergedDst: -1}
	if !c.built.Load() {
		return res
	}
	c.gmu.Lock()
	defer c.gmu.Unlock()
	c.durMu.Lock()
	defer c.durMu.Unlock()

	tab := c.tab.Load()
	if c.balPrev == nil {
		c.balPrev = make(map[*corpusShard]balanceSnap)
	}
	ref := tab.place.Referenced()
	loads := make([]ned.ShardLoad, len(tab.shards))
	for i, sh := range tab.shards {
		ep := sh.epoch.Load()
		prev := c.balPrev[sh]
		cur := balanceSnap{
			lockWaitNS: sh.lockWaitNS.Load(),
			mutations:  sh.mutations.Load(),
			cloneBytes: sh.cloneBytes.Load(),
		}
		c.balPrev[sh] = cur
		loads[i] = ned.ShardLoad{
			Shard:      i,
			Live:       ref[i],
			Nodes:      ep.size(),
			LockWaitNS: clampDelta(cur.lockWaitNS - prev.lockWaitNS),
			Mutations:  clampDelta(cur.mutations - prev.mutations),
			CloneBytes: clampDelta(cur.cloneBytes - prev.cloneBytes),
		}
		if ep.ix != nil {
			if st, tt := ep.ix.Stale(); tt > 0 {
				loads[i].StaleRatio = float64(st) / float64(tt)
			}
		}
	}

	d := ned.Decide(loads, pol.balancePolicy())
	changed := false
	if d.Split >= 0 {
		if moved, dst := c.applySplit(d.Split); moved > 0 {
			res.Split, res.NewShard, res.Moved = d.Split, dst, moved
			c.shardSplits.Add(1)
			changed = true
		}
	}
	if d.MergeSrc >= 0 {
		c.applyMerge(d.MergeSrc, d.MergeDst)
		res.MergedSrc, res.MergedDst = d.MergeSrc, d.MergeDst
		c.shardMerges.Add(1)
		changed = true
	}
	if changed {
		c.rebalances.Add(1)
	}
	return res
}

func clampDelta(d int64) int64 {
	if d < 0 {
		return 0
	}
	return d
}

// splitTarget picks the slot the split's moved nodes go to: a retired
// husk (placement-unreferenced, empty) is reused so the slots slice —
// and with it every epoch vector — stays as short as the live layout
// needs; otherwise a fresh slot is appended. Returns the slot index
// and the grown (or same) slots slice.
func splitTarget(tab *shardTable) (int, []*corpusShard) {
	ref := tab.place.Referenced()
	for i, sh := range tab.shards {
		if !ref[i] && sh.epoch.Load().size() == 0 {
			return i, tab.shards
		}
	}
	sh := &corpusShard{}
	sh.epoch.Store(&shardEpoch{byNode: map[NodeID]ned.Item{}})
	return len(tab.shards), append(append([]*corpusShard(nil), tab.shards...), sh)
}

// applySplit moves roughly half of shard si's nodes — alternating
// through its recently-hot set so the write pressure itself is what
// halves — to a new or reused slot. Publication order (the acquire
// contract): destination epoch, then table, then shrunken source.
// Callers hold gmu for writing, which excludes every mutator, so the
// source epoch cannot move under the partition.
func (c *Corpus) applySplit(si int) (moved int, dst int) {
	tab := c.tab.Load()
	src := tab.shards[si]
	ep := src.epoch.Load()
	nodes := make([]NodeID, 0, len(ep.byNode))
	for v := range ep.byNode {
		nodes = append(nodes, v)
	}
	sortNodeIDs(nodes)
	stay, move := ned.SplitPartition(nodes, src.hotSet(), uint64(c.rebalances.Load())+0x9e37)
	if len(move) == 0 || len(stay) == 0 {
		return 0, -1
	}

	dst, shards := splitTarget(tab)
	var dstSh *corpusShard
	if dst < len(tab.shards) {
		dstSh = tab.shards[dst]
	} else {
		dstSh = shards[dst]
	}

	place := tab.place.Clone()
	if dst >= place.Shards {
		place.Shards = dst + 1
	}
	srcEp := &shardEpoch{byNode: make(map[NodeID]ned.Item, len(stay))}
	dstEp := &shardEpoch{byNode: make(map[NodeID]ned.Item, len(move))}
	for _, v := range stay {
		srcEp.byNode[v] = ep.byNode[v]
	}
	for _, v := range move {
		dstEp.byNode[v] = ep.byNode[v]
		place.SetMove(v, dst)
	}
	// Fresh indexes for both halves; counters continue the lineages —
	// the source's totals stay with its slot, the destination extends
	// whatever the reused husk accumulated before retirement (or starts
	// fresh on a new slot), keeping Stats monotone per slot.
	srcEp.ix = c.newShardIndex(srcEp.byNode)
	ned.ShareCounters(srcEp.ix, ep.ix)
	dstEp.ix = c.newShardIndex(dstEp.byNode)
	if old := dstSh.epoch.Load(); old != nil && old.ix != nil {
		ned.ShareCounters(dstEp.ix, old.ix)
	}

	dstSh.epoch.Store(dstEp)
	c.tab.Store(&shardTable{shards: shards, place: place})
	src.epoch.Store(srcEp)
	return len(move), dst
}

// applyMerge folds shard src's nodes into dst, leaving src behind as
// an empty husk the next split can reuse. Placement rewrite: every
// redirect bucket and move that routed to src now routes to dst.
// Publication order mirrors the split: combined destination epoch,
// then table, then the husk. Callers hold gmu for writing.
func (c *Corpus) applyMerge(src, dst int) {
	tab := c.tab.Load()
	srcSh, dstSh := tab.shards[src], tab.shards[dst]
	srcEp, dstEp := srcSh.epoch.Load(), dstSh.epoch.Load()

	place := tab.place.Clone()
	for b, s := range place.Redirect {
		if int(s) == src {
			place.Redirect[b] = int32(dst)
		}
	}
	// Collect first: SetMove may delete entries mid-iteration.
	var moved []NodeID
	for v, s := range place.Moves {
		if int(s) == src {
			moved = append(moved, v)
		}
	}
	for _, v := range moved {
		place.SetMove(v, dst)
	}

	ne := dstEp.clone()
	var items []ned.Item
	for v, it := range srcEp.byNode {
		ne.byNode[v] = it
		items = append(items, it)
	}
	if len(items) > 0 {
		ix := ne.ix.Clone()
		ix.Insert(items...)
		ne.ix = ix
		c.maybeRebuildShard(ne)
	}
	husk := &shardEpoch{byNode: map[NodeID]ned.Item{}, ix: c.newShardIndex(nil)}
	ned.ShareCounters(husk.ix, srcEp.ix)

	dstSh.epoch.Store(ne)
	c.tab.Store(&shardTable{shards: tab.shards, place: place})
	srcSh.epoch.Store(husk)
}

// sortNodeIDs sorts ascending — the deterministic partition order.
func sortNodeIDs(nodes []NodeID) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
}

// StartRebalancer runs RebalanceTick on a background goroutine every
// pol.Interval until the returned stop function is called (idempotent,
// and it waits for an in-flight tick to finish). The engine stays
// fully serviceable throughout; ticks that find nothing to do cost one
// pass over the contention counters.
func (c *Corpus) StartRebalancer(pol RebalancePolicy) (stop func()) {
	pol = pol.withDefaults()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(pol.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.RebalanceTick(pol)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
