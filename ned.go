// Package ned is a from-scratch Go implementation of
//
//	NED: An Inter-Graph Node Metric Based On Edit Distance
//	Haohan Zhu, Xianrui Meng, George Kollios (VLDB 2017, arXiv:1602.02358)
//
// NED measures the similarity of two nodes that may belong to different
// graphs by comparing their neighborhood topologies: each node is
// represented by its unordered k-adjacent tree (the BFS tree truncated at
// depth k) and the distance between two nodes is TED*, a modified tree
// edit distance that is polynomially computable and metric-like, unlike
// the NP-complete unordered tree edit distance.
//
// This package is the public facade over the implementation packages:
//
//   - the Corpus query engine: one thread-safe, context-aware API over
//     interchangeable NED index backends (§13.3–13.4 workloads), with
//     incremental Insert/Remove under live index maintenance, graph
//     version updates (UpdateGraph), and snapshot persistence
//     (Snapshot/LoadCorpus)
//   - TED* and its weighted variant (§4–5, §12 of the paper)
//   - NED for undirected and directed graphs (§3)
//   - exact TED/GED/TED* baselines for validation (§13.1)
//   - HITS-based and ReFeX-style feature baselines (§2, §13.4)
//   - VP-tree and BK-tree metric indexes for similarity queries (§13.4)
//   - graph anonymization and the de-anonymization harness (§13.5)
//   - deterministic synthetic analogs of the paper's six datasets
//
// # Quick start
//
// Similarity queries are served by a Corpus, the query engine built
// over one graph's nodes. Queries take a context, return typed errors
// instead of panicking, and are safe to issue concurrently:
//
//	g1 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{})
//	g2 := ned.MustGenerateDataset(ned.DatasetGNU, ned.DatasetOptions{})
//
//	// Index g2's nodes once (lazily, in parallel, on first query).
//	corpus, err := ned.NewCorpus(g2, 3, ned.WithBackend(ned.BackendVP))
//	if err != nil { ... }
//
//	// Which nodes of g2 are most similar to node 7 of g1?
//	query := ned.NewSignature(g1, 7, 3)
//	top, err := corpus.KNNSignature(ctx, query, 10)
//
//	// One-off distances need no engine:
//	d := ned.Distance(g1, 7, g2, 42, 3) // NED with k = 3
//
//	// Corpora are mutable and persistent:
//	_ = corpus.Insert(17, 42)   // churn the indexed node set in place
//	_ = corpus.Remove(3)
//	_ = corpus.Snapshot(w)      // ned.LoadCorpus(r) restores it later
//
// Everything below Corpus — Distance, Signatures, TopL, NearestSet,
// VPIndex, and friends — is the low-level layer: synchronous,
// allocation-light building blocks with no cancellation or concurrency
// contract. Prefer Corpus for serving queries; drop to the low-level
// layer inside tight loops that manage their own scheduling.
//
// See the examples directory for complete programs and README.md for
// the facade-vs-low-level API map.
package ned

import (
	"context"

	"ned/internal/anonymize"
	"ned/internal/baseline"
	"ned/internal/exact"
	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/ted"
	"ned/internal/tree"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while giving users public names.
type (
	// Graph is a simple graph in compressed adjacency form; build one
	// with NewGraphBuilder or load one with LoadEdgeList.
	Graph = graph.Graph
	// GraphBuilder accumulates edges into an immutable Graph.
	GraphBuilder = graph.Builder
	// NodeID identifies a node within one graph (dense, 0-based).
	NodeID = graph.NodeID
	// Edge is a node pair.
	Edge = graph.Edge
	// Tree is an unordered rooted tree in level order — the node
	// signature type.
	Tree = tree.Tree
	// Signature is a node's precomputed k-adjacent tree.
	Signature = ned.Signature
	// Neighbor is a query result: candidate node plus NED distance.
	Neighbor = ned.Neighbor
	// TEDReport breaks a TED* value into per-level padding (leaf
	// insert/delete) and matching (move) costs — the edit-script summary
	// that makes the distance interpretable.
	TEDReport = ted.Report
	// TEDWeights configures the weighted TED* of §12.
	TEDWeights = ted.Weights
	// FeatureVector is a node's structural feature vector (baseline).
	FeatureVector = baseline.FeatureVector
	// AnonymizedGraph pairs an anonymized graph with its ground truth.
	AnonymizedGraph = anonymize.Result
)

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int, directed bool) *GraphBuilder {
	return graph.NewBuilder(n, directed)
}

// FromEdges builds an undirected graph from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// LoadEdgeList loads a SNAP/KONECT-style edge-list file.
func LoadEdgeList(path string, directed bool) (*Graph, error) {
	g, _, err := graph.LoadEdgeListFile(path, directed)
	return g, err
}

// SaveEdgeList writes a graph as an edge-list file.
func SaveEdgeList(path string, g *Graph) error { return graph.SaveEdgeListFile(path, g) }

// KAdjacentTree extracts the unordered k-adjacent tree T(v, k): the BFS
// tree of v truncated to k levels of neighbors (Definition 1).
func KAdjacentTree(g *Graph, v NodeID, k int) *Tree {
	t, _ := tree.KAdjacent(g, v, k)
	return t
}

// TEDStar returns the TED* distance between two unordered trees
// (Algorithm 1; see the faithfulness note in internal/ted for the exact
// semantics).
func TEDStar(t1, t2 *Tree) int { return ted.Distance(t1, t2) }

// TEDStarReport returns TED* with its per-level cost breakdown.
func TEDStarReport(t1, t2 *Tree) TEDReport { return ted.DistanceReport(t1, t2) }

// WeightedTEDStar returns the weighted TED* of §12; nil weights mean
// unit costs. UpperBoundTEDWeights yields the δT(W+) that upper-bounds
// the original tree edit distance (Lemma 7).
func WeightedTEDStar(t1, t2 *Tree, w TEDWeights) float64 {
	return ted.WeightedDistance(t1, t2, w)
}

// UnitTEDWeights is the unweighted cost model (every operation is 1).
var UnitTEDWeights TEDWeights = ted.UnitWeights{}

// UpperBoundTEDWeights is the δT(W+) weighting of Definition 8.
var UpperBoundTEDWeights TEDWeights = ted.UpperBoundWeights{}

// Distance returns NED between node u of gu and node v of gv with
// neighborhood parameter k (Equation 1).
func Distance(gu *Graph, u NodeID, gv *Graph, v NodeID, k int) int {
	return ned.Distance(gu, u, gv, v, k)
}

// DistanceDirected returns the directed-graph NED of Equation 2 (sum of
// TED* over incoming and outgoing k-adjacent trees).
func DistanceDirected(gu *Graph, u NodeID, gv *Graph, v NodeID, k int) int {
	return ned.DistanceDirected(gu, u, gv, v, k)
}

// NewSignature precomputes the k-adjacent tree of v for repeated queries.
func NewSignature(g *Graph, v NodeID, k int) Signature { return ned.NewSignature(g, v, k) }

// Signatures precomputes signatures for a node set.
func Signatures(g *Graph, nodes []NodeID, k int) []Signature {
	return ned.Signatures(g, nodes, k)
}

// SignatureDistance returns NED between two precomputed signatures.
func SignatureDistance(a, b Signature) int { return ned.Between(a, b) }

// NearestSet returns every candidate at the minimum NED distance from
// the query (the nearest-neighbor result set of §13.3).
func NearestSet(query Signature, candidates []Signature) []Neighbor {
	return ned.NearestSet(query, candidates)
}

// TopL returns the l nearest candidates in ascending distance order.
func TopL(query Signature, candidates []Signature, l int) []Neighbor {
	return ned.TopL(query, candidates, l)
}

// Hausdorff returns the graph-to-graph Hausdorff distance over NED
// (Appendix A, Definition 9).
func Hausdorff(ga, gb *Graph, k int) int { return ned.Hausdorff(ga, gb, k) }

// HausdorffSampled is Hausdorff restricted to node samples.
func HausdorffSampled(ga *Graph, nodesA []NodeID, gb *Graph, nodesB []NodeID, k int) int {
	return ned.HausdorffSampled(ga, nodesA, gb, nodesB, k)
}

// ExactTED returns the exact (NP-hard) unordered tree edit distance for
// small trees; ok is false when an input exceeds the practical limit.
func ExactTED(t1, t2 *Tree) (d int, ok bool) { return exact.TED(t1, t2) }

// ExactGED returns the exact (NP-hard) unlabeled graph edit distance for
// small graphs; ok is false when an input exceeds the practical limit.
func ExactGED(g1, g2 *Graph) (d int, ok bool) { return exact.GED(g1, g2) }

// ExactTEDStar returns the exhaustive Definition-3 TED* optimum for
// trees with narrow levels; ok is false when a level is too wide.
func ExactTEDStar(t1, t2 *Tree) (d int, ok bool) { return exact.TEDStar(t1, t2) }

// VPIndex is the low-level VP-tree metric index over node signatures
// (§13.4): synchronous queries, no cancellation. It is a thin wrapper
// over the same backend Corpus serves from with BackendVP; prefer
// NewCorpus for serving workloads.
type VPIndex struct {
	ix ned.Index
}

// NewVPIndex builds a VP-tree over the signatures.
func NewVPIndex(sigs []Signature) *VPIndex {
	return &VPIndex{ix: ned.NewVPBackend(ned.ItemsOf(sigs))}
}

// KNN returns the l nearest indexed signatures to the query.
func (ix *VPIndex) KNN(query Signature, l int) []Neighbor {
	res, _ := ix.ix.KNN(context.Background(), query.Item(), l)
	return res
}

// Range returns all indexed signatures within NED distance r of query.
func (ix *VPIndex) Range(query Signature, r int) []Neighbor {
	res, _ := ix.ix.Range(context.Background(), query.Item(), r)
	return res
}

// Len reports how many signatures are indexed.
func (ix *VPIndex) Len() int { return ix.ix.Len() }

// DistanceCalls reports metric evaluations since the last ResetStats.
func (ix *VPIndex) DistanceCalls() int64 { return ix.ix.DistanceCalls() }

// ResetStats zeroes the metric-evaluation counter.
func (ix *VPIndex) ResetStats() { ix.ix.ResetStats() }
