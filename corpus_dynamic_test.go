package ned

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ned/internal/ned"
	"ned/internal/tree"
)

// liveItems collects every shard's published item table into one map,
// for white-box assertions on signature reuse across graph updates.
func liveItems(c *Corpus) map[NodeID]ned.Item {
	out := make(map[NodeID]ned.Item)
	for _, sh := range c.shardSlots() {
		for v, it := range sh.epoch.Load().byNode {
			out[v] = it
		}
	}
	return out
}

// sortedNodes returns the keys of a membership set in ascending order.
func sortedNodes(set map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestCorpusChurnEquivalence is the dynamic-index contract: interleave
// Insert/Remove/KNN/Range across all four backends and, after every
// mutation batch, every backend must answer node-identically to a
// corpus freshly built over the same live node set. The rebuild
// threshold is set low enough that the metric trees cross it mid-test,
// so the tombstone, append-tail, AND post-rebuild paths are all
// exercised.
func TestCorpusChurnEquivalence(t *testing.T) {
	ctx := context.Background()
	const k = 2
	gQuery := randomGraph(50, 100, 900)
	gCorpus := randomGraph(80, 170, 901)

	corpora := make(map[Backend]*Corpus, len(allBackends))
	for _, b := range allBackends {
		c, err := NewCorpus(gCorpus, k, WithBackend(b), WithRebuildThreshold(0.3))
		if err != nil {
			t.Fatalf("NewCorpus(%v): %v", b, err)
		}
		corpora[b] = c
	}

	live := map[NodeID]bool{}
	for v := 0; v < gCorpus.NumNodes(); v++ {
		live[NodeID(v)] = true
	}

	rng := rand.New(rand.NewSource(902))
	for round := 0; round < 8; round++ {
		// Remove a random batch of live nodes...
		var rm []NodeID
		for _, v := range rng.Perm(gCorpus.NumNodes())[:6] {
			if live[NodeID(v)] {
				rm = append(rm, NodeID(v))
				delete(live, NodeID(v))
			}
		}
		// ...and re-insert a random batch of absent ones.
		var add []NodeID
		for v := 0; v < gCorpus.NumNodes() && len(add) < 3; v++ {
			if !live[NodeID(v)] && rng.Intn(4) == 0 {
				add = append(add, NodeID(v))
				live[NodeID(v)] = true
			}
		}
		for _, c := range corpora {
			if err := c.Remove(rm...); err != nil {
				t.Fatalf("round %d: Remove: %v", round, err)
			}
			if err := c.Insert(add...); err != nil {
				t.Fatalf("round %d: Insert: %v", round, err)
			}
		}

		// Reference: a corpus built from scratch over the live set.
		fresh, err := NewCorpus(gCorpus, k, WithBackend(BackendLinear), WithNodes(sortedNodes(live)))
		if err != nil {
			t.Fatalf("round %d: fresh corpus: %v", round, err)
		}

		for q := 0; q < 4; q++ {
			sig := NewSignature(gQuery, NodeID(rng.Intn(gQuery.NumNodes())), k)
			l := 1 + rng.Intn(10)
			r := rng.Intn(5)
			wantKNN, err := fresh.KNNSignature(ctx, sig, l)
			if err != nil {
				t.Fatalf("round %d: fresh KNN: %v", round, err)
			}
			wantRange, err := fresh.Range(ctx, sig, r)
			if err != nil {
				t.Fatalf("round %d: fresh Range: %v", round, err)
			}
			for _, b := range allBackends {
				gotKNN, err := corpora[b].KNNSignature(ctx, sig, l)
				if err != nil {
					t.Fatalf("round %d: %v KNN: %v", round, b, err)
				}
				if fmt.Sprint(gotKNN) != fmt.Sprint(wantKNN) {
					t.Errorf("round %d query %d: %v KNN %v, fresh rebuild %v",
						round, q, b, gotKNN, wantKNN)
				}
				gotRange, err := corpora[b].Range(ctx, sig, r)
				if err != nil {
					t.Fatalf("round %d: %v Range: %v", round, b, err)
				}
				if fmt.Sprint(gotRange) != fmt.Sprint(wantRange) {
					t.Errorf("round %d query %d: %v Range %v, fresh rebuild %v",
						round, q, b, gotRange, wantRange)
				}
			}
		}

		for _, b := range allBackends {
			if n := corpora[b].Stats().Nodes; n != len(live) {
				t.Fatalf("round %d: %v Stats.Nodes = %d, want %d", round, b, n, len(live))
			}
		}
	}

	// The churn volume above must have pushed the tombstone-accumulating
	// backends over the 0.3 staleness threshold at least once; otherwise
	// this test is not exercising the amortized-rebuild path at all.
	for _, b := range []Backend{BackendVP, BackendBK} {
		if corpora[b].Stats().Rebuilds == 0 {
			t.Errorf("%v: no amortized rebuild triggered by churn", b)
		}
	}
}

// TestCorpusMutationBeforeBuild checks the cheap path: churn on a
// corpus that has never been queried just edits the node set, and the
// eventual lazy build reflects it.
func TestCorpusMutationBeforeBuild(t *testing.T) {
	g := randomGraph(30, 60, 903)
	c, err := NewCorpus(g, 2, WithBackend(BackendVP), WithNodes([]NodeID{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(10, 11); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(2, 25); err != nil { // 25 was never indexed: no-op
		t.Fatal(err)
	}
	if s := c.Stats(); s.Built || s.Nodes != 4 {
		t.Fatalf("pre-build stats: %+v, want unbuilt with 4 nodes", s)
	}
	res, err := c.KNN(context.Background(), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := map[NodeID]bool{}
	for _, n := range res {
		got[n.Node] = true
	}
	want := map[NodeID]bool{1: true, 3: true, 10: true, 11: true}
	if fmt.Sprint(sortedNodes(got)) != fmt.Sprint(sortedNodes(want)) {
		t.Errorf("post-churn lazy build indexed %v, want %v", sortedNodes(got), sortedNodes(want))
	}
}

// TestCorpusBadNodeDoesNotBuild: an out-of-range node query must error
// immediately instead of paying the lazy materialization first.
func TestCorpusBadNodeDoesNotBuild(t *testing.T) {
	g := randomGraph(30, 60, 920)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(context.Background(), 999, 3); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("KNN(999): got %v, want ErrNodeOutOfRange", err)
	}
	if c.Stats().Built {
		t.Error("out-of-range KNN triggered the lazy build")
	}
}

// TestCorpusInsertErrors pins the mutation error contract.
func TestCorpusInsertErrors(t *testing.T) {
	g := randomGraph(20, 40, 904)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(5, 99); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("Insert(99): got %v, want ErrNodeOutOfRange", err)
	}
	// The failed batch must not have been half-applied: node 5 is
	// still... a member (it was from construction), but the corpus is
	// untouched and a later valid Insert works.
	if err := c.Insert(5); err != nil { // already indexed: idempotent
		t.Errorf("idempotent Insert: %v", err)
	}
	if err := c.Remove(5); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(5); err != nil { // already gone: idempotent
		t.Errorf("idempotent Remove: %v", err)
	}
	if s := c.Stats(); s.Nodes != 19 {
		t.Errorf("Stats.Nodes = %d, want 19", s.Nodes)
	}
}

// TestCorpusStatsAcrossRebuild is the stat-drift regression test:
// serving counters must survive Rebuild (no reset to zero, no
// pollution from rebuild-time maintenance work), and ResetStats must
// clear the carried-over portion too.
func TestCorpusStatsAcrossRebuild(t *testing.T) {
	ctx := context.Background()
	g := randomGraph(60, 120, 905)
	for _, b := range allBackends {
		c, err := NewCorpus(g, 2, WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.KNN(ctx, 0, 5); err != nil {
			t.Fatal(err)
		}
		before := c.Stats()
		if before.DistanceCalls == 0 {
			t.Fatalf("%v: no distance calls after a query", b)
		}

		c.Rebuild()
		after := c.Stats()
		if after.Rebuilds != 1 {
			t.Errorf("%v: Rebuilds = %d, want 1", b, after.Rebuilds)
		}
		if after.DistanceCalls != before.DistanceCalls ||
			after.EarlyExits != before.EarlyExits ||
			after.LowerBoundPrunes != before.LowerBoundPrunes ||
			after.Queries != before.Queries {
			t.Errorf("%v: counters drifted across Rebuild: before %+v, after %+v", b, before, after)
		}
		if after.StaleRatio != 0 {
			t.Errorf("%v: StaleRatio = %v after Rebuild, want 0", b, after.StaleRatio)
		}

		// Counters keep accumulating after the rebuild...
		if _, err := c.KNN(ctx, 1, 5); err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.DistanceCalls <= after.DistanceCalls {
			t.Errorf("%v: DistanceCalls stuck at %d after post-rebuild query", b, s.DistanceCalls)
		}
		// ...and ResetStats clears everything, including the base carried
		// over from the retired index generation.
		c.ResetStats()
		if s := c.Stats(); s.DistanceCalls != 0 || s.Queries != 0 || s.EarlyExits != 0 || s.LowerBoundPrunes != 0 {
			t.Errorf("%v: ResetStats left counters: %+v", b, s)
		}
	}
}

// TestCorpusStatsAcrossMutationRebuild drives enough churn to trigger
// amortized rebuilds and checks the counters never move backward — the
// drift Stats used to be vulnerable to when a rebuild discarded the
// old backend's counters.
func TestCorpusStatsAcrossMutationRebuild(t *testing.T) {
	ctx := context.Background()
	g := randomGraph(60, 120, 906)
	c, err := NewCorpus(g, 2, WithBackend(BackendVP), WithRebuildThreshold(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var lastCalls int64
	for round := 0; round < 6; round++ {
		if _, err := c.KNN(ctx, NodeID(round), 5); err != nil {
			t.Fatal(err)
		}
		s := c.Stats()
		if s.DistanceCalls < lastCalls {
			t.Fatalf("round %d: DistanceCalls moved backward: %d -> %d", round, lastCalls, s.DistanceCalls)
		}
		lastCalls = s.DistanceCalls
		var batch []NodeID
		for i := 0; i < 10; i++ {
			batch = append(batch, NodeID((round*10+i)%g.NumNodes()))
		}
		if err := c.Remove(batch...); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(batch...); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Rebuilds == 0 {
		t.Error("churn at threshold 0.1 never triggered a rebuild")
	}
}

// TestCorpusConcurrentChurnAndQueries hammers one corpus with queries
// while other goroutines churn it; under -race this verifies the
// locking protocol, including Insert's optimistic out-of-lock signature
// extraction. Results are not asserted against a reference here (they
// depend on mutation timing) — only that every query serves some
// consistent answer without error.
func TestCorpusConcurrentChurnAndQueries(t *testing.T) {
	g := randomGraph(60, 120, 921)
	for _, b := range allBackends {
		c, err := NewCorpus(g, 2, WithBackend(b), WithRebuildThreshold(0.2))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 15; i++ {
					if _, err := c.KNN(ctx, NodeID(rng.Intn(30)), 4); err != nil {
						t.Errorf("%v concurrent KNN: %v", b, err)
						return
					}
					c.Stats()
				}
			}(int64(w))
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(100 + seed))
				for i := 0; i < 10; i++ {
					// Churn only the upper half of the node range so the
					// queried nodes above always stay members.
					v := NodeID(30 + rng.Intn(30))
					if err := c.Remove(v); err != nil {
						t.Errorf("%v concurrent Remove: %v", b, err)
						return
					}
					if err := c.Insert(v); err != nil {
						t.Errorf("%v concurrent Insert: %v", b, err)
						return
					}
				}
			}(int64(w))
		}
		wg.Wait()
		if s := c.Stats(); s.Nodes != g.NumNodes() {
			t.Errorf("%v: Nodes = %d after balanced churn, want %d", b, s.Nodes, g.NumNodes())
		}
	}
}

// TestCorpusUpdateGraphInvalidation checks the ≤k-hop invalidation
// contract of UpdateGraph: only signatures an edge change can reach are
// re-extracted; every untouched node keeps its cached tree object —
// and with it its lazily derived AHU canonical encoding.
func TestCorpusUpdateGraphInvalidation(t *testing.T) {
	ctx := context.Background()
	const k = 2
	// A long path graph keeps neighborhoods local: an edge change at one
	// end cannot reach signatures at the other.
	n := 40
	b := NewGraphBuilder(n, false)
	for v := 0; v < n-1; v++ {
		b.AddEdge(NodeID(v), NodeID(v+1))
	}
	g1 := b.Build()

	c, err := NewCorpus(g1, k, WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(ctx, 0, 5); err != nil { // materialize
		t.Fatal(err)
	}
	// Warm every AHU cache, then remember the tree objects.
	trees := map[NodeID]*tree.Tree{}
	for v, it := range liveItems(c) {
		tree.Canonical(it.Out)
		trees[v] = it.Out
	}

	// New version: one extra edge at the head of the path.
	b2 := NewGraphBuilder(n, false)
	for v := 0; v < n-1; v++ {
		b2.AddEdge(NodeID(v), NodeID(v+1))
	}
	b2.AddEdge(0, 2)
	g2 := b2.Build()

	refreshed, err := c.UpdateGraph(g2)
	if err != nil {
		t.Fatal(err)
	}
	// Affected set: nodes within k-1 = 1 hop of {0, 2} in either
	// version, i.e. {0, 1, 2, 3}.
	if refreshed != 4 {
		t.Errorf("refreshed %d signatures, want 4", refreshed)
	}
	after := liveItems(c)
	for v, old := range trees {
		it := after[v]
		affected := v <= 3
		if affected {
			if it.Out == old {
				t.Errorf("node %d: affected signature was not re-extracted", v)
			}
			if want, _ := tree.KAdjacent(g2, v, k); tree.Canonical(it.Out) != tree.Canonical(want) {
				t.Errorf("node %d: refreshed signature does not match the new graph", v)
			}
		} else {
			if it.Out != old {
				t.Errorf("node %d: unaffected signature was re-extracted", v)
			}
			if !it.Out.HasCanon() {
				t.Errorf("node %d: unaffected signature lost its AHU cache", v)
			}
		}
	}

	// Queries after the update match a corpus built fresh on g2.
	fresh, err := NewCorpus(g2, k, WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	gq := randomGraph(30, 60, 907)
	for q := 0; q < 5; q++ {
		sig := NewSignature(gq, NodeID(q), k)
		got, err := c.KNNSignature(ctx, sig, 8)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.KNNSignature(ctx, sig, 8)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("query %d after UpdateGraph: got %v, want %v", q, got, want)
		}
	}
}

// TestCorpusUpdateGraphShrinks checks that indexed nodes beyond the new
// graph's range are dropped from the index.
func TestCorpusUpdateGraphShrinks(t *testing.T) {
	ctx := context.Background()
	g1 := randomGraph(30, 60, 908)
	c, err := NewCorpus(g1, 2, WithBackend(BackendBK))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(ctx, 0, 5); err != nil {
		t.Fatal(err)
	}
	// Shrink to the first 20 nodes (edges among them preserved).
	b := NewGraphBuilder(20, false)
	for _, e := range g1.Edges() {
		if int(e.U) < 20 && int(e.V) < 20 {
			b.AddEdge(e.U, e.V)
		}
	}
	g2 := b.Build()
	if _, err := c.UpdateGraph(g2); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Nodes != 20 {
		t.Fatalf("Stats.Nodes = %d after shrink, want 20", s.Nodes)
	}
	res, err := c.KNN(ctx, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range res {
		if int(nb.Node) >= 20 {
			t.Errorf("vanished node %d still served", nb.Node)
		}
	}
}
