module ned

go 1.24
