// Graphsim: whole-graph similarity via the Hausdorff distance over NED
// (Appendix A of the paper). Graphs from the same topological family
// should be closer to each other than to graphs from different families.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ned"
)

func main() {
	opts := func(seed int64) ned.DatasetOptions {
		return ned.DatasetOptions{Scale: 0.2, Seed: seed}
	}
	graphs := []struct {
		name string
		g    *ned.Graph
	}{
		{"road-A", ned.MustGenerateDataset(ned.DatasetCAR, opts(1))},
		{"road-B", ned.MustGenerateDataset(ned.DatasetPAR, opts(2))},
		{"social-A", ned.MustGenerateDataset(ned.DatasetDBLP, opts(3))},
		{"social-B", ned.MustGenerateDataset(ned.DatasetAMZN, opts(4))},
	}

	const k = 3
	const sample = 60
	rng := rand.New(rand.NewSource(5))
	sampled := make([][]ned.NodeID, len(graphs))
	for i, gr := range graphs {
		perm := rng.Perm(gr.g.NumNodes())
		n := sample
		if n > len(perm) {
			n = len(perm)
		}
		for _, v := range perm[:n] {
			sampled[i] = append(sampled[i], ned.NodeID(v))
		}
	}

	fmt.Printf("pairwise Hausdorff-over-NED distances (k=%d, %d sampled nodes):\n\n", k, sample)
	fmt.Printf("%-10s", "")
	for _, gr := range graphs {
		fmt.Printf("%10s", gr.name)
	}
	fmt.Println()
	for i, a := range graphs {
		fmt.Printf("%-10s", a.name)
		for j, b := range graphs {
			if j < i {
				fmt.Printf("%10s", "")
				continue
			}
			h := ned.HausdorffSampled(a.g, sampled[i], b.g, sampled[j], k)
			fmt.Printf("%10d", h)
		}
		fmt.Println()
	}
	fmt.Println("\nexpect: road-road and social-social distances well below road-social.")

	// The same cross-graph machinery node-level: the nearest-set query of
	// §13.3 through the Corpus engine. NED's integer distances tie, so
	// the "nearest neighbor" of a road node in another road graph is
	// typically a whole set of equally-near nodes.
	corpus, err := ned.NewCorpus(graphs[1].g, k, ned.WithNodes(sampled[1]))
	if err != nil {
		log.Fatal(err)
	}
	q := ned.NewSignature(graphs[0].g, sampled[0][0], k)
	nearest, err := corpus.NearestSet(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnearest set of %s:%d in %s: %d nodes at distance %d\n",
		graphs[0].name, sampled[0][0], graphs[1].name, len(nearest), nearest[0].Dist)
}
