// Deanonymize: the paper's §13.5 case study as a runnable program. A
// PGP-like web-of-trust graph is anonymized by edge perturbation; the
// attack re-identifies nodes by ranking candidates under NED and under
// the Feature baseline, showing NED's higher precision.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ned"
)

func main() {
	// The graph whose identities we know (training data).
	train := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: 0.5, Seed: 7})
	fmt.Println("training graph:", train)

	// The adversary publishes an anonymized copy: node IDs permuted and
	// 1% of edges rewired.
	anon := ned.AnonymizePerturb(train, 0.01, 99)
	fmt.Println("anonymized graph:", anon.Graph)

	const (
		k       = 3  // neighborhood depth
		topL    = 5  // report success if the true node ranks in the top 5
		queries = 30 // nodes to attack
		pool    = 300
	)

	rng := rand.New(rand.NewSource(1))
	queryNodes := rng.Perm(anon.Graph.NumNodes())[:queries]

	// Candidate pool: each query's true identity plus random decoys.
	candSet := map[ned.NodeID]bool{}
	for _, q := range queryNodes {
		candSet[anon.Identity[q]] = true
	}
	for len(candSet) < pool {
		candSet[ned.NodeID(rng.Intn(train.NumNodes()))] = true
	}
	var cands []ned.NodeID
	for c := range candSet {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	// The NED attack queries a Corpus over the training graph restricted
	// to the candidate pool; the whole attack is one parallel BatchKNN.
	corpus, err := ned.NewCorpus(train, k,
		ned.WithBackend(ned.BackendPrunedLinear), ned.WithNodes(cands))
	if err != nil {
		log.Fatal(err)
	}
	querySigs := make([]ned.Signature, len(queryNodes))
	for i, q := range queryNodes {
		querySigs[i] = ned.NewSignature(anon.Graph, ned.NodeID(q), k)
	}
	rankings, err := corpus.BatchKNN(context.Background(), querySigs, topL)
	if err != nil {
		log.Fatal(err)
	}

	candFeats := make([]ned.FeatureVector, len(cands))
	for i, c := range cands {
		candFeats[i] = ned.RegionalFeatures(train, c, 2)
	}

	nedHits, featHits := 0, 0
	for qi, q := range queryNodes {
		truth := anon.Identity[q]

		// NED attack.
		for _, n := range rankings[qi] {
			if n.Node == truth {
				nedHits++
				break
			}
		}

		// Feature-baseline attack: rank by L1 over recursive features.
		fq := ned.RegionalFeatures(anon.Graph, ned.NodeID(q), 2)
		type scored struct {
			node ned.NodeID
			d    float64
		}
		ranked := make([]scored, len(cands))
		for i, c := range cands {
			ranked[i] = scored{c, ned.FeatureL1(fq, candFeats[i])}
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].d < ranked[j].d })
		for _, r := range ranked[:topL] {
			if r.node == truth {
				featHits++
				break
			}
		}
	}

	fmt.Printf("\nde-anonymization precision (top-%d of %d candidates, %d queries):\n", topL, pool, queries)
	fmt.Printf("  NED:     %.2f\n", float64(nedHits)/queries)
	fmt.Printf("  Feature: %.2f\n", float64(featHits)/queries)
}
