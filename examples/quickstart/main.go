// Quickstart: compute NED between nodes of two different graphs, inspect
// the interpretable edit-cost breakdown, and run a nearest-neighbor
// query through the Corpus engine.
package main

import (
	"context"
	"fmt"
	"log"

	"ned"
)

func main() {
	// Two small graphs built by hand. Node 0 of g1 and node 0 of g2 have
	// similar 2-hop neighborhoods; node 5 of g2 does not.
	b1 := ned.NewGraphBuilder(6, false)
	for _, e := range [][2]ned.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {4, 5}} {
		b1.AddEdge(e[0], e[1])
	}
	g1 := b1.Build()

	b2 := ned.NewGraphBuilder(7, false)
	for _, e := range [][2]ned.NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {4, 5}, {5, 6}} {
		b2.AddEdge(e[0], e[1])
	}
	g2 := b2.Build()

	// NED with k = 2: compare the 2-hop neighborhood trees.
	fmt.Println("NED(g1:0, g2:0, k=2) =", ned.Distance(g1, 0, g2, 0, 2))
	fmt.Println("NED(g1:0, g2:5, k=2) =", ned.Distance(g1, 0, g2, 5, 2))

	// TED* is interpretable: the report decomposes the distance into leaf
	// insertions/deletions (padding) and same-level moves per depth.
	t1 := ned.KAdjacentTree(g1, 0, 4)
	t2 := ned.KAdjacentTree(g2, 0, 4)
	rep := ned.TEDStarReport(t1, t2)
	fmt.Printf("\nTED* = %d, per-level breakdown:\n", rep.Distance)
	for _, lc := range rep.Levels {
		fmt.Printf("  depth %d: %d leaf insert/delete, %d moves\n", lc.Depth, lc.Padding, lc.Matching)
	}

	// Nearest-neighbor query: which node of g2 is most similar to g1:0?
	// The Corpus engine indexes g2's nodes once and serves concurrent,
	// cancelable queries; the inter-graph query arrives as a signature.
	corpus, err := ned.NewCorpus(g2, 2)
	if err != nil {
		log.Fatal(err)
	}
	query := ned.NewSignature(g1, 0, 2)
	top, err := corpus.KNNSignature(context.Background(), query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnearest neighbors of g1:0 in g2:")
	for _, n := range top {
		fmt.Printf("  g2:%d at distance %d\n", n.Node, n.Dist)
	}
}
