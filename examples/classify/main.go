// Classify: across-network node classification (transfer learning on
// graphs, the §1 motivation). Nodes of a labeled source graph play the
// role of training examples; nodes of a separate unlabeled target graph
// are classified by 1-nearest-neighbor under NED. Structural roles here
// are degree classes of a road-like versus hub-like mixture graph, so
// ground truth is checkable.
package main

import (
	"context"
	"fmt"
	"log"

	"ned"
)

// role buckets a node by local structure: the "role" a classifier would
// learn. Hubs (degree >= 6), connectors (3-5), and peripherals (<= 2).
func role(g *ned.Graph, v ned.NodeID) string {
	switch d := g.Degree(v); {
	case d >= 6:
		return "hub"
	case d >= 3:
		return "connector"
	default:
		return "peripheral"
	}
}

func main() {
	// Two independently generated graphs from the same family: knowledge
	// learned on source should transfer to target.
	source := ned.MustGenerateDataset(ned.DatasetAMZN, ned.DatasetOptions{Scale: 0.25, Seed: 3})
	target := ned.MustGenerateDataset(ned.DatasetAMZN, ned.DatasetOptions{Scale: 0.25, Seed: 4})
	fmt.Println("source:", source)
	fmt.Println("target:", target)

	const k = 2
	const trainN, testN = 400, 100

	// "Labeled" source nodes.
	var trainNodes []ned.NodeID
	for v := 0; v < trainN && v < source.NumNodes(); v++ {
		trainNodes = append(trainNodes, ned.NodeID(v))
	}

	// Index the training nodes in a Corpus backed by a VP-tree: NED is a
	// metric, so the index returns exactly the nearest neighbor. BatchKNN
	// classifies every test node in one parallel, cancelable call.
	corpus, err := ned.NewCorpus(source, k,
		ned.WithBackend(ned.BackendVP), ned.WithNodes(trainNodes))
	if err != nil {
		log.Fatal(err)
	}

	var testNodes []ned.NodeID
	for v := 0; v < testN && v < target.NumNodes(); v++ {
		testNodes = append(testNodes, ned.NodeID(v))
	}
	testSigs := ned.Signatures(target, testNodes, k)
	nns, err := corpus.BatchKNN(context.Background(), testSigs, 1)
	if err != nil {
		log.Fatal(err)
	}

	correct, total := 0, 0
	confusion := map[string]map[string]int{}
	for i, v := range testNodes {
		if len(nns[i]) == 0 {
			continue
		}
		predicted := role(source, nns[i][0].Node)
		actual := role(target, v)
		if confusion[actual] == nil {
			confusion[actual] = map[string]int{}
		}
		confusion[actual][predicted]++
		if predicted == actual {
			correct++
		}
		total++
	}

	fmt.Printf("\n1-NN transfer classification over NED (k=%d): %d/%d correct (%.0f%%)\n",
		k, correct, total, 100*float64(correct)/float64(total))
	fmt.Println("confusion (actual -> predicted):")
	for _, actual := range []string{"hub", "connector", "peripheral"} {
		fmt.Printf("  %-10s %v\n", actual, confusion[actual])
	}
	stats := corpus.Stats()
	fmt.Printf("VP-tree distance calls: %d (vs %d for full scan)\n",
		stats.DistanceCalls, total*len(trainNodes))
}
