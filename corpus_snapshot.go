package ned

import (
	"bufio"
	"fmt"
	"io"

	"ned/internal/ned"
	"ned/internal/segment"
	"ned/internal/vptree"
)

// Snapshot writes the corpus — its configuration and every live
// signature, mutations included — to w as a versioned "# ned corpus v2"
// sharded manifest (internal/ned/persist): one section per shard,
// node-ascending within each, so LoadCorpus can restore it without
// re-extracting a single BFS tree. While the placement is still the
// hash seed layout the header stays "v2" and equal corpora with equal
// shard counts are byte-identical on disk; a rebalanced corpus writes
// a "v3" header carrying its placement directory so it restores into
// the same layout. Snapshotting a corpus that has never been queried
// materializes its signatures first (but not the index structures,
// which LoadCorpus rebuilds lazily anyway).
//
// The cut is consistent per shard: the epochs of all shards are read
// in one pass under the engine's write gate, then serialized outside
// any lock — w may be a slow disk or network writer, and queries keep
// serving for the whole transfer. Undirected snapshots double as plain
// signature files: ReadSignatures parses them (section markers are
// comments), and LoadCorpus parses legacy signature files in turn.
func (c *Corpus) Snapshot(w io.Writer) error {
	tab, eps := c.snapshotEpochs()
	meta := ned.CorpusMeta{
		Version:  2,
		Backend:  c.cfg.backend.String(),
		K:        c.k,
		Directed: c.cfg.directed,
		Shards:   len(tab.shards),
		Place:    tab.place,
	}
	shardItems := make([][]ned.Item, len(eps))
	for i, ep := range eps {
		shardItems[i] = sortedShardItems(ep.byNode)
	}
	return ned.WriteShardedCorpusItems(w, meta, shardItems)
}

// SnapshotSegment writes the corpus to w as a binary segment
// (internal/segment): the same consistent cut as Snapshot, but carrying
// the compiled cascade profiles, the subtree-shape dictionary, the
// backing graph (when attached), and — on a VP-backed corpus whose
// indexes have been built — each shard's vantage-point tree structure,
// length- and checksum-framed. LoadCorpus restores it — the format is
// sniffed from the first bytes — without re-extracting, re-profiling,
// or (when the index dumps are present) re-indexing anything, which is
// what makes binary restarts fast; the price is a format that is
// neither human-readable nor diff-friendly. Snapshotting one corpus
// twice is byte-identical; unlike Snapshot, two equal corpora may
// differ on disk, because the dictionary records shapes in interning
// order and parallel profiling interns in scheduling order.
func (c *Corpus) SnapshotSegment(w io.Writer) error {
	tab, eps := c.snapshotEpochs()
	g := c.g.Load()
	shardItems := make([][]ned.Item, len(eps))
	for i, ep := range eps {
		shardItems[i] = sortedShardItems(ep.byNode)
	}
	meta := segment.Meta{Backend: c.cfg.backend.String(), K: c.k, Directed: c.cfg.directed, Place: tab.place}
	return segment.Write(w, meta, c.dict, g, shardItems, shardIndexDumps(eps))
}

// shardIndexDumps exports every shard's built VP-tree index for
// persistence. It returns nil — no index sections at all — unless at
// least one shard has a dump worth carrying: a built, tombstone-free
// VP backend (scan backends rebuild for free, and a tombstoned tree
// references items the snapshot no longer holds; either way those
// shards rebuild lazily on first query, exactly as they would have
// without index sections).
func shardIndexDumps(eps []*shardEpoch) []segment.VPIndex {
	dumps := make([]segment.VPIndex, len(eps))
	any := false
	for i, ep := range eps {
		if ep.ix == nil {
			continue
		}
		nodes, tail, ok := ned.ExportVPBackend(ep.ix)
		if !ok {
			continue
		}
		vix := &dumps[i]
		vix.Nodes = make([]segment.VPNode, len(nodes))
		for j := range nodes {
			e := &nodes[j]
			vix.Nodes[j] = segment.VPNode{
				Node:   e.Item.Node,
				Radius: e.Radius,
				Inside: e.Inside,
				Beyond: e.Beyond,
			}
		}
		vix.Tail = make([]NodeID, len(tail))
		for j := range tail {
			vix.Tail[j] = tail[j].Node
		}
		any = any || len(vix.Nodes)+len(vix.Tail) > 0
	}
	if !any {
		return nil
	}
	return dumps
}

// snapshotEpochs materializes (if needed) and cuts a consistent
// table + epoch vector under the engine's write gate (which also
// excludes rebalances, so the table and epochs agree).
func (c *Corpus) snapshotEpochs() (*shardTable, []*shardEpoch) {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	c.materializeAllLocked()
	tab := c.tab.Load()
	eps := make([]*shardEpoch, len(tab.shards))
	for i, sh := range tab.shards {
		eps[i] = sh.epoch.Load()
	}
	return tab, eps
}

// LoadCorpus restores a corpus from a Snapshot or SnapshotSegment
// stream — the binary segment format (recognized by its magic bytes),
// a v2 sharded manifest, a v1 single-index snapshot, or a legacy
// WriteSignatures file (which predates snapshot metadata and loads
// with the default backend, undirected, k taken from its signatures).
// Parse failures wrap ErrBadSnapshot. Shard placement is always
// re-derived by hashing the restored node IDs, so any snapshot loads
// into any shard count: WithShards overrides, the recorded count is
// the default, and v1/legacy files spread across the standard
// GOMAXPROCS-derived default.
//
// The restored corpus answers signature queries — and node queries for
// indexed nodes — identically to the corpus that was snapshotted.
// Options apply on top of the recorded metadata: WithBackend overrides
// the recorded backend, WithWorkers, WithShards, and
// WithRebuildThreshold tune the restored engine, and WithGraph
// re-attaches the backing graph (overriding a segment's embedded one),
// re-enabling Insert, UpdateGraph, Signature, and queries for
// unindexed nodes. WithNodes and WithDirected are ignored: the
// snapshot's items define the node set and directedness.
//
// Text snapshots carry no profiles, so loading one recompiles the
// filter cascade against a fresh dictionary; binary segments carry
// profiles and dictionary both, and skip that work entirely.
func LoadCorpus(r io.Reader, opts ...CorpusOption) (*Corpus, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	prefix, _ := br.Peek(len(segment.Magic))
	if segment.IsSegment(prefix) {
		return loadSegmentCorpus(br, opts...)
	}
	return loadTextCorpus(br, opts...)
}

// loadSegmentCorpus restores a binary segment stream: the dictionary
// and compiled profiles are adopted as-is.
func loadSegmentCorpus(r io.Reader, opts ...CorpusOption) (*Corpus, error) {
	meta, items, dict, g, indexes, err := segment.Read(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	cfg := corpusConfig{rebuildAt: defaultRebuildThreshold, directed: meta.Directed, planner: true}
	if cfg.backend, err = ParseBackend(meta.Backend); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if meta.K < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadSnapshot, meta.K)
	}
	userGraph := applyLoadOptions(&cfg, meta.Shards, opts)
	if cfg.backend < 0 || cfg.backend >= numBackends {
		return nil, fmt.Errorf("%w: %d", ErrBadBackend, int(cfg.backend))
	}
	if userGraph != nil {
		g = userGraph
	}
	if err := validateLoadedGraph(cfg, g, items); err != nil {
		return nil, err
	}
	c := newShardedCorpus(meta.K, cfg, g)
	// Adopt the segment's dictionary: every loaded profile is expressed
	// against its label IDs. The fresh interner newShardedCorpus made
	// has seen nothing and is safely replaced.
	c.dict = dict
	installPlacement(c, meta.Place)
	installLoadedItems(c, items)
	// Restore persisted VP indexes — but only when they still describe
	// this corpus: the engine must run the VP backend (WithBackend may
	// have overridden it) with the snapshot's own shard count (index
	// dumps are per-shard; a different count re-partitions the items).
	// Otherwise the dumps are silently dropped and shards build lazily,
	// exactly as a dump-free segment would.
	if indexes != nil && cfg.backend == BackendVP && cfg.shards == meta.Shards {
		if err := restoreShardIndexes(c, indexes); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
	}
	return c, nil
}

// restoreShardIndexes rebuilds each shard's VP backend from its
// persisted structure dump — no metric evaluations, just resolving
// node references against the freshly installed item tables. A dump
// must cover its shard's items exactly (every node referenced once);
// anything else means the segment's sections disagree with each other,
// which is corruption and fails loudly. Runs during load, before the
// corpus is shared, so storing into the live epochs is safe.
func restoreShardIndexes(c *Corpus, indexes []segment.VPIndex) error {
	for si := range indexes {
		ix := &indexes[si]
		if len(ix.Nodes) == 0 && len(ix.Tail) == 0 {
			continue
		}
		ep := c.tab.Load().shards[si].epoch.Load()
		if got := len(ix.Nodes) + len(ix.Tail); got != len(ep.byNode) {
			return fmt.Errorf("segment: shard %d index references %d items, shard holds %d", si, got, len(ep.byNode))
		}
		seen := make(map[NodeID]bool, len(ep.byNode))
		resolve := func(v NodeID) (ned.Item, error) {
			it, ok := ep.byNode[v]
			if !ok {
				return ned.Item{}, fmt.Errorf("segment: shard %d index references node %d, which the shard does not hold", si, v)
			}
			if seen[v] {
				return ned.Item{}, fmt.Errorf("segment: shard %d index references node %d twice", si, v)
			}
			seen[v] = true
			return it, nil
		}
		nodes := make([]vptree.ExportNode[ned.Item], len(ix.Nodes))
		for i := range ix.Nodes {
			n := &ix.Nodes[i]
			it, err := resolve(n.Node)
			if err != nil {
				return err
			}
			nodes[i] = vptree.ExportNode[ned.Item]{Item: it, Radius: n.Radius, Inside: n.Inside, Beyond: n.Beyond}
		}
		tail := make([]ned.Item, len(ix.Tail))
		for i, v := range ix.Tail {
			it, err := resolve(v)
			if err != nil {
				return err
			}
			tail[i] = it
		}
		backend, err := ned.NewVPBackendFromExport(nodes, tail)
		if err != nil {
			return fmt.Errorf("segment: shard %d index: %w", si, err)
		}
		ep.ix = backend
	}
	return nil
}

// loadTextCorpus restores the text formats (v2/v1/legacy signatures).
func loadTextCorpus(r io.Reader, opts ...CorpusOption) (*Corpus, error) {
	meta, items, err := ned.ReadCorpusItems(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	cfg := corpusConfig{backend: BackendVP, rebuildAt: defaultRebuildThreshold, planner: true}
	k := meta.K
	if meta.Version >= 1 {
		if cfg.backend, err = ParseBackend(meta.Backend); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
		cfg.directed = meta.Directed
	} else {
		// Legacy signature file: derive k from the signatures themselves.
		if len(items) == 0 {
			return nil, fmt.Errorf("%w: no signatures in input", ErrBadSnapshot)
		}
		k = items[0].K
		for _, it := range items {
			if it.K != k {
				return nil, fmt.Errorf("%w: mixed k values %d and %d (a corpus has one k)", ErrBadSnapshot, k, it.K)
			}
		}
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadSnapshot, k)
	}
	g := applyLoadOptions(&cfg, meta.Shards, opts)
	if cfg.backend < 0 || cfg.backend >= numBackends {
		return nil, fmt.Errorf("%w: %d", ErrBadBackend, int(cfg.backend))
	}
	if err := validateLoadedGraph(cfg, g, items); err != nil {
		return nil, err
	}
	c := newShardedCorpus(k, cfg, g)
	// The text formats carry no profiles (they predate them and stay
	// diff-friendly); recompile them against the fresh corpus
	// dictionary so restored corpora serve the same filter cascade as
	// freshly built ones.
	ned.ProfileItems(items, c.dict, cfg.workers)
	installPlacement(c, meta.Place)
	installLoadedItems(c, items)
	return c, nil
}

// installPlacement adopts a snapshot-recorded placement directory into
// the (not yet shared) corpus. Dropped silently when the restored
// engine's shard count differs from the recorded layout's — WithShards
// overrides the placement just as it always overrode the recorded
// count, and the items rehash into the seed layout instead.
func installPlacement(c *Corpus, place *ned.Placement) {
	if place == nil || place.Trivial() {
		return
	}
	tab := c.tab.Load()
	if place.Shards != len(tab.shards) {
		return
	}
	c.tab.Store(&shardTable{shards: tab.shards, place: place})
}

// applyLoadOptions overlays user options onto the snapshot-recorded
// configuration, returning the WithGraph graph (nil if none).
func applyLoadOptions(cfg *corpusConfig, metaShards int, opts []CorpusOption) *Graph {
	userCfg := corpusConfig{backend: cfg.backend, rebuildAt: cfg.rebuildAt, planner: true}
	for _, opt := range opts {
		opt(&userCfg)
	}
	cfg.backend = userCfg.backend
	cfg.workers = userCfg.workers
	cfg.planner = userCfg.planner
	cfg.rebuildAt = userCfg.rebuildAt
	if cfg.rebuildAt <= 0 {
		cfg.rebuildAt = defaultRebuildThreshold
	}
	cfg.shards = userCfg.shards
	if cfg.shards <= 0 {
		cfg.shards = metaShards // 0 for v0/v1: fall through to the default
	}
	cfg.shards = resolveShards(cfg.shards)
	return userCfg.graph
}

// validateLoadedGraph checks a restored item set against the graph the
// corpus will serve with (which may be nil: signature-only corpora).
func validateLoadedGraph(cfg corpusConfig, g *Graph, items []ned.Item) error {
	if g == nil {
		return nil
	}
	// A directed corpus restored onto an undirected graph would
	// extract In==Out signatures for every later Insert, silently
	// diverging from the snapshot's true directed signatures — fail
	// fast instead, like UpdateGraph's directedness check. (The
	// reverse — an undirected-NED corpus over a directed graph — is
	// a legitimate combination NewCorpus accepts.)
	if cfg.directed && !g.Directed() {
		return fmt.Errorf("%w: directed snapshot needs a directed graph", ErrBadSnapshot)
	}
	for _, it := range items {
		if int(it.Node) < 0 || int(it.Node) >= g.NumNodes() {
			return fmt.Errorf("%w: snapshot node %d not in the attached graph's [0, %d)",
				ErrNodeOutOfRange, it.Node, g.NumNodes())
		}
	}
	return nil
}

// installLoadedItems seeds every shard with a materialized item table
// and files the restored items through the placement table (the hash
// seed layout unless installPlacement adopted a recorded directory).
func installLoadedItems(c *Corpus, items []ned.Item) {
	// The snapshot's items arrive pre-materialized: give every shard a
	// non-nil item table (its keys are the membership) up front.
	for _, sh := range c.tab.Load().shards {
		ep := sh.epoch.Load()
		ep.members = nil
		ep.byNode = make(map[NodeID]ned.Item)
	}
	for _, it := range items {
		c.shardFor(it.Node).epoch.Load().byNode[it.Node] = it
	}
	c.noteAvgSig(items)
	c.materialized.Store(true)
}
