package ned

import (
	"fmt"
	"io"

	"ned/internal/ned"
)

// Snapshot writes the corpus — its configuration and every live
// signature, mutations included — to w in the versioned text format of
// internal/ned/persist, so LoadCorpus can restore it without
// re-extracting a single BFS tree. Items are written node-ascending,
// making equal corpora byte-identical on disk. Snapshotting a corpus
// that has never been queried materializes its signatures first (but
// not the index structure, which LoadCorpus rebuilds lazily anyway).
//
// Undirected snapshots double as plain signature files: ReadSignatures
// parses them, and LoadCorpus parses legacy signature files in turn.
func (c *Corpus) Snapshot(w io.Writer) error {
	// Copy the live items under the read lock, then serialize outside
	// any lock: w may be a slow disk or network writer, and a writer
	// waiting on the mutex would otherwise stall every new query for
	// the whole transfer. Items reference immutable trees, so the
	// copied slice stays consistent. The write lock is taken just for
	// the first materialization, if it is still pending.
	c.mu.RLock()
	if c.byNode == nil {
		c.mu.RUnlock()
		c.mu.Lock()
		c.materializeLocked()
		c.mu.Unlock()
		c.mu.RLock()
	}
	meta := ned.CorpusMeta{
		Version:  1,
		Backend:  c.cfg.backend.String(),
		K:        c.k,
		Directed: c.cfg.directed,
	}
	items := c.sortedItemsLocked()
	c.mu.RUnlock()
	return ned.WriteCorpusItems(w, meta, items)
}

// LoadCorpus restores a corpus from a Snapshot stream, or from a legacy
// WriteSignatures file (which predates snapshot metadata and loads with
// the default backend, undirected, k taken from its signatures). Parse
// failures wrap ErrBadSnapshot.
//
// The restored corpus answers signature queries — and node queries for
// indexed nodes — identically to the corpus that was snapshotted.
// Options apply on top of the recorded metadata: WithBackend overrides
// the recorded backend, WithWorkers and WithRebuildThreshold tune the
// restored engine, and WithGraph re-attaches the backing graph,
// re-enabling Insert, UpdateGraph, Signature, and queries for
// unindexed nodes. WithNodes and WithDirected are ignored: the
// snapshot's items define the node set and directedness.
func LoadCorpus(r io.Reader, opts ...CorpusOption) (*Corpus, error) {
	meta, items, err := ned.ReadCorpusItems(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	cfg := corpusConfig{backend: BackendVP, rebuildAt: defaultRebuildThreshold}
	k := meta.K
	if meta.Version >= 1 {
		if cfg.backend, err = ParseBackend(meta.Backend); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
		cfg.directed = meta.Directed
	} else {
		// Legacy signature file: derive k from the signatures themselves.
		if len(items) == 0 {
			return nil, fmt.Errorf("%w: no signatures in input", ErrBadSnapshot)
		}
		k = items[0].K
		for _, it := range items {
			if it.K != k {
				return nil, fmt.Errorf("%w: mixed k values %d and %d (a corpus has one k)", ErrBadSnapshot, k, it.K)
			}
		}
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadSnapshot, k)
	}
	userCfg := corpusConfig{backend: cfg.backend, rebuildAt: cfg.rebuildAt}
	for _, opt := range opts {
		opt(&userCfg)
	}
	cfg.backend = userCfg.backend
	cfg.workers = userCfg.workers
	cfg.rebuildAt = userCfg.rebuildAt
	if cfg.rebuildAt <= 0 {
		cfg.rebuildAt = defaultRebuildThreshold
	}
	if cfg.backend < 0 || cfg.backend >= numBackends {
		return nil, fmt.Errorf("%w: %d", ErrBadBackend, int(cfg.backend))
	}
	g := userCfg.graph
	if g != nil {
		// A directed corpus restored onto an undirected graph would
		// extract In==Out signatures for every later Insert, silently
		// diverging from the snapshot's true directed signatures — fail
		// fast instead, like UpdateGraph's directedness check. (The
		// reverse — an undirected-NED corpus over a directed graph — is
		// a legitimate combination NewCorpus accepts.)
		if cfg.directed && !g.Directed() {
			return nil, fmt.Errorf("%w: directed snapshot needs a directed graph", ErrBadSnapshot)
		}
		for _, it := range items {
			if int(it.Node) < 0 || int(it.Node) >= g.NumNodes() {
				return nil, fmt.Errorf("%w: snapshot node %d not in the attached graph's [0, %d)",
					ErrNodeOutOfRange, it.Node, g.NumNodes())
			}
		}
	}
	members := make(map[NodeID]bool, len(items))
	byNode := make(map[NodeID]ned.Item, len(items))
	for _, it := range items {
		members[it.Node] = true
		byNode[it.Node] = it
	}
	return &Corpus{k: k, cfg: cfg, g: g, members: members, byNode: byNode}, nil
}
