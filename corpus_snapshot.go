package ned

import (
	"fmt"
	"io"

	"ned/internal/ned"
)

// Snapshot writes the corpus — its configuration and every live
// signature, mutations included — to w as a versioned "# ned corpus v2"
// sharded manifest (internal/ned/persist): one section per shard,
// node-ascending within each, so LoadCorpus can restore it without
// re-extracting a single BFS tree. Shard placement is a pure hash of
// the node ID, so equal corpora with equal shard counts are
// byte-identical on disk. Snapshotting a corpus that has never been
// queried materializes its signatures first (but not the index
// structures, which LoadCorpus rebuilds lazily anyway).
//
// The cut is consistent per shard: the epochs of all shards are read
// in one pass under the engine's write gate, then serialized outside
// any lock — w may be a slow disk or network writer, and queries keep
// serving for the whole transfer. Undirected snapshots double as plain
// signature files: ReadSignatures parses them (section markers are
// comments), and LoadCorpus parses legacy signature files in turn.
func (c *Corpus) Snapshot(w io.Writer) error {
	c.gmu.Lock()
	c.materializeAllLocked()
	eps := make([]*shardEpoch, len(c.shards))
	for i, sh := range c.shards {
		eps[i] = sh.epoch.Load()
	}
	c.gmu.Unlock()
	meta := ned.CorpusMeta{
		Version:  2,
		Backend:  c.cfg.backend.String(),
		K:        c.k,
		Directed: c.cfg.directed,
		Shards:   len(c.shards),
	}
	shardItems := make([][]ned.Item, len(eps))
	for i, ep := range eps {
		shardItems[i] = sortedShardItems(ep.byNode)
	}
	return ned.WriteShardedCorpusItems(w, meta, shardItems)
}

// LoadCorpus restores a corpus from a Snapshot stream — a v2 sharded
// manifest, a v1 single-index snapshot, or a legacy WriteSignatures
// file (which predates snapshot metadata and loads with the default
// backend, undirected, k taken from its signatures). Parse failures
// wrap ErrBadSnapshot. Shard placement is always re-derived by hashing
// the restored node IDs, so any snapshot loads into any shard count:
// WithShards overrides, a v2 manifest's recorded count is the default,
// and v1/legacy files spread across the standard GOMAXPROCS-derived
// default.
//
// The restored corpus answers signature queries — and node queries for
// indexed nodes — identically to the corpus that was snapshotted.
// Options apply on top of the recorded metadata: WithBackend overrides
// the recorded backend, WithWorkers, WithShards, and
// WithRebuildThreshold tune the restored engine, and WithGraph
// re-attaches the backing graph, re-enabling Insert, UpdateGraph,
// Signature, and queries for unindexed nodes. WithNodes and
// WithDirected are ignored: the snapshot's items define the node set
// and directedness.
func LoadCorpus(r io.Reader, opts ...CorpusOption) (*Corpus, error) {
	meta, items, err := ned.ReadCorpusItems(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	cfg := corpusConfig{backend: BackendVP, rebuildAt: defaultRebuildThreshold}
	k := meta.K
	if meta.Version >= 1 {
		if cfg.backend, err = ParseBackend(meta.Backend); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
		cfg.directed = meta.Directed
	} else {
		// Legacy signature file: derive k from the signatures themselves.
		if len(items) == 0 {
			return nil, fmt.Errorf("%w: no signatures in input", ErrBadSnapshot)
		}
		k = items[0].K
		for _, it := range items {
			if it.K != k {
				return nil, fmt.Errorf("%w: mixed k values %d and %d (a corpus has one k)", ErrBadSnapshot, k, it.K)
			}
		}
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadSnapshot, k)
	}
	userCfg := corpusConfig{backend: cfg.backend, rebuildAt: cfg.rebuildAt}
	for _, opt := range opts {
		opt(&userCfg)
	}
	cfg.backend = userCfg.backend
	cfg.workers = userCfg.workers
	cfg.rebuildAt = userCfg.rebuildAt
	if cfg.rebuildAt <= 0 {
		cfg.rebuildAt = defaultRebuildThreshold
	}
	cfg.shards = userCfg.shards
	if cfg.shards <= 0 {
		cfg.shards = meta.Shards // 0 for v0/v1: fall through to the default
	}
	cfg.shards = resolveShards(cfg.shards)
	if cfg.backend < 0 || cfg.backend >= numBackends {
		return nil, fmt.Errorf("%w: %d", ErrBadBackend, int(cfg.backend))
	}
	g := userCfg.graph
	if g != nil {
		// A directed corpus restored onto an undirected graph would
		// extract In==Out signatures for every later Insert, silently
		// diverging from the snapshot's true directed signatures — fail
		// fast instead, like UpdateGraph's directedness check. (The
		// reverse — an undirected-NED corpus over a directed graph — is
		// a legitimate combination NewCorpus accepts.)
		if cfg.directed && !g.Directed() {
			return nil, fmt.Errorf("%w: directed snapshot needs a directed graph", ErrBadSnapshot)
		}
		for _, it := range items {
			if int(it.Node) < 0 || int(it.Node) >= g.NumNodes() {
				return nil, fmt.Errorf("%w: snapshot node %d not in the attached graph's [0, %d)",
					ErrNodeOutOfRange, it.Node, g.NumNodes())
			}
		}
	}
	c := newShardedCorpus(k, cfg, g)
	// The snapshot format carries no profiles (it predates them and
	// stays diff-friendly); recompile them against the fresh corpus
	// dictionary so restored corpora serve the same filter cascade as
	// freshly built ones.
	ned.ProfileItems(items, c.dict, cfg.workers)
	// The snapshot's items arrive pre-materialized: give every shard a
	// non-nil item table (its keys are the membership) up front.
	for _, sh := range c.shards {
		ep := sh.epoch.Load()
		ep.members = nil
		ep.byNode = make(map[NodeID]ned.Item)
	}
	for _, it := range items {
		c.shardFor(it.Node).epoch.Load().byNode[it.Node] = it
	}
	c.materialized.Store(true)
	return c, nil
}
