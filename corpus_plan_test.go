package ned

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// This file pins the cost-based planner's only acceptable behavior:
// pure strategy, zero answer drift. Whatever fan-out mode or per-shard
// scan-vs-tree choice the planner makes, answers must be node-identical
// to the WithPlanner(false) engine — statically, under churn, and
// across snapshot round-trips — on every backend and shard count.

// plannerChurn applies the same seeded Remove/Insert churn to every
// corpus, leaving all of them with an identical (shrunken) membership.
func plannerChurn(t *testing.T, g *Graph, seed int64, corpora ...*Corpus) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	victims := make([]NodeID, 0, 12)
	for len(victims) < 12 {
		victims = append(victims, NodeID(rng.Intn(g.NumNodes())))
	}
	back := victims[:len(victims)/2] // re-inserted; the rest stay gone
	for _, c := range corpora {
		if err := c.Remove(victims...); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		if err := c.Insert(back...); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
}

// TestPlannerEquivalence: planner on (the default) versus
// WithPlanner(false) must answer node-identically for every backend,
// single- and multi-shard, before and after churn, and the equivalence
// must survive a snapshot round-trip loaded under either setting.
func TestPlannerEquivalence(t *testing.T) {
	g := randomGraph(240, 720, 11)
	const k = 2
	for _, b := range allBackends {
		for _, shards := range []int{1, 4} {
			label := fmt.Sprintf("%v/shards=%d", b, shards)
			on, err := NewCorpus(g, k, WithBackend(b), WithShards(shards))
			if err != nil {
				t.Fatalf("%s: NewCorpus: %v", label, err)
			}
			off, err := NewCorpus(g, k, WithBackend(b), WithShards(shards), WithPlanner(false))
			if err != nil {
				t.Fatalf("%s: NewCorpus(planner off): %v", label, err)
			}
			want := queryFingerprint(t, on, g, k)
			if got := queryFingerprint(t, off, g, k); got != want {
				t.Errorf("%s: planner-off answers diverge from planner-on:\n got %s\nwant %s", label, got, want)
			}

			plannerChurn(t, g, int64(b)*100+int64(shards), on, off)
			want = queryFingerprint(t, on, g, k)
			if got := queryFingerprint(t, off, g, k); got != want {
				t.Errorf("%s: post-churn planner-off answers diverge:\n got %s\nwant %s", label, got, want)
			}

			var buf bytes.Buffer
			if err := on.Snapshot(&buf); err != nil {
				t.Fatalf("%s: Snapshot: %v", label, err)
			}
			for _, load := range []struct {
				name string
				opts []CorpusOption
			}{
				{"planner on", nil},
				{"planner off", []CorpusOption{WithPlanner(false)}},
			} {
				c2, err := LoadCorpus(bytes.NewReader(buf.Bytes()), load.opts...)
				if err != nil {
					t.Fatalf("%s: LoadCorpus (%s): %v", label, load.name, err)
				}
				if got := queryFingerprint(t, c2, g, k); got != want {
					t.Errorf("%s: snapshot round-trip (%s) diverges:\n got %s\nwant %s", label, load.name, got, want)
				}
			}
		}
	}
}

// TestPlannerStatsCounters: a planner-on corpus must report itself and
// account every query to exactly one plan mode; WithPlanner(false)
// must leave the plan counters untouched.
func TestPlannerStatsCounters(t *testing.T) {
	g := randomGraph(120, 360, 7)
	on, err := NewCorpus(g, 2, WithShards(4))
	if err != nil {
		t.Fatalf("NewCorpus: %v", err)
	}
	off, err := NewCorpus(g, 2, WithShards(4), WithPlanner(false))
	if err != nil {
		t.Fatalf("NewCorpus(planner off): %v", err)
	}
	queryFingerprint(t, on, g, 2)
	queryFingerprint(t, off, g, 2)

	s := on.Stats()
	if !s.Planner {
		t.Error("planner-on corpus reports Planner=false")
	}
	planned := s.PlanParallel + s.PlanSequential + s.PlanSingle
	if planned == 0 {
		t.Error("planner-on corpus served queries but recorded no plan modes")
	}
	if planned != s.Queries {
		t.Errorf("plan modes (%d) do not account for every query (%d)", planned, s.Queries)
	}

	so := off.Stats()
	if so.Planner {
		t.Error("WithPlanner(false) corpus reports Planner=true")
	}
	if n := so.PlanParallel + so.PlanSequential + so.PlanSingle + so.PlanScans; n != 0 {
		t.Errorf("planner-off corpus recorded %d plan counter bumps", n)
	}

	on.ResetStats()
	s = on.Stats()
	if n := s.PlanParallel + s.PlanSequential + s.PlanSingle + s.PlanScans; n != 0 {
		t.Errorf("ResetStats left plan counters at %d", n)
	}
	if !s.Planner {
		t.Error("ResetStats cleared the Planner flag")
	}
}
