package ned

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"ned/internal/segment"
)

// queryFingerprint runs a deterministic query battery and renders the
// results as a string, so two corpora can be compared for node-identical
// answers.
func queryFingerprint(t *testing.T, c *Corpus, gQuery *Graph, k int) string {
	t.Helper()
	ctx := context.Background()
	var sb strings.Builder
	for q := 0; q < 6; q++ {
		sig := NewSignature(gQuery, NodeID(q*7%gQuery.NumNodes()), k)
		res, err := c.KNNSignature(ctx, sig, 5)
		if err != nil {
			t.Fatalf("KNNSignature: %v", err)
		}
		fmt.Fprintln(&sb, res)
		rng, err := c.Range(ctx, sig, 3)
		if err != nil {
			t.Fatalf("Range: %v", err)
		}
		fmt.Fprintln(&sb, rng)
	}
	return sb.String()
}

// nodeFingerprint renders KNN answers for a fixed set of indexed
// nodes — the query form that works for directed and undirected
// corpora alike.
func nodeFingerprint(t *testing.T, c *Corpus, nodes []NodeID) string {
	t.Helper()
	ctx := context.Background()
	var sb strings.Builder
	for _, v := range nodes {
		res, err := c.KNN(ctx, v, 5)
		if err != nil {
			t.Fatalf("KNN(%d): %v", v, err)
		}
		fmt.Fprintln(&sb, res)
	}
	return sb.String()
}

// randomDirectedGraph builds a seeded directed graph.
func randomDirectedGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewGraphBuilder(n, true)
	for i := 0; i < m; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// SnapshotSegment → LoadCorpus must reproduce a query-identical corpus
// for every backend, both directednesses, without recompiling profiles
// (the dictionary arrives with the segment).
func TestSnapshotSegmentRoundTrip(t *testing.T) {
	queryNodes := []NodeID{0, 7, 13, 21, 40, 66}
	for _, directed := range []bool{false, true} {
		var g *Graph
		opts := []CorpusOption{}
		if directed {
			g = randomDirectedGraph(80, 170, 300)
			opts = append(opts, WithDirected())
		} else {
			g = randomGraph(80, 170, 300)
		}
		for _, b := range allBackends {
			c, err := NewCorpus(g, 2, append(opts, WithBackend(b))...)
			if err != nil {
				t.Fatalf("NewCorpus(%v): %v", b, err)
			}
			want := nodeFingerprint(t, c, queryNodes)

			var buf bytes.Buffer
			if err := c.SnapshotSegment(&buf); err != nil {
				t.Fatalf("SnapshotSegment(%v): %v", b, err)
			}
			c2, err := LoadCorpus(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("LoadCorpus(%v segment): %v", b, err)
			}
			if got := nodeFingerprint(t, c2, queryNodes); got != want {
				t.Fatalf("backend %v directed=%v: segment round-trip changed answers:\n got %s\nwant %s",
					b, directed, got, want)
			}
			// The dictionary traveled with the segment: same shape count,
			// and the loaded profiles resolve against it.
			if c2.dict.Len() != c.dict.Len() {
				t.Fatalf("dictionary did not travel: %d shapes, want %d", c2.dict.Len(), c.dict.Len())
			}
			// The embedded graph re-enables mutation without WithGraph.
			if err := c2.Insert(0); err != nil {
				t.Fatalf("Insert on segment-loaded corpus: %v", err)
			}
		}
	}
}

// A segment load must honor the same option overlay as text loads.
func TestSegmentLoadOptions(t *testing.T) {
	g := randomGraph(60, 130, 310)
	c, err := NewCorpus(g, 2, WithBackend(BackendVP))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SnapshotSegment(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCorpus(bytes.NewReader(buf.Bytes()),
		WithBackend(BackendBK), WithShards(3), WithGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	if c2.cfg.backend != BackendBK || len(c2.shardSlots()) != 3 {
		t.Fatalf("options ignored: backend %v, %d shards", c2.cfg.backend, len(c2.shardSlots()))
	}
	gQuery := randomGraph(40, 80, 311)
	if got, want := queryFingerprint(t, c2, gQuery, 2), queryFingerprint(t, c, gQuery, 2); got != want {
		t.Fatalf("re-backed segment load changed answers")
	}
}

// Both snapshot families load through the one LoadCorpus entry point,
// sniffed by leading bytes.
func TestLoadCorpusSniffsFormat(t *testing.T) {
	g := randomGraph(40, 90, 320)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var text, bin bytes.Buffer
	if err := c.Snapshot(&text); err != nil {
		t.Fatal(err)
	}
	if err := c.SnapshotSegment(&bin); err != nil {
		t.Fatal(err)
	}
	if !segment.IsSegment(bin.Bytes()) || segment.IsSegment(text.Bytes()) {
		t.Fatal("format sniffing misclassifies snapshots")
	}
	gQuery := randomGraph(30, 60, 321)
	want := queryFingerprint(t, c, gQuery, 2)
	for name, blob := range map[string][]byte{"text": text.Bytes(), "binary": bin.Bytes()} {
		c2, err := LoadCorpus(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("LoadCorpus(%s): %v", name, err)
		}
		if got := queryFingerprint(t, c2, gQuery, 2); got != want {
			t.Fatalf("%s load changed answers", name)
		}
	}
}

// A corrupt segment must refuse to load — any byte flip, any truncation.
// (Exhaustive per-byte coverage lives in internal/segment; this locks
// the ErrBadSnapshot wrapping at the corpus API.)
func TestLoadCorpusSegmentCorruption(t *testing.T) {
	g := randomGraph(30, 60, 330)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.SnapshotSegment(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for _, cut := range []int{len(blob) / 3, len(blob) - 1} {
		if _, err := LoadCorpus(bytes.NewReader(blob[:cut])); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("truncated segment: err = %v, want ErrBadSnapshot", err)
		}
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)/2] ^= 0x10
	if _, err := LoadCorpus(bytes.NewReader(mut)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt segment: err = %v, want ErrBadSnapshot", err)
	}
}

// mutate runs a deterministic mutation burst and returns the live set.
func mutateBurst(t *testing.T, c *Corpus, g *Graph) map[NodeID]bool {
	t.Helper()
	live := map[NodeID]bool{}
	for v := 0; v < g.NumNodes(); v++ {
		live[NodeID(v)] = true
	}
	for i := 0; i < 20; i++ {
		rm := NodeID((i * 7) % g.NumNodes())
		if err := c.Remove(rm); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		delete(live, rm)
		if i%3 == 0 {
			add := NodeID((i * 5) % g.NumNodes())
			if err := c.Insert(add); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			live[add] = true
		}
	}
	return live
}

// checkEquivalent asserts c answers exactly as a fresh corpus over live.
func checkEquivalent(t *testing.T, c *Corpus, g *Graph, live map[NodeID]bool, k int) {
	t.Helper()
	fresh, err := NewCorpus(g, k, WithBackend(BackendLinear), WithNodes(sortedNodes(live)))
	if err != nil {
		t.Fatal(err)
	}
	gQuery := randomGraph(40, 80, 999)
	if got, want := queryFingerprint(t, c, gQuery, k), queryFingerprint(t, fresh, gQuery, k); got != want {
		t.Fatalf("recovered corpus diverges from never-crashed corpus:\n got %s\nwant %s", got, want)
	}
	if n := c.Stats().Nodes; n != len(live) {
		t.Fatalf("recovered corpus has %d nodes, want %d", n, len(live))
	}
}

func TestDurableRecoverySurvivesReopen(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncNone} {
		dir := t.TempDir()
		g := randomGraph(80, 170, 400)
		c, err := NewCorpus(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.MakeDurable(dir, policy); err != nil {
			t.Fatal(err)
		}
		live := mutateBurst(t, c, g)
		if err := c.CloseDurable(); err != nil {
			t.Fatal(err)
		}
		c2, err := OpenDurable(dir, policy)
		if err != nil {
			t.Fatalf("OpenDurable: %v", err)
		}
		checkEquivalent(t, c2, g, live, 2)
		// The recovered corpus keeps logging: mutate, reopen again.
		if err := c2.Remove(NodeID(50)); err != nil {
			t.Fatal(err)
		}
		delete(live, 50)
		if err := c2.CloseDurable(); err != nil {
			t.Fatal(err)
		}
		c3, err := OpenDurable(dir, policy)
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalent(t, c3, g, live, 2)
		c3.CloseDurable()
	}
}

// Recovery without a clean close: the WAL was fsynced per commit, the
// process just vanished (no CloseDurable). Same-process stand-in for a
// crash; the SIGKILL test below does it for real.
func TestDurableRecoveryWithoutClose(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(80, 170, 410)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncAlways); err != nil {
		t.Fatal(err)
	}
	live := mutateBurst(t, c, g)
	// No close: open the directory as recovery would.
	c2, err := OpenDurable(dir, FsyncAlways)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	checkEquivalent(t, c2, g, live, 2)
	c2.CloseDurable()
}

func TestCheckpointTruncatesLogAndRecovers(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(80, 170, 420)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncNone); err != nil {
		t.Fatal(err)
	}
	live := mutateBurst(t, c, g)
	recs, _, durable := c.DurableStats()
	if !durable || recs == 0 {
		t.Fatalf("DurableStats = %d records, durable=%v", recs, durable)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if recs, _, _ := c.DurableStats(); recs != 0 {
		t.Fatalf("active log has %d records after checkpoint, want 0", recs)
	}
	// Generation 0 is superseded and gone; generation 1 is live.
	if _, err := os.Stat(segment.CheckpointPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatal("superseded checkpoint survived")
	}
	if _, err := os.Stat(segment.WALPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatal("superseded wal survived")
	}
	// Mutations after the checkpoint land in the new generation.
	if err := c.Remove(NodeID(33)); err != nil {
		t.Fatal(err)
	}
	delete(live, 33)
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenDurable(dir, FsyncNone)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	checkEquivalent(t, c2, g, live, 2)
	c2.CloseDurable()
}

// A rotation whose checkpoint never materialized (the crash window
// between rotate and segment write) leaves two log generations behind
// the last checkpoint; recovery must replay both, in order.
func TestRecoveryReplaysMultipleLogGenerations(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(80, 170, 430)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncNone); err != nil {
		t.Fatal(err)
	}
	live := mutateBurst(t, c, g)
	// Cut the log exactly as Checkpoint would, then "crash" before the
	// segment write: generation 1 is active, checkpoint 1 never exists.
	c.durMu.Lock()
	w := c.wal.Load()
	if err := w.Rotate(segment.WALPath(dir, 1), nil); err != nil {
		t.Fatal(err)
	}
	c.walSeq = 1
	c.durMu.Unlock()
	if err := c.Remove(NodeID(61)); err != nil {
		t.Fatal(err)
	}
	delete(live, 61)
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenDurable(dir, FsyncNone)
	if err != nil {
		t.Fatalf("OpenDurable across two log generations: %v", err)
	}
	checkEquivalent(t, c2, g, live, 2)
	c2.CloseDurable()
}

// A torn tail on the active log — the residue of dying mid-append — is
// dropped; everything committed before it survives.
func TestRecoveryDropsTornWALTail(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(80, 170, 440)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncAlways); err != nil {
		t.Fatal(err)
	}
	live := mutateBurst(t, c, g)
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	walPath := segment.WALPath(dir, 0)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	c2, err := OpenDurable(dir, FsyncAlways)
	if err != nil {
		t.Fatalf("OpenDurable over torn tail: %v", err)
	}
	checkEquivalent(t, c2, g, live, 2)
	// The reopened log was truncated and keeps appending cleanly.
	if err := c2.Remove(NodeID(10)); err != nil {
		t.Fatal(err)
	}
	delete(live, 10)
	c2.CloseDurable()
	c3, err := OpenDurable(dir, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, c3, g, live, 2)
	c3.CloseDurable()
}

// Corruption strictly inside the log fails recovery loudly.
func TestRecoveryRefusesMidWALCorruption(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(80, 170, 450)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncNone); err != nil {
		t.Fatal(err)
	}
	mutateBurst(t, c, g)
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	walPath := segment.WALPath(dir, 0)
	blob, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[10] ^= 0x40 // inside the first frame's payload, frames follow
	if err := os.WriteFile(walPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, FsyncNone); err == nil {
		t.Fatal("OpenDurable accepted a log corrupted mid-file")
	}
}

func TestUpdateGraphCheckpointsNewGraph(t *testing.T) {
	dir := t.TempDir()
	g1, g2 := testGraphPair(t)
	c, err := NewCorpus(g1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncNone); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateGraph(g2); err != nil {
		t.Fatalf("UpdateGraph: %v", err)
	}
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenDurable(dir, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.CloseDurable()
	// The recovered corpus runs on the updated graph: same edge set.
	rg := c2.g.Load()
	if rg == nil || fmt.Sprint(rg.Edges()) != fmt.Sprint(g2.Edges()) {
		t.Fatal("recovered corpus did not keep the updated graph")
	}
	live := map[NodeID]bool{}
	for v := range liveItems(c2) {
		live[v] = true
	}
	fresh, err := NewCorpus(g2, 2, WithBackend(BackendLinear), WithNodes(sortedNodes(live)))
	if err != nil {
		t.Fatal(err)
	}
	gQuery := randomGraph(40, 80, 998)
	if got, want := queryFingerprint(t, c2, gQuery, 2), queryFingerprint(t, fresh, gQuery, 2); got != want {
		t.Fatal("recovered post-update corpus diverges from fresh build over the new graph")
	}
}

func TestDurableAPIErrors(t *testing.T) {
	g := randomGraph(20, 40, 460)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on plain corpus: %v, want ErrNotDurable", err)
	}
	if err := c.CloseDurable(); err != nil {
		t.Fatalf("CloseDurable on plain corpus: %v, want nil", err)
	}
	dir := t.TempDir()
	if err := c.MakeDurable(dir, FsyncNone); err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(t.TempDir(), FsyncNone); err == nil {
		t.Fatal("second MakeDurable accepted")
	}
	c2, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.MakeDurable(dir, FsyncNone); err == nil {
		t.Fatal("MakeDurable over existing durable state accepted")
	}
	c.CloseDurable()
	if _, err := OpenDurable(t.TempDir(), FsyncNone); err == nil {
		t.Fatal("OpenDurable on empty directory accepted")
	}
	if !HasDurableState(dir) || HasDurableState(t.TempDir()) {
		t.Fatal("HasDurableState misreports")
	}
}

// The acceptance crash test: a real subprocess is SIGKILLed mid-way
// through a mutation burst under FsyncAlways; recovery must come back
// at or past the last acknowledged mutation, with a live set that is
// an exact prefix of the burst, answering node-identically to a corpus
// that never crashed.
func TestDurableKillMidMutationBurst(t *testing.T) {
	if os.Getenv("NED_DURABLE_KILL_DIR") != "" {
		t.Skip("helper-only environment")
	}
	const n, k = 300, 2
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDurableKillHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "NED_DURABLE_KILL_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lastAcked := -1
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if s, ok := strings.CutPrefix(line, "STEP "); ok {
			step, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				t.Fatalf("helper spoke gibberish: %q", line)
			}
			lastAcked = step
			if step >= 40 {
				// Mid-burst: the helper is between commits right now.
				cmd.Process.Kill()
				break
			}
		}
	}
	for sc.Scan() {
		if s, ok := strings.CutPrefix(sc.Text(), "STEP "); ok {
			if step, err := strconv.Atoi(strings.TrimSpace(s)); err == nil {
				lastAcked = step // acknowledged before the kill landed
			}
		}
	}
	cmd.Wait() // exit status is the kill; the directory is the evidence
	if lastAcked < 40 {
		t.Fatalf("helper died after only %d acknowledged steps", lastAcked)
	}

	c, err := OpenDurable(dir, FsyncAlways)
	if err != nil {
		t.Fatalf("OpenDurable after SIGKILL: %v", err)
	}
	defer c.CloseDurable()
	g := randomGraph(n, 2*n, 470) // must match the helper's graph
	// The helper removes node i at step i, so the live set uniquely
	// identifies the committed prefix: exactly {M..n-1} for some M.
	liveSet := liveItems(c)
	m := n - len(liveSet)
	if m <= lastAcked {
		t.Fatalf("recovered only %d committed steps, helper acknowledged %d", m, lastAcked+1)
	}
	for v := 0; v < n; v++ {
		if got, want := liveSet[NodeID(v)], v >= m; (got.Out != nil) != want {
			t.Fatalf("live set is not a burst prefix: node %d present=%v with %d removed", v, !want, m)
		}
	}
	live := map[NodeID]bool{}
	for v := m; v < n; v++ {
		live[NodeID(v)] = true
	}
	checkEquivalent(t, c, g, live, k)
}

// TestDurableKillHelper is the subprocess half of the kill test: it
// builds the corpus, attaches durability with FsyncAlways, then removes
// node i at step i, acknowledging each commit on stdout — until its
// parent kills it.
func TestDurableKillHelper(t *testing.T) {
	dir := os.Getenv("NED_DURABLE_KILL_DIR")
	if dir == "" {
		t.Skip("not in helper mode")
	}
	const n, k = 300, 2
	g := randomGraph(n, 2*n, 470)
	c, err := NewCorpus(g, k, WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncAlways); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.Remove(NodeID(i)); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("STEP %d\n", i)
	}
}
