package ned

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestCorpusStatsJSONSchema locks the wire schema of CorpusStats: the
// nedserve stats endpoint, nedstats -json, and monitoring dashboards
// all read these field names, so a rename must fail loudly here, not
// silently break a scraper.
func TestCorpusStatsJSONSchema(t *testing.T) {
	in := CorpusStats{
		Backend:          BackendBK,
		K:                3,
		Directed:         true,
		Workers:          4,
		Nodes:            100,
		Shards:           2,
		Built:            true,
		ShardNodes:       []int{60, 40},
		ShardLockWaitNS:  []int64{150, 25},
		ShardMutations:   []int64{9, 1},
		ShardCloneBytes:  []int64{4096, 512},
		Queries:          7,
		DistanceCalls:    1234,
		EarlyExits:       55,
		LowerBoundPrunes: 30,
		SizePrunes:       10,
		PaddingPrunes:    15,
		LabelPrunes:      5,

		PlacementBase:      2,
		PlacementOverrides: 3,
		Rebalances:         1,
		ShardSplits:        1,
		ShardMerges:        0,

		Planner:        true,
		PlanParallel:   4,
		PlanSequential: 2,
		PlanSingle:     1,
		PlanScans:      3,

		BlockCandidates:       500,
		BlockSizeSurvivors:    80,
		BlockPaddingSurvivors: 60,
		BlockLabelSurvivors:   40,

		Rebuilds:   2,
		StaleRatio: 0.125,
		SizeHist:   []int64{0, 4, 96},
		DepthHist:  []int64{1, 99},
	}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	const want = `{"backend":"bk","k":3,"directed":true,"workers":4,"nodes":100,` +
		`"shards":2,"built":true,"shard_nodes":[60,40],` +
		`"shard_lock_wait_ns":[150,25],"shard_mutations":[9,1],` +
		`"shard_clone_bytes":[4096,512],"placement_base":2,` +
		`"placement_overrides":3,"rebalances":1,"shard_splits":1,` +
		`"shard_merges":0,"planner":true,"plan_parallel":4,` +
		`"plan_sequential":2,"plan_single":1,"plan_scans":3,"queries":7,` +
		`"distance_calls":1234,"early_exits":55,"lower_bound_prunes":30,` +
		`"size_prunes":10,"padding_prunes":15,"label_prunes":5,` +
		`"block_candidates":500,"block_size_survivors":80,` +
		`"block_padding_survivors":60,"block_label_survivors":40,` +
		`"rebuilds":2,"stale_ratio":0.125,"size_hist":[0,4,96],` +
		`"depth_hist":[1,99]}`
	if string(buf) != want {
		t.Errorf("CorpusStats JSON schema changed:\n got %s\nwant %s", buf, want)
	}

	var out CorpusStats
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the value:\n got %+v\nwant %+v", out, in)
	}
}

// TestCorpusStatsJSONTagsComplete guards against a new counter landing
// without a stable JSON name: every exported field must carry an
// explicit snake_case json tag.
func TestCorpusStatsJSONTagsComplete(t *testing.T) {
	typ := reflect.TypeOf(CorpusStats{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		tag := f.Tag.Get("json")
		if tag == "" || tag == "-" {
			t.Errorf("field %s has no json tag; the stats schema must name every counter", f.Name)
			continue
		}
		name := strings.Split(tag, ",")[0]
		if name == "" || strings.ToLower(name) != name {
			t.Errorf("field %s json name %q is not stable snake_case", f.Name, name)
		}
	}
}

// TestBackendTextRoundTrip pins the Backend <-> name mapping both ways,
// including the rejection of unknown names and out-of-range values.
func TestBackendTextRoundTrip(t *testing.T) {
	for _, b := range allBackends {
		text, err := b.MarshalText()
		if err != nil {
			t.Fatalf("%v MarshalText: %v", b, err)
		}
		var back Backend
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != b {
			t.Errorf("round trip %v -> %q -> %v", b, text, back)
		}
	}
	var b Backend
	if err := b.UnmarshalText([]byte("quadtree")); err == nil {
		t.Error("UnmarshalText accepted an unknown backend name")
	}
	if _, err := Backend(99).MarshalText(); err == nil {
		t.Error("MarshalText accepted an out-of-range backend")
	}
}
