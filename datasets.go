package ned

import (
	"math/rand"

	"ned/internal/anonymize"
	"ned/internal/baseline"
	"ned/internal/datasets"
	"ned/internal/graph"
)

// DatasetName identifies one of the six Table-2 dataset analogs.
type DatasetName = datasets.Name

// The six datasets of the paper's Table 2 (synthetic analogs; see
// DESIGN.md for the substitution rationale).
const (
	DatasetCAR  = datasets.CAR
	DatasetPAR  = datasets.PAR
	DatasetAMZN = datasets.AMZN
	DatasetDBLP = datasets.DBLP
	DatasetGNU  = datasets.GNU
	DatasetPGP  = datasets.PGP
)

// AllDatasets lists the datasets in Table 2 order.
var AllDatasets = datasets.All

// DatasetOptions scales and seeds dataset generation; the zero value
// produces the default laptop-sized graphs deterministically.
type DatasetOptions = datasets.Options

// DatasetStats is a Table 2 summary row.
type DatasetStats = datasets.Stats

// GenerateDataset builds the named synthetic dataset analog.
func GenerateDataset(name DatasetName, opts DatasetOptions) (*Graph, error) {
	return datasets.Generate(name, opts)
}

// MustGenerateDataset is GenerateDataset but panics on unknown names.
func MustGenerateDataset(name DatasetName, opts DatasetOptions) *Graph {
	return datasets.MustGenerate(name, opts)
}

// SummarizeDataset produces the Table-2 row for a graph.
func SummarizeDataset(name DatasetName, g *Graph) DatasetStats {
	return datasets.Summarize(name, g)
}

// AnonymizeNaive applies a random node permutation (naive anonymization).
func AnonymizeNaive(g *Graph, seed int64) AnonymizedGraph {
	return anonymize.Naive(g, rand.New(rand.NewSource(seed)))
}

// AnonymizeSparsify permutes and removes a ratio fraction of the edges.
func AnonymizeSparsify(g *Graph, ratio float64, seed int64) AnonymizedGraph {
	return anonymize.Sparsify(g, ratio, rand.New(rand.NewSource(seed)))
}

// AnonymizePerturb permutes, removes a ratio fraction of the edges, and
// inserts an equal number of random edges.
func AnonymizePerturb(g *Graph, ratio float64, seed int64) AnonymizedGraph {
	return anonymize.Perturb(g, ratio, rand.New(rand.NewSource(seed)))
}

// RegionalFeatures computes the ReFeX-style recursive feature vector of
// one node (the Feature baseline of §13.4–13.5).
func RegionalFeatures(g *Graph, v NodeID, depth int) FeatureVector {
	return baseline.RegionalFeatures(g, v, depth)
}

// NetSimileFeatures computes the 7-feature NetSimile node vector.
func NetSimileFeatures(g *Graph, v NodeID) FeatureVector {
	return baseline.NetSimileFeatures(g, v)
}

// FeatureL1 is the Manhattan distance between feature vectors.
func FeatureL1(a, b FeatureVector) float64 { return baseline.L1(a, b) }

// HITSScores computes the Blondel et al. HITS-based similarity matrix
// between all node pairs of two graphs and returns a scorer function
// (higher = more similar). It is the slowest baseline (§13.4).
func HITSScores(ga, gb *Graph) func(b, a NodeID) float64 {
	h := baseline.NewHITSSimilarity(ga, gb, baseline.HITSOptions{})
	return func(b, a graph.NodeID) float64 { return h.Score(b, a) }
}
