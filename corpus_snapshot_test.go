package ned

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
)

// TestCorpusSnapshotRoundTrip is the persistence contract: a built,
// mutated corpus round-trips through Snapshot/LoadCorpus and the
// restored engine answers queries identically to the in-memory one —
// on every backend, including a backend override at load time.
func TestCorpusSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	const k = 2
	g := randomGraph(60, 130, 910)
	gq := randomGraph(40, 80, 911)

	for _, b := range allBackends {
		c, err := NewCorpus(g, k, WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.KNN(ctx, 0, 3); err != nil { // materialize
			t.Fatal(err)
		}
		// Mutate so the snapshot captures a churned index, not the
		// construction-time node set.
		if err := c.Remove(1, 3, 5, 7); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			t.Fatalf("%v: Snapshot: %v", b, err)
		}
		loaded, err := LoadCorpus(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: LoadCorpus: %v", b, err)
		}
		if s := loaded.Stats(); s.Backend != b || s.K != k || s.Nodes != 56 {
			t.Fatalf("%v: restored stats %+v", b, s)
		}

		rng := rand.New(rand.NewSource(912))
		for q := 0; q < 6; q++ {
			sig := NewSignature(gq, NodeID(rng.Intn(gq.NumNodes())), k)
			want, err := c.KNNSignature(ctx, sig, 9)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.KNNSignature(ctx, sig, 9)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%v: restored KNN %v, in-memory %v", b, got, want)
			}
			wantR, err := c.Range(ctx, sig, 3)
			if err != nil {
				t.Fatal(err)
			}
			gotR, err := loaded.Range(ctx, sig, 3)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(gotR) != fmt.Sprint(wantR) {
				t.Errorf("%v: restored Range %v, in-memory %v", b, gotR, wantR)
			}
		}

		// Node queries for indexed nodes work without a graph; unindexed
		// nodes need WithGraph.
		if _, err := loaded.KNN(ctx, 0, 3); err != nil {
			t.Errorf("%v: restored KNN of indexed node: %v", b, err)
		}
		if _, err := loaded.KNN(ctx, 1, 3); !errors.Is(err, ErrNoGraph) {
			t.Errorf("%v: restored KNN of removed node: got %v, want ErrNoGraph", b, err)
		}
		if err := loaded.Insert(1); !errors.Is(err, ErrNoGraph) {
			t.Errorf("%v: graphless Insert: got %v, want ErrNoGraph", b, err)
		}
		if _, err := loaded.UpdateGraph(g); !errors.Is(err, ErrNoGraph) {
			t.Errorf("%v: graphless UpdateGraph: got %v, want ErrNoGraph", b, err)
		}

		// A backend override at load serves the same answers.
		overridden, err := LoadCorpus(bytes.NewReader(buf.Bytes()), WithBackend(BackendLinear))
		if err != nil {
			t.Fatal(err)
		}
		sig := NewSignature(gq, 0, k)
		want, err := c.KNNSignature(ctx, sig, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := overridden.KNNSignature(ctx, sig, 5)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%v: override-to-linear KNN %v, want %v", b, got, want)
		}
	}
}

// TestCorpusSnapshotWithGraphResumesMutation restores a snapshot with
// its graph attached and drives the full mutable lifecycle on the
// restored corpus.
func TestCorpusSnapshotWithGraphResumesMutation(t *testing.T) {
	ctx := context.Background()
	g := randomGraph(50, 100, 913)
	c, err := NewCorpus(g, 2, WithBackend(BackendVP))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(4, 8); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf, WithGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Insert(4); err != nil {
		t.Fatalf("Insert on restored corpus: %v", err)
	}
	if err := loaded.Remove(0); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCorpus(g, 2, WithBackend(BackendLinear), WithNodes(func() []NodeID {
		var ns []NodeID
		for v := 0; v < g.NumNodes(); v++ {
			if v != 0 && v != 8 {
				ns = append(ns, NodeID(v))
			}
		}
		return ns
	}()))
	if err != nil {
		t.Fatal(err)
	}
	gq := randomGraph(30, 60, 914)
	sig := NewSignature(gq, 5, 2)
	got, err := loaded.KNNSignature(ctx, sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.KNNSignature(ctx, sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("restored+mutated KNN %v, fresh %v", got, want)
	}
	// Signature and arbitrary-node queries work again with the graph.
	if _, err := loaded.Signature(8); err != nil {
		t.Errorf("Signature on restored corpus with graph: %v", err)
	}
	if _, err := loaded.KNN(ctx, 8, 3); err != nil {
		t.Errorf("KNN of unindexed node with graph: %v", err)
	}
}

// TestCorpusSnapshotDirected round-trips a directed corpus (two trees
// per line) and queries it by node ID on the restored engine.
func TestCorpusSnapshotDirected(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(915))
	b := NewGraphBuilder(30, true)
	for i := 0; i < 70; i++ {
		u, v := NodeID(rng.Intn(30)), NodeID(rng.Intn(30))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	c, err := NewCorpus(g, 2, WithDirected(), WithBackend(BackendBK))
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.KNN(ctx, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s := loaded.Stats(); !s.Directed {
		t.Fatal("restored corpus lost directedness")
	}
	got, err := loaded.KNN(ctx, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("restored directed KNN %v, want %v", got, want)
	}
}

// TestCorpusSnapshotDeterministic: two snapshots of equal corpora are
// byte-identical, and snapshotting is mutation-order independent.
func TestCorpusSnapshotDeterministic(t *testing.T) {
	g := randomGraph(40, 80, 916)
	c1, err := NewCorpus(g, 2, WithNodes([]NodeID{5, 1, 9, 3}))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCorpus(g, 2, WithNodes([]NodeID{9, 3, 7}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Remove(7); err != nil {
		t.Fatal(err)
	}
	if err := c2.Insert(1, 5); err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := c1.Snapshot(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c2.Snapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("equal corpora produced different snapshots:\n%q\n%q", b1.String(), b2.String())
	}
}

// TestLoadCorpusLegacySignatureFile: a plain WriteSignatures file (the
// pre-snapshot format) loads as a corpus.
func TestLoadCorpusLegacySignatureFile(t *testing.T) {
	ctx := context.Background()
	g := randomGraph(30, 60, 917)
	var nodes []NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, NodeID(v))
	}
	sigs := Signatures(g, nodes, 2)
	path := t.TempDir() + "/sigs.txt"
	if err := SaveSignatures(path, sigs); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := LoadCorpus(f)
	if err != nil {
		t.Fatalf("LoadCorpus(legacy signatures): %v", err)
	}
	if s := loaded.Stats(); s.K != 2 || s.Nodes != 30 || s.Backend != BackendVP {
		t.Fatalf("legacy load stats: %+v", s)
	}
	fresh, err := NewCorpus(g, 2, WithBackend(BackendVP))
	if err != nil {
		t.Fatal(err)
	}
	gq := randomGraph(20, 40, 918)
	sig := NewSignature(gq, 0, 2)
	got, err := loaded.KNNSignature(ctx, sig, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.KNNSignature(ctx, sig, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("legacy-loaded KNN %v, want %v", got, want)
	}
}

// TestLoadCorpusErrors pins the typed error contract of LoadCorpus.
func TestLoadCorpusErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"future version", "# ned corpus v9 backend=vp k=2 directed=0 nodes=0\n"},
		{"missing header field", "# ned corpus v1 backend=vp k=2 nodes=0\n"},
		{"bad tree", "# ned corpus v1 backend=vp k=2 directed=0 nodes=1\n0 2 0,zap\n"},
		{"truncated", "# ned corpus v1 backend=vp k=2 directed=0 nodes=3\n0 2 0\n1 2 0\n"},
		{"k mismatch", "# ned corpus v1 backend=vp k=2 directed=0 nodes=1\n0 3 0\n"},
		{"duplicate node", "# ned corpus v1 backend=vp k=2 directed=0 nodes=2\n0 2 0\n0 2 0,0\n"},
		{"unknown backend", "# ned corpus v1 backend=zorp k=2 directed=0 nodes=1\n0 2 0\n"},
		{"directed field count", "# ned corpus v1 backend=vp k=2 directed=1 nodes=1\n0 2 0\n"},
		{"legacy mixed k", "0 2 0\n1 3 0\n"},
	}
	for _, tc := range cases {
		if _, err := LoadCorpus(strings.NewReader(tc.in)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: got %v, want ErrBadSnapshot", tc.name, err)
		}
	}
	// A graph that does not contain the snapshot's nodes is rejected.
	small := randomGraph(2, 1, 919)
	snap := "# ned corpus v1 backend=vp k=2 directed=0 nodes=1\n7 2 0\n"
	if _, err := LoadCorpus(strings.NewReader(snap), WithGraph(small)); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("snapshot node beyond graph: got %v, want ErrNodeOutOfRange", err)
	}
	// A directed snapshot restored onto an undirected graph would make
	// later Inserts extract inconsistent signatures: rejected up front.
	dsnap := "# ned corpus v1 backend=vp k=2 directed=1 nodes=1\n0 2 0 0,0\n"
	if _, err := LoadCorpus(strings.NewReader(dsnap), WithGraph(small)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("directed snapshot on undirected graph: got %v, want ErrBadSnapshot", err)
	}
}
