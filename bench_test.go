package ned

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§13) at smoke-test scale. Each benchmark runs the same
// harness code that cmd/nedbench drives at paper scale, so `go test
// -bench=.` exercises the full experiment matrix quickly while
// `nedbench` prints the paper-shaped tables. The per-op time reported by
// a benchmark is the wall time of one full experiment at Quick scale.

import (
	"testing"

	"ned/internal/bench"
	"ned/internal/datasets"
)

// quick returns the smoke-test options shared by all benchmarks.
func quick() bench.Options { return bench.Quick() }

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table2(quick())
		if len(t.Rows) != 6 {
			b.Fatalf("Table 2 rows = %d, want 6", len(t.Rows))
		}
	}
}

func BenchmarkFigure5aComparisonTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tt, _ := bench.Figure5(quick())
		if len(tt.Rows) == 0 {
			b.Fatal("Figure 5a produced no rows")
		}
	}
}

func BenchmarkFigure5bDistanceValues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tv := bench.Figure5(quick())
		if len(tv.Rows) == 0 {
			b.Fatal("Figure 5b produced no rows")
		}
	}
}

func BenchmarkFigure6aRelativeError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure6(quick())
		if len(t.Rows) == 0 {
			b.Fatal("Figure 6 produced no rows")
		}
	}
}

func BenchmarkFigure6bEquivalencyRatio(b *testing.B) {
	// Figure 6b shares Figure 6's computation; the equivalency column is
	// asserted non-degenerate here.
	for i := 0; i < b.N; i++ {
		t := bench.Figure6(quick())
		for _, row := range t.Rows {
			if row[3] == "" {
				b.Fatal("missing equivalency ratio")
			}
		}
	}
}

func BenchmarkFigure7aTEDStarByTreeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure7a(quick())
		if len(t.Rows) == 0 {
			b.Fatal("Figure 7a produced no rows")
		}
	}
}

func BenchmarkFigure7bNEDByK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure7b(quick())
		if len(t.Rows) != 8 {
			b.Fatalf("Figure 7b rows = %d, want 8 (k=1..8)", len(t.Rows))
		}
	}
}

func BenchmarkFigure8aNNSetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure8(quick(), 10)
		if len(t.Rows) != 6 {
			b.Fatalf("Figure 8 rows = %d, want 6 (k=1..6)", len(t.Rows))
		}
	}
}

func BenchmarkFigure8bTopLTies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure8(quick(), 10)
		for _, row := range t.Rows {
			if row[2] == "" {
				b.Fatal("missing ties column")
			}
		}
	}
}

func BenchmarkFigure9aSimilarityComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure9a(quick())
		if len(t.Rows) != 6 {
			b.Fatalf("Figure 9a rows = %d, want 6", len(t.Rows))
		}
	}
}

func BenchmarkFigure9bNNQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure9b(quick())
		if len(t.Rows) != 6 {
			b.Fatalf("Figure 9b rows = %d, want 6", len(t.Rows))
		}
	}
}

func BenchmarkFigure10aDeanonPGP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure10(quick(), datasets.PGP, 5, 0.01)
		if len(t.Rows) != 3 {
			b.Fatalf("Figure 10a rows = %d, want 3 schemes", len(t.Rows))
		}
	}
}

func BenchmarkFigure10bDeanonDBLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure10(quick(), datasets.DBLP, 10, 0.05)
		if len(t.Rows) != 3 {
			b.Fatalf("Figure 10b rows = %d, want 3 schemes", len(t.Rows))
		}
	}
}

func BenchmarkFigure11aPermutationRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure11a(quick())
		if len(t.Rows) != 4 {
			b.Fatalf("Figure 11a rows = %d, want 4 ratios", len(t.Rows))
		}
	}
}

func BenchmarkFigure11bTopL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Figure11b(quick())
		if len(t.Rows) != 5 {
			b.Fatalf("Figure 11b rows = %d, want 5 values of l", len(t.Rows))
		}
	}
}

func BenchmarkAppendixHausdorff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.AppendixHausdorff(quick())
		if len(t.Rows) != 5 {
			b.Fatalf("Hausdorff rows = %d, want 5 pairs", len(t.Rows))
		}
	}
}

func BenchmarkAblationMatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.AblationMatching(quick())
		if len(t.Rows) != 3 {
			b.Fatalf("ablation rows = %d, want 3 widths", len(t.Rows))
		}
	}
}

func BenchmarkAblationIndexes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.AblationIndexes(quick())
		if len(t.Rows) != 4 {
			b.Fatalf("index ablation rows = %d, want 4 strategies", len(t.Rows))
		}
	}
}

func BenchmarkExtensionDirectedNED(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.ExtensionDirected(quick())
		if len(t.Rows) != 4 {
			b.Fatalf("directed rows = %d, want 4 (k=1..4)", len(t.Rows))
		}
	}
}

func BenchmarkExtensionWeightedTEDStar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.ExtensionWeighted(quick())
		if len(t.Rows) == 0 {
			b.Fatal("weighted extension produced no rows")
		}
	}
}

// Micro-benchmarks of the core primitives, for profiling regressions.

func BenchmarkCoreTEDStar100(b *testing.B) {
	g := MustGenerateDataset(DatasetDBLP, DatasetOptions{Scale: 0.25, Seed: 2})
	t1 := KAdjacentTree(g, 1, 2)
	t2 := KAdjacentTree(g, 2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TEDStar(t1, t2)
	}
}

func BenchmarkCoreNEDRoadK5(b *testing.B) {
	g1 := MustGenerateDataset(DatasetCAR, DatasetOptions{Scale: 0.25, Seed: 2})
	g2 := MustGenerateDataset(DatasetPAR, DatasetOptions{Scale: 0.25, Seed: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(g1, NodeID(i%g1.NumNodes()), g2, NodeID(i%g2.NumNodes()), 5)
	}
}

func BenchmarkCoreSignatureExtraction(b *testing.B) {
	g := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.5, Seed: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSignature(g, NodeID(i%g.NumNodes()), 3)
	}
}
