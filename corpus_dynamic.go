package ned

import (
	"fmt"

	"ned/internal/graph"
	"ned/internal/ned"
)

// This file is the mutation surface of the sharded Corpus: incremental
// node churn (Insert/Remove), explicit and amortized per-shard index
// rebuilds, and graph-version updates that re-extract only the
// signatures an edit actually affected. The paper pitches NED for
// evolving networks (de-anonymization and similarity search against
// graphs that change over time); without this layer any churn forced a
// full re-index.
//
// Every mutation follows the epoch protocol: route the batch to the
// shards that own the touched nodes, and per shard — under that shard's
// lock only — clone the published epoch, clone its index, splice the
// change into the private copies, and publish the successor with one
// atomic store. Queries never wait: in-flight readers keep the epoch
// they loaded, new readers pick up the published one, and shards not
// named by the batch are never locked at all.
//
// Invariant, enforced by the churn- and sharded-equivalence suites:
// after any interleaving of mutations, every query answers exactly as a
// corpus freshly built over the same live node set would.

// Insert adds nodes of the corpus graph to the indexed set. Nodes
// already indexed are skipped, so Insert is idempotent; out-of-range
// nodes fail with ErrNodeOutOfRange before anything is mutated, and
// corpora loaded without WithGraph fail with ErrNoGraph (there is no
// graph to extract signatures from).
//
// Before the first query nothing is materialized yet, so Insert just
// grows the node sets and the lazy build pays once. Afterward the new
// signatures are extracted in parallel — outside every shard lock, so
// queries and mutations of other shards proceed during the BFS work —
// and spliced into each owning shard as a new epoch. Insert holds the
// engine's read gate for its span, so it excludes UpdateGraph (the
// graph version cannot move under the extraction) but runs concurrently
// with queries, Removes, and other Inserts.
func (c *Corpus) Insert(nodes ...NodeID) error {
	if err := c.degradedErr(); err != nil {
		return err
	}
	c.gmu.RLock()
	defer c.gmu.RUnlock()
	g := c.g.Load()
	if g == nil {
		return fmt.Errorf("%w: Insert needs the corpus graph (restore with WithGraph)", ErrNoGraph)
	}
	// Validate the whole batch and filter it to nodes not yet indexed,
	// erroring before anything is mutated.
	fresh := make([]NodeID, 0, len(nodes))
	batch := make(map[NodeID]bool, len(nodes))
	for _, v := range nodes {
		if int(v) < 0 || int(v) >= g.NumNodes() {
			return fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, g.NumNodes())
		}
		if batch[v] || c.shardFor(v).epoch.Load().has(v) {
			continue
		}
		batch[v] = true
		fresh = append(fresh, v)
	}
	if len(fresh) == 0 {
		return nil
	}
	// Extract signatures outside the shard locks (the expensive part).
	// materialized cannot flip mid-Insert: the transition runs under
	// gmu's write side.
	var itemOf map[NodeID]ned.Item
	if c.materialized.Load() {
		items := ned.BuildItems(g, fresh, c.k, c.cfg.directed, c.cfg.workers)
		ned.ProfileItems(items, c.dict, c.cfg.workers)
		itemOf = make(map[NodeID]ned.Item, len(items))
		for _, it := range items {
			itemOf[it.Node] = it
		}
	}
	tab := c.tab.Load() // stable under gmu: rebalances hold the write side
	for si, vs := range groupByShard(fresh, tab.place) {
		sh := tab.shards[si]
		sh.lockTimed()
		ep := sh.epoch.Load()
		ne := ep.clone()
		var added []ned.Item
		var addedNodes []NodeID
		for _, v := range vs {
			if ne.has(v) { // another Insert won the race for this node
				continue
			}
			if ne.byNode != nil {
				it, ok := itemOf[v]
				if !ok {
					it = ned.NewItem(g, v, c.k, c.cfg.directed)
					ned.ProfileItem(&it, c.dict)
				}
				ne.byNode[v] = it
				added = append(added, it)
				addedNodes = append(addedNodes, v)
			} else {
				ne.members[v] = true
			}
		}
		if ne.ix != nil && len(added) > 0 {
			ix := ne.ix.Clone()
			ix.Insert(added...)
			ne.ix = ix
			c.maybeRebuildShard(ne)
		}
		err := c.commitShard(sh, ne, added, nil)
		if err == nil && len(addedNodes) > 0 {
			sh.noteMutation(addedNodes, ne.size(), ixLen(ne.ix))
		}
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("ned: insert: %w", err)
		}
	}
	return nil
}

// groupByShard buckets a node batch by owning shard slot under the
// given placement.
func groupByShard(nodes []NodeID, place *ned.Placement) map[int][]NodeID {
	out := make(map[int][]NodeID)
	for _, v := range nodes {
		si := place.Of(v)
		out[si] = append(out[si], v)
	}
	return out
}

// ixLen is ix.Len() tolerating the pre-build nil index.
func ixLen(ix ned.DynamicIndex) int {
	if ix == nil {
		return 0
	}
	return ix.Len()
}

// Remove deletes nodes from the indexed set. Nodes that are not
// indexed are ignored, so Remove is idempotent and never errors — a
// churn workload can replay removals without bookkeeping. Each owning
// shard publishes a tombstoned (metric trees) or compacted (scan
// backends) successor epoch; queries never wait, and shards the batch
// does not touch are never locked. A batch spanning shards commits
// shard by shard. Remove holds the engine's read gate so the placement
// cannot be rebalanced out from under its shard routing; it still runs
// concurrently with queries, Inserts, and other Removes.
func (c *Corpus) Remove(nodes ...NodeID) error {
	if err := c.degradedErr(); err != nil {
		return err
	}
	c.gmu.RLock()
	defer c.gmu.RUnlock()
	tab := c.tab.Load()
	for si, vs := range groupByShard(nodes, tab.place) {
		sh := tab.shards[si]
		sh.lockTimed()
		ep := sh.epoch.Load()
		var gone []NodeID
		for _, v := range vs {
			if ep.has(v) {
				gone = append(gone, v)
			}
		}
		if len(gone) == 0 {
			sh.mu.Unlock()
			continue
		}
		ne := ep.clone()
		for _, v := range gone {
			delete(ne.members, v)
			delete(ne.byNode, v)
		}
		if ne.ix != nil {
			ix := ne.ix.Clone()
			ix.Remove(gone...)
			ne.ix = ix
			c.maybeRebuildShard(ne)
		}
		err := c.commitShard(sh, ne, nil, gone)
		if err == nil && ne.byNode != nil {
			sh.noteMutation(gone, ne.size(), ixLen(ne.ix))
		}
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("ned: remove: %w", err)
		}
	}
	return nil
}

// Rebuild discards every shard's index structure and rebuilds it from
// the live items, folding tombstones and append tails back into tree
// structure. Queries keep serving from the outgoing epochs for the
// whole build. Serving counters are carried over, so Stats stays
// monotone across rebuilds. On a corpus that has never been queried,
// Rebuild forces the materialization a first query would have paid for.
func (c *Corpus) Rebuild() {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	if !c.built.Load() {
		c.buildAllLocked()
		return
	}
	for _, sh := range c.tab.Load().shards {
		sh.mu.Lock()
		ep := sh.epoch.Load()
		sh.epoch.Store(&shardEpoch{byNode: ep.byNode, ix: c.rebuiltShardIndex(ep)})
		sh.mu.Unlock()
	}
	c.rebuilds.Add(1)
}

// UpdateGraph moves the corpus to a new version of its graph (graphs
// are immutable, so an evolving network is a sequence of builds). It
// diffs the edge sets, finds the indexed nodes whose k-adjacent trees
// the changes can actually reach — a node's signature depends only on
// edges among nodes within k-1 hops, in either version — and
// re-extracts just those signatures; every other node keeps its cached
// tree and AHU encoding untouched. Indexed nodes beyond the new
// graph's node range are removed; nodes new to the graph are not
// auto-indexed (Insert them explicitly). It returns how many
// signatures were refreshed.
//
// The new graph must keep the old one's directedness. Corpora loaded
// without WithGraph have no version to diff against and fail with
// ErrNoGraph.
//
// The expensive work — the edge diff, the reachability sweeps, the
// parallel re-extraction — runs outside every shard lock, so queries
// keep serving through it; each shard then publishes its refreshed
// epoch in turn. Queries racing the update may observe some shards on
// the new version and some on the old for the splice's duration.
// UpdateGraph holds the engine's write gate, serializing against other
// UpdateGraphs, Inserts, Rebuilds, and Snapshot cuts (never against
// queries).
func (c *Corpus) UpdateGraph(g *Graph) (refreshed int, err error) {
	if g == nil {
		return 0, ErrNilGraph
	}
	if err := c.degradedErr(); err != nil {
		return 0, err
	}
	c.gmu.Lock()
	defer c.gmu.Unlock()
	old := c.g.Load()
	if old == nil {
		return 0, fmt.Errorf("%w: UpdateGraph needs the previous graph version (restore with WithGraph)", ErrNoGraph)
	}
	if g.Directed() != old.Directed() {
		return 0, fmt.Errorf("ned: graph update changes directedness (corpus graph directed=%v)", old.Directed())
	}
	if !c.materialized.Load() {
		// Nothing extracted yet: the lazy build reads whatever graph is
		// current, so the update is just a swap plus a membership shrink.
		c.g.Store(g)
		for _, sh := range c.tab.Load().shards {
			sh.mu.Lock()
			ep := sh.epoch.Load()
			ne := ep.clone()
			changed := false
			for v := range ne.members {
				if int(v) >= g.NumNodes() {
					delete(ne.members, v)
					changed = true
				}
			}
			if changed {
				sh.epoch.Store(ne)
			}
			sh.mu.Unlock()
		}
		return 0, nil
	}

	affected := affectedByUpdate(old, g, c.k, c.cfg.directed)
	// Membership is stable here modulo Removes (Insert is excluded by
	// gmu); nodes removed between this snapshot and the per-shard splice
	// are re-filtered under the shard lock below.
	var refresh []NodeID
	for v := range affected {
		if int(v) >= 0 && int(v) < g.NumNodes() && c.shardFor(v).epoch.Load().has(v) {
			refresh = append(refresh, v)
		}
	}
	items := ned.BuildItems(g, refresh, c.k, c.cfg.directed, c.cfg.workers)
	ned.ProfileItems(items, c.dict, c.cfg.workers)
	tab := c.tab.Load()
	refreshByShard := make(map[int][]ned.Item)
	for _, it := range items {
		si := tab.place.Of(it.Node)
		refreshByShard[si] = append(refreshByShard[si], it)
	}

	for si, sh := range tab.shards {
		sh.mu.Lock()
		ep := sh.epoch.Load()
		ne := ep.clone()
		var gone []NodeID
		for v := range ne.byNode {
			if int(v) >= g.NumNodes() {
				delete(ne.byNode, v)
				gone = append(gone, v)
			}
		}
		var keptNodes []NodeID
		var kept []ned.Item
		for _, it := range refreshByShard[si] {
			if ne.has(it.Node) { // skip entries whose membership vanished meanwhile
				ne.byNode[it.Node] = it
				keptNodes = append(keptNodes, it.Node)
				kept = append(kept, it)
			}
		}
		if len(gone)+len(keptNodes) == 0 {
			sh.mu.Unlock()
			continue
		}
		if ne.ix != nil {
			// One batched Remove — the metric trees pay a full walk per
			// Remove call — then re-insert the refreshed items.
			ix := ne.ix.Clone()
			ix.Remove(append(append([]graph.NodeID(nil), gone...), keptNodes...)...)
			if len(kept) > 0 {
				ix.Insert(kept...)
			}
			ne.ix = ix
			c.maybeRebuildShard(ne)
		}
		err := c.commitShard(sh, ne, kept, gone)
		if err == nil {
			sh.noteMutation(append(append([]NodeID(nil), gone...), keptNodes...), ne.size(), ixLen(ne.ix))
		}
		sh.mu.Unlock()
		if err != nil {
			return refreshed, fmt.Errorf("ned: graph update: %w", err)
		}
		refreshed += len(keptNodes)
	}
	c.g.Store(g)
	if c.wal.Load() != nil {
		// The WAL records item churn, not graph swaps; only a checkpoint
		// segment embeds the graph. Cut one now so a crash after this
		// update recovers onto the new graph version, not the old one.
		c.durMu.Lock()
		err := c.checkpointLocked()
		c.durMu.Unlock()
		if err != nil {
			return refreshed, fmt.Errorf("ned: graph update checkpoint: %w", err)
		}
	}
	return refreshed, nil
}

// affectedByUpdate returns the nodes whose k-adjacent trees can differ
// between two graph versions. A signature T(v, k) contains an edge
// (u, w) only when u or w sits within k-1 hops of v (tree edges join
// depths d and d+1 with d <= k-1), so the affected set is everything
// within k-1 hops of a changed edge's endpoints — in the old version
// (removals prune subtrees that were there) or the new one (additions
// attach subtrees that were not). For directed NED the incoming and
// outgoing trees cover both traversal directions. The bound is exact
// for reachability, conservative for content: a node inside it may
// happen to keep an identical tree, and refreshing it is merely
// harmless work.
func affectedByUpdate(old, new *Graph, k int, directed bool) map[NodeID]bool {
	diff := graph.EdgeDiff(old, new)
	if len(diff) == 0 {
		return nil
	}
	eps := make([]NodeID, 0, 2*len(diff))
	seen := make(map[NodeID]bool, 2*len(diff))
	for _, e := range diff {
		for _, v := range [2]NodeID{e.U, e.V} {
			if !seen[v] {
				seen[v] = true
				eps = append(eps, v)
			}
		}
	}
	affected := make(map[NodeID]bool)
	collect := func(g *Graph, dir graph.EdgeDirection) {
		for _, v := range graph.NodesWithin(g, eps, k-1, dir) {
			affected[v] = true
		}
	}
	// The (out-)tree of v reaches an endpoint via outgoing hops, so the
	// sweep from the endpoints follows incoming edges; the incoming tree
	// of directed NED mirrors it. Undirected graphs collapse the two.
	collect(old, graph.Incoming)
	collect(new, graph.Incoming)
	if directed {
		collect(old, graph.Outgoing)
		collect(new, graph.Outgoing)
	}
	return affected
}
