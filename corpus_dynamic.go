package ned

import (
	"fmt"

	"ned/internal/graph"
	"ned/internal/ned"
)

// This file is the mutation surface of the Corpus: incremental node
// churn (Insert/Remove), explicit and amortized index rebuilds, and
// graph-version updates that re-extract only the signatures an edit
// actually affected. The paper pitches NED for evolving networks
// (de-anonymization and similarity search against graphs that change
// over time); without this layer any churn forced a full re-index.
//
// Invariant, enforced by the churn-equivalence suite: after any
// interleaving of mutations, every query answers exactly as a corpus
// freshly built over the same live node set would.

// Insert adds nodes of the corpus graph to the indexed set. Nodes
// already indexed are skipped, so Insert is idempotent; out-of-range
// nodes fail with ErrNodeOutOfRange before anything is mutated, and
// corpora loaded without WithGraph fail with ErrNoGraph (there is no
// graph to extract signatures from).
//
// Before the first query nothing is materialized yet, so Insert just
// grows the node set and the lazy build pays once. Afterward the new
// signatures are extracted in parallel — outside the corpus lock, so
// queries keep serving during the BFS work — and handed to the live
// index: in place for the scan backends, natively for the BK-tree, and
// onto the VP-tree's append tail, followed by an amortized rebuild if
// the staleness threshold is crossed. Only the final splice waits for
// in-flight queries to drain.
func (c *Corpus) Insert(nodes ...NodeID) error {
	c.mu.RLock()
	g, materialized := c.g, c.byNode != nil
	fresh, err := c.freshNodesLocked(nodes)
	c.mu.RUnlock()
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return nil
	}
	var items []ned.Item
	if materialized {
		items = ned.BuildItems(g, fresh, c.k, c.cfg.directed, c.cfg.workers)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.g != g || (c.byNode != nil) != materialized {
		// The graph version moved or the lazy build ran while we were
		// extracting (rare): redo the whole batch under the lock.
		return c.insertLocked(nodes)
	}
	c.spliceLocked(fresh, items)
	return nil
}

// freshNodesLocked validates an Insert batch and filters it to the
// nodes not yet indexed, erroring before anything is mutated. Callers
// hold mu (either side).
func (c *Corpus) freshNodesLocked(nodes []NodeID) ([]NodeID, error) {
	if c.g == nil {
		return nil, fmt.Errorf("%w: Insert needs the corpus graph (restore with WithGraph)", ErrNoGraph)
	}
	fresh := make([]NodeID, 0, len(nodes))
	batch := make(map[NodeID]bool, len(nodes))
	for _, v := range nodes {
		if int(v) < 0 || int(v) >= c.g.NumNodes() {
			return nil, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, c.g.NumNodes())
		}
		if c.members[v] || batch[v] {
			continue
		}
		batch[v] = true
		fresh = append(fresh, v)
	}
	return fresh, nil
}

// insertLocked is the fully-locked Insert fallback for batches whose
// optimistic extraction raced with another mutation. Callers hold mu
// for writing.
func (c *Corpus) insertLocked(nodes []NodeID) error {
	fresh, err := c.freshNodesLocked(nodes)
	if err != nil || len(fresh) == 0 {
		return err
	}
	var items []ned.Item
	if c.byNode != nil {
		items = ned.BuildItems(c.g, fresh, c.k, c.cfg.directed, c.cfg.workers)
	}
	c.spliceLocked(fresh, items)
	return nil
}

// spliceLocked commits an Insert batch: membership always, plus item
// map and live index when materialized (items[i] corresponds to
// fresh[i]; nil items means the lazy build will extract later). Nodes
// that became members since validation are skipped. Callers hold mu
// for writing.
func (c *Corpus) spliceLocked(fresh []NodeID, items []ned.Item) {
	var added []ned.Item
	for i, v := range fresh {
		if c.members[v] {
			continue
		}
		c.members[v] = true
		if items != nil {
			c.byNode[v] = items[i]
			added = append(added, items[i])
		}
	}
	if c.ix != nil && len(added) > 0 {
		c.ix.Insert(added...)
		c.maybeRebuildLocked()
	}
}

// Remove deletes nodes from the indexed set. Nodes that are not
// indexed are ignored, so Remove is idempotent and never errors — a
// churn workload can replay removals without bookkeeping. The scan
// backends compact in place; the metric trees tombstone the entries
// and amortize compaction into the next threshold-triggered rebuild.
// Remove waits for in-flight queries to drain.
func (c *Corpus) Remove(nodes ...NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var gone []NodeID
	for _, v := range nodes {
		if !c.members[v] {
			continue
		}
		delete(c.members, v)
		delete(c.byNode, v)
		gone = append(gone, v)
	}
	if len(gone) == 0 || c.ix == nil {
		return nil
	}
	c.ix.Remove(gone...)
	c.maybeRebuildLocked()
	return nil
}

// Rebuild discards the index structure and rebuilds it from the live
// items, folding tombstones and append tails back into tree structure.
// Serving counters are carried over, so Stats stays monotone across
// rebuilds. On a corpus that has never been queried, Rebuild forces
// the materialization a first query would have paid for.
func (c *Corpus) Rebuild() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ix == nil {
		c.materializeLocked()
		c.ix = c.newIndexLocked()
		return
	}
	c.rebuildLocked()
}

// rebuildLocked swaps in a fresh index over the live items, absorbing
// the retiring generation's serving counters into base first. Callers
// hold mu for writing.
func (c *Corpus) rebuildLocked() {
	c.base = c.base.Add(c.ix.Counters())
	c.ix = c.newIndexLocked()
	c.rebuilds++
}

// maybeRebuildLocked applies the amortized-rebuild policy after a
// mutation. Callers hold mu for writing with c.ix non-nil.
func (c *Corpus) maybeRebuildLocked() {
	if c.ix.StaleRatio() > c.cfg.rebuildAt {
		c.rebuildLocked()
	}
}

// UpdateGraph moves the corpus to a new version of its graph (graphs
// are immutable, so an evolving network is a sequence of builds). It
// diffs the edge sets, finds the indexed nodes whose k-adjacent trees
// the changes can actually reach — a node's signature depends only on
// edges among nodes within k-1 hops, in either version — and
// re-extracts just those signatures; every other node keeps its cached
// tree and AHU encoding untouched. Indexed nodes beyond the new
// graph's node range are removed; nodes new to the graph are not
// auto-indexed (Insert them explicitly). It returns how many
// signatures were refreshed.
//
// The new graph must keep the old one's directedness. Corpora loaded
// without WithGraph have no version to diff against and fail with
// ErrNoGraph.
//
// Like Insert, the expensive work — the edge diff, the reachability
// sweeps, the parallel re-extraction — runs outside the corpus lock so
// queries keep serving through it; only the final graph swap and index
// splice wait for in-flight queries to drain.
func (c *Corpus) UpdateGraph(g *Graph) (refreshed int, err error) {
	if g == nil {
		return 0, ErrNilGraph
	}
	c.mu.RLock()
	old, materialized := c.g, c.byNode != nil
	var memberSnap map[NodeID]bool
	if materialized {
		memberSnap = make(map[NodeID]bool, len(c.members))
		for v := range c.members {
			memberSnap[v] = true
		}
	}
	c.mu.RUnlock()
	if old == nil {
		return 0, fmt.Errorf("%w: UpdateGraph needs the previous graph version (restore with WithGraph)", ErrNoGraph)
	}
	if g.Directed() != old.Directed() {
		return 0, fmt.Errorf("ned: graph update changes directedness (corpus graph directed=%v)", old.Directed())
	}
	if !materialized {
		// Nothing extracted yet: the lazy build reads whatever graph is
		// current, so the update is just a swap plus a membership shrink.
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.g != old || c.byNode != nil {
			return c.updateGraphLocked(g)
		}
		return c.updateSpliceLocked(g, nil, nil), nil
	}

	affected := affectedByUpdate(old, g, c.k, c.cfg.directed)
	var refresh []NodeID
	for v := range affected {
		if memberSnap[v] && int(v) < g.NumNodes() {
			refresh = append(refresh, v)
		}
	}
	items := ned.BuildItems(g, refresh, c.k, c.cfg.directed, c.cfg.workers)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.g != old {
		// Another UpdateGraph won the race: our diff is against a stale
		// version, so redo everything under the lock.
		return c.updateGraphLocked(g)
	}
	// Members inserted while we extracted are absent from the snapshot;
	// any of them the edge changes can reach must refresh too (rare and
	// small, so extracting under the lock is fine).
	var late []NodeID
	for v := range c.members {
		if !memberSnap[v] && affected[v] && int(v) < g.NumNodes() {
			late = append(late, v)
		}
	}
	if len(late) > 0 {
		refresh = append(refresh, late...)
		items = append(items, ned.BuildItems(g, late, c.k, c.cfg.directed, c.cfg.workers)...)
	}
	return c.updateSpliceLocked(g, refresh, items), nil
}

// updateGraphLocked is the fully-locked UpdateGraph fallback for
// updates whose optimistic extraction raced with another mutation.
// Callers hold mu for writing and have validated g.
func (c *Corpus) updateGraphLocked(g *Graph) (int, error) {
	if c.g == nil {
		return 0, fmt.Errorf("%w: UpdateGraph needs the previous graph version (restore with WithGraph)", ErrNoGraph)
	}
	if g.Directed() != c.g.Directed() {
		return 0, fmt.Errorf("ned: graph update changes directedness (corpus graph directed=%v)", c.g.Directed())
	}
	var refresh []NodeID
	var items []ned.Item
	if c.byNode != nil {
		for v := range affectedByUpdate(c.g, g, c.k, c.cfg.directed) {
			if c.members[v] && int(v) < g.NumNodes() {
				refresh = append(refresh, v)
			}
		}
		items = ned.BuildItems(g, refresh, c.k, c.cfg.directed, c.cfg.workers)
	}
	return c.updateSpliceLocked(g, refresh, items), nil
}

// updateSpliceLocked commits a graph update: swaps the graph, drops
// members beyond the new node range, refreshes the given items
// (items[i] corresponds to refresh[i]; entries whose membership
// vanished meanwhile are skipped), and maintains the live index with
// one batched Remove — the metric trees pay a full walk per Remove
// call. Returns how many signatures were refreshed. Callers hold mu
// for writing.
func (c *Corpus) updateSpliceLocked(g *Graph, refresh []NodeID, items []ned.Item) int {
	c.g = g
	var gone []NodeID
	for v := range c.members {
		if int(v) >= g.NumNodes() {
			delete(c.members, v)
			delete(c.byNode, v)
			gone = append(gone, v)
		}
	}
	keptNodes := make([]NodeID, 0, len(refresh))
	kept := make([]ned.Item, 0, len(items))
	for i, v := range refresh {
		if c.members[v] {
			c.byNode[v] = items[i]
			keptNodes = append(keptNodes, v)
			kept = append(kept, items[i])
		}
	}
	if c.ix != nil && len(gone)+len(keptNodes) > 0 {
		c.ix.Remove(append(append([]NodeID(nil), gone...), keptNodes...)...)
		if len(kept) > 0 {
			c.ix.Insert(kept...)
		}
		c.maybeRebuildLocked()
	}
	return len(keptNodes)
}

// affectedByUpdate returns the nodes whose k-adjacent trees can differ
// between two graph versions. A signature T(v, k) contains an edge
// (u, w) only when u or w sits within k-1 hops of v (tree edges join
// depths d and d+1 with d <= k-1), so the affected set is everything
// within k-1 hops of a changed edge's endpoints — in the old version
// (removals prune subtrees that were there) or the new one (additions
// attach subtrees that were not). For directed NED the incoming and
// outgoing trees cover both traversal directions. The bound is exact
// for reachability, conservative for content: a node inside it may
// happen to keep an identical tree, and refreshing it is merely
// harmless work.
func affectedByUpdate(old, new *Graph, k int, directed bool) map[NodeID]bool {
	diff := graph.EdgeDiff(old, new)
	if len(diff) == 0 {
		return nil
	}
	eps := make([]NodeID, 0, 2*len(diff))
	seen := make(map[NodeID]bool, 2*len(diff))
	for _, e := range diff {
		for _, v := range [2]NodeID{e.U, e.V} {
			if !seen[v] {
				seen[v] = true
				eps = append(eps, v)
			}
		}
	}
	affected := make(map[NodeID]bool)
	collect := func(g *Graph, dir graph.EdgeDirection) {
		for _, v := range graph.NodesWithin(g, eps, k-1, dir) {
			affected[v] = true
		}
	}
	// The (out-)tree of v reaches an endpoint via outgoing hops, so the
	// sweep from the endpoints follows incoming edges; the incoming tree
	// of directed NED mirrors it. Undirected graphs collapse the two.
	collect(old, graph.Incoming)
	collect(new, graph.Incoming)
	if directed {
		collect(old, graph.Outgoing)
		collect(new, graph.Outgoing)
	}
	return affected
}
