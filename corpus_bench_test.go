package ned

// BenchmarkCorpusKNN measures the serving hot path of the Corpus query
// engine: one batch of inter-graph KNN queries against a prebuilt index,
// per backend. Run with -benchmem; the allocs/op trajectory across PRs
// tracks how close the TED* pipeline is to allocation-free.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

func benchmarkCorpus(b *testing.B, backend Backend) {
	g1 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 7})
	g2 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 8})
	rng := rand.New(rand.NewSource(9))

	const k, nQueries, nCands, l = 3, 16, 300, 5
	queries := make([]Signature, 0, nQueries)
	for _, v := range rng.Perm(g1.NumNodes())[:nQueries] {
		queries = append(queries, NewSignature(g1, NodeID(v), k))
	}
	cands := make([]NodeID, 0, nCands)
	for _, v := range rng.Perm(g2.NumNodes())[:min(nCands, g2.NumNodes())] {
		cands = append(cands, NodeID(v))
	}
	corpus, err := NewCorpus(g2, k, WithBackend(backend), WithNodes(cands))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Materialize the index outside the timed window.
	if _, err := corpus.KNNSignature(ctx, queries[0], 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := corpus.KNNSignature(ctx, q, l); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCorpusKNN(b *testing.B) {
	for _, backend := range []Backend{BackendVP, BackendBK, BackendLinear, BackendPrunedLinear} {
		b.Run(fmt.Sprint(backend), func(b *testing.B) { benchmarkCorpus(b, backend) })
	}
}
