package ned

// BenchmarkCorpusKNN measures the serving hot path of the Corpus query
// engine: one batch of inter-graph KNN queries against a prebuilt index,
// per backend. Run with -benchmem; the allocs/op trajectory across PRs
// tracks how close the TED* pipeline is to allocation-free.

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func benchmarkCorpus(b *testing.B, backend Backend) {
	g1 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 7})
	g2 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 8})
	rng := rand.New(rand.NewSource(9))

	const k, nQueries, nCands, l = 3, 16, 300, 5
	queries := make([]Signature, 0, nQueries)
	for _, v := range rng.Perm(g1.NumNodes())[:nQueries] {
		queries = append(queries, NewSignature(g1, NodeID(v), k))
	}
	cands := make([]NodeID, 0, nCands)
	for _, v := range rng.Perm(g2.NumNodes())[:min(nCands, g2.NumNodes())] {
		cands = append(cands, NodeID(v))
	}
	corpus, err := NewCorpus(g2, k, WithBackend(backend), WithNodes(cands))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Materialize the index outside the timed window.
	if _, err := corpus.KNNSignature(ctx, queries[0], 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := corpus.KNNSignature(ctx, q, l); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCorpusKNN(b *testing.B) {
	for _, backend := range []Backend{BackendVP, BackendBK, BackendLinear, BackendPrunedLinear} {
		b.Run(fmt.Sprint(backend), func(b *testing.B) { benchmarkCorpus(b, backend) })
	}
}

// BenchmarkCorpusCascade is BenchmarkCorpusKNN with the filter-cascade
// work profile surfaced as custom metrics: per-query TED* evaluations
// and per-tier prunes (size / padding / label-multiset). CI runs it at
// -benchtime=1x so every push compiles the cascade and counts its
// tiers; BENCH_CASCADE.json records the full before/after numbers.
func BenchmarkCorpusCascade(b *testing.B) {
	for _, backend := range []Backend{BackendVP, BackendBK, BackendLinear, BackendPrunedLinear} {
		b.Run(fmt.Sprint(backend), func(b *testing.B) {
			g1 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 7})
			g2 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 8})
			rng := rand.New(rand.NewSource(9))

			const k, nQueries, nCands, l = 3, 16, 300, 5
			queries := make([]Signature, 0, nQueries)
			for _, v := range rng.Perm(g1.NumNodes())[:nQueries] {
				queries = append(queries, NewSignature(g1, NodeID(v), k))
			}
			cands := make([]NodeID, 0, nCands)
			for _, v := range rng.Perm(g2.NumNodes())[:min(nCands, g2.NumNodes())] {
				cands = append(cands, NodeID(v))
			}
			corpus, err := NewCorpus(g2, k, WithBackend(backend), WithNodes(cands))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, err := corpus.KNNSignature(ctx, queries[0], 1); err != nil { // materialize
				b.Fatal(err)
			}
			corpus.ResetStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := corpus.KNNSignature(ctx, q, l); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			s := corpus.Stats()
			perQuery := float64(b.N * nQueries)
			b.ReportMetric(float64(s.DistanceCalls)/perQuery, "evals/query")
			b.ReportMetric(float64(s.SizePrunes)/perQuery, "sizeprunes/query")
			b.ReportMetric(float64(s.PaddingPrunes)/perQuery, "padprunes/query")
			b.ReportMetric(float64(s.LabelPrunes)/perQuery, "labelprunes/query")
		})
	}
}

// BenchmarkCorpusParallelChurn measures the mixed read/write serving
// path: many goroutines issue KNN queries while every 8th operation
// churns a node (Remove + Insert, with its signature re-extraction).
// Under the epoch-published sharded engine readers never block on
// writers; the shards=1 vs shards=N spread shows what per-shard
// mutation buys — smaller copy-on-write clones and mutation batches
// that only serialize against their own shard.
func BenchmarkCorpusParallelChurn(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			g1 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 7})
			g2 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 8})
			rng := rand.New(rand.NewSource(9))

			const k, nQueries, nCands, l = 3, 16, 300, 5
			queries := make([]Signature, 0, nQueries)
			for _, v := range rng.Perm(g1.NumNodes())[:nQueries] {
				queries = append(queries, NewSignature(g1, NodeID(v), k))
			}
			cands := make([]NodeID, 0, nCands)
			for _, v := range rng.Perm(g2.NumNodes())[:min(nCands, g2.NumNodes())] {
				cands = append(cands, NodeID(v))
			}
			corpus, err := NewCorpus(g2, k, WithBackend(BackendVP), WithNodes(cands), WithShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, err := corpus.KNNSignature(ctx, queries[0], 1); err != nil { // materialize
				b.Fatal(err)
			}
			var ops atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ops.Add(1)
					if i%8 == 0 {
						v := cands[int(i/8)%len(cands)]
						if err := corpus.Remove(v); err != nil {
							b.Error(err)
							return
						}
						if err := corpus.Insert(v); err != nil {
							b.Error(err)
							return
						}
					} else if _, err := corpus.KNNSignature(ctx, queries[int(i)%len(queries)], l); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkCorpusPlannerChurn runs the same mixed read/write workload
// as BenchmarkCorpusParallelChurn but lets the engine pick its own
// shard count, with the cost-based planner on (the default) and off.
// The planner-on number is the one the acceptance gate tracks: it must
// stay within 10% of the best hand-picked WithShards setting
// (BENCH_PLAN.json sweeps those; on a single core that best setting is
// one shard, and the planner's sequential carry-threshold fan-out is
// how the default multi-shard layout matches it).
func BenchmarkCorpusPlannerChurn(b *testing.B) {
	for _, planner := range []bool{true, false} {
		b.Run(fmt.Sprintf("planner=%v", planner), func(b *testing.B) {
			g1 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 7})
			g2 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 8})
			rng := rand.New(rand.NewSource(9))

			const k, nQueries, nCands, l = 3, 16, 300, 5
			queries := make([]Signature, 0, nQueries)
			for _, v := range rng.Perm(g1.NumNodes())[:nQueries] {
				queries = append(queries, NewSignature(g1, NodeID(v), k))
			}
			cands := make([]NodeID, 0, nCands)
			for _, v := range rng.Perm(g2.NumNodes())[:min(nCands, g2.NumNodes())] {
				cands = append(cands, NodeID(v))
			}
			corpus, err := NewCorpus(g2, k, WithBackend(BackendVP),
				WithNodes(cands), WithPlanner(planner))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, err := corpus.KNNSignature(ctx, queries[0], 1); err != nil { // materialize
				b.Fatal(err)
			}
			var ops atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ops.Add(1)
					if i%8 == 0 {
						v := cands[int(i/8)%len(cands)]
						if err := corpus.Remove(v); err != nil {
							b.Error(err)
							return
						}
						if err := corpus.Insert(v); err != nil {
							b.Error(err)
							return
						}
					} else if _, err := corpus.KNNSignature(ctx, queries[int(i)%len(queries)], l); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
