// Command nedgen generates the synthetic dataset analogs as edge-list
// files, so they can be inspected, reused, or replaced by the real
// SNAP/KONECT graphs.
//
// Usage:
//
//	nedgen -out ./data [-scale 1.0] [-seed 42] [-only PGP]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ned/internal/datasets"
	"ned/internal/graph"
)

func main() {
	var (
		out   = flag.String("out", "data", "output directory")
		scale = flag.Float64("scale", 1.0, "dataset scale factor")
		seed  = flag.Int64("seed", 42, "generator seed")
		only  = flag.String("only", "", "generate a single dataset (CAR, PAR, AMZN, DBLP, GNU, PGP)")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "nedgen: %v\n", err)
		os.Exit(1)
	}
	names := datasets.All
	if *only != "" {
		names = []datasets.Name{datasets.Name(strings.ToUpper(*only))}
	}
	for _, name := range names {
		g, err := datasets.Generate(name, datasets.Options{Scale: *scale, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedgen: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, strings.ToLower(string(name))+".edges")
		if err := graph.SaveEdgeListFile(path, g); err != nil {
			fmt.Fprintf(os.Stderr, "nedgen: %v\n", err)
			os.Exit(1)
		}
		s := datasets.Summarize(name, g)
		fmt.Printf("%-5s -> %s  (%d nodes, %d edges, avg degree %.2f)\n",
			name, path, s.Nodes, s.Edges, s.AvgDegree)
	}
}
