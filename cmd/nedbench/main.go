// Command nedbench regenerates the tables and figures of the NED paper's
// evaluation section (§13) on the synthetic dataset analogs and prints
// them as plain-text tables (see EXPERIMENTS.md for the catalog).
//
// Usage:
//
//	nedbench [-exp all|table2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|hausdorff|directed|weighted|ablation|corpus|churn|shard|plan|cascade|serve|recover]
//	         [-scale 1.0] [-pairs 400] [-queries 100] [-candidates 1000] [-seed 1]
//	         [-json results.json]
//
// The defaults run every experiment at laptop scale in a few minutes;
// -scale trades fidelity for speed. -json additionally writes every
// produced table to a machine-readable JSON file (use "-" for stdout),
// the BENCH_*.json-style artifact the perf trajectory across PRs is
// tracked with.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ned"
	"ned/internal/bench"
	"ned/internal/datasets"
	"ned/internal/serve"
)

// jsonResult is the machine-readable form of one nedbench invocation.
type jsonResult struct {
	Experiment string        `json:"experiment"`
	Scale      float64       `json:"scale"`
	Seed       int64         `json:"seed"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Tables     []bench.Table `json:"tables"`
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (all, table2, fig5, fig6, fig7, fig8, fig9, fig10, fig11, hausdorff, directed, weighted, ablation, corpus, churn, shard, plan, cascade, serve, recover)")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		pairs      = flag.Int("pairs", 400, "node pairs per timing experiment")
		queries    = flag.Int("queries", 100, "query nodes per query experiment")
		candidates = flag.Int("candidates", 1000, "candidate pool size")
		seed       = flag.Int64("seed", 1, "random seed")
		jsonPath   = flag.String("json", "", "also write results as JSON to this file (\"-\" for stdout)")
	)
	flag.Parse()

	o := bench.Options{
		Scale:      *scale,
		Pairs:      *pairs,
		Queries:    *queries,
		Candidates: *candidates,
		Seed:       *seed,
	}

	var tables []bench.Table
	emit := func(ts ...bench.Table) {
		for _, t := range ts {
			t.Fprint(os.Stdout)
			tables = append(tables, t)
		}
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	start := time.Now()
	ran := 0

	if run("table2") {
		emit(bench.Table2(o))
		ran++
	}
	if run("fig5") {
		t1, t2 := bench.Figure5(o)
		emit(t1, t2)
		ran++
	}
	if run("fig6") {
		emit(bench.Figure6(o))
		ran++
	}
	if run("fig7") {
		emit(bench.Figure7a(o), bench.Figure7b(o))
		ran++
	}
	if run("fig8") {
		emit(bench.Figure8(o, 10))
		ran++
	}
	if run("fig9") {
		emit(bench.Figure9a(o), bench.Figure9b(o))
		ran++
	}
	if run("fig10") {
		emit(bench.Figure10(o, datasets.PGP, 5, 0.01))
		emit(bench.Figure10(o, datasets.DBLP, 10, 0.05))
		ran++
	}
	if run("fig11") {
		emit(bench.Figure11a(o), bench.Figure11b(o))
		ran++
	}
	if run("hausdorff") {
		emit(bench.AppendixHausdorff(o))
		ran++
	}
	if run("directed") {
		emit(bench.ExtensionDirected(o))
		ran++
	}
	if run("weighted") {
		emit(bench.ExtensionWeighted(o))
		ran++
	}
	if run("ablation") {
		emit(bench.AblationMatching(o), bench.AblationIndexes(o))
		ran++
	}
	if run("corpus") {
		emit(corpusExperiment(o))
		ran++
	}
	if run("churn") {
		emit(churnExperiment(o))
		ran++
	}
	if run("shard") {
		emit(shardExperiment(o))
		ran++
	}
	if run("plan") {
		t1, t2 := planExperiment(o)
		emit(t1, t2)
		ran++
	}
	if run("cascade") {
		emit(cascadeExperiment(o))
		ran++
	}
	if run("serve") {
		emit(serveExperiment(o))
		ran++
	}
	if run("recover") {
		emit(recoverExperiment(o))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "nedbench: unknown experiment %q\n", *exp)
		fmt.Fprintf(os.Stderr, "valid: all table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 hausdorff directed weighted ablation corpus churn shard plan cascade serve recover\n")
		os.Exit(2)
	}
	elapsed := time.Since(start)
	fmt.Printf("%s\ncompleted in %s\n", strings.Repeat("-", 40), elapsed.Round(time.Millisecond))

	if *jsonPath != "" {
		res := jsonResult{
			Experiment: *exp,
			Scale:      *scale,
			Seed:       *seed,
			ElapsedMS:  float64(elapsed.Nanoseconds()) / 1e6,
			Tables:     tables,
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: encoding JSON: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}

// churnExperiment measures the dynamic corpus under a mixed
// insert/remove/query workload: each round removes a batch of indexed
// nodes, re-inserts the batch evicted the round before, and times the
// query set — so query latency is sampled while tombstones and append
// tails accumulate and amortized rebuilds fire. After the final round
// every backend's answers are checked node-for-node against a corpus
// freshly built over the same live node set (the churn-equivalence
// contract, here verified at benchmark scale).
func churnExperiment(o bench.Options) bench.Table {
	o.Normalize()
	const kDepth = 3
	const rounds = 6
	g1 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed})
	g2 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed + 999})
	rng := rand.New(rand.NewSource(o.Seed + 71))

	queries := make([]ned.Signature, 0, o.Queries)
	for _, v := range rng.Perm(g1.NumNodes())[:min(o.Queries, g1.NumNodes())] {
		queries = append(queries, ned.NewSignature(g1, ned.NodeID(v), kDepth))
	}
	cands := make([]ned.NodeID, 0, o.Candidates)
	for _, v := range rng.Perm(g2.NumNodes())[:min(o.Candidates, g2.NumNodes())] {
		cands = append(cands, ned.NodeID(v))
	}
	batch := max(1, len(cands)/12)
	t := bench.Table{
		Title: "Dynamic corpus: KNN latency under churn",
		Note: fmt.Sprintf("%d candidates, %d rounds x (%d removed + %d re-inserted + %d queries), PGP analog, k=%d",
			len(cands), rounds, batch, batch, len(queries), kDepth),
		Header: []string{"backend", "static ms/query", "churn ms/query", "mutations", "rebuilds", "final stale", "mismatches"},
	}

	ctx := context.Background()
	for _, backend := range []ned.Backend{
		ned.BackendLinear, ned.BackendPrunedLinear, ned.BackendVP, ned.BackendBK,
	} {
		corpus, err := ned.NewCorpus(g2, kDepth, ned.WithBackend(backend), ned.WithNodes(cands))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		// Static baseline: the same queries against the untouched index.
		if _, err := corpus.BatchKNN(ctx, queries, 1); err != nil { // materialize
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		if _, err := corpus.BatchKNN(ctx, queries, 1); err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		staticPerQuery := float64(time.Since(start).Nanoseconds()) / 1e6 / float64(len(queries))

		live := append([]ned.NodeID(nil), cands...)
		var evicted []ned.NodeID
		mutations := 0
		var churnTotal time.Duration
		for round := 0; round < rounds; round++ {
			// Re-insert last round's eviction, then evict a fresh batch.
			if err := corpus.Insert(evicted...); err != nil {
				fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
				os.Exit(1)
			}
			live = append(live, evicted...)
			mutations += len(evicted)
			idx := rng.Perm(len(live))[:batch]
			evicted = evicted[:0]
			for _, i := range idx {
				evicted = append(evicted, live[i])
			}
			if err := corpus.Remove(evicted...); err != nil {
				fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
				os.Exit(1)
			}
			kept := live[:0]
			gone := map[ned.NodeID]bool{}
			for _, v := range evicted {
				gone[v] = true
			}
			for _, v := range live {
				if !gone[v] {
					kept = append(kept, v)
				}
			}
			live = kept
			mutations += len(evicted)

			start := time.Now()
			if _, err := corpus.BatchKNN(ctx, queries, 1); err != nil {
				fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
				os.Exit(1)
			}
			churnTotal += time.Since(start)
		}
		churnPerQuery := float64(churnTotal.Nanoseconds()) / 1e6 / float64(rounds*len(queries))

		// Equivalence check against a from-scratch rebuild.
		res, err := corpus.BatchKNN(ctx, queries, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		fresh, err := ned.NewCorpus(g2, kDepth, ned.WithBackend(ned.BackendLinear), ned.WithNodes(live))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		want, err := fresh.BatchKNN(ctx, queries, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		mismatches := 0
		for i := range res {
			if len(res[i]) != len(want[i]) ||
				(len(res[i]) > 0 && res[i][0] != want[i][0]) {
				mismatches++
			}
		}

		stats := corpus.Stats()
		t.AddRow(backend.String(),
			fmt.Sprintf("%.3f", staticPerQuery),
			fmt.Sprintf("%.3f", churnPerQuery),
			fmt.Sprint(mutations),
			fmt.Sprint(stats.Rebuilds),
			fmt.Sprintf("%.2f", stats.StaleRatio),
			fmt.Sprint(mismatches))
	}
	return t
}

// shardExperiment measures the sharded engine's scaling: the same mixed
// read/write workload — concurrent reader goroutines issuing KNN
// queries while one writer continuously churns nodes — against shard
// counts 1, 2, 4, and 8. Each shard owns its own epoch-published index,
// so reads never block on mutations and a mutation only serializes
// against its own shard; the table shows what that buys (or costs, on
// few cores, where fan-out cannot parallelize and smaller metric trees
// prune less).
func shardExperiment(o bench.Options) bench.Table {
	o.Normalize()
	const kDepth = 3
	g1 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed})
	g2 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed + 999})
	rng := rand.New(rand.NewSource(o.Seed + 81))

	queries := make([]ned.Signature, 0, o.Queries)
	for _, v := range rng.Perm(g1.NumNodes())[:min(o.Queries, g1.NumNodes())] {
		queries = append(queries, ned.NewSignature(g1, ned.NodeID(v), kDepth))
	}
	cands := make([]ned.NodeID, 0, o.Candidates)
	for _, v := range rng.Perm(g2.NumNodes())[:min(o.Candidates, g2.NumNodes())] {
		cands = append(cands, ned.NodeID(v))
	}
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}
	perReader := max(1, len(queries)/2)

	t := bench.Table{
		Title: "Sharded corpus: mixed read/write throughput vs shard count",
		Note: fmt.Sprintf("%d candidates, %d readers x %d KNN queries with 1 continuous churn writer, PGP analog, k=%d, backend=vp, GOMAXPROCS=%d",
			len(cands), readers, perReader, kDepth, runtime.GOMAXPROCS(0)),
		Header: []string{"shards", "wall ms", "queries/s", "mutations", "rebuilds", "mismatches"},
	}

	ctx := context.Background()
	var exact []ned.Neighbor
	for _, shards := range []int{1, 2, 4, 8} {
		corpus, err := ned.NewCorpus(g2, kDepth, ned.WithBackend(ned.BackendVP),
			ned.WithNodes(cands), ned.WithShards(shards))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		if _, err := corpus.KNNSignature(ctx, queries[0], 1); err != nil { // materialize
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}

		// One writer churns the second half of the candidate pool until
		// the readers finish; readers hammer KNN over the stable first
		// half's answers.
		stop := make(chan struct{})
		var writerDone sync.WaitGroup
		var mutations int
		writerDone.Add(1)
		go func() {
			defer writerDone.Done()
			wrng := rand.New(rand.NewSource(o.Seed + 91))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := cands[len(cands)/2+wrng.Intn(len(cands)-len(cands)/2)]
				if err := corpus.Remove(v); err != nil {
					fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
					os.Exit(1)
				}
				if err := corpus.Insert(v); err != nil {
					fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
					os.Exit(1)
				}
				mutations += 2
			}
		}()

		var readersDone sync.WaitGroup
		start := time.Now()
		for w := 0; w < readers; w++ {
			readersDone.Add(1)
			go func(seed int64) {
				defer readersDone.Done()
				qrng := rand.New(rand.NewSource(seed))
				for i := 0; i < perReader; i++ {
					q := queries[qrng.Intn(len(queries))]
					if _, err := corpus.KNNSignature(ctx, q, 5); err != nil {
						fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
						os.Exit(1)
					}
				}
			}(o.Seed + int64(w))
		}
		readersDone.Wait()
		wall := time.Since(start)
		close(stop)
		writerDone.Wait()

		// Sharded answers on the stable half must match shards=1 exactly.
		mismatches := 0
		res, err := corpus.KNNSignature(ctx, queries[0], 10)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		if exact == nil {
			exact = res
		} else {
			n := len(res)
			if len(exact) > n {
				n = len(exact)
			}
			for i := 0; i < n; i++ {
				if i >= len(res) || i >= len(exact) || res[i] != exact[i] {
					mismatches++
				}
			}
		}

		stats := corpus.Stats()
		totalQueries := readers * perReader
		t.AddRow(fmt.Sprint(shards),
			fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/1e6),
			fmt.Sprintf("%.1f", float64(totalQueries)/wall.Seconds()),
			fmt.Sprint(mutations),
			fmt.Sprint(stats.Rebuilds),
			fmt.Sprint(mismatches))
	}
	return t
}

// planExperiment measures the two halves of the adaptive engine.
//
// Table 1 — adaptive placement vs fixed hash: a skewed-hotspot mixed
// read/write workload (all writes concentrated on nodes that hash into
// one shard) driven against the same 8-shard corpus with and without
// rebalancer ticks. Under fixed hash placement every hot write pays a
// copy-on-write epoch clone of the whole hot shard; the rebalancer
// splits the hot shard until each write clones a fraction of it, so
// mixed throughput rises with zero answer drift.
//
// Table 2 — cost-based planner vs hand-picked shard counts: the
// single-goroutine mirror of BenchmarkCorpusParallelChurn (every 8th
// operation churns a node, the rest are KNN queries) across explicit
// WithShards settings with the planner disabled, against the planner-on
// default configuration. The planner must land within a few percent of
// the best hand-picked setting without being told the core count.
func planExperiment(o bench.Options) (bench.Table, bench.Table) {
	return planAdaptiveTable(o), planPlannerTable(o)
}

func planAdaptiveTable(o bench.Options) bench.Table {
	o.Normalize()
	const kDepth = 2
	const base = 8        // seed shard count under test
	const hotSize = 32    // nodes carrying every write
	const writesPerQ = 16 // churned nodes per query (skewed, write-heavy)
	const tickEvery = 8   // workload cycles between rebalancer ticks
	window := 1200 * time.Millisecond

	g1 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed})
	g2 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed + 999})
	rng := rand.New(rand.NewSource(o.Seed + 101))
	die := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
	}

	queries := make([]ned.Signature, 0, o.Queries)
	for _, v := range rng.Perm(g1.NumNodes())[:min(o.Queries, g1.NumNodes())] {
		queries = append(queries, ned.NewSignature(g1, ned.NodeID(v), kDepth))
	}
	cands := make([]ned.NodeID, 0, o.Candidates)
	for _, v := range rng.Perm(g2.NumNodes())[:min(o.Candidates, g2.NumNodes())] {
		cands = append(cands, ned.NodeID(v))
	}
	var hot []ned.NodeID
	for _, v := range cands {
		if ned.HashShard(v, base) == 0 && len(hot) < hotSize {
			hot = append(hot, v)
		}
	}

	t := bench.Table{
		Title: "Adaptive sharding: skewed-hotspot mixed read/write throughput vs fixed hash",
		Note: fmt.Sprintf("%d candidates in %d shards, all writes on %d nodes hashing into shard 0, %d Remove+Insert pairs per KNN(5) query, %s window per config, PGP analog, k=%d; adaptive = RebalanceTick every %d cycles",
			len(cands), base, len(hot), writesPerQ, window, kDepth, tickEvery),
		Header: []string{"backend", "placement", "ops/s", "queries", "mutations", "splits", "merges", "overrides", "vs fixed", "mismatches"},
	}

	ctx := context.Background()
	pol := ned.RebalancePolicy{MinShardNodes: 8, SplitMinMutations: 4, SplitFraction: 0.25}
	for _, backend := range []ned.Backend{ned.BackendPrunedLinear, ned.BackendVP} {
		// Ground truth for the mismatch column: churn always restores
		// membership, so a fresh single-shard corpus over the full pool.
		fresh, err := ned.NewCorpus(g2, kDepth, ned.WithBackend(ned.BackendLinear), ned.WithNodes(cands))
		die(err)
		want, err := fresh.BatchKNN(ctx, queries, 1)
		die(err)

		var fixedOps float64
		for _, adaptive := range []bool{false, true} {
			corpus, err := ned.NewCorpus(g2, kDepth, ned.WithBackend(backend),
				ned.WithNodes(cands), ned.WithShards(base))
			die(err)
			_, err = corpus.KNNSignature(ctx, queries[0], 1) // materialize
			die(err)

			nQueries, nMutations, cycles := 0, 0, 0
			deadline := time.Now().Add(window)
			start := time.Now()
			for time.Now().Before(deadline) {
				for j := 0; j < writesPerQ; j++ {
					v := hot[(cycles*writesPerQ+j)%len(hot)]
					die(corpus.Remove(v))
					die(corpus.Insert(v))
					nMutations += 2
				}
				_, err := corpus.KNNSignature(ctx, queries[cycles%len(queries)], 5)
				die(err)
				nQueries++
				cycles++
				if adaptive && cycles%tickEvery == 0 {
					corpus.RebalanceTick(pol)
				}
			}
			wall := time.Since(start)
			opsPerSec := float64(nQueries+nMutations) / wall.Seconds()

			res, err := corpus.BatchKNN(ctx, queries, 1)
			die(err)
			mismatches := 0
			for i := range res {
				if len(res[i]) == 0 || len(want[i]) == 0 ||
					res[i][0].Dist != want[i][0].Dist {
					mismatches++
				}
			}

			placement, ratio := "fixed hash", ""
			if adaptive {
				placement = "adaptive"
				ratio = fmt.Sprintf("%.2fx", opsPerSec/fixedOps)
			} else {
				fixedOps = opsPerSec
				ratio = "1.00x"
			}
			stats := corpus.Stats()
			t.AddRow(backend.String(), placement,
				fmt.Sprintf("%.1f", opsPerSec),
				fmt.Sprint(nQueries),
				fmt.Sprint(nMutations),
				fmt.Sprint(stats.ShardSplits),
				fmt.Sprint(stats.ShardMerges),
				fmt.Sprint(stats.PlacementOverrides),
				ratio,
				fmt.Sprint(mismatches))
		}
	}
	return t
}

func planPlannerTable(o bench.Options) bench.Table {
	// Mirrors BenchmarkCorpusParallelChurn's workload constants so the
	// table reads against BENCH_PARALLEL_CHURN.json directly.
	const kDepth, nQueries, nCands, l = 3, 16, 300, 5
	const scale = 0.1
	const nOps = 600
	const trials = 3

	g1 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: scale, Seed: 7})
	g2 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: scale, Seed: 8})
	rng := rand.New(rand.NewSource(9))
	die := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
	}

	queries := make([]ned.Signature, 0, nQueries)
	for _, v := range rng.Perm(g1.NumNodes())[:nQueries] {
		queries = append(queries, ned.NewSignature(g1, ned.NodeID(v), kDepth))
	}
	cands := make([]ned.NodeID, 0, nCands)
	for _, v := range rng.Perm(g2.NumNodes())[:min(nCands, g2.NumNodes())] {
		cands = append(cands, ned.NodeID(v))
	}

	ctx := context.Background()
	fresh, err := ned.NewCorpus(g2, kDepth, ned.WithBackend(ned.BackendLinear), ned.WithNodes(cands))
	die(err)
	want, err := fresh.BatchKNN(ctx, queries, 1)
	die(err)

	// measure runs the churn loop trials times and keeps the median.
	measure := func(corpus *ned.Corpus) (nsPerOp float64, mismatches int) {
		_, err := corpus.KNNSignature(ctx, queries[0], 1) // materialize
		die(err)
		var times []float64
		for trial := 0; trial < trials; trial++ {
			start := time.Now()
			for i := 1; i <= nOps; i++ {
				if i%8 == 0 {
					v := cands[(i/8)%len(cands)]
					die(corpus.Remove(v))
					die(corpus.Insert(v))
				} else {
					_, err := corpus.KNNSignature(ctx, queries[i%len(queries)], l)
					die(err)
				}
			}
			times = append(times, float64(time.Since(start).Nanoseconds())/nOps)
		}
		sort.Float64s(times)
		res, err := corpus.BatchKNN(ctx, queries, 1)
		die(err)
		for i := range res {
			if len(res[i]) == 0 || len(want[i]) == 0 ||
				res[i][0].Dist != want[i][0].Dist {
				mismatches++
			}
		}
		return times[trials/2], mismatches
	}

	type row struct {
		config     string
		nsPerOp    float64
		mismatches int
	}
	var rows []row
	best := 0.0
	for _, shards := range []int{1, 2, 4, 8} {
		corpus, err := ned.NewCorpus(g2, kDepth, ned.WithBackend(ned.BackendVP),
			ned.WithNodes(cands), ned.WithShards(shards), ned.WithPlanner(false))
		die(err)
		ns, mm := measure(corpus)
		rows = append(rows, row{fmt.Sprintf("planner off, WithShards(%d)", shards), ns, mm})
		if best == 0 || ns < best {
			best = ns
		}
	}
	corpus, err := ned.NewCorpus(g2, kDepth, ned.WithBackend(ned.BackendVP), ned.WithNodes(cands))
	die(err)
	ns, mm := measure(corpus)
	rows = append(rows, row{"planner on, default shards", ns, mm})

	t := bench.Table{
		Title: "Cost-based planner: churn ns/op vs hand-picked shard counts",
		Note: fmt.Sprintf("single-goroutine mirror of BenchmarkCorpusParallelChurn (%d candidates, every 8th op Remove+Insert, rest KNN(%d), PGP analog scale %.1f, k=%d, backend=vp), %d ops x %d trials (median), GOMAXPROCS=%d",
			len(cands), l, scale, kDepth, nOps, trials, runtime.GOMAXPROCS(0)),
		Header: []string{"config", "ns/op", "vs best hand-picked", "mismatches"},
	}
	for _, r := range rows {
		t.AddRow(r.config,
			fmt.Sprintf("%.0f", r.nsPerOp),
			fmt.Sprintf("%.2fx", r.nsPerOp/best),
			fmt.Sprint(r.mismatches))
	}
	return t
}

// cascadeExperiment profiles the filter–verify cascade per backend:
// the same batch of inter-graph KNN queries, reporting per query how
// many candidate evaluations each precompiled tier dismissed (size gap,
// padding over flat level vectors, per-level label multisets), how many
// survivors were abandoned mid-TED* by the budget, and how many ran to
// completion — with the answers asserted node-identical to the exact
// linear scan, since the cascade may only skip work, never change
// results.
func cascadeExperiment(o bench.Options) bench.Table {
	o.Normalize()
	t := bench.Table{
		Title:  "Filter cascade: per-tier candidate pruning across backends (per-query mean)",
		Note:   fmt.Sprintf("%d candidates, %d KNN(5) queries, PGP analog, k=3; prune tiers are exact-preserving lower bounds", o.Candidates, o.Queries),
		Header: []string{"backend", "time (ms)", "TED* evals", "size prunes", "padding prunes", "label prunes", "early exits", "mismatches"},
	}
	g1 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed})
	g2 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed + 999})
	rng := rand.New(rand.NewSource(o.Seed + 67))

	queries := make([]ned.Signature, 0, o.Queries)
	for _, v := range rng.Perm(g1.NumNodes())[:min(o.Queries, g1.NumNodes())] {
		queries = append(queries, ned.NewSignature(g1, ned.NodeID(v), 3))
	}
	cands := make([]ned.NodeID, 0, o.Candidates)
	for _, v := range rng.Perm(g2.NumNodes())[:min(o.Candidates, g2.NumNodes())] {
		cands = append(cands, ned.NodeID(v))
	}

	// Ground truth is deliberately cascade-free: the exhaustive
	// unbudgeted TopL over raw signatures, so a bound bug shared by
	// every backend still shows up as mismatches.
	candSigs := ned.Signatures(g2, cands, 3)
	exact := make([][]ned.Neighbor, len(queries))
	for i, q := range queries {
		exact[i] = ned.TopL(q, candSigs, 5)
	}

	ctx := context.Background()
	for _, backend := range []ned.Backend{
		ned.BackendLinear, ned.BackendPrunedLinear, ned.BackendVP, ned.BackendBK,
	} {
		corpus, err := ned.NewCorpus(g2, 3, ned.WithBackend(backend), ned.WithNodes(cands))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		if _, err := corpus.KNNSignature(ctx, queries[0], 1); err != nil { // materialize
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		corpus.ResetStats()
		start := time.Now()
		res, err := corpus.BatchKNN(ctx, queries, 5)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		mismatches := 0
		for i := range res {
			if fmt.Sprint(res[i]) != fmt.Sprint(exact[i]) {
				mismatches++
			}
		}
		stats := corpus.Stats()
		nq := float64(len(queries))
		per := func(v int64) string { return fmt.Sprintf("%.1f", float64(v)/nq) }
		t.AddRow(backend.String(),
			fmt.Sprintf("%.3f", float64(elapsed.Nanoseconds())/1e6/nq),
			per(stats.DistanceCalls),
			per(stats.SizePrunes),
			per(stats.PaddingPrunes),
			per(stats.LabelPrunes),
			per(stats.EarlyExits),
			fmt.Sprint(mismatches))
	}
	return t
}

// serveExperiment measures the nedserve HTTP tier end to end: an
// in-process server over a PGP-analog corpus, swept across client
// concurrency levels. Each level fires its queries from that many
// concurrent HTTP clients and reports throughput, p50/p99 request
// latency, and what fraction of the KNN requests the server coalesced
// into shared BatchKNN passes — the number that should climb with
// concurrency while the tail stays flat.
func serveExperiment(o bench.Options) bench.Table {
	o.Normalize()
	const kDepth = 3

	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tenant, err := serve.CreateTenant(&serve.CreateRequest{
		Name: "bench", K: kDepth, Dataset: "PGP", Scale: o.Scale, Seed: o.Seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Registry().Put(tenant); err != nil {
		fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
		os.Exit(1)
	}
	tenant.Corpus.Rebuild() // materialize outside the measured windows
	nodes := tenant.Corpus.Stats().Nodes

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	knnURL := ts.URL + "/v1/corpora/bench/knn"
	doKNN := func(node int) (time.Duration, error) {
		body, _ := json.Marshal(map[string]int{"node": node, "l": 5})
		start := time.Now()
		resp, err := client.Post(knnURL, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("knn status %d", resp.StatusCode)
		}
		return time.Since(start), nil
	}

	t := bench.Table{
		Title: "nedserve: HTTP KNN latency vs client concurrency",
		Note: fmt.Sprintf("PGP analog (%d nodes, k=%d), KNN(5) over HTTP, in-process server, coalescing window %s",
			nodes, kDepth, 2*time.Millisecond),
		Header: []string{"concurrency", "queries", "qps", "p50 ms", "p99 ms", "coalesced %", "errors"},
	}

	for _, conc := range []int{1, 4, 16, 64} {
		total := max(o.Queries, conc*8)
		before := srv.Stats()
		durations := make([]time.Duration, total)
		var errCount int64
		var wg sync.WaitGroup
		var next int64
		start := time.Now()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= total {
						return
					}
					d, err := doKNN(rng.Intn(nodes))
					if err != nil {
						atomic.AddInt64(&errCount, 1)
						continue
					}
					durations[i] = d
				}
			}(o.Seed + int64(conc*1000+w))
		}
		wg.Wait()
		wall := time.Since(start)
		after := srv.Stats()

		sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(durations)-1))
			return float64(durations[i].Nanoseconds()) / 1e6
		}
		coalesced := after.CoalescedRequests - before.CoalescedRequests
		t.AddRow(fmt.Sprint(conc),
			fmt.Sprint(total),
			fmt.Sprintf("%.1f", float64(total)/wall.Seconds()),
			fmt.Sprintf("%.3f", pct(0.50)),
			fmt.Sprintf("%.3f", pct(0.99)),
			fmt.Sprintf("%.1f", 100*float64(coalesced)/float64(total)),
			fmt.Sprint(errCount))
	}
	return t
}

// recoverExperiment measures restart-to-first-query time across the
// persistence formats and backends: the same PGP-analog corpus written
// as a v2 text snapshot and as a binary segment, each loaded from disk
// and asked its first KNN query (median of three trials), plus a
// durable-directory recovery (checkpoint segment + mutation-log replay
// via OpenDurable) after a burst of logged mutations.
//
// The linear-backend rows isolate what the formats themselves cost —
// index build is trivial, so text pays re-parsing every tree and
// recompiling every cascade profile against the segment's
// deserialize-and-validate. The vp-backend rows measure a production
// restart: the VP metric tree costs O(n log n) TED* evaluations to
// build, the segment persists the built structure (restored without a
// single metric call), and the text snapshot — which cannot carry it —
// pays the whole re-index inside its first query.
func recoverExperiment(o bench.Options) bench.Table {
	o.Normalize()
	const kDepth = 3
	const walBurst = 128
	g := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed})
	ctx := context.Background()

	tmp, err := os.MkdirTemp("", "nedbench-recover-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)
	die := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
	}
	writeTo := func(name string, write func(io.Writer) error) (string, int64) {
		path := tmp + "/" + name
		f, err := os.Create(path)
		if err == nil {
			err = write(f)
		}
		if err == nil {
			err = f.Close()
		}
		st, statErr := os.Stat(path)
		if err == nil {
			err = statErr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: writing %s: %v\n", name, err)
			os.Exit(1)
		}
		return path, st.Size()
	}

	t := bench.Table{
		Title: "Durable persistence: restart-to-first-query by format and backend",
		Note: fmt.Sprintf("PGP analog (%d nodes, k=%d), first query = KNN(5); linear rows isolate format cost, vp rows add the metric index the segment persists and text must rebuild; durable rows replay a %d-record mutation log onto their checkpoint; median of 3",
			g.NumNodes(), kDepth, 2*walBurst),
		Header: []string{"backend", "format", "bytes", "load ms", "first query ms", "restart ms", "speedup vs text"},
	}

	for _, backend := range []ned.Backend{ned.BackendLinear, ned.BackendVP} {
		corpus, err := ned.NewCorpus(g, kDepth, ned.WithBackend(backend))
		die(err)
		corpus.Rebuild()
		sig, err := corpus.Signature(0)
		die(err)
		// Warm query: builds the index structures so a VP snapshot has a
		// built tree to persist — the state a serving process restarts
		// from.
		_, err = corpus.KNNSignature(ctx, sig, 5)
		die(err)

		txtPath, txtBytes := writeTo("corpus-"+backend.String()+".nedcorpus", corpus.Snapshot)
		segPath, segBytes := writeTo("corpus-"+backend.String()+".nedseg", corpus.SnapshotSegment)

		// The durable directory: attach, burst logged mutations, abandon
		// without a drain checkpoint — recovery must replay the log tail.
		durDir := tmp + "/durable-" + backend.String()
		die(corpus.MakeDurable(durDir, ned.FsyncNone))
		for i := 0; i < walBurst; i++ {
			v := ned.NodeID(1 + i%(g.NumNodes()-1))
			if err := corpus.Remove(v); err == nil {
				err = corpus.Insert(v)
			}
			die(err)
		}
		die(corpus.CloseDurable())
		var durBytes int64
		durEntries, _ := os.ReadDir(durDir)
		for _, e := range durEntries {
			if st, err := e.Info(); err == nil {
				durBytes += st.Size()
			}
		}

		// measure times load-then-first-query three times, keeping medians.
		measure := func(load func() (*ned.Corpus, error)) (loadMS, queryMS float64) {
			var loads, queries []float64
			for trial := 0; trial < 3; trial++ {
				start := time.Now()
				c, err := load()
				die(err)
				loads = append(loads, float64(time.Since(start).Nanoseconds())/1e6)
				start = time.Now()
				_, err = c.KNNSignature(ctx, sig, 5)
				die(err)
				queries = append(queries, float64(time.Since(start).Nanoseconds())/1e6)
			}
			sort.Float64s(loads)
			sort.Float64s(queries)
			return loads[1], queries[1]
		}
		fromFile := func(path string) func() (*ned.Corpus, error) {
			return func() (*ned.Corpus, error) {
				f, err := os.Open(path)
				if err != nil {
					return nil, err
				}
				defer f.Close()
				return ned.LoadCorpus(f)
			}
		}

		var textTotal float64
		for _, row := range []struct {
			name  string
			bytes int64
			load  func() (*ned.Corpus, error)
		}{
			{"text v2", txtBytes, fromFile(txtPath)},
			{"binary segment", segBytes, fromFile(segPath)},
			{"durable dir (ckpt+wal)", durBytes, func() (*ned.Corpus, error) {
				c, err := ned.OpenDurable(durDir, ned.FsyncNone)
				if err != nil {
					return nil, err
				}
				return c, c.CloseDurable()
			}},
		} {
			loadMS, queryMS := measure(row.load)
			total := loadMS + queryMS
			if row.name == "text v2" {
				textTotal = total
			}
			t.AddRow(backend.String(), row.name,
				fmt.Sprint(row.bytes),
				fmt.Sprintf("%.1f", loadMS),
				fmt.Sprintf("%.2f", queryMS),
				fmt.Sprintf("%.1f", total),
				fmt.Sprintf("%.1fx", textTotal/total))
		}
	}
	return t
}

// corpusExperiment drives the public Corpus query engine end to end:
// the same batch of inter-graph KNN queries served by each backend,
// reporting wall time, TED* evaluations per query, and how much of the
// candidate work the budget pipeline skipped (early exits mid-TED* and
// padding-lower-bound prunes). Distances are asserted equal across
// backends against the exact linear scan.
func corpusExperiment(o bench.Options) bench.Table {
	o.Normalize()
	t := bench.Table{
		Title:  "Corpus engine: BatchKNN across backends (per-query mean)",
		Note:   fmt.Sprintf("%d candidates, %d queries, PGP analog, k=3", o.Candidates, o.Queries),
		Header: []string{"backend", "time (ms)", "TED* evals/query", "early exits/query", "lb prunes/query", "scan mismatches"},
	}
	g1 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed})
	g2 := ned.MustGenerateDataset(ned.DatasetPGP, ned.DatasetOptions{Scale: o.Scale, Seed: o.Seed + 999})
	rng := rand.New(rand.NewSource(o.Seed + 61))

	queries := make([]ned.Signature, 0, o.Queries)
	for _, v := range rng.Perm(g1.NumNodes())[:min(o.Queries, g1.NumNodes())] {
		queries = append(queries, ned.NewSignature(g1, ned.NodeID(v), 3))
	}
	cands := make([]ned.NodeID, 0, o.Candidates)
	for _, v := range rng.Perm(g2.NumNodes())[:min(o.Candidates, g2.NumNodes())] {
		cands = append(cands, ned.NodeID(v))
	}

	ctx := context.Background()
	var exact [][]ned.Neighbor
	for _, backend := range []ned.Backend{
		ned.BackendLinear, ned.BackendPrunedLinear, ned.BackendVP, ned.BackendBK,
	} {
		corpus, err := ned.NewCorpus(g2, 3, ned.WithBackend(backend), ned.WithNodes(cands))
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		// Materialize the index outside the timed window.
		if _, err := corpus.KNNSignature(ctx, queries[0], 1); err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		corpus.ResetStats()
		start := time.Now()
		res, err := corpus.BatchKNN(ctx, queries, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nedbench: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		mismatches := 0
		if exact == nil {
			exact = res
		} else {
			for i := range res {
				if res[i][0].Dist != exact[i][0].Dist {
					mismatches++
				}
			}
		}
		stats := corpus.Stats()
		nq := int64(len(queries))
		t.AddRow(backend.String(),
			fmt.Sprintf("%.3f", float64(elapsed.Nanoseconds())/1e6/float64(len(queries))),
			fmt.Sprint(stats.DistanceCalls/nq),
			fmt.Sprint(stats.EarlyExits/nq),
			fmt.Sprint(stats.LowerBoundPrunes/nq),
			fmt.Sprint(mismatches))
	}
	return t
}
