// Command nedstats prints structural statistics of a graph — either one
// of the built-in dataset analogs or an edge-list file — so the synthetic
// substitutions of DESIGN.md §2 can be checked against the real graphs'
// published numbers.
//
// Usage:
//
//	nedstats -dataset PGP [-scale 1.0] [-seed 42]
//	nedstats -file path/to/graph.edges
//	nedstats -dataset PGP -shards 8 [-k 3]   # report corpus shard balance too
//	nedstats -dataset PGP -probe 20 [-k 3]   # report filter-cascade effectiveness too
//
// With -shards (> 0, or -shards -1 for the GOMAXPROCS-derived default),
// nedstats additionally partitions the graph's nodes the way a sharded
// ned.Corpus would and reports the per-shard node counts, so the hash
// balance can be checked for a dataset before serving it.
//
// With -probe N, nedstats builds a corpus over the graph, runs N
// self-KNN queries through it, and reports the serving work profile —
// TED* evaluations, budget early exits, and the per-tier cascade prune
// counters (size / padding / label-multiset) — so the filter cascade's
// effectiveness on a dataset can be checked before serving it.
//
// With -json, nedstats builds a corpus (honoring -k, -shards, and
// -probe) and emits the same machine-readable stats document the
// nedserve stats endpoint returns, through the same encoder, so
// offline tooling and the serving tier can never drift apart.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"ned"
	"ned/internal/datasets"
	"ned/internal/graph"
	"ned/internal/serve"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "built-in dataset analog (CAR, PAR, AMZN, DBLP, GNU, PGP)")
		file    = flag.String("file", "", "edge-list file to analyze")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor")
		seed    = flag.Int64("seed", 42, "generator seed")
		hist    = flag.Bool("hist", false, "print the degree histogram")
		shards  = flag.Int("shards", 0, "report corpus shard balance for this shard count (0 = off, -1 = GOMAXPROCS-derived default)")
		k       = flag.Int("k", 3, "neighborhood depth for the shard-balance and probe corpora")
		probe   = flag.Int("probe", 0, "run this many self-KNN queries and report the filter-cascade work profile (0 = off)")
		asJSON  = flag.Bool("json", false, "emit the corpus stats as the nedserve machine-readable stats document")
	)
	flag.Parse()

	var g *graph.Graph
	var label string
	switch {
	case *dataset != "":
		name := datasets.Name(strings.ToUpper(*dataset))
		var err error
		g, err = datasets.Generate(name, datasets.Options{Scale: *scale, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		label = string(name)
	case *file != "":
		var err error
		g, _, err = graph.LoadEdgeListFile(*file, false)
		if err != nil {
			fatal(err)
		}
		label = *file
	default:
		fmt.Fprintln(os.Stderr, "nedstats: provide -dataset or -file")
		flag.Usage()
		os.Exit(2)
	}

	if *asJSON {
		emitJSON(g, label, *k, *shards, *probe)
		return
	}

	s := graph.ComputeStats(g)
	fmt.Printf("graph: %s\n", label)
	fmt.Printf("  nodes                 %d\n", s.Nodes)
	fmt.Printf("  edges                 %d\n", s.Edges)
	fmt.Printf("  avg degree            %.2f\n", s.AvgDegree)
	fmt.Printf("  max degree            %d\n", s.MaxDegree)
	fmt.Printf("  components            %d (largest %d)\n", s.Components, s.LargestComponent)
	fmt.Printf("  global clustering     %.4f\n", s.GlobalClustering)
	fmt.Printf("  avg local clustering  %.4f\n", s.AvgLocalCluster)
	fmt.Printf("  diameter (approx >=)  %d\n", s.ApproxDiameter)
	fmt.Printf("  degree assortativity  %.4f\n", s.DegreeAssortative)

	if *hist {
		fmt.Println("  degree histogram:")
		for d, c := range graph.DegreeHistogram(g) {
			if c > 0 {
				fmt.Printf("    %4d  %d\n", d, c)
			}
		}
	}

	if *shards != 0 {
		corpus, err := ned.NewCorpus(g, *k, ned.WithShards(ned.ShardsFlag(*shards)))
		if err != nil {
			fatal(err)
		}
		cs := corpus.Stats()
		fmt.Printf("corpus sharding (k=%d):\n", cs.K)
		fmt.Printf("  shards                %d\n", cs.Shards)
		lo, hi := cs.ShardNodes[0], cs.ShardNodes[0]
		for _, c := range cs.ShardNodes {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		fmt.Printf("  nodes/shard           min %d, max %d (ideal %.1f)\n",
			lo, hi, float64(cs.Nodes)/float64(cs.Shards))
		fmt.Printf("  per-shard counts      %v\n", cs.ShardNodes)
	}

	if *probe > 0 {
		probeCascade(g, *k, *probe)
	}
}

// emitJSON builds a corpus over g (optionally probing it first so the
// work counters are populated) and writes the stats document to stdout
// via serve.EncodeStats — the exact schema and encoder the nedserve
// stats endpoint uses.
func emitJSON(g *graph.Graph, label string, k, shards, probe int) {
	var opts []ned.CorpusOption
	if shards != 0 {
		opts = append(opts, ned.WithShards(ned.ShardsFlag(shards)))
	}
	corpus, err := ned.NewCorpus(g, k, opts...)
	if err != nil {
		fatal(err)
	}
	if probe > 0 {
		runProbes(corpus, g, probe)
	} else {
		corpus.Rebuild() // materialize so node/shard counts are real
	}
	if err := serve.EncodeStats(os.Stdout, serve.StatsDoc{Corpus: label, Stats: corpus.Stats()}); err != nil {
		fatal(err)
	}
}

// runProbes serves n spread-out self-KNN(5) queries so the cascade and
// distance counters in the emitted stats reflect real serving work.
func runProbes(corpus *ned.Corpus, g *graph.Graph, n int) {
	ctx := context.Background()
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	step := g.NumNodes() / n
	if step < 1 {
		step = 1
	}
	for q := 0; q < n; q++ {
		if _, err := corpus.KNN(ctx, ned.NodeID(q*step), 5); err != nil {
			fatal(err)
		}
	}
}

// probeCascade serves n self-KNN queries (node 0, step spread across
// the graph) from a corpus over g and prints the cascade work profile:
// how many candidate evaluations the precompiled size / padding /
// label-multiset tiers dismissed before any TED* matching work, versus
// full evaluations and mid-TED* early exits.
func probeCascade(g *graph.Graph, k, n int) {
	corpus, err := ned.NewCorpus(g, k)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	step := g.NumNodes() / n
	if step < 1 {
		step = 1
	}
	// Materialize outside the measured window, then reset the counters
	// so the profile covers only the probe queries.
	if _, err := corpus.KNN(ctx, 0, 1); err != nil {
		fatal(err)
	}
	corpus.ResetStats()
	for q := 0; q < n; q++ {
		if _, err := corpus.KNN(ctx, ned.NodeID(q*step), 5); err != nil {
			fatal(err)
		}
	}
	s := corpus.Stats()
	per := func(v int64) string { return fmt.Sprintf("%d (%.1f/query)", v, float64(v)/float64(n)) }
	fmt.Printf("filter cascade (k=%d, backend=%s, %d KNN(5) probes):\n", s.K, s.Backend, n)
	fmt.Printf("  TED* evaluations      %s\n", per(s.DistanceCalls))
	fmt.Printf("  early exits           %s\n", per(s.EarlyExits))
	fmt.Printf("  cascade prunes        %s\n", per(s.LowerBoundPrunes))
	fmt.Printf("    size tier           %s\n", per(s.SizePrunes))
	fmt.Printf("    padding tier        %s\n", per(s.PaddingPrunes))
	fmt.Printf("    label tier          %s\n", per(s.LabelPrunes))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nedstats: %v\n", err)
	os.Exit(1)
}
