// Command nedserve is the network tier over the ned Corpus engine: a
// multi-tenant HTTP/JSON daemon serving KNN / KNNSignature / Range /
// NearestSet / BatchKNN queries and Insert / Remove / UpdateGraph /
// Snapshot mutations over named corpora, with per-request deadlines,
// admission control, request coalescing, Prometheus metrics, and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	nedserve -addr :8080                                   # empty registry; create corpora over the API
//	nedserve -addr :8080 -name demo -dataset PGP -k 3      # boot serving a built-in dataset analog
//	nedserve -addr :8080 -name prod -snapshot corpus.neds  # boot from a corpus snapshot file
//	nedserve -addr :8080 -data /var/lib/nedserve           # durable tenants: recover on boot, WAL every mutation
//
// Corpora are created and dropped at runtime over the API:
//
//	curl -X POST localhost:8080/v1/corpora -d '{"name":"g1","k":3,"graph":{"nodes":4,"edges":[[0,1],[1,2],[2,3]]}}'
//	curl -X POST localhost:8080/v1/corpora/g1/knn -d '{"node":0,"l":3}'
//	curl 'localhost:8080/v1/corpora/g1/stats'
//	curl 'localhost:8080/metrics'
//
// See the README's "Serving" section for the endpoint catalog, deadline
// and overload semantics, and a complete example session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ned"
	"ned/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		name     = flag.String("name", "default", "name of the corpus served at boot (with -dataset or -snapshot)")
		dataset  = flag.String("dataset", "", "boot corpus: built-in dataset analog (CAR, PAR, AMZN, DBLP, GNU, PGP)")
		snapshot = flag.String("snapshot", "", "boot corpus: ned corpus snapshot file")
		k        = flag.Int("k", 3, "boot corpus neighborhood depth (dataset only; snapshots record their own)")
		backend  = flag.String("backend", "", "boot corpus index backend (vp, bk, linear, pruned; empty = engine default)")
		shards   = flag.Int("shards", 0, "boot corpus shard count (0 = engine default)")
		workers  = flag.Int("workers", 0, "boot corpus worker count (0 = GOMAXPROCS)")
		scale    = flag.Float64("scale", 1.0, "boot dataset scale factor")
		seed     = flag.Int64("seed", 42, "boot dataset generator seed")
		prebuild = flag.Bool("prebuild", true, "build the boot corpus's index before accepting traffic")

		maxInflight = flag.Int("max-inflight", 256, "admitted query concurrency; beyond it requests get 429")
		coalesceWin = flag.Duration("coalesce-window", 2*time.Millisecond, "KNN coalescing window (negative disables)")
		coalesceMax = flag.Int("coalesce-max", 64, "flush a coalesced batch early at this many requests")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown: how long to wait for in-flight queries")

		dataDir   = flag.String("data", "", "durable data directory: tenants persist in per-name subdirectories and recover on boot")
		fsyncMode = flag.String("fsync", "always", "WAL fsync policy for durable tenants (always, none)")
		ckptEvery = flag.Int64("checkpoint-every", 1024, "checkpoint a durable tenant once its mutation log holds this many records")
	)
	flag.Parse()

	fsync, err := ned.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}
	srv := serve.New(serve.Options{
		MaxInflight:      *maxInflight,
		CoalesceWindow:   *coalesceWin,
		CoalesceMaxBatch: *coalesceMax,
		DataDir:          *dataDir,
		Fsync:            fsync,
		CheckpointEvery:  *ckptEvery,
	})

	if *dataDir != "" {
		start := time.Now()
		recovered, err := srv.BootDurable()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("nedserve: recovered %d durable corpora from %s in %s %v\n",
			len(recovered), *dataDir, time.Since(start).Round(time.Millisecond), recovered)
	}

	if (*dataset != "" || *snapshot != "") && bootRecovered(srv, *name) {
		// The boot tenant already lives in the data directory; the
		// recovered state (mutations included) wins over regenerating it.
		fmt.Printf("nedserve: corpus %q recovered from %s; skipping boot creation\n", *name, *dataDir)
	} else if *dataset != "" || *snapshot != "" {
		if *dataset != "" && *snapshot != "" {
			fatal(errors.New("provide -dataset or -snapshot, not both"))
		}
		cr := &serve.CreateRequest{
			Name:    *name,
			K:       *k,
			Backend: *backend,
			Shards:  *shards,
			Workers: *workers,
		}
		if *dataset != "" {
			cr.Dataset = *dataset
			cr.Scale = *scale
			cr.Seed = *seed
		} else {
			cr.SnapshotPath = *snapshot
		}
		t, err := serve.CreateTenant(cr)
		if err != nil {
			fatal(err)
		}
		if err := srv.AddTenant(t); err != nil {
			fatal(err)
		}
		if *prebuild {
			// Pay the lazy materialization + index build now, so the first
			// client query is served at steady-state latency.
			start := time.Now()
			t.Corpus.Rebuild()
			cs := t.Corpus.Stats()
			fmt.Printf("nedserve: corpus %q ready: %d nodes, k=%d, backend=%s, %d shards (built in %s)\n",
				t.Name, cs.Nodes, cs.K, cs.Backend, cs.Shards, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("nedserve: corpus %q registered (lazy build on first query)\n", t.Name)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: Shutdown stops the
	// listener and waits for every in-flight request — admitted queries
	// included — before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *dataDir != "" {
		// Background recovery for degraded tenants: retries the
		// verified checkpoint rewrite with bounded backoff until the
		// disk heals. /readyz reports not-ready while any tenant is
		// degraded; mutations on it 503 with Retry-After.
		srv.StartDegradedRecovery(ctx, time.Second)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("nedserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("nedserve: draining in-flight queries")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "nedserve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	// Checkpoint and close every durable tenant so the next boot loads
	// a fresh segment instead of replaying a long mutation log.
	if err := srv.CloseTenants(); err != nil {
		fmt.Fprintf(os.Stderr, "nedserve: closing durable corpora: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("nedserve: bye")
}

// bootRecovered reports whether BootDurable already registered name.
func bootRecovered(srv *serve.Server, name string) bool {
	_, err := srv.Registry().Get(name)
	return err == nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nedserve: %v\n", err)
	os.Exit(1)
}
