// Command nedquery answers inter-graph nearest-neighbor queries: given a
// query node in one edge-list graph, it ranks the most NED-similar nodes
// of another graph through the Corpus query engine.
//
// Usage:
//
//	nedquery -from a.edges -to b.edges -node 17 [-k 3] [-l 10]
//	         [-backend vp|bk|linear|pruned] [-timeout 30s] [-workers 0]
//
// Exit status: 0 on success, 1 on a query error (bad node, timeout,
// ...), 2 on flag misuse.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ned"
)

func main() {
	var (
		fromPath = flag.String("from", "", "edge-list file containing the query node")
		toPath   = flag.String("to", "", "edge-list file to search")
		node     = flag.Int("node", 0, "query node ID (dense ID in the -from graph)")
		k        = flag.Int("k", 3, "neighborhood depth (k-adjacent tree levels)")
		l        = flag.Int("l", 10, "number of neighbors to report")
		backend  = flag.String("backend", "vp", "index backend: vp, bk, linear, or pruned")
		timeout  = flag.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = all CPUs)")
	)
	flag.Parse()
	if *fromPath == "" || *toPath == "" {
		fmt.Fprintln(os.Stderr, "nedquery: -from and -to are required")
		flag.Usage()
		os.Exit(2)
	}

	be, err := ned.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}

	gFrom, err := ned.LoadEdgeList(*fromPath, false)
	if err != nil {
		fatal(err)
	}
	gTo, err := ned.LoadEdgeList(*toPath, false)
	if err != nil {
		fatal(err)
	}
	if *node < 0 || *node >= gFrom.NumNodes() {
		fatal(fmt.Errorf("%w: node %d not in [0, %d) of %s",
			ned.ErrNodeOutOfRange, *node, gFrom.NumNodes(), *fromPath))
	}

	corpus, err := ned.NewCorpus(gTo, *k,
		ned.WithBackend(be), ned.WithWorkers(*workers))
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	query := ned.NewSignature(gFrom, ned.NodeID(*node), *k)
	results, err := corpus.KNNSignature(ctx, query, *l)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("top-%d NED neighbors of %s:%d in %s (k=%d, backend=%s):\n",
		*l, *fromPath, *node, *toPath, *k, be)
	for rank, r := range results {
		fmt.Printf("  %2d. node %-8d distance %d\n", rank+1, r.Node, r.Dist)
	}
	stats := corpus.Stats()
	fmt.Printf("(%d TED* evaluations over %d indexed nodes; %d early exits, %d lower-bound prunes)\n",
		stats.DistanceCalls, stats.Nodes, stats.EarlyExits, stats.LowerBoundPrunes)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nedquery: %v\n", err)
	os.Exit(1)
}
