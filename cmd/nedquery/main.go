// Command nedquery answers inter-graph nearest-neighbor queries: given a
// query node in one edge-list graph, it ranks the most NED-similar nodes
// of another graph, optionally through a VP-tree index.
//
// Usage:
//
//	nedquery -from a.edges -to b.edges -node 17 [-k 3] [-l 10] [-index]
package main

import (
	"flag"
	"fmt"
	"os"

	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/vptree"
)

func main() {
	var (
		fromPath = flag.String("from", "", "edge-list file containing the query node")
		toPath   = flag.String("to", "", "edge-list file to search")
		node     = flag.Int("node", 0, "query node ID (dense ID in the -from graph)")
		k        = flag.Int("k", 3, "neighborhood depth (k-adjacent tree levels)")
		l        = flag.Int("l", 10, "number of neighbors to report")
		useIndex = flag.Bool("index", false, "build a VP-tree index instead of scanning")
	)
	flag.Parse()
	if *fromPath == "" || *toPath == "" {
		fmt.Fprintln(os.Stderr, "nedquery: -from and -to are required")
		flag.Usage()
		os.Exit(2)
	}

	gFrom, _, err := graph.LoadEdgeListFile(*fromPath, false)
	if err != nil {
		fatal(err)
	}
	gTo, _, err := graph.LoadEdgeListFile(*toPath, false)
	if err != nil {
		fatal(err)
	}
	if *node < 0 || *node >= gFrom.NumNodes() {
		fatal(fmt.Errorf("node %d out of range [0, %d)", *node, gFrom.NumNodes()))
	}

	query := ned.NewSignature(gFrom, graph.NodeID(*node), *k)
	nodes := make([]graph.NodeID, gTo.NumNodes())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	candidates := ned.Signatures(gTo, nodes, *k)

	var results []ned.Neighbor
	if *useIndex {
		index := vptree.New(candidates, func(a, b ned.Signature) float64 {
			return float64(ned.Between(a, b))
		})
		for _, r := range index.KNN(query, *l) {
			results = append(results, ned.Neighbor{Node: r.Item.Node, Dist: int(r.Dist)})
		}
	} else {
		results = ned.TopL(query, candidates, *l)
	}

	fmt.Printf("top-%d NED neighbors of %s:%d in %s (k=%d):\n", *l, *fromPath, *node, *toPath, *k)
	for rank, r := range results {
		fmt.Printf("  %2d. node %-8d distance %d\n", rank+1, r.Node, r.Dist)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nedquery: %v\n", err)
	os.Exit(1)
}
