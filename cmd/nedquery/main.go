// Command nedquery answers inter-graph nearest-neighbor queries: given a
// query node in one edge-list graph, it ranks the most NED-similar nodes
// of another graph through the Corpus query engine.
//
// Usage:
//
//	nedquery -from a.edges -to b.edges -node 17 [-k 3] [-l 10]
//	         [-backend vp|bk|linear|pruned] [-timeout 30s] [-workers 0]
//	         [-shards 0] [-watch]
//
// With -watch, nedquery keeps the corpus live after the initial answer
// and reads mutation commands from stdin, re-running the query after
// each one — a REPL over the dynamic index:
//
//	add 3 17 42    index nodes of the corpus graph
//	rm 3 17        remove nodes from the index
//	rebuild        force a full index rebuild
//	stats          print serving counters and staleness
//	query          re-run the query without mutating
//	quit           exit
//
// Exit status: 0 on success, 1 on a query error (bad node, timeout,
// ...), 2 on flag misuse.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ned"
)

func main() {
	var (
		fromPath = flag.String("from", "", "edge-list file containing the query node")
		toPath   = flag.String("to", "", "edge-list file to search")
		node     = flag.Int("node", 0, "query node ID (dense ID in the -from graph)")
		k        = flag.Int("k", 3, "neighborhood depth (k-adjacent tree levels)")
		l        = flag.Int("l", 10, "number of neighbors to report")
		backend  = flag.String("backend", "vp", "index backend: vp, bk, linear, or pruned")
		timeout  = flag.Duration("timeout", 0, "abort each query after this long (0 = no limit)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = all CPUs)")
		shards   = flag.Int("shards", 0, "index shard count (0 = derived from GOMAXPROCS)")
		watch    = flag.Bool("watch", false, "keep the corpus live and re-query after mutation commands read from stdin")
	)
	flag.Parse()
	if *fromPath == "" || *toPath == "" {
		fmt.Fprintln(os.Stderr, "nedquery: -from and -to are required")
		flag.Usage()
		os.Exit(2)
	}

	be, err := ned.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}

	gFrom, err := ned.LoadEdgeList(*fromPath, false)
	if err != nil {
		fatal(err)
	}
	gTo, err := ned.LoadEdgeList(*toPath, false)
	if err != nil {
		fatal(err)
	}
	if *node < 0 || *node >= gFrom.NumNodes() {
		fatal(fmt.Errorf("%w: node %d not in [0, %d) of %s",
			ned.ErrNodeOutOfRange, *node, gFrom.NumNodes(), *fromPath))
	}

	corpus, err := ned.NewCorpus(gTo, *k,
		ned.WithBackend(be), ned.WithWorkers(*workers), ned.WithShards(ned.ShardsFlag(*shards)))
	if err != nil {
		fatal(err)
	}

	query := ned.NewSignature(gFrom, ned.NodeID(*node), *k)
	// Corpus counters are cumulative; the per-query line reports the
	// delta since the previous query so re-queries in watch mode show
	// each query's own cost, not a running total.
	var prev ned.CorpusStats
	runQuery := func() error {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		results, err := corpus.KNNSignature(ctx, query, *l)
		if err != nil {
			return err
		}
		stats := corpus.Stats()
		fmt.Printf("top-%d NED neighbors of %s:%d in %s (k=%d, backend=%s, %d indexed):\n",
			*l, *fromPath, *node, *toPath, *k, be, stats.Nodes)
		for rank, r := range results {
			fmt.Printf("  %2d. node %-8d distance %d\n", rank+1, r.Node, r.Dist)
		}
		fmt.Printf("(%d TED* evaluations; %d early exits, %d cascade prunes: %d size + %d padding + %d label)\n",
			stats.DistanceCalls-prev.DistanceCalls,
			stats.EarlyExits-prev.EarlyExits,
			stats.LowerBoundPrunes-prev.LowerBoundPrunes,
			stats.SizePrunes-prev.SizePrunes,
			stats.PaddingPrunes-prev.PaddingPrunes,
			stats.LabelPrunes-prev.LabelPrunes)
		prev = stats
		return nil
	}
	if err := runQuery(); err != nil {
		if !*watch {
			fatal(err)
		}
		// In watch mode a failed initial query (say, -timeout expiring
		// during the cold index build) still drops into the REPL, where
		// the user can rebuild, mutate, or just retry.
		fmt.Fprintf(os.Stderr, "nedquery: %v\n", err)
	}

	if *watch {
		watchLoop(corpus, runQuery)
	}
}

// watchLoop drives the dynamic corpus from stdin: mutations re-run the
// query so the effect on the ranking is immediately visible. Errors —
// bad input, mutation failures, query timeouts — are printed and the
// session keeps its mutated corpus state.
func watchLoop(corpus *ned.Corpus, runQuery func() error) {
	fmt.Println("watch mode: add <id...> | rm <id...> | rebuild | stats | query | quit")
	requery := func() {
		if err := runQuery(); err != nil {
			fmt.Fprintf(os.Stderr, "nedquery: %v\n", err)
		}
	}
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "add", "rm":
			nodes, err := parseNodes(args)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nedquery: %v\n", err)
				continue
			}
			if cmd == "add" {
				err = corpus.Insert(nodes...)
			} else {
				err = corpus.Remove(nodes...)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "nedquery: %v\n", err)
				continue
			}
			requery()
		case "rebuild":
			corpus.Rebuild()
			fmt.Println("rebuilt")
			requery()
		case "stats":
			s := corpus.Stats()
			fmt.Printf("nodes %d across %d shards %v, queries %d, TED* evals %d (early exits %d, cascade prunes %d = %d size + %d padding + %d label), rebuilds %d, stale %.2f\n",
				s.Nodes, s.Shards, s.ShardNodes, s.Queries, s.DistanceCalls, s.EarlyExits,
				s.LowerBoundPrunes, s.SizePrunes, s.PaddingPrunes, s.LabelPrunes, s.Rebuilds, s.StaleRatio)
		case "query":
			requery()
		case "quit", "exit", "q":
			return
		default:
			fmt.Fprintf(os.Stderr, "nedquery: unknown command %q (add, rm, rebuild, stats, query, quit)\n", cmd)
		}
	}
}

func parseNodes(args []string) ([]ned.NodeID, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("need at least one node ID")
	}
	out := make([]ned.NodeID, 0, len(args))
	for _, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("bad node ID %q: %v", a, err)
		}
		out = append(out, ned.NodeID(v))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "nedquery: %v\n", err)
	os.Exit(1)
}
