package ned

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ned/internal/ned"
	"ned/internal/segment"
)

// restoredShards counts shards whose epoch already holds an index —
// the direct signature of a persisted-index restore, visible before
// any query triggers a lazy build.
func restoredShards(c *Corpus) int {
	n := 0
	for _, sh := range c.shardSlots() {
		if sh.epoch.Load().ix != nil {
			n++
		}
	}
	return n
}

// TestSegmentSnapshotRestoresVPIndex is the index-persistence
// contract: a binary segment cut from a built VP corpus carries each
// shard's vantage-point tree, and LoadCorpus restores those trees
// structurally — before any query, with no metric evaluations — while
// a segment cut before the build carries none and restores none.
func TestSegmentSnapshotRestoresVPIndex(t *testing.T) {
	ctx := context.Background()
	const k = 2
	g := randomGraph(80, 170, 930)
	gq := randomGraph(50, 100, 931)

	c, err := NewCorpus(g, k, WithBackend(BackendVP), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}

	// A segment cut before the indexes exist has nothing to persist.
	var cold bytes.Buffer
	if err := c.SnapshotSegment(&cold); err != nil {
		t.Fatal(err)
	}
	coldLoaded, err := LoadCorpus(bytes.NewReader(cold.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n := restoredShards(coldLoaded); n != 0 {
		t.Fatalf("cold segment restored %d shard indexes, want 0", n)
	}

	if _, err := c.KNN(ctx, 0, 3); err != nil { // build the VP trees
		t.Fatal(err)
	}
	var warm bytes.Buffer
	if err := c.SnapshotSegment(&warm); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(bytes.NewReader(warm.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n := restoredShards(loaded); n != len(loaded.shardSlots()) {
		t.Fatalf("warm segment restored %d of %d shard indexes", n, len(loaded.shardSlots()))
	}

	// The restored trees are the originals, structurally: same preorder
	// dump, node for node, radius for radius.
	for si, sh := range c.shardSlots() {
		wantNodes, wantTail, ok := ned.ExportVPBackend(sh.epoch.Load().ix)
		if !ok {
			t.Fatalf("shard %d: original backend not exportable", si)
		}
		gotNodes, gotTail, ok := ned.ExportVPBackend(loaded.shardSlots()[si].epoch.Load().ix)
		if !ok {
			t.Fatalf("shard %d: restored backend not exportable", si)
		}
		if len(gotNodes) != len(wantNodes) || len(gotTail) != len(wantTail) {
			t.Fatalf("shard %d: restored %d/%d nodes/tail, want %d/%d",
				si, len(gotNodes), len(gotTail), len(wantNodes), len(wantTail))
		}
		for i := range wantNodes {
			w, r := wantNodes[i], gotNodes[i]
			if w.Item.Node != r.Item.Node || w.Radius != r.Radius ||
				w.Dead != r.Dead || w.Inside != r.Inside || w.Beyond != r.Beyond {
				t.Fatalf("shard %d node %d: restored {node %d r %v %v/%v/%v}, want {node %d r %v %v/%v/%v}",
					si, i, r.Item.Node, r.Radius, r.Dead, r.Inside, r.Beyond,
					w.Item.Node, w.Radius, w.Dead, w.Inside, w.Beyond)
			}
		}
		for i := range wantTail {
			if wantTail[i].Node != gotTail[i].Node {
				t.Fatalf("shard %d tail %d: restored node %d, want %d", si, i, gotTail[i].Node, wantTail[i].Node)
			}
		}
	}

	// And they serve: answers identical to the in-memory corpus.
	rng := rand.New(rand.NewSource(932))
	for q := 0; q < 8; q++ {
		sig := NewSignature(gq, NodeID(rng.Intn(gq.NumNodes())), k)
		want, err := c.KNNSignature(ctx, sig, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.KNNSignature(ctx, sig, 7)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("query %d: restored KNN %v, in-memory %v", q, got, want)
		}
	}

	// Overrides that invalidate the per-shard dumps drop them: a
	// different backend or shard count loads cleanly, builds lazily,
	// and still answers identically.
	for _, opt := range []CorpusOption{WithBackend(BackendLinear), WithShards(2)} {
		over, err := LoadCorpus(bytes.NewReader(warm.Bytes()), opt)
		if err != nil {
			t.Fatal(err)
		}
		if n := restoredShards(over); n != 0 {
			t.Fatalf("override load restored %d shard indexes, want 0", n)
		}
		sig := NewSignature(gq, 3, k)
		want, err := c.KNNSignature(ctx, sig, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := over.KNNSignature(ctx, sig, 5)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("override load KNN %v, want %v", got, want)
		}
	}
}

// TestSegmentIndexSkipsTombstonedShards: a shard whose VP tree holds
// tombstones dangles references to removed items, so its dump is
// withheld — the snapshot still loads and answers correctly, the
// tombstoned shards just rebuild lazily.
func TestSegmentIndexSkipsTombstonedShards(t *testing.T) {
	ctx := context.Background()
	const k = 2
	g := randomGraph(80, 170, 940)

	c, err := NewCorpus(g, k, WithBackend(BackendVP), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(ctx, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(2, 4, 6); err != nil { // tombstones some shards
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.SnapshotSegment(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n := restoredShards(loaded); n == 0 || n == len(loaded.shardSlots()) {
		// At least one shard is tombstone-free (restored) and at least
		// one is tombstoned (withheld) with this node set.
		t.Fatalf("restored %d of %d shard indexes, want a strict subset", n, len(loaded.shardSlots()))
	}

	gq := randomGraph(50, 100, 941)
	rng := rand.New(rand.NewSource(942))
	for q := 0; q < 8; q++ {
		sig := NewSignature(gq, NodeID(rng.Intn(gq.NumNodes())), k)
		want, err := c.KNNSignature(ctx, sig, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.KNNSignature(ctx, sig, 7)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("query %d: restored KNN %v, in-memory %v", q, got, want)
		}
	}
}

// TestSegmentIndexInconsistentDumpRejected: an index dump that
// disagrees with the item sections it rides alongside — referencing a
// node the shard does not hold, or the same node twice — is
// corruption, and LoadCorpus fails loudly rather than serving from a
// tree that dangles.
func TestSegmentIndexInconsistentDumpRejected(t *testing.T) {
	ctx := context.Background()
	const k = 2
	g := randomGraph(80, 170, 950)

	c, err := NewCorpus(g, k, WithBackend(BackendVP), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(ctx, 0, 3); err != nil {
		t.Fatal(err)
	}

	_, eps := c.snapshotEpochs()
	shardItems := make([][]ned.Item, len(eps))
	for i, ep := range eps {
		shardItems[i] = sortedShardItems(ep.byNode)
	}
	meta := segment.Meta{Backend: "vp", K: k, Directed: false}

	write := func(mutate func(dumps []segment.VPIndex)) error {
		dumps := shardIndexDumps(eps)
		if len(dumps) != len(eps) {
			t.Fatalf("expected a dump per shard, got %d", len(dumps))
		}
		mutate(dumps)
		var buf bytes.Buffer
		if err := segment.Write(&buf, meta, c.dict, c.g.Load(), shardItems, dumps); err != nil {
			t.Fatalf("Write: %v", err)
		}
		_, err := LoadCorpus(bytes.NewReader(buf.Bytes()))
		return err
	}

	// Swapping one node reference between two shards keeps every count
	// right while making both dumps dangle.
	if err := write(func(d []segment.VPIndex) {
		d[0].Nodes[0].Node, d[1].Nodes[0].Node = d[1].Nodes[0].Node, d[0].Nodes[0].Node
	}); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("cross-shard reference: got %v, want ErrBadSnapshot", err)
	}

	// A duplicated reference within one shard.
	if err := write(func(d []segment.VPIndex) {
		d[0].Nodes[1].Node = d[0].Nodes[0].Node
	}); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("duplicate reference: got %v, want ErrBadSnapshot", err)
	}

	// The unmutated dumps load fine — the harness itself is sound.
	if err := write(func([]segment.VPIndex) {}); err != nil {
		t.Errorf("unmutated dumps: %v", err)
	}
}

// TestDurableCheckpointCarriesVPIndex: checkpoints persist the built
// VP trees too, so OpenDurable comes back with every shard's index
// already in place — even after replaying a WAL tail, whose mutations
// land in the item tables while the affected shards rebuild lazily.
func TestDurableCheckpointCarriesVPIndex(t *testing.T) {
	ctx := context.Background()
	const k = 2
	g := randomGraph(80, 170, 960)
	dir := t.TempDir()

	c, err := NewCorpus(g, k, WithBackend(BackendVP), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(ctx, 0, 3); err != nil { // build before attaching
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncNone); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(dir, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if n := restoredShards(re); n != len(re.shardSlots()) {
		t.Fatalf("checkpoint restored %d of %d shard indexes", n, len(re.shardSlots()))
	}

	gq := randomGraph(50, 100, 961)
	rng := rand.New(rand.NewSource(962))
	for q := 0; q < 6; q++ {
		sig := NewSignature(gq, NodeID(rng.Intn(gq.NumNodes())), k)
		want, err := c.KNNSignature(ctx, sig, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := re.KNNSignature(ctx, sig, 7)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("query %d: recovered KNN %v, in-memory %v", q, got, want)
		}
	}

	// Mutate through the WAL, reopen without checkpointing: recovery
	// replays the tail onto the checkpoint's restored indexes and the
	// corpus still answers as the live one does.
	if err := re.Remove(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := re.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenDurable(dir, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 6; q++ {
		sig := NewSignature(gq, NodeID(rng.Intn(gq.NumNodes())), k)
		want, err := re.KNNSignature(ctx, sig, 7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := re2.KNNSignature(ctx, sig, 7)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("post-WAL query %d: recovered KNN %v, live %v", q, got, want)
		}
	}
}
