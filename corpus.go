package ned

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ned/internal/ned"
)

// Typed errors returned by the Corpus API. Wrap-aware: test with
// errors.Is. Canceled or expired contexts surface as context.Canceled /
// context.DeadlineExceeded, checked inside the distance loops so even
// in-flight queries abort promptly.
var (
	// ErrNilGraph reports a nil graph passed to NewCorpus.
	ErrNilGraph = errors.New("ned: nil graph")
	// ErrBadK reports a neighborhood depth below 1.
	ErrBadK = errors.New("ned: k must be >= 1")
	// ErrBadL reports a result count below 1.
	ErrBadL = errors.New("ned: l must be >= 1")
	// ErrBadRadius reports a negative range radius.
	ErrBadRadius = errors.New("ned: radius must be >= 0")
	// ErrNodeOutOfRange reports a node ID outside [0, NumNodes).
	ErrNodeOutOfRange = errors.New("ned: node out of range")
	// ErrBadBackend reports an unknown Backend value.
	ErrBadBackend = errors.New("ned: unknown backend")
	// ErrKMismatch reports a query signature whose k differs from the
	// corpus's k; cross-parameter distances are not comparable rankings.
	ErrKMismatch = errors.New("ned: query signature k differs from corpus k")
	// ErrBadSignature reports a query signature with no tree.
	ErrBadSignature = errors.New("ned: query signature has no tree")
	// ErrDirectedSignature reports a single-tree signature query against
	// a directed corpus, whose distance needs incoming and outgoing
	// trees; query directed corpora by node ID via KNN.
	ErrDirectedSignature = errors.New("ned: directed corpus requires node queries")
	// ErrNoGraph reports a graph-requiring operation (Insert, UpdateGraph,
	// Signature, KNN of an unindexed node) on a corpus loaded from a
	// snapshot without WithGraph.
	ErrNoGraph = errors.New("ned: corpus has no graph")
	// ErrBadSnapshot reports a corpus snapshot LoadCorpus could not
	// parse: corrupt input, an unsupported format version, or metadata
	// disagreeing with the items.
	ErrBadSnapshot = errors.New("ned: bad corpus snapshot")
)

// Backend selects the index structure a Corpus serves queries from. All
// backends answer the same queries with the same distances; they differ
// in build cost, per-query work, and parallelism.
type Backend int

const (
	// BackendVP is the paper's VP-tree metric index (§13.4): sub-linear
	// queries via triangle-inequality pruning. The default.
	BackendVP Backend = iota
	// BackendBK is a Burkhard–Keller tree specialized to NED's small
	// integer distances.
	BackendBK
	// BackendLinear evaluates every candidate per query across the
	// corpus worker pool — the exact baseline, and the fastest choice
	// for small corpora.
	BackendLinear
	// BackendPrunedLinear scans sequentially, skipping candidates the
	// padding lower bound proves out of range (§10).
	BackendPrunedLinear

	numBackends = iota
)

// String returns the flag-friendly backend name.
func (b Backend) String() string {
	switch b {
	case BackendVP:
		return "vp"
	case BackendBK:
		return "bk"
	case BackendLinear:
		return "linear"
	case BackendPrunedLinear:
		return "pruned"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend maps a name ("vp", "bk", "linear", "pruned") to its
// Backend, for command-line flags.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "vp", "vptree", "vp-tree":
		return BackendVP, nil
	case "bk", "bktree", "bk-tree":
		return BackendBK, nil
	case "linear", "scan":
		return BackendLinear, nil
	case "pruned", "pruned-linear", "prunedlinear":
		return BackendPrunedLinear, nil
	}
	return 0, fmt.Errorf("%w: %q (want vp, bk, linear, or pruned)", ErrBadBackend, s)
}

// defaultRebuildThreshold is the staleness ratio above which a mutation
// triggers an amortized full rebuild of tombstone-accumulating backends.
const defaultRebuildThreshold = 0.25

// CorpusOption configures a Corpus at construction.
type CorpusOption func(*corpusConfig)

type corpusConfig struct {
	backend   Backend
	workers   int
	directed  bool
	nodes     []NodeID
	nodesSet  bool
	rebuildAt float64
	graph     *Graph // LoadCorpus only; see WithGraph
}

// WithBackend selects the index backend (default BackendVP).
func WithBackend(b Backend) CorpusOption {
	return func(c *corpusConfig) { c.backend = b }
}

// WithWorkers sets the worker pool size used for parallel signature
// materialization, linear-backend scans, and BatchKNN fan-out. Values
// <= 0 (the default) mean GOMAXPROCS.
func WithWorkers(n int) CorpusOption {
	return func(c *corpusConfig) { c.workers = n }
}

// WithDirected switches the corpus to the directed NED of Equation 2:
// distances sum TED* over the incoming and outgoing k-adjacent trees.
// Directed corpora are queried by node ID (KNN); single-tree signature
// queries return ErrDirectedSignature.
func WithDirected() CorpusOption {
	return func(c *corpusConfig) { c.directed = true }
}

// WithNodes restricts the corpus to a node subset (for example a
// candidate pool in a de-anonymization attack); an empty subset yields
// an empty corpus. The default indexes every node of the graph. The
// slice is copied and deduplicated. LoadCorpus ignores this option (a
// snapshot's items define its node set; Remove can shrink it).
func WithNodes(nodes []NodeID) CorpusOption {
	return func(c *corpusConfig) {
		c.nodes = append([]NodeID(nil), nodes...)
		c.nodesSet = true
	}
}

// WithRebuildThreshold sets the staleness ratio above which a mutation
// triggers an amortized full rebuild of the index (default 0.25). The
// VP-tree and BK-tree serve removals via tombstones and (VP) insertions
// via a linearly-scanned append tail; both cost every query a little
// until a rebuild folds them back into tree structure. The ratio is
// stale slots over total structure, so r = 0.25 rebuilds once a quarter
// of the index is dead weight. r >= 1 disables amortized rebuilds
// (call Rebuild yourself); r <= 0 restores the default. The in-place
// scan backends never go stale and ignore the threshold.
//
// A rebuild reconstructs the metric tree under the corpus write lock,
// so queries issued during it wait for the build to finish; workloads
// that cannot absorb that pause should raise the threshold and call
// Rebuild in their own maintenance windows.
func WithRebuildThreshold(r float64) CorpusOption {
	return func(c *corpusConfig) { c.rebuildAt = r }
}

// WithGraph attaches the backing graph to a corpus restored by
// LoadCorpus, re-enabling the graph-requiring operations: Insert,
// UpdateGraph, Signature, and queries for nodes outside the index. The
// graph must be the one the snapshot was taken from (node IDs are
// resolved against it). NewCorpus ignores this option — its graph
// parameter wins.
func WithGraph(g *Graph) CorpusOption {
	return func(c *corpusConfig) { c.graph = g }
}

// Corpus is a thread-safe, context-aware NED query engine over the
// nodes of one graph: the top-l / nearest-set similarity workloads of
// §13.3–13.4 behind a single API, served from an interchangeable index
// backend. Build one with NewCorpus (or restore one with LoadCorpus);
// all methods may be called concurrently.
//
// Signatures and the backend index are materialized lazily, in
// parallel, on the first query, so constructing a Corpus is cheap and
// programs that only query a few of several corpora never pay for the
// rest.
//
// A Corpus is dynamic: Insert and Remove churn the indexed node set
// with live index maintenance (in-place for the scan backends,
// tombstone + append with amortized rebuilds for the metric trees — see
// WithRebuildThreshold), UpdateGraph follows the graph through version
// changes re-extracting only the signatures an edit actually affected,
// and Snapshot/LoadCorpus persist the built index across processes.
// Results after any mutation sequence are identical to a freshly built
// corpus over the same live nodes. Mutations serialize behind a write
// lock and wait for in-flight queries to drain.
type Corpus struct {
	k   int
	cfg corpusConfig

	// mu orders mutations against queries: queries hold the read side
	// for their whole duration (so the index they resolved cannot be
	// swapped or edited under them), mutations and snapshots the write
	// side.
	mu      sync.RWMutex
	g       *Graph              // nil for snapshot-loaded corpora without WithGraph
	members map[NodeID]bool     // the current indexed node set
	byNode  map[NodeID]ned.Item // live items; nil until materialized
	ix      ned.DynamicIndex    // nil until the first query (or Rebuild)

	// base accumulates serving counters absorbed from index generations
	// retired by rebuilds, keeping Stats monotone across mutation.
	base     ned.Counters
	rebuilds int64

	queries atomic.Int64
}

// NewCorpus validates the configuration and returns a query engine over
// g's nodes with neighborhood depth k. Errors are typed: ErrNilGraph,
// ErrBadK, ErrNodeOutOfRange (a WithNodes entry out of range), or
// ErrBadBackend.
func NewCorpus(g *Graph, k int, opts ...CorpusOption) (*Corpus, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	cfg := corpusConfig{backend: BackendVP, rebuildAt: defaultRebuildThreshold}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.graph = nil // LoadCorpus only
	if cfg.rebuildAt <= 0 {
		cfg.rebuildAt = defaultRebuildThreshold
	}
	if cfg.backend < 0 || cfg.backend >= numBackends {
		return nil, fmt.Errorf("%w: %d", ErrBadBackend, int(cfg.backend))
	}
	members := make(map[NodeID]bool)
	if !cfg.nodesSet {
		for v := 0; v < g.NumNodes(); v++ {
			members[NodeID(v)] = true
		}
	} else {
		for _, v := range cfg.nodes {
			if int(v) < 0 || int(v) >= g.NumNodes() {
				return nil, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, g.NumNodes())
			}
			members[v] = true
		}
	}
	cfg.nodes = nil
	return &Corpus{k: k, cfg: cfg, g: g, members: members}, nil
}

// sortedMembersLocked returns the indexed node set in ascending order —
// the deterministic build and snapshot order. Callers hold mu.
func (c *Corpus) sortedMembersLocked() []NodeID {
	nodes := make([]NodeID, 0, len(c.members))
	for v := range c.members {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// sortedItemsLocked returns the live items in ascending node order.
// Callers hold mu and have materialized byNode.
func (c *Corpus) sortedItemsLocked() []ned.Item {
	items := make([]ned.Item, 0, len(c.byNode))
	for _, it := range c.byNode {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Node < items[j].Node })
	return items
}

// materializeLocked extracts the signatures of every member in parallel
// (a no-op once done, and for snapshot-loaded corpora, whose items
// arrived with the snapshot). Callers hold mu for writing.
func (c *Corpus) materializeLocked() {
	if c.byNode != nil {
		return
	}
	nodes := c.sortedMembersLocked()
	items := ned.BuildItems(c.g, nodes, c.k, c.cfg.directed, c.cfg.workers)
	c.byNode = make(map[NodeID]ned.Item, len(items))
	for _, it := range items {
		c.byNode[it.Node] = it
	}
}

// newIndexLocked builds the configured backend over the live items.
// Callers hold mu for writing and have materialized byNode.
func (c *Corpus) newIndexLocked() ned.DynamicIndex {
	items := c.sortedItemsLocked()
	switch c.cfg.backend {
	case BackendVP:
		return ned.NewVPBackend(items)
	case BackendBK:
		return ned.NewBKBackend(items)
	case BackendLinear:
		return ned.NewLinearBackend(items, c.cfg.workers)
	case BackendPrunedLinear:
		return ned.NewPrunedLinearBackend(items)
	}
	// Unreachable: NewCorpus and LoadCorpus validate the backend.
	panic(fmt.Sprintf("ned: invalid backend %d past construction", int(c.cfg.backend)))
}

// acquire returns the built index with the read lock held; the caller
// must call release when its query completes. The first acquisition
// pays for the lazy materialization and build.
func (c *Corpus) acquire() (ned.Index, func()) {
	c.mu.RLock()
	if c.ix != nil {
		return c.ix, c.mu.RUnlock
	}
	c.mu.RUnlock()
	c.mu.Lock()
	if c.ix == nil {
		c.materializeLocked()
		c.ix = c.newIndexLocked()
	}
	c.mu.Unlock()
	c.mu.RLock()
	// Reread under the read lock: a rebuild may have swapped the index,
	// but it can never become nil again.
	return c.ix, c.mu.RUnlock
}

// queryItem validates and converts an external signature query.
func (c *Corpus) queryItem(sig Signature) (ned.Item, error) {
	if c.cfg.directed {
		return ned.Item{}, ErrDirectedSignature
	}
	if sig.Tree == nil {
		return ned.Item{}, ErrBadSignature
	}
	if sig.K != c.k {
		return ned.Item{}, fmt.Errorf("%w: signature k=%d, corpus k=%d", ErrKMismatch, sig.K, c.k)
	}
	return sig.Item(), nil
}

// checkNode validates a node query target without forcing the lazy
// build, so an out-of-range node on a never-queried corpus errors
// immediately instead of paying the full materialization first.
func (c *Corpus) checkNode(v NodeID) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.checkNodeLocked(v)
}

// checkNodeLocked is the one validity check behind every node-query
// path: indexed nodes are always valid; anything else needs a graph
// and an in-range ID. Callers hold mu (either side).
func (c *Corpus) checkNodeLocked(v NodeID) error {
	if _, ok := c.byNode[v]; ok {
		return nil
	}
	if c.g == nil {
		return fmt.Errorf("%w: node %d is not indexed (restore with WithGraph to query arbitrary nodes)", ErrNoGraph, v)
	}
	if int(v) < 0 || int(v) >= c.g.NumNodes() {
		return fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, c.g.NumNodes())
	}
	return nil
}

// nodeItemLocked resolves the query item for a node: the cached index
// item when the node is indexed, a fresh extraction from the graph
// otherwise. Snapshot-loaded corpora without WithGraph can only query
// indexed nodes. Callers hold mu (either side).
func (c *Corpus) nodeItemLocked(v NodeID) (ned.Item, error) {
	if it, ok := c.byNode[v]; ok {
		return it, nil
	}
	if err := c.checkNodeLocked(v); err != nil {
		return ned.Item{}, err
	}
	return ned.NewItem(c.g, v, c.k, c.cfg.directed), nil
}

// KNN returns the l indexed nodes most NED-similar to node v of the
// corpus graph, in ascending (distance, node) order. The query node
// itself ranks first at distance 0 when it is part of the corpus.
func (c *Corpus) KNN(ctx context.Context, v NodeID, l int) ([]Neighbor, error) {
	if l < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadL, l)
	}
	// Check before acquire so a dead context or a bad node never pays
	// for the lazy index build.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.checkNode(v); err != nil {
		return nil, err
	}
	ix, release := c.acquire()
	defer release()
	q, err := c.nodeItemLocked(v)
	if err != nil {
		return nil, err
	}
	c.queries.Add(1)
	return ix.KNN(ctx, q, l)
}

// KNNSignature is KNN for an external query signature — typically a
// node of a different graph, the inter-graph workload NED exists for.
// The signature's k must match the corpus's.
func (c *Corpus) KNNSignature(ctx context.Context, sig Signature, l int) ([]Neighbor, error) {
	if l < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadL, l)
	}
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix, release := c.acquire()
	defer release()
	c.queries.Add(1)
	return ix.KNN(ctx, q, l)
}

// Range returns every indexed node within NED distance r of the query
// signature, in ascending (distance, node) order.
func (c *Corpus) Range(ctx context.Context, sig Signature, r int) ([]Neighbor, error) {
	if r < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadRadius, r)
	}
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix, release := c.acquire()
	defer release()
	c.queries.Add(1)
	return ix.Range(ctx, q, r)
}

// NearestSet returns every indexed node at the minimum NED distance
// from the query signature — the "nearest neighbor result set" of
// §13.3, which is rarely a single node because NED's integer distances
// tie (Figure 8a).
func (c *Corpus) NearestSet(ctx context.Context, sig Signature) ([]Neighbor, error) {
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix, release := c.acquire()
	defer release()
	if ix.Len() == 0 {
		return nil, ctx.Err()
	}
	c.queries.Add(1)
	best, err := ix.KNN(ctx, q, 1)
	if err != nil {
		return nil, err
	}
	all, err := ix.Range(ctx, q, best[0].Dist)
	if err != nil {
		return nil, err
	}
	// The metric-tree backends can deviate from each other around the
	// KNN(1) distance by a triangle-tie artifact (see the ted package
	// faithfulness note): Range may surface a smaller stratum than
	// KNN(1) found, or miss the minimum stratum entirely. Keep only the
	// smallest stratum seen, falling back to the KNN(1) hit itself.
	if len(all) == 0 {
		return best, nil
	}
	minDist := all[0].Dist
	out := all[:0]
	for _, n := range all {
		if n.Dist == minDist {
			out = append(out, n)
		}
	}
	return out, nil
}

// BatchKNN answers one KNN query per signature, fanning the queries out
// across the corpus worker pool. results[i] corresponds to sigs[i].
// Cancelling ctx aborts the whole batch: queries not yet finished are
// abandoned and the error is returned.
func (c *Corpus) BatchKNN(ctx context.Context, sigs []Signature, l int) ([][]Neighbor, error) {
	if l < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadL, l)
	}
	qs := make([]ned.Item, len(sigs))
	for i, s := range sigs {
		q, err := c.queryItem(s)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		qs[i] = q
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix, release := c.acquire()
	defer release()
	c.queries.Add(int64(len(sigs)))
	// The linear backend already spreads each scan across the worker
	// pool; fanning queries out on top of that would run workers² TED*
	// goroutines, so batch sequentially there and let each query
	// parallelize instead.
	batchWorkers := c.cfg.workers
	if c.cfg.backend == BackendLinear {
		batchWorkers = 1
	}
	results := make([][]Neighbor, len(sigs))
	errs := make([]error, len(sigs))
	if err := ned.ParallelForCtx(ctx, len(sigs), batchWorkers, func(i int) {
		results[i], errs[i] = ix.KNN(ctx, qs[i], l)
	}); err != nil {
		return nil, err
	}
	for _, qerr := range errs {
		if qerr != nil {
			return nil, qerr
		}
	}
	return results, nil
}

// CorpusStats is a point-in-time snapshot of a corpus's configuration
// and serving counters.
type CorpusStats struct {
	Backend  Backend
	K        int
	Directed bool
	Workers  int  // configured worker count; 0 means GOMAXPROCS
	Nodes    int  // indexed node count
	Built    bool // whether the index has been materialized yet

	Queries       int64 // queries served (BatchKNN counts each signature)
	DistanceCalls int64 // TED* evaluations started serving them (incl. early-exited)

	// EarlyExits counts TED* evaluations the budget pipeline abandoned
	// mid-computation: the candidate's running cost provably crossed the
	// search threshold (kth-best, tau, or ring radius) before the full
	// O(k·n³) work was spent.
	EarlyExits int64
	// LowerBoundPrunes counts candidates dismissed by the O(height)
	// padding lower bound alone, before any matching work.
	LowerBoundPrunes int64

	// Rebuilds counts index rebuilds since construction: amortized ones
	// triggered by the staleness threshold plus explicit Rebuild calls
	// (a Rebuild on a never-built corpus performs the first build and
	// is not counted). Serving counters accumulate across rebuilds
	// (they never reset except through ResetStats).
	Rebuilds int64
	// StaleRatio is the current fraction of the index structure occupied
	// by tombstones or unindexed appends (0 for in-place backends and
	// freshly built indexes). See WithRebuildThreshold.
	StaleRatio float64
}

// Stats reports the corpus configuration and serving counters. Safe to
// call concurrently with queries; counters are atomic snapshots.
func (c *Corpus) Stats() CorpusStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := CorpusStats{
		Backend:  c.cfg.backend,
		K:        c.k,
		Directed: c.cfg.directed,
		Workers:  c.cfg.workers,
		Nodes:    len(c.members),
		Queries:  c.queries.Load(),
		Rebuilds: c.rebuilds,
	}
	counters := c.base
	if c.ix != nil {
		s.Built = true
		counters = counters.Add(c.ix.Counters())
		s.StaleRatio = c.ix.StaleRatio()
	}
	s.DistanceCalls = counters.DistanceCalls
	s.EarlyExits = counters.EarlyExits
	s.LowerBoundPrunes = counters.LowerBoundPrunes
	return s
}

// ResetStats zeroes the query and distance counters (including the
// portion accumulated by retired index generations).
func (c *Corpus) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queries.Store(0)
	c.base = ned.Counters{}
	if c.ix != nil {
		c.ix.ResetStats()
	}
}

// Signature of node v of the corpus graph at the corpus's k — a
// convenience for cross-corpus queries: sig from corpus A's graph, then
// b.KNNSignature(ctx, sig, l).
func (c *Corpus) Signature(v NodeID) (Signature, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.g == nil {
		return Signature{}, fmt.Errorf("%w: Signature needs the corpus graph", ErrNoGraph)
	}
	if int(v) < 0 || int(v) >= c.g.NumNodes() {
		return Signature{}, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, c.g.NumNodes())
	}
	return NewSignature(c.g, v, c.k), nil
}
