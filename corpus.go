package ned

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ned/internal/ned"
	"ned/internal/segment"
	"ned/internal/tree"
)

// Typed errors returned by the Corpus API. Wrap-aware: test with
// errors.Is. Canceled or expired contexts surface as context.Canceled /
// context.DeadlineExceeded, checked inside the distance loops so even
// in-flight queries abort promptly.
var (
	// ErrNilGraph reports a nil graph passed to NewCorpus.
	ErrNilGraph = errors.New("ned: nil graph")
	// ErrBadK reports a neighborhood depth below 1.
	ErrBadK = errors.New("ned: k must be >= 1")
	// ErrBadL reports a result count below 1.
	ErrBadL = errors.New("ned: l must be >= 1")
	// ErrBadRadius reports a negative range radius.
	ErrBadRadius = errors.New("ned: radius must be >= 0")
	// ErrNodeOutOfRange reports a node ID outside [0, NumNodes).
	ErrNodeOutOfRange = errors.New("ned: node out of range")
	// ErrBadBackend reports an unknown Backend value.
	ErrBadBackend = errors.New("ned: unknown backend")
	// ErrKMismatch reports a query signature whose k differs from the
	// corpus's k; cross-parameter distances are not comparable rankings.
	ErrKMismatch = errors.New("ned: query signature k differs from corpus k")
	// ErrBadSignature reports a query signature with no tree.
	ErrBadSignature = errors.New("ned: query signature has no tree")
	// ErrDirectedSignature reports a single-tree signature query against
	// a directed corpus, whose distance needs incoming and outgoing
	// trees; query directed corpora by node ID via KNN.
	ErrDirectedSignature = errors.New("ned: directed corpus requires node queries")
	// ErrNoGraph reports a graph-requiring operation (Insert, UpdateGraph,
	// Signature, KNN of an unindexed node) on a corpus loaded from a
	// snapshot without WithGraph.
	ErrNoGraph = errors.New("ned: corpus has no graph")
	// ErrBadSnapshot reports a corpus snapshot LoadCorpus could not
	// parse: corrupt input, an unsupported format version, or metadata
	// disagreeing with the items.
	ErrBadSnapshot = errors.New("ned: bad corpus snapshot")
)

// Backend selects the index structure a Corpus serves queries from. All
// backends answer the same queries with the same distances; they differ
// in build cost, per-query work, and parallelism.
type Backend int

const (
	// BackendVP is the paper's VP-tree metric index (§13.4): sub-linear
	// queries via triangle-inequality pruning. The default.
	BackendVP Backend = iota
	// BackendBK is a Burkhard–Keller tree specialized to NED's small
	// integer distances.
	BackendBK
	// BackendLinear evaluates every candidate per query across the
	// corpus worker pool — the exact baseline, and the fastest choice
	// for small corpora.
	BackendLinear
	// BackendPrunedLinear scans sequentially, skipping candidates the
	// padding lower bound proves out of range (§10).
	BackendPrunedLinear

	numBackends = iota
)

// String returns the flag-friendly backend name.
func (b Backend) String() string {
	switch b {
	case BackendVP:
		return "vp"
	case BackendBK:
		return "bk"
	case BackendLinear:
		return "linear"
	case BackendPrunedLinear:
		return "pruned"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// MarshalText encodes the backend as its flag-friendly name, so JSON
// stats documents carry "vp" rather than a bare enum ordinal that would
// silently renumber if backends were ever reordered.
func (b Backend) MarshalText() ([]byte, error) {
	if b < 0 || b >= numBackends {
		return nil, fmt.Errorf("%w: %d", ErrBadBackend, int(b))
	}
	return []byte(b.String()), nil
}

// UnmarshalText parses a backend name, accepting everything
// ParseBackend does.
func (b *Backend) UnmarshalText(text []byte) error {
	pb, err := ParseBackend(string(text))
	if err != nil {
		return err
	}
	*b = pb
	return nil
}

// ParseBackend maps a name ("vp", "bk", "linear", "pruned") to its
// Backend, for command-line flags.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "vp", "vptree", "vp-tree":
		return BackendVP, nil
	case "bk", "bktree", "bk-tree":
		return BackendBK, nil
	case "linear", "scan":
		return BackendLinear, nil
	case "pruned", "pruned-linear", "prunedlinear":
		return BackendPrunedLinear, nil
	}
	return 0, fmt.Errorf("%w: %q (want vp, bk, linear, or pruned)", ErrBadBackend, s)
}

// defaultRebuildThreshold is the staleness ratio above which a mutation
// triggers an amortized full rebuild of tombstone-accumulating backends.
const defaultRebuildThreshold = 0.25

// maxDefaultShards caps the GOMAXPROCS-derived shard default: beyond a
// point extra shards stop buying mutation isolation and only add
// fan-out/merge overhead per query. WithShards overrides the cap.
const maxDefaultShards = 16

// defaultShards is the shard count when WithShards is not given:
// GOMAXPROCS, capped.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxDefaultShards {
		n = maxDefaultShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// CorpusOption configures a Corpus at construction.
type CorpusOption func(*corpusConfig)

type corpusConfig struct {
	backend   Backend
	workers   int
	shards    int
	directed  bool
	nodes     []NodeID
	nodesSet  bool
	rebuildAt float64
	planner   bool
	graph     *Graph // LoadCorpus only; see WithGraph
}

// WithBackend selects the index backend (default BackendVP).
func WithBackend(b Backend) CorpusOption {
	return func(c *corpusConfig) { c.backend = b }
}

// WithWorkers sets the worker pool size used for parallel signature
// materialization, linear-backend scans, shard fan-out, and BatchKNN.
// Values <= 0 (the default) mean GOMAXPROCS.
func WithWorkers(n int) CorpusOption {
	return func(c *corpusConfig) { c.workers = n }
}

// WithShards sets how many shards the corpus partitions its nodes
// across. Each shard owns its own index, staleness accounting, and
// rebuild policy, publishes immutable epochs that queries read without
// locking, and serializes its own mutations — so a mutation or rebuild
// on one shard never blocks queries, and never blocks mutations on
// other shards. Queries fan out across the shards in parallel and merge
// with the canonical (distance, node) order, so answers are
// node-identical for every shard count, including 1.
//
// Values <= 0 (the default) derive the count from GOMAXPROCS (capped at
// 16). More shards buy mutation isolation and fan-out parallelism at
// the price of per-query merge overhead and, for the metric trees,
// slightly less pruning leverage per tree; WithShards(1) restores one
// monolithic index.
func WithShards(n int) CorpusOption {
	return func(c *corpusConfig) { c.shards = n }
}

// ShardsFlag maps a CLI -shards flag value onto a WithShards argument:
// every non-positive value (the tools document -1 and 0 as "engine
// default") selects the GOMAXPROCS-derived default, which WithShards
// spells as 0. The cmd/ tools share this one helper so their -shards
// semantics cannot drift apart.
func ShardsFlag(n int) int {
	if n < 0 {
		return 0
	}
	return n
}

// WithDirected switches the corpus to the directed NED of Equation 2:
// distances sum TED* over the incoming and outgoing k-adjacent trees.
// Directed corpora are queried by node ID (KNN); single-tree signature
// queries return ErrDirectedSignature.
func WithDirected() CorpusOption {
	return func(c *corpusConfig) { c.directed = true }
}

// WithNodes restricts the corpus to a node subset (for example a
// candidate pool in a de-anonymization attack); an empty subset yields
// an empty corpus. The default indexes every node of the graph. The
// slice is copied and deduplicated. LoadCorpus ignores this option (a
// snapshot's items define its node set; Remove can shrink it).
func WithNodes(nodes []NodeID) CorpusOption {
	return func(c *corpusConfig) {
		c.nodes = append([]NodeID(nil), nodes...)
		c.nodesSet = true
	}
}

// WithRebuildThreshold sets the per-shard staleness ratio above which a
// mutation triggers an amortized rebuild of that shard's index (default
// 0.25). The VP-tree and BK-tree serve removals via tombstones and (VP)
// insertions via a linearly-scanned append tail; both cost every query
// a little until a rebuild folds them back into tree structure. The
// ratio is stale slots over total structure, so r = 0.25 rebuilds a
// shard once a quarter of its index is dead weight. r >= 1 disables
// amortized rebuilds (call Rebuild yourself); r <= 0 restores the
// default. The in-place scan backends never go stale and ignore the
// threshold.
//
// A rebuild reconstructs one shard's metric tree and publishes it as a
// new epoch: queries keep serving from the previous epoch for the whole
// build and never wait, but the mutation that crossed the threshold
// does, as do other mutations targeting the same shard.
func WithRebuildThreshold(r float64) CorpusOption {
	return func(c *corpusConfig) { c.rebuildAt = r }
}

// WithPlanner enables or disables the cost-based query planner
// (default on). With the planner on, each query builds an explicit
// plan from live statistics — shard sizes, index staleness, observed
// cascade prune rates — choosing the fan-out mode (all shards in
// parallel, sequential largest-first with range narrowing, or a single
// shard) and, for the tree backends, scan-vs-tree per shard.
// WithPlanner(false) restores the unconditional all-shards fan-out;
// answers are node-identical either way.
func WithPlanner(on bool) CorpusOption {
	return func(c *corpusConfig) { c.planner = on }
}

// WithGraph attaches the backing graph to a corpus restored by
// LoadCorpus, re-enabling the graph-requiring operations: Insert,
// UpdateGraph, Signature, and queries for nodes outside the index. The
// graph must be the one the snapshot was taken from (node IDs are
// resolved against it). NewCorpus ignores this option — its graph
// parameter wins.
func WithGraph(g *Graph) CorpusOption {
	return func(c *corpusConfig) { c.graph = g }
}

// Corpus is a thread-safe, context-aware NED query engine over the
// nodes of one graph: the top-l / nearest-set similarity workloads of
// §13.3–13.4 behind a single API, served from an interchangeable index
// backend. Build one with NewCorpus (or restore one with LoadCorpus);
// all methods may be called concurrently.
//
// The engine is sharded (WithShards): nodes are hash-partitioned across
// shards, each owning its own index, and queries fan out across the
// shards in parallel, merging with the canonical (distance, node)
// order so answers are node-identical for every shard count.
//
// Reads are lock-free: each shard publishes an immutable epoch — its
// index structure plus item table — through an atomic pointer, and a
// query simply loads the current epochs. Mutations (Insert, Remove,
// UpdateGraph, amortized rebuilds) prepare a private successor under
// the target shard's write lock and publish it on commit, so once the
// lazy build has run, a mutation never blocks queries — not even on
// its own shard, where in-flight readers keep serving from the epoch
// they loaded — and mutations on different shards run concurrently
// (the one exception is the first query itself, whose lazy build
// waits for mutations already in flight). A mutation batch
// spanning shards commits shard by shard: queries racing the batch may
// observe it partially applied, but every answer is consistent with
// some interleaving of whole per-shard commits.
//
// Signatures and the backend indexes are materialized lazily, in
// parallel, on the first query, so constructing a Corpus is cheap and
// programs that only query a few of several corpora never pay for the
// rest.
//
// A Corpus is dynamic: Insert and Remove churn the indexed node set
// with live index maintenance (in-place for the scan backends,
// tombstone + append with amortized per-shard rebuilds for the metric
// trees — see WithRebuildThreshold), UpdateGraph follows the graph
// through version changes re-extracting only the signatures an edit
// actually affected, and Snapshot/LoadCorpus persist the built index
// across processes. Results after any mutation sequence are identical
// to a freshly built corpus over the same live nodes.
type Corpus struct {
	k   int
	cfg corpusConfig

	// gmu orders whole-engine transitions against one another:
	// materialization and index builds, UpdateGraph, explicit Rebuild,
	// rebalance ticks, and Snapshot cuts take the write side. Insert
	// holds the read side for its whole span so the graph version
	// cannot move underneath its out-of-lock signature extraction;
	// Remove holds it so the placement cannot be rebalanced under its
	// shard routing. Queries never touch gmu; Stats and ResetStats are
	// entirely atomic.
	gmu sync.RWMutex

	g atomic.Pointer[Graph] // nil for snapshot-loaded corpora without WithGraph

	// tab is the atomically published shard table: the shard slots plus
	// the placement directory routing nodes to them. Queries load it
	// once and validate it unchanged after loading the epochs (see
	// acquire); the rebalancer publishes successors under gmu. The
	// slots slice only ever grows — placement indices stay stable, and
	// a slot merged away stays behind as an empty husk until a split
	// reuses it.
	tab atomic.Pointer[shardTable]

	exec *ned.Executor // pooled workers for shard fan-out and BatchKNN

	// dict is the corpus-wide subtree-shape dictionary behind the
	// filter–verify cascade: every signature is compiled against it —
	// at extraction, Insert, UpdateGraph, and snapshot load — into a
	// flat Profile (level sizes, per-level interned label multisets,
	// the AHU encoding as an interned 64-bit key), and every query
	// signature is compiled read-only against the same dictionary on
	// arrival (shapes the corpus never indexed get profile-local
	// labels), so candidate evaluation compares precomputed int32 runs
	// instead of walking trees. One dictionary per corpus, shared by
	// all shards and epoch clones; it grows only with the shapes of
	// indexed signatures, never with what is queried against it.
	dict *tree.Interner

	materialized atomic.Bool // signatures extracted into the epochs
	built        atomic.Bool // per-shard indexes constructed

	// Durable state, attached by MakeDurable/OpenDurable (see
	// durable.go); nil/zero on purely in-memory corpora. wal is the
	// active mutation log — commitShard routes every epoch publish
	// through it so the append lands before the mutation becomes
	// visible. durMu orders checkpoints, closes, and the attach itself
	// against one another; walSeq (guarded by durMu) is the generation
	// of the active log.
	wal        atomic.Pointer[segment.WAL]
	durMu      sync.Mutex
	durableDir string
	walSeq     int64

	// Degraded-mode state (see durable.go). degraded is nil while
	// healthy; a failed WAL commit or checkpoint stores the sticky
	// cause, mutations refuse with ErrDegraded, and only a verified
	// full-segment rewrite (Checkpoint) clears it. Reads never consult
	// it. recoveryAttempts counts rewrite attempts while degraded;
	// quarantined counts checkpoint generations renamed aside during
	// recovery because they failed to decode.
	degraded         atomic.Pointer[DegradedInfo]
	recoveryAttempts atomic.Int64
	quarantined      atomic.Int64

	queries  atomic.Int64
	rebuilds atomic.Int64

	// avgSig is the mean signature size (tree nodes per item), set at
	// materialization — the planner's unit cost for sizing the
	// sequential-vs-parallel threshold.
	avgSig atomic.Int64

	// Planner counters: plans built per fan-out mode, and shards
	// answered by direct scan instead of their tree index.
	planPar    atomic.Int64
	planSeq    atomic.Int64
	planSingle atomic.Int64
	planScans  atomic.Int64

	// Rebalancer counters and tick state (balPrev is guarded by gmu,
	// which every RebalanceTick holds for writing).
	rebalances  atomic.Int64
	shardSplits atomic.Int64
	shardMerges atomic.Int64
	balPrev     map[*corpusShard]balanceSnap
}

// shardTable pairs the shard slots with the placement directory that
// routes nodes to them. Published atomically as one value so a reader
// never sees a placement referring to slots it did not load.
type shardTable struct {
	shards []*corpusShard
	place  *ned.Placement
}

// corpusShard is one partition of the corpus: a mutation lock, the
// atomically published current epoch, and the contention telemetry the
// rebalancer feeds on.
type corpusShard struct {
	mu    sync.Mutex // serializes mutations to this shard only
	epoch atomic.Pointer[shardEpoch]

	// Contention counters, monotone for the corpus lifetime (never
	// reset — the rebalancer diffs successive readings, and ResetStats
	// must not corrupt its deltas): nanoseconds mutators spent waiting
	// for mu, mutated-node count, and bytes of epoch state cloned to
	// publish successors.
	lockWaitNS atomic.Int64
	mutations  atomic.Int64
	cloneBytes atomic.Int64

	// hotRing remembers the most recently mutated nodes. Written under
	// mu; the rebalancer reads it under gmu's write side, which excludes
	// every mutator, so no extra synchronization is needed.
	hotRing [64]NodeID
	hotLen  int
	hotPos  int
}

// lockTimed is sh.mu.Lock with the wait time accounted to the shard's
// contention counters; the uncontended path costs one TryLock.
func (sh *corpusShard) lockTimed() {
	if sh.mu.TryLock() {
		return
	}
	t0 := time.Now()
	sh.mu.Lock()
	sh.lockWaitNS.Add(time.Since(t0).Nanoseconds())
}

// noteMutation records a committed mutation touching the given nodes:
// epochSize and ixLen size the clone the commit paid (the per-mutation
// cost the rebalancer exists to shrink — a map clone plus an index
// clone or recompile, both linear in shard size). Callers hold sh.mu.
func (sh *corpusShard) noteMutation(nodes []NodeID, epochSize, ixLen int) {
	sh.mutations.Add(int64(len(nodes)))
	sh.cloneBytes.Add(int64(epochSize)*48 + int64(ixLen)*16)
	for _, v := range nodes {
		sh.hotRing[sh.hotPos] = v
		sh.hotPos = (sh.hotPos + 1) % len(sh.hotRing)
		if sh.hotLen < len(sh.hotRing) {
			sh.hotLen++
		}
	}
}

// hotSet is the distinct recently mutated nodes. Callers hold gmu for
// writing (see hotRing).
func (sh *corpusShard) hotSet() map[NodeID]bool {
	hot := make(map[NodeID]bool, sh.hotLen)
	for i := 0; i < sh.hotLen; i++ {
		hot[sh.hotRing[i]] = true
	}
	return hot
}

// shardEpoch is one published, immutable generation of one shard.
// Readers load it without locking and use it for their whole query;
// mutations never edit a published epoch — they clone, splice, and
// publish a successor. Serving counters inside ix are atomic and shared
// across the shard's epochs, so Stats stay continuous through
// publication.
//
// Membership lives in exactly one map per life stage: members before
// the signatures materialize, byNode (whose keys are the membership)
// afterward — so a mutation's epoch clone copies one map, not two.
type shardEpoch struct {
	members map[NodeID]bool     // pre-materialization node set; nil once byNode exists
	byNode  map[NodeID]ned.Item // live items; nil until materialized
	ix      ned.DynamicIndex    // nil until the index is built

	// scanItems caches the node-ascending item view the planner's
	// scan-over-items path reads, built lazily once per epoch (readers
	// race on scanOnce; byNode is immutable by then). A clone starts
	// with a fresh cache.
	scanOnce  sync.Once
	scanItems []ned.Item
}

// planScanItems is the epoch's live items in ascending node order, for
// the planner's direct-scan path.
func (e *shardEpoch) planScanItems() []ned.Item {
	e.scanOnce.Do(func() { e.scanItems = sortedShardItems(e.byNode) })
	return e.scanItems
}

// has reports whether v is indexed in this epoch.
func (e *shardEpoch) has(v NodeID) bool {
	if e.byNode != nil {
		_, ok := e.byNode[v]
		return ok
	}
	return e.members[v]
}

// size is the epoch's indexed node count.
func (e *shardEpoch) size() int {
	if e.byNode != nil {
		return len(e.byNode)
	}
	return len(e.members)
}

// clone returns a mutable successor of e: a fresh membership map, the
// same index (the mutation decides whether to Clone the index too).
func (e *shardEpoch) clone() *shardEpoch {
	ne := &shardEpoch{ix: e.ix}
	if e.byNode != nil {
		ne.byNode = make(map[NodeID]ned.Item, len(e.byNode)+1)
		for v, it := range e.byNode {
			ne.byNode[v] = it
		}
	} else {
		ne.members = make(map[NodeID]bool, len(e.members)+1)
		for v := range e.members {
			ne.members[v] = true
		}
	}
	return ne
}

// resolveShards normalizes a WithShards value.
func resolveShards(n int) int {
	if n <= 0 {
		return defaultShards()
	}
	return n
}

// newShardedCorpus allocates the shard skeleton with empty published
// epochs; the caller populates membership (and items, for LoadCorpus)
// before the corpus is shared.
func newShardedCorpus(k int, cfg corpusConfig, g *Graph) *Corpus {
	c := &Corpus{k: k, cfg: cfg, exec: ned.NewExecutor(cfg.workers), dict: tree.NewInterner()}
	if g != nil {
		c.g.Store(g)
	}
	shards := make([]*corpusShard, cfg.shards)
	for i := range shards {
		shards[i] = &corpusShard{}
		shards[i].epoch.Store(&shardEpoch{members: make(map[NodeID]bool)})
	}
	c.tab.Store(&shardTable{shards: shards, place: ned.NewHashPlacement(cfg.shards)})
	return c
}

// shardFor returns the shard owning node v per the current table.
// Mutators call it under gmu (read side suffices), which excludes
// rebalances, so the routing cannot move between the lookup and the
// shard lock.
func (c *Corpus) shardFor(v NodeID) *corpusShard {
	t := c.tab.Load()
	return t.shards[t.place.Of(v)]
}

// shardSlots returns the current table's shard slot vector.
func (c *Corpus) shardSlots() []*corpusShard {
	return c.tab.Load().shards
}

// HashShard is the deterministic seed placement: the shard slot node v
// hashes to among n. It is the layout every corpus starts from (and
// keeps, absent a rebalance); tools use it to reason about or construct
// node colocation.
func HashShard(v NodeID, n int) int { return ned.ShardOf(v, n) }

// NewCorpus validates the configuration and returns a query engine over
// g's nodes with neighborhood depth k. Errors are typed: ErrNilGraph,
// ErrBadK, ErrNodeOutOfRange (a WithNodes entry out of range), or
// ErrBadBackend.
func NewCorpus(g *Graph, k int, opts ...CorpusOption) (*Corpus, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	cfg := corpusConfig{backend: BackendVP, rebuildAt: defaultRebuildThreshold, planner: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.graph = nil // LoadCorpus only
	if cfg.rebuildAt <= 0 {
		cfg.rebuildAt = defaultRebuildThreshold
	}
	cfg.shards = resolveShards(cfg.shards)
	if cfg.backend < 0 || cfg.backend >= numBackends {
		return nil, fmt.Errorf("%w: %d", ErrBadBackend, int(cfg.backend))
	}
	members := make(map[NodeID]bool)
	if !cfg.nodesSet {
		for v := 0; v < g.NumNodes(); v++ {
			members[NodeID(v)] = true
		}
	} else {
		for _, v := range cfg.nodes {
			if int(v) < 0 || int(v) >= g.NumNodes() {
				return nil, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, g.NumNodes())
			}
			members[v] = true
		}
	}
	cfg.nodes = nil
	c := newShardedCorpus(k, cfg, g)
	for v := range members {
		c.shardFor(v).epoch.Load().members[v] = true
	}
	return c, nil
}

// sortedShardItems returns a shard's live items in ascending node order
// — the deterministic build and snapshot order.
func sortedShardItems(byNode map[NodeID]ned.Item) []ned.Item {
	items := make([]ned.Item, 0, len(byNode))
	for _, it := range byNode {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Node < items[j].Node })
	return items
}

// shardWorkers is the per-shard worker budget for the linear backend's
// scans: the corpus worker count split across shards, so one query's
// full fan-out saturates the configured width instead of multiplying
// it.
func (c *Corpus) shardWorkers() int {
	w := c.cfg.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// Split across the configured seed shard count (stable), not the
	// live slot count a rebalance may have grown.
	n := (w + c.cfg.shards - 1) / c.cfg.shards
	if n < 1 {
		n = 1
	}
	return n
}

// newShardIndex builds the configured backend over one shard's live
// items.
func (c *Corpus) newShardIndex(byNode map[NodeID]ned.Item) ned.DynamicIndex {
	items := sortedShardItems(byNode)
	switch c.cfg.backend {
	case BackendVP:
		return ned.NewVPBackend(items)
	case BackendBK:
		return ned.NewBKBackend(items)
	case BackendLinear:
		return ned.NewLinearBackend(items, c.shardWorkers())
	case BackendPrunedLinear:
		return ned.NewPrunedLinearBackend(items)
	}
	// Unreachable: NewCorpus and LoadCorpus validate the backend.
	panic(fmt.Sprintf("ned: invalid backend %d past construction", int(c.cfg.backend)))
}

// rebuiltShardIndex builds a fresh index over an epoch's live items and
// redirects its serving counters into the retiring generation's
// accumulator, keeping Stats monotone across rebuilds even with queries
// still in flight on the old epoch.
func (c *Corpus) rebuiltShardIndex(e *shardEpoch) ned.DynamicIndex {
	ix := c.newShardIndex(e.byNode)
	ned.ShareCounters(ix, e.ix)
	return ix
}

// maybeRebuildShard applies the amortized-rebuild policy to an epoch
// being prepared for publication. Callers hold the shard lock and e.ix
// is a private (cloned or fresh) index.
func (c *Corpus) maybeRebuildShard(e *shardEpoch) {
	if ned.StaleRatio(e.ix) > c.cfg.rebuildAt {
		e.ix = c.rebuiltShardIndex(e)
		c.rebuilds.Add(1)
	}
}

// materializeAllLocked extracts the signatures of every member in
// parallel and publishes item-bearing epochs (a no-op once done, and
// for snapshot-loaded corpora, whose items arrived with the snapshot).
// Callers hold gmu for writing.
func (c *Corpus) materializeAllLocked() {
	if c.materialized.Load() {
		return
	}
	g := c.g.Load()
	tab := c.tab.Load()
	var nodes []NodeID
	for _, sh := range tab.shards {
		for v := range sh.epoch.Load().members {
			nodes = append(nodes, v)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	items := ned.BuildItems(g, nodes, c.k, c.cfg.directed, c.cfg.workers)
	ned.ProfileItems(items, c.dict, c.cfg.workers)
	c.noteAvgSig(items)
	itemOf := make(map[NodeID]ned.Item, len(items))
	for _, it := range items {
		itemOf[it.Node] = it
	}
	for _, sh := range tab.shards {
		sh.mu.Lock()
		// Re-read under the shard lock: a concurrent Remove may have
		// shrunk the membership since the extraction snapshot (Insert is
		// excluded by gmu), so filter rather than trust the snapshot.
		ep := sh.epoch.Load()
		ne := &shardEpoch{byNode: make(map[NodeID]ned.Item, len(ep.members)), ix: ep.ix}
		for v := range ep.members {
			if it, ok := itemOf[v]; ok {
				ne.byNode[v] = it
			} else {
				// Indexed item: intern (ProfileItem) — a read-only profile
				// must never enter an index.
				it := ned.NewItem(g, v, c.k, c.cfg.directed)
				ned.ProfileItem(&it, c.dict)
				ne.byNode[v] = it
			}
		}
		sh.epoch.Store(ne)
		sh.mu.Unlock()
	}
	c.materialized.Store(true)
}

// buildAllLocked materializes and constructs every shard's index.
// Callers hold gmu for writing.
func (c *Corpus) buildAllLocked() {
	if c.built.Load() {
		return
	}
	c.materializeAllLocked()
	for _, sh := range c.tab.Load().shards {
		sh.mu.Lock()
		ep := sh.epoch.Load()
		if ep.ix == nil {
			sh.epoch.Store(&shardEpoch{byNode: ep.byNode, ix: c.newShardIndex(ep.byNode)})
		}
		sh.mu.Unlock()
	}
	c.built.Store(true)
}

// noteAvgSig records the mean signature size of the given items — the
// planner's unit cost per candidate. Cheap: Size is O(1).
func (c *Corpus) noteAvgSig(items []ned.Item) {
	if len(items) == 0 {
		return
	}
	var tot int
	for i := range items {
		tot += items[i].Out.Size()
		if items[i].In != nil {
			tot += items[i].In.Size()
		}
	}
	c.avgSig.Store(int64(tot / len(items)))
}

// acquire returns the current shard table and the current epoch of
// every slot in it, building lazily on first use. The hot path is one
// atomic load per shard plus a table re-validation — no locks. The
// validation closes the rebalance race: a split or merge publishes the
// moved nodes' destination epoch BEFORE the new table and shrinks the
// source only AFTER it, so as long as the table did not change while
// the epochs were loaded, every live node is present in the epoch its
// table routes it to (a node may transiently appear in two epochs —
// the merge layer dedups). If the table moved, reload; rebalances are
// rare and serialized, so the loop settles immediately.
func (c *Corpus) acquire() (*shardTable, []*shardEpoch) {
	if !c.built.Load() {
		c.gmu.Lock()
		c.buildAllLocked()
		c.gmu.Unlock()
	}
	for {
		tab := c.tab.Load()
		eps := make([]*shardEpoch, len(tab.shards))
		for i, sh := range tab.shards {
			eps[i] = sh.epoch.Load()
		}
		if c.tab.Load() == tab {
			return tab, eps
		}
	}
}

// indexes projects the epochs' index vector for the shard router.
func indexes(eps []*shardEpoch) []ned.Index {
	ixs := make([]ned.Index, len(eps))
	for i, ep := range eps {
		ixs[i] = ep.ix
	}
	return ixs
}

// queryItem validates and converts an external signature query. The
// cascade profile is deliberately NOT compiled here: callers profile
// the item with profileQuery AFTER acquiring the epochs, because a
// read-only query profile is only valid against items whose shapes
// were interned before it was compiled — which acquire guarantees for
// every item visible in the epochs it returns (items intern before
// their epoch publishes, and the lazy first build interns the whole
// corpus before this query proceeds).
func (c *Corpus) queryItem(sig Signature) (ned.Item, error) {
	if c.cfg.directed {
		return ned.Item{}, ErrDirectedSignature
	}
	if sig.Tree == nil {
		return ned.Item{}, ErrBadSignature
	}
	if sig.K != c.k {
		return ned.Item{}, fmt.Errorf("%w: signature k=%d, corpus k=%d", ErrKMismatch, sig.K, c.k)
	}
	return sig.Item(), nil
}

// profileQuery compiles a validated query item's cascade profile
// against the corpus dictionary — once per query, after acquire,
// before any shard fan-out, so every shard's candidate filter reads
// the same precompiled bounds.
func (c *Corpus) profileQuery(q *ned.Item) {
	ned.ProfileQueryItem(q, c.dict)
}

// checkUnindexedNode is the one validity gate for node queries that
// miss the index: they need a graph to extract from and an in-range ID.
func (c *Corpus) checkUnindexedNode(v NodeID) (*Graph, error) {
	g := c.g.Load()
	if g == nil {
		return nil, fmt.Errorf("%w: node %d is not indexed (restore with WithGraph to query arbitrary nodes)", ErrNoGraph, v)
	}
	if int(v) < 0 || int(v) >= g.NumNodes() {
		return nil, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, g.NumNodes())
	}
	return g, nil
}

// checkNode validates a node query target without forcing the lazy
// build, so an out-of-range node on a never-queried corpus errors
// immediately instead of paying the full materialization first: indexed
// nodes are always valid; anything else passes checkUnindexedNode.
// Lock-free — it reads the owning shard's published epoch, re-resolving
// if a rebalance republished the table mid-read (an unvalidated lookup
// could catch a node between its old and new shard and misreport a
// live node as unindexed — fatal on graphless corpora).
func (c *Corpus) checkNode(v NodeID) error {
	if int(v) >= 0 {
		for {
			t := c.tab.Load()
			ep := t.shards[t.place.Of(v)].epoch.Load()
			if c.tab.Load() != t {
				continue
			}
			if ep.has(v) {
				return nil
			}
			break
		}
	}
	_, err := c.checkUnindexedNode(v)
	return err
}

// nodeItem resolves the query item for a node against an acquired
// table + epoch vector: the cached index item when the node is indexed,
// a fresh extraction from the graph otherwise. Snapshot-loaded corpora
// without WithGraph can only query indexed nodes. The acquire
// validation guarantees a live node is present in the epoch its table
// routes it to, so a miss here really is an unindexed node.
func (c *Corpus) nodeItem(tab *shardTable, eps []*shardEpoch, v NodeID) (ned.Item, error) {
	if int(v) >= 0 {
		if it, ok := eps[tab.place.Of(v)].byNode[v]; ok {
			return it, nil
		}
	}
	g, err := c.checkUnindexedNode(v)
	if err != nil {
		return ned.Item{}, err
	}
	it := ned.NewItem(g, v, c.k, c.cfg.directed)
	ned.ProfileQueryItem(&it, c.dict)
	return it, nil
}

// buildPlan assembles the cost-based query plan for one query (or one
// batch) over an acquired epoch vector: live shards only, with the
// per-shard scan-vs-tree decision for the tree backends (the scan
// backends already are scans) and the fan-out mode chosen from total
// size and executor width. l is the result count, 0 for range queries.
func (c *Corpus) buildPlan(eps []*shardEpoch, l int) *ned.Plan {
	treeBacked := c.cfg.backend == BackendVP || c.cfg.backend == BackendBK
	var pruneRate float64
	if treeBacked {
		var dc, lb int64
		for _, ep := range eps {
			if ep.ix != nil {
				cs := ep.ix.Counters()
				dc += cs.DistanceCalls
				lb += cs.LowerBoundPrunes
			}
		}
		if dc+lb > 0 {
			pruneRate = float64(lb) / float64(dc+lb)
		}
	}
	live := make([]ned.PlanShard, 0, len(eps))
	for _, ep := range eps {
		n := ep.size()
		if n == 0 {
			continue
		}
		ps := ned.PlanShard{Ix: ep.ix, N: n}
		if treeBacked {
			st, tt := ep.ix.Stale()
			var stale float64
			if tt > 0 {
				stale = float64(st) / float64(tt)
			}
			if ned.UseScanOverTree(n, l, stale, pruneRate) {
				ps.Scan = ep.planScanItems()
			}
		}
		live = append(live, ps)
	}
	p := ned.BuildPlan(ned.PlanInput{Shards: live, Workers: c.exec.Workers(), L: l, SeqMax: c.seqMax()})
	switch p.Mode {
	case ned.PlanParallel:
		c.planPar.Add(1)
	case ned.PlanSequential:
		c.planSeq.Add(1)
	default:
		c.planSingle.Add(1)
	}
	if s := p.Scans(); s > 0 {
		c.planScans.Add(int64(s))
	}
	return p
}

// seqMax is the total-corpus-size threshold below which the planner
// prefers a sequential shard visit over the parallel fan-out, scaled
// by the mean signature size: the bigger each candidate comparison,
// the sooner parallelism pays for its dispatch overhead.
func (c *Corpus) seqMax() int {
	avg := c.avgSig.Load()
	if avg < 16 {
		avg = 16
	}
	n := int(1024 * 64 / avg)
	if n < 128 {
		n = 128
	}
	return n
}

// runKNN answers an already-validated, already-profiled KNN query over
// acquired epochs: through a cost-based plan by default, through the
// unconditional all-shards fan-out under WithPlanner(false).
func (c *Corpus) runKNN(ctx context.Context, eps []*shardEpoch, q ned.Item, l int) ([]Neighbor, error) {
	if !c.cfg.planner {
		return ned.FanKNN(ctx, c.exec, indexes(eps), q, l)
	}
	return c.buildPlan(eps, l).KNN(ctx, c.exec, q, l)
}

// runRange is runKNN for range queries.
func (c *Corpus) runRange(ctx context.Context, eps []*shardEpoch, q ned.Item, r int) ([]Neighbor, error) {
	if !c.cfg.planner {
		return ned.FanRange(ctx, c.exec, indexes(eps), q, r)
	}
	return c.buildPlan(eps, 0).Range(ctx, c.exec, q, r)
}

// KNN returns the l indexed nodes most NED-similar to node v of the
// corpus graph, in ascending (distance, node) order. The query node
// itself ranks first at distance 0 when it is part of the corpus.
func (c *Corpus) KNN(ctx context.Context, v NodeID, l int) ([]Neighbor, error) {
	if l < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadL, l)
	}
	// Check before acquire so a dead context or a bad node never pays
	// for the lazy index build.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.checkNode(v); err != nil {
		return nil, err
	}
	tab, eps := c.acquire()
	q, err := c.nodeItem(tab, eps, v)
	if err != nil {
		return nil, err
	}
	c.queries.Add(1)
	return c.runKNN(ctx, eps, q, l)
}

// KNNSignature is KNN for an external query signature — typically a
// node of a different graph, the inter-graph workload NED exists for.
// The signature's k must match the corpus's.
func (c *Corpus) KNNSignature(ctx context.Context, sig Signature, l int) ([]Neighbor, error) {
	if l < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadL, l)
	}
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, eps := c.acquire()
	c.profileQuery(&q)
	c.queries.Add(1)
	return c.runKNN(ctx, eps, q, l)
}

// Range returns every indexed node within NED distance r of the query
// signature, in ascending (distance, node) order.
func (c *Corpus) Range(ctx context.Context, sig Signature, r int) ([]Neighbor, error) {
	if r < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadRadius, r)
	}
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, eps := c.acquire()
	c.profileQuery(&q)
	c.queries.Add(1)
	return c.runRange(ctx, eps, q, r)
}

// NearestSet returns every indexed node at the minimum NED distance
// from the query signature — the "nearest neighbor result set" of
// §13.3, which is rarely a single node because NED's integer distances
// tie (Figure 8a).
func (c *Corpus) NearestSet(ctx context.Context, sig Signature) ([]Neighbor, error) {
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, eps := c.acquire()
	c.profileQuery(&q)
	n := 0
	for _, ep := range eps {
		n += ep.size()
	}
	if n == 0 {
		return nil, ctx.Err()
	}
	c.queries.Add(1)
	best, err := c.runKNN(ctx, eps, q, 1)
	if err != nil {
		return nil, err
	}
	all, err := c.runRange(ctx, eps, q, best[0].Dist)
	if err != nil {
		return nil, err
	}
	// The metric-tree backends can deviate from each other around the
	// KNN(1) distance by a triangle-tie artifact (see the ted package
	// faithfulness note): Range may surface a smaller stratum than
	// KNN(1) found, or miss the minimum stratum entirely. Keep only the
	// smallest stratum seen, falling back to the KNN(1) hit itself.
	if len(all) == 0 {
		return best, nil
	}
	minDist := all[0].Dist
	out := all[:0]
	for _, nb := range all {
		if nb.Dist == minDist {
			out = append(out, nb)
		}
	}
	return out, nil
}

// BatchKNN answers one KNN query per signature, fanning the queries out
// across the corpus executor's pooled workers (each query in turn fans
// out across the shards). results[i] corresponds to sigs[i]. Cancelling
// ctx aborts the whole batch: queries not yet started are never issued,
// in-flight ones abort at their next distance-loop check, and the
// context error is returned.
func (c *Corpus) BatchKNN(ctx context.Context, sigs []Signature, l int) ([][]Neighbor, error) {
	if l < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadL, l)
	}
	qs := make([]ned.Item, len(sigs))
	for i, s := range sigs {
		q, err := c.queryItem(s)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		qs[i] = q
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, eps := c.acquire()
	for i := range qs {
		c.profileQuery(&qs[i])
	}
	c.queries.Add(int64(len(sigs)))
	// One plan serves the whole batch: the statistics that shape it do
	// not move meaningfully within one call, and per-query planning
	// would pay the live-shard walk len(sigs) times.
	var plan *ned.Plan
	var ixs []ned.Index
	if c.cfg.planner {
		plan = c.buildPlan(eps, l)
	} else {
		ixs = indexes(eps)
	}
	// The linear backend already spreads each scan across the worker
	// pool (and the shard fan-out multiplies that); batching on top
	// would oversubscribe, so batch sequentially there and let each
	// query parallelize instead.
	batchWorkers := 0 // executor width
	if c.cfg.backend == BackendLinear {
		batchWorkers = 1
	}
	results := make([][]Neighbor, len(sigs))
	errs := make([]error, len(sigs))
	if err := c.exec.Do(ctx, len(sigs), batchWorkers, func(i int) {
		if plan != nil {
			results[i], errs[i] = plan.KNN(ctx, c.exec, qs[i], l)
		} else {
			results[i], errs[i] = ned.FanKNN(ctx, c.exec, ixs, qs[i], l)
		}
	}); err != nil {
		return nil, err
	}
	for _, qerr := range errs {
		if qerr != nil {
			return nil, qerr
		}
	}
	return results, nil
}

// CorpusStats is a point-in-time snapshot of a corpus's configuration
// and serving counters.
//
// The JSON field names are a stable, versioned schema: the nedserve
// stats endpoint, nedstats -json, and nedbench artifacts all serialize
// this struct, and TestCorpusStatsJSONSchema locks the names, so
// renaming a Go field cannot silently break a dashboard scraping the
// server. Backend round-trips as its flag name ("vp", "bk", "linear",
// "pruned") via MarshalText.
type CorpusStats struct {
	// Backend is the index structure serving this corpus's queries.
	Backend Backend `json:"backend"`
	// K is the neighborhood depth of every signature in the corpus.
	K int `json:"k"`
	// Directed reports whether distances are the directed NED of Eq. 2.
	Directed bool `json:"directed"`
	// Workers is the configured worker count; 0 means GOMAXPROCS.
	Workers int `json:"workers"`
	// Nodes is the indexed node count, summed across shards.
	Nodes int `json:"nodes"`
	// Shards is the shard count the corpus partitions across.
	Shards int `json:"shards"`
	// Built reports whether the indexes have been materialized yet.
	Built bool `json:"built"`

	// ShardNodes is the indexed node count per shard slot — the
	// partition balance of the current placement (the splitmix hash,
	// until a rebalance edits it).
	ShardNodes []int `json:"shard_nodes"`

	// ShardLockWaitNS, ShardMutations, and ShardCloneBytes are the
	// per-shard-slot contention telemetry the rebalancer feeds on:
	// nanoseconds mutators spent waiting on the shard write lock, nodes
	// mutated, and bytes of epoch state cloned publishing successors.
	// Monotone for the corpus lifetime — ResetStats leaves them alone
	// so the rebalancer's deltas stay truthful.
	ShardLockWaitNS []int64 `json:"shard_lock_wait_ns"`
	ShardMutations  []int64 `json:"shard_mutations"`
	ShardCloneBytes []int64 `json:"shard_clone_bytes"`

	// PlacementBase is the hash domain of the placement directory (the
	// seed shard count); PlacementOverrides counts node-level moves the
	// rebalancer has layered on top of the hash. 0 overrides with base
	// == shards means the layout is still the blind hash.
	PlacementBase      int `json:"placement_base"`
	PlacementOverrides int `json:"placement_overrides"`

	// Rebalances counts completed rebalancer ticks that changed the
	// layout; ShardSplits and ShardMerges break them down.
	Rebalances  int64 `json:"rebalances"`
	ShardSplits int64 `json:"shard_splits"`
	ShardMerges int64 `json:"shard_merges"`

	// Planner reports whether the cost-based query planner is on; the
	// Plan* counters count plans built per fan-out mode (a BatchKNN
	// plans once per batch) and shards answered by direct scan instead
	// of their tree index.
	Planner        bool  `json:"planner"`
	PlanParallel   int64 `json:"plan_parallel"`
	PlanSequential int64 `json:"plan_sequential"`
	PlanSingle     int64 `json:"plan_single"`
	PlanScans      int64 `json:"plan_scans"`

	// Queries counts queries served (BatchKNN counts each signature).
	Queries int64 `json:"queries"`
	// DistanceCalls counts TED* evaluations started serving them
	// (including early-exited ones).
	DistanceCalls int64 `json:"distance_calls"`

	// EarlyExits counts TED* evaluations the budget pipeline abandoned
	// mid-computation: the candidate's running cost provably crossed the
	// search threshold (kth-best, tau, or ring radius) before the full
	// O(k·n³) work was spent.
	EarlyExits int64 `json:"early_exits"`
	// LowerBoundPrunes counts candidates dismissed by a precompiled
	// lower bound alone, before any matching work; it always equals
	// SizePrunes + PaddingPrunes + LabelPrunes.
	LowerBoundPrunes int64 `json:"lower_bound_prunes"`

	// SizePrunes, PaddingPrunes, and LabelPrunes break LowerBoundPrunes
	// down by filter-cascade tier, aggregated atomically across shards:
	// the O(1) node-count gap, the per-level padding bound read off two
	// precompiled level-size vectors (including the budgeted TED*'s own
	// padding seed check), and the per-level label-multiset bound over
	// corpus-interned subtree labels. See the README's "Filter cascade"
	// section.
	SizePrunes    int64 `json:"size_prunes"`
	PaddingPrunes int64 `json:"padding_prunes"`
	LabelPrunes   int64 `json:"label_prunes"`

	// BlockCandidates counts candidate slots the linear and pruned scans
	// swept through the columnar block kernels (struct-of-arrays profile
	// arenas) instead of the scalar per-candidate cascade; the survivor
	// counters below report how many of those passed each successive
	// tier — BlockLabelSurvivors reached the verify stage. All zero on
	// the tree backends, whose traversal is inherently per-candidate.
	BlockCandidates       int64 `json:"block_candidates"`
	BlockSizeSurvivors    int64 `json:"block_size_survivors"`
	BlockPaddingSurvivors int64 `json:"block_padding_survivors"`
	BlockLabelSurvivors   int64 `json:"block_label_survivors"`

	// Rebuilds counts index rebuilds since construction: amortized
	// per-shard rebuilds triggered by the staleness threshold, plus
	// explicit Rebuild calls (each counted once, however many shards it
	// refreshes; a Rebuild on a never-built corpus performs the first
	// build and is not counted). Serving counters accumulate across
	// rebuilds (they never reset except through ResetStats).
	Rebuilds int64 `json:"rebuilds"`
	// StaleRatio is the current fraction of the index structure —
	// aggregated across shards — occupied by tombstones or unindexed
	// appends (0 for in-place backends and freshly built indexes). See
	// WithRebuildThreshold.
	StaleRatio float64 `json:"stale_ratio"`

	// SizeHist and DepthHist profile the indexed signatures, computed
	// on demand from the live items (null until materialized):
	// SizeHist[i] counts items whose total signature size (tree nodes,
	// both trees when directed) has bit length i — i.e. lands in
	// [2^(i-1), 2^i) — and DepthHist[d] counts items whose out-tree
	// height is d (bounded by k). The planner's cost inputs, exported
	// for inspection.
	SizeHist  []int64 `json:"size_hist"`
	DepthHist []int64 `json:"depth_hist"`
}

// Stats reports the corpus configuration and serving counters. Safe to
// call concurrently with queries and mutations — it reads each shard's
// published epoch and atomic counters without locking.
func (c *Corpus) Stats() CorpusStats {
	tab := c.tab.Load()
	s := CorpusStats{
		Backend:            c.cfg.backend,
		K:                  c.k,
		Directed:           c.cfg.directed,
		Workers:            c.cfg.workers,
		Shards:             len(tab.shards),
		ShardNodes:         make([]int, len(tab.shards)),
		ShardLockWaitNS:    make([]int64, len(tab.shards)),
		ShardMutations:     make([]int64, len(tab.shards)),
		ShardCloneBytes:    make([]int64, len(tab.shards)),
		PlacementBase:      tab.place.Base,
		PlacementOverrides: len(tab.place.Moves),
		Rebalances:         c.rebalances.Load(),
		ShardSplits:        c.shardSplits.Load(),
		ShardMerges:        c.shardMerges.Load(),
		Planner:            c.cfg.planner,
		PlanParallel:       c.planPar.Load(),
		PlanSequential:     c.planSeq.Load(),
		PlanSingle:         c.planSingle.Load(),
		PlanScans:          c.planScans.Load(),
		Built:              c.built.Load(),
		Queries:            c.queries.Load(),
		Rebuilds:           c.rebuilds.Load(),
	}
	var counters ned.Counters
	var stale, total int
	for i, sh := range tab.shards {
		ep := sh.epoch.Load()
		s.ShardNodes[i] = ep.size()
		s.Nodes += ep.size()
		s.ShardLockWaitNS[i] = sh.lockWaitNS.Load()
		s.ShardMutations[i] = sh.mutations.Load()
		s.ShardCloneBytes[i] = sh.cloneBytes.Load()
		if ep.ix != nil {
			counters = counters.Add(ep.ix.Counters())
			st, tt := ep.ix.Stale()
			stale += st
			total += tt
		}
		for _, it := range ep.byNode {
			size := it.Out.Size()
			if it.In != nil {
				size += it.In.Size()
			}
			s.SizeHist = bumpHist(s.SizeHist, bits.Len(uint(size)))
			s.DepthHist = bumpHist(s.DepthHist, it.Out.Height())
		}
	}
	s.DistanceCalls = counters.DistanceCalls
	s.EarlyExits = counters.EarlyExits
	s.LowerBoundPrunes = counters.LowerBoundPrunes
	s.SizePrunes = counters.SizePrunes
	s.PaddingPrunes = counters.PaddingPrunes
	s.LabelPrunes = counters.LabelPrunes
	s.BlockCandidates = counters.BlockCandidates
	s.BlockSizeSurvivors = counters.BlockSizeSurvivors
	s.BlockPaddingSurvivors = counters.BlockPaddingSurvivors
	s.BlockLabelSurvivors = counters.BlockLabelSurvivors
	if total > 0 {
		s.StaleRatio = float64(stale) / float64(total)
	}
	return s
}

// bumpHist increments histogram bucket i, growing the slice to reach
// it; histograms stay as short as their highest occupied bucket.
func bumpHist(h []int64, i int) []int64 {
	for len(h) <= i {
		h = append(h, 0)
	}
	h[i]++
	return h
}

// ResetStats zeroes the query, plan, and distance counters. Each
// shard's accumulator is shared by every epoch of that shard, so the
// reset covers retired generations and epochs still serving in-flight
// queries; like Stats, it takes no locks. The per-shard contention
// counters (lock wait, mutations, clone bytes) are deliberately NOT
// reset: the rebalancer differences successive readings, and a reset
// would fabricate negative load.
func (c *Corpus) ResetStats() {
	c.queries.Store(0)
	c.planPar.Store(0)
	c.planSeq.Store(0)
	c.planSingle.Store(0)
	c.planScans.Store(0)
	for _, sh := range c.tab.Load().shards {
		if ep := sh.epoch.Load(); ep.ix != nil {
			ep.ix.ResetStats()
		}
	}
}

// HasGraph reports whether a backing graph is attached — the gate for
// Insert, UpdateGraph, Signature, and node-based queries. Corpora
// loaded from binary segments carry their graph; text-snapshot corpora
// need WithGraph to re-attach one.
func (c *Corpus) HasGraph() bool { return c.g.Load() != nil }

// Signature of node v of the corpus graph at the corpus's k — a
// convenience for cross-corpus queries: sig from corpus A's graph, then
// b.KNNSignature(ctx, sig, l).
func (c *Corpus) Signature(v NodeID) (Signature, error) {
	g := c.g.Load()
	if g == nil {
		return Signature{}, fmt.Errorf("%w: Signature needs the corpus graph", ErrNoGraph)
	}
	if int(v) < 0 || int(v) >= g.NumNodes() {
		return Signature{}, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, g.NumNodes())
	}
	return NewSignature(g, v, c.k), nil
}
