package ned

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ned/internal/ned"
)

// Typed errors returned by the Corpus API. Wrap-aware: test with
// errors.Is. Canceled or expired contexts surface as context.Canceled /
// context.DeadlineExceeded, checked inside the distance loops so even
// in-flight queries abort promptly.
var (
	// ErrNilGraph reports a nil graph passed to NewCorpus.
	ErrNilGraph = errors.New("ned: nil graph")
	// ErrBadK reports a neighborhood depth below 1.
	ErrBadK = errors.New("ned: k must be >= 1")
	// ErrBadL reports a result count below 1.
	ErrBadL = errors.New("ned: l must be >= 1")
	// ErrBadRadius reports a negative range radius.
	ErrBadRadius = errors.New("ned: radius must be >= 0")
	// ErrNodeOutOfRange reports a node ID outside [0, NumNodes).
	ErrNodeOutOfRange = errors.New("ned: node out of range")
	// ErrBadBackend reports an unknown Backend value.
	ErrBadBackend = errors.New("ned: unknown backend")
	// ErrKMismatch reports a query signature whose k differs from the
	// corpus's k; cross-parameter distances are not comparable rankings.
	ErrKMismatch = errors.New("ned: query signature k differs from corpus k")
	// ErrBadSignature reports a query signature with no tree.
	ErrBadSignature = errors.New("ned: query signature has no tree")
	// ErrDirectedSignature reports a single-tree signature query against
	// a directed corpus, whose distance needs incoming and outgoing
	// trees; query directed corpora by node ID via KNN.
	ErrDirectedSignature = errors.New("ned: directed corpus requires node queries")
)

// Backend selects the index structure a Corpus serves queries from. All
// backends answer the same queries with the same distances; they differ
// in build cost, per-query work, and parallelism.
type Backend int

const (
	// BackendVP is the paper's VP-tree metric index (§13.4): sub-linear
	// queries via triangle-inequality pruning. The default.
	BackendVP Backend = iota
	// BackendBK is a Burkhard–Keller tree specialized to NED's small
	// integer distances.
	BackendBK
	// BackendLinear evaluates every candidate per query across the
	// corpus worker pool — the exact baseline, and the fastest choice
	// for small corpora.
	BackendLinear
	// BackendPrunedLinear scans sequentially, skipping candidates the
	// padding lower bound proves out of range (§10).
	BackendPrunedLinear

	numBackends = iota
)

// String returns the flag-friendly backend name.
func (b Backend) String() string {
	switch b {
	case BackendVP:
		return "vp"
	case BackendBK:
		return "bk"
	case BackendLinear:
		return "linear"
	case BackendPrunedLinear:
		return "pruned"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend maps a name ("vp", "bk", "linear", "pruned") to its
// Backend, for command-line flags.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "vp", "vptree", "vp-tree":
		return BackendVP, nil
	case "bk", "bktree", "bk-tree":
		return BackendBK, nil
	case "linear", "scan":
		return BackendLinear, nil
	case "pruned", "pruned-linear", "prunedlinear":
		return BackendPrunedLinear, nil
	}
	return 0, fmt.Errorf("%w: %q (want vp, bk, linear, or pruned)", ErrBadBackend, s)
}

// CorpusOption configures a Corpus at construction.
type CorpusOption func(*corpusConfig)

type corpusConfig struct {
	backend  Backend
	workers  int
	directed bool
	nodes    []NodeID
	nodesSet bool
}

// WithBackend selects the index backend (default BackendVP).
func WithBackend(b Backend) CorpusOption {
	return func(c *corpusConfig) { c.backend = b }
}

// WithWorkers sets the worker pool size used for parallel signature
// materialization, linear-backend scans, and BatchKNN fan-out. Values
// <= 0 (the default) mean GOMAXPROCS.
func WithWorkers(n int) CorpusOption {
	return func(c *corpusConfig) { c.workers = n }
}

// WithDirected switches the corpus to the directed NED of Equation 2:
// distances sum TED* over the incoming and outgoing k-adjacent trees.
// Directed corpora are queried by node ID (KNN); single-tree signature
// queries return ErrDirectedSignature.
func WithDirected() CorpusOption {
	return func(c *corpusConfig) { c.directed = true }
}

// WithNodes restricts the corpus to a node subset (for example a
// candidate pool in a de-anonymization attack); an empty subset yields
// an empty corpus. The default indexes every node of the graph. The
// slice is copied.
func WithNodes(nodes []NodeID) CorpusOption {
	return func(c *corpusConfig) {
		c.nodes = append([]NodeID(nil), nodes...)
		c.nodesSet = true
	}
}

// Corpus is a thread-safe, context-aware NED query engine over the
// nodes of one graph: the top-l / nearest-set similarity workloads of
// §13.3–13.4 behind a single API, served from an interchangeable index
// backend. Build one with NewCorpus; all methods may be called
// concurrently.
//
// Signatures and the backend index are materialized lazily, in
// parallel, on the first query, so constructing a Corpus is cheap and
// programs that only query a few of several corpora never pay for the
// rest.
type Corpus struct {
	g   *Graph
	k   int
	cfg corpusConfig

	buildOnce sync.Once
	buildErr  error
	ixVal     atomic.Value // holds ned.Index once built

	queries atomic.Int64
}

// NewCorpus validates the configuration and returns a query engine over
// g's nodes with neighborhood depth k. Errors are typed: ErrNilGraph,
// ErrBadK, ErrNodeOutOfRange (a WithNodes entry out of range), or
// ErrBadBackend.
func NewCorpus(g *Graph, k int, opts ...CorpusOption) (*Corpus, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	cfg := corpusConfig{backend: BackendVP}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.backend < 0 || cfg.backend >= numBackends {
		return nil, fmt.Errorf("%w: %d", ErrBadBackend, int(cfg.backend))
	}
	if !cfg.nodesSet {
		cfg.nodes = make([]NodeID, g.NumNodes())
		for i := range cfg.nodes {
			cfg.nodes[i] = NodeID(i)
		}
	} else {
		for _, v := range cfg.nodes {
			if int(v) < 0 || int(v) >= g.NumNodes() {
				return nil, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, g.NumNodes())
			}
		}
	}
	return &Corpus{g: g, k: k, cfg: cfg}, nil
}

// ensure materializes the signatures and index on first use.
func (c *Corpus) ensure() (ned.Index, error) {
	c.buildOnce.Do(func() {
		items := ned.BuildItems(c.g, c.cfg.nodes, c.k, c.cfg.directed, c.cfg.workers)
		var ix ned.Index
		switch c.cfg.backend {
		case BackendVP:
			ix = ned.NewVPBackend(items)
		case BackendBK:
			ix = ned.NewBKBackend(items)
		case BackendLinear:
			ix = ned.NewLinearBackend(items, c.cfg.workers)
		case BackendPrunedLinear:
			ix = ned.NewPrunedLinearBackend(items)
		default:
			c.buildErr = fmt.Errorf("%w: %d", ErrBadBackend, int(c.cfg.backend))
			return
		}
		c.ixVal.Store(ix)
	})
	if c.buildErr != nil {
		return nil, c.buildErr
	}
	return c.ixVal.Load().(ned.Index), nil
}

// index returns the built index without forcing a build, or nil.
func (c *Corpus) index() ned.Index {
	if v := c.ixVal.Load(); v != nil {
		return v.(ned.Index)
	}
	return nil
}

// queryItem validates and converts an external signature query.
func (c *Corpus) queryItem(sig Signature) (ned.Item, error) {
	if c.cfg.directed {
		return ned.Item{}, ErrDirectedSignature
	}
	if sig.Tree == nil {
		return ned.Item{}, ErrBadSignature
	}
	if sig.K != c.k {
		return ned.Item{}, fmt.Errorf("%w: signature k=%d, corpus k=%d", ErrKMismatch, sig.K, c.k)
	}
	return sig.Item(), nil
}

// nodeItem extracts the query item for a node of the corpus graph.
func (c *Corpus) nodeItem(v NodeID) (ned.Item, error) {
	if int(v) < 0 || int(v) >= c.g.NumNodes() {
		return ned.Item{}, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, c.g.NumNodes())
	}
	return ned.NewItem(c.g, v, c.k, c.cfg.directed), nil
}

// KNN returns the l indexed nodes most NED-similar to node v of the
// corpus graph, in ascending (distance, node) order. The query node
// itself ranks first at distance 0 when it is part of the corpus.
func (c *Corpus) KNN(ctx context.Context, v NodeID, l int) ([]Neighbor, error) {
	q, err := c.nodeItem(v)
	if err != nil {
		return nil, err
	}
	return c.knnItem(ctx, q, l)
}

// KNNSignature is KNN for an external query signature — typically a
// node of a different graph, the inter-graph workload NED exists for.
// The signature's k must match the corpus's.
func (c *Corpus) KNNSignature(ctx context.Context, sig Signature, l int) ([]Neighbor, error) {
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	return c.knnItem(ctx, q, l)
}

func (c *Corpus) knnItem(ctx context.Context, q ned.Item, l int) ([]Neighbor, error) {
	if l < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadL, l)
	}
	// Check before ensure() so a dead context never pays for the lazy
	// index build.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix, err := c.ensure()
	if err != nil {
		return nil, err
	}
	c.queries.Add(1)
	return ix.KNN(ctx, q, l)
}

// Range returns every indexed node within NED distance r of the query
// signature, in ascending (distance, node) order.
func (c *Corpus) Range(ctx context.Context, sig Signature, r int) ([]Neighbor, error) {
	if r < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadRadius, r)
	}
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix, err := c.ensure()
	if err != nil {
		return nil, err
	}
	c.queries.Add(1)
	return ix.Range(ctx, q, r)
}

// NearestSet returns every indexed node at the minimum NED distance
// from the query signature — the "nearest neighbor result set" of
// §13.3, which is rarely a single node because NED's integer distances
// tie (Figure 8a).
func (c *Corpus) NearestSet(ctx context.Context, sig Signature) ([]Neighbor, error) {
	q, err := c.queryItem(sig)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix, err := c.ensure()
	if err != nil {
		return nil, err
	}
	if ix.Len() == 0 {
		return nil, ctx.Err()
	}
	c.queries.Add(1)
	best, err := ix.KNN(ctx, q, 1)
	if err != nil {
		return nil, err
	}
	all, err := ix.Range(ctx, q, best[0].Dist)
	if err != nil {
		return nil, err
	}
	// The metric-tree backends can deviate from each other around the
	// KNN(1) distance by a triangle-tie artifact (see the ted package
	// faithfulness note): Range may surface a smaller stratum than
	// KNN(1) found, or miss the minimum stratum entirely. Keep only the
	// smallest stratum seen, falling back to the KNN(1) hit itself.
	if len(all) == 0 {
		return best, nil
	}
	minDist := all[0].Dist
	out := all[:0]
	for _, n := range all {
		if n.Dist == minDist {
			out = append(out, n)
		}
	}
	return out, nil
}

// BatchKNN answers one KNN query per signature, fanning the queries out
// across the corpus worker pool. results[i] corresponds to sigs[i].
// Cancelling ctx aborts the whole batch: queries not yet finished are
// abandoned and the error is returned.
func (c *Corpus) BatchKNN(ctx context.Context, sigs []Signature, l int) ([][]Neighbor, error) {
	if l < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadL, l)
	}
	qs := make([]ned.Item, len(sigs))
	for i, s := range sigs {
		q, err := c.queryItem(s)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		qs[i] = q
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix, err := c.ensure()
	if err != nil {
		return nil, err
	}
	c.queries.Add(int64(len(sigs)))
	// The linear backend already spreads each scan across the worker
	// pool; fanning queries out on top of that would run workers² TED*
	// goroutines, so batch sequentially there and let each query
	// parallelize instead.
	batchWorkers := c.cfg.workers
	if c.cfg.backend == BackendLinear {
		batchWorkers = 1
	}
	results := make([][]Neighbor, len(sigs))
	errs := make([]error, len(sigs))
	if err := ned.ParallelForCtx(ctx, len(sigs), batchWorkers, func(i int) {
		results[i], errs[i] = ix.KNN(ctx, qs[i], l)
	}); err != nil {
		return nil, err
	}
	for _, qerr := range errs {
		if qerr != nil {
			return nil, qerr
		}
	}
	return results, nil
}

// CorpusStats is a point-in-time snapshot of a corpus's configuration
// and serving counters.
type CorpusStats struct {
	Backend  Backend
	K        int
	Directed bool
	Workers  int  // configured worker count; 0 means GOMAXPROCS
	Nodes    int  // indexed node count
	Built    bool // whether the index has been materialized yet

	Queries       int64 // queries served (BatchKNN counts each signature)
	DistanceCalls int64 // TED* evaluations started serving them (incl. early-exited)

	// EarlyExits counts TED* evaluations the budget pipeline abandoned
	// mid-computation: the candidate's running cost provably crossed the
	// search threshold (kth-best, tau, or ring radius) before the full
	// O(k·n³) work was spent.
	EarlyExits int64
	// LowerBoundPrunes counts candidates dismissed by the O(height)
	// padding lower bound alone, before any matching work.
	LowerBoundPrunes int64
}

// Stats reports the corpus configuration and serving counters. Safe to
// call concurrently with queries; counters are atomic snapshots.
func (c *Corpus) Stats() CorpusStats {
	s := CorpusStats{
		Backend:  c.cfg.backend,
		K:        c.k,
		Directed: c.cfg.directed,
		Workers:  c.cfg.workers,
		Nodes:    len(c.cfg.nodes),
		Queries:  c.queries.Load(),
	}
	if ix := c.index(); ix != nil {
		s.Built = true
		counters := ix.Counters()
		s.DistanceCalls = counters.DistanceCalls
		s.EarlyExits = counters.EarlyExits
		s.LowerBoundPrunes = counters.LowerBoundPrunes
	}
	return s
}

// ResetStats zeroes the query and distance counters.
func (c *Corpus) ResetStats() {
	c.queries.Store(0)
	if ix := c.index(); ix != nil {
		ix.ResetStats()
	}
}

// Signature of node v of the corpus graph at the corpus's k — a
// convenience for cross-corpus queries: sig from corpus A's graph, then
// b.KNNSignature(ctx, sig, l).
func (c *Corpus) Signature(v NodeID) (Signature, error) {
	if int(v) < 0 || int(v) >= c.g.NumNodes() {
		return Signature{}, fmt.Errorf("%w: node %d not in [0, %d)", ErrNodeOutOfRange, v, c.g.NumNodes())
	}
	return NewSignature(c.g, v, c.k), nil
}
