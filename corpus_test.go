package ned

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

var allBackends = []Backend{BackendVP, BackendBK, BackendLinear, BackendPrunedLinear}

// randomGraph builds a seeded Erdős–Rényi-style graph: n nodes, about m
// distinct edges, no self-loops.
func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]NodeID]bool{}
	b := NewGraphBuilder(n, false)
	for len(seen) < m {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]NodeID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

func neighborDists(ns []Neighbor) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = n.Dist
	}
	return out
}

// TestCorpusBackendEquivalence is the backend-equivalence property: on
// seeded random graphs, every backend must return identical KNN distance
// multisets and identical Range result sets through the one Corpus API.
func TestCorpusBackendEquivalence(t *testing.T) {
	ctx := context.Background()
	const k = 2
	for trial := int64(0); trial < 5; trial++ {
		gQuery := randomGraph(60, 120, 100+trial)
		gCorpus := randomGraph(80, 170, 200+trial)

		corpora := make(map[Backend]*Corpus, len(allBackends))
		for _, b := range allBackends {
			c, err := NewCorpus(gCorpus, k, WithBackend(b))
			if err != nil {
				t.Fatalf("trial %d: NewCorpus(%v): %v", trial, b, err)
			}
			corpora[b] = c
		}

		rng := rand.New(rand.NewSource(300 + trial))
		for q := 0; q < 8; q++ {
			sig := NewSignature(gQuery, NodeID(rng.Intn(gQuery.NumNodes())), k)
			l := 1 + rng.Intn(12)
			r := rng.Intn(6)

			ref, err := corpora[BackendLinear].KNNSignature(ctx, sig, l)
			if err != nil {
				t.Fatalf("trial %d: linear KNN: %v", trial, err)
			}
			refRange, err := corpora[BackendLinear].Range(ctx, sig, r)
			if err != nil {
				t.Fatalf("trial %d: linear Range: %v", trial, err)
			}
			refNearest, err := corpora[BackendLinear].NearestSet(ctx, sig)
			if err != nil {
				t.Fatalf("trial %d: linear NearestSet: %v", trial, err)
			}

			for _, b := range allBackends[:3] { // skip linear vs itself
				got, err := corpora[b].KNNSignature(ctx, sig, l)
				if err != nil {
					t.Fatalf("trial %d: %v KNN: %v", trial, b, err)
				}
				// KNN contract: identical distance multiset (distances are
				// sorted, so slice equality compares multisets).
				if fmt.Sprint(neighborDists(got)) != fmt.Sprint(neighborDists(ref)) {
					t.Errorf("trial %d query %d: %v KNN dists %v, linear %v",
						trial, q, b, neighborDists(got), neighborDists(ref))
				}

				// Range contract: identical result set, including nodes.
				gotRange, err := corpora[b].Range(ctx, sig, r)
				if err != nil {
					t.Fatalf("trial %d: %v Range: %v", trial, b, err)
				}
				if fmt.Sprint(gotRange) != fmt.Sprint(refRange) {
					t.Errorf("trial %d query %d: %v Range %v, linear %v",
						trial, q, b, gotRange, refRange)
				}

				gotNearest, err := corpora[b].NearestSet(ctx, sig)
				if err != nil {
					t.Fatalf("trial %d: %v NearestSet: %v", trial, b, err)
				}
				if fmt.Sprint(gotNearest) != fmt.Sprint(refNearest) {
					t.Errorf("trial %d query %d: %v NearestSet %v, linear %v",
						trial, q, b, gotNearest, refNearest)
				}
			}
		}
	}
}

func TestCorpusMatchesLowLevelTopL(t *testing.T) {
	g1, g2 := testGraphPair(t)
	const k, l = 2, 7
	c, err := NewCorpus(g2, k, WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	sig := NewSignature(g1, 3, k)
	got, err := c.KNNSignature(context.Background(), sig, l)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []NodeID
	for v := 0; v < g2.NumNodes(); v++ {
		nodes = append(nodes, NodeID(v))
	}
	want := TopL(sig, Signatures(g2, nodes, k), l)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Corpus KNN %v != low-level TopL %v", got, want)
	}
}

func TestCorpusTypedErrors(t *testing.T) {
	g := randomGraph(20, 30, 1)
	ctx := context.Background()

	if _, err := NewCorpus(nil, 3); !errors.Is(err, ErrNilGraph) {
		t.Errorf("nil graph: got %v, want ErrNilGraph", err)
	}
	if _, err := NewCorpus(g, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: got %v, want ErrBadK", err)
	}
	if _, err := NewCorpus(g, 3, WithBackend(Backend(99))); !errors.Is(err, ErrBadBackend) {
		t.Errorf("backend 99: got %v, want ErrBadBackend", err)
	}
	if _, err := NewCorpus(g, 3, WithNodes([]NodeID{5, 25})); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out-of-range subset: got %v, want ErrNodeOutOfRange", err)
	}

	c, err := NewCorpus(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(ctx, 99, 3); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("KNN node 99: got %v, want ErrNodeOutOfRange", err)
	}
	if _, err := c.KNN(ctx, 0, 0); !errors.Is(err, ErrBadL) {
		t.Errorf("l=0: got %v, want ErrBadL", err)
	}
	sig := NewSignature(g, 0, 2) // wrong k
	if _, err := c.KNNSignature(ctx, sig, 3); !errors.Is(err, ErrKMismatch) {
		t.Errorf("k mismatch: got %v, want ErrKMismatch", err)
	}
	if _, err := c.KNNSignature(ctx, Signature{}, 3); !errors.Is(err, ErrBadSignature) {
		t.Errorf("empty signature: got %v, want ErrBadSignature", err)
	}
	if _, err := c.Range(ctx, NewSignature(g, 0, 3), -1); !errors.Is(err, ErrBadRadius) {
		t.Errorf("r=-1: got %v, want ErrBadRadius", err)
	}

	if _, err := ParseBackend("zorp"); !errors.Is(err, ErrBadBackend) {
		t.Errorf("ParseBackend(zorp): got %v, want ErrBadBackend", err)
	}
	for _, b := range allBackends {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
}

func TestCorpusPreCanceledContext(t *testing.T) {
	g := randomGraph(40, 80, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sig := NewSignature(g, 0, 3)
	for _, b := range allBackends {
		c, err := NewCorpus(g, 3, WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.KNNSignature(ctx, sig, 3); !errors.Is(err, context.Canceled) {
			t.Errorf("%v KNN pre-canceled: got %v, want context.Canceled", b, err)
		}
		if _, err := c.Range(ctx, sig, 2); !errors.Is(err, context.Canceled) {
			t.Errorf("%v Range pre-canceled: got %v, want context.Canceled", b, err)
		}
		if _, err := c.BatchKNN(ctx, []Signature{sig}, 3); !errors.Is(err, context.Canceled) {
			t.Errorf("%v BatchKNN pre-canceled: got %v, want context.Canceled", b, err)
		}
	}
}

// TestCorpusCancelInFlightBatch cancels a large batch shortly after it
// starts; the batch must abort with context.Canceled instead of running
// to completion. The workload (hundreds of thousands of TED*
// evaluations on a single worker) takes far longer than the cancel
// delay on any hardware.
func TestCorpusCancelInFlightBatch(t *testing.T) {
	g := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.5, Seed: 3})
	c, err := NewCorpus(g, 3, WithBackend(BackendLinear), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	var sigs []Signature
	for v := 0; v < 100; v++ {
		sigs = append(sigs, NewSignature(g, NodeID(v), 3))
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.BatchKNN(ctx, sigs, 5)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("in-flight batch: got %v, want context.Canceled", err)
	}
}

// TestCorpusConcurrentQueries hammers one corpus from many goroutines;
// under -race this verifies the atomic stats counters and lazy build.
func TestCorpusConcurrentQueries(t *testing.T) {
	g := randomGraph(60, 120, 4)
	for _, b := range allBackends {
		c, err := NewCorpus(g, 2, WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 10; i++ {
					v := NodeID(rng.Intn(g.NumNodes()))
					if _, err := c.KNN(ctx, v, 3); err != nil {
						t.Errorf("%v concurrent KNN: %v", b, err)
						return
					}
					c.Stats()
				}
			}(int64(w))
		}
		wg.Wait()
		s := c.Stats()
		if s.Queries != 80 {
			t.Errorf("%v: Queries = %d, want 80", b, s.Queries)
		}
		if !s.Built || s.DistanceCalls == 0 {
			t.Errorf("%v: stats not tracking: %+v", b, s)
		}
	}
}

func TestCorpusWithNodesSubset(t *testing.T) {
	g := randomGraph(50, 100, 5)
	subset := []NodeID{3, 7, 11, 19, 23}
	c, err := NewCorpus(g, 2, WithNodes(subset), WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.KNN(context.Background(), 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(subset) {
		t.Fatalf("got %d results, want %d", len(res), len(subset))
	}
	allowed := map[NodeID]bool{}
	for _, v := range subset {
		allowed[v] = true
	}
	for _, n := range res {
		if !allowed[n.Node] {
			t.Errorf("node %d not in the WithNodes subset", n.Node)
		}
	}
	if s := c.Stats(); s.Nodes != len(subset) {
		t.Errorf("Stats.Nodes = %d, want %d", s.Nodes, len(subset))
	}

	// An explicitly empty subset means an empty corpus, not the whole
	// graph.
	empty, err := NewCorpus(g, 2, WithNodes([]NodeID{}), WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	res, err = empty.KNN(context.Background(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty WithNodes corpus returned %d results, want 0", len(res))
	}
}

func TestCorpusDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewGraphBuilder(40, true)
	for i := 0; i < 90; i++ {
		u, v := NodeID(rng.Intn(40)), NodeID(rng.Intn(40))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	ctx := context.Background()

	c, err := NewCorpus(g, 2, WithDirected(), WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.KNN(ctx, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Directed distances must match the low-level directed NED.
	for _, n := range res {
		if want := DistanceDirected(g, 0, g, n.Node, 2); n.Dist != want {
			t.Errorf("directed KNN dist to %d = %d, want %d", n.Node, n.Dist, want)
		}
	}
	// Single-tree signature queries are typed errors in directed mode.
	if _, err := c.KNNSignature(ctx, NewSignature(g, 0, 2), 3); !errors.Is(err, ErrDirectedSignature) {
		t.Errorf("directed signature query: got %v, want ErrDirectedSignature", err)
	}

	// Directed backends agree with each other too.
	for _, backend := range allBackends {
		cb, err := NewCorpus(g, 2, WithDirected(), WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		got, err := cb.KNN(ctx, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(neighborDists(got)) != fmt.Sprint(neighborDists(res)) {
			t.Errorf("%v directed KNN dists %v, linear %v",
				backend, neighborDists(got), neighborDists(res))
		}
	}
}

func TestCorpusLazyBuildAndSignature(t *testing.T) {
	g := randomGraph(30, 60, 7)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Built {
		t.Error("corpus reported built before any query")
	}
	sig, err := c.Signature(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Signature(999); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("Signature(999): got %v, want ErrNodeOutOfRange", err)
	}
	if _, err := c.KNNSignature(context.Background(), sig, 3); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); !s.Built || s.Queries != 1 {
		t.Errorf("after one query: %+v", s)
	}
}
