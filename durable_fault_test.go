package ned

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"ned/internal/faultfs"
	"ned/internal/segment"
)

// The chaos harness: every I/O failure the faultfs injector can script
// — EIO, ENOSPC, short writes, failed fsyncs, torn renames — swept
// across every filesystem operation of a full mutate/checkpoint
// lifecycle, plus a subprocess SIGKILL matrix for the crash points no
// in-process test can model. The invariant under every fault is the
// same: the corpus that recovers from the directory is node-identical
// to some prefix-consistent corpus — every acknowledged mutation
// present, every unacknowledged mutation absent, never a corrupt or
// half-applied state.

// faultScenario runs one deterministic durable lifecycle against dir
// with the injector installed: attach, a mutation burst with two
// checkpoints inside it, tolerating (and recording) injected failures.
// It returns the set of acknowledged removals. The corpus is abandoned
// without a clean close, exactly as a dying process leaves it.
func faultScenario(t *testing.T, dir string, g *Graph) (acked map[NodeID]bool, attached bool) {
	t.Helper()
	c, err := NewCorpus(g, 2, WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncAlways); err != nil {
		return nil, false
	}
	acked = map[NodeID]bool{}
	for i := 0; i < 24; i++ {
		if err := c.Remove(NodeID(i)); err == nil {
			acked[NodeID(i)] = true
		} else if !errors.Is(err, ErrDegraded) {
			t.Fatalf("Remove(%d) failed outside the degraded contract: %v", i, err)
		}
		if i == 7 || i == 15 {
			// Checkpoint mid-burst: rotate, segment write, verify,
			// cleanup — and, when already degraded, the recovery rewrite.
			c.Checkpoint() // failure tolerated; degraded mode owns it
		}
	}
	return acked, true
}

// checkFaultRecovery opens dir and asserts the recovered corpus holds
// exactly the acknowledged mutations.
func checkFaultRecovery(t *testing.T, dir string, g *Graph, acked map[NodeID]bool) {
	t.Helper()
	c, err := OpenDurable(dir, FsyncAlways)
	if err != nil {
		t.Fatalf("OpenDurable after fault: %v", err)
	}
	defer c.CloseDurable()
	liveSet := liveItems(c)
	live := map[NodeID]bool{}
	for v := 0; v < g.NumNodes(); v++ {
		present := liveSet[NodeID(v)].Out != nil
		if acked[NodeID(v)] && present {
			t.Fatalf("acknowledged removal of node %d was lost", v)
		}
		if !acked[NodeID(v)] && !present {
			t.Fatalf("unacknowledged removal of node %d was applied", v)
		}
		if present {
			live[NodeID(v)] = true
		}
	}
	checkEquivalent(t, c, g, live, 2)
}

// TestFaultSweepEveryOp is the exhaustive failpoint sweep: the
// lifecycle runs once fault-free to enumerate its filesystem
// operations, then once per operation index with that operation
// scripted to fail with EIO. Every iteration must recover cleanly.
func TestFaultSweepEveryOp(t *testing.T) {
	g := randomGraph(50, 110, 510)

	// Dry run: count the scenario's filesystem operations.
	dry := t.TempDir()
	inj := faultfs.NewInjector(dry)
	restore := inj.Install()
	acked, attached := faultScenario(t, dry, g)
	total := inj.Ops()
	restore()
	if !attached || len(acked) != 24 {
		t.Fatalf("fault-free run acked %d of 24 (attached=%v)", len(acked), attached)
	}
	checkFaultRecovery(t, dry, g, acked)
	if total < 50 {
		t.Fatalf("scenario performed only %d ops; the sweep would be vacuous", total)
	}

	for at := int64(1); at <= total; at++ {
		dir := t.TempDir()
		inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{At: at, Fault: faultfs.FaultErr})
		restore := inj.Install()
		acked, attached := faultScenario(t, dir, g)
		inj.Reset() // recovery below must run clean
		if !attached {
			// The fault killed the attach itself: no durable promise was
			// ever made. The directory must hold no (or only unreadable)
			// state — never a loadable lie.
			restore()
			if HasDurableState(dir) {
				if _, err := OpenDurable(dir, FsyncAlways); err == nil {
					t.Fatalf("at=%d: failed MakeDurable left loadable state", at)
				}
			}
			continue
		}
		checkFaultRecovery(t, dir, g, acked)
		restore()
	}
}

// TestFaultSweepShortWrites repeats the sweep over the write
// operations only, tearing each mid-buffer with ENOSPC instead of
// failing it cleanly — the torn-frame producer.
func TestFaultSweepShortWrites(t *testing.T) {
	g := randomGraph(50, 110, 510)
	dry := t.TempDir()
	inj := faultfs.NewInjector(dry)
	restore := inj.Install()
	faultScenario(t, dry, g)
	total := inj.Ops()
	restore()

	for at := int64(1); at <= total; at++ {
		dir := t.TempDir()
		inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{
			At: at, Fault: faultfs.FaultShortWrite, Err: syscall.ENOSPC,
		})
		restore := inj.Install()
		acked, attached := faultScenario(t, dir, g)
		inj.Reset()
		if !attached {
			restore()
			continue
		}
		checkFaultRecovery(t, dir, g, acked)
		restore()
	}
}

// A failed WAL commit degrades the corpus: the mutation is refused and
// unapplied, later mutations fail fast, reads keep serving, and a
// verified Checkpoint is the only way back.
func TestDegradedModeStickyUntilVerifiedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(60, 130, 520)
	inj := faultfs.NewInjector(dir)
	defer inj.Install()()

	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncAlways); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(NodeID(1)); err != nil {
		t.Fatal(err)
	}

	// Every write under the directory fails from here: the WAL commit
	// that trips degradation AND the checkpoint rewrite recovery needs.
	inj.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Fault: faultfs.FaultErr, Err: syscall.ENOSPC})
	if err := c.Remove(NodeID(2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("faulted Remove: err = %v, want ErrDegraded", err)
	}
	info := c.Degraded()
	if info == nil || info.Reason != "wal commit" || !errors.Is(info.Cause, syscall.ENOSPC) {
		t.Fatalf("Degraded() = %+v", info)
	}
	// Sticky: the next mutation is refused at entry, before touching
	// the wedged log.
	if err := c.Insert(NodeID(1)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Insert while degraded: err = %v, want ErrDegraded", err)
	}
	if h := c.DurableHealth(); !h.Degraded || h.Reason != "wal commit" {
		t.Fatalf("DurableHealth = %+v", h)
	}
	// Reads are untouched: the last published epochs keep serving.
	if _, err := c.KNN(context.Background(), NodeID(5), 5); err != nil {
		t.Fatalf("KNN while degraded: %v", err)
	}
	// The refused mutation never half-applied.
	if liveItems(c)[NodeID(2)].Out == nil {
		t.Fatal("refused Remove(2) was applied anyway")
	}

	// Recovery while the disk is still broken fails and stays degraded.
	if err := c.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Checkpoint on broken disk: err = %v, want ErrDegraded", err)
	}
	if c.Degraded() == nil {
		t.Fatal("failed recovery cleared degraded mode")
	}
	attempts := c.DurableHealth().RecoveryAttempts
	if attempts == 0 {
		t.Fatal("recovery attempt not counted")
	}

	// Disk heals: the verified rewrite clears the state.
	inj.Reset()
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("recovery Checkpoint: %v", err)
	}
	if c.Degraded() != nil {
		t.Fatal("verified checkpoint did not clear degraded mode")
	}
	if err := c.Remove(NodeID(2)); err != nil {
		t.Fatalf("Remove after recovery: %v", err)
	}
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenDurable(dir, FsyncAlways)
	if err != nil {
		t.Fatalf("OpenDurable after recovery: %v", err)
	}
	defer c2.CloseDurable()
	live := map[NodeID]bool{}
	for v := 0; v < g.NumNodes(); v++ {
		live[NodeID(v)] = true
	}
	delete(live, 1)
	delete(live, 2)
	checkEquivalent(t, c2, g, live, 2)
}

// A checkpoint whose rename tears (the crash-torn-rename model: the
// destination lands truncated) must fail verification, quarantine the
// bad generation, and leave the previous generations in place — they
// are the recovery story a torn checkpoint must never replace.
func TestTornRenameCheckpointQuarantinedAndRecoverable(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(60, 130, 530)
	inj := faultfs.NewInjector(dir)
	defer inj.Install()()

	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncAlways); err != nil {
		t.Fatal(err)
	}
	live := mutateBurst(t, c, g)

	inj.AddRule(faultfs.Rule{Op: faultfs.OpRename, Path: "checkpoint-", Fault: faultfs.FaultTornRename})
	if err := c.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("torn-rename Checkpoint: err = %v, want ErrDegraded", err)
	}
	inj.Reset()
	if info := c.Degraded(); info == nil || info.Reason != "checkpoint verify" {
		t.Fatalf("Degraded() = %+v, want checkpoint verify", info)
	}
	// The torn generation was renamed aside, not left shadowing.
	if _, err := os.Stat(segment.CheckpointPath(dir, 1) + ".quarantined"); err != nil {
		t.Fatalf("torn checkpoint not quarantined: %v", err)
	}
	if h := c.DurableHealth(); h.QuarantinedCheckpoints == 0 {
		t.Fatalf("quarantine not counted: %+v", h)
	}
	// Generation 0 — checkpoint and log — survived: verify runs before
	// cleanup, so the torn file could not retire its recovery story.
	if _, err := os.Stat(segment.CheckpointPath(dir, 0)); err != nil {
		t.Fatal("verified-before-cleanup violated: generation 0 checkpoint gone")
	}
	if _, err := os.Stat(segment.WALPath(dir, 0)); err != nil {
		t.Fatal("verified-before-cleanup violated: generation 0 wal gone")
	}

	// A process dying right here must recover everything acknowledged.
	c2, err := OpenDurable(dir, FsyncAlways)
	if err != nil {
		t.Fatalf("OpenDurable after torn checkpoint: %v", err)
	}
	checkEquivalent(t, c2, g, live, 2)
	c2.CloseDurable()

	// And the degraded original recovers in-process too.
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("recovery Checkpoint: %v", err)
	}
	if c.Degraded() != nil {
		t.Fatal("recovery did not clear degraded mode")
	}
	c.CloseDurable()
}

// An unreadable newest checkpoint at recovery time is quarantined and
// recovery falls back to the previous generation plus the surviving
// log tails — no committed mutation lost.
func TestOpenDurableQuarantinesUnreadableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(60, 130, 540)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncNone); err != nil {
		t.Fatal(err)
	}
	live := mutateBurst(t, c, g)

	// Checkpoint under a cleanup fault: generation 1 lands verified,
	// but generation 0 (checkpoint AND log) survives the failed
	// RemoveObsolete — exactly the window a crashed cleanup leaves.
	inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{Op: faultfs.OpRemove, Fault: faultfs.FaultErr})
	restore := inj.Install()
	// Unlink failures on obsolete generations are tolerated (garbage,
	// not state): the checkpoint itself succeeds and generation 0 stays.
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint with failing cleanup: %v", err)
	}
	restore()
	if _, err := os.Stat(segment.CheckpointPath(dir, 0)); err != nil {
		t.Fatalf("expected generation 0 to survive the failed cleanup: %v", err)
	}
	// Cleanup failure is maintenance debt, not a durability failure:
	// the corpus still accepts mutations (they land in generation 1).
	if err := c.Remove(NodeID(51)); err != nil {
		t.Fatalf("Remove after cleanup failure: %v", err)
	}
	delete(live, 51)
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest checkpoint on disk.
	path := segment.CheckpointPath(dir, 1)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x20
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenDurable(dir, FsyncNone)
	if err != nil {
		t.Fatalf("OpenDurable with unreadable newest checkpoint: %v", err)
	}
	defer c2.CloseDurable()
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("bad checkpoint not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("bad checkpoint still in place under its own name")
	}
	if h := c2.DurableHealth(); h.QuarantinedCheckpoints != 1 {
		t.Fatalf("QuarantinedCheckpoints = %d, want 1", h.QuarantinedCheckpoints)
	}
	// Fallback: generation 0 checkpoint + wal-0 replay + wal-1 replay
	// reconstruct every committed mutation.
	checkEquivalent(t, c2, g, live, 2)
}

// With every checkpoint generation unreadable, recovery must refuse
// loudly — an empty corpus pretending to be the data would be the
// worst possible outcome.
func TestOpenDurableRefusesWhenNoCheckpointLoads(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(40, 90, 550)
	c, err := NewCorpus(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncNone); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	path := segment.CheckpointPath(dir, 0)
	blob, _ := os.ReadFile(path)
	blob[len(blob)/2] ^= 0x20
	os.WriteFile(path, blob, 0o644)
	if _, err := OpenDurable(dir, FsyncNone); err == nil {
		t.Fatal("OpenDurable fabricated a corpus out of zero loadable checkpoints")
	}
	// The evidence was kept, renamed aside.
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("unloadable checkpoint not quarantined: %v", err)
	}
}

// --- subprocess crash matrix ---

// TestDurableCrashMatrix extends the SIGKILL test to faultfs-scripted
// crash points: the helper lifecycle (attach, removals, periodic
// checkpoints) runs once fault-free to count its filesystem
// operations, then is SIGKILLed at evenly spaced operation indices —
// inside WAL appends, rotations, checkpoint writes, verifies, and
// cleanups. Every directory left behind must recover to a
// prefix-consistent corpus.
func TestDurableCrashMatrix(t *testing.T) {
	if os.Getenv("NED_FAULT_DIR") != "" {
		t.Skip("helper-only environment")
	}
	if testing.Short() {
		t.Skip("subprocess matrix is not -short work")
	}
	const n = 120

	// Fault-free run: learn the op count and the full ack sequence.
	total, acked, killed := runCrashHelper(t, t.TempDir(), 0)
	if killed || total == 0 || acked != n {
		t.Fatalf("fault-free helper: ops=%d acked=%d killed=%v", total, acked, killed)
	}

	// Twelve crash points spread across the lifecycle, always including
	// the very first and very last operation.
	points := map[int64]bool{1: true, total: true}
	for i := int64(1); i <= 10; i++ {
		points[1+i*(total-1)/11] = true
	}
	for at := range points {
		at := at
		t.Run(fmt.Sprintf("op%d", at), func(t *testing.T) {
			dir := t.TempDir()
			_, lastAcked, killed := runCrashHelper(t, dir, at)
			if !killed {
				t.Fatalf("helper survived its scripted crash at op %d", at)
			}
			if !HasDurableState(dir) {
				// Died before the attach finished: no durability promise
				// existed, and no acknowledgment can have been printed.
				if lastAcked > 0 {
					t.Fatalf("helper acked %d removals with no durable state", lastAcked)
				}
				return
			}
			c, err := OpenDurable(dir, FsyncAlways)
			if err != nil {
				t.Fatalf("OpenDurable after crash at op %d: %v", at, err)
			}
			defer c.CloseDurable()
			// The helper removes node i at step i: the live set must be
			// exactly {m..n-1} with m >= lastAcked.
			liveSet := liveItems(c)
			m := n - len(liveSet)
			if m < lastAcked {
				t.Fatalf("crash at op %d lost acknowledged removals: recovered %d, acked %d", at, m, lastAcked)
			}
			for v := 0; v < n; v++ {
				if present, want := liveSet[NodeID(v)].Out != nil, v >= m; present != want {
					t.Fatalf("crash at op %d: live set is not a burst prefix at node %d", at, v)
				}
			}
			g := randomGraph(n, 2*n, 560)
			live := map[NodeID]bool{}
			for v := m; v < n; v++ {
				live[NodeID(v)] = true
			}
			checkEquivalent(t, c, g, live, 2)
		})
	}
}

// TestDurableCrashTornCheckpointWrite crashes the helper mid-write of
// a checkpoint file — half the buffer lands, then SIGKILL — and
// asserts recovery sweeps or quarantines the residue and falls back.
func TestDurableCrashTornCheckpointWrite(t *testing.T) {
	if os.Getenv("NED_FAULT_DIR") != "" {
		t.Skip("helper-only environment")
	}
	if testing.Short() {
		t.Skip("subprocess matrix is not -short work")
	}
	const n = 120
	for _, nth := range []int64{1, 2} {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=^TestDurableCrashHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			"NED_FAULT_DIR="+dir,
			"NED_FAULT_TORN_NTH="+strconv.FormatInt(nth, 10))
		out, _ := cmd.Output()
		lastAcked := parseAcks(out)
		if !HasDurableState(dir) {
			continue
		}
		c, err := OpenDurable(dir, FsyncAlways)
		if err != nil {
			t.Fatalf("OpenDurable after torn checkpoint write (nth=%d): %v", nth, err)
		}
		liveSet := liveItems(c)
		m := n - len(liveSet)
		if m < lastAcked {
			t.Fatalf("torn checkpoint write lost acknowledged removals: recovered %d, acked %d", m, lastAcked)
		}
		c.CloseDurable()
	}
}

// runCrashHelper spawns the helper subprocess, scripted to SIGKILL
// itself at filesystem operation index at (0 = run to completion). It
// returns the op total the helper reported (0 when killed), how many
// removals it acknowledged, and whether it died by signal.
func runCrashHelper(t *testing.T, dir string, at int64) (total int64, acked int, killed bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDurableCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"NED_FAULT_DIR="+dir,
		"NED_FAULT_AT="+strconv.FormatInt(at, 10))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if s, ok := strings.CutPrefix(line, "STEP "); ok {
			if step, err := strconv.Atoi(strings.TrimSpace(s)); err == nil {
				acked = step + 1
			}
		}
		if s, ok := strings.CutPrefix(line, "OPS "); ok {
			if v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64); err == nil {
				total = v
			}
		}
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if errors.As(err, &exitErr) {
		if ws, ok := exitErr.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			killed = ws.Signal() == syscall.SIGKILL
		}
	}
	return total, acked, killed
}

// parseAcks extracts the last acknowledged step count from helper
// output.
func parseAcks(out []byte) int {
	acked := 0
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		if s, ok := strings.CutPrefix(sc.Text(), "STEP "); ok {
			if step, err := strconv.Atoi(strings.TrimSpace(s)); err == nil {
				acked = step + 1
			}
		}
	}
	return acked
}

// TestDurableCrashHelper is the subprocess half of the crash matrix:
// it installs a faultfs injector scripted to SIGKILL at the requested
// operation index, then runs the lifecycle — attach, remove node i at
// step i with a checkpoint every 8 steps — acknowledging each commit
// on stdout. Without a crash script it runs to completion and reports
// its operation count.
func TestDurableCrashHelper(t *testing.T) {
	dir := os.Getenv("NED_FAULT_DIR")
	if dir == "" {
		t.Skip("not in helper mode")
	}
	const n = 120
	inj := faultfs.NewInjector(dir)
	if v := os.Getenv("NED_FAULT_AT"); v != "" && v != "0" {
		at, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		inj.AddRule(faultfs.Rule{At: at, Fault: faultfs.FaultCrash})
	}
	if v := os.Getenv("NED_FAULT_TORN_NTH"); v != "" {
		nth, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		inj.AddRule(faultfs.Rule{
			Op: faultfs.OpWrite, Path: "checkpoint-", Nth: nth, Fault: faultfs.FaultCrashTorn,
		})
	}
	defer inj.Install()()

	g := randomGraph(n, 2*n, 560)
	c, err := NewCorpus(g, 2, WithBackend(BackendLinear))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MakeDurable(dir, FsyncAlways); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.Remove(NodeID(i)); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("STEP %d\n", i)
		if i%8 == 7 {
			if err := c.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	fmt.Printf("OPS %d\n", inj.Ops())
}
