package ned

import (
	"bytes"
	"testing"
)

// benchSnapshots builds a PGP-analog corpus once and renders it in both
// persistence formats.
func benchSnapshots(b *testing.B) (text, seg []byte) {
	b.Helper()
	g := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 1.0, Seed: 1})
	c, err := NewCorpus(g, 3, WithBackend(BackendLinear))
	if err != nil {
		b.Fatal(err)
	}
	var tb, sb bytes.Buffer
	if err := c.Snapshot(&tb); err != nil {
		b.Fatal(err)
	}
	if err := c.SnapshotSegment(&sb); err != nil {
		b.Fatal(err)
	}
	return tb.Bytes(), sb.Bytes()
}

func BenchmarkLoadCorpusText(b *testing.B) {
	text, _ := benchSnapshots(b)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadCorpus(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadCorpusSegment(b *testing.B) {
	_, seg := benchSnapshots(b)
	b.SetBytes(int64(len(seg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadCorpus(bytes.NewReader(seg)); err != nil {
			b.Fatal(err)
		}
	}
}
