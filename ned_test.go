package ned

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func testGraphPair(t *testing.T) (*Graph, *Graph) {
	t.Helper()
	g1 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 1})
	g2 := MustGenerateDataset(DatasetPGP, DatasetOptions{Scale: 0.1, Seed: 2})
	return g1, g2
}

func TestPublicDistanceBasics(t *testing.T) {
	g1, g2 := testGraphPair(t)
	d := Distance(g1, 0, g2, 0, 3)
	if d < 0 {
		t.Fatalf("negative distance %d", d)
	}
	if Distance(g1, 5, g1, 5, 3) != 0 {
		t.Error("distance to self must be 0")
	}
	if Distance(g1, 3, g2, 7, 3) != Distance(g2, 7, g1, 3, 3) {
		t.Error("public Distance must be symmetric")
	}
}

func TestPublicSignatureAPI(t *testing.T) {
	g1, g2 := testGraphPair(t)
	s1 := NewSignature(g1, 4, 2)
	s2 := NewSignature(g2, 9, 2)
	if SignatureDistance(s1, s2) != Distance(g1, 4, g2, 9, 2) {
		t.Error("signature distance differs from direct distance")
	}
}

func TestPublicTEDStarAndReport(t *testing.T) {
	g1, g2 := testGraphPair(t)
	t1 := KAdjacentTree(g1, 0, 3)
	t2 := KAdjacentTree(g2, 0, 3)
	d := TEDStar(t1, t2)
	rep := TEDStarReport(t1, t2)
	if rep.Distance != d {
		t.Errorf("report distance %d != TEDStar %d", rep.Distance, d)
	}
	sum := 0
	for _, lc := range rep.Levels {
		sum += lc.Padding + lc.Matching
	}
	if sum != d {
		t.Errorf("level costs sum %d != distance %d", sum, d)
	}
	if w := WeightedTEDStar(t1, t2, UnitTEDWeights); w != float64(d) {
		t.Errorf("unit-weighted %v != %d", w, d)
	}
}

func TestPublicWeightedUpperBound(t *testing.T) {
	// δT(W+) upper-bounds exact TED on small trees (Lemma 7).
	rng := rand.New(rand.NewSource(2))
	g1, g2 := testGraphPair(t)
	checked := 0
	for i := 0; i < 400 && checked < 25; i++ {
		t1 := KAdjacentTree(g1, NodeID(rng.Intn(g1.NumNodes())), 2)
		t2 := KAdjacentTree(g2, NodeID(rng.Intn(g2.NumNodes())), 2)
		// Keep the exponential oracle fast: bushy trees with many
		// isomorphic siblings explode the mapping search above ~10 nodes.
		if t1.Size() > 10 || t2.Size() > 10 {
			continue
		}
		exact, ok := ExactTED(t1, t2)
		if !ok {
			continue
		}
		checked++
		if w := WeightedTEDStar(t1, t2, UpperBoundTEDWeights); w < float64(exact)-1e-9 {
			t.Fatalf("W+ %v < exact TED %d", w, exact)
		}
	}
	if checked == 0 {
		t.Skip("no small-enough trees sampled")
	}
}

func TestPublicExactOracles(t *testing.T) {
	g1, g2 := testGraphPair(t)
	t1 := KAdjacentTree(g1, 0, 1)
	t2 := KAdjacentTree(g2, 0, 1)
	if t1.Size() <= 16 && t2.Size() <= 16 {
		if _, ok := ExactTED(t1, t2); !ok {
			t.Error("ExactTED refused small trees")
		}
	}
	if d, ok := ExactTEDStar(KAdjacentTree(g1, 0, 0), KAdjacentTree(g2, 0, 0)); !ok || d != 0 {
		t.Errorf("ExactTEDStar on roots = %d/%v, want 0/true", d, ok)
	}
	b1 := NewGraphBuilder(3, false)
	b1.AddEdge(0, 1)
	b1.AddEdge(1, 2)
	small1 := b1.Build()
	if d, ok := ExactGED(small1, small1); !ok || d != 0 {
		t.Errorf("ExactGED self = %d/%v", d, ok)
	}
}

func TestPublicVPIndexMatchesScan(t *testing.T) {
	g1, g2 := testGraphPair(t)
	rng := rand.New(rand.NewSource(3))
	var nodes []NodeID
	for i := 0; i < 120; i++ {
		nodes = append(nodes, NodeID(rng.Intn(g2.NumNodes())))
	}
	cands := Signatures(g2, nodes, 2)
	index := NewVPIndex(cands)
	if index.Len() != len(cands) {
		t.Fatalf("index Len = %d", index.Len())
	}
	for q := 0; q < 15; q++ {
		query := NewSignature(g1, NodeID(rng.Intn(g1.NumNodes())), 2)
		got := index.KNN(query, 1)
		want := TopL(query, cands, 1)
		if len(got) != 1 || len(want) != 1 {
			t.Fatal("missing results")
		}
		// The nearest distance must agree even if tie nodes differ.
		if got[0].Dist != want[0].Dist {
			t.Fatalf("query %d: VP dist %d != scan dist %d", q, got[0].Dist, want[0].Dist)
		}
	}
}

func TestPublicVPIndexRange(t *testing.T) {
	g1, g2 := testGraphPair(t)
	var nodes []NodeID
	for i := 0; i < 80; i++ {
		nodes = append(nodes, NodeID(i))
	}
	cands := Signatures(g2, nodes, 2)
	index := NewVPIndex(cands)
	query := NewSignature(g1, 0, 2)
	within := index.Range(query, 5)
	// Cross-check against a scan.
	scan := 0
	for _, c := range cands {
		if SignatureDistance(query, c) <= 5 {
			scan++
		}
	}
	if len(within) != scan {
		t.Errorf("range found %d, scan %d", len(within), scan)
	}
	for _, r := range within {
		if r.Dist > 5 {
			t.Errorf("range result at distance %d", r.Dist)
		}
	}
}

func TestPublicNearestSetAndTopL(t *testing.T) {
	g1, g2 := testGraphPair(t)
	var nodes []NodeID
	for i := 0; i < 60; i++ {
		nodes = append(nodes, NodeID(i))
	}
	cands := Signatures(g2, nodes, 2)
	query := NewSignature(g1, 0, 2)
	nn := NearestSet(query, cands)
	top := TopL(query, cands, 5)
	if len(nn) == 0 || len(top) == 0 {
		t.Fatal("empty results")
	}
	if nn[0].Dist != top[0].Dist {
		t.Error("NearestSet and TopL disagree on the minimum")
	}
}

func TestPublicAnonymizationRoundTrip(t *testing.T) {
	g1, _ := testGraphPair(t)
	anon := AnonymizeNaive(g1, 7)
	if anon.Graph.NumEdges() != g1.NumEdges() {
		t.Error("naive anonymization changed edges")
	}
	// Structure is intact, so at k=1 (the ego-net star, whose BFS tree is
	// canonical) the NED between an anon node and its original is always
	// 0. At deeper k the BFS parent assignment tie-breaks on node IDs,
	// which the permutation changes, so a small nonzero distance can
	// appear even between truly corresponding nodes — the same effect
	// that keeps the paper's de-anonymization precision below 1.0.
	// Assert exactness at k=1 and discriminativeness at k=3: the true
	// original must be far closer than a random decoy on average.
	for v := 0; v < 20; v++ {
		orig := anon.Identity[v]
		if d := Distance(anon.Graph, NodeID(v), g1, orig, 1); d != 0 {
			t.Fatalf("anon node %d vs original %d at k=1: distance %d, want 0", v, orig, d)
		}
	}
	rng := rand.New(rand.NewSource(11))
	sumTrue, sumDecoy := 0, 0
	for v := 0; v < 20; v++ {
		orig := anon.Identity[v]
		sumTrue += Distance(anon.Graph, NodeID(v), g1, orig, 3)
		decoy := NodeID(rng.Intn(g1.NumNodes()))
		sumDecoy += Distance(anon.Graph, NodeID(v), g1, decoy, 3)
	}
	if sumTrue >= sumDecoy {
		t.Errorf("true originals (total %d) should be closer than random decoys (total %d)",
			sumTrue, sumDecoy)
	}
	sp := AnonymizeSparsify(g1, 0.1, 8)
	if sp.Graph.NumEdges() >= g1.NumEdges() {
		t.Error("sparsify did not remove edges")
	}
	pt := AnonymizePerturb(g1, 0.1, 9)
	if pt.Graph.NumEdges() != g1.NumEdges() {
		t.Error("perturb changed edge count")
	}
}

func TestPublicHausdorff(t *testing.T) {
	g1, _ := testGraphPair(t)
	if h := Hausdorff(g1, g1, 1); h != 0 {
		t.Errorf("H(g,g) = %d, want 0", h)
	}
	var a, b []NodeID
	for i := 0; i < 20; i++ {
		a = append(a, NodeID(i))
		b = append(b, NodeID(i+5))
	}
	if h := HausdorffSampled(g1, a, g1, b, 2); h < 0 {
		t.Errorf("negative Hausdorff %d", h)
	}
}

func TestPublicDirectedDistance(t *testing.T) {
	b := NewGraphBuilder(4, true)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(3, 0)
	g := b.Build()
	if d := DistanceDirected(g, 0, g, 0, 2); d != 0 {
		t.Errorf("directed self distance = %d", d)
	}
	if d := DistanceDirected(g, 0, g, 3, 2); d == 0 {
		t.Error("different directed roles should differ")
	}
}

func TestPublicEdgeListRoundTrip(t *testing.T) {
	g1, _ := testGraphPair(t)
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := SaveEdgeList(path, g1); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g1.NumNodes() || g2.NumEdges() != g1.NumEdges() {
		t.Errorf("round trip changed graph: %v -> %v", g1, g2)
	}
	if _, err := LoadEdgeList(filepath.Join(t.TempDir(), "missing.edges"), false); err == nil {
		t.Error("want error for missing file")
	}
}

func TestPublicDatasetSummary(t *testing.T) {
	for _, name := range AllDatasets {
		g, err := GenerateDataset(name, DatasetOptions{Scale: 0.05, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		s := SummarizeDataset(name, g)
		if s.Nodes != g.NumNodes() {
			t.Errorf("%s: summary nodes %d != %d", name, s.Nodes, g.NumNodes())
		}
	}
	if _, err := GenerateDataset("BOGUS", DatasetOptions{}); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestPublicBatchAPI(t *testing.T) {
	g1, g2 := testGraphPair(t)
	var nodes []NodeID
	for v := 0; v < 40; v++ {
		nodes = append(nodes, NodeID(v))
	}
	serial := Signatures(g1, nodes, 2)
	par := SignaturesParallel(g1, nodes, 2, BatchOptions{Workers: 6})
	for i := range par {
		if SignatureDistance(serial[i], par[i]) != 0 {
			t.Fatalf("parallel signature %d differs", i)
		}
	}
	bs := Signatures(g2, nodes[:10], 2)
	m := DistanceMatrix(serial[:5], bs, BatchOptions{})
	if len(m) != 5 || len(m[0]) != 10 {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	if m[0][0] != SignatureDistance(serial[0], bs[0]) {
		t.Error("matrix entry mismatch")
	}
	q := NewSignature(g1, 0, 2)
	a := TopL(q, bs, 3)
	b := TopLParallel(q, bs, 3, BatchOptions{Workers: 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel TopL rank %d mismatch", i)
		}
	}
}

func TestPublicSignaturePersistence(t *testing.T) {
	g1, _ := testGraphPair(t)
	sigs := Signatures(g1, []NodeID{0, 1, 2, 3}, 2)
	path := filepath.Join(t.TempDir(), "sigs.nedsig")
	if err := SaveSignatures(path, sigs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSignatures(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sigs) {
		t.Fatalf("loaded %d, want %d", len(back), len(sigs))
	}
	for i := range back {
		if SignatureDistance(back[i], sigs[i]) != 0 {
			t.Fatalf("signature %d changed on disk", i)
		}
	}
}

func TestPublicPrunedQueries(t *testing.T) {
	g1, g2 := testGraphPair(t)
	var nodes []NodeID
	for v := 0; v < 100; v++ {
		nodes = append(nodes, NodeID(v))
	}
	cands := Signatures(g2, nodes, 2)
	q := NewSignature(g1, 0, 2)
	want := TopL(q, cands, 5)
	got, stats := PrunedTopL(q, cands, 5)
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("rank %d: %d vs %d", i, got[i].Dist, want[i].Dist)
		}
	}
	if stats.FullEvaluations+stats.PrunedByBound+stats.EarlyExits != len(cands) {
		t.Errorf("stats incomplete: %+v", stats)
	}
	if lb := DistanceLowerBound(q, cands[0]); lb > SignatureDistance(q, cands[0]) {
		t.Error("lower bound exceeds distance")
	}
	if pd := PrefixDistance(q, cands[0], 0); pd != 0 {
		t.Errorf("depth-0 prefix = %d", pd)
	}
}

func TestPublicBKIndex(t *testing.T) {
	g1, g2 := testGraphPair(t)
	var nodes []NodeID
	for v := 0; v < 80; v++ {
		nodes = append(nodes, NodeID(v))
	}
	cands := Signatures(g2, nodes, 2)
	bk := NewBKIndex(cands)
	if bk.Len() != 80 {
		t.Fatalf("Len = %d", bk.Len())
	}
	q := NewSignature(g1, 3, 2)
	got := bk.KNN(q, 1)
	want := TopL(q, cands, 1)
	if len(got) != 1 || got[0].Dist != want[0].Dist {
		t.Errorf("BK nearest %+v, scan %+v", got, want)
	}
	inRange := bk.Range(q, 3)
	for _, r := range inRange {
		if r.Dist > 3 {
			t.Errorf("range hit at %d", r.Dist)
		}
	}
}

func TestPublicStatsAndRoleSim(t *testing.T) {
	g1, _ := testGraphPair(t)
	s := ComputeGraphStats(g1)
	if s.Nodes != g1.NumNodes() || s.Edges != g1.NumEdges() {
		t.Errorf("stats mismatch: %+v", s)
	}
	if h := DegreeHistogram(g1); len(h) != s.MaxDegree+1 {
		t.Errorf("histogram length %d, max degree %d", len(h), s.MaxDegree)
	}
	small := NewGraphBuilder(4, false)
	small.AddEdge(0, 1)
	small.AddEdge(1, 2)
	small.AddEdge(2, 3)
	sg := small.Build()
	score := RoleSimScores(sg)
	if score(0, 0) != 1 {
		t.Error("RoleSim self-similarity should be 1")
	}
	if score(0, 3) != score(3, 0) {
		t.Error("RoleSim must be symmetric")
	}
	gl := GraphletFeatures(sg, 1)
	if len(gl) != 7 {
		t.Errorf("graphlet features = %d, want 7", len(gl))
	}
	sr := SimRankScores(sg)
	if sr(1, 1) != 1 {
		t.Error("SimRank self-similarity should be 1")
	}
}

func TestPublicBaselines(t *testing.T) {
	g1, g2 := testGraphPair(t)
	f1 := RegionalFeatures(g1, 0, 2)
	f2 := RegionalFeatures(g2, 0, 2)
	if len(f1) != len(f2) || len(f1) == 0 {
		t.Fatalf("feature lengths %d/%d", len(f1), len(f2))
	}
	if d := FeatureL1(f1, f2); d < 0 {
		t.Errorf("negative L1 %v", d)
	}
	ns := NetSimileFeatures(g1, 0)
	if len(ns) != 7 {
		t.Errorf("NetSimile features = %d, want 7", len(ns))
	}
	// HITS on small capped graphs.
	small1 := MustGenerateDataset(DatasetGNU, DatasetOptions{Scale: 0.02, Seed: 1})
	small2 := MustGenerateDataset(DatasetGNU, DatasetOptions{Scale: 0.02, Seed: 2})
	score := HITSScores(small1, small2)
	if s := score(0, 0); s < 0 {
		t.Errorf("negative HITS score %v", s)
	}
}
