package ned

import (
	"context"

	"ned/internal/baseline"
	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/ted"
)

// This file exposes the optional extensions built on top of the paper:
// query pruning via lower bounds, the BK-tree index alternative, the
// graphlet feature baseline, and graph statistics. Like the rest of the
// free functions, these are the low-level layer beneath the Corpus
// query engine (see corpus.go).

// TEDStarLowerBound returns the O(height) padding lower bound on the
// TED* distance: the summed level-size differences. Every edit script
// pays at least this much in leaf insertions/deletions.
func TEDStarLowerBound(t1, t2 *Tree) int { return ted.LowerBound(t1, t2) }

// DistanceLowerBound is the padding lower bound on NED between two
// signatures — valid for pruning because it never exceeds
// SignatureDistance(a, b).
func DistanceLowerBound(a, b Signature) int { return ned.LowerBound(a, b) }

// PrefixDistance evaluates NED on depth-truncated signatures, the §10
// monotonicity heuristic: cheap and usually close to the full distance.
func PrefixDistance(a, b Signature, kPrefix int) int {
	return ned.PrefixDistance(a, b, kPrefix)
}

// PruneStats reports the work profile of a pruned query.
type PruneStats = ned.PruneStats

// PrunedTopL answers TopL while skipping candidates that the padding
// lower bound proves cannot rank, returning the same distances as TopL
// plus the pruning statistics.
func PrunedTopL(query Signature, candidates []Signature, l int) ([]Neighbor, PruneStats) {
	return ned.PrunedTopL(query, candidates, l)
}

// BKIndex is the low-level Burkhard–Keller tree index over node
// signatures: an alternative metric index specialized to the integer
// distances NED produces. It is a thin wrapper over the same backend
// Corpus serves from with BackendBK; prefer NewCorpus for serving
// workloads.
type BKIndex struct {
	ix ned.Index
}

// NewBKIndex builds a BK-tree over the signatures.
func NewBKIndex(sigs []Signature) *BKIndex {
	return &BKIndex{ix: ned.NewBKBackend(ned.ItemsOf(sigs))}
}

// KNN returns the l nearest indexed signatures to the query.
func (ix *BKIndex) KNN(query Signature, l int) []Neighbor {
	res, _ := ix.ix.KNN(context.Background(), query.Item(), l)
	return res
}

// Range returns all indexed signatures within NED distance r.
func (ix *BKIndex) Range(query Signature, r int) []Neighbor {
	res, _ := ix.ix.Range(context.Background(), query.Item(), r)
	return res
}

// Len reports how many signatures are indexed.
func (ix *BKIndex) Len() int { return ix.ix.Len() }

// DistanceCalls reports metric evaluations since the last ResetStats.
func (ix *BKIndex) DistanceCalls() int64 { return ix.ix.DistanceCalls() }

// ResetStats zeroes the metric-evaluation counter.
func (ix *BKIndex) ResetStats() { ix.ix.ResetStats() }

// GraphletFeatures computes the graphlet-degree feature vector of a node
// (the §2 graphlet baseline family, up to 4-node patterns).
func GraphletFeatures(g *Graph, v NodeID) FeatureVector {
	return baseline.GraphletFeatures(g, v)
}

// SimRankScores computes the intra-graph SimRank similarity matrix of g
// (the §2 link-based baseline) and returns a scorer. SimRank cannot
// compare inter-graph nodes: see SimRankInterGraph.
func SimRankScores(g *Graph) func(a, b NodeID) float64 {
	sr := baseline.NewSimRank(g, baseline.SimRankOptions{})
	return sr.Score
}

// SimRankInterGraph runs SimRank on the disjoint union of two graphs and
// returns the score of the cross-graph pair — identically zero, which is
// the executable form of the paper's §2 argument that link-based
// similarities cannot compare inter-graph nodes.
func SimRankInterGraph(ga *Graph, u NodeID, gb *Graph, v NodeID) float64 {
	return baseline.SimRankInterGraph(ga, u, gb, v, baseline.SimRankOptions{})
}

// BatchOptions controls the worker count of parallel batch operations.
type BatchOptions = ned.BatchOptions

// SignaturesParallel extracts signatures concurrently; output order
// matches the input order.
func SignaturesParallel(g *Graph, nodes []NodeID, k int, opts BatchOptions) []Signature {
	return ned.SignaturesParallel(g, nodes, k, opts)
}

// DistanceMatrix computes the full pairwise NED matrix between two
// signature sets in parallel.
func DistanceMatrix(as, bs []Signature, opts BatchOptions) [][]int {
	return ned.DistanceMatrix(as, bs, opts)
}

// TopLParallel is TopL with candidate distances evaluated concurrently.
func TopLParallel(query Signature, candidates []Signature, l int, opts BatchOptions) []Neighbor {
	return ned.TopLParallel(query, candidates, l, opts)
}

// SaveSignatures persists precomputed signatures to a text file.
func SaveSignatures(path string, sigs []Signature) error {
	return ned.SaveSignaturesFile(path, sigs)
}

// LoadSignatures reads signatures written by SaveSignatures.
func LoadSignatures(path string) ([]Signature, error) {
	return ned.LoadSignaturesFile(path)
}

// RoleSimScores computes the intra-graph RoleSim role similarity (§8's
// axiomatic measure) with exact Hungarian neighbor matching and returns
// a scorer function. Small graphs only.
func RoleSimScores(g *Graph) func(a, b NodeID) float64 {
	rs := baseline.NewRoleSim(g, baseline.RoleSimOptions{})
	return rs.Score
}

// GraphStats aggregates structural measurements of a graph.
type GraphStats = graph.Stats

// ComputeGraphStats measures a graph (clustering, components,
// approximate diameter, assortativity, ...).
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// DegreeHistogram returns counts[d] = number of nodes of degree d.
func DegreeHistogram(g *Graph) []int { return graph.DegreeHistogram(g) }
