package ned

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file is the adaptive-sharding equivalence suite: whatever the
// rebalancer does to the placement table — split a hot shard, fold
// quiet ones, any interleaving with churn — answers must stay
// node-identical to an untouched single-shard corpus, and the
// placement must survive every persistence path (text snapshot, binary
// segment, durable checkpoint). The race variant is the CI -race
// target for rebalance-under-churn.

// hotNodes returns nodes that hash-place into shard slot 0 of a
// base-shard layout — churning exactly these makes slot 0 the hot
// shard by construction.
func hotNodes(g *Graph, base, want int) []NodeID {
	out := make([]NodeID, 0, want)
	for v := 0; v < g.NumNodes() && len(out) < want; v++ {
		if HashShard(NodeID(v), base) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// churnHot drives rounds of Remove+Insert over the hot set, restoring
// membership each round so only contention counters change.
func churnHot(t *testing.T, c *Corpus, hot []NodeID, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		if err := c.Remove(hot...); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		if err := c.Insert(hot...); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
}

// aggressivePolicy makes a single churned shard split on the first
// tick: tiny size floor, one mutation suffices, 10% of the tick score
// counts as hot.
func aggressivePolicy() RebalancePolicy {
	return RebalancePolicy{MinShardNodes: 4, SplitMinMutations: 1, SplitFraction: 0.1}
}

// TestRebalanceSplitsHotShard: concentrated churn on one shard must
// make RebalanceTick split exactly that shard, record the moves in the
// placement table, and leave answers node-identical to a fresh
// single-shard corpus. A quiet follow-up tick must then fold the two
// smallest shards back together, again without answer drift.
func TestRebalanceSplitsHotShard(t *testing.T) {
	g := randomGraph(400, 1200, 3)
	const k, base = 2, 4
	c, err := NewCorpus(g, k, WithBackend(BackendPrunedLinear), WithShards(base))
	if err != nil {
		t.Fatalf("NewCorpus: %v", err)
	}
	ref, err := NewCorpus(g, k, WithBackend(BackendPrunedLinear), WithShards(1))
	if err != nil {
		t.Fatalf("NewCorpus(ref): %v", err)
	}
	want := queryFingerprint(t, ref, g, k)
	if got := queryFingerprint(t, c, g, k); got != want {
		t.Fatalf("pre-rebalance answers already diverge:\n got %s\nwant %s", got, want)
	}

	hot := hotNodes(g, base, 32)
	churnHot(t, c, hot, 4)

	res := c.RebalanceTick(aggressivePolicy())
	if res.Split != 0 {
		t.Fatalf("tick split shard %d, want the churned shard 0 (result %+v)", res.Split, res)
	}
	if res.NewShard != base {
		t.Errorf("split filed moves under slot %d, want appended slot %d", res.NewShard, base)
	}
	if res.Moved == 0 {
		t.Error("split moved no nodes")
	}
	s := c.Stats()
	if s.ShardSplits != 1 || s.Rebalances != 1 {
		t.Errorf("stats after split: splits=%d rebalances=%d, want 1/1", s.ShardSplits, s.Rebalances)
	}
	if s.PlacementOverrides == 0 {
		t.Error("split recorded no placement overrides")
	}
	if s.PlacementBase != base {
		t.Errorf("placement base %d changed by split, want %d", s.PlacementBase, base)
	}
	if s.Shards != base+1 {
		t.Errorf("shard slots %d after split, want %d", s.Shards, base+1)
	}
	if got := queryFingerprint(t, c, g, k); got != want {
		t.Errorf("post-split answers diverge:\n got %s\nwant %s", got, want)
	}

	// Quiet tick with a huge merge ceiling: every shard is now below
	// MinShardNodes and untouched since the split, so the two smallest
	// fold together.
	res = c.RebalanceTick(RebalancePolicy{MinShardNodes: 500})
	if res.MergedSrc < 0 || res.MergedDst < 0 {
		t.Fatalf("quiet tick did not merge: %+v", res)
	}
	if res.Split != -1 {
		t.Errorf("quiet tick also split shard %d", res.Split)
	}
	s = c.Stats()
	if s.ShardMerges != 1 {
		t.Errorf("stats after merge: merges=%d, want 1", s.ShardMerges)
	}
	if got := queryFingerprint(t, c, g, k); got != want {
		t.Errorf("post-merge answers diverge:\n got %s\nwant %s", got, want)
	}
}

// TestRebalanceEquivalenceAllBackends interleaves churn and rebalance
// ticks on every backend and requires node-identical answers to an
// identically-churned single-shard reference after every round.
func TestRebalanceEquivalenceAllBackends(t *testing.T) {
	g := randomGraph(300, 900, 9)
	const k = 2
	for _, b := range allBackends {
		label := fmt.Sprintf("%v", b)
		c, err := NewCorpus(g, k, WithBackend(b), WithShards(4))
		if err != nil {
			t.Fatalf("%s: NewCorpus: %v", label, err)
		}
		ref, err := NewCorpus(g, k, WithBackend(b), WithShards(1))
		if err != nil {
			t.Fatalf("%s: NewCorpus(ref): %v", label, err)
		}
		queryFingerprint(t, c, g, k) // materialize both engines
		queryFingerprint(t, ref, g, k)

		rng := rand.New(rand.NewSource(int64(b) + 1))
		for round := 0; round < 3; round++ {
			victims := make([]NodeID, 0, 16)
			for len(victims) < 16 {
				victims = append(victims, NodeID(rng.Intn(g.NumNodes())))
			}
			back := victims[:len(victims)/2]
			for _, cc := range []*Corpus{c, ref} {
				if err := cc.Remove(victims...); err != nil {
					t.Fatalf("%s: Remove: %v", label, err)
				}
				if err := cc.Insert(back...); err != nil {
					t.Fatalf("%s: Insert: %v", label, err)
				}
			}
			c.RebalanceTick(aggressivePolicy())
			want := queryFingerprint(t, ref, g, k)
			if got := queryFingerprint(t, c, g, k); got != want {
				t.Errorf("%s: round %d answers diverge:\n got %s\nwant %s", label, round, got, want)
			}
		}
	}
}

// TestPlacementSnapshotRoundTrips: a rebalanced placement must survive
// the text snapshot (as a v3 manifest), the binary segment, and be
// deliberately dropped when WithShards overrides the recorded layout —
// all without answer drift. A never-rebalanced corpus must keep
// writing byte-stable v2 text snapshots.
func TestPlacementSnapshotRoundTrips(t *testing.T) {
	g := randomGraph(400, 1200, 5)
	const k, base = 2, 4
	c, err := NewCorpus(g, k, WithBackend(BackendPrunedLinear), WithShards(base))
	if err != nil {
		t.Fatalf("NewCorpus: %v", err)
	}
	want := queryFingerprint(t, c, g, k)
	churnHot(t, c, hotNodes(g, base, 32), 4)
	if res := c.RebalanceTick(aggressivePolicy()); res.Split != 0 {
		t.Fatalf("setup split did not happen: %+v", res)
	}
	overrides := c.Stats().PlacementOverrides
	if overrides == 0 {
		t.Fatal("setup split recorded no placement overrides")
	}
	if got := queryFingerprint(t, c, g, k); got != want {
		t.Fatalf("post-split answers diverge:\n got %s\nwant %s", got, want)
	}

	var text bytes.Buffer
	if err := c.Snapshot(&text); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if !strings.HasPrefix(text.String(), "# ned corpus v3 ") {
		t.Errorf("rebalanced snapshot header %q, want a v3 manifest", firstLine(text.String()))
	}

	c2, err := LoadCorpus(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatalf("LoadCorpus(text): %v", err)
	}
	if got := c2.Stats().PlacementOverrides; got != overrides {
		t.Errorf("text round-trip placement overrides %d, want %d", got, overrides)
	}
	if got := queryFingerprint(t, c2, g, k); got != want {
		t.Errorf("text round-trip answers diverge:\n got %s\nwant %s", got, want)
	}

	// WithShards overrides the recorded layout: the placement no longer
	// describes the slot count and must be dropped, answers unchanged.
	c3, err := LoadCorpus(bytes.NewReader(text.Bytes()), WithShards(3))
	if err != nil {
		t.Fatalf("LoadCorpus(WithShards(3)): %v", err)
	}
	if got := c3.Stats().PlacementOverrides; got != 0 {
		t.Errorf("WithShards override kept %d placement overrides, want 0", got)
	}
	if got := queryFingerprint(t, c3, g, k); got != want {
		t.Errorf("WithShards override answers diverge:\n got %s\nwant %s", got, want)
	}

	var seg bytes.Buffer
	if err := c.SnapshotSegment(&seg); err != nil {
		t.Fatalf("SnapshotSegment: %v", err)
	}
	c4, err := LoadCorpus(bytes.NewReader(seg.Bytes()))
	if err != nil {
		t.Fatalf("LoadCorpus(segment): %v", err)
	}
	if got := c4.Stats().PlacementOverrides; got != overrides {
		t.Errorf("segment round-trip placement overrides %d, want %d", got, overrides)
	}
	if got := queryFingerprint(t, c4, g, k); got != want {
		t.Errorf("segment round-trip answers diverge:\n got %s\nwant %s", got, want)
	}

	// A corpus that never rebalanced keeps the placement trivial and
	// the text snapshot byte-stable at v2.
	plain, err := NewCorpus(g, k, WithShards(base))
	if err != nil {
		t.Fatalf("NewCorpus(plain): %v", err)
	}
	var v2 bytes.Buffer
	if err := plain.Snapshot(&v2); err != nil {
		t.Fatalf("Snapshot(plain): %v", err)
	}
	if !strings.HasPrefix(v2.String(), "# ned corpus v2 ") {
		t.Errorf("trivial-placement snapshot header %q, want v2", firstLine(v2.String()))
	}
}

// TestPlacementDurableRoundTrip: a rebalanced placement must land in
// the durable checkpoint and come back through OpenDurable with
// node-identical answers.
func TestPlacementDurableRoundTrip(t *testing.T) {
	g := randomGraph(400, 1200, 13)
	const k, base = 2, 4
	c, err := NewCorpus(g, k, WithBackend(BackendPrunedLinear), WithShards(base))
	if err != nil {
		t.Fatalf("NewCorpus: %v", err)
	}
	dir := t.TempDir()
	if err := c.MakeDurable(dir, FsyncAlways); err != nil {
		t.Fatalf("MakeDurable: %v", err)
	}
	want := queryFingerprint(t, c, g, k)
	churnHot(t, c, hotNodes(g, base, 32), 4)
	if res := c.RebalanceTick(aggressivePolicy()); res.Split != 0 {
		t.Fatalf("setup split did not happen: %+v", res)
	}
	overrides := c.Stats().PlacementOverrides
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := c.CloseDurable(); err != nil {
		t.Fatalf("CloseDurable: %v", err)
	}

	c2, err := OpenDurable(dir, FsyncAlways)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer func() {
		if err := c2.CloseDurable(); err != nil {
			t.Errorf("CloseDurable(reopened): %v", err)
		}
	}()
	if got := c2.Stats().PlacementOverrides; got != overrides {
		t.Errorf("durable round-trip placement overrides %d, want %d", got, overrides)
	}
	if got := queryFingerprint(t, c2, g, k); got != want {
		t.Errorf("durable round-trip answers diverge:\n got %s\nwant %s", got, want)
	}
}

// TestRebalanceUnderChurnRace runs queries, mutations, synchronous
// ticks, and the background rebalancer all at once — the CI -race
// target — then requires the settled corpus to answer node-identically
// to a fresh single-shard corpus over the same membership.
func TestRebalanceUnderChurnRace(t *testing.T) {
	g := randomGraph(200, 600, 17)
	const k = 2
	c, err := NewCorpus(g, k, WithBackend(BackendPrunedLinear), WithShards(4))
	if err != nil {
		t.Fatalf("NewCorpus: %v", err)
	}
	queryFingerprint(t, c, g, k) // materialize before the storm

	stop := c.StartRebalancer(RebalancePolicy{
		Interval: 2 * time.Millisecond, MinShardNodes: 4,
		SplitMinMutations: 1, SplitFraction: 0.1,
	})

	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				sig := NewSignature(g, NodeID((i*13+seed*7)%g.NumNodes()), k)
				if _, err := c.KNNSignature(ctx, sig, 5); err != nil {
					t.Errorf("KNNSignature: %v", err)
					return
				}
				if _, err := c.Range(ctx, sig, 2); err != nil {
					t.Errorf("Range: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for r := 0; r < 40; r++ {
			batch := make([]NodeID, 0, 8)
			for len(batch) < 8 {
				batch = append(batch, NodeID(rng.Intn(g.NumNodes())))
			}
			if err := c.Remove(batch...); err != nil {
				t.Errorf("Remove: %v", err)
				return
			}
			if err := c.Insert(batch...); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			c.RebalanceTick(aggressivePolicy())
		}
	}()
	wg.Wait()
	stop()
	stop() // idempotent

	ref, err := NewCorpus(g, k, WithBackend(BackendPrunedLinear), WithShards(1))
	if err != nil {
		t.Fatalf("NewCorpus(ref): %v", err)
	}
	want := queryFingerprint(t, ref, g, k)
	if got := queryFingerprint(t, c, g, k); got != want {
		t.Errorf("settled answers diverge from fresh single-shard corpus:\n got %s\nwant %s", got, want)
	}
	if s := c.Stats(); s.Rebalances == 0 {
		t.Error("no rebalance ticks were recorded during the storm")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
