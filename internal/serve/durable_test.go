package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"ned"
)

// knnAnswers fingerprints a few KNN answers over the API.
func knnAnswers(t *testing.T, base, name string, nodes []int) string {
	t.Helper()
	out := ""
	for _, v := range nodes {
		var resp QueryResponse
		status, raw := postJSON(t, base+"/v1/corpora/"+name+"/knn", KNNRequest{Node: v, L: 4}, &resp)
		if status != http.StatusOK {
			t.Fatalf("knn(%d): status %d, body %s", v, status, raw)
		}
		out += fmt.Sprintf("%d:%v\n", v, resp.Neighbors)
	}
	return out
}

// TestServeDurableRestart drives the full durable serving lifecycle:
// create over the API (which attaches a durable directory), mutate,
// drain (checkpoint + close), then boot a second server over the same
// data directory and check the tenant comes back answering
// identically — mutations included.
func TestServeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: ned.FsyncNone, CoalesceWindow: -1}
	s1, ts1 := newTestServer(t, opts)

	gs := ringSpec(60)
	mustCreate(t, ts1.URL, CreateRequest{Name: "ring", K: 2, Backend: "linear", Graph: gs})
	if !ned.HasDurableState(filepath.Join(dir, "ring")) {
		t.Fatal("create left no durable state on disk")
	}

	// Mutate: remove a handful, re-insert one.
	var resp map[string]any
	status, raw := postJSON(t, ts1.URL+"/v1/corpora/ring/remove", NodesRequest{Nodes: []int{3, 9, 27, 41}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("remove: status %d, body %s", status, raw)
	}
	status, raw = postJSON(t, ts1.URL+"/v1/corpora/ring/insert", NodesRequest{Nodes: []int{9}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("insert: status %d, body %s", status, raw)
	}

	probes := []int{0, 5, 9, 30, 55}
	want := knnAnswers(t, ts1.URL, "ring", probes)

	if err := s1.CloseTenants(); err != nil {
		t.Fatalf("CloseTenants: %v", err)
	}
	ts1.Close()

	// Second server, same data directory: the tenant must recover.
	s2, ts2 := newTestServer(t, opts)
	recovered, err := s2.BootDurable()
	if err != nil {
		t.Fatalf("BootDurable: %v", err)
	}
	if len(recovered) != 1 || recovered[0] != "ring" {
		t.Fatalf("recovered %v, want [ring]", recovered)
	}
	tenant, err := s2.Registry().Get("ring")
	if err != nil {
		t.Fatalf("recovered tenant not registered: %v", err)
	}
	if tenant.K != 2 || tenant.Directed || !tenant.HasGraph {
		t.Fatalf("recovered tenant metadata: %+v", tenant)
	}
	if got := knnAnswers(t, ts2.URL, "ring", probes); got != want {
		t.Fatalf("answers diverged across restart:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if cs := tenant.Corpus.Stats(); cs.Nodes != 60-3 {
		t.Fatalf("recovered %d nodes, want %d", cs.Nodes, 60-3)
	}

	// The recovered tenant keeps journaling: mutate, reopen once more.
	status, raw = postJSON(t, ts2.URL+"/v1/corpora/ring/remove", NodesRequest{Nodes: []int{5}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("remove after recovery: status %d, body %s", status, raw)
	}
	if err := s2.CloseTenants(); err != nil {
		t.Fatalf("CloseTenants: %v", err)
	}
	s3, _ := newTestServer(t, opts)
	if _, err := s3.BootDurable(); err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	t3, err := s3.Registry().Get("ring")
	if err != nil {
		t.Fatal(err)
	}
	if cs := t3.Corpus.Stats(); cs.Nodes != 60-4 {
		t.Fatalf("after second recovery: %d nodes, want %d", cs.Nodes, 60-4)
	}
	if err := s3.CloseTenants(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDurableRecoveryWithoutDrain boots from a directory whose
// server never drained: the mutation log tail alone must carry the
// mutations.
func TestServeDurableRecoveryWithoutDrain(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: ned.FsyncNone, CoalesceWindow: -1}
	_, ts1 := newTestServer(t, opts)
	mustCreate(t, ts1.URL, CreateRequest{Name: "ring", K: 2, Backend: "vp", Graph: ringSpec(40)})
	var resp map[string]any
	status, raw := postJSON(t, ts1.URL+"/v1/corpora/ring/remove", NodesRequest{Nodes: []int{1, 2, 3}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("remove: status %d, body %s", status, raw)
	}
	ts1.Close() // no CloseTenants: simulates a crash after the commits

	s2, _ := newTestServer(t, opts)
	if _, err := s2.BootDurable(); err != nil {
		t.Fatalf("BootDurable: %v", err)
	}
	t2, err := s2.Registry().Get("ring")
	if err != nil {
		t.Fatal(err)
	}
	if cs := t2.Corpus.Stats(); cs.Nodes != 37 {
		t.Fatalf("recovered %d nodes, want 37", cs.Nodes)
	}
	if err := s2.CloseTenants(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDurableDropDeletesState checks drop removes the tenant's
// directory and frees the name for re-creation.
func TestServeDurableDropDeletesState(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: ned.FsyncNone, CoalesceWindow: -1}
	_, ts := newTestServer(t, opts)
	mustCreate(t, ts.URL, CreateRequest{Name: "ring", K: 2, Graph: ringSpec(20)})

	// A second create under the taken name must not disturb the state.
	status, _ := postJSON(t, ts.URL+"/v1/corpora", CreateRequest{Name: "ring", K: 2, Graph: ringSpec(20)}, nil)
	if status != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", status)
	}
	if !ned.HasDurableState(filepath.Join(dir, "ring")) {
		t.Fatal("duplicate create destroyed the original tenant's state")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/corpora/ring", nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("drop: status %d", r.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "ring")); !os.IsNotExist(err) {
		t.Fatalf("tenant directory survived the drop: %v", err)
	}
	mustCreate(t, ts.URL, CreateRequest{Name: "ring", K: 3, Graph: ringSpec(20)})
}

// TestServeAutoCheckpoint crosses CheckpointEvery and checks the log
// was truncated by a fresh checkpoint.
func TestServeAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: ned.FsyncNone, CheckpointEvery: 3, CoalesceWindow: -1}
	s, ts := newTestServer(t, opts)
	mustCreate(t, ts.URL, CreateRequest{Name: "ring", K: 2, Backend: "linear", Graph: ringSpec(30)})
	var resp map[string]any
	for i := 0; i < 3; i++ {
		status, raw := postJSON(t, ts.URL+"/v1/corpora/ring/remove", NodesRequest{Nodes: []int{i}}, &resp)
		if status != http.StatusOK {
			t.Fatalf("remove %d: status %d, body %s", i, status, raw)
		}
	}
	tenant, err := s.Registry().Get("ring")
	if err != nil {
		t.Fatal(err)
	}
	recs, _, durable := tenant.Corpus.DurableStats()
	if !durable || recs != 0 {
		t.Fatalf("after crossing CheckpointEvery: %d log records (durable=%v), want 0", recs, durable)
	}
	if err := s.CloseTenants(); err != nil {
		t.Fatal(err)
	}
}

// TestServeNonDurableUnaffected checks a DataDir-less server behaves
// as before: no state on disk, drop works, CloseTenants is a no-op.
func TestServeNonDurableUnaffected(t *testing.T) {
	s, ts := newTestServer(t, Options{CoalesceWindow: -1})
	mustCreate(t, ts.URL, CreateRequest{Name: "ring", K: 2, Graph: ringSpec(20)})
	tenant, err := s.Registry().Get("ring")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, durable := tenant.Corpus.DurableStats(); durable {
		t.Fatal("tenant durable without a DataDir")
	}
	if err := s.CloseTenants(); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTenant("ring"); err != nil {
		t.Fatal(err)
	}
}
