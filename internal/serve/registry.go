package serve

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"ned"
	"ned/internal/datasets"
	"ned/internal/graph"
)

// Tenant is one named corpus with the serving metadata the handlers
// need without calling Stats on the hot path. The Corpus itself is
// fully concurrent, so tenants need no lock of their own.
type Tenant struct {
	Name     string
	Corpus   *ned.Corpus
	K        int
	Directed bool
	// HasGraph reports whether the corpus has a backing graph, which
	// gates Insert/UpdateGraph and the coalescer's node->signature
	// resolution.
	HasGraph bool
}

// Registry is the multi-tenant corpus table: create/load/drop by name,
// lookup on every request. Lookups take the read lock only; a dropped
// tenant's in-flight queries finish safely on the corpus they resolved
// (a Corpus has no close — its epochs are garbage-collected when the
// last reader lets go).
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*Tenant)}
}

// maxCorpusName bounds tenant names so they stay usable as metric
// labels and path segments.
const maxCorpusName = 128

// validateName rejects names that would not survive a URL path segment
// or a Prometheus label value.
func validateName(name string) error {
	if name == "" || len(name) > maxCorpusName {
		return fmt.Errorf("%w: corpus name must be 1-%d characters", ErrBadRequest, maxCorpusName)
	}
	// Tenant names become durable-directory path segments: "." and ".."
	// would escape or alias the data directory, and any other leading-dot
	// name would hide the tenant's directory from directory scans.
	if name[0] == '.' {
		return fmt.Errorf("%w: corpus name %q may not start with '.'", ErrBadRequest, name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("%w: corpus name %q may only contain [A-Za-z0-9._-]", ErrBadRequest, name)
		}
	}
	return nil
}

// Get resolves a tenant by name.
func (r *Registry) Get(name string) (*Tenant, error) {
	r.mu.RLock()
	t := r.tenants[name]
	r.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrCorpusNotFound, name)
	}
	return t, nil
}

// Put registers a tenant under its name; a name can only be taken once
// (drop it first to replace it).
func (r *Registry) Put(t *Tenant) error {
	if err := validateName(t.Name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[t.Name]; ok {
		return fmt.Errorf("%w: %q", ErrCorpusExists, t.Name)
	}
	r.tenants[t.Name] = t
	return nil
}

// Drop removes a tenant. Queries already in flight on the corpus
// finish normally; new lookups fail with ErrCorpusNotFound.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[name]; !ok {
		return fmt.Errorf("%w: %q", ErrCorpusNotFound, name)
	}
	delete(r.tenants, name)
	return nil
}

// All returns the tenants in name order.
func (r *Registry) All() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the registered tenant count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// GraphSpec is an inline graph in a create or updategraph request:
// dense 0-based node IDs and an edge list, matching the engine's
// builder.
type GraphSpec struct {
	Nodes    int      `json:"nodes"`
	Directed bool     `json:"directed,omitempty"`
	Edges    [][2]int `json:"edges"`
}

// Build materializes the spec into an engine graph.
func (gs *GraphSpec) Build() (*ned.Graph, error) {
	if gs.Nodes < 0 {
		return nil, fmt.Errorf("%w: graph.nodes must be >= 0", ErrBadRequest)
	}
	b := ned.NewGraphBuilder(gs.Nodes, gs.Directed)
	for i, e := range gs.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= gs.Nodes || v < 0 || v >= gs.Nodes {
			return nil, fmt.Errorf("%w: graph.edges[%d]=(%d,%d) out of [0,%d)", ErrBadRequest, i, u, v, gs.Nodes)
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build(), nil
}

// CreateRequest describes a corpus to create or load. Exactly one of
// Graph, SnapshotPath, or Dataset supplies the data; the remaining
// fields tune the engine per tenant.
type CreateRequest struct {
	Name string `json:"name"`
	// K is the neighborhood depth (required with Graph or Dataset;
	// snapshots record their own and ignore it).
	K int `json:"k,omitempty"`
	// Backend is the index backend name ("vp", "bk", "linear",
	// "pruned"); empty means the engine default (snapshots: the
	// recorded backend).
	Backend string `json:"backend,omitempty"`
	// Shards, Workers, and RebuildThreshold tune the engine; zero
	// values mean the engine defaults.
	Shards           int     `json:"shards,omitempty"`
	Workers          int     `json:"workers,omitempty"`
	RebuildThreshold float64 `json:"rebuild_threshold,omitempty"`
	// Directed selects the directed NED of Eq. 2 (Graph/Dataset only;
	// a snapshot records its own directedness).
	Directed bool `json:"directed,omitempty"`
	// NodesSubset restricts the indexed node set (Graph/Dataset only).
	NodesSubset []int `json:"nodes_subset,omitempty"`

	// Graph is an inline graph to index.
	Graph *GraphSpec `json:"graph,omitempty"`
	// SnapshotPath is a server-side ned corpus snapshot file to load;
	// pair it with Graph to re-attach a backing graph (WithGraph).
	SnapshotPath string `json:"snapshot_path,omitempty"`
	// Dataset names a built-in synthetic dataset analog (CAR, PAR,
	// AMZN, DBLP, GNU, PGP), scaled and seeded below.
	Dataset string  `json:"dataset,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// options translates the tuning fields into engine options.
func (cr *CreateRequest) options() ([]ned.CorpusOption, error) {
	var opts []ned.CorpusOption
	if cr.Backend != "" {
		b, err := ned.ParseBackend(cr.Backend)
		if err != nil {
			return nil, err
		}
		opts = append(opts, ned.WithBackend(b))
	}
	if cr.Shards > 0 {
		opts = append(opts, ned.WithShards(cr.Shards))
	}
	if cr.Workers > 0 {
		opts = append(opts, ned.WithWorkers(cr.Workers))
	}
	if cr.RebuildThreshold > 0 {
		opts = append(opts, ned.WithRebuildThreshold(cr.RebuildThreshold))
	}
	if cr.Directed {
		opts = append(opts, ned.WithDirected())
	}
	if cr.NodesSubset != nil {
		nodes := make([]ned.NodeID, len(cr.NodesSubset))
		for i, v := range cr.NodesSubset {
			nodes[i] = ned.NodeID(v)
		}
		opts = append(opts, ned.WithNodes(nodes))
	}
	return opts, nil
}

// CreateTenant builds the tenant a CreateRequest describes: a fresh
// corpus over an inline graph or generated dataset, or a corpus
// restored from a server-side snapshot file (optionally re-attached to
// an inline graph). The tenant is not registered; callers Put it.
func CreateTenant(cr *CreateRequest) (*Tenant, error) {
	if err := validateName(cr.Name); err != nil {
		return nil, err
	}
	sources := 0
	for _, has := range []bool{cr.Graph != nil && cr.SnapshotPath == "", cr.SnapshotPath != "", cr.Dataset != ""} {
		if has {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("%w: provide exactly one of graph, snapshot_path, or dataset", ErrBadRequest)
	}
	opts, err := cr.options()
	if err != nil {
		return nil, err
	}

	if cr.SnapshotPath != "" {
		f, err := os.Open(cr.SnapshotPath)
		if err != nil {
			return nil, fmt.Errorf("%w: opening snapshot: %v", ErrBadRequest, err)
		}
		defer f.Close()
		var g *ned.Graph
		if cr.Graph != nil {
			if g, err = cr.Graph.Build(); err != nil {
				return nil, err
			}
			opts = append(opts, ned.WithGraph(g))
		}
		c, err := ned.LoadCorpus(f, opts...)
		if err != nil {
			return nil, err
		}
		s := c.Stats()
		return &Tenant{Name: cr.Name, Corpus: c, K: s.K, Directed: s.Directed, HasGraph: g != nil}, nil
	}

	var g *ned.Graph
	switch {
	case cr.Graph != nil:
		if g, err = cr.Graph.Build(); err != nil {
			return nil, err
		}
	default:
		g, err = datasets.Generate(datasets.Name(strings.ToUpper(cr.Dataset)), datasets.Options{Scale: cr.Scale, Seed: cr.Seed})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	c, err := ned.NewCorpus(g, cr.K, opts...)
	if err != nil {
		return nil, err
	}
	return &Tenant{Name: cr.Name, Corpus: c, K: cr.K, Directed: cr.Directed, HasGraph: true}, nil
}
