package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"ned"
	"ned/internal/tree"
)

// Options tunes a Server. The zero value serves with the defaults.
type Options struct {
	// MaxInflight bounds admitted queries (KNN, KNNSignature, Range,
	// NearestSet, BatchKNN) executing concurrently; requests beyond it
	// fail fast with 429. <= 0 means 256.
	MaxInflight int
	// CoalesceWindow is how long the first single-node KNN request of a
	// burst waits for companions before its batch flushes. 0 means 2ms;
	// negative disables coalescing entirely.
	CoalesceWindow time.Duration
	// CoalesceMaxBatch flushes a batch early once it holds this many
	// requests. <= 0 means 64.
	CoalesceMaxBatch int
	// MaxRequestBytes bounds a request body. <= 0 means 8 MiB.
	MaxRequestBytes int64

	// DataDir, when non-empty, makes every tenant durable: creating a
	// corpus attaches a per-tenant directory under it (MakeDurable),
	// BootDurable recovers every tenant found there on startup, and
	// dropping a corpus deletes its directory. Empty means tenants live
	// only in memory, as before.
	DataDir string
	// Fsync is the WAL fsync policy for durable tenants: FsyncAlways
	// makes every acknowledged mutation crash-durable, FsyncNone trades
	// the latest acknowledged batches for mutation latency.
	Fsync ned.FsyncPolicy
	// CheckpointEvery cuts a fresh checkpoint segment once a durable
	// tenant's active mutation log holds this many records, bounding
	// recovery replay. <= 0 means 1024.
	CheckpointEvery int64
}

func (o *Options) defaults() {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.CoalesceWindow == 0 {
		o.CoalesceWindow = 2 * time.Millisecond
	}
	if o.CoalesceMaxBatch <= 0 {
		o.CoalesceMaxBatch = 64
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 8 << 20
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1024
	}
}

// Server is the multi-tenant HTTP service over the Corpus engine. Build
// one with New, mount Handler on an http.Server, and drain it with
// http.Server.Shutdown — in-flight queries finish before the listener
// closes.
type Server struct {
	opts Options
	reg  *Registry
	adm  *admission
	coal *coalescer // nil when coalescing is disabled
	met  *metrics
	mux  *http.ServeMux

	// durMu serializes durable tenant attach/detach (create, drop, boot
	// recovery, drain) — control-plane only, never on the query path.
	durMu sync.Mutex

	// recMu guards the degraded-recovery backoff table (durable.go).
	recMu      sync.Mutex
	recovering map[string]*recoverState

	// afterAdmit, when set, runs after a query passes admission control
	// and before it executes — a test seam for holding slots open.
	afterAdmit func()
}

// New builds a Server with an empty registry.
func New(opts Options) *Server {
	opts.defaults()
	s := &Server{
		opts:       opts,
		reg:        NewRegistry(),
		adm:        newAdmission(opts.MaxInflight),
		met:        newMetrics(),
		mux:        http.NewServeMux(),
		recovering: make(map[string]*recoverState),
	}
	if opts.CoalesceWindow > 0 {
		s.coal = newCoalescer(opts.CoalesceWindow, opts.CoalesceMaxBatch)
		s.coal.onPanic = func(p any) {
			s.met.panics.Add(1)
			log.Printf("serve: panic in coalesced batch: %v\n%s", p, debug.Stack())
		}
	}
	s.routes()
	return s
}

// Registry exposes the tenant table, for preloading corpora at boot.
func (s *Server) Registry() *Registry { return s.reg }

// Handler is the root handler to mount on an http.Server. The mux is
// wrapped in panic recovery so even handlers outside the typed-handler
// adapter (snapshot streaming, metrics) cannot take a connection down
// without a logged 500 and a counter increment.
func (s *Server) Handler() http.Handler { return s.recoverware(s.mux) }

// recoverware is the outermost panic barrier.
func (s *Server) recoverware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				log.Printf("serve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				writeError(w, fmt.Errorf("%w: %v", ErrPanic, p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// ServerStats is a point-in-time snapshot of the serving counters.
type ServerStats struct {
	Corpora           int   `json:"corpora"`
	Inflight          int   `json:"inflight"`
	InflightLimit     int   `json:"inflight_limit"`
	Overloads         int64 `json:"overloads"`
	CoalesceBatches   int64 `json:"coalesce_batches"`
	CoalescedRequests int64 `json:"coalesced_requests"`
	Panics            int64 `json:"panics"`
	DegradedCorpora   int   `json:"degraded_corpora"`
}

// Stats reports the server-side counters (the engine counters live on
// each corpus's own stats).
func (s *Server) Stats() ServerStats {
	ss := ServerStats{
		Corpora:         s.reg.Len(),
		Inflight:        s.adm.inflight(),
		InflightLimit:   s.adm.limit(),
		Overloads:       s.adm.overloads.Load(),
		Panics:          s.met.panics.Load(),
		DegradedCorpora: len(s.degradedTenants()),
	}
	if s.coal != nil {
		ss.CoalesceBatches, ss.CoalescedRequests = s.coal.stats()
	}
	return ss
}

// degradedTenants lists the tenants currently refusing mutations
// because their durable storage failed.
func (s *Server) degradedTenants() []*Tenant {
	var out []*Tenant
	for _, t := range s.reg.All() {
		if t.Corpus.DurableHealth().Degraded {
			out = append(out, t)
		}
	}
	return out
}

// StatsDoc is the machine-readable per-corpus stats document. It is the
// single schema shared by the server's stats endpoint and nedstats
// -json, so the two can never drift apart.
type StatsDoc struct {
	Corpus string          `json:"corpus"`
	Stats  ned.CorpusStats `json:"stats"`
}

// EncodeStats writes a StatsDoc as indented JSON — the one encoding
// helper every stats surface goes through.
func EncodeStats(w io.Writer, doc StatsDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// --- wire types ---

// NeighborJSON is one query result on the wire.
type NeighborJSON struct {
	Node int `json:"node"`
	Dist int `json:"dist"`
}

func neighborsJSON(nbs []ned.Neighbor) []NeighborJSON {
	out := make([]NeighborJSON, len(nbs))
	for i, nb := range nbs {
		out[i] = NeighborJSON{Node: int(nb.Node), Dist: nb.Dist}
	}
	return out
}

// SignatureJSON is a query signature on the wire: the node's k plus its
// k-adjacent tree in the library's parent-vector text encoding (the
// same one signature files and snapshots use).
type SignatureJSON struct {
	Node int    `json:"node,omitempty"`
	K    int    `json:"k"`
	Tree string `json:"tree"`
}

func (sj *SignatureJSON) signature() (ned.Signature, error) {
	t, err := tree.Decode(sj.Tree)
	if err != nil {
		return ned.Signature{}, fmt.Errorf("%w: tree: %v", ned.ErrBadSignature, err)
	}
	return ned.Signature{Node: ned.NodeID(sj.Node), K: sj.K, Tree: t}, nil
}

// KNNRequest asks for the l nearest indexed nodes to a node of the
// corpus graph.
type KNNRequest struct {
	Node int `json:"node"`
	L    int `json:"l"`
}

// KNNSigRequest asks for the l nearest indexed nodes to an external
// signature (typically a node of a different graph).
type KNNSigRequest struct {
	Signature SignatureJSON `json:"signature"`
	L         int           `json:"l"`
}

// RangeRequest asks for every indexed node within distance R.
type RangeRequest struct {
	Signature SignatureJSON `json:"signature"`
	R         int           `json:"r"`
}

// NearestSetRequest asks for the full minimum-distance stratum.
type NearestSetRequest struct {
	Signature SignatureJSON `json:"signature"`
}

// BatchKNNRequest carries many KNN queries in one call: corpus-graph
// node IDs, external signatures, or both (nodes answer first).
type BatchKNNRequest struct {
	Nodes      []int           `json:"nodes,omitempty"`
	Signatures []SignatureJSON `json:"signatures,omitempty"`
	L          int             `json:"l"`
}

// NodesRequest names corpus-graph nodes for Insert/Remove.
type NodesRequest struct {
	Nodes []int `json:"nodes"`
}

// QueryResponse is the common envelope for query answers.
type QueryResponse struct {
	Corpus    string         `json:"corpus"`
	Neighbors []NeighborJSON `json:"neighbors"`
}

// BatchResponse is BatchKNN's envelope; Results aligns with the request
// order (nodes first, then signatures).
type BatchResponse struct {
	Corpus  string           `json:"corpus"`
	Results [][]NeighborJSON `json:"results"`
}

// CorpusInfo summarizes one tenant in list/create responses.
type CorpusInfo struct {
	Name     string `json:"name"`
	K        int    `json:"k"`
	Backend  string `json:"backend"`
	Directed bool   `json:"directed"`
	Nodes    int    `json:"nodes"`
	Shards   int    `json:"shards"`
}

func infoOf(t *Tenant) CorpusInfo {
	cs := t.Corpus.Stats()
	return CorpusInfo{
		Name:     t.Name,
		K:        cs.K,
		Backend:  cs.Backend.String(),
		Directed: cs.Directed,
		Nodes:    cs.Nodes,
		Shards:   cs.Shards,
	}
}

// --- plumbing ---

// requestContext maps the wire deadline onto the engine's context
// plumbing: a "timeout_ms" query parameter or X-Ned-Timeout-Ms header
// bounds the request (0 is a legal, already-expired deadline — useful
// for probing the fast-fail path), and the base context is the HTTP
// request's own, which the net/http server cancels the moment the
// client disconnects — so an abandoned query aborts at its next
// distance-loop check instead of burning executor time.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		raw = r.Header.Get("X-Ned-Timeout-Ms")
	}
	if raw == "" {
		return r.Context(), func() {}, nil
	}
	ms, err := strconv.ParseFloat(raw, 64)
	if err != nil || ms < 0 {
		return nil, nil, fmt.Errorf("%w: timeout_ms %q must be a non-negative number", ErrBadRequest, raw)
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms*float64(time.Millisecond)))
	return ctx, cancel, nil
}

// decode parses a JSON request body with a size cap.
func (s *Server) decode(r *http.Request, into any) error {
	body := http.MaxBytesReader(nil, r.Body, s.opts.MaxRequestBytes)
	if err := json.NewDecoder(body).Decode(into); err != nil {
		return fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone mid-write: nothing to do
	return status
}

// retryAfterSeconds is the backoff hint sent with 503s: degraded-mode
// recovery runs on a seconds-scale backoff loop, so an immediate retry
// would only be refused again.
const retryAfterSeconds = 2

func writeError(w http.ResponseWriter, err error) int {
	status, code := MapError(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	}
	return writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: err.Error()}})
}

// handler adapts a typed handler into an instrumented http.HandlerFunc.
// admit selects admission control (query endpoints only: mutations are
// serialized by the engine's own shard locks, and control-plane calls
// must stay responsive under query overload).
func (s *Server) handler(endpoint string, admit bool, fn func(ctx context.Context, r *http.Request) (status int, body any, err error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := func() (status int) {
			// A panicking handler must cost one request, not the daemon:
			// recover, count, log, and answer with a typed 500. Headers may
			// already be gone if the panic hit mid-encode; the duplicate
			// WriteHeader is then a logged no-op, and the counter still
			// moves.
			defer func() {
				if p := recover(); p != nil {
					s.met.panics.Add(1)
					log.Printf("serve: panic in %s handler: %v\n%s", endpoint, p, debug.Stack())
					status = writeError(w, fmt.Errorf("%w: %v", ErrPanic, p))
				}
			}()
			if admit {
				if !s.adm.tryAcquire() {
					return writeError(w, ErrOverloaded)
				}
				defer s.adm.release()
				if s.afterAdmit != nil {
					s.afterAdmit()
				}
			}
			ctx, cancel, err := requestContext(r)
			if err != nil {
				return writeError(w, err)
			}
			defer cancel()
			st, body, err := fn(ctx, r)
			if err != nil {
				return writeError(w, err)
			}
			return writeJSON(w, st, body)
		}()
		s.met.observe(endpoint, status, time.Since(start))
	}
}

// tenant resolves the {name} path segment.
func (s *Server) tenant(r *http.Request) (*Tenant, error) {
	return s.reg.Get(r.PathValue("name"))
}

// --- routes ---

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.mux.HandleFunc("GET /v1/corpora", s.handler("list", false, s.handleList))
	s.mux.HandleFunc("POST /v1/corpora", s.handler("create", false, s.handleCreate))
	s.mux.HandleFunc("DELETE /v1/corpora/{name}", s.handler("drop", false, s.handleDrop))
	s.mux.HandleFunc("GET /v1/corpora/{name}/stats", s.handler("stats", false, s.handleStats))
	s.mux.HandleFunc("GET /v1/corpora/{name}/snapshot", s.handleSnapshotHTTP)

	s.mux.HandleFunc("POST /v1/corpora/{name}/knn", s.handler("knn", true, s.handleKNN))
	s.mux.HandleFunc("POST /v1/corpora/{name}/knnsig", s.handler("knnsig", true, s.handleKNNSig))
	s.mux.HandleFunc("POST /v1/corpora/{name}/range", s.handler("range", true, s.handleRange))
	s.mux.HandleFunc("POST /v1/corpora/{name}/nearestset", s.handler("nearestset", true, s.handleNearestSet))
	s.mux.HandleFunc("POST /v1/corpora/{name}/batchknn", s.handler("batchknn", true, s.handleBatchKNN))

	s.mux.HandleFunc("POST /v1/corpora/{name}/insert", s.handler("insert", false, s.handleInsert))
	s.mux.HandleFunc("POST /v1/corpora/{name}/remove", s.handler("remove", false, s.handleRemove))
	s.mux.HandleFunc("POST /v1/corpora/{name}/updategraph", s.handler("updategraph", false, s.handleUpdateGraph))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "corpora": s.reg.Len()})
}

// handleReady is the readiness probe, distinct from liveness: /healthz
// answers "is the process up" (always yes while serving), /readyz
// answers "should this instance take writes" — 503 while any durable
// tenant is degraded, so an orchestrator can drain mutation traffic
// toward healthy replicas while reads keep flowing here.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	degraded := s.degradedTenants()
	if len(degraded) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "corpora": s.reg.Len()})
		return
	}
	names := make([]string, len(degraded))
	details := make(map[string]any, len(degraded))
	for i, t := range degraded {
		h := t.Corpus.DurableHealth()
		names[i] = t.Name
		details[t.Name] = map[string]any{
			"reason":            h.Reason,
			"since":             h.Since.Format(time.RFC3339),
			"recovery_attempts": h.RecoveryAttempts,
		}
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status":   "degraded",
		"degraded": names,
		"detail":   details,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

func (s *Server) handleList(ctx context.Context, r *http.Request) (int, any, error) {
	tenants := s.reg.All()
	infos := make([]CorpusInfo, len(tenants))
	for i, t := range tenants {
		infos[i] = infoOf(t)
	}
	return http.StatusOK, map[string]any{"corpora": infos}, nil
}

func (s *Server) handleCreate(ctx context.Context, r *http.Request) (int, any, error) {
	var cr CreateRequest
	if err := s.decode(r, &cr); err != nil {
		return 0, nil, err
	}
	t, err := CreateTenant(&cr)
	if err != nil {
		return 0, nil, err
	}
	if err := s.AddTenant(t); err != nil {
		return 0, nil, err
	}
	return http.StatusCreated, infoOf(t), nil
}

func (s *Server) handleDrop(ctx context.Context, r *http.Request) (int, any, error) {
	name := r.PathValue("name")
	if err := s.DropTenant(name); err != nil {
		return 0, nil, err
	}
	return http.StatusOK, map[string]any{"dropped": name}, nil
}

func (s *Server) handleStats(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, StatsDoc{Corpus: t.Name, Stats: t.Corpus.Stats()}, nil
}

// handleSnapshotHTTP streams the corpus snapshot as the text format
// Snapshot/LoadCorpus speak, outside the JSON envelope.
func (s *Server) handleSnapshotHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := func() int {
		t, err := s.reg.Get(r.PathValue("name"))
		if err != nil {
			return writeError(w, err)
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.nedcorpus", t.Name))
		if err := t.Corpus.Snapshot(w); err != nil {
			// Headers are gone; the truncated body is the best signal left.
			return http.StatusInternalServerError
		}
		return http.StatusOK
	}()
	s.met.observe("snapshot", status, time.Since(start))
}

func (s *Server) handleKNN(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	var req KNNRequest
	if err := s.decode(r, &req); err != nil {
		return 0, nil, err
	}
	nbs, err := s.corpusKNN(ctx, t, ned.NodeID(req.Node), req.L)
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, QueryResponse{Corpus: t.Name, Neighbors: neighborsJSON(nbs)}, nil
}

// corpusKNN routes a single-node KNN through the coalescer when it can
// prove equivalence — undirected corpus, graph attached, in-range node
// — and falls back to a direct engine call otherwise.
func (s *Server) corpusKNN(ctx context.Context, t *Tenant, v ned.NodeID, l int) ([]ned.Neighbor, error) {
	if s.coal == nil || t.Directed || !t.HasGraph || l < 1 {
		return t.Corpus.KNN(ctx, v, l)
	}
	sig, err := t.Corpus.Signature(v)
	if err != nil {
		// Out-of-range (or graphless) nodes take the direct path so the
		// engine's own validation produces the typed error.
		return t.Corpus.KNN(ctx, v, l)
	}
	return s.coal.knn(ctx, t.Corpus, sig, l)
}

func (s *Server) handleKNNSig(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	var req KNNSigRequest
	if err := s.decode(r, &req); err != nil {
		return 0, nil, err
	}
	sig, err := req.Signature.signature()
	if err != nil {
		return 0, nil, err
	}
	nbs, err := t.Corpus.KNNSignature(ctx, sig, req.L)
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, QueryResponse{Corpus: t.Name, Neighbors: neighborsJSON(nbs)}, nil
}

func (s *Server) handleRange(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	var req RangeRequest
	if err := s.decode(r, &req); err != nil {
		return 0, nil, err
	}
	sig, err := req.Signature.signature()
	if err != nil {
		return 0, nil, err
	}
	nbs, err := t.Corpus.Range(ctx, sig, req.R)
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, QueryResponse{Corpus: t.Name, Neighbors: neighborsJSON(nbs)}, nil
}

func (s *Server) handleNearestSet(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	var req NearestSetRequest
	if err := s.decode(r, &req); err != nil {
		return 0, nil, err
	}
	sig, err := req.Signature.signature()
	if err != nil {
		return 0, nil, err
	}
	nbs, err := t.Corpus.NearestSet(ctx, sig)
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, QueryResponse{Corpus: t.Name, Neighbors: neighborsJSON(nbs)}, nil
}

func (s *Server) handleBatchKNN(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	var req BatchKNNRequest
	if err := s.decode(r, &req); err != nil {
		return 0, nil, err
	}
	results := make([][]NeighborJSON, 0, len(req.Nodes)+len(req.Signatures))
	// Node queries: resolve against the corpus graph. Directed corpora
	// (or corpora without a graph) can still query indexed nodes via the
	// engine's KNN path one by one.
	if len(req.Nodes) > 0 {
		if !t.Directed && t.HasGraph {
			sigs := make([]ned.Signature, len(req.Nodes))
			for i, v := range req.Nodes {
				sig, err := t.Corpus.Signature(ned.NodeID(v))
				if err != nil {
					return 0, nil, fmt.Errorf("node %d: %w", v, err)
				}
				sigs[i] = sig
			}
			batch, err := t.Corpus.BatchKNN(ctx, sigs, req.L)
			if err != nil {
				return 0, nil, err
			}
			for _, nbs := range batch {
				results = append(results, neighborsJSON(nbs))
			}
		} else {
			for _, v := range req.Nodes {
				nbs, err := t.Corpus.KNN(ctx, ned.NodeID(v), req.L)
				if err != nil {
					return 0, nil, fmt.Errorf("node %d: %w", v, err)
				}
				results = append(results, neighborsJSON(nbs))
			}
		}
	}
	if len(req.Signatures) > 0 {
		sigs := make([]ned.Signature, len(req.Signatures))
		for i := range req.Signatures {
			sig, err := req.Signatures[i].signature()
			if err != nil {
				return 0, nil, fmt.Errorf("signature %d: %w", i, err)
			}
			sigs[i] = sig
		}
		batch, err := t.Corpus.BatchKNN(ctx, sigs, req.L)
		if err != nil {
			return 0, nil, err
		}
		for _, nbs := range batch {
			results = append(results, neighborsJSON(nbs))
		}
	}
	return http.StatusOK, BatchResponse{Corpus: t.Name, Results: results}, nil
}

func (s *Server) handleInsert(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	var req NodesRequest
	if err := s.decode(r, &req); err != nil {
		return 0, nil, err
	}
	nodes := make([]ned.NodeID, len(req.Nodes))
	for i, v := range req.Nodes {
		nodes[i] = ned.NodeID(v)
	}
	if err := t.Corpus.Insert(nodes...); err != nil {
		return 0, nil, err
	}
	s.maybeCheckpoint(t)
	return http.StatusOK, map[string]any{"inserted": len(nodes)}, nil
}

func (s *Server) handleRemove(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	var req NodesRequest
	if err := s.decode(r, &req); err != nil {
		return 0, nil, err
	}
	nodes := make([]ned.NodeID, len(req.Nodes))
	for i, v := range req.Nodes {
		nodes[i] = ned.NodeID(v)
	}
	if err := t.Corpus.Remove(nodes...); err != nil {
		return 0, nil, err
	}
	s.maybeCheckpoint(t)
	return http.StatusOK, map[string]any{"removed": len(nodes)}, nil
}

func (s *Server) handleUpdateGraph(ctx context.Context, r *http.Request) (int, any, error) {
	t, err := s.tenant(r)
	if err != nil {
		return 0, nil, err
	}
	var gs GraphSpec
	if err := s.decode(r, &gs); err != nil {
		return 0, nil, err
	}
	g, err := gs.Build()
	if err != nil {
		return 0, nil, err
	}
	refreshed, err := t.Corpus.UpdateGraph(g)
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, map[string]any{"refreshed": refreshed}, nil
}
