package serve

import (
	"errors"
	"strings"
	"testing"
)

// Tenant names become durable-directory path segments, so the dot
// names that alias or escape a data directory must be rejected at
// validation, not discovered as filesystem surprises later.
func TestValidateNameRejectsDotNames(t *testing.T) {
	for _, name := range []string{".", "..", ".hidden", ".config", ""} {
		if err := validateName(name); err == nil {
			t.Errorf("validateName(%q) accepted", name)
		} else if !errors.Is(err, ErrBadRequest) {
			t.Errorf("validateName(%q) = %v, want ErrBadRequest", name, err)
		}
	}
	for _, name := range []string{"a", "pgp-small", "v2.1_final", "A.B", strings.Repeat("x", 128)} {
		if err := validateName(name); err != nil {
			t.Errorf("validateName(%q) = %v, want nil", name, err)
		}
	}
	for _, name := range []string{strings.Repeat("x", 129), "a/b", "a b", "café"} {
		if err := validateName(name); err == nil {
			t.Errorf("validateName(%q) accepted", name)
		}
	}
}
