package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"ned"
)

// Server-side durability: when Options.DataDir is set, every tenant
// owns a directory DataDir/<name> holding its checkpoint segments and
// mutation log (see the ned package's MakeDurable/OpenDurable). Create
// attaches it, BootDurable recovers every tenant found on disk at
// startup, mutations auto-checkpoint once the log grows past
// CheckpointEvery records, and Drop deletes the directory. Tenant
// names are validated to be safe path segments (no separators, no
// leading dot), so a name can never escape or alias DataDir.
//
// Attach/detach is serialized by a control-plane mutex: the data path
// (queries, mutations on registered tenants) never takes it.

// durable reports whether this server persists tenants.
func (s *Server) durable() bool { return s.opts.DataDir != "" }

// tenantDir is the durable directory of a (validated) tenant name.
func (s *Server) tenantDir(name string) string {
	return filepath.Join(s.opts.DataDir, name)
}

// tenantOf wraps a recovered corpus in its serving metadata.
func tenantOf(name string, c *ned.Corpus) *Tenant {
	cs := c.Stats()
	return &Tenant{Name: name, Corpus: c, K: cs.K, Directed: cs.Directed, HasGraph: c.HasGraph()}
}

// AddTenant registers a tenant, attaching a durable directory first
// when the server persists tenants. The attach happens before the
// tenant is visible in the registry, so no mutation can race it; if
// registration then fails (name taken), the directory is removed
// again.
func (s *Server) AddTenant(t *Tenant) error {
	if err := validateName(t.Name); err != nil {
		return err
	}
	if !s.durable() {
		return s.reg.Put(t)
	}
	s.durMu.Lock()
	defer s.durMu.Unlock()
	dir := s.tenantDir(t.Name)
	if ned.HasDurableState(dir) {
		return fmt.Errorf("%w: %q has durable state on disk (it is recovered at boot; drop it to replace it)", ErrCorpusExists, t.Name)
	}
	if err := t.Corpus.MakeDurable(dir, s.opts.Fsync); err != nil {
		return err
	}
	if err := s.reg.Put(t); err != nil {
		_ = t.Corpus.CloseDurable()
		_ = os.RemoveAll(dir)
		return err
	}
	return nil
}

// DropTenant removes a tenant from the registry and, on a durable
// server, closes its mutation log and deletes its directory. Queries
// already in flight finish on the corpus they resolved; a mutation
// racing the drop fails cleanly on the closed log without publishing.
func (s *Server) DropTenant(name string) error {
	if !s.durable() {
		return s.reg.Drop(name)
	}
	s.durMu.Lock()
	defer s.durMu.Unlock()
	t, err := s.reg.Get(name)
	if err != nil {
		return err
	}
	if err := s.reg.Drop(name); err != nil {
		return err
	}
	err = t.Corpus.CloseDurable()
	if rmErr := os.RemoveAll(s.tenantDir(name)); err == nil {
		err = rmErr
	}
	return err
}

// BootDurable recovers every tenant directory under DataDir —
// checkpoint plus mutation-log tail, exactly as OpenDurable defines it
// — and registers the results, returning the recovered names in scan
// order. Call it once at boot, before the listener opens. A missing
// DataDir is created empty; a subdirectory without durable state (or
// with an invalid tenant name) is skipped, never deleted.
func (s *Server) BootDurable() ([]string, error) {
	if !s.durable() {
		return nil, nil
	}
	s.durMu.Lock()
	defer s.durMu.Unlock()
	if err := os.MkdirAll(s.opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("creating data directory: %w", err)
	}
	entries, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() || validateName(e.Name()) != nil {
			continue
		}
		dir := s.tenantDir(e.Name())
		if !ned.HasDurableState(dir) {
			continue
		}
		c, err := ned.OpenDurable(dir, s.opts.Fsync)
		if err != nil {
			return names, fmt.Errorf("recovering tenant %q: %w", e.Name(), err)
		}
		if err := s.reg.Put(tenantOf(e.Name(), c)); err != nil {
			_ = c.CloseDurable()
			return names, err
		}
		names = append(names, e.Name())
	}
	return names, nil
}

// maybeCheckpoint cuts a checkpoint once the tenant's active log holds
// CheckpointEvery records, bounding replay at the next recovery. The
// engine serializes concurrent checkpoints. The triggering mutation is
// already committed when this runs, so a failure here must NOT fail
// the client's request — the write is durable; what broke is
// maintenance. The corpus degrades itself on checkpoint failure, the
// degraded gauge and /readyz surface it, and the recovery loop owns
// the retries.
func (s *Server) maybeCheckpoint(t *Tenant) {
	recs, _, durable := t.Corpus.DurableStats()
	if !durable || recs < s.opts.CheckpointEvery {
		return
	}
	if err := t.Corpus.Checkpoint(); err != nil {
		log.Printf("serve: checkpointing %q after mutation: %v", t.Name, err)
	}
}

// recoverState is the per-tenant backoff bookkeeping of the degraded
// recovery loop.
type recoverState struct {
	attempts int
	next     time.Time
}

// Recovery backoff bounds: first retry after recoverBase, doubling to
// at most recoverMax between attempts. Bounded, not unbounded — a
// disk that comes back (space freed, mount healed) should be noticed
// within seconds, but a dead disk must not be hammered.
const (
	recoverBase = 500 * time.Millisecond
	recoverMax  = 30 * time.Second
)

// RecoverDegraded makes one pass over the degraded tenants, attempting
// the verified-rewrite Checkpoint for each whose backoff window has
// elapsed, and returns how many cleared. Safe to call concurrently
// with all traffic; the engine serializes the actual rewrites.
func (s *Server) RecoverDegraded(now time.Time) int {
	recovered := 0
	for _, t := range s.degradedTenants() {
		s.recMu.Lock()
		st := s.recovering[t.Name]
		if st == nil {
			st = &recoverState{}
			s.recovering[t.Name] = st
		}
		due := !now.Before(st.next)
		attempt := st.attempts + 1
		if due {
			// Claim the slot before releasing the lock so concurrent
			// passes do not double-attempt one tenant.
			backoff := recoverBase << st.attempts
			if backoff > recoverMax || backoff <= 0 {
				backoff = recoverMax
			}
			st.attempts++
			st.next = now.Add(backoff)
		}
		s.recMu.Unlock()
		if !due {
			continue
		}
		if err := t.Corpus.Checkpoint(); err != nil {
			log.Printf("serve: degraded recovery of %q failed (attempt %d): %v", t.Name, attempt, err)
			continue
		}
		log.Printf("serve: tenant %q recovered from degraded mode after %d attempt(s)", t.Name, attempt)
		s.recMu.Lock()
		delete(s.recovering, t.Name)
		s.recMu.Unlock()
		recovered++
	}
	return recovered
}

// StartDegradedRecovery runs RecoverDegraded on a ticker until ctx
// ends. interval is the poll cadence (how quickly a fresh degradation
// is noticed — per-tenant retry spacing is the backoff's job); <= 0
// means one second.
func (s *Server) StartDegradedRecovery(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-tick.C:
				s.RecoverDegraded(now)
			}
		}
	}()
}

// CloseTenants checkpoints and closes every durable tenant — the drain
// hook: the next boot recovers from fresh segments with empty logs. On
// a non-durable server it is a no-op.
func (s *Server) CloseTenants() error {
	if !s.durable() {
		return nil
	}
	s.durMu.Lock()
	defer s.durMu.Unlock()
	var errs []error
	for _, t := range s.reg.All() {
		if _, _, durable := t.Corpus.DurableStats(); !durable {
			continue
		}
		if err := t.Corpus.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("checkpointing %q: %w", t.Name, err))
		}
		if err := t.Corpus.CloseDurable(); err != nil {
			errs = append(errs, fmt.Errorf("closing %q: %w", t.Name, err))
		}
	}
	return errors.Join(errs...)
}
