// Package serve is the network tier over the ned Corpus engine: a
// multi-tenant HTTP/JSON service exposing the full query and mutation
// API over named corpora, with per-request deadlines mapped onto the
// engine's context plumbing, admission control (bounded in-flight
// queries with a fast overload path), request coalescing (concurrent
// single-node KNN requests batched into one BatchKNN executor pass),
// and a Prometheus /metrics endpoint exporting the engine's cascade,
// shard, and rebuild counters next to the server's own request,
// latency, in-flight, and coalescing counters.
//
// The engine's epoch-published shard design is what makes a thin
// serving tier sufficient: reads are lock-free snapshots and writers
// only serialize per shard, so the server can fan arbitrary client
// concurrency straight into the Corpus without its own locking — the
// writer/reader split of Helland's "Scalable OLTP in the Cloud",
// layered the way rUniversalDB stacks a server tier over per-shard
// owners.
package serve

import (
	"context"
	"errors"
	"net/http"

	"ned"
)

// Typed errors owned by the serve layer; engine errors (ned.ErrBadK and
// friends) pass through and map to their own codes.
var (
	// ErrCorpusNotFound reports a request naming a corpus the registry
	// does not hold.
	ErrCorpusNotFound = errors.New("serve: corpus not found")
	// ErrCorpusExists reports a create for a name already registered.
	ErrCorpusExists = errors.New("serve: corpus already exists")
	// ErrBadRequest reports a request the server could not decode or
	// validate before reaching the engine.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrOverloaded reports an admission-control rejection: the bounded
	// in-flight query budget was full, so the request was refused
	// immediately rather than queued behind work it would only slow
	// down. Clients should back off and retry.
	ErrOverloaded = errors.New("serve: too many in-flight queries")
	// ErrPanic reports a handler panic caught by the recovery
	// middleware: the connection got a typed 500 instead of a RST, and
	// the daemon kept serving.
	ErrPanic = errors.New("serve: internal panic")
)

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// recorded when a client disconnects mid-query: the handler aborts via
// context cancellation and nobody reads the response, but metrics still
// want the outcome distinguished from real failures.
const StatusClientClosedRequest = 499

// errorCode is one row of the error table: a stable wire code and the
// HTTP status it travels with.
type errorCode struct {
	match  error
	code   string
	status int
}

// errorTable maps every typed error the serve layer can surface to its
// stable JSON code + HTTP status. Order matters only for wrapped chains
// that could match twice (none today); errors.Is handles wrapping.
var errorTable = []errorCode{
	{ErrCorpusNotFound, "corpus_not_found", http.StatusNotFound},
	{ErrCorpusExists, "corpus_exists", http.StatusConflict},
	{ErrOverloaded, "overloaded", http.StatusTooManyRequests},
	{ErrBadRequest, "bad_request", http.StatusBadRequest},
	{context.DeadlineExceeded, "deadline_exceeded", http.StatusGatewayTimeout},
	{context.Canceled, "canceled", StatusClientClosedRequest},
	{ned.ErrBadK, "bad_k", http.StatusBadRequest},
	{ned.ErrBadL, "bad_l", http.StatusBadRequest},
	{ned.ErrBadRadius, "bad_radius", http.StatusBadRequest},
	{ned.ErrNodeOutOfRange, "node_out_of_range", http.StatusBadRequest},
	{ned.ErrBadBackend, "bad_backend", http.StatusBadRequest},
	{ned.ErrKMismatch, "k_mismatch", http.StatusBadRequest},
	{ned.ErrBadSignature, "bad_signature", http.StatusBadRequest},
	{ned.ErrDirectedSignature, "directed_signature", http.StatusBadRequest},
	{ned.ErrNilGraph, "nil_graph", http.StatusBadRequest},
	{ned.ErrBadSnapshot, "bad_snapshot", http.StatusBadRequest},
	// A graph-requiring operation on a corpus loaded without a graph is
	// a conflict with the corpus's state, not a malformed request.
	{ned.ErrNoGraph, "no_graph", http.StatusConflict},
	// A mutation on a degraded corpus is refused until its durable
	// storage recovers; reads keep serving. 503 + Retry-After tells
	// well-behaved clients to back off, not fail over their data.
	{ned.ErrDegraded, "degraded", http.StatusServiceUnavailable},
	{ErrPanic, "panic", http.StatusInternalServerError},
}

// MapError resolves any error the serve layer returns into its HTTP
// status and stable JSON error code. Unknown errors are "internal"/500
// — the catch-all a client should treat as a server bug.
func MapError(err error) (status int, code string) {
	for _, row := range errorTable {
		if errors.Is(err, row.match) {
			return row.status, row.code
		}
	}
	return http.StatusInternalServerError, "internal"
}

// ErrorBody is the JSON error payload: a stable machine-readable code
// plus the human-readable message of the underlying typed error.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the envelope every non-2xx JSON response carries.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}
