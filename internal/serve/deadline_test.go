package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpiredDeadlineFailsFast pins the wire deadline contract: a
// timeout_ms=0 query carries an already-expired context, so the engine
// aborts before doing distance work and the client gets the mapped
// deadline_exceeded error immediately.
func TestExpiredDeadlineFailsFast(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustCreate(t, ts.URL, CreateRequest{Name: "d", K: 3, Graph: ringSpec(120)})

	for _, ep := range []struct {
		path string
		req  any
	}{
		{"/knn", KNNRequest{Node: 0, L: 3}},
		{"/knnsig", KNNSigRequest{Signature: sigJSON(t, ringSpec(120), 3, 0), L: 3}},
		{"/range", RangeRequest{Signature: sigJSON(t, ringSpec(120), 3, 0), R: 2}},
		{"/nearestset", NearestSetRequest{Signature: sigJSON(t, ringSpec(120), 3, 0)}},
		{"/batchknn", BatchKNNRequest{Nodes: []int{0, 1, 2}, L: 3}},
	} {
		t.Run(strings.TrimPrefix(ep.path, "/"), func(t *testing.T) {
			start := time.Now()
			status, raw := postJSON(t, ts.URL+"/v1/corpora/d"+ep.path+"?timeout_ms=0", ep.req, nil)
			elapsed := time.Since(start)
			if status != http.StatusGatewayTimeout {
				t.Fatalf("status = %d, want 504 (body %s)", status, raw)
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil || er.Error.Code != "deadline_exceeded" {
				t.Fatalf("error body %s (err %v), want code deadline_exceeded", raw, err)
			}
			if elapsed > 2*time.Second {
				t.Fatalf("expired deadline took %v; the fast-fail path is not fast", elapsed)
			}
		})
	}
}

// TestDeadlineHeader checks the X-Ned-Timeout-Ms header is an equal
// spelling of the query parameter.
func TestDeadlineHeader(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustCreate(t, ts.URL, CreateRequest{Name: "d", K: 2, Graph: ringSpec(30)})

	body, _ := json.Marshal(KNNRequest{Node: 0, L: 2})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/corpora/d/knn", bytes.NewReader(body))
	req.Header.Set("X-Ned-Timeout-Ms", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, raw)
	}

	// A generous header deadline lets the query through.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/corpora/d/knn", bytes.NewReader(body))
	req.Header.Set("X-Ned-Timeout-Ms", "30000")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status with 30s deadline = %d, want 200 (body %s)", resp.StatusCode, raw)
	}
}

// TestBadTimeoutRejected checks malformed deadlines are a 400, not a
// silent default.
func TestBadTimeoutRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustCreate(t, ts.URL, CreateRequest{Name: "d", K: 2, Graph: ringSpec(20)})
	for _, bad := range []string{"abc", "-5", "1e999"} {
		status, raw := postJSON(t, ts.URL+"/v1/corpora/d/knn?timeout_ms="+bad, KNNRequest{Node: 0, L: 1}, nil)
		var er ErrorResponse
		_ = json.Unmarshal(raw, &er)
		if status != http.StatusBadRequest || er.Error.Code != "bad_request" {
			t.Fatalf("timeout_ms=%q: status %d code %q (body %s), want 400 bad_request", bad, status, er.Error.Code, raw)
		}
	}
}

// TestClientDisconnectCancels pins disconnect propagation: when the
// client abandons an admitted query, the handler's context (the HTTP
// request's own) cancels, the engine aborts, and the outcome is recorded
// as the 499 client-closed-request code rather than a success or a 5xx.
func TestClientDisconnectCancels(t *testing.T) {
	s := New(Options{})
	admitted := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.afterAdmit = func() {
		once.Do(func() {
			close(admitted)
			<-release
		})
	}
	ts := newUnstartedServer(t, s)
	mustCreate(t, ts, CreateRequest{Name: "d", K: 3, Graph: ringSpec(150)})

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(KNNRequest{Node: 0, L: 5})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts+"/v1/corpora/d/knn", bytes.NewReader(body))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()

	<-admitted
	cancel() // client walks away while the query holds its admission slot
	if err := <-errc; err == nil {
		t.Fatal("expected the canceled client request to error")
	}
	close(release)

	// The handler finishes asynchronously; its outcome lands in the
	// request counters as a 499.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, rows := s.met.requestTotals()
		if rows["knn"][StatusClientClosedRequest] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no 499 recorded for the abandoned query; counters: %v", rows)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// newUnstartedServer starts an httptest server over an already-built
// Server and returns its URL; a helper for tests that construct the
// Server themselves (to set the afterAdmit seam).
func newUnstartedServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestNoLeakedWorkers runs normal, expired, and abandoned queries, then
// checks the process settles back to its baseline goroutine count — no
// executor workers, coalescer watchers, or handler goroutines left
// behind. The engine's executor idles down after ~100ms, so the check
// polls.
func TestNoLeakedWorkers(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustCreate(t, ts.URL, CreateRequest{Name: "d", K: 3, Graph: ringSpec(100)})

	// Warm up so lazily-started long-lived goroutines (http transport
	// idle pools, etc.) exist before the baseline is taken.
	postJSON(t, ts.URL+"/v1/corpora/d/knn", KNNRequest{Node: 0, L: 3}, nil)
	time.Sleep(250 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				postJSON(t, ts.URL+"/v1/corpora/d/knn", KNNRequest{Node: i % 100, L: 3}, nil)
			case 1:
				postJSON(t, ts.URL+fmt.Sprintf("/v1/corpora/d/knn?timeout_ms=0"), KNNRequest{Node: i % 100, L: 3}, nil)
			default:
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				defer cancel()
				body, _ := json.Marshal(BatchKNNRequest{Nodes: []int{0, 1, 2, 3}, L: 3})
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/corpora/d/batchknn", bytes.NewReader(body))
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(i)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		// Allow a little slack over baseline: the net/http server keeps a
		// few transient accept/idle goroutines alive.
		if n <= baseline+5 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines = %d, baseline %d; leaked workers?\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}
