package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ned"
)

// latencyBuckets are the request-duration histogram bounds in seconds,
// spanning sub-millisecond cache-hot KNN up to multi-second batch and
// snapshot work.
var latencyBuckets = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// histogram is a fixed-bucket, lock-free latency histogram in the
// Prometheus cumulative style.
type histogram struct {
	counts [len(latencyBuckets) + 1]atomic.Int64 // +Inf tail
	sumNS  atomic.Int64
	count  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], s)
	h.counts[i].Add(1)
	h.sumNS.Add(d.Nanoseconds())
	h.count.Add(1)
}

// metrics holds the server-side counters: per-endpoint request counts
// keyed by outcome code, and per-endpoint latency histograms. Endpoint
// names are a fixed set, so the maps are built once and only their
// values mutate (atomically).
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]*atomic.Int64 // endpoint -> HTTP status -> count
	latency  map[string]*histogram
	panics   atomic.Int64 // handler + background panics recovered
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]*atomic.Int64),
		latency:  make(map[string]*histogram),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = make(map[int]*atomic.Int64)
		m.requests[endpoint] = byStatus
	}
	ctr := byStatus[status]
	if ctr == nil {
		ctr = &atomic.Int64{}
		byStatus[status] = ctr
	}
	h := m.latency[endpoint]
	if h == nil {
		h = &histogram{}
		m.latency[endpoint] = h
	}
	m.mu.Unlock()
	ctr.Add(1)
	h.observe(d)
}

// requestTotals returns a stable-ordered copy of the request counters.
func (m *metrics) requestTotals() (endpoints []string, rows map[string]map[int]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rows = make(map[string]map[int]int64, len(m.requests))
	for ep, byStatus := range m.requests {
		endpoints = append(endpoints, ep)
		rows[ep] = make(map[int]int64, len(byStatus))
		for status, ctr := range byStatus {
			rows[ep][status] = ctr.Load()
		}
	}
	sort.Strings(endpoints)
	return endpoints, rows
}

// WriteMetrics renders the full exposition in Prometheus text format:
// the server's request/latency/in-flight/overload/coalescing counters,
// then every registered corpus's engine counters — the filter-cascade
// tier prunes, shard sizes, epoch/rebuild stats — labeled by corpus.
func (s *Server) WriteMetrics(w io.Writer) {
	// --- server counters ---
	fmt.Fprintf(w, "# HELP nedserve_requests_total Requests served, by endpoint and HTTP status.\n")
	fmt.Fprintf(w, "# TYPE nedserve_requests_total counter\n")
	endpoints, rows := s.met.requestTotals()
	for _, ep := range endpoints {
		statuses := make([]int, 0, len(rows[ep]))
		for st := range rows[ep] {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			fmt.Fprintf(w, "nedserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, st, rows[ep][st])
		}
	}

	fmt.Fprintf(w, "# HELP nedserve_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE nedserve_request_duration_seconds histogram\n")
	s.met.mu.Lock()
	histEndpoints := make([]string, 0, len(s.met.latency))
	hists := make(map[string]*histogram, len(s.met.latency))
	for ep, h := range s.met.latency {
		histEndpoints = append(histEndpoints, ep)
		hists[ep] = h
	}
	s.met.mu.Unlock()
	sort.Strings(histEndpoints)
	for _, ep := range histEndpoints {
		h := hists[ep]
		var cum int64
		for i, bound := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "nedserve_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "nedserve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "nedserve_request_duration_seconds_sum{endpoint=%q} %g\n",
			ep, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "nedserve_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.count.Load())
	}

	ss := s.Stats()
	fmt.Fprintf(w, "# HELP nedserve_inflight_queries Queries currently admitted and executing.\n")
	fmt.Fprintf(w, "# TYPE nedserve_inflight_queries gauge\n")
	fmt.Fprintf(w, "nedserve_inflight_queries %d\n", ss.Inflight)
	fmt.Fprintf(w, "# HELP nedserve_inflight_limit Admission-control in-flight query capacity.\n")
	fmt.Fprintf(w, "# TYPE nedserve_inflight_limit gauge\n")
	fmt.Fprintf(w, "nedserve_inflight_limit %d\n", ss.InflightLimit)
	fmt.Fprintf(w, "# HELP nedserve_overloads_total Queries refused with 429 by admission control.\n")
	fmt.Fprintf(w, "# TYPE nedserve_overloads_total counter\n")
	fmt.Fprintf(w, "nedserve_overloads_total %d\n", ss.Overloads)
	fmt.Fprintf(w, "# HELP nedserve_coalesce_batches_total Multi-request BatchKNN passes flushed by the coalescer.\n")
	fmt.Fprintf(w, "# TYPE nedserve_coalesce_batches_total counter\n")
	fmt.Fprintf(w, "nedserve_coalesce_batches_total %d\n", ss.CoalesceBatches)
	fmt.Fprintf(w, "# HELP nedserve_coalesced_requests_total KNN requests served by a shared coalesced pass.\n")
	fmt.Fprintf(w, "# TYPE nedserve_coalesced_requests_total counter\n")
	fmt.Fprintf(w, "nedserve_coalesced_requests_total %d\n", ss.CoalescedRequests)
	fmt.Fprintf(w, "# HELP nedserve_corpora Registered corpora.\n")
	fmt.Fprintf(w, "# TYPE nedserve_corpora gauge\n")
	fmt.Fprintf(w, "nedserve_corpora %d\n", s.reg.Len())
	fmt.Fprintf(w, "# HELP ned_server_panics_total Panics recovered by the serving tier (handlers and background flushes).\n")
	fmt.Fprintf(w, "# TYPE ned_server_panics_total counter\n")
	fmt.Fprintf(w, "ned_server_panics_total %d\n", ss.Panics)

	// --- per-corpus engine counters ---
	// One Stats snapshot per tenant, then metric by metric: the text
	// format wants every sample of a metric name in one block.
	tenants := s.reg.All()
	stats := make([]ned.CorpusStats, len(tenants))
	for i, t := range tenants {
		stats[i] = t.Corpus.Stats()
	}
	emit := func(name, typ, help string, sample func(i int)) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i := range tenants {
			sample(i)
		}
	}
	emit("ned_corpus_nodes", "gauge", "Indexed node count.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_nodes{corpus=%q} %d\n", tenants[i].Name, stats[i].Nodes)
	})
	emit("ned_corpus_shards", "gauge", "Shard count the corpus partitions across.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_shards{corpus=%q} %d\n", tenants[i].Name, stats[i].Shards)
	})
	emit("ned_corpus_shard_nodes", "gauge", "Indexed node count per shard.", func(i int) {
		for si, sn := range stats[i].ShardNodes {
			fmt.Fprintf(w, "ned_corpus_shard_nodes{corpus=%q,shard=\"%d\"} %d\n", tenants[i].Name, si, sn)
		}
	})
	emit("ned_shard_lock_wait_ns_total", "counter", "Nanoseconds mutators spent waiting on each shard's write lock.", func(i int) {
		for si, v := range stats[i].ShardLockWaitNS {
			fmt.Fprintf(w, "ned_shard_lock_wait_ns_total{corpus=%q,shard=\"%d\"} %d\n", tenants[i].Name, si, v)
		}
	})
	emit("ned_shard_mutations_total", "counter", "Nodes mutated (inserted, removed, or refreshed) per shard.", func(i int) {
		for si, v := range stats[i].ShardMutations {
			fmt.Fprintf(w, "ned_shard_mutations_total{corpus=%q,shard=\"%d\"} %d\n", tenants[i].Name, si, v)
		}
	})
	emit("ned_shard_clone_bytes_total", "counter", "Approximate bytes of epoch state cloned by mutations per shard.", func(i int) {
		for si, v := range stats[i].ShardCloneBytes {
			fmt.Fprintf(w, "ned_shard_clone_bytes_total{corpus=%q,shard=\"%d\"} %d\n", tenants[i].Name, si, v)
		}
	})
	emit("ned_corpus_placement_overrides", "gauge", "Node-level placement moves the rebalancer has in effect.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_placement_overrides{corpus=%q} %d\n", tenants[i].Name, stats[i].PlacementOverrides)
	})
	emit("ned_corpus_rebalances_total", "counter", "Rebalancer ticks that changed the placement (splits plus merges).", func(i int) {
		fmt.Fprintf(w, "ned_corpus_rebalances_total{corpus=%q} %d\n", tenants[i].Name, stats[i].Rebalances)
	})
	emit("ned_corpus_shard_splits_total", "counter", "Hot-shard splits applied by the rebalancer.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_shard_splits_total{corpus=%q} %d\n", tenants[i].Name, stats[i].ShardSplits)
	})
	emit("ned_corpus_shard_merges_total", "counter", "Cold-shard merges applied by the rebalancer.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_shard_merges_total{corpus=%q} %d\n", tenants[i].Name, stats[i].ShardMerges)
	})
	emit("ned_corpus_plan_modes_total", "counter", "Query plans executed, by fan-out mode chosen by the planner.", func(i int) {
		n := tenants[i].Name
		fmt.Fprintf(w, "ned_corpus_plan_modes_total{corpus=%q,mode=\"parallel\"} %d\n", n, stats[i].PlanParallel)
		fmt.Fprintf(w, "ned_corpus_plan_modes_total{corpus=%q,mode=\"sequential\"} %d\n", n, stats[i].PlanSequential)
		fmt.Fprintf(w, "ned_corpus_plan_modes_total{corpus=%q,mode=\"single\"} %d\n", n, stats[i].PlanSingle)
	})
	emit("ned_corpus_plan_scans_total", "counter", "Per-shard scan-over-tree decisions taken by the planner.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_plan_scans_total{corpus=%q} %d\n", tenants[i].Name, stats[i].PlanScans)
	})
	emit("ned_corpus_queries_total", "counter", "Queries served by the engine.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_queries_total{corpus=%q} %d\n", tenants[i].Name, stats[i].Queries)
	})
	emit("ned_corpus_distance_calls_total", "counter", "TED* evaluations started.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_distance_calls_total{corpus=%q} %d\n", tenants[i].Name, stats[i].DistanceCalls)
	})
	emit("ned_corpus_early_exits_total", "counter", "TED* evaluations abandoned by the budget mid-computation.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_early_exits_total{corpus=%q} %d\n", tenants[i].Name, stats[i].EarlyExits)
	})
	emit("ned_corpus_lower_bound_prunes_total", "counter", "Candidates dismissed by a precompiled lower bound (sum of the cascade tiers).", func(i int) {
		fmt.Fprintf(w, "ned_corpus_lower_bound_prunes_total{corpus=%q} %d\n", tenants[i].Name, stats[i].LowerBoundPrunes)
	})
	emit("ned_corpus_cascade_prunes_total", "counter", "Candidates dismissed per filter-cascade tier (size, padding, label).", func(i int) {
		n := tenants[i].Name
		fmt.Fprintf(w, "ned_corpus_cascade_prunes_total{corpus=%q,tier=\"size\"} %d\n", n, stats[i].SizePrunes)
		fmt.Fprintf(w, "ned_corpus_cascade_prunes_total{corpus=%q,tier=\"padding\"} %d\n", n, stats[i].PaddingPrunes)
		fmt.Fprintf(w, "ned_corpus_cascade_prunes_total{corpus=%q,tier=\"label\"} %d\n", n, stats[i].LabelPrunes)
	})
	emit("ned_corpus_block_candidates_total", "counter", "Candidate slots swept by the columnar block kernels of the linear and pruned scans.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_block_candidates_total{corpus=%q} %d\n", tenants[i].Name, stats[i].BlockCandidates)
	})
	emit("ned_corpus_block_survivors_total", "counter", "Block-kernel candidates that passed each cascade tier (label survivors reached verify).", func(i int) {
		n := tenants[i].Name
		fmt.Fprintf(w, "ned_corpus_block_survivors_total{corpus=%q,tier=\"size\"} %d\n", n, stats[i].BlockSizeSurvivors)
		fmt.Fprintf(w, "ned_corpus_block_survivors_total{corpus=%q,tier=\"padding\"} %d\n", n, stats[i].BlockPaddingSurvivors)
		fmt.Fprintf(w, "ned_corpus_block_survivors_total{corpus=%q,tier=\"label\"} %d\n", n, stats[i].BlockLabelSurvivors)
	})
	emit("ned_corpus_rebuilds_total", "counter", "Index rebuilds (amortized per-shard plus explicit).", func(i int) {
		fmt.Fprintf(w, "ned_corpus_rebuilds_total{corpus=%q} %d\n", tenants[i].Name, stats[i].Rebuilds)
	})
	emit("ned_corpus_stale_ratio", "gauge", "Fraction of index structure occupied by tombstones or unindexed appends.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_stale_ratio{corpus=%q} %g\n", tenants[i].Name, stats[i].StaleRatio)
	})

	// --- per-corpus durability health ---
	healths := make([]ned.DurableHealth, len(tenants))
	for i, t := range tenants {
		healths[i] = t.Corpus.DurableHealth()
	}
	emit("ned_corpus_durable", "gauge", "1 when the corpus persists mutations to a durable directory.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_durable{corpus=%q} %d\n", tenants[i].Name, b2i(healths[i].Durable))
	})
	emit("ned_corpus_degraded", "gauge", "1 while durable storage failure has the corpus refusing mutations (reads unaffected).", func(i int) {
		fmt.Fprintf(w, "ned_corpus_degraded{corpus=%q} %d\n", tenants[i].Name, b2i(healths[i].Degraded))
	})
	emit("ned_corpus_degraded_seconds", "gauge", "Seconds since the corpus degraded; 0 while healthy.", func(i int) {
		secs := 0.0
		if healths[i].Degraded {
			secs = time.Since(healths[i].Since).Seconds()
		}
		fmt.Fprintf(w, "ned_corpus_degraded_seconds{corpus=%q} %g\n", tenants[i].Name, secs)
	})
	emit("ned_corpus_recovery_attempts_total", "counter", "Verified-rewrite recovery attempts made while degraded.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_recovery_attempts_total{corpus=%q} %d\n", tenants[i].Name, healths[i].RecoveryAttempts)
	})
	emit("ned_corpus_quarantined_checkpoints_total", "counter", "Checkpoint generations renamed aside as unreadable.", func(i int) {
		fmt.Fprintf(w, "ned_corpus_quarantined_checkpoints_total{corpus=%q} %d\n", tenants[i].Name, healths[i].QuarantinedCheckpoints)
	})
	emit("ned_corpus_wal_records", "gauge", "Mutation records in the active log generation (replay debt at next recovery).", func(i int) {
		fmt.Fprintf(w, "ned_corpus_wal_records{corpus=%q} %d\n", tenants[i].Name, healths[i].WALRecords)
	})
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
