package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ned"
	"ned/internal/tree"
)

// ringSpec builds an n-cycle with a few chords so neighborhoods differ
// across nodes and KNN answers are non-trivial.
func ringSpec(n int) *GraphSpec {
	gs := &GraphSpec{Nodes: n}
	for i := 0; i < n; i++ {
		gs.Edges = append(gs.Edges, [2]int{i, (i + 1) % n})
	}
	for i := 0; i < n; i += 7 {
		gs.Edges = append(gs.Edges, [2]int{i, (i + n/2) % n})
	}
	return gs
}

// newTestServer boots a Server over httptest and registers cleanup.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON round-trips a JSON request and decodes the response body.
func postJSON(t *testing.T, url string, req, resp any) (int, []byte) {
	t.Helper()
	var body io.Reader
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		body = bytes.NewReader(b)
	}
	r, err := http.Post(url, "application/json", body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if resp != nil {
		if err := json.Unmarshal(raw, resp); err != nil {
			t.Fatalf("unmarshal response %q: %v", raw, err)
		}
	}
	return r.StatusCode, raw
}

func getJSON(t *testing.T, url string, resp any) (int, []byte) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if resp != nil {
		if err := json.Unmarshal(raw, resp); err != nil {
			t.Fatalf("unmarshal response %q: %v", raw, err)
		}
	}
	return r.StatusCode, raw
}

// mustCreate creates a corpus over the API and fails the test otherwise.
func mustCreate(t *testing.T, base string, cr CreateRequest) CorpusInfo {
	t.Helper()
	var info CorpusInfo
	status, raw := postJSON(t, base+"/v1/corpora", cr, &info)
	if status != http.StatusCreated {
		t.Fatalf("create %q: status %d, body %s", cr.Name, status, raw)
	}
	return info
}

// sigJSON extracts node v's signature from a reference corpus built over
// the same spec, in the wire encoding.
func sigJSON(t *testing.T, gs *GraphSpec, k, v int) SignatureJSON {
	t.Helper()
	g, err := gs.Build()
	if err != nil {
		t.Fatalf("build graph: %v", err)
	}
	c, err := ned.NewCorpus(g, k)
	if err != nil {
		t.Fatalf("build corpus: %v", err)
	}
	sig, err := c.Signature(ned.NodeID(v))
	if err != nil {
		t.Fatalf("signature(%d): %v", v, err)
	}
	return SignatureJSON{Node: v, K: sig.K, Tree: tree.Encode(sig.Tree)}
}

// TestServeEndToEnd drives every endpoint over two corpora, with the
// query traffic for both running concurrently.
func TestServeEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	gs1, gs2 := ringSpec(60), ringSpec(90)

	mustCreate(t, ts.URL, CreateRequest{Name: "g1", K: 3, Graph: gs1})
	mustCreate(t, ts.URL, CreateRequest{Name: "g2", K: 2, Backend: "bk", Shards: 2, Graph: gs2})

	var list struct {
		Corpora []CorpusInfo `json:"corpora"`
	}
	if status, raw := getJSON(t, ts.URL+"/v1/corpora", &list); status != 200 || len(list.Corpora) != 2 {
		t.Fatalf("list: status %d, body %s", status, raw)
	}
	if list.Corpora[0].Name != "g1" || list.Corpora[1].Name != "g2" {
		t.Fatalf("list order: %+v", list.Corpora)
	}
	if list.Corpora[1].Backend != "bk" || list.Corpora[1].Shards != 2 {
		t.Fatalf("g2 options not honored: %+v", list.Corpora[1])
	}

	// Concurrent query traffic over both tenants, every query endpoint.
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	queryCorpus := func(name string, gs *GraphSpec, k int) {
		defer wg.Done()
		base := ts.URL + "/v1/corpora/" + name
		sj := sigJSON(t, gs, k, 5)
		for i := 0; i < 8; i++ {
			var qr QueryResponse
			if status, raw := postJSON(t, base+"/knn", KNNRequest{Node: i, L: 3}, &qr); status != 200 {
				errs <- fmt.Errorf("%s knn: %d %s", name, status, raw)
				return
			} else if len(qr.Neighbors) != 3 || qr.Corpus != name {
				errs <- fmt.Errorf("%s knn answer: %+v", name, qr)
				return
			}
			if status, raw := postJSON(t, base+"/knnsig", KNNSigRequest{Signature: sj, L: 2}, &qr); status != 200 {
				errs <- fmt.Errorf("%s knnsig: %d %s", name, status, raw)
				return
			}
			if status, raw := postJSON(t, base+"/range", RangeRequest{Signature: sj, R: 1}, &qr); status != 200 {
				errs <- fmt.Errorf("%s range: %d %s", name, status, raw)
				return
			}
			var found bool
			for _, nb := range qr.Neighbors {
				if nb.Node == 5 && nb.Dist == 0 {
					found = true
				}
			}
			if !found {
				errs <- fmt.Errorf("%s range(1) around node 5's own signature misses node 5: %+v", name, qr.Neighbors)
				return
			}
			if status, raw := postJSON(t, base+"/nearestset", NearestSetRequest{Signature: sj}, &qr); status != 200 {
				errs <- fmt.Errorf("%s nearestset: %d %s", name, status, raw)
				return
			}
			var br BatchResponse
			if status, raw := postJSON(t, base+"/batchknn", BatchKNNRequest{Nodes: []int{0, 1, 2}, Signatures: []SignatureJSON{sj}, L: 2}, &br); status != 200 {
				errs <- fmt.Errorf("%s batchknn: %d %s", name, status, raw)
				return
			} else if len(br.Results) != 4 {
				errs <- fmt.Errorf("%s batchknn results: %+v", name, br)
				return
			}
		}
	}
	wg.Add(2)
	go queryCorpus("g1", gs1, 3)
	go queryCorpus("g2", gs2, 2)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Mutations on g1: remove two nodes, verify they stop answering as
	// results, insert them back, and refresh via updategraph.
	var mresp map[string]any
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/g1/remove", NodesRequest{Nodes: []int{5, 6}}, &mresp); status != 200 {
		t.Fatalf("remove: %d %s", status, raw)
	}
	var qr QueryResponse
	postJSON(t, ts.URL+"/v1/corpora/g1/knn", KNNRequest{Node: 5, L: 60}, &qr)
	for _, nb := range qr.Neighbors {
		if nb.Node == 5 || nb.Node == 6 {
			t.Fatalf("removed node %d still answering", nb.Node)
		}
	}
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/g1/insert", NodesRequest{Nodes: []int{5, 6}}, &mresp); status != 200 {
		t.Fatalf("insert: %d %s", status, raw)
	}
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/g1/updategraph", gs1, &mresp); status != 200 {
		t.Fatalf("updategraph: %d %s", status, raw)
	}

	// Stats document matches the shared schema.
	var doc StatsDoc
	if status, raw := getJSON(t, ts.URL+"/v1/corpora/g1/stats", &doc); status != 200 {
		t.Fatalf("stats: %d %s", status, raw)
	}
	if doc.Corpus != "g1" || doc.Stats.Nodes != 60 || doc.Stats.Queries == 0 {
		t.Fatalf("stats doc: %+v", doc)
	}

	// Snapshot round-trips through LoadCorpus.
	resp, err := http.Get(ts.URL + "/v1/corpora/g2/snapshot")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, snap)
	}
	restored, err := ned.LoadCorpus(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("LoadCorpus(snapshot): %v", err)
	}
	if rs := restored.Stats(); rs.Nodes != 90 || rs.K != 2 {
		t.Fatalf("restored corpus: %+v", rs)
	}

	// Health names both corpora; drop brings it to one.
	var health struct {
		Status  string `json:"status"`
		Corpora int    `json:"corpora"`
	}
	if status, _ := getJSON(t, ts.URL+"/healthz", &health); status != 200 || health.Corpora != 2 {
		t.Fatalf("healthz: %d %+v", status, health)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/corpora/g1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil || dresp.StatusCode != 200 {
		t.Fatalf("drop: %v %v", err, dresp)
	}
	dresp.Body.Close()
	if s.Registry().Len() != 1 {
		t.Fatalf("registry after drop: %d tenants", s.Registry().Len())
	}
}

// TestErrorMapping pins the wire contract: typed errors come back as
// stable JSON codes with their mapped HTTP statuses.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustCreate(t, ts.URL, CreateRequest{Name: "g", K: 2, Graph: ringSpec(20)})

	decodeErr := func(raw []byte) string {
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("error body %q: %v", raw, err)
		}
		return er.Error.Code
	}

	cases := []struct {
		name   string
		do     func() (int, []byte)
		status int
		code   string
	}{
		{"unknown corpus", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora/nope/knn", KNNRequest{Node: 0, L: 1}, nil)
		}, http.StatusNotFound, "corpus_not_found"},
		{"duplicate create", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora", CreateRequest{Name: "g", K: 2, Graph: ringSpec(4)}, nil)
		}, http.StatusConflict, "corpus_exists"},
		{"bad l", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora/g/knn", KNNRequest{Node: 0, L: 0}, nil)
		}, http.StatusBadRequest, "bad_l"},
		{"node out of range", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora/g/knn", KNNRequest{Node: 9999, L: 1}, nil)
		}, http.StatusBadRequest, "node_out_of_range"},
		{"bad radius", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora/g/range", RangeRequest{Signature: sigJSON(t, ringSpec(20), 2, 0), R: -1}, nil)
		}, http.StatusBadRequest, "bad_radius"},
		{"k mismatch", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora/g/knnsig", KNNSigRequest{Signature: sigJSON(t, ringSpec(20), 3, 0), L: 1}, nil)
		}, http.StatusBadRequest, "k_mismatch"},
		{"bad signature tree", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora/g/knnsig", KNNSigRequest{Signature: SignatureJSON{K: 2, Tree: "not-a-tree(("}, L: 1}, nil)
		}, http.StatusBadRequest, "bad_signature"},
		{"malformed body", func() (int, []byte) {
			r, err := http.Post(ts.URL+"/v1/corpora/g/knn", "application/json", strings.NewReader("{nope"))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Body.Close()
			raw, _ := io.ReadAll(r.Body)
			return r.StatusCode, raw
		}, http.StatusBadRequest, "bad_request"},
		{"bad backend on create", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora", CreateRequest{Name: "h", K: 2, Backend: "btree", Graph: ringSpec(4)}, nil)
		}, http.StatusBadRequest, "bad_backend"},
		{"bad corpus name", func() (int, []byte) {
			return postJSON(t, ts.URL+"/v1/corpora", CreateRequest{Name: "sp ace", K: 2, Graph: ringSpec(4)}, nil)
		}, http.StatusBadRequest, "bad_request"},
		{"drop unknown", func() (int, []byte) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/corpora/nope", nil)
			r, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Body.Close()
			raw, _ := io.ReadAll(r.Body)
			return r.StatusCode, raw
		}, http.StatusNotFound, "corpus_not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := tc.do()
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, raw)
			}
			if code := decodeErr(raw); code != tc.code {
				t.Fatalf("code = %q, want %q (body %s)", code, tc.code, raw)
			}
		})
	}
}

// TestMetricsExport checks the Prometheus exposition carries both the
// server counters and the per-corpus engine counters.
func TestMetricsExport(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	mustCreate(t, ts.URL, CreateRequest{Name: "m1", K: 2, Graph: ringSpec(30)})
	mustCreate(t, ts.URL, CreateRequest{Name: "m2", K: 2, Graph: ringSpec(40)})
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/corpora/m1/knn", KNNRequest{Node: i, L: 2}, nil)
	}
	postJSON(t, ts.URL+"/v1/corpora/m2/knn", KNNRequest{Node: 0, L: 2}, nil)

	status, raw := getJSON(t, ts.URL+"/metrics", nil)
	if status != 200 {
		t.Fatalf("metrics: %d", status)
	}
	text := string(raw)
	for _, want := range []string{
		`nedserve_requests_total{endpoint="knn",code="200"}`,
		`nedserve_request_duration_seconds_bucket{endpoint="knn",le="+Inf"}`,
		`nedserve_request_duration_seconds_count{endpoint="knn"}`,
		"nedserve_inflight_limit 256",
		"nedserve_overloads_total 0",
		"nedserve_corpora 2",
		`ned_corpus_nodes{corpus="m1"} 30`,
		`ned_corpus_nodes{corpus="m2"} 40`,
		`ned_corpus_queries_total{corpus="m1"}`,
		`ned_corpus_cascade_prunes_total{corpus="m1",tier="size"}`,
		`ned_corpus_cascade_prunes_total{corpus="m2",tier="label"}`,
		`ned_corpus_shard_nodes{corpus="m1",shard="0"}`,
		`ned_corpus_stale_ratio{corpus="m1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Engine query counters must reflect the traffic that just ran.
	var doc StatsDoc
	getJSON(t, ts.URL+"/v1/corpora/m1/stats", &doc)
	if doc.Stats.Queries < 3 {
		t.Fatalf("m1 engine queries = %d, want >= 3", doc.Stats.Queries)
	}
}

// TestGracefulShutdownDrains pins the drain contract: Shutdown waits for
// an admitted in-flight query, which completes with its full answer.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Options{})
	admitted := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.afterAdmit = func() {
		once.Do(func() {
			close(admitted)
			<-release
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mustCreate(t, ts.URL, CreateRequest{Name: "d", K: 2, Graph: ringSpec(30)})

	type result struct {
		status int
		resp   QueryResponse
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		var r result
		body, _ := json.Marshal(KNNRequest{Node: 0, L: 3})
		resp, err := http.Post(ts.URL+"/v1/corpora/d/knn", "application/json", bytes.NewReader(body))
		if err != nil {
			r.err = err
		} else {
			defer resp.Body.Close()
			r.status = resp.StatusCode
			r.err = json.NewDecoder(resp.Body).Decode(&r.resp)
		}
		resc <- r
	}()

	<-admitted
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- ts.Config.Shutdown(context.Background()) }()

	// Shutdown must not return while the query is still held open.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before in-flight query finished: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the query drained")
	}
	r := <-resc
	if r.err != nil || r.status != 200 || len(r.resp.Neighbors) != 3 {
		t.Fatalf("drained query result: err=%v status=%d resp=%+v", r.err, r.status, r.resp)
	}
}
