package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ned"
)

// admission is the bounded in-flight query budget: a semaphore that
// fails fast instead of queuing, so an overloaded server spends its
// cycles finishing admitted work and answering 429s in microseconds
// rather than stacking goroutines behind queries it will only slow
// down.
type admission struct {
	slots     chan struct{}
	overloads atomic.Int64
}

func newAdmission(limit int) *admission {
	return &admission{slots: make(chan struct{}, limit)}
}

// tryAcquire claims a slot or reports overload immediately.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		a.overloads.Add(1)
		return false
	}
}

func (a *admission) release() { <-a.slots }

// inflight is the currently admitted query count.
func (a *admission) inflight() int { return len(a.slots) }

// limit is the admission capacity.
func (a *admission) limit() int { return cap(a.slots) }

// coalKey groups coalescable requests: same corpus (by engine pointer,
// so a dropped-and-recreated name never mixes corpora) and same l.
type coalKey struct {
	c *ned.Corpus
	l int
}

// coalResult is one member's share of a flushed batch.
type coalResult struct {
	nbs []ned.Neighbor
	err error
}

// coalReq is one waiting KNN request.
type coalReq struct {
	ctx  context.Context
	sig  ned.Signature
	done chan coalResult // buffered: the flusher never blocks on a member that left
}

// coalBatch accumulates requests for one key until the window elapses
// or the batch fills.
type coalBatch struct {
	timer *time.Timer
	reqs  []*coalReq
	once  sync.Once
}

// coalescer batches concurrent single-node KNN requests against the
// same corpus into one BatchKNN executor pass. The first request for a
// (corpus, l) pair opens a small window; requests arriving inside it
// join the batch, and the flush fans results back out. Under burst
// load this converts n independent shard fan-outs into one executor
// pass over n queries — the engine's own batching path — at the cost
// of at most one window of added latency, and only when a burst
// actually materializes (a lone request flushes as itself, uncounted).
//
// Answers are node-identical to direct KNN calls: a batch member's
// query signature is extracted from the same graph node the direct
// path would use, and BatchKNN runs the same cascade + canonical
// (distance, node) merge per query. The equivalence suite pins this.
type coalescer struct {
	window   time.Duration
	maxBatch int

	// onPanic, when set, observes a recovered panic from a flush
	// goroutine (counted and logged by the server). Flushes run outside
	// any HTTP handler, so without recovery here a panicking engine
	// call would kill the whole daemon, not one connection.
	onPanic func(p any)

	mu      sync.Mutex
	pending map[coalKey]*coalBatch

	batches   atomic.Int64 // multi-request executor passes flushed
	coalesced atomic.Int64 // requests served by those passes
}

func newCoalescer(window time.Duration, maxBatch int) *coalescer {
	return &coalescer{
		window:   window,
		maxBatch: maxBatch,
		pending:  make(map[coalKey]*coalBatch),
	}
}

// knn enqueues one single-node KNN request and waits for its result or
// the request's own context. A member whose context dies stops waiting
// immediately; the batch it joined keeps running for the others.
func (co *coalescer) knn(ctx context.Context, c *ned.Corpus, sig ned.Signature, l int) ([]ned.Neighbor, error) {
	key := coalKey{c, l}
	req := &coalReq{ctx: ctx, sig: sig, done: make(chan coalResult, 1)}

	co.mu.Lock()
	b := co.pending[key]
	if b == nil {
		b = &coalBatch{}
		co.pending[key] = b
		b.timer = time.AfterFunc(co.window, func() { co.flush(key, b) })
	}
	b.reqs = append(b.reqs, req)
	full := len(b.reqs) >= co.maxBatch
	if full {
		delete(co.pending, key)
		b.timer.Stop()
	}
	co.mu.Unlock()
	if full {
		go co.flush(key, b)
	}

	select {
	case res := <-req.done:
		return res.nbs, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flush detaches the batch from the pending table (if the timer beat
// the full-batch path to it) and runs it exactly once.
func (co *coalescer) flush(key coalKey, b *coalBatch) {
	co.mu.Lock()
	if co.pending[key] == b {
		delete(co.pending, key)
	}
	co.mu.Unlock()
	b.once.Do(func() { co.run(key, b.reqs) })
}

// run executes a detached batch. Requests are only appended while a
// batch sits in the pending table, so reqs is immutable here. A panic
// out of the engine is recovered: every member that has not received a
// result yet gets a typed error instead of hanging until its context
// dies, and the daemon survives.
func (co *coalescer) run(key coalKey, reqs []*coalReq) {
	defer func() {
		if p := recover(); p != nil {
			if co.onPanic != nil {
				co.onPanic(p)
			}
			err := fmt.Errorf("%w: coalesced batch: %v", ErrPanic, p)
			for _, r := range reqs {
				select {
				case r.done <- coalResult{err: err}:
				default: // already answered before the panic
				}
			}
		}
	}()
	co.runBatch(key, reqs)
}

func (co *coalescer) runBatch(key coalKey, reqs []*coalReq) {
	if len(reqs) == 1 {
		// No burst materialized: serve directly under the request's own
		// context, and don't count it as coalesced.
		r := reqs[0]
		nbs, err := key.c.KNNSignature(r.ctx, r.sig, key.l)
		r.done <- coalResult{nbs, err}
		return
	}
	co.batches.Add(1)
	co.coalesced.Add(int64(len(reqs)))

	// The batch context cancels only when every member has given up:
	// one impatient client must not abort a pass others still want,
	// while a wholly abandoned pass should stop burning executor time.
	execCtx, cancel := context.WithCancel(context.Background())
	execDone := make(chan struct{})
	var live atomic.Int32
	live.Store(int32(len(reqs)))
	for _, r := range reqs {
		go func(rc context.Context) {
			select {
			case <-rc.Done():
				if live.Add(-1) == 0 {
					cancel()
				}
			case <-execDone:
			}
		}(r.ctx)
	}

	sigs := make([]ned.Signature, len(reqs))
	for i, r := range reqs {
		sigs[i] = r.sig
	}
	results, err := key.c.BatchKNN(execCtx, sigs, key.l)
	close(execDone)
	cancel()
	for i, r := range reqs {
		if err != nil {
			r.done <- coalResult{err: err}
		} else {
			r.done <- coalResult{nbs: results[i]}
		}
	}
}

// stats reports the coalescer's lifetime counters.
func (co *coalescer) stats() (batches, coalesced int64) {
	return co.batches.Load(), co.coalesced.Load()
}
