package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"ned"
	"ned/internal/faultfs"
)

// The serving tier under injected storage failure: a tenant whose disk
// dies must degrade — mutations 503 with a stable code and Retry-After,
// reads keep answering, /readyz flips while /healthz stays up, the
// gauges move — and recover end-to-end once the disk heals.

// TestServeDegradedTenantLifecycle drives the full degrade/serve/recover
// arc over the HTTP API with a scripted ENOSPC on checkpoint writes.
func TestServeDegradedTenantLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: ned.FsyncNone, CheckpointEvery: 1, CoalesceWindow: -1}
	s, ts := newTestServer(t, opts)
	mustCreate(t, ts.URL, CreateRequest{Name: "ring", K: 2, Backend: "linear", Graph: ringSpec(40)})

	// Script every checkpoint-segment write under the data directory to
	// fail with ENOSPC. The WAL handle predates the injector, so commits
	// keep succeeding — exactly the "log fine, segment disk full" shape.
	inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{
		Op: faultfs.OpWrite, Path: "checkpoint-", Fault: faultfs.FaultErr, Err: syscall.ENOSPC,
	})
	defer inj.Install()()

	// The remove itself commits (200 — the client's write is durable in
	// the log); the auto-checkpoint it triggers hits the fault and
	// degrades the tenant.
	var resp map[string]any
	status, raw := postJSON(t, ts.URL+"/v1/corpora/ring/remove", NodesRequest{Nodes: []int{3}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("remove that triggers the failing checkpoint: status %d, body %s", status, raw)
	}
	if got := s.Stats().DegradedCorpora; got != 1 {
		t.Fatalf("DegradedCorpora = %d, want 1", got)
	}

	// Mutations on the degraded tenant: 503, code "degraded", Retry-After.
	r, err := http.Post(ts.URL+"/v1/corpora/ring/remove", "application/json", strings.NewReader(`{"nodes":[5]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation on degraded tenant: status %d, body %s", r.StatusCode, body)
	}
	if !strings.Contains(string(body), `"degraded"`) {
		t.Fatalf("degraded mutation error body missing code: %s", body)
	}
	if ra := r.Header.Get("Retry-After"); ra == "" {
		t.Fatal("degraded 503 carries no Retry-After header")
	}
	var er ErrorResponse
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/ring/insert", NodesRequest{Nodes: []int{3}}, &er); status != http.StatusServiceUnavailable || er.Error.Code != "degraded" {
		t.Fatalf("insert on degraded tenant: status %d, code %q, body %s", status, er.Error.Code, raw)
	}

	// Reads keep serving, and they see the committed remove.
	var qr QueryResponse
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/ring/knn", KNNRequest{Node: 10, L: 4}, &qr); status != http.StatusOK {
		t.Fatalf("knn on degraded tenant: status %d, body %s", status, raw)
	}
	for _, n := range qr.Neighbors {
		if n.Node == 3 {
			t.Fatal("degraded read served the removed node")
		}
	}

	// /healthz is liveness (up), /readyz is writability (degraded).
	if status, _ := getJSON(t, ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Fatalf("/healthz on degraded server: status %d", status)
	}
	var ready map[string]any
	status, raw = getJSON(t, ts.URL+"/readyz", &ready)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with degraded tenant: status %d, body %s", status, raw)
	}
	if !strings.Contains(string(raw), `"ring"`) {
		t.Fatalf("/readyz does not name the degraded tenant: %s", raw)
	}

	// The gauges move.
	_, metrics := getJSON(t, ts.URL+"/metrics", nil)
	for _, want := range []string{
		`ned_corpus_degraded{corpus="ring"} 1`,
		`ned_corpus_durable{corpus="ring"} 1`,
		`ned_server_panics_total 0`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Disk heals: one recovery pass clears the tenant via the verified
	// checkpoint rewrite, and the whole surface flips back.
	inj.Reset()
	if n := s.RecoverDegraded(time.Now()); n != 1 {
		t.Fatalf("RecoverDegraded cleared %d tenants, want 1", n)
	}
	if status, raw := getJSON(t, ts.URL+"/readyz", nil); status != http.StatusOK {
		t.Fatalf("/readyz after recovery: status %d, body %s", status, raw)
	}
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/ring/remove", NodesRequest{Nodes: []int{5}}, &resp); status != http.StatusOK {
		t.Fatalf("mutation after recovery: status %d, body %s", status, raw)
	}
	_, metrics = getJSON(t, ts.URL+"/metrics", nil)
	if !strings.Contains(string(metrics), `ned_corpus_degraded{corpus="ring"} 0`) {
		t.Fatal("degraded gauge did not clear after recovery")
	}
	if err := s.CloseTenants(); err != nil {
		t.Fatalf("CloseTenants after recovery: %v", err)
	}
}

// TestServeDegradedBackoff: a recovery pass inside the backoff window
// must not hammer the dead disk — only the first due attempt runs.
func TestServeDegradedBackoff(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: ned.FsyncNone, CheckpointEvery: 1, CoalesceWindow: -1}
	s, ts := newTestServer(t, opts)
	mustCreate(t, ts.URL, CreateRequest{Name: "ring", K: 2, Backend: "linear", Graph: ringSpec(30)})

	inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{
		Op: faultfs.OpWrite, Path: "checkpoint-", Fault: faultfs.FaultErr,
	})
	defer inj.Install()()
	var resp map[string]any
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/ring/remove", NodesRequest{Nodes: []int{1}}, &resp); status != http.StatusOK {
		t.Fatalf("remove: status %d, body %s", status, raw)
	}

	now := time.Now()
	before := len(inj.Trips())
	if n := s.RecoverDegraded(now); n != 0 {
		t.Fatalf("recovery on a still-dead disk cleared %d tenants", n)
	}
	tripped := len(inj.Trips())
	if tripped == before {
		t.Fatal("first recovery pass never reached the disk")
	}
	// Second pass inside the backoff window: no disk contact at all.
	if n := s.RecoverDegraded(now.Add(10 * time.Millisecond)); n != 0 {
		t.Fatalf("in-window recovery cleared %d tenants", n)
	}
	if got := len(inj.Trips()); got != tripped {
		t.Fatalf("in-window recovery pass hit the disk (%d trips, had %d)", got, tripped)
	}
	// Past the window it tries again — and succeeds once the disk heals.
	inj.Reset()
	if n := s.RecoverDegraded(now.Add(time.Minute)); n != 1 {
		t.Fatalf("post-window recovery on a healed disk cleared %d tenants, want 1", n)
	}
	if err := s.CloseTenants(); err != nil {
		t.Fatal(err)
	}
}

// TestServePanicRecoveryHandler: a panic inside a typed handler costs
// one request — 500 with a stable code, counter moves, daemon serves on.
func TestServePanicRecoveryHandler(t *testing.T) {
	s, ts := newTestServer(t, Options{CoalesceWindow: -1})
	mustCreate(t, ts.URL, CreateRequest{Name: "ring", K: 2, Graph: ringSpec(20)})

	s.afterAdmit = func() { panic("injected handler panic") }
	var er ErrorResponse
	status, raw := postJSON(t, ts.URL+"/v1/corpora/ring/knn", KNNRequest{Node: 1, L: 3}, &er)
	if status != http.StatusInternalServerError || er.Error.Code != "panic" {
		t.Fatalf("panicking handler: status %d, code %q, body %s", status, er.Error.Code, raw)
	}
	s.afterAdmit = nil

	var qr QueryResponse
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/ring/knn", KNNRequest{Node: 1, L: 3}, &qr); status != http.StatusOK {
		t.Fatalf("request after recovered panic: status %d, body %s", status, raw)
	}
	if got := s.Stats().Panics; got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	_, metrics := getJSON(t, ts.URL+"/metrics", nil)
	if !strings.Contains(string(metrics), "ned_server_panics_total 1") {
		t.Fatal("panic counter missing from metrics export")
	}
}

// TestServePanicRecoveryOutermost: the recoverware barrier catches
// panics from handlers outside the typed adapter.
func TestServePanicRecoveryOutermost(t *testing.T) {
	s := New(Options{CoalesceWindow: -1})
	h := s.recoverware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/anything", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("recoverware answered %d, want 500", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), `"panic"`) {
		t.Fatalf("recoverware body missing panic code: %s", rr.Body.String())
	}
	if got := s.Stats().Panics; got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
}
