package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestCoalescedKNNNodeIdentical is the coalescing equivalence suite: for
// every backend, a burst of concurrent single-node KNN requests — which
// the server folds into shared BatchKNN passes — must return answers
// node-identical to the same queries served one at a time with
// coalescing disabled.
func TestCoalescedKNNNodeIdentical(t *testing.T) {
	const (
		nodes   = 80
		l       = 4
		queries = 32
	)
	gs := ringSpec(nodes)

	for _, backend := range []string{"vp", "bk", "linear", "pruned"} {
		t.Run(backend, func(t *testing.T) {
			// Reference answers: coalescing disabled, sequential queries.
			_, direct := newTestServer(t, Options{CoalesceWindow: -1})
			mustCreate(t, direct.URL, CreateRequest{Name: "c", K: 3, Backend: backend, Shards: 3, Graph: gs})
			want := make([][]NeighborJSON, queries)
			for i := 0; i < queries; i++ {
				var qr QueryResponse
				status, raw := postJSON(t, direct.URL+"/v1/corpora/c/knn", KNNRequest{Node: i % nodes, L: l}, &qr)
				if status != 200 {
					t.Fatalf("direct knn(%d): %d %s", i, status, raw)
				}
				want[i] = qr.Neighbors
			}

			// Coalesced answers: a wide window so the concurrent burst
			// lands in shared batches.
			coalServer, coal := newTestServer(t, Options{CoalesceWindow: 25 * time.Millisecond, CoalesceMaxBatch: queries})
			mustCreate(t, coal.URL, CreateRequest{Name: "c", K: 3, Backend: backend, Shards: 3, Graph: gs})
			// Materialize the index first so the burst spends its window
			// coalescing rather than racing the initial build.
			postJSON(t, coal.URL+"/v1/corpora/c/knn", KNNRequest{Node: 0, L: 1}, nil)

			got := make([][]NeighborJSON, queries)
			var wg sync.WaitGroup
			errs := make(chan error, queries)
			for i := 0; i < queries; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					var qr QueryResponse
					status, raw := postJSON(t, coal.URL+"/v1/corpora/c/knn", KNNRequest{Node: i % nodes, L: l}, &qr)
					if status != 200 {
						errs <- fmt.Errorf("coalesced knn(%d): %d %s", i, status, raw)
						return
					}
					got[i] = qr.Neighbors
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			for i := range want {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("query %d (node %d): coalesced answer diverges\n direct:    %+v\n coalesced: %+v",
						i, i%nodes, want[i], got[i])
				}
			}
			if ss := coalServer.Stats(); ss.CoalescedRequests == 0 {
				t.Fatalf("burst of %d concurrent queries produced no coalescing: %+v", queries, ss)
			} else {
				t.Logf("coalesced %d/%d requests into %d batches", ss.CoalescedRequests, queries, ss.CoalesceBatches)
			}
		})
	}
}

// TestCoalescerLoneRequestDirect checks a request with no companions
// flushes as a direct engine call and is not counted as coalesced.
func TestCoalescerLoneRequestDirect(t *testing.T) {
	s, ts := newTestServer(t, Options{CoalesceWindow: time.Millisecond})
	mustCreate(t, ts.URL, CreateRequest{Name: "c", K: 2, Graph: ringSpec(30)})
	var qr QueryResponse
	if status, raw := postJSON(t, ts.URL+"/v1/corpora/c/knn", KNNRequest{Node: 3, L: 2}, &qr); status != 200 {
		t.Fatalf("knn: %d %s", status, raw)
	}
	if len(qr.Neighbors) != 2 {
		t.Fatalf("knn answer: %+v", qr)
	}
	if ss := s.Stats(); ss.CoalescedRequests != 0 || ss.CoalesceBatches != 0 {
		t.Fatalf("lone request was counted as coalesced: %+v", ss)
	}
}

// TestAdmissionControl pins overload semantics: with the in-flight
// budget full, the next query is refused immediately with the 429
// overloaded code — without disturbing the admitted queries, which
// complete normally once unblocked.
func TestAdmissionControl(t *testing.T) {
	const limit = 2
	s := New(Options{MaxInflight: limit, CoalesceWindow: -1})
	admitted := make(chan struct{}, limit)
	release := make(chan struct{})
	s.afterAdmit = func() {
		admitted <- struct{}{}
		<-release
	}
	url := newUnstartedServer(t, s)
	mustCreate(t, url, CreateRequest{Name: "a", K: 2, Graph: ringSpec(40)})

	// Fill the budget with queries parked inside the admission window.
	type result struct {
		status int
		raw    []byte
	}
	results := make(chan result, limit)
	for i := 0; i < limit; i++ {
		go func(i int) {
			status, raw := postJSON(t, url+"/v1/corpora/a/knn", KNNRequest{Node: i, L: 2}, nil)
			results <- result{status, raw}
		}(i)
	}
	for i := 0; i < limit; i++ {
		select {
		case <-admitted:
		case <-time.After(5 * time.Second):
			t.Fatal("queries never reached the admission seam")
		}
	}

	// The budget is full: the next query must be refused fast.
	start := time.Now()
	status, raw := postJSON(t, url+"/v1/corpora/a/knn?timeout_ms=30000", KNNRequest{Node: 9, L: 2}, nil)
	fastFail := time.Since(start)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget query: status %d (body %s), want 429", status, raw)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Error.Code != "overloaded" {
		t.Fatalf("over-budget body %s, want code overloaded", raw)
	}
	if fastFail > time.Second {
		t.Fatalf("429 took %v; overload refusal must not queue", fastFail)
	}
	if ss := s.Stats(); ss.Inflight != limit || ss.Overloads != 1 {
		t.Fatalf("stats during overload: %+v", ss)
	}

	// Control-plane calls stay responsive while queries are saturated.
	if st, _ := getJSON(t, url+"/healthz", nil); st != 200 {
		t.Fatalf("healthz during overload: %d", st)
	}
	if st, _ := getJSON(t, url+"/v1/corpora/a/stats", nil); st != 200 {
		t.Fatalf("stats endpoint during overload: %d", st)
	}

	// Releasing the seam lets the admitted queries finish untouched.
	close(release)
	for i := 0; i < limit; i++ {
		r := <-results
		if r.status != 200 {
			t.Fatalf("admitted query finished with %d (body %s), want 200", r.status, r.raw)
		}
	}
	if ss := s.Stats(); ss.Inflight != 0 {
		t.Fatalf("inflight after drain: %+v", ss)
	}
}
