package bench

import (
	"context"
	"fmt"
	"math/rand"

	"ned/internal/datasets"
	"ned/internal/ned"
)

// AblationIndexes compares the nearest-neighbor query backends this
// library offers on the same NED workload — full scan, padding-bound
// pruned scan, VP-tree, and BK-tree — all driven through the unified
// ned.Index interface that the Corpus query engine serves from. The
// scan backend is the exact reference; the table reports per-query time
// and metric evaluations, counting any optimum misses the metric-tree
// backends incur from TED* triangle-tie artifacts (see the ted package
// faithfulness note) instead of asserting equality.
func AblationIndexes(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Ablation: NN query backends over NED (per-query mean)",
		Note:   fmt.Sprintf("%d candidates, %d queries, PGP analog, k=3", o.Candidates, o.Queries),
		Header: []string{"backend", "time (ms)", "TED* evals/query", "scan-optimum misses"},
	}
	g1 := o.dataset(datasets.PGP)
	g2 := datasets.MustGenerate(datasets.PGP, datasets.Options{Scale: o.Scale, Seed: o.Seed + 999})
	rng := rand.New(rand.NewSource(o.Seed + 61))
	queries := sampleNodes(g1, o.Queries, rng)
	cands := sampleNodes(g2, o.Candidates, rng)
	qs := ned.ItemsOf(ned.Signatures(g1, queries, 3))
	cs := ned.ItemsOf(ned.Signatures(g2, cands, 3))

	ctx := context.Background()
	backends := []struct {
		name string
		ix   ned.Index
	}{
		{"linear scan", ned.NewLinearBackend(cs, 1)},
		{"pruned scan", ned.NewPrunedLinearBackend(cs)},
		{"VP-tree", ned.NewVPBackend(cs)},
		{"BK-tree", ned.NewBKBackend(cs)},
	}

	scanBest := make([]int, len(qs))
	for bi, b := range backends {
		b.ix.ResetStats()
		var w stopwatch
		misses := 0
		for i, q := range qs {
			var res []ned.Neighbor
			w.time(func() { res, _ = b.ix.KNN(ctx, q, 1) })
			switch {
			case bi == 0:
				scanBest[i] = res[0].Dist
			case res[0].Dist != scanBest[i]:
				misses++
			}
		}
		t.AddRow(b.name, ms(w.mean()),
			fmt.Sprint(b.ix.DistanceCalls()/int64(len(qs))), fmt.Sprint(misses))
	}
	return t
}
