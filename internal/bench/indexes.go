package bench

import (
	"fmt"
	"math/rand"

	"ned/internal/datasets"
	"ned/internal/ned"
	"ned/internal/vptree"
)

// AblationIndexes compares the nearest-neighbor query strategies this
// library offers on the same NED workload: full scan, padding-bound
// pruned scan, VP-tree, and BK-tree. All four return the same nearest
// distance (asserted); the table reports per-query time and metric
// evaluations. DESIGN.md lists this ablation alongside the Figure 9b
// reproduction.
func AblationIndexes(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Ablation: NN query strategies over NED (per-query mean)",
		Note:   fmt.Sprintf("%d candidates, %d queries, PGP analog, k=3", o.Candidates, o.Queries),
		Header: []string{"strategy", "time (ms)", "TED* evals/query"},
	}
	g1 := o.dataset(datasets.PGP)
	g2 := datasets.MustGenerate(datasets.PGP, datasets.Options{Scale: o.Scale, Seed: o.Seed + 999})
	rng := rand.New(rand.NewSource(o.Seed + 61))
	queries := sampleNodes(g1, o.Queries, rng)
	cands := sampleNodes(g2, o.Candidates, rng)
	qs := ned.Signatures(g1, queries, 3)
	cs := ned.Signatures(g2, cands, 3)

	// Full scan.
	var wScan stopwatch
	scanBest := make([]int, len(qs))
	for i, q := range qs {
		wScan.time(func() { scanBest[i] = ned.TopL(q, cs, 1)[0].Dist })
	}
	t.AddRow("full scan", ms(wScan.mean()), fmt.Sprint(len(cs)))

	// Pruned scan (exact by construction: the padding bound is valid).
	var wPruned stopwatch
	evals := 0
	for i, q := range qs {
		var res []ned.Neighbor
		var stats ned.PruneStats
		wPruned.time(func() { res, stats = ned.PrunedTopL(q, cs, 1) })
		evals += stats.FullEvaluations
		if res[0].Dist != scanBest[i] {
			panic("pruned scan diverged from full scan")
		}
	}
	t.AddRow("pruned scan", ms(wPruned.mean()), fmt.Sprint(evals/len(qs)))

	// VP-tree.
	vp := vptree.New(cs, func(a, b ned.Signature) float64 {
		return float64(ned.Between(a, b))
	})
	vp.ResetStats()
	var wVP stopwatch
	vpMiss := 0
	for i, q := range qs {
		var res []vptree.Result[ned.Signature]
		wVP.time(func() { res = vp.KNN(q, 1) })
		// Metric-index pruning relies on the triangle inequality, which
		// the Algorithm-1 TED* can violate at a sub-percent rate (see the
		// ted package faithfulness note); count any resulting misses
		// instead of asserting equality.
		if int(res[0].Dist) != scanBest[i] {
			vpMiss++
		}
	}
	t.AddRow("VP-tree", ms(wVP.mean()), fmt.Sprint(vp.DistanceCalls()/len(qs)))
	if vpMiss > 0 {
		t.Note += fmt.Sprintf("; VP-tree missed the scan optimum on %d/%d queries (triangle-tie artifacts)", vpMiss, len(qs))
	}

	// BK-tree.
	bk := vptree.NewBK(cs, ned.Between)
	bk.ResetStats()
	var wBK stopwatch
	bkMiss := 0
	for i, q := range qs {
		var res []vptree.IntResult[ned.Signature]
		wBK.time(func() { res = bk.KNN(q, 1) })
		if res[0].Dist != scanBest[i] {
			bkMiss++
		}
	}
	t.AddRow("BK-tree", ms(wBK.mean()), fmt.Sprint(bk.DistanceCalls()/len(qs)))
	if bkMiss > 0 {
		t.Note += fmt.Sprintf("; BK-tree missed on %d/%d queries", bkMiss, len(qs))
	}

	return t
}
