package bench

import (
	"fmt"
	"math/rand"

	"ned/internal/datasets"
	"ned/internal/exact"
	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/ted"
	"ned/internal/tree"
)

// Options scales every experiment. Quick() returns smoke-test settings
// for Go benchmarks; Full() approximates the paper's workloads on the
// synthetic analogs.
type Options struct {
	// Scale multiplies dataset sizes (1.0 = default laptop size).
	Scale float64
	// Pairs is the number of random node pairs per timing experiment
	// (the paper uses 400 for Fig. 5–6, 1000 for Fig. 7b).
	Pairs int
	// Queries is the number of query nodes for Fig. 8 and 10–11
	// (the paper uses 100).
	Queries int
	// Candidates bounds the candidate set size in query experiments so
	// the full-scan baselines stay tractable.
	Candidates int
	// Seed fixes all sampling.
	Seed int64
}

// Quick returns smoke-test options used by the Go benchmarks.
func Quick() Options {
	return Options{Scale: 0.25, Pairs: 40, Queries: 10, Candidates: 200, Seed: 1}
}

// Full returns the paper-scale options used by cmd/nedbench.
func Full() Options {
	return Options{Scale: 1, Pairs: 400, Queries: 100, Candidates: 1000, Seed: 1}
}

// Normalize fills zero or negative fields with the Full() defaults, as
// every experiment entry point does internally; exported for external
// drivers like cmd/nedbench's corpus experiment.
func (o *Options) Normalize() { o.defaults() }

func (o *Options) defaults() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Pairs <= 0 {
		o.Pairs = 400
	}
	if o.Queries <= 0 {
		o.Queries = 100
	}
	if o.Candidates <= 0 {
		o.Candidates = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o Options) dataset(n datasets.Name) *graph.Graph {
	return datasets.MustGenerate(n, datasets.Options{Scale: o.Scale, Seed: o.Seed})
}

// sampleNodes draws n distinct nodes from g.
func sampleNodes(g *graph.Graph, n int, rng *rand.Rand) []graph.NodeID {
	perm := rng.Perm(g.NumNodes())
	if n > len(perm) {
		n = len(perm)
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(perm[i])
	}
	return out
}

// Table2 reproduces Table 2: the dataset summary.
func Table2(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Table 2: Datasets Summary (synthetic analogs)",
		Note:   fmt.Sprintf("scale=%.2f; paper sizes: CAR 1.97M/2.77M ... PGP 10.7K/24.3K", o.Scale),
		Header: []string{"Dataset", "#Nodes", "#Edges", "AvgDeg", "MaxDeg"},
	}
	for _, name := range datasets.All {
		g := o.dataset(name)
		s := datasets.Summarize(name, g)
		t.AddRow(string(s.Name), fmt.Sprint(s.Nodes), fmt.Sprint(s.Edges),
			fmt.Sprintf("%.2f", s.AvgDegree), fmt.Sprint(s.MaxDegree))
	}
	return t
}

// figure56Workload draws node pairs from the two road graphs and
// extracts k-adjacent trees small enough for the exact solvers, exactly
// like §13.1 ("400 pairs of nodes are randomly picked from (CAR) and
// (PAR)"). Pairs whose trees exceed the exact solvers' limits are
// skipped, mirroring the paper's restriction to 10–12 node inputs.
type fig56Pair struct {
	tu, tv *tree.Tree
	u, v   graph.NodeID
}

func figure56Workload(o Options, k int) (ga, gb *graph.Graph, pairs []fig56Pair) {
	ga = o.dataset(datasets.CAR)
	gb = o.dataset(datasets.PAR)
	rng := rand.New(rand.NewSource(o.Seed + int64(100*k)))
	// Small-enough trees get rarer as k grows (at k=4 most road
	// neighborhoods exceed the exact solvers' limits), so the rejection
	// sampling is attempt-capped rather than count-driven.
	attempts := 200 * o.Pairs
	for try := 0; try < attempts && len(pairs) < o.Pairs; try++ {
		u := graph.NodeID(rng.Intn(ga.NumNodes()))
		v := graph.NodeID(rng.Intn(gb.NumNodes()))
		tu, _ := tree.KAdjacent(ga, u, k)
		tv, _ := tree.KAdjacent(gb, v, k)
		if tu.Size() > exact.MaxTreeNodes || tv.Size() > exact.MaxTreeNodes {
			continue
		}
		pairs = append(pairs, fig56Pair{tu: tu, tv: tv, u: u, v: v})
	}
	return ga, gb, pairs
}

// Figure5 reproduces Figures 5a (computation time) and 5b (distance
// values) comparing TED*, exact TED, and exact GED on road-graph
// k-adjacent trees for k = 1..4.
func Figure5(o Options) (timeTable, valueTable Table) {
	o.defaults()
	timeTable = Table{
		Title:  "Figure 5a: Computation Time — TED* vs TED vs GED (µs/pair)",
		Header: []string{"k", "TED* (µs)", "TED (µs)", "GED (µs)", "pairs"},
	}
	valueTable = Table{
		Title:  "Figure 5b: Distance Values — TED* vs TED vs GED (mean)",
		Header: []string{"k", "TED*", "TED", "GED", "pairs"},
	}
	for k := 1; k <= 4; k++ {
		ga, gb, pairs := figure56Workload(o, k)
		var wStar, wTED, wGED stopwatch
		var sStar, sTED, sGED float64
		n := 0
		for _, p := range pairs {
			var dStar, dTED, dGED int
			var okT, okG bool
			wStar.time(func() { dStar = ted.Distance(p.tu, p.tv) })
			wTED.time(func() { dTED, okT = exact.TED(p.tu, p.tv) })
			// GED on the k-hop subgraphs around the same nodes (§13.1).
			sub1, _, _ := graph.KHopSubgraph(ga, p.u, k)
			sub2, _, _ := graph.KHopSubgraph(gb, p.v, k)
			if sub1.NumNodes() <= exact.MaxGraphNodes && sub2.NumNodes() <= exact.MaxGraphNodes {
				wGED.time(func() { dGED, okG = exact.GED(sub1, sub2) })
			}
			if !okT || !okG {
				continue
			}
			sStar += float64(dStar)
			sTED += float64(dTED)
			sGED += float64(dGED)
			n++
		}
		if n == 0 {
			continue
		}
		timeTable.AddRow(fmt.Sprint(k), us(wStar.mean()), us(wTED.mean()), us(wGED.mean()), fmt.Sprint(n))
		valueTable.AddRow(fmt.Sprint(k),
			fmt.Sprintf("%.2f", sStar/float64(n)),
			fmt.Sprintf("%.2f", sTED/float64(n)),
			fmt.Sprintf("%.2f", sGED/float64(n)),
			fmt.Sprint(n))
	}
	return timeTable, valueTable
}

// Figure6 reproduces Figures 6a (relative error |TED−TED*|/TED) and 6b
// (fraction of pairs where TED* equals TED exactly).
func Figure6(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Figure 6: TED* vs TED — relative error and equivalency ratio",
		Header: []string{"k", "avg |TED-TED*|/TED", "stddev", "TED*==TED ratio", "pairs"},
	}
	for k := 1; k <= 4; k++ {
		_, _, pairs := figure56Workload(o, k)
		var errs []float64
		equal, n := 0, 0
		for _, p := range pairs {
			dTED, ok := exact.TED(p.tu, p.tv)
			if !ok {
				continue
			}
			dStar := ted.Distance(p.tu, p.tv)
			n++
			if dStar == dTED {
				equal++
			}
			if dTED > 0 {
				diff := float64(dTED - dStar)
				if diff < 0 {
					diff = -diff
				}
				errs = append(errs, diff/float64(dTED))
			} else if dStar == 0 {
				errs = append(errs, 0)
			}
		}
		if n == 0 {
			continue
		}
		mean, std := meanStd(errs)
		t.AddRow(fmt.Sprint(k), fmt.Sprintf("%.3f", mean), fmt.Sprintf("%.3f", std),
			fmt.Sprintf("%.2f", float64(equal)/float64(n)), fmt.Sprint(n))
	}
	return t
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std /= float64(len(xs))
	// Newton sqrt to avoid importing math for one call.
	r := std
	if r > 0 {
		g := r
		for i := 0; i < 40; i++ {
			g = 0.5 * (g + r/g)
		}
		std = g
	}
	return mean, std
}

// Figure7a reproduces Figure 7a: TED* computation time bucketed by tree
// size, using 3-adjacent trees from the AMZN and DBLP analogs.
func Figure7a(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Figure 7a: TED* Computation Time by Tree Size (3-adjacent trees, AMZN/DBLP)",
		Header: []string{"tree size bucket", "mean time (ms)", "pairs"},
	}
	ga := o.dataset(datasets.AMZN)
	gb := o.dataset(datasets.DBLP)
	rng := rand.New(rand.NewSource(o.Seed + 7))
	type bucket struct {
		w stopwatch
	}
	edges := []int{50, 100, 200, 300, 500, 1 << 30}
	labels := []string{"<=50", "51-100", "101-200", "201-300", "301-500", ">500"}
	buckets := make([]bucket, len(edges))
	for i := 0; i < o.Pairs*4; i++ {
		u := graph.NodeID(rng.Intn(ga.NumNodes()))
		v := graph.NodeID(rng.Intn(gb.NumNodes()))
		tu, _ := tree.KAdjacent(ga, u, 3)
		tv, _ := tree.KAdjacent(gb, v, 3)
		size := tu.Size()
		if tv.Size() > size {
			size = tv.Size()
		}
		bi := 0
		for size > edges[bi] {
			bi++
		}
		buckets[bi].w.time(func() { ted.Distance(tu, tv) })
	}
	for i, b := range buckets {
		if b.w.n == 0 {
			continue
		}
		t.AddRow(labels[i], ms(b.w.mean()), fmt.Sprint(b.w.n))
	}
	return t
}

// Figure7b reproduces Figure 7b: NED computation time as k grows, on
// road-graph nodes (the paper sweeps k = 1..8 over CAR/PAR).
func Figure7b(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Figure 7b: NED Computation Time by k (CAR/PAR)",
		Header: []string{"k", "mean time (µs)", "pairs"},
	}
	ga := o.dataset(datasets.CAR)
	gb := o.dataset(datasets.PAR)
	rng := rand.New(rand.NewSource(o.Seed + 11))
	us1 := sampleNodes(ga, o.Pairs, rng)
	vs1 := sampleNodes(gb, o.Pairs, rng)
	for k := 1; k <= 8; k++ {
		var w stopwatch
		for i := range us1 {
			u, v := us1[i], vs1[i]
			w.time(func() { ned.Distance(ga, u, gb, v, k) })
		}
		t.AddRow(fmt.Sprint(k), us(w.mean()), fmt.Sprint(w.n))
	}
	return t
}

// Figure8 reproduces Figures 8a (nearest-neighbor result-set size vs k)
// and 8b (ties in the top-l ranking vs k) with CAR queries against PAR
// candidates.
func Figure8(o Options, topL int) Table {
	o.defaults()
	if topL <= 0 {
		topL = 10
	}
	t := Table{
		Title:  "Figure 8: NN result-set size and top-l ties by k (CAR -> PAR)",
		Note:   fmt.Sprintf("%d queries, %d candidates, l=%d", o.Queries, o.Candidates, topL),
		Header: []string{"k", "avg NN set size", "avg ties in top-l"},
	}
	ga := o.dataset(datasets.CAR)
	gb := o.dataset(datasets.PAR)
	rng := rand.New(rand.NewSource(o.Seed + 13))
	queries := sampleNodes(ga, o.Queries, rng)
	cands := sampleNodes(gb, o.Candidates, rng)
	for k := 1; k <= 6; k++ {
		qs := ned.Signatures(ga, queries, k)
		cs := ned.Signatures(gb, cands, k)
		var sumNN, sumTies float64
		for _, q := range qs {
			nn := ned.NearestSet(q, cs)
			sumNN += float64(len(nn))
			ranked := ned.TopL(q, cs, topL)
			sumTies += float64(ned.Ties(ranked))
		}
		n := float64(len(qs))
		t.AddRow(fmt.Sprint(k), fmt.Sprintf("%.1f", sumNN/n), fmt.Sprintf("%.1f", sumTies/n))
	}
	return t
}
