package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ned/internal/baseline"
	"ned/internal/datasets"
	"ned/internal/graph"
	"ned/internal/ned"
)

// datasetK mirrors §13.4: "5-adjacent trees for the nodes in (CAR) and
// (PAR) graphs and 3-adjacent trees for the nodes in (PGP), (GNU),
// (AMZN) and (DBLP)".
func datasetK(name datasets.Name) int {
	if name == datasets.CAR || name == datasets.PAR {
		return 5
	}
	return 3
}

// Figure9a reproduces Figure 9a: per-pair computation time of NED,
// HITS-based similarity, and Feature-based similarity on every dataset.
// Expected shape (paper §13.4): HITS slowest by orders of magnitude
// (one pair costs a full matrix iteration), Feature fastest, NED in
// between, paying a modest premium for metricity and topology-awareness.
func Figure9a(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Figure 9a: Node Similarity Computation Time (µs/pair)",
		Note:   "k=5 for CAR/PAR, k=3 otherwise; HITS = full matrix on 600-node caps",
		Header: []string{"Dataset", "NED (µs)", "HITS (µs)", "Feature (µs)"},
	}
	for _, name := range datasets.All {
		g1 := o.dataset(name)
		// Pair each dataset against an independently seeded copy of
		// itself, making the comparison inter-graph as in §13.
		g2 := datasets.MustGenerate(name, datasets.Options{Scale: o.Scale, Seed: o.Seed + 999})
		k := datasetK(name)
		rng := rand.New(rand.NewSource(o.Seed + 17))
		us1 := sampleNodes(g1, o.Pairs, rng)
		vs1 := sampleNodes(g2, o.Pairs, rng)

		var wNED stopwatch
		for i := range us1 {
			u, v := us1[i], vs1[i]
			wNED.time(func() { ned.Distance(g1, u, g2, v, k) })
		}

		// Feature: ReFeX is a batch framework — features are extracted
		// once for the whole graph — so the honest per-pair cost is the
		// amortized per-node extraction plus the vector distance. This is
		// what makes Feature the fastest method in the paper's Figure 9a.
		var wFeatAll stopwatch
		var feats1, feats2 []baseline.FeatureVector
		wFeatAll.time(func() { feats1 = baseline.RegionalFeaturesAll(g1, k-1) })
		wFeatAll.time(func() { feats2 = baseline.RegionalFeaturesAll(g2, k-1) })
		perNode := float64(wFeatAll.total.Nanoseconds()) / float64(g1.NumNodes()+g2.NumNodes())
		var wL1 stopwatch
		for i := range us1 {
			u, v := us1[i], vs1[i]
			wL1.time(func() { baseline.L1(feats1[u], feats2[v]) })
		}
		featPerPair := time.Duration(2*perNode) + wL1.mean()

		// HITS: similarity of even one pair requires iterating the full
		// nB×nA matrix to convergence, so the per-pair cost IS the matrix
		// cost (the paper's slowest method). Node counts are capped to
		// keep the experiment finite; the uncapped cost only grows.
		h1 := capGraph(g1, 600)
		h2 := capGraph(g2, 600)
		var wHITS stopwatch
		wHITS.time(func() {
			baseline.NewHITSSimilarity(h1, h2, baseline.HITSOptions{MaxIters: 20})
		})

		t.AddRow(string(name), us(wNED.mean()), us(wHITS.mean()), us(featPerPair))
	}
	return t
}

// capGraph returns the induced subgraph on the first n nodes of the
// largest component (deterministic), used to keep HITS tractable.
func capGraph(g *graph.Graph, n int) *graph.Graph {
	if g.NumNodes() <= n {
		return g
	}
	comp := graph.LargestComponent(g)
	if len(comp) > n {
		comp = comp[:n]
	}
	keep := make(map[graph.NodeID]graph.NodeID, len(comp))
	for i, v := range comp {
		keep[v] = graph.NodeID(i)
	}
	b := graph.NewBuilder(len(comp), g.Directed())
	for _, e := range g.Edges() {
		u, okU := keep[e.U]
		v, okV := keep[e.V]
		if okU && okV {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Figure9b reproduces Figure 9b: nearest-neighbor query time of NED
// with a VP-tree index versus the Feature baseline's full scan.
func Figure9b(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Figure 9b: NN Query Time — NED + VP-tree vs Feature full scan (ms/query)",
		Note:   fmt.Sprintf("%d candidates, %d queries per dataset", o.Candidates, o.Queries),
		Header: []string{"Dataset", "NED+VPtree (ms)", "NED scan (ms)", "Feature scan (ms)", "VP dist calls/query"},
	}
	for _, name := range datasets.All {
		g1 := o.dataset(name)
		g2 := datasets.MustGenerate(name, datasets.Options{Scale: o.Scale, Seed: o.Seed + 999})
		k := datasetK(name)
		rng := rand.New(rand.NewSource(o.Seed + 19))
		queries := sampleNodes(g1, o.Queries, rng)
		cands := sampleNodes(g2, o.Candidates, rng)

		qs := ned.Signatures(g1, queries, k)
		cs := ned.Signatures(g2, cands, k)
		index := ned.NewVPBackend(ned.ItemsOf(cs))

		ctx := context.Background()
		var wVP, wScan, wFeatScan stopwatch
		index.ResetStats()
		for _, q := range qs {
			qi := q.Item()
			wVP.time(func() { index.KNN(ctx, qi, 1) })
		}
		calls := index.DistanceCalls() / int64(max(1, len(qs)))
		for _, q := range qs {
			wScan.time(func() { ned.TopL(q, cs, 1) })
		}

		allC := baseline.RegionalFeaturesAll(g2, k-1)
		featC := make([]baseline.FeatureVector, len(cands))
		for i, c := range cands {
			featC[i] = allC[c]
		}
		allQ := baseline.RegionalFeaturesAll(g1, k-1)
		featQ := make([]baseline.FeatureVector, len(queries))
		for i, q := range queries {
			featQ[i] = allQ[q]
		}
		for _, fq := range featQ {
			wFeatScan.time(func() {
				best := -1.0
				for _, fc := range featC {
					d := baseline.L1(fq, fc)
					if best < 0 || d < best {
						best = d
					}
				}
			})
		}
		t.AddRow(string(name), ms(wVP.mean()), ms(wScan.mean()), ms(wFeatScan.mean()), fmt.Sprint(calls))
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
