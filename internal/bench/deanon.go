package bench

import (
	"fmt"
	"math/rand"

	"ned/internal/anonymize"
	"ned/internal/datasets"
	"ned/internal/deanon"
	"ned/internal/graph"
)

// deanonExperiment builds the §13.5 setup: the training graph keeps its
// identities; the testing graph is an anonymized copy; queries are
// sampled test nodes; candidates are their true identities plus a random
// candidate pool.
func deanonExperiment(train *graph.Graph, anon anonymize.Result, queries, candidates, topL int, seed int64) deanon.Experiment {
	rng := rand.New(rand.NewSource(seed))
	qs := sampleNodes(anon.Graph, queries, rng)
	candSet := map[graph.NodeID]bool{}
	for _, q := range qs {
		candSet[anon.Identity[q]] = true
	}
	for len(candSet) < candidates && len(candSet) < train.NumNodes() {
		candSet[graph.NodeID(rng.Intn(train.NumNodes()))] = true
	}
	cands := make([]graph.NodeID, 0, len(candSet))
	for c := range candSet {
		cands = append(cands, c)
	}
	// Deterministic order for reproducibility.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j] < cands[j-1]; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	return deanon.Experiment{
		Train:      train,
		Test:       anon.Graph,
		Identity:   anon.Identity,
		Queries:    qs,
		Candidates: cands,
		TopL:       topL,
	}
}

// Figure10 reproduces Figures 10a/10b: de-anonymization precision of NED
// versus the Feature baseline under the three anonymization schemes.
// The paper uses k=3, top-5 on PGP (1% perturbation) and top-10 on DBLP
// (5% perturbation).
func Figure10(o Options, name datasets.Name, topL int, ratio float64) Table {
	o.defaults()
	t := Table{
		Title: fmt.Sprintf("Figure 10 (%s): De-anonymization Precision, top-%d, ratio %.0f%%",
			name, topL, 100*ratio),
		Note:   fmt.Sprintf("%d queries, %d candidates, k=3", o.Queries, o.Candidates),
		Header: []string{"Scheme", "NED", "Feature"},
	}
	train := o.dataset(name)
	rng := rand.New(rand.NewSource(o.Seed + 23))
	schemes := []struct {
		label string
		anon  anonymize.Result
	}{
		{"naive", anonymize.Naive(train, rng)},
		{"sparsify", anonymize.Sparsify(train, ratio, rng)},
		{"perturb", anonymize.Perturb(train, ratio, rng)},
	}
	for _, s := range schemes {
		e := deanonExperiment(train, s.anon, o.Queries, o.Candidates, topL, o.Seed+29)
		pNED := deanon.Precision(e, &deanon.NEDScorer{K: 3})
		pFeat := deanon.Precision(e, &deanon.FeatureScorer{Depth: 2})
		t.AddRow(s.label, fmt.Sprintf("%.2f", pNED), fmt.Sprintf("%.2f", pFeat))
	}
	return t
}

// Figure11a reproduces Figure 11a: precision as the perturbation ratio
// grows (PGP, top-5).
func Figure11a(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Figure 11a: Precision vs Permutation Ratio (PGP, perturb, top-5, k=3)",
		Header: []string{"ratio", "NED", "Feature"},
	}
	train := o.dataset(datasets.PGP)
	for _, ratio := range []float64{0.01, 0.02, 0.05, 0.10} {
		rng := rand.New(rand.NewSource(o.Seed + 31))
		anon := anonymize.Perturb(train, ratio, rng)
		e := deanonExperiment(train, anon, o.Queries, o.Candidates, 5, o.Seed+37)
		pNED := deanon.Precision(e, &deanon.NEDScorer{K: 3})
		pFeat := deanon.Precision(e, &deanon.FeatureScorer{Depth: 2})
		t.AddRow(fmt.Sprintf("%.0f%%", 100*ratio), fmt.Sprintf("%.2f", pNED), fmt.Sprintf("%.2f", pFeat))
	}
	return t
}

// Figure11b reproduces Figure 11b: precision as the number of examined
// top-l results grows (PGP, 1% perturbation).
func Figure11b(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Figure 11b: Precision vs Top-l (PGP, perturb 1%, k=3)",
		Header: []string{"l", "NED", "Feature"},
	}
	train := o.dataset(datasets.PGP)
	rng := rand.New(rand.NewSource(o.Seed + 41))
	anon := anonymize.Perturb(train, 0.01, rng)
	for _, l := range []int{1, 2, 5, 10, 20} {
		e := deanonExperiment(train, anon, o.Queries, o.Candidates, l, o.Seed+43)
		pNED := deanon.Precision(e, &deanon.NEDScorer{K: 3})
		pFeat := deanon.Precision(e, &deanon.FeatureScorer{Depth: 2})
		t.AddRow(fmt.Sprint(l), fmt.Sprintf("%.2f", pNED), fmt.Sprintf("%.2f", pFeat))
	}
	return t
}
