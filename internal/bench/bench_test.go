package bench

import (
	"strings"
	"testing"
	"time"

	"ned/internal/datasets"
)

func tiny() Options {
	return Options{Scale: 0.1, Pairs: 10, Queries: 5, Candidates: 40, Seed: 1}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:  "Demo",
		Note:   "note line",
		Header: []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.String()
	for _, want := range []string{"== Demo ==", "note line", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestStopwatch(t *testing.T) {
	var w stopwatch
	w.time(func() { time.Sleep(time.Millisecond) })
	w.time(func() { time.Sleep(time.Millisecond) })
	if w.n != 2 {
		t.Errorf("n = %d", w.n)
	}
	if w.mean() < 500*time.Microsecond {
		t.Errorf("mean %v too small", w.mean())
	}
	var empty stopwatch
	if empty.mean() != 0 {
		t.Error("empty stopwatch mean should be 0")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if std < 1.99 || std > 2.01 {
		t.Errorf("std = %v, want 2", std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd should be zero")
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2(tiny())
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 5 {
			t.Fatalf("row width = %d, want 5", len(row))
		}
	}
}

func TestFigure5And6Shapes(t *testing.T) {
	o := tiny()
	tt, tv := Figure5(o)
	if len(tt.Rows) == 0 || len(tv.Rows) == 0 {
		t.Fatal("Figure 5 produced empty tables")
	}
	t6 := Figure6(o)
	if len(t6.Rows) == 0 {
		t.Fatal("Figure 6 empty")
	}
}

func TestFigure7Shapes(t *testing.T) {
	o := tiny()
	if tb := Figure7a(o); len(tb.Rows) == 0 {
		t.Error("Figure 7a empty")
	}
	if tb := Figure7b(o); len(tb.Rows) != 8 {
		t.Errorf("Figure 7b rows = %d, want 8", len(tb.Rows))
	}
}

func TestFigure8Shape(t *testing.T) {
	tb := Figure8(tiny(), 5)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
}

func TestFigure10Shape(t *testing.T) {
	tb := Figure10(tiny(), datasets.PGP, 5, 0.01)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	// Precisions parse as numbers within [0, 1].
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if !strings.HasPrefix(cell, "0") && !strings.HasPrefix(cell, "1") {
				t.Errorf("precision cell %q out of range", cell)
			}
		}
	}
}

func TestFigure9Shapes(t *testing.T) {
	o := tiny()
	t9a := Figure9a(o)
	if len(t9a.Rows) != 6 {
		t.Fatalf("Figure 9a rows = %d, want 6", len(t9a.Rows))
	}
	t9b := Figure9b(o)
	if len(t9b.Rows) != 6 {
		t.Fatalf("Figure 9b rows = %d, want 6", len(t9b.Rows))
	}
}

func TestFigure11Shapes(t *testing.T) {
	o := tiny()
	if tb := Figure11a(o); len(tb.Rows) != 4 {
		t.Errorf("Figure 11a rows = %d, want 4", len(tb.Rows))
	}
	if tb := Figure11b(o); len(tb.Rows) != 5 {
		t.Errorf("Figure 11b rows = %d, want 5", len(tb.Rows))
	}
}

func TestHausdorffShape(t *testing.T) {
	if tb := AppendixHausdorff(tiny()); len(tb.Rows) != 5 {
		t.Errorf("Hausdorff rows = %d, want 5", len(tb.Rows))
	}
}

func TestExtensionShapes(t *testing.T) {
	o := tiny()
	if tb := ExtensionDirected(o); len(tb.Rows) != 4 {
		t.Errorf("directed rows = %d, want 4", len(tb.Rows))
	}
	if tb := ExtensionWeighted(o); len(tb.Rows) == 0 {
		t.Error("weighted extension empty")
	}
	if tb := AblationIndexes(o); len(tb.Rows) != 4 {
		t.Errorf("index ablation rows = %d, want 4", len(tb.Rows))
	}
}

func TestAblationShape(t *testing.T) {
	tb := AblationMatching(tiny())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
}

func TestCapGraph(t *testing.T) {
	g := datasets.MustGenerate(datasets.GNU, datasets.Options{Scale: 0.2, Seed: 1})
	capped := capGraph(g, 50)
	if capped.NumNodes() > 50 {
		t.Errorf("capGraph returned %d nodes, want <= 50", capped.NumNodes())
	}
	same := capGraph(g, g.NumNodes()+10)
	if same != g {
		t.Error("capGraph should return the graph unchanged when under the cap")
	}
}
