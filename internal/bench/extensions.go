package bench

import (
	"fmt"
	"math/rand"

	"ned/internal/datasets"
	"ned/internal/hungarian"
	"ned/internal/ned"
	"ned/internal/ted"
	"ned/internal/tree"
)

// AppendixHausdorff reproduces the Appendix-A proposal: the Hausdorff
// graph-to-graph distance built on NED, evaluated on sampled node sets of
// every dataset against a re-seeded copy of itself and against a
// different dataset (showing same-family < cross-family distances).
func AppendixHausdorff(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Appendix A: Hausdorff graph distance over NED (sampled, k=3)",
		Note:   fmt.Sprintf("%d sampled nodes per graph", o.Queries),
		Header: []string{"Graph A", "Graph B", "H(A,B)"},
	}
	rng := rand.New(rand.NewSource(o.Seed + 47))
	pairs := []struct{ a, b datasets.Name }{
		{datasets.PGP, datasets.PGP},   // same family, different seeds
		{datasets.PGP, datasets.GNU},   // small-world vs random
		{datasets.CAR, datasets.PAR},   // two road networks
		{datasets.CAR, datasets.DBLP},  // road vs social
		{datasets.AMZN, datasets.DBLP}, // two clustered socials
	}
	for _, p := range pairs {
		ga := o.dataset(p.a)
		gb := datasets.MustGenerate(p.b, datasets.Options{Scale: o.Scale, Seed: o.Seed + 999})
		na := sampleNodes(ga, o.Queries, rng)
		nb := sampleNodes(gb, o.Queries, rng)
		h := ned.HausdorffSampled(ga, na, gb, nb, 3)
		t.AddRow(string(p.a), string(p.b)+"'", fmt.Sprint(h))
	}
	return t
}

// AblationMatching quantifies why TED* needs an optimal bipartite
// matcher: it compares the Hungarian-based TED* to a greedy-matching
// variant on random trees, reporting how often and how badly greedy
// overshoots. (DESIGN.md lists this as an ablation of §5.5.)
func AblationMatching(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Ablation: Hungarian vs greedy matching inside TED*",
		Header: []string{"tree width", "greedy > optimal (% pairs)", "mean overshoot"},
	}
	rng := rand.New(rand.NewSource(o.Seed + 53))
	for _, width := range []int{4, 8, 16} {
		worse, n := 0, 0
		var overshoot float64
		for i := 0; i < o.Pairs; i++ {
			a := tree.RandomShape(rng, []int{1, width / 2, width, width})
			b := tree.RandomShape(rng, []int{1, width / 2, width, width})
			opt := ted.Distance(a, b)
			gre := greedyTEDStar(a, b)
			n++
			if gre > opt {
				worse++
				overshoot += float64(gre - opt)
			}
		}
		mean := 0.0
		if worse > 0 {
			mean = overshoot / float64(worse)
		}
		t.AddRow(fmt.Sprint(width),
			fmt.Sprintf("%.0f%%", 100*float64(worse)/float64(n)),
			fmt.Sprintf("%.2f", mean))
	}
	return t
}

// greedyTEDStar runs the TED* recurrence with greedy matching instead of
// the Hungarian algorithm: a deliberately degraded variant for the
// ablation. It mirrors Algorithm 1's per-level accounting.
func greedyTEDStar(t1, t2 *tree.Tree) int {
	maxD := t1.Height()
	if h := t2.Height(); h > maxD {
		maxD = h
	}
	lab1 := make([]int32, t1.Size())
	lab2 := make([]int32, t2.Size())
	prevPad := 0
	total := 0
	for d := maxD; d >= 0; d-- {
		lo1, hi1 := t1.LevelRange(d)
		lo2, hi2 := t2.LevelRange(d)
		n1, n2 := int(hi1-lo1), int(hi2-lo2)
		pad := n1 - n2
		if pad < 0 {
			pad = -pad
		}
		n := n1
		if n2 > n {
			n = n2
		}
		total += pad
		if n == 0 {
			prevPad = pad
			continue
		}
		coll := func(t *tree.Tree, lab []int32, v int32) []int32 {
			kids := t.Children(v)
			c := make([]int32, len(kids))
			for i, k := range kids {
				c[i] = lab[k]
			}
			insertionSort(c)
			return c
		}
		colls1 := make([][]int32, n1)
		for r := 0; r < n1; r++ {
			colls1[r] = coll(t1, lab1, lo1+int32(r))
		}
		colls2 := make([][]int32, n2)
		for c := 0; c < n2; c++ {
			colls2[c] = coll(t2, lab2, lo2+int32(c))
		}
		canonizeLevel(colls1, colls2, lab1[lo1:hi1], lab2[lo2:hi2])
		cost := make([][]int64, n)
		for r := 0; r < n; r++ {
			cost[r] = make([]int64, n)
			var sr []int32
			if r < n1 {
				sr = colls1[r]
			}
			for c := 0; c < n; c++ {
				var sc []int32
				if c < n2 {
					sc = colls2[c]
				}
				cost[r][c] = symDiff(sr, sc)
			}
		}
		m, assign := hungarian.Greedy(cost)
		diff := int(m) - prevPad
		if diff < 0 {
			diff = 0
		}
		total += diff / 2
		// Re-canonize the smaller side with partner labels, as in the
		// real algorithm.
		if n1 < n2 {
			for r := 0; r < n1; r++ {
				lab1[lo1+int32(r)] = lab2[lo2+int32(assign[r])]
			}
		} else {
			for r := 0; r < n; r++ {
				if c := assign[r]; c < n2 {
					lab2[lo2+int32(c)] = lab1[lo1+int32(r)]
				}
			}
		}
		prevPad = pad
	}
	return total
}

// canonizeLevel assigns dense rank labels so equal collections get equal
// labels across both sides (the ablation's copy of Algorithm 2).
func canonizeLevel(c1, c2 [][]int32, out1, out2 []int32) {
	type entry struct {
		coll []int32
		side int
		idx  int
	}
	all := make([]entry, 0, len(c1)+len(c2))
	for i, c := range c1 {
		all = append(all, entry{c, 0, i})
	}
	for i, c := range c2 {
		all = append(all, entry{c, 1, i})
	}
	less := func(a, b []int32) bool {
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && less(all[j].coll, all[j-1].coll); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	label := int32(0)
	for i, e := range all {
		if i > 0 && (less(all[i-1].coll, e.coll) || less(e.coll, all[i-1].coll)) {
			label++
		}
		if e.side == 0 {
			out1[e.idx] = label
		} else {
			out2[e.idx] = label
		}
	}
}

func insertionSort(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func symDiff(a, b []int32) int64 {
	i, j := 0, 0
	var d int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			d++
			i++
		default:
			d++
			j++
		}
	}
	return d + int64(len(a)-i) + int64(len(b)-j)
}
