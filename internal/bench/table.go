// Package bench implements the experiment harness that regenerates every
// table and figure of the NED paper's evaluation (§13): workload
// generation, parameter sweeps, baselines, timing, and plain-text table
// rendering. cmd/nedbench drives it at paper scale; the root-level Go
// benchmarks drive it at smoke-test scale.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a printable experiment artifact: one paper table or figure
// series rendered as rows. It marshals cleanly to JSON for the
// machine-readable results nedbench -json emits.
type Table struct {
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// stopwatch measures the mean duration of repeated calls.
type stopwatch struct {
	total time.Duration
	n     int
}

func (s *stopwatch) time(f func()) {
	start := time.Now()
	f()
	s.total += time.Since(start)
	s.n++
}

func (s *stopwatch) mean() time.Duration {
	if s.n == 0 {
		return 0
	}
	return s.total / time.Duration(s.n)
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}
