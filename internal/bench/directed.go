package bench

import (
	"fmt"
	"math/rand"

	"ned/internal/exact"
	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/ted"
)

// ExtensionDirected exercises the §3.3 directed-graph NED: incoming plus
// outgoing k-adjacent tree distances on synthetic directed graphs. The
// table reports, per k, the mean directed distance between random
// cross-graph node pairs and the mean time — alongside the undirected
// distance on the same underlying topology for comparison.
func ExtensionDirected(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Extension (§3.3): Directed NED — incoming + outgoing trees",
		Note:   fmt.Sprintf("%d pairs on directed ER analogs", o.Pairs),
		Header: []string{"k", "directed mean", "undirected mean", "time (µs)"},
	}
	g1 := directedER(4000, 3.0, rand.New(rand.NewSource(o.Seed+71)))
	g2 := directedER(4000, 3.0, rand.New(rand.NewSource(o.Seed+72)))
	u1 := undirect(g1)
	u2 := undirect(g2)
	rng := rand.New(rand.NewSource(o.Seed + 73))
	nodes1 := sampleNodes(g1, o.Pairs, rng)
	nodes2 := sampleNodes(g2, o.Pairs, rng)
	for k := 1; k <= 4; k++ {
		var w stopwatch
		var sumD, sumU float64
		for i := range nodes1 {
			u, v := nodes1[i], nodes2[i]
			var d int
			w.time(func() { d = ned.DistanceDirected(g1, u, g2, v, k) })
			sumD += float64(d)
			sumU += float64(ned.Distance(u1, u, u2, v, k))
		}
		n := float64(len(nodes1))
		t.AddRow(fmt.Sprint(k),
			fmt.Sprintf("%.2f", sumD/n),
			fmt.Sprintf("%.2f", sumU/n),
			us(w.mean()))
	}
	return t
}

// directedER samples a directed Erdős–Rényi-style graph with the given
// expected out-degree.
func directedER(n int, outDeg float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n, true)
	arcs := int(float64(n) * outDeg)
	for i := 0; i < arcs; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		b.AddEdge(u, v)
	}
	return b.Build()
}

// undirect drops edge orientation.
func undirect(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes(), false)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// ExtensionWeighted demonstrates the §12 sandwich on small trees:
// exact TED lies between the unweighted TED* (which may undercut TED)
// and the δT(W+) upper bound (Lemma 7).
func ExtensionWeighted(o Options) Table {
	o.defaults()
	t := Table{
		Title:  "Extension (§12): weighted TED* — TED* vs exact TED vs δT(W+)",
		Header: []string{"k", "TED* mean", "exact TED mean", "W+ mean", "W+ >= TED always", "pairs"},
	}
	for k := 1; k <= 3; k++ {
		_, _, pairs := figure56Workload(o, k)
		var sStar, sTED, sW float64
		holds := true
		n := 0
		for _, p := range pairs {
			dTED, ok := exact.TED(p.tu, p.tv)
			if !ok {
				continue
			}
			dStar := ted.Distance(p.tu, p.tv)
			wPlus := ted.WeightedDistance(p.tu, p.tv, ted.UpperBoundWeights{})
			if wPlus < float64(dTED)-1e-9 {
				holds = false
			}
			sStar += float64(dStar)
			sTED += float64(dTED)
			sW += wPlus
			n++
		}
		if n == 0 {
			continue
		}
		t.AddRow(fmt.Sprint(k),
			fmt.Sprintf("%.2f", sStar/float64(n)),
			fmt.Sprintf("%.2f", sTED/float64(n)),
			fmt.Sprintf("%.2f", sW/float64(n)),
			fmt.Sprint(holds),
			fmt.Sprint(n))
	}
	return t
}
