package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList feeds arbitrary text to the edge-list parser: it must
// either error out or produce a graph whose edge list round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 6\n")
	f.Add("")
	f.Add("a b\n")
	f.Add("1\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("3 3\n")
	f.Fuzz(func(t *testing.T, s string) {
		g, _, err := ReadEdgeList(strings.NewReader(s), false)
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteEdgeList(&sb, g); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		g2, _, err := ReadEdgeList(strings.NewReader(sb.String()), false)
		if err != nil {
			t.Fatalf("re-reading serialized graph: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edges: %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}
