package graph

import "sort"

// EdgeDirection selects which arcs a directed traversal follows.
type EdgeDirection int

const (
	// Outgoing follows u->v arcs (or all edges in undirected graphs).
	Outgoing EdgeDirection = iota
	// Incoming follows v->u arcs (identical to Outgoing when undirected).
	Incoming
)

// BFSResult holds a breadth-first traversal rooted at Root. Parent[Root]
// is -1, and Parent[v] is -1 for unreached nodes with Depth[v] == -1.
type BFSResult struct {
	Root   NodeID
	Order  []NodeID // visitation order, starting with Root
	Parent []NodeID // BFS tree parent per node, -1 if none
	Depth  []int32  // hop distance from Root, -1 if unreached
}

// BFS runs breadth-first search from root up to maxDepth levels below the
// root (maxDepth < 0 means unbounded). The neighbor ordering of the
// underlying graph makes the traversal deterministic.
func BFS(g *Graph, root NodeID, maxDepth int, dir EdgeDirection) *BFSResult {
	n := g.NumNodes()
	res := &BFSResult{
		Root:   root,
		Parent: make([]NodeID, n),
		Depth:  make([]int32, n),
	}
	for i := range res.Parent {
		res.Parent[i] = -1
		res.Depth[i] = -1
	}
	res.Depth[root] = 0
	res.Order = append(res.Order, root)
	for head := 0; head < len(res.Order); head++ {
		u := res.Order[head]
		if maxDepth >= 0 && int(res.Depth[u]) >= maxDepth {
			continue
		}
		var ns []NodeID
		if dir == Incoming {
			ns = g.InNeighbors(u)
		} else {
			ns = g.OutNeighbors(u)
		}
		for _, v := range ns {
			if res.Depth[v] == -1 {
				res.Depth[v] = res.Depth[u] + 1
				res.Parent[v] = u
				res.Order = append(res.Order, v)
			}
		}
	}
	return res
}

// NodesWithin returns every node within k hops of any source, in
// ascending order — a multi-source bounded BFS. Sources themselves are
// included (distance 0). Out-of-range sources are ignored, so callers
// may pass node sets from a differently-sized graph version.
func NodesWithin(g *Graph, sources []NodeID, k int, dir EdgeDirection) []NodeID {
	n := g.NumNodes()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	var order []NodeID
	for _, s := range sources {
		if int(s) < 0 || int(s) >= n || depth[s] != -1 {
			continue
		}
		depth[s] = 0
		order = append(order, s)
	}
	for head := 0; head < len(order); head++ {
		u := order[head]
		if int(depth[u]) >= k {
			continue
		}
		var ns []NodeID
		if dir == Incoming {
			ns = g.InNeighbors(u)
		} else {
			ns = g.OutNeighbors(u)
		}
		for _, v := range ns {
			if depth[v] == -1 {
				depth[v] = depth[u] + 1
				order = append(order, v)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// EdgeDiff returns the symmetric difference between the edge sets of two
// graph versions: edges present in exactly one of a and b. Both Edges()
// listings are sorted, so the diff is a linear merge. Used by the
// dynamic corpus to find which node neighborhoods an update actually
// changed.
func EdgeDiff(a, b *Graph) []Edge {
	ea, eb := a.Edges(), b.Edges()
	less := func(x, y Edge) bool {
		if x.U != y.U {
			return x.U < y.U
		}
		return x.V < y.V
	}
	var out []Edge
	i, j := 0, 0
	for i < len(ea) && j < len(eb) {
		switch {
		case ea[i] == eb[j]:
			i++
			j++
		case less(ea[i], eb[j]):
			out = append(out, ea[i])
			i++
		default:
			out = append(out, eb[j])
			j++
		}
	}
	out = append(out, ea[i:]...)
	out = append(out, eb[j:]...)
	return out
}

// ConnectedComponents labels every node of an undirected graph with a
// component index and returns (labels, count). Directed graphs are
// treated as undirected (weak components) only if their reverse
// adjacency is consulted, which this function does.
func ConnectedComponents(g *Graph) ([]int32, int) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []NodeID
	count := 0
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = int32(count)
		queue = append(queue[:0], NodeID(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.OutNeighbors(u) {
				if comp[v] == -1 {
					comp[v] = int32(count)
					queue = append(queue, v)
				}
			}
			if g.directed {
				for _, v := range g.InNeighbors(u) {
					if comp[v] == -1 {
						comp[v] = int32(count)
						queue = append(queue, v)
					}
				}
			}
		}
		count++
	}
	return comp, count
}

// LargestComponent returns the node set of the largest connected
// component in deterministic (ascending) order.
func LargestComponent(g *Graph) []NodeID {
	comp, count := ConnectedComponents(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	out := make([]NodeID, 0, sizes[best])
	for v, c := range comp {
		if int(c) == best {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// KHopSubgraph extracts the induced subgraph on all nodes within k hops
// of root. It returns the subgraph, the root's new ID (always 0), and the
// mapping from new IDs back to original IDs. Used by the exact-GED
// baseline (§8 of the paper compares k-hop subgraphs).
func KHopSubgraph(g *Graph, root NodeID, k int) (*Graph, NodeID, []NodeID) {
	res := BFS(g, root, k, Outgoing)
	oldToNew := make(map[NodeID]NodeID, len(res.Order))
	newToOld := make([]NodeID, len(res.Order))
	for i, v := range res.Order {
		oldToNew[v] = NodeID(i)
		newToOld[i] = v
	}
	b := NewBuilder(len(res.Order), g.directed)
	for _, u := range res.Order {
		for _, v := range g.OutNeighbors(u) {
			nv, ok := oldToNew[v]
			if !ok {
				continue
			}
			nu := oldToNew[u]
			if g.directed || nu < nv {
				b.AddEdge(nu, nv)
			}
		}
	}
	return b.Build(), 0, newToOld
}
