package graph

import "math/rand"

// Stats aggregates the structural measurements used to validate that the
// synthetic dataset analogs inhabit the right topological regime (see
// DESIGN.md §2) and by cmd/nedstats.
type Stats struct {
	Nodes             int
	Edges             int
	AvgDegree         float64
	MaxDegree         int
	Components        int
	LargestComponent  int
	GlobalClustering  float64 // 3·triangles / wedges
	AvgLocalCluster   float64
	ApproxDiameter    int // lower bound via double-sweep BFS
	DegreeAssortative float64
}

// ComputeStats measures g. Triangle counting is O(Σ deg²); for the
// laptop-scale graphs in this repo that is well under a second.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	comp, count := ConnectedComponents(g)
	s.Components = count
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	for _, sz := range sizes {
		if sz > s.LargestComponent {
			s.LargestComponent = sz
		}
	}

	triangles, wedges := 0.0, 0.0
	sumLocal := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		ns := g.Neighbors(NodeID(v))
		d := len(ns)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(ns[i], ns[j]) {
					links++
				}
			}
		}
		w := float64(d*(d-1)) / 2
		wedges += w
		triangles += float64(links) // each triangle counted at 3 corners
		sumLocal += float64(links) / w
	}
	if wedges > 0 {
		s.GlobalClustering = triangles / wedges
	}
	if g.NumNodes() > 0 {
		s.AvgLocalCluster = sumLocal / float64(g.NumNodes())
	}
	s.ApproxDiameter = approxDiameter(g)
	s.DegreeAssortative = degreeAssortativity(g)
	return s
}

// approxDiameter lower-bounds the diameter with a randomized double
// sweep: BFS from a fixed node, then BFS from the farthest node found.
func approxDiameter(g *Graph) int {
	if g.NumNodes() == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(1))
	best := 0
	for trial := 0; trial < 3; trial++ {
		start := NodeID(rng.Intn(g.NumNodes()))
		far, _ := farthest(g, start)
		_, d := farthest(g, far)
		if d > best {
			best = d
		}
	}
	return best
}

func farthest(g *Graph, from NodeID) (NodeID, int) {
	res := BFS(g, from, -1, Outgoing)
	bestV, bestD := from, 0
	for v, d := range res.Depth {
		if int(d) > bestD {
			bestD = int(d)
			bestV = NodeID(v)
		}
	}
	return bestV, bestD
}

// degreeAssortativity returns the Pearson correlation of endpoint
// degrees over edges (positive: hubs link to hubs).
func degreeAssortativity(g *Graph) float64 {
	edges := g.Edges()
	if len(edges) == 0 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	n := 0.0
	for _, e := range edges {
		// Count each undirected edge in both orientations to symmetrize.
		for _, pair := range [2][2]float64{
			{float64(g.Degree(e.U)), float64(g.Degree(e.V))},
			{float64(g.Degree(e.V)), float64(g.Degree(e.U))},
		} {
			x, y := pair[0], pair[1]
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			n++
		}
	}
	mx, my := sx/n, sy/n
	cov := sxy/n - mx*my
	vx := sxx/n - mx*mx
	vy := syy/n - my*my
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / sqrt64(vx*vy)
}

func sqrt64(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 50; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func DegreeHistogram(g *Graph) []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumNodes(); v++ {
		counts[g.Degree(NodeID(v))]++
	}
	return counts
}
