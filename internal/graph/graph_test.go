package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Degree(3) != 0 {
		t.Errorf("isolated node degree = %d, want 0", g.Degree(3))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge must be visible from both endpoints")
	}
	if g.HasEdge(0, 3) {
		t.Error("phantom edge 0-3")
	}
}

func TestBuilderDeduplicatesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // same undirected edge
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Errorf("self loop must be dropped; degree(2) = %d", g.Degree(2))
	}
}

func TestBuilderGrowsNodeCount(t *testing.T) {
	b := NewBuilder(0, false)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Errorf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestDirectedAdjacency(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 1)
	g := b.Build()
	if !g.Directed() {
		t.Fatal("graph should be directed")
	}
	if g.Degree(0) != 2 || g.InDegree(0) != 0 {
		t.Errorf("node 0: out %d in %d, want 2/0", g.Degree(0), g.InDegree(0))
	}
	if g.InDegree(1) != 2 {
		t.Errorf("InDegree(1) = %d, want 2", g.InDegree(1))
	}
	in := g.InNeighbors(1)
	want := []NodeID{0, 2}
	if len(in) != 2 || in[0] != want[0] || in[1] != want[1] {
		t.Errorf("InNeighbors(1) = %v, want %v", in, want)
	}
}

func TestDirectedEdgesBothOrientationsKept(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Errorf("directed antiparallel edges: NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(30, false)
	for i := 0; i < 100; i++ {
		b.AddEdge(NodeID(rng.Intn(30)), NodeID(rng.Intn(30)))
	}
	g := b.Build()
	g2 := FromEdges(g.NumNodes(), g.Edges())
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		a, b := g.Neighbors(NodeID(v)), g2.Neighbors(NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency differs", v)
			}
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n, false)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		for v := 0; v < n; v++ {
			ns := g.Neighbors(NodeID(v))
			if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDepthsOnPath(t *testing.T) {
	g := pathGraph(6)
	res := BFS(g, 0, -1, Outgoing)
	for v := 0; v < 6; v++ {
		if res.Depth[v] != int32(v) {
			t.Errorf("Depth[%d] = %d, want %d", v, res.Depth[v], v)
		}
	}
	if res.Parent[0] != -1 {
		t.Errorf("root parent = %d, want -1", res.Parent[0])
	}
}

func TestBFSMaxDepth(t *testing.T) {
	g := pathGraph(10)
	res := BFS(g, 0, 3, Outgoing)
	if len(res.Order) != 4 {
		t.Errorf("order length = %d, want 4 (root + 3 levels)", len(res.Order))
	}
	if res.Depth[5] != -1 {
		t.Errorf("node beyond maxDepth should be unreached")
	}
}

func TestBFSDirectedDirections(t *testing.T) {
	// 0 -> 1 -> 2 and 3 -> 1.
	b := NewBuilder(4, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 1)
	g := b.Build()
	out := BFS(g, 0, -1, Outgoing)
	if out.Depth[2] != 2 || out.Depth[3] != -1 {
		t.Errorf("outgoing BFS wrong: %v", out.Depth)
	}
	in := BFS(g, 1, -1, Incoming)
	if in.Depth[0] != 1 || in.Depth[3] != 1 || in.Depth[2] != -1 {
		t.Errorf("incoming BFS wrong: %v", in.Depth)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	comp, count := ConnectedComponents(g)
	if count != 4 {
		t.Fatalf("component count = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Error("3,4 should share a component")
	}
	if comp[5] == comp[6] {
		t.Error("isolated nodes should be distinct components")
	}
	lc := LargestComponent(g)
	if len(lc) != 3 {
		t.Errorf("largest component size = %d, want 3", len(lc))
	}
}

func TestKHopSubgraph(t *testing.T) {
	// Star of 4 leaves plus a 2-hop tail.
	b := NewBuilder(7, false)
	for i := 1; i <= 4; i++ {
		b.AddEdge(0, NodeID(i))
	}
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.Build()
	sub, root, back := KHopSubgraph(g, 0, 1)
	if root != 0 {
		t.Errorf("root remapped to %d, want 0", root)
	}
	if sub.NumNodes() != 5 {
		t.Errorf("1-hop subgraph has %d nodes, want 5", sub.NumNodes())
	}
	if back[0] != 0 {
		t.Errorf("back-mapping of root = %d, want 0", back[0])
	}
	// The 1-hop induced subgraph keeps only star edges.
	if sub.NumEdges() != 4 {
		t.Errorf("1-hop subgraph has %d edges, want 4", sub.NumEdges())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := pathGraph(8)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed graph: %v -> %v", g, g2)
	}
}

func TestReadEdgeListCommentsAndRemap(t *testing.T) {
	in := strings.NewReader("# comment\n% other comment\n100 200\n200 300\n\n100 300\n")
	g, orig, err := ReadEdgeList(in, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v, want 3 nodes 3 edges", g)
	}
	if orig[0] != 100 || orig[1] != 200 || orig[2] != 300 {
		t.Errorf("remap table = %v", orig)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("1\n"), false); err == nil {
		t.Error("want error for single-field line")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n"), false); err == nil {
		t.Error("want error for non-numeric node")
	}
}

func TestAvgAndMaxDegree(t *testing.T) {
	g := pathGraph(4) // degrees 1,2,2,1
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", got)
	}
}

func TestStringer(t *testing.T) {
	if s := pathGraph(3).String(); !strings.Contains(s, "3 nodes") {
		t.Errorf("String() = %q", s)
	}
}
