package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ned/internal/fsx"
)

// ReadEdgeList parses a whitespace-separated edge list in the format used
// by SNAP and KONECT dumps: one "u v" pair per line, '#' and '%' comment
// lines ignored. Node identifiers may be arbitrary non-negative integers;
// they are remapped to the dense range [0, N). The remap table (dense ID
// -> original ID) is returned alongside the graph.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[int64]NodeID)
	var orig []int64
	intern := func(raw int64) NodeID {
		if id, ok := ids[raw]; ok {
			return id
		}
		id := NodeID(len(orig))
		ids[raw] = id
		orig = append(orig, raw)
		return id
	}
	b := NewBuilder(0, directed)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: expected two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		b.AddEdge(intern(u), intern(v))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	return b.Build(), orig, nil
}

// LoadEdgeListFile reads an edge-list file from disk (see ReadEdgeList).
func LoadEdgeListFile(path string, directed bool) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f, directed)
}

// WriteEdgeList writes the graph as a plain edge list, one "u v" pair per
// line, preceded by a comment header. The output round-trips through
// ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	if _, err := fmt.Fprintf(bw, "# %s graph: %d nodes %d edges\n", kind, g.NumNodes(), g.NumEdges()); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: writing edge: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing edge list: %w", err)
	}
	return nil
}

// SaveEdgeListFile writes the graph to a file (see WriteEdgeList),
// crash-safely: content goes to <path>.tmp, is fsynced, and renamed
// over the target, so a crash mid-save never tears a good file.
func SaveEdgeListFile(path string, g *Graph) error {
	return fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return WriteEdgeList(w, g)
	})
}
