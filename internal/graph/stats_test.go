package graph

import (
	"math"
	"testing"
)

func TestComputeStatsTriangle(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	s := ComputeStats(b.Build())
	if s.Nodes != 3 || s.Edges != 3 {
		t.Fatalf("size wrong: %+v", s)
	}
	if s.GlobalClustering != 1 {
		t.Errorf("triangle clustering = %v, want 1", s.GlobalClustering)
	}
	if s.AvgLocalCluster != 1 {
		t.Errorf("avg local clustering = %v, want 1", s.AvgLocalCluster)
	}
	if s.Components != 1 || s.LargestComponent != 3 {
		t.Errorf("components wrong: %+v", s)
	}
	if s.ApproxDiameter != 1 {
		t.Errorf("diameter = %d, want 1", s.ApproxDiameter)
	}
}

func TestComputeStatsPath(t *testing.T) {
	s := ComputeStats(pathGraph(10))
	if s.GlobalClustering != 0 {
		t.Errorf("path clustering = %v, want 0", s.GlobalClustering)
	}
	if s.ApproxDiameter != 9 {
		t.Errorf("path diameter = %d, want 9", s.ApproxDiameter)
	}
}

func TestComputeStatsDisconnected(t *testing.T) {
	b := NewBuilder(6, false)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	s := ComputeStats(b.Build())
	if s.Components != 4 {
		t.Errorf("components = %d, want 4", s.Components)
	}
	if s.LargestComponent != 2 {
		t.Errorf("largest = %d, want 2", s.LargestComponent)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(NewBuilder(0, false).Build())
	if s.Nodes != 0 || s.Edges != 0 || s.ApproxDiameter != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestAssortativityStarIsNegative(t *testing.T) {
	// Stars are maximally disassortative: hub(d=5) links only to leaves(d=1).
	b := NewBuilder(6, false)
	for i := 1; i <= 5; i++ {
		b.AddEdge(0, NodeID(i))
	}
	s := ComputeStats(b.Build())
	if s.DegreeAssortative >= 0 {
		t.Errorf("star assortativity = %v, want negative", s.DegreeAssortative)
	}
}

func TestAssortativityRegularIsUndefinedZero(t *testing.T) {
	// In a cycle every endpoint has degree 2: zero variance -> 0.
	b := NewBuilder(5, false)
	for i := 0; i < 5; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%5))
	}
	s := ComputeStats(b.Build())
	if s.DegreeAssortative != 0 {
		t.Errorf("cycle assortativity = %v, want 0", s.DegreeAssortative)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(pathGraph(5)) // degrees 1,2,2,2,1
	if h[1] != 2 || h[2] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestSqrt64(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 100, 0.25} {
		want := math.Sqrt(x)
		if got := sqrt64(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("sqrt64(%v) = %v, want %v", x, got, want)
		}
	}
}
