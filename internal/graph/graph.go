// Package graph provides the graph substrate used throughout the NED
// reproduction: compact adjacency-list graphs (undirected and directed),
// breadth-first traversal, k-hop neighborhood extraction, and edge-list
// serialization compatible with SNAP/KONECT datasets.
//
// Node identifiers are dense non-negative integers in [0, N). Graphs are
// simple: self-loops and parallel edges are rejected at construction time
// by Builder and ignored by the tolerant loaders.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a single graph. IDs are dense: a graph
// with N nodes uses exactly the IDs 0..N-1.
type NodeID int32

// Edge is an unordered (undirected) or ordered (directed) node pair.
type Edge struct {
	U, V NodeID
}

// Graph is an immutable simple graph held in compressed adjacency form.
// For undirected graphs every edge appears in both endpoint adjacency
// lists. For directed graphs Out holds successors and In holds
// predecessors. The zero value is an empty undirected graph.
type Graph struct {
	directed bool
	numEdges int

	// CSR layout: neighbors of node i are adj[offsets[i]:offsets[i+1]].
	offsets []int32
	adj     []NodeID

	// Directed graphs additionally carry the reverse adjacency.
	inOffsets []int32
	inAdj     []NodeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of edges (each undirected edge counted once).
func (g *Graph) NumEdges() int { return g.numEdges }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Neighbors returns the adjacency list of v. For directed graphs it
// returns the out-neighbors. The returned slice aliases internal storage
// and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// OutNeighbors returns successors of v (same as Neighbors).
func (g *Graph) OutNeighbors(v NodeID) []NodeID { return g.Neighbors(v) }

// InNeighbors returns predecessors of v. For undirected graphs it is the
// same as Neighbors. The returned slice aliases internal storage.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	if !g.directed {
		return g.Neighbors(v)
	}
	return g.inAdj[g.inOffsets[v]:g.inOffsets[v+1]]
}

// Degree returns the degree of v (out-degree for directed graphs).
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int {
	if !g.directed {
		return g.Degree(v)
	}
	return int(g.inOffsets[v+1] - g.inOffsets[v])
}

// HasEdge reports whether the edge (u,v) exists. For undirected graphs
// orientation is ignored. Runs in O(log deg(u)) thanks to sorted
// adjacency lists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Edges returns all edges. Undirected edges are reported once with U < V;
// directed edges are reported as (source, target).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if g.directed || NodeID(u) < v {
				out = append(out, Edge{NodeID(u), v})
			}
		}
	}
	return out
}

// MaxDegree returns the largest degree in the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean degree: 2E/N undirected, E/N directed.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	m := float64(g.numEdges)
	if !g.directed {
		m *= 2
	}
	return m / float64(n)
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s, %d nodes, %d edges}", kind, g.NumNodes(), g.numEdges)
}

// Builder accumulates edges and produces an immutable Graph. It
// deduplicates parallel edges and drops self-loops, so it is safe to feed
// raw dataset rows. The zero value builds an undirected graph.
type Builder struct {
	directed bool
	numNodes int
	edges    []Edge
}

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{directed: directed, numNodes: n}
}

// AddEdge records the edge (u,v). Out-of-range endpoints grow the node
// count; self-loops are ignored.
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	if int(u) >= b.numNodes {
		b.numNodes = int(u) + 1
	}
	if int(v) >= b.numNodes {
		b.numNodes = int(v) + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.numNodes }

// Build produces the immutable Graph. The Builder can be reused afterward.
func (b *Builder) Build() *Graph {
	n := b.numNodes
	// Canonicalize and deduplicate.
	es := make([]Edge, 0, len(b.edges))
	for _, e := range b.edges {
		if !b.directed && e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	dedup := es[:0]
	for i, e := range es {
		if i > 0 && e == es[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	es = dedup

	g := &Graph{directed: b.directed, numEdges: len(es)}
	deg := make([]int32, n+1)
	for _, e := range es {
		deg[e.U+1]++
		if !b.directed {
			deg[e.V+1]++
		}
	}
	g.offsets = make([]int32, n+1)
	for i := 1; i <= n; i++ {
		g.offsets[i] = g.offsets[i-1] + deg[i]
	}
	g.adj = make([]NodeID, g.offsets[n])
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for _, e := range es {
		g.adj[cursor[e.U]] = e.V
		cursor[e.U]++
		if !b.directed {
			g.adj[cursor[e.V]] = e.U
			cursor[e.V]++
		}
	}
	for v := 0; v < n; v++ {
		ns := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	}

	if b.directed {
		ideg := make([]int32, n+1)
		for _, e := range es {
			ideg[e.V+1]++
		}
		g.inOffsets = make([]int32, n+1)
		for i := 1; i <= n; i++ {
			g.inOffsets[i] = g.inOffsets[i-1] + ideg[i]
		}
		g.inAdj = make([]NodeID, g.inOffsets[n])
		icursor := make([]int32, n)
		copy(icursor, g.inOffsets[:n])
		for _, e := range es {
			g.inAdj[icursor[e.V]] = e.U
			icursor[e.V]++
		}
		for v := 0; v < n; v++ {
			ns := g.inAdj[g.inOffsets[v]:g.inOffsets[v+1]]
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		}
	}
	return g
}

// FromEdges builds an undirected graph with n nodes from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n, false)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// FromDirectedEdges builds a directed graph with n nodes from an edge list.
func FromDirectedEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n, true)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
