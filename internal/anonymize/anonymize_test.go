package anonymize

import (
	"math/rand"
	"testing"

	"ned/internal/graph"
)

func testGraph() *graph.Graph {
	b := graph.NewBuilder(20, false)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(20)), graph.NodeID(rng.Intn(20)))
	}
	return b.Build()
}

func degreeMultiset(g *graph.Graph) map[int]int {
	m := map[int]int{}
	for v := 0; v < g.NumNodes(); v++ {
		m[g.Degree(graph.NodeID(v))]++
	}
	return m
}

func TestNaivePreservesStructure(t *testing.T) {
	g := testGraph()
	res := Naive(g, rand.New(rand.NewSource(2)))
	if res.Graph.NumNodes() != g.NumNodes() || res.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("naive changed size: %v -> %v", g, res.Graph)
	}
	// Degree multiset invariant under permutation.
	dg, da := degreeMultiset(g), degreeMultiset(res.Graph)
	for d, c := range dg {
		if da[d] != c {
			t.Errorf("degree %d count %d -> %d", d, c, da[d])
		}
	}
	// Identity is a bijection and maps each anon node to an original
	// with the same degree.
	seen := map[graph.NodeID]bool{}
	for anon, orig := range res.Identity {
		if seen[orig] {
			t.Fatal("identity not a bijection")
		}
		seen[orig] = true
		if res.Graph.Degree(graph.NodeID(anon)) != g.Degree(orig) {
			t.Fatalf("anon %d degree %d != orig %d degree %d",
				anon, res.Graph.Degree(graph.NodeID(anon)), orig, g.Degree(orig))
		}
	}
}

func TestNaiveEdgePreservation(t *testing.T) {
	g := testGraph()
	res := Naive(g, rand.New(rand.NewSource(3)))
	// Every anon edge must correspond to an original edge under Identity.
	for _, e := range res.Graph.Edges() {
		ou, ov := res.Identity[e.U], res.Identity[e.V]
		if !g.HasEdge(ou, ov) {
			t.Fatalf("anon edge (%d,%d) has no original counterpart (%d,%d)", e.U, e.V, ou, ov)
		}
	}
}

func TestSparsifyRemovesEdges(t *testing.T) {
	g := testGraph()
	res := Sparsify(g, 0.2, rand.New(rand.NewSource(4)))
	if res.Graph.NumNodes() != g.NumNodes() {
		t.Error("sparsify must not change node count")
	}
	want := int(float64(g.NumEdges())*0.8 + 0.5)
	if got := res.Graph.NumEdges(); got != want {
		t.Errorf("sparsified edges = %d, want %d", got, want)
	}
	// Remaining edges are a subset of the permuted original.
	for _, e := range res.Graph.Edges() {
		if !g.HasEdge(res.Identity[e.U], res.Identity[e.V]) {
			t.Fatal("sparsify invented an edge")
		}
	}
}

func TestPerturbKeepsEdgeCount(t *testing.T) {
	g := testGraph()
	res := Perturb(g, 0.2, rand.New(rand.NewSource(5)))
	if res.Graph.NumEdges() != g.NumEdges() {
		t.Errorf("perturb edges = %d, want %d (remove+add balance)",
			res.Graph.NumEdges(), g.NumEdges())
	}
	// Some edges must be new (not in the permuted original) at 20%.
	fresh := 0
	for _, e := range res.Graph.Edges() {
		if !g.HasEdge(res.Identity[e.U], res.Identity[e.V]) {
			fresh++
		}
	}
	if fresh == 0 {
		t.Error("perturbation added no new edges")
	}
}

func TestZeroRatioIsNaive(t *testing.T) {
	g := testGraph()
	s := Sparsify(g, 0, rand.New(rand.NewSource(6)))
	if s.Graph.NumEdges() != g.NumEdges() {
		t.Error("ratio 0 sparsify must keep all edges")
	}
	p := Perturb(g, 0, rand.New(rand.NewSource(7)))
	if p.Graph.NumEdges() != g.NumEdges() {
		t.Error("ratio 0 perturb must keep all edges")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := testGraph()
	a := Perturb(g, 0.1, rand.New(rand.NewSource(8)))
	b := Perturb(g, 0.1, rand.New(rand.NewSource(8)))
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}
