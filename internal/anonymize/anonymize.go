// Package anonymize implements the three graph anonymization schemes the
// paper's de-anonymization case study attacks (§13.5, citing Fu et al.):
// naive identifier removal, sparsification (edge deletion) and
// perturbation (edge rewiring). Every scheme returns the ground-truth
// identity mapping so the attack's precision can be scored.
package anonymize

import (
	"math/rand"

	"ned/internal/graph"
)

// Result pairs an anonymized graph with its ground truth: Identity[anon]
// is the original node that anonymized node corresponds to.
type Result struct {
	Graph    *graph.Graph
	Identity []graph.NodeID
}

// Naive anonymization strips identifiers by applying a random node
// permutation and nothing else: the structure is intact, so a structural
// attack should re-identify nodes with distinctive neighborhoods.
func Naive(g *graph.Graph, rng *rand.Rand) Result {
	n := g.NumNodes()
	perm := rng.Perm(n) // perm[orig] = anon
	b := graph.NewBuilder(n, g.Directed())
	for _, e := range g.Edges() {
		b.AddEdge(graph.NodeID(perm[e.U]), graph.NodeID(perm[e.V]))
	}
	identity := make([]graph.NodeID, n)
	for orig, anon := range perm {
		identity[anon] = graph.NodeID(orig)
	}
	return Result{Graph: b.Build(), Identity: identity}
}

// Sparsify removes a ratio fraction of the edges uniformly at random
// (after a naive permutation), weakening structural signatures.
func Sparsify(g *graph.Graph, ratio float64, rng *rand.Rand) Result {
	res := Naive(g, rng)
	edges := res.Graph.Edges()
	keep := selectEdges(edges, 1-ratio, rng)
	b := graph.NewBuilder(res.Graph.NumNodes(), g.Directed())
	for _, e := range keep {
		b.AddEdge(e.U, e.V)
	}
	return Result{Graph: b.Build(), Identity: res.Identity}
}

// Perturb removes a ratio fraction of the edges and inserts an equal
// number of random non-edges (after a naive permutation) — the strongest
// of the three schemes, used with 1% on PGP and 5% on DBLP in Figure 10.
func Perturb(g *graph.Graph, ratio float64, rng *rand.Rand) Result {
	res := Naive(g, rng)
	n := res.Graph.NumNodes()
	edges := res.Graph.Edges()
	keep := selectEdges(edges, 1-ratio, rng)
	removed := len(edges) - len(keep)

	present := make(map[[2]graph.NodeID]bool, len(edges))
	for _, e := range edges {
		present[edgeKey(e.U, e.V)] = true
	}
	b := graph.NewBuilder(n, g.Directed())
	for _, e := range keep {
		b.AddEdge(e.U, e.V)
	}
	added := 0
	for added < removed && n >= 2 {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		k := edgeKey(u, v)
		if present[k] {
			continue
		}
		present[k] = true
		b.AddEdge(u, v)
		added++
	}
	return Result{Graph: b.Build(), Identity: res.Identity}
}

func edgeKey(u, v graph.NodeID) [2]graph.NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]graph.NodeID{u, v}
}

// selectEdges keeps a keepRatio fraction of edges, chosen uniformly.
func selectEdges(edges []graph.Edge, keepRatio float64, rng *rand.Rand) []graph.Edge {
	if keepRatio >= 1 {
		return edges
	}
	if keepRatio < 0 {
		keepRatio = 0
	}
	perm := rng.Perm(len(edges))
	kept := int(float64(len(edges))*keepRatio + 0.5)
	out := make([]graph.Edge, 0, kept)
	for _, i := range perm[:kept] {
		out = append(out, edges[i])
	}
	return out
}
