package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ned/internal/faultfs"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading result: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want %q", got, "hello")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

// A failed write must leave a previous good file untouched and no tmp
// residue — the torn-write corruption path this helper exists to close.
func TestWriteFileAtomicFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old good content"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half a new fi")) // partial write, then die
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading target after failure: %v", err)
	}
	if string(got) != "old good content" {
		t.Fatalf("target corrupted by failed write: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind after failure: %v", err)
	}
}

func TestWriteFileAtomicOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	for _, content := range []string{"first", "second longer version", "3rd"} {
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatalf("WriteFileAtomic(%q): %v", content, err)
		}
		got, _ := os.ReadFile(path)
		if string(got) != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}

func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"checkpoint-00000003.nedseg.tmp", "snapshot.neds.tmp", "keep.nedseg", "wal-00000001.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	n, err := SweepTemps(dir)
	if err != nil {
		t.Fatalf("SweepTemps: %v", err)
	}
	if n != 2 {
		t.Fatalf("swept %d temporaries, want 2", n)
	}
	for _, name := range []string{"keep.nedseg", "wal-00000001.log", "sub.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s should have survived the sweep: %v", name, err)
		}
	}
	for _, name := range []string{"checkpoint-00000003.nedseg.tmp", "snapshot.neds.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s should have been swept: %v", name, err)
		}
	}
}

func TestSweepTempsMissingDir(t *testing.T) {
	n, err := SweepTemps(filepath.Join(t.TempDir(), "absent"))
	if n != 0 || err != nil {
		t.Fatalf("missing dir: swept %d, err %v", n, err)
	}
}

// A scripted rename failure must abort WriteFileAtomic without leaving
// the tmp orphan — the in-process cleanup half of the orphan story
// (SweepTemps handles the crashed-process half).
func TestWriteFileAtomicRenameFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dat")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{Op: faultfs.OpRename, Fault: faultfs.FaultErr})
	defer inj.Install()()

	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("replacement"))
		return err
	})
	if err == nil {
		t.Fatal("rename fault did not surface")
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "previous" {
		t.Fatalf("target after failed rename: %q, %v", got, rerr)
	}
	if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatalf("tmp orphan left after in-process rename failure: %v", serr)
	}
}

// A short write into the tmp file fails the operation and keeps the
// previous target intact.
func TestWriteFileAtomicShortWriteFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.dat")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{Op: faultfs.OpWrite, Fault: faultfs.FaultShortWrite})
	defer inj.Install()()

	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("a long replacement payload"))
		return err
	})
	if err == nil {
		t.Fatal("short write did not surface")
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "previous" {
		t.Fatalf("target after short write: %q, %v", got, rerr)
	}
}
