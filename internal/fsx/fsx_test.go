package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading result: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want %q", got, "hello")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

// A failed write must leave a previous good file untouched and no tmp
// residue — the torn-write corruption path this helper exists to close.
func TestWriteFileAtomicFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old good content"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half a new fi")) // partial write, then die
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading target after failure: %v", err)
	}
	if string(got) != "old good content" {
		t.Fatalf("target corrupted by failed write: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind after failure: %v", err)
	}
}

func TestWriteFileAtomicOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	for _, content := range []string{"first", "second longer version", "3rd"} {
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatalf("WriteFileAtomic(%q): %v", content, err)
		}
		got, _ := os.ReadFile(path)
		if string(got) != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}
