// Package fsx holds the one crash-safety discipline every writer of
// durable state in this repo follows: never write a file in place.
// A process dying mid-write must leave either the previous complete
// file or the new complete file — a torn half-written snapshot that
// shadows a good one is corruption, and exactly the bug the bare
// os.Create savers used to have.
package fsx

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFileAtomic writes a file so a crash at any instant leaves the
// target either absent/previous or fully written: the content goes to
// <path>.tmp, the tmp file is fsynced, renamed over path, and the
// parent directory is fsynced so the rename itself survives power
// loss. write receives the open tmp file; any error it returns aborts
// the whole operation, removing the tmp file and leaving an existing
// target untouched.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fsx: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("fsx: syncing %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("fsx: closing %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("fsx: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory, making recent renames and creations in
// it durable. Filesystems that do not support directory fsync (some
// network and FUSE mounts report EINVAL or ENOTSUP) are tolerated:
// they offer no stronger primitive to fall back to.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsx: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("fsx: syncing directory %s: %w", dir, err)
	}
	return nil
}
