// Package fsx holds the one crash-safety discipline every writer of
// durable state in this repo follows: never write a file in place.
// A process dying mid-write must leave either the previous complete
// file or the new complete file — a torn half-written snapshot that
// shadows a good one is corruption, and exactly the bug the bare
// os.Create savers used to have.
//
// All filesystem access goes through internal/faultfs, so chaos tests
// can script EIO/ENOSPC/short-write/torn-rename faults at any step.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ned/internal/faultfs"
)

// writeFlags creates-or-truncates for writing: the tmp file may be a
// leftover from an earlier crashed attempt and is overwritten.
const writeFlags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC

// WriteFileAtomic writes a file so a crash at any instant leaves the
// target either absent/previous or fully written: the content goes to
// <path>.tmp, the tmp file is fsynced, renamed over path, and the
// parent directory is fsynced so the rename itself survives power
// loss. write receives the open tmp file; any error it returns aborts
// the whole operation, removing the tmp file and leaving an existing
// target untouched.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	fs := faultfs.Default()
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, writeFlags, 0o644)
	if err != nil {
		return fmt.Errorf("fsx: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			fs.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("fsx: syncing %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("fsx: closing %s: %w", tmp, err)
	}
	if err = fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("fsx: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory, making recent renames and creations in
// it durable. Filesystems that do not support directory fsync (some
// network and FUSE mounts report EINVAL or ENOTSUP) are tolerated:
// they offer no stronger primitive to fall back to.
func SyncDir(dir string) error {
	if err := faultfs.Default().SyncDir(dir); err != nil {
		return fmt.Errorf("fsx: syncing directory %s: %w", dir, err)
	}
	return nil
}

// SweepTemps removes stale WriteFileAtomic temporaries (*.tmp) from
// dir. A process that died between creating a tmp file and renaming
// it leaves the orphan behind forever — in-process cleanup only runs
// when the writer survives to see the error — so durable directories
// sweep on open. Returns how many temporaries were removed; unlink
// failures are ignored (an orphan is garbage, not state), and a
// missing directory sweeps nothing.
func SweepTemps(dir string) (int, error) {
	fs := faultfs.Default()
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return 0, nil
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		if fs.Remove(filepath.Join(dir, e.Name())) == nil {
			removed++
		}
	}
	if removed > 0 {
		if err := SyncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
