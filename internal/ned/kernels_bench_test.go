package ned

import (
	"slices"
	"testing"

	"ned/internal/graph"
	"ned/internal/tree"
)

// BenchmarkCascadeKernels isolates the filter-tier cost per candidate:
// the same bounds, evaluation order, and label-tier decisions computed
// through the columnar block kernels versus the scalar per-candidate
// cascade. The scans' wall-clock win (BenchmarkCorpusKNN) mixes filter
// and verify work; this is the filter side alone, in ns per candidate.
// CI runs it at -benchtime=1x as a compile-and-smoke gate;
// BENCH_CASCADE.json records the measured before/after.
func BenchmarkCascadeKernels(b *testing.B) {
	const nItems, k = 400, 2
	g := randomTestGraph(nItems, 2*nItems+nItems/2, 77)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	items := BuildItems(g, nodes, k, false, 0)
	dict := tree.NewInterner()
	ProfileItems(items, dict, 0)
	blk := compileBlock(items)
	if blk == nil {
		b.Fatal("profiled corpus failed to compile a block")
	}
	q := NewItem(randomTestGraph(nItems/2, nItems, 78), 0, k, false)
	ProfileItem(&q, dict)

	n := len(items)
	perCand := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/cand")
	}
	sizeB, padB := make([]int32, n), make([]int32, n)

	b.Run("bounds/block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !blk.bounds(q, sizeB, padB) {
				b.Fatal("block bounds refused the query")
			}
		}
		perCand(b)
	})
	b.Run("bounds/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range items {
				cb := itemCascadeBounds(q, items[j])
				sizeB[j], padB[j] = cb.size, cb.pad
			}
		}
		perCand(b)
	})

	blk.bounds(q, sizeB, padB)
	b.Run("order/counting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blockOrder(padB, blk.byNode)
		}
		perCand(b)
	})
	b.Run("order/comparison", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order := make([]int32, n)
			for j := range order {
				order[j] = int32(j)
			}
			slices.SortFunc(order, func(a, c int32) int {
				if padB[a] != padB[c] {
					return int(padB[a] - padB[c])
				}
				return int(items[a].Node - items[c].Node)
			})
		}
		perCand(b)
	})

	words := make([]uint64, (n+63)/64)
	b.Run("filter/bitmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tierFilterBlock(sizeB, padB, 4, words)
		}
		perCand(b)
	})

	// Label tier at threshold 0: the tightest threshold a self-match
	// query produces, where the width gate admits the most merges.
	b.Run("labeltier/arena", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				blk.labelTier(q, j, 0)
			}
		}
		perCand(b)
	})
	b.Run("labeltier/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				labelTierPrunes(q, items[j], 0)
			}
		}
		perCand(b)
	})
}
