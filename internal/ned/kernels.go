package ned

// This file holds the block kernels of the filter cascade: tight loops
// that sweep one tier across a whole candidate block laid out as a
// struct-of-arrays profile arena (block.go), writing per-slot bound
// values or a survivor bitmap. Each kernel reads only contiguous int32
// arrays — no *Item or *Profile is dereferenced — so the hot loops stay
// branch-light and bounds-check-hoisted. Every kernel is
// decision-identical to its scalar counterpart in cascade.go
// (kernels_test.go pins the equivalence bit for bit); see the
// block-vs-scalar contract in cascade.go.

// sizeTierBlock accumulates the size tier into dst: dst[i] +=
// |qSize − sizes[i]|. Accumulation (not assignment) lets directed
// corpora run one pass per tree pair over a shared destination.
func sizeTierBlock(qSize int32, sizes, dst []int32) {
	if len(dst) < len(sizes) {
		panic("ned: sizeTierBlock destination too short")
	}
	dst = dst[:len(sizes)]
	for i, s := range sizes {
		d := qSize - s
		if d < 0 {
			d = -d
		}
		dst[i] += d
	}
}

// paddingTierBlock accumulates the padding tier into dst: for each slot
// i with level-size run levels[levOff[i]:levOff[i+1]], dst[i] +=
// Σ_d | qLevels[d] − run[d] | with missing depths counting as empty —
// exactly ted.PaddingBound read off the arena's CSR level storage.
func paddingTierBlock(qLevels, levOff, levels, dst []int32) {
	for i := range dst {
		run := levels[levOff[i]:levOff[i+1]]
		n := len(run)
		if len(qLevels) < n {
			n = len(qLevels)
		}
		q := qLevels[:n]
		var sum int32
		for d, m := range run[:n] {
			diff := q[d] - m
			if diff < 0 {
				diff = -diff
			}
			sum += diff
		}
		// Whichever side is deeper pays its unmatched levels whole.
		for _, m := range run[n:] {
			sum += m
		}
		for _, m := range qLevels[n:] {
			sum += m
		}
		dst[i] += sum
	}
}

// tierFilterBlock folds the size and padding tiers at threshold t into
// a survivor bitmap: bit i is set iff padB[i] <= t (which subsumes
// sizeB[i] <= t by the dominance chain). The returned counts attribute
// every dismissed slot to the cheapest tier that already decides it,
// mirroring candBound.tier.
func tierFilterBlock(sizeB, padB []int32, t int32, bits []uint64) (szPruned, padPruned int) {
	if len(bits) < (len(padB)+63)/64 {
		panic("ned: tierFilterBlock bitmap too short")
	}
	for w := range bits {
		bits[w] = 0
	}
	sz := sizeB[:len(padB)]
	for i, p := range padB {
		if p <= t {
			bits[i>>6] |= 1 << (uint(i) & 63)
			continue
		}
		if sz[i] > t {
			szPruned++
		} else {
			padPruned++
		}
	}
	return szPruned, padPruned
}

// labelTermArena is ted.LevelLabelTerm over arena storage: max over
// depths of ceil(D_d/4), D_d the symmetric difference of level d's
// sorted label runs — the query side read from its Profile, the
// candidate side from one arena slot's CSR runs.
func labelTermArena(qLevels, qLabels, cLevels, cLabels []int32) int {
	maxDiff := int64(0)
	var offQ, offC int32
	for d := 0; d < len(qLevels) || d < len(cLevels); d++ {
		var runQ, runC []int32
		if d < len(qLevels) {
			runQ = qLabels[offQ : offQ+qLevels[d]]
			offQ += qLevels[d]
		}
		if d < len(cLevels) {
			runC = cLabels[offC : offC+cLevels[d]]
			offC += cLevels[d]
		}
		if diff := symDiffSorted(runQ, runC); diff > maxDiff {
			maxDiff = diff
		}
	}
	return int((maxDiff + 3) / 4)
}

// symDiffSorted is the multiset symmetric difference of two ascending
// runs via linear merge (the arena copy of ted's symmetricDifference).
func symDiffSorted(a, b []int32) int64 {
	var d int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			i++
			d++
		default:
			j++
			d++
		}
	}
	return d + int64(len(a)-i) + int64(len(b)-j)
}

// blockOrder returns the slots in ascending (padding bound, node)
// order — identical to cascadeOrder's comparison sort — via a counting
// sort over the bound values: one pass to histogram, one stable pass
// in byNode order to place. NED bounds are small integers, so the
// count array is tiny; a degenerate corpus whose bound range dwarfs
// the slot count falls back to the comparison sort.
func blockOrder(padB []int32, byNode []int32) []int32 {
	n := len(padB)
	order := make([]int32, n)
	var maxPad int32
	for _, p := range padB {
		if p > maxPad {
			maxPad = p
		}
	}
	if int(maxPad) > 4*n+4096 {
		copy(order, byNode)
		insertionSortByPad(order, padB)
		return order
	}
	counts := make([]int32, int(maxPad)+2)
	for _, p := range padB {
		counts[p+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	for _, j := range byNode {
		p := padB[j]
		order[counts[p]] = j
		counts[p]++
	}
	return order
}

// insertionSortByPad stably sorts order (pre-sorted by node) by padding
// bound — the rare fallback for degenerate bound ranges. Stability
// preserves the node tie-break.
func insertionSortByPad(order []int32, padB []int32) {
	for i := 1; i < len(order); i++ {
		j, p := order[i], padB[order[i]]
		k := i - 1
		for k >= 0 && padB[order[k]] > p {
			order[k+1] = order[k]
			k--
		}
		order[k+1] = j
	}
}
