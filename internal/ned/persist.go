package ned

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ned/internal/fsx"
	"ned/internal/graph"
	"ned/internal/tree"
)

// WriteSignatures serializes signatures as one line per signature:
// "<node> <k> <encoded tree>". The format is plain text, diff-friendly,
// and round-trips through ReadSignatures. Precomputing and persisting
// signatures amortizes BFS extraction across sessions — the pattern all
// the §13 query experiments rely on.
func WriteSignatures(w io.Writer, sigs []Signature) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ned signatures v1: node k parentvector\n"); err != nil {
		return fmt.Errorf("ned: writing header: %w", err)
	}
	for _, s := range sigs {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", s.Node, s.K, tree.Encode(s.Tree)); err != nil {
			return fmt.Errorf("ned: writing signature of node %d: %w", s.Node, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ned: flushing signatures: %w", err)
	}
	return nil
}

// maxSignatureLine caps how long one serialized signature line may be.
// A line is ~7 bytes per tree node, so 64 MiB accommodates signatures of
// several million nodes — far beyond any k-adjacent tree this library
// produces — while still bounding memory against corrupt input.
const maxSignatureLine = 64 << 20

// ReadSignatures parses the WriteSignatures format. Lines longer than
// maxSignatureLine yield an error naming the offending line rather than
// a silent truncation.
func ReadSignatures(r io.Reader) ([]Signature, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSignatureLine)
	var out []Signature
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("ned: line %d: malformed signature %q", lineNo, line)
		}
		enc := ""
		if len(fields) == 3 {
			enc = fields[2]
		}
		node, k, t, err := parseItemLine(lineNo, fields[0], fields[1], enc)
		if err != nil {
			return nil, err
		}
		out = append(out, Signature{Node: node, K: k, Tree: t})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("ned: line %d: signature line exceeds %d bytes: %w", lineNo+1, maxSignatureLine, err)
		}
		return nil, fmt.Errorf("ned: line %d: scanning signatures: %w", lineNo+1, err)
	}
	return out, nil
}

// --- corpus snapshots ---
//
// A corpus snapshot extends the signature format with one header line of
// corpus metadata, so a built (possibly mutated) index round-trips
// through Corpus.Snapshot / LoadCorpus without re-extracting BFS trees:
//
//	# ned corpus v1 backend=vp k=3 directed=0 nodes=2
//	0 3 0,0,1
//	4 3 0,1
//
// Version 2 is the sharded manifest: the header additionally records
// the shard count, and the items are grouped into per-shard sections,
// each introduced by a comment naming the shard and its item count:
//
//	# ned corpus v2 backend=vp k=3 directed=0 shards=2 nodes=3
//	# shard 0 nodes=2
//	0 3 0,0,1
//	4 3 0,1
//	# shard 1 nodes=1
//	7 3 0,1,1
//
// Shard placement is derived (ShardOf), never trusted: a reader
// re-partitions the items by hash for whatever shard count it is
// configured with, so v1 files load into a sharded engine and v2 files
// load into any shard count, including one. The section counts exist so
// truncated sections fail loudly.
//
// Version 3 is the rebalanced manifest, written only when the corpus
// carries a non-trivial placement directory (a corpus still on its
// blind-hash seed layout writes v2, byte for byte). The header gains
// the redirect bucket count and a comment line records the bucket ->
// shard redirect table:
//
//	# ned corpus v3 backend=vp k=3 directed=0 shards=3 base=2 nodes=3
//	# redirect 0,2
//	# shard 0 nodes=1
//	...
//
// Node-level moves are not listed: each item line already sits in its
// owning shard's section, so the reader re-derives the Moves overrides
// by comparing an item's section against where the redirect table would
// have routed it. Section markers and the redirect line stay
// comment-shaped, preserving the signature-file compatibility below.
//
// Directed corpora carry two encodings per line (outgoing then incoming
// tree); a single-node tree encodes as "-" so the field count stays
// fixed. The format is versioned: ReadCorpusItems rejects versions it
// does not know, and — because headers and section markers are comments
// and item lines are valid signature lines — undirected snapshots still
// parse as plain signature files, while legacy signature files (no
// header) load as version-0 snapshots.
//
// Cascade profiles (Item.OutP/InP) are deliberately NOT serialized:
// label IDs are dense handles into one corpus's in-memory shape
// dictionary and mean nothing in another process. The format is
// unchanged by their introduction; loaders recompile profiles against
// a fresh dictionary (ProfileItems) after parsing, as ned.LoadCorpus
// does.

// snapshotPrefix starts the header line of every corpus snapshot.
const snapshotPrefix = "# ned corpus v"

// shardSectionPrefix starts a per-shard section marker in a v2 snapshot.
const shardSectionPrefix = "# shard "

// redirectPrefix starts the redirect-table line of a v3 snapshot.
const redirectPrefix = "# redirect "

// snapshotVersion is the newest snapshot format version this build
// reads and writes. Version 1 (unsharded, no section markers) is still
// written when a CorpusMeta says so, version 2 whenever the placement
// is trivial, and both are always read.
const snapshotVersion = 3

// CorpusMeta is the header metadata of a corpus snapshot.
type CorpusMeta struct {
	Version  int    // format version; 0 means a legacy plain signature file
	Backend  string // flag-style backend name recorded at snapshot time
	K        int    // neighborhood depth shared by every item
	Directed bool   // whether items carry incoming trees too
	Shards   int    // shard count recorded by a v2 manifest; 0 before v2

	// Place is the placement directory of a v3 manifest (reconstructed
	// from the redirect line and the items' section membership), nil for
	// earlier versions and for writers on the trivial seed layout.
	Place *Placement

	// nodes is the declared item count, checked against the parsed items
	// so truncated snapshots fail loudly.
	nodes int

	// base is the declared redirect bucket count of a v3 header.
	base int
}

// encOrDash substitutes the "-" placeholder for the empty encoding of a
// single-node tree, keeping snapshot field counts fixed.
func encOrDash(enc string) string {
	if enc == "" {
		return "-"
	}
	return enc
}

// decodeTreeField decodes one serialized tree, mapping the "-"
// single-node placeholder back to the empty encoding. Shared by the
// signature and snapshot readers so the two formats cannot drift apart.
func decodeTreeField(enc string) (*tree.Tree, error) {
	if enc == "-" {
		enc = ""
	}
	return tree.Decode(enc)
}

// parseItemLine parses the "<node> <k> <tree>" triple that both the
// signature format and snapshot item lines start with. Errors name the
// offending line.
func parseItemLine(lineNo int, nodeStr, kStr, enc string) (graph.NodeID, int, *tree.Tree, error) {
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("ned: line %d: bad node id: %w", lineNo, err)
	}
	k, err := strconv.Atoi(kStr)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("ned: line %d: bad k: %w", lineNo, err)
	}
	t, err := decodeTreeField(enc)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("ned: line %d: %w", lineNo, err)
	}
	return graph.NodeID(node), k, t, nil
}

// writeItemLine serializes one snapshot item line, shared by the v1 and
// v2 writers.
func writeItemLine(bw *bufio.Writer, it Item, directed bool) error {
	if it.Out == nil || (directed && it.In == nil) {
		return fmt.Errorf("ned: snapshot item for node %d has no tree", it.Node)
	}
	var err error
	if directed {
		_, err = fmt.Fprintf(bw, "%d %d %s %s\n", it.Node, it.K,
			encOrDash(tree.Encode(it.Out)), encOrDash(tree.Encode(it.In)))
	} else {
		_, err = fmt.Fprintf(bw, "%d %d %s\n", it.Node, it.K, encOrDash(tree.Encode(it.Out)))
	}
	if err != nil {
		return fmt.Errorf("ned: writing snapshot item for node %d: %w", it.Node, err)
	}
	return nil
}

// WriteCorpusItems serializes a version-1 (unsharded) corpus snapshot:
// the metadata header followed by one line per indexed item. Items
// should be in a deterministic order (the Corpus writes them
// node-ascending) so equal corpora produce byte-identical snapshots.
func WriteCorpusItems(w io.Writer, meta CorpusMeta, items []Item) error {
	bw := bufio.NewWriter(w)
	directed := 0
	if meta.Directed {
		directed = 1
	}
	if _, err := fmt.Fprintf(bw, "%s%d backend=%s k=%d directed=%d nodes=%d\n",
		snapshotPrefix, 1, meta.Backend, meta.K, directed, len(items)); err != nil {
		return fmt.Errorf("ned: writing snapshot header: %w", err)
	}
	for _, it := range items {
		if err := writeItemLine(bw, it, meta.Directed); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ned: flushing snapshot: %w", err)
	}
	return nil
}

// WriteShardedCorpusItems serializes a sharded corpus manifest: the
// header records the shard count, and each shard's items follow a
// "# shard i nodes=m" section marker, node-ascending within the shard.
// shardItems[i] is shard i's items; meta.Shards is ignored in favor of
// len(shardItems). A trivial (or absent) meta.Place writes version 2 —
// placement is a pure hash, so equal corpora with equal shard counts
// produce byte-identical manifests; a rebalanced placement writes
// version 3 with the redirect table on a comment line (moves are
// implied by which section each item sits in).
func WriteShardedCorpusItems(w io.Writer, meta CorpusMeta, shardItems [][]Item) error {
	bw := bufio.NewWriter(w)
	directed, total := 0, 0
	if meta.Directed {
		directed = 1
	}
	for _, items := range shardItems {
		total += len(items)
	}
	if meta.Place.Trivial() {
		if _, err := fmt.Fprintf(bw, "%s%d backend=%s k=%d directed=%d shards=%d nodes=%d\n",
			snapshotPrefix, 2, meta.Backend, meta.K, directed, len(shardItems), total); err != nil {
			return fmt.Errorf("ned: writing snapshot header: %w", err)
		}
	} else {
		place := meta.Place
		if err := place.Validate(); err != nil {
			return fmt.Errorf("ned: snapshot placement: %w", err)
		}
		if place.Shards != len(shardItems) {
			return fmt.Errorf("ned: snapshot placement routes into %d shards, manifest has %d", place.Shards, len(shardItems))
		}
		if _, err := fmt.Fprintf(bw, "%s%d backend=%s k=%d directed=%d shards=%d base=%d nodes=%d\n",
			snapshotPrefix, 3, meta.Backend, meta.K, directed, len(shardItems), place.Base, total); err != nil {
			return fmt.Errorf("ned: writing snapshot header: %w", err)
		}
		buckets := make([]string, len(place.Redirect))
		for i, s := range place.Redirect {
			buckets[i] = strconv.Itoa(int(s))
		}
		if _, err := fmt.Fprintf(bw, "%s%s\n", redirectPrefix, strings.Join(buckets, ",")); err != nil {
			return fmt.Errorf("ned: writing redirect table: %w", err)
		}
	}
	for si, items := range shardItems {
		if _, err := fmt.Fprintf(bw, "%s%d nodes=%d\n", shardSectionPrefix, si, len(items)); err != nil {
			return fmt.Errorf("ned: writing shard %d section: %w", si, err)
		}
		for _, it := range items {
			if err := writeItemLine(bw, it, meta.Directed); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ned: flushing snapshot: %w", err)
	}
	return nil
}

// ReadCorpusItems parses a corpus snapshot, or — when the input has no
// snapshot header — a legacy plain signature file, reported as Version
// 0 with Backend/K/Directed left for the caller to derive. Duplicate
// nodes, k values disagreeing with the header, wrong per-line field
// counts, undeclared versions, and header/item-count mismatches are all
// errors naming the offending line.
func ReadCorpusItems(r io.Reader) (CorpusMeta, []Item, error) {
	var meta CorpusMeta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSignatureLine)
	var items []Item
	seen := make(map[graph.NodeID]int)
	lineNo, contentLines := 0, 0
	// v2 shard-section bookkeeping: the open section's index, its
	// declared item count, and how many items it has produced so far.
	curShard, declared, sectionItems := -1, 0, 0
	// v3 placement bookkeeping: the parsed redirect table and the moves
	// derived from items sitting outside their redirect-routed shard.
	var redirect []int32
	var moves map[graph.NodeID]int32
	closeSection := func() error {
		if curShard >= 0 && sectionItems != declared {
			return fmt.Errorf("ned: shard %d section declares %d nodes, found %d", curShard, declared, sectionItems)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' {
			if strings.HasPrefix(line, snapshotPrefix) {
				// A snapshot header is only legal as the very first
				// meaningful line. One appearing after items (or after
				// another header) means two snapshots were concatenated or
				// a file was garbled mid-write: half-parsing it as a
				// comment would silently serve a truncated corpus.
				if contentLines > 0 || meta.Version != 0 {
					return meta, nil, fmt.Errorf("ned: line %d: unexpected second snapshot header %q", lineNo, line)
				}
				m, err := parseSnapshotHeader(line)
				if err != nil {
					return meta, nil, fmt.Errorf("ned: line %d: %w", lineNo, err)
				}
				meta = m
			}
			if meta.Version >= 3 && strings.HasPrefix(line, redirectPrefix) {
				if redirect != nil {
					return meta, nil, fmt.Errorf("ned: line %d: duplicate redirect table", lineNo)
				}
				if curShard >= 0 {
					return meta, nil, fmt.Errorf("ned: line %d: redirect table after shard sections", lineNo)
				}
				var err error
				if redirect, err = parseRedirectLine(line, meta.base, meta.Shards); err != nil {
					return meta, nil, fmt.Errorf("ned: line %d: %w", lineNo, err)
				}
			}
			if meta.Version >= 2 && strings.HasPrefix(line, shardSectionPrefix) {
				si, n, err := parseShardSection(line)
				if err != nil {
					return meta, nil, fmt.Errorf("ned: line %d: %w", lineNo, err)
				}
				if si != curShard+1 {
					return meta, nil, fmt.Errorf("ned: line %d: shard section %d out of order (want %d)", lineNo, si, curShard+1)
				}
				if err := closeSection(); err != nil {
					return meta, nil, err
				}
				curShard, declared, sectionItems = si, n, 0
			}
			continue
		}
		contentLines++
		if meta.Version >= 2 {
			if curShard < 0 {
				return meta, nil, fmt.Errorf("ned: line %d: item before any shard section", lineNo)
			}
			sectionItems++
		}
		fields := strings.Fields(line)
		want := 3
		if meta.Directed {
			want = 4
		}
		if meta.Version >= 1 && len(fields) != want {
			return meta, nil, fmt.Errorf("ned: line %d: snapshot item has %d fields, want %d", lineNo, len(fields), want)
		}
		if meta.Version == 0 && (len(fields) < 2 || len(fields) > 3) {
			return meta, nil, fmt.Errorf("ned: line %d: malformed signature %q", lineNo, line)
		}
		enc := ""
		if len(fields) >= 3 {
			enc = fields[2]
		}
		node, k, out, err := parseItemLine(lineNo, fields[0], fields[1], enc)
		if err != nil {
			return meta, nil, err
		}
		if meta.Version >= 1 && k != meta.K {
			return meta, nil, fmt.Errorf("ned: line %d: item k=%d disagrees with header k=%d", lineNo, k, meta.K)
		}
		if prev, dup := seen[node]; dup {
			return meta, nil, fmt.Errorf("ned: line %d: node %d already appeared on line %d", lineNo, node, prev)
		}
		seen[node] = lineNo
		if meta.Version >= 3 {
			if redirect == nil {
				return meta, nil, fmt.Errorf("ned: line %d: item before redirect table", lineNo)
			}
			if int(redirect[ShardOf(node, meta.base)]) != curShard {
				if moves == nil {
					moves = make(map[graph.NodeID]int32)
				}
				moves[node] = int32(curShard)
			}
		}
		it := Item{Node: node, K: k, Out: out}
		if meta.Directed {
			if it.In, err = decodeTreeField(fields[3]); err != nil {
				return meta, nil, fmt.Errorf("ned: line %d: incoming tree: %w", lineNo, err)
			}
		}
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return meta, nil, fmt.Errorf("ned: line %d: snapshot line exceeds %d bytes: %w", lineNo+1, maxSignatureLine, err)
		}
		return meta, nil, fmt.Errorf("ned: line %d: scanning snapshot: %w", lineNo+1, err)
	}
	if meta.Version >= 1 && len(items) != meta.nodes {
		return meta, nil, fmt.Errorf("ned: snapshot truncated or padded: header declares %d nodes, found %d", meta.nodes, len(items))
	}
	if meta.Version >= 2 {
		if err := closeSection(); err != nil {
			return meta, nil, err
		}
		if curShard+1 != meta.Shards {
			return meta, nil, fmt.Errorf("ned: snapshot declares %d shards, found %d sections", meta.Shards, curShard+1)
		}
	}
	if meta.Version >= 3 {
		if redirect == nil {
			return meta, nil, fmt.Errorf("ned: v%d snapshot has no redirect table", meta.Version)
		}
		meta.Place = &Placement{Base: meta.base, Shards: meta.Shards, Redirect: redirect, Moves: moves}
		if err := meta.Place.Validate(); err != nil {
			return meta, nil, fmt.Errorf("ned: snapshot placement: %w", err)
		}
	}
	return meta, items, nil
}

// parseRedirectLine parses "# redirect 0,2,1" into the redirect table,
// checking the declared bucket count and the shard range.
func parseRedirectLine(line string, base, shards int) ([]int32, error) {
	fields := strings.Split(strings.TrimPrefix(line, redirectPrefix), ",")
	if len(fields) != base {
		return nil, fmt.Errorf("redirect table has %d buckets, header declares base=%d", len(fields), base)
	}
	redirect := make([]int32, len(fields))
	for i, f := range fields {
		s, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || s < 0 || s >= shards {
			return nil, fmt.Errorf("bad redirect bucket %q", f)
		}
		redirect[i] = int32(s)
	}
	return redirect, nil
}

// parseShardSection parses "# shard 3 nodes=17" into (3, 17).
func parseShardSection(line string) (shard, nodes int, err error) {
	rest := strings.TrimPrefix(line, shardSectionPrefix)
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("malformed shard section %q", line)
	}
	if shard, err = strconv.Atoi(fields[0]); err != nil || shard < 0 {
		return 0, 0, fmt.Errorf("bad shard index in %q", line)
	}
	val, ok := strings.CutPrefix(fields[1], "nodes=")
	if !ok {
		return 0, 0, fmt.Errorf("malformed shard section %q", line)
	}
	if nodes, err = strconv.Atoi(val); err != nil || nodes < 0 {
		return 0, 0, fmt.Errorf("bad shard node count %q", val)
	}
	return shard, nodes, nil
}

// parseSnapshotHeader parses "# ned corpus v1 backend=vp k=3 directed=0
// nodes=5" into metadata, rejecting unknown versions and malformed or
// missing fields.
func parseSnapshotHeader(line string) (CorpusMeta, error) {
	var meta CorpusMeta
	rest := strings.TrimPrefix(line, snapshotPrefix)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return meta, fmt.Errorf("malformed snapshot header %q", line)
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil || v < 1 {
		return meta, fmt.Errorf("malformed snapshot version in %q", line)
	}
	if v > snapshotVersion {
		return meta, fmt.Errorf("snapshot version %d not supported (this build reads up to v%d)", v, snapshotVersion)
	}
	meta.Version = v
	got := map[string]bool{}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return meta, fmt.Errorf("malformed snapshot header field %q", f)
		}
		got[key] = true
		switch key {
		case "backend":
			meta.Backend = val
		case "k":
			if meta.K, err = strconv.Atoi(val); err != nil || meta.K < 1 {
				return meta, fmt.Errorf("bad snapshot k %q", val)
			}
		case "directed":
			switch val {
			case "0":
			case "1":
				meta.Directed = true
			default:
				return meta, fmt.Errorf("bad snapshot directed flag %q", val)
			}
		case "nodes":
			if meta.nodes, err = strconv.Atoi(val); err != nil || meta.nodes < 0 {
				return meta, fmt.Errorf("bad snapshot node count %q", val)
			}
		case "shards":
			if meta.Shards, err = strconv.Atoi(val); err != nil || meta.Shards < 1 {
				return meta, fmt.Errorf("bad snapshot shard count %q", val)
			}
		case "base":
			if meta.base, err = strconv.Atoi(val); err != nil || meta.base < 1 {
				return meta, fmt.Errorf("bad snapshot redirect base %q", val)
			}
		}
	}
	required := []string{"backend", "k", "directed", "nodes"}
	if meta.Version >= 2 {
		required = append(required, "shards")
	}
	if meta.Version >= 3 {
		required = append(required, "base")
	}
	for _, key := range required {
		if !got[key] {
			return meta, fmt.Errorf("snapshot header missing %s=", key)
		}
	}
	return meta, nil
}

// SaveSignaturesFile writes signatures to a file, crash-safely: the
// content lands in <path>.tmp and is fsynced and renamed over the
// target, so a crash mid-save can never tear a previous good file.
func SaveSignaturesFile(path string, sigs []Signature) error {
	return fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return WriteSignatures(w, sigs)
	})
}

// LoadSignaturesFile reads signatures from a file.
func LoadSignaturesFile(path string) ([]Signature, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ned: %w", err)
	}
	defer f.Close()
	return ReadSignatures(f)
}
