package ned

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ned/internal/graph"
	"ned/internal/tree"
)

// WriteSignatures serializes signatures as one line per signature:
// "<node> <k> <encoded tree>". The format is plain text, diff-friendly,
// and round-trips through ReadSignatures. Precomputing and persisting
// signatures amortizes BFS extraction across sessions — the pattern all
// the §13 query experiments rely on.
func WriteSignatures(w io.Writer, sigs []Signature) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ned signatures v1: node k parentvector\n"); err != nil {
		return fmt.Errorf("ned: writing header: %w", err)
	}
	for _, s := range sigs {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", s.Node, s.K, tree.Encode(s.Tree)); err != nil {
			return fmt.Errorf("ned: writing signature of node %d: %w", s.Node, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ned: flushing signatures: %w", err)
	}
	return nil
}

// maxSignatureLine caps how long one serialized signature line may be.
// A line is ~7 bytes per tree node, so 64 MiB accommodates signatures of
// several million nodes — far beyond any k-adjacent tree this library
// produces — while still bounding memory against corrupt input.
const maxSignatureLine = 64 << 20

// ReadSignatures parses the WriteSignatures format. Lines longer than
// maxSignatureLine yield an error naming the offending line rather than
// a silent truncation.
func ReadSignatures(r io.Reader) ([]Signature, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSignatureLine)
	var out []Signature
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("ned: line %d: malformed signature %q", lineNo, line)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("ned: line %d: bad node id: %w", lineNo, err)
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("ned: line %d: bad k: %w", lineNo, err)
		}
		enc := ""
		if len(fields) == 3 {
			enc = fields[2]
		}
		t, err := tree.Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("ned: line %d: %w", lineNo, err)
		}
		out = append(out, Signature{Node: graph.NodeID(node), K: k, Tree: t})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("ned: line %d: signature line exceeds %d bytes: %w", lineNo+1, maxSignatureLine, err)
		}
		return nil, fmt.Errorf("ned: line %d: scanning signatures: %w", lineNo+1, err)
	}
	return out, nil
}

// SaveSignaturesFile writes signatures to a file.
func SaveSignaturesFile(path string, sigs []Signature) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ned: %w", err)
	}
	if err := WriteSignatures(f, sigs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ned: closing %s: %w", path, err)
	}
	return nil
}

// LoadSignaturesFile reads signatures from a file.
func LoadSignaturesFile(path string) ([]Signature, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ned: %w", err)
	}
	defer f.Close()
	return ReadSignatures(f)
}
