package ned

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ned/internal/graph"
	"ned/internal/tree"
)

// WriteSignatures serializes signatures as one line per signature:
// "<node> <k> <encoded tree>". The format is plain text, diff-friendly,
// and round-trips through ReadSignatures. Precomputing and persisting
// signatures amortizes BFS extraction across sessions — the pattern all
// the §13 query experiments rely on.
func WriteSignatures(w io.Writer, sigs []Signature) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ned signatures v1: node k parentvector\n"); err != nil {
		return fmt.Errorf("ned: writing header: %w", err)
	}
	for _, s := range sigs {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", s.Node, s.K, tree.Encode(s.Tree)); err != nil {
			return fmt.Errorf("ned: writing signature of node %d: %w", s.Node, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ned: flushing signatures: %w", err)
	}
	return nil
}

// ReadSignatures parses the WriteSignatures format.
func ReadSignatures(r io.Reader) ([]Signature, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Signature
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("ned: line %d: malformed signature %q", lineNo, line)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("ned: line %d: bad node id: %w", lineNo, err)
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("ned: line %d: bad k: %w", lineNo, err)
		}
		enc := ""
		if len(fields) == 3 {
			enc = fields[2]
		}
		t, err := tree.Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("ned: line %d: %w", lineNo, err)
		}
		out = append(out, Signature{Node: graph.NodeID(node), K: k, Tree: t})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ned: scanning signatures: %w", err)
	}
	return out, nil
}

// SaveSignaturesFile writes signatures to a file.
func SaveSignaturesFile(path string, sigs []Signature) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ned: %w", err)
	}
	if err := WriteSignatures(f, sigs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ned: closing %s: %w", path, err)
	}
	return nil
}

// LoadSignaturesFile reads signatures from a file.
func LoadSignaturesFile(path string) ([]Signature, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ned: %w", err)
	}
	defer f.Close()
	return ReadSignatures(f)
}
