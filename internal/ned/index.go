package ned

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"ned/internal/graph"
	"ned/internal/ted"
	"ned/internal/tree"
	"ned/internal/vptree"
)

// This file defines the unified index layer behind the public Corpus
// query engine: one Index interface that the VP-tree, BK-tree, parallel
// linear scan, and pruned linear scan all implement, so query-serving
// code is written once against the interface and backends stay
// interchangeable.

// Item is what an index backend stores and queries: a node plus the
// signature trees its distance needs — the single k-adjacent tree for
// undirected NED (Equation 1), or the outgoing and incoming trees for
// the directed variant (Equation 2).
type Item struct {
	Node graph.NodeID
	K    int
	Out  *tree.Tree // the k-adjacent tree (outgoing tree when directed)
	In   *tree.Tree // incoming k-adjacent tree; nil for undirected NED
}

// Item converts a signature into its index representation.
func (s Signature) Item() Item { return Item{Node: s.Node, K: s.K, Out: s.Tree} }

// ItemDistance is the NED distance between two items: TED* over the
// out-trees, plus TED* over the in-trees when both items carry one.
func ItemDistance(a, b Item) int {
	d := ted.Distance(a.Out, b.Out)
	if a.In != nil && b.In != nil {
		d += ted.Distance(a.In, b.In)
	}
	return d
}

// ItemLowerBound is the padding lower bound on ItemDistance — cheap and
// never exceeding the true distance, so valid for pruning.
func ItemLowerBound(a, b Item) int {
	lb := ted.LowerBound(a.Out, b.Out)
	if a.In != nil && b.In != nil {
		lb += ted.LowerBound(a.In, b.In)
	}
	return lb
}

// BuildItems materializes index items for the given nodes of g in
// parallel: one BFS tree extraction per node (two when directed).
// Output order matches the input order.
func BuildItems(g *graph.Graph, nodes []graph.NodeID, k int, directed bool, workers int) []Item {
	out := make([]Item, len(nodes))
	parallelFor(len(nodes), BatchOptions{Workers: workers}.workers(), func(i int) {
		out[i] = NewItem(g, nodes[i], k, directed)
	})
	return out
}

// NewItem extracts the index item of one node: its k-adjacent tree, or
// the outgoing and incoming trees when directed.
func NewItem(g *graph.Graph, v graph.NodeID, k int, directed bool) Item {
	if !directed {
		t, _ := tree.KAdjacent(g, v, k)
		return Item{Node: v, K: k, Out: t}
	}
	to, _ := tree.KAdjacentOutgoing(g, v, k)
	ti, _ := tree.KAdjacentIncoming(g, v, k)
	return Item{Node: v, K: k, Out: to, In: ti}
}

// Index is the unified query surface of every NED index backend. All
// methods are safe for concurrent use, report typed errors instead of
// panicking, and check the context inside their distance loops so
// expensive queries abort promptly on cancellation.
type Index interface {
	// KNN returns the l nearest indexed items to the query in ascending
	// (distance, node) order. l larger than Len returns everything.
	KNN(ctx context.Context, query Item, l int) ([]Neighbor, error)
	// Range returns every indexed item within distance r of the query in
	// ascending (distance, node) order.
	Range(ctx context.Context, query Item, r int) ([]Neighbor, error)
	// Len reports how many items are indexed.
	Len() int
	// DistanceCalls reports full metric evaluations since the last
	// ResetStats (cheap lower-bound evaluations are not counted).
	DistanceCalls() int64
	// ResetStats zeroes the metric-evaluation counter.
	ResetStats()
}

// sortNeighborsCanonical orders query results by (distance, node), the
// deterministic presentation every backend normalizes to.
func sortNeighborsCanonical(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].Node < ns[j].Node
	})
}

// --- VP-tree backend ---

type vpBackend struct {
	t *vptree.Tree[Item]
}

// NewVPBackend indexes the items in a vantage-point tree (§13.4): exact
// sub-linear queries via floating-point triangle-inequality pruning.
func NewVPBackend(items []Item) Index {
	return &vpBackend{t: vptree.New(items, func(a, b Item) float64 {
		return float64(ItemDistance(a, b))
	})}
}

func (b *vpBackend) KNN(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	res, err := b.t.KNNContext(ctx, query, l)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, r := range res {
		out[i] = Neighbor{Node: r.Item.Node, Dist: int(r.Dist)}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *vpBackend) Range(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	res, err := b.t.RangeContext(ctx, query, float64(r))
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, rr := range res {
		out[i] = Neighbor{Node: rr.Item.Node, Dist: int(rr.Dist)}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *vpBackend) Len() int             { return b.t.Len() }
func (b *vpBackend) DistanceCalls() int64 { return b.t.DistanceCalls() }
func (b *vpBackend) ResetStats()          { b.t.ResetStats() }

// --- BK-tree backend ---

type bkBackend struct {
	t *vptree.BKTree[Item]
}

// NewBKBackend indexes the items in a Burkhard–Keller tree: integer
// distance buckets, often faster than the VP-tree on the small integer
// range NED produces.
func NewBKBackend(items []Item) Index {
	return &bkBackend{t: vptree.NewBK(items, ItemDistance)}
}

func (b *bkBackend) KNN(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	res, err := b.t.KNNContext(ctx, query, l)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, r := range res {
		out[i] = Neighbor{Node: r.Item.Node, Dist: r.Dist}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *bkBackend) Range(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	res, err := b.t.RangeContext(ctx, query, r)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, rr := range res {
		out[i] = Neighbor{Node: rr.Item.Node, Dist: rr.Dist}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *bkBackend) Len() int             { return b.t.Len() }
func (b *bkBackend) DistanceCalls() int64 { return b.t.DistanceCalls() }
func (b *bkBackend) ResetStats()          { b.t.ResetStats() }

// --- parallel linear-scan backend ---

type linearBackend struct {
	items     []Item
	workers   int
	distCalls atomic.Int64
}

// NewLinearBackend evaluates every indexed item per query across the
// given worker count (<= 0 means GOMAXPROCS). The exact baseline every
// metric index is measured against; still the fastest option for small
// corpora where tree traversal overhead dominates.
func NewLinearBackend(items []Item, workers int) Index {
	return &linearBackend{items: items, workers: BatchOptions{Workers: workers}.workers()}
}

func (b *linearBackend) scan(ctx context.Context, query Item) ([]Neighbor, error) {
	all := make([]Neighbor, len(b.items))
	err := ParallelForCtx(ctx, len(b.items), b.workers, func(i int) {
		all[i] = Neighbor{Node: b.items[i].Node, Dist: ItemDistance(query, b.items[i])}
		b.distCalls.Add(1)
	})
	if err != nil {
		return nil, err
	}
	return all, nil
}

func (b *linearBackend) KNN(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	if l <= 0 || len(b.items) == 0 {
		return nil, ctx.Err()
	}
	all, err := b.scan(ctx, query)
	if err != nil {
		return nil, err
	}
	sortNeighborsCanonical(all)
	if l > len(all) {
		l = len(all)
	}
	return all[:l], nil
}

func (b *linearBackend) Range(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	all, err := b.scan(ctx, query)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, n := range all {
		if n.Dist <= r {
			out = append(out, n)
		}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *linearBackend) Len() int             { return len(b.items) }
func (b *linearBackend) DistanceCalls() int64 { return b.distCalls.Load() }
func (b *linearBackend) ResetStats()          { b.distCalls.Store(0) }

// --- pruned linear-scan backend ---

type prunedBackend struct {
	items     []Item
	distCalls atomic.Int64
}

// NewPrunedLinearBackend scans sequentially but skips full TED*
// evaluations for items the padding lower bound proves out of range
// (the §10 pruning strategy PrunedTopL pioneered, behind the unified
// interface).
func NewPrunedLinearBackend(items []Item) Index {
	return &prunedBackend{items: items}
}

func (b *prunedBackend) KNN(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	res, _, err := prunedKNN(ctx, query, b.items, l, &b.distCalls)
	return res, err
}

func (b *prunedBackend) Range(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []Neighbor
	for i, it := range b.items {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if ItemLowerBound(query, it) > r {
			continue
		}
		b.distCalls.Add(1)
		if d := ItemDistance(query, it); d <= r {
			out = append(out, Neighbor{Node: it.Node, Dist: d})
		}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *prunedBackend) Len() int             { return len(b.items) }
func (b *prunedBackend) DistanceCalls() int64 { return b.distCalls.Load() }
func (b *prunedBackend) ResetStats()          { b.distCalls.Store(0) }

// cancelCheckStride is how many candidates a sequential scan processes
// between context checks.
const cancelCheckStride = 16

// prunedKNN is the lower-bound-pruned top-l scan shared by the pruned
// backend and the legacy PrunedTopL free function. The returned ranking
// is exact with respect to the full TED* distance: every reported
// neighbor carries its true distance, and the set equals the plain
// scan's up to equal-distance ties.
func prunedKNN(ctx context.Context, query Item, items []Item, l int, calls *atomic.Int64) ([]Neighbor, PruneStats, error) {
	var stats PruneStats
	if l <= 0 || len(items) == 0 {
		return nil, stats, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	// Order candidates by the cheap lower bound so likely-close ones are
	// evaluated first, which tightens the pruning threshold early.
	type cand struct {
		it Item
		lb int
	}
	cs := make([]cand, len(items))
	for i, it := range items {
		cs[i] = cand{it, ItemLowerBound(query, it)}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].lb != cs[j].lb {
			return cs[i].lb < cs[j].lb
		}
		return cs[i].it.Node < cs[j].it.Node
	})

	var results []Neighbor
	kth := func() int {
		if len(results) < l {
			return -1 // no threshold yet
		}
		return results[len(results)-1].Dist
	}
	insert := func(n Neighbor) {
		results = append(results, n)
		sortNeighborsCanonical(results)
		if len(results) > l {
			results = results[:l]
		}
	}
	for i, c := range cs {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		if t := kth(); t >= 0 && c.lb > t {
			stats.PrunedByBound++
			continue
		}
		stats.FullEvaluations++
		if calls != nil {
			calls.Add(1)
		}
		d := ItemDistance(query, c.it)
		if t := kth(); t < 0 || d < t || (d == t && len(results) < l) {
			insert(Neighbor{Node: c.it.Node, Dist: d})
		}
	}
	return results, stats, nil
}

// ParallelForCtx runs fn(i) for i in [0, n) across workers (<= 0 means
// GOMAXPROCS), stopping early when ctx is canceled; it returns
// ctx.Err() in that case. Slots already handed to workers still
// complete, so fn must stay safe to run after cancellation.
func ParallelForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = BatchOptions{Workers: workers}.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if i%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
