package ned

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ned/internal/graph"
	"ned/internal/ted"
	"ned/internal/tree"
	"ned/internal/vptree"
)

// This file defines the unified index layer behind the public Corpus
// query engine: one Index interface that the VP-tree, BK-tree, parallel
// linear scan, and pruned linear scan all implement, so query-serving
// code is written once against the interface and backends stay
// interchangeable.
//
// Every backend threads a distance budget into the TED* computation —
// the current kth-best for the scans, tau for the VP-tree, the ring
// radius for the BK-tree — so hopeless candidates are abandoned
// mid-computation (see ted.Computer.DistanceAtMost). Budgets never
// change results: an evaluation only aborts when the exact distance
// provably exceeds every threshold that could admit the candidate.

// Item is what an index backend stores and queries: a node plus the
// signature trees its distance needs — the single k-adjacent tree for
// undirected NED (Equation 1), or the outgoing and incoming trees for
// the directed variant (Equation 2) — and, once the owner has compiled
// them (ProfileItem), the precomputed Profiles the filter–verify
// cascade evaluates candidates through. Profiles are optional: items
// without them take the tree-walking paths with identical results.
type Item struct {
	Node graph.NodeID
	K    int
	Out  *tree.Tree // the k-adjacent tree (outgoing tree when directed)
	In   *tree.Tree // incoming k-adjacent tree; nil for undirected NED

	// OutP/InP are the precompiled cascade profiles of Out/In. All
	// profiles of one index must come from one tree.Interner (the
	// corpus dictionary, shared across shards and epoch clones).
	OutP *tree.Profile
	InP  *tree.Profile
}

// Item converts a signature into its index representation.
func (s Signature) Item() Item { return Item{Node: s.Node, K: s.K, Out: s.Tree} }

// tedComputers pools TED* computation engines so each worker goroutine
// reuses one set of scratch buffers across candidates.
var tedComputers = sync.Pool{New: func() any { return ted.NewComputer() }}

// acquireComputers checks out one Computer per worker; the caller must
// releaseComputers them when the parallel loop finishes.
func acquireComputers(n int) []*ted.Computer {
	if n < 1 {
		n = 1
	}
	cs := make([]*ted.Computer, n)
	for i := range cs {
		cs[i] = tedComputers.Get().(*ted.Computer)
	}
	return cs
}

func releaseComputers(cs []*ted.Computer) {
	for _, c := range cs {
		tedComputers.Put(c)
	}
}

// ItemDistance is the NED distance between two items: TED* over the
// out-trees, plus TED* over the in-trees when both items carry one.
func ItemDistance(a, b Item) int {
	c := tedComputers.Get().(*ted.Computer)
	d, _ := itemDistanceAtMost(c, a, b, ted.Unbounded)
	tedComputers.Put(c)
	return d
}

// itemDistanceAtMost is the budgeted NED between two items on a caller
// supplied Computer. The contract mirrors ted.Computer.DistanceAtMost:
// OutcomeExact means d is the exact ItemDistance; any other outcome
// means d > budget and the true distance exceeds the budget too. For
// directed items the in-tree comparison runs under whatever budget the
// out-tree comparison left over.
func itemDistanceAtMost(c *ted.Computer, a, b Item, budget int) (int, ted.Outcome) {
	d, out := c.DistanceAtMost(a.Out, b.Out, budget)
	if out != ted.OutcomeExact {
		return d, out
	}
	if a.In != nil && b.In != nil {
		rem := ted.Unbounded
		if budget != ted.Unbounded {
			rem = budget - d
		}
		d2, out2 := c.DistanceAtMost(a.In, b.In, rem)
		if out2 == ted.OutcomePruned {
			// The out-tree comparison already did matching work, so the
			// pair as a whole was abandoned mid-computation.
			out2 = ted.OutcomeAborted
		}
		return d + d2, out2
	}
	return d, ted.OutcomeExact
}

// ItemLowerBound is the padding lower bound on ItemDistance — cheap and
// never exceeding the true distance, so valid for pruning.
func ItemLowerBound(a, b Item) int {
	lb := ted.LowerBound(a.Out, b.Out)
	if a.In != nil && b.In != nil {
		lb += ted.LowerBound(a.In, b.In)
	}
	return lb
}

// BuildItems materializes index items for the given nodes of g in
// parallel: one BFS tree extraction per node (two when directed).
// Output order matches the input order.
func BuildItems(g *graph.Graph, nodes []graph.NodeID, k int, directed bool, workers int) []Item {
	out := make([]Item, len(nodes))
	parallelFor(len(nodes), BatchOptions{Workers: workers}.workers(), func(i int) {
		out[i] = NewItem(g, nodes[i], k, directed)
	})
	return out
}

// NewItem extracts the index item of one node: its k-adjacent tree, or
// the outgoing and incoming trees when directed.
func NewItem(g *graph.Graph, v graph.NodeID, k int, directed bool) Item {
	if !directed {
		t, _ := tree.KAdjacent(g, v, k)
		return Item{Node: v, K: k, Out: t}
	}
	to, _ := tree.KAdjacentOutgoing(g, v, k)
	ti, _ := tree.KAdjacentIncoming(g, v, k)
	return Item{Node: v, K: k, Out: to, In: ti}
}

// Counters is a snapshot of an index's work profile since the last
// ResetStats.
type Counters struct {
	// DistanceCalls counts TED* evaluations started (completed plus
	// early-exited); cheap lower-bound evaluations are not counted.
	DistanceCalls int64
	// EarlyExits counts budgeted evaluations that bailed mid-computation
	// once the running cost provably crossed the search threshold.
	EarlyExits int64
	// LowerBoundPrunes counts candidates dismissed by a lower bound
	// alone, before any matching work — the sum of the three cascade
	// tiers below.
	LowerBoundPrunes int64

	// SizePrunes / PaddingPrunes / LabelPrunes break LowerBoundPrunes
	// down by the filter tier that dismissed the candidate: the O(1)
	// size gap, the per-level padding bound (including the budgeted
	// computation's own padding seed check), or the per-level
	// label-multiset bound.
	SizePrunes    int64
	PaddingPrunes int64
	LabelPrunes   int64

	// BlockCandidates counts candidate slots swept by the block kernels
	// (the columnar fast path of the linear and pruned scans); the
	// survivor counters below break down how many of them passed each
	// successive tier during their scan — BlockLabelSurvivors is how
	// many reached the verify stage through the block path. Candidates
	// evaluated before a scan has a pruning threshold pass trivially.
	// Zero on the tree backends and on scans that fell back to the
	// scalar cascade.
	BlockCandidates       int64
	BlockSizeSurvivors    int64
	BlockPaddingSurvivors int64
	BlockLabelSurvivors   int64
}

// Add returns the element-wise sum of two counter snapshots. The Corpus
// uses it to carry serving counters across index rebuilds, so counters
// are monotone under mutation instead of resetting with each backend
// generation.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		DistanceCalls:         c.DistanceCalls + o.DistanceCalls,
		EarlyExits:            c.EarlyExits + o.EarlyExits,
		LowerBoundPrunes:      c.LowerBoundPrunes + o.LowerBoundPrunes,
		SizePrunes:            c.SizePrunes + o.SizePrunes,
		PaddingPrunes:         c.PaddingPrunes + o.PaddingPrunes,
		LabelPrunes:           c.LabelPrunes + o.LabelPrunes,
		BlockCandidates:       c.BlockCandidates + o.BlockCandidates,
		BlockSizeSurvivors:    c.BlockSizeSurvivors + o.BlockSizeSurvivors,
		BlockPaddingSurvivors: c.BlockPaddingSurvivors + o.BlockPaddingSurvivors,
		BlockLabelSurvivors:   c.BlockLabelSurvivors + o.BlockLabelSurvivors,
	}
}

// counterSet is the atomic accumulator behind Counters. Backends hold
// it by pointer so an index generation and every epoch cloned or
// rebuilt from it share one accumulator: queries still in flight on a
// retired epoch keep landing their counts in the same place, and the
// owner's Stats stay continuous across epoch publication (see Clone and
// ShareCounters).
type counterSet struct {
	distCalls, earlyExits, lbPrunes    atomic.Int64
	sizePrunes, padPrunes, labelPrunes atomic.Int64

	blockCands                                  atomic.Int64
	blockSizeSurv, blockPadSurv, blockLabelSurv atomic.Int64
}

// counterHost is implemented by every backend so ShareCounters can
// redirect a fresh generation's accumulation into its predecessor's set.
type counterHost interface {
	counterSink() *counterSet
	setCounterSink(*counterSet)
}

// ShareCounters makes dst accumulate its serving counters into src's
// counter set, so an index rebuilt to replace src extends the same
// running totals instead of restarting from zero (with queries possibly
// still in flight on src). Call before dst is published to readers; it
// is not safe once dst serves queries.
func ShareCounters(dst, src Index) {
	d, ok1 := dst.(counterHost)
	s, ok2 := src.(counterHost)
	if ok1 && ok2 {
		d.setCounterSink(s.counterSink())
	}
}

// observe records a completed candidate evaluation. Nil-safe so
// maintenance paths (BK insert descent, the legacy free functions) can
// simply pass no counter set. An OutcomePruned from the budgeted
// computation is the padding seed check firing, so it lands in the
// padding tier.
func (c *counterSet) observe(out ted.Outcome) {
	if c == nil {
		return
	}
	switch out {
	case ted.OutcomePruned:
		c.lbPrunes.Add(1)
		c.padPrunes.Add(1)
	case ted.OutcomeAborted:
		c.distCalls.Add(1)
		c.earlyExits.Add(1)
	default:
		c.distCalls.Add(1)
	}
}

// cascadePrune records a candidate dismissed by the given filter tier.
// Every lower-bound prune has exactly one tier, so LowerBoundPrunes
// always equals SizePrunes + PaddingPrunes + LabelPrunes.
func (c *counterSet) cascadePrune(t cascadeTier) {
	if c == nil {
		return
	}
	c.lbPrunes.Add(1)
	switch t {
	case tierSize:
		c.sizePrunes.Add(1)
	case tierPadding:
		c.padPrunes.Add(1)
	default:
		c.labelPrunes.Add(1)
	}
}

// blockSweep records n candidate slots swept by the block kernels.
func (c *counterSet) blockSweep(n int) {
	if c == nil {
		return
	}
	c.blockCands.Add(int64(n))
}

// blockSurvive records one block-path candidate passing every tier up
// to and including through (a candidate verified with no threshold yet
// passes all three trivially — callers pass tierLabel).
func (c *counterSet) blockSurvive(through cascadeTier) {
	if c == nil {
		return
	}
	c.blockSizeSurv.Add(1)
	if through >= tierPadding {
		c.blockPadSurv.Add(1)
	}
	if through >= tierLabel {
		c.blockLabelSurv.Add(1)
	}
}

// blockSurviveBulk records per-tier survivor counts for a whole block
// filtered at a static threshold (the Range path).
func (c *counterSet) blockSurviveBulk(size, pad, label int64) {
	if c == nil {
		return
	}
	c.blockSizeSurv.Add(size)
	c.blockPadSurv.Add(pad)
	c.blockLabelSurv.Add(label)
}

// cascadePruneBulk records size and padding tier prunes in bulk — the
// block paths dismiss whole bound-sorted tails at once.
func (c *counterSet) cascadePruneBulk(size, pad int64) {
	if c == nil || size+pad == 0 {
		return
	}
	c.lbPrunes.Add(size + pad)
	c.sizePrunes.Add(size)
	c.padPrunes.Add(pad)
}

func (c *counterSet) snapshot() Counters {
	return Counters{
		DistanceCalls:         c.distCalls.Load(),
		EarlyExits:            c.earlyExits.Load(),
		LowerBoundPrunes:      c.lbPrunes.Load(),
		SizePrunes:            c.sizePrunes.Load(),
		PaddingPrunes:         c.padPrunes.Load(),
		LabelPrunes:           c.labelPrunes.Load(),
		BlockCandidates:       c.blockCands.Load(),
		BlockSizeSurvivors:    c.blockSizeSurv.Load(),
		BlockPaddingSurvivors: c.blockPadSurv.Load(),
		BlockLabelSurvivors:   c.blockLabelSurv.Load(),
	}
}

func (c *counterSet) reset() {
	c.distCalls.Store(0)
	c.earlyExits.Store(0)
	c.lbPrunes.Store(0)
	c.sizePrunes.Store(0)
	c.padPrunes.Store(0)
	c.labelPrunes.Store(0)
	c.blockCands.Store(0)
	c.blockSizeSurv.Store(0)
	c.blockPadSurv.Store(0)
	c.blockLabelSurv.Store(0)
}

// Index is the unified query surface of every NED index backend. All
// methods are safe for concurrent use, report typed errors instead of
// panicking, and check the context inside their distance loops so
// expensive queries abort promptly on cancellation.
type Index interface {
	// KNN returns the l nearest indexed items to the query in ascending
	// (distance, node) order. l larger than Len returns everything.
	KNN(ctx context.Context, query Item, l int) ([]Neighbor, error)
	// Range returns every indexed item within distance r of the query in
	// ascending (distance, node) order.
	Range(ctx context.Context, query Item, r int) ([]Neighbor, error)
	// Len reports how many items are indexed.
	Len() int
	// DistanceCalls reports TED* evaluations started since the last
	// ResetStats (cheap lower-bound evaluations are not counted).
	DistanceCalls() int64
	// Counters reports the full work profile: evaluations, budgeted
	// early exits, and lower-bound prunes.
	Counters() Counters
	// ResetStats zeroes all work counters.
	ResetStats()
}

// sortNeighborsCanonical orders query results by (distance, node), the
// deterministic presentation every backend normalizes to.
func sortNeighborsCanonical(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].Node < ns[j].Node
	})
}

// itemLess is the canonical tie-break every backend shares: equal
// distances resolve by node ID, so KNN answers are identical across
// backends down to the node level, not just the distance multiset.
func itemLess(a, b Item) bool { return a.Node < b.Node }

// floatBudget converts a VP-tree float budget to the integer TED* one.
// Flooring is safe: integer distances d <= budget iff d <= floor(budget).
func floatBudget(b float64) int {
	if b >= float64(ted.Unbounded) {
		return ted.Unbounded
	}
	return int(math.Floor(b))
}

// --- VP-tree backend ---

type vpBackend struct {
	t        *vptree.Tree[Item]
	tail     []Item // items inserted after the build, scanned per query
	counters *counterSet
}

// NewVPBackend indexes the items in a vantage-point tree (§13.4): exact
// sub-linear queries via floating-point triangle-inequality pruning.
// Searches hand the metric a budget of radius + tau per node; the
// filter cascade gates every budgeted evaluation — a candidate whose
// precompiled bounds already exceed that budget never starts a TED* —
// and survivors are abandoned mid-TED* once their running cost crosses
// it. Mutations take tombstone + append paths (see dynamic.go).
func NewVPBackend(items []Item) DynamicIndex {
	b := &vpBackend{counters: &counterSet{}}
	b.t = vptree.New(items, b.exactMetric())
	b.installSearchHooks()
	b.counters.reset() // the build's evaluations are not serving work
	return b
}

// exactMetric is the unbudgeted NED metric the VP-tree builds with.
func (b *vpBackend) exactMetric() vptree.Metric[Item] {
	return func(x, y Item) float64 {
		c := tedComputers.Get().(*ted.Computer)
		d, _ := verifyDistanceAtMost(c, x, y, ted.Unbounded, b.counters)
		tedComputers.Put(c)
		return float64(d)
	}
}

// installSearchHooks arms the serving-side hooks every VP backend
// carries regardless of how its tree came to be (fresh build or
// restored dump): the budgeted cascade metric and the canonical
// tie-break.
func (b *vpBackend) installSearchHooks() {
	b.t.SetBudgetedMetric(func(x, y Item, budget float64) (float64, bool) {
		c := tedComputers.Get().(*ted.Computer)
		d, out := cascadeDistanceAtMost(c, x, y, floatBudget(budget), b.counters)
		tedComputers.Put(c)
		return float64(d), out == ted.OutcomeExact
	})
	b.t.SetTieBreak(itemLess)
}

// ExportVPBackend dumps a VP backend's built index structure: the
// preorder tree dump plus the post-build append tail. It returns
// ok == false when ix is not a VP backend or when the tree carries
// tombstones — a tombstoned vantage point's item is no longer part of
// the corpus, so a persisted dump would dangle; such shards simply
// rebuild on first query instead.
func ExportVPBackend(ix Index) (nodes []vptree.ExportNode[Item], tail []Item, ok bool) {
	b, isVP := ix.(*vpBackend)
	if !isVP || b.t.Deleted() > 0 {
		return nil, nil, false
	}
	return b.t.Export(), b.tail, true
}

// NewVPBackendFromExport restores a VP backend from an ExportVPBackend
// dump without a single metric evaluation — the dump's radii and
// topology were computed by the original O(n log n) build and are
// adopted as-is. The restored backend serves, mutates, and counts
// exactly like the original.
func NewVPBackendFromExport(nodes []vptree.ExportNode[Item], tail []Item) (DynamicIndex, error) {
	b := &vpBackend{counters: &counterSet{}, tail: tail}
	var err error
	if b.t, err = vptree.NewFromExport(nodes, b.exactMetric()); err != nil {
		return nil, err
	}
	b.installSearchHooks()
	return b, nil
}

func (b *vpBackend) KNN(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	res, err := b.t.KNNContext(ctx, query, l)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, r := range res {
		out[i] = Neighbor{Node: r.Item.Node, Dist: int(r.Dist)}
	}
	sortNeighborsCanonical(out)
	if len(b.tail) > 0 {
		if out, err = b.mergeTailKNN(ctx, query, l, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (b *vpBackend) Range(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	res, err := b.t.RangeContext(ctx, query, float64(r))
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, rr := range res {
		out[i] = Neighbor{Node: rr.Item.Node, Dist: int(rr.Dist)}
	}
	if len(b.tail) > 0 {
		if out, err = b.rangeTail(ctx, query, r, out); err != nil {
			return nil, err
		}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *vpBackend) Len() int             { return b.t.Len() + len(b.tail) }
func (b *vpBackend) DistanceCalls() int64 { return b.counters.distCalls.Load() }
func (b *vpBackend) Counters() Counters   { return b.counters.snapshot() }
func (b *vpBackend) ResetStats() {
	b.counters.reset()
	b.t.ResetStats()
}

func (b *vpBackend) counterSink() *counterSet     { return b.counters }
func (b *vpBackend) setCounterSink(c *counterSet) { b.counters = c }

// Clone returns a structurally private copy: the tree nodes (tombstone
// flags included) and the append tail are duplicated, the item payloads
// and the counter accumulator are shared. The tree keeps the original's
// metric closures — they only touch the shared counter set, and VP
// mutations (tail append, tombstoning) never evaluate the metric.
func (b *vpBackend) Clone() DynamicIndex {
	return &vpBackend{
		t:        b.t.Clone(),
		tail:     append([]Item(nil), b.tail...),
		counters: b.counters,
	}
}

// --- BK-tree backend ---

type bkBackend struct {
	t        *vptree.BKTree[Item]
	counters *counterSet

	// building mutes the serving counters while Insert descends the tree
	// (maintenance evaluations are not query work). Inserts run only on
	// unpublished clones (under the owner's shard lock), so no query ever
	// observes the flag mid-flight — published epochs are immutable.
	building atomic.Bool
}

// metric returns the unbudgeted metric hook for b's tree: exact NED on
// a pooled Computer, counted as serving work unless b is mid-insert.
func (b *bkBackend) metric() func(x, y Item) int {
	return func(x, y Item) int {
		cs := b.counters
		if b.building.Load() {
			cs = nil
		}
		c := tedComputers.Get().(*ted.Computer)
		d, _ := verifyDistanceAtMost(c, x, y, ted.Unbounded, cs)
		tedComputers.Put(c)
		return d
	}
}

// budgetedMetric returns the budget-aware metric hook for b's tree:
// the filter cascade gates the budgeted TED* per candidate.
func (b *bkBackend) budgetedMetric() func(x, y Item, budget int) (int, bool) {
	return func(x, y Item, budget int) (int, bool) {
		c := tedComputers.Get().(*ted.Computer)
		d, out := cascadeDistanceAtMost(c, x, y, budget, b.counters)
		tedComputers.Put(c)
		return d, out == ted.OutcomeExact
	}
}

// NewBKBackend indexes the items in a Burkhard–Keller tree: integer
// distance buckets, often faster than the VP-tree on the small integer
// range NED produces. Searches hand the metric a budget of
// maxChildKey + ringRadius per node, beyond which the exact distance is
// provably irrelevant. Mutations insert natively and remove via
// tombstones (see dynamic.go).
func NewBKBackend(items []Item) DynamicIndex {
	b := &bkBackend{counters: &counterSet{}}
	b.t = vptree.NewBK(items, b.metric())
	b.t.SetBudgetedMetric(b.budgetedMetric())
	b.t.SetTieBreak(itemLess)
	b.counters.reset() // the build's evaluations are not serving work
	return b
}

func (b *bkBackend) KNN(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	res, err := b.t.KNNContext(ctx, query, l)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, r := range res {
		out[i] = Neighbor{Node: r.Item.Node, Dist: r.Dist}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *bkBackend) Range(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	res, err := b.t.RangeContext(ctx, query, r)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(res))
	for i, rr := range res {
		out[i] = Neighbor{Node: rr.Item.Node, Dist: rr.Dist}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *bkBackend) Len() int             { return b.t.Len() }
func (b *bkBackend) DistanceCalls() int64 { return b.counters.distCalls.Load() }
func (b *bkBackend) Counters() Counters   { return b.counters.snapshot() }
func (b *bkBackend) ResetStats() {
	b.counters.reset()
	b.t.ResetStats()
}

func (b *bkBackend) counterSink() *counterSet     { return b.counters }
func (b *bkBackend) setCounterSink(c *counterSet) { b.counters = c }

// Clone returns a structurally private copy sharing item payloads and
// the counter accumulator. BK insertion evaluates the metric during its
// descent, and the hooks reference the owning wrapper (for the
// maintenance-muting flag), so the clone installs hooks pointing at
// itself.
func (b *bkBackend) Clone() DynamicIndex {
	nb := &bkBackend{counters: b.counters}
	nb.t = b.t.Clone(nb.metric(), nb.budgetedMetric())
	return nb
}

// --- parallel linear-scan backend ---

type linearBackend struct {
	items    []Item
	workers  int
	counters *counterSet

	// block is the columnar form of the item profiles (slot i describes
	// items[i]); nil when any item is unprofiled, in which case every
	// query takes the scalar per-candidate cascade. Recompiled on
	// mutation, shared by clones.
	block *profileBlock
}

// NewLinearBackend evaluates every indexed item per query across the
// given worker count (<= 0 means GOMAXPROCS). The exact baseline every
// metric index is measured against; still the fastest option for small
// corpora where tree traversal overhead dominates. KNN precompiles the
// cascade bound of every candidate — one block-kernel sweep over the
// columnar profile arenas when all items are profiled — evaluates
// best-first by it, and shares the running kth-best distance across
// workers, so late candidates are dismissed tier by tier or abandoned
// mid-TED* once they provably cannot rank. Mutations edit the item
// slice in place (see dynamic.go).
func NewLinearBackend(items []Item, workers int) DynamicIndex {
	return &linearBackend{
		items:    items,
		workers:  BatchOptions{Workers: workers}.workers(),
		counters: &counterSet{},
		block:    compileBlock(items),
	}
}

// topLCollector accumulates the l canonically-smallest neighbors across
// concurrent workers and publishes the current kth-best distance as a
// lock-free threshold for budgeting.
type topLCollector struct {
	mu      sync.Mutex
	l       int
	results []Neighbor
	thr     atomic.Int64
}

func newTopLCollector(l int) *topLCollector {
	c := &topLCollector{l: l}
	c.thr.Store(int64(ted.Unbounded))
	return c
}

// threshold returns the current kth-best distance, or ted.Unbounded
// until l results exist. Any candidate with distance strictly above it
// cannot enter the final result.
func (c *topLCollector) threshold() int { return int(c.thr.Load()) }

func (c *topLCollector) offer(n Neighbor) {
	c.mu.Lock()
	i := len(c.results)
	c.results = append(c.results, n)
	for ; i > 0; i-- {
		p := c.results[i-1]
		if p.Dist < n.Dist || (p.Dist == n.Dist && p.Node < n.Node) {
			break
		}
		c.results[i] = p
	}
	c.results[i] = n
	if len(c.results) > c.l {
		c.results = c.results[:c.l]
	}
	if len(c.results) == c.l {
		c.thr.Store(int64(c.results[c.l-1].Dist))
	}
	c.mu.Unlock()
}

func (b *linearBackend) KNN(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	if l <= 0 || len(b.items) == 0 {
		return nil, ctx.Err()
	}
	// Precompile every candidate's cheap cascade bounds — one block-
	// kernel sweep over the columnar arenas when the backend has a
	// block, the scalar per-item path otherwise — and evaluate
	// best-first: workers pull candidates in ascending-bound order, so
	// the shared kth-best threshold tightens as early as possible and
	// the precompiled tiers dismiss most of the tail — the label tier
	// runs lazily, only for candidates size and padding admit.
	order, sizeB, padB, blocked, err := cascadeOrder(ctx, query, b.items, b.block, b.workers, b.counters)
	if err != nil {
		return nil, err
	}
	col := newTopLCollector(l)
	comps := acquireComputers(b.workers)
	defer releaseComputers(comps)
	err = ParallelForCtxWorkers(ctx, len(b.items), b.workers, func(w, i int) {
		j := order[i]
		it := b.items[j]
		t := col.threshold()
		if t != ted.Unbounded {
			if int(sizeB[j]) > t {
				b.counters.cascadePrune(tierSize)
				return
			}
			if int(padB[j]) > t {
				if blocked {
					b.counters.blockSurvive(tierSize)
				}
				b.counters.cascadePrune(tierPadding)
				return
			}
			var pruned bool
			if blocked {
				pruned = b.block.labelTier(query, int(j), t)
			} else {
				_, pruned = labelTierPrunes(query, it, t)
			}
			if pruned {
				if blocked {
					b.counters.blockSurvive(tierPadding)
				}
				b.counters.cascadePrune(tierLabel)
				return
			}
		}
		if blocked {
			b.counters.blockSurvive(tierLabel)
		}
		d, out := verifyDistanceAtMost(comps[w], query, it, t, b.counters)
		if out != ted.OutcomeExact {
			return
		}
		if d <= col.threshold() {
			col.offer(Neighbor{Node: it.Node, Dist: d})
		}
	})
	if err != nil {
		return nil, err
	}
	return col.results, nil
}

func (b *linearBackend) Range(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	if survivors, ok := rangeBlockSurvivors(query, b.items, b.block, r, b.counters); ok {
		// The block kernels already ran every filter tier at threshold r;
		// only the survivors need the verify stage.
		var mu sync.Mutex
		var out []Neighbor
		comps := acquireComputers(b.workers)
		defer releaseComputers(comps)
		err := ParallelForCtxWorkers(ctx, len(survivors), b.workers, func(w, i int) {
			it := b.items[survivors[i]]
			d, o := verifyDistanceAtMost(comps[w], query, it, r, b.counters)
			if o == ted.OutcomeExact && d <= r {
				mu.Lock()
				out = append(out, Neighbor{Node: it.Node, Dist: d})
				mu.Unlock()
			}
		})
		if err != nil {
			return nil, err
		}
		sortNeighborsCanonical(out)
		return out, nil
	}
	var mu sync.Mutex
	var out []Neighbor
	comps := acquireComputers(b.workers)
	defer releaseComputers(comps)
	err := ParallelForCtxWorkers(ctx, len(b.items), b.workers, func(w, i int) {
		it := b.items[i]
		d, o := cascadeDistanceAtMost(comps[w], query, it, r, b.counters)
		if o == ted.OutcomeExact && d <= r {
			mu.Lock()
			out = append(out, Neighbor{Node: it.Node, Dist: d})
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *linearBackend) Len() int             { return len(b.items) }
func (b *linearBackend) DistanceCalls() int64 { return b.counters.distCalls.Load() }
func (b *linearBackend) Counters() Counters   { return b.counters.snapshot() }
func (b *linearBackend) ResetStats()          { b.counters.reset() }

func (b *linearBackend) counterSink() *counterSet     { return b.counters }
func (b *linearBackend) setCounterSink(c *counterSet) { b.counters = c }

// Clone returns a structurally private copy: the item slice is
// duplicated (in-place mutation on the clone cannot alias the
// original's backing array), the counter accumulator and the immutable
// profile block shared (a mutation on the clone recompiles its own).
func (b *linearBackend) Clone() DynamicIndex {
	return &linearBackend{items: append([]Item(nil), b.items...), workers: b.workers, counters: b.counters, block: b.block}
}

// --- pruned linear-scan backend ---

type prunedBackend struct {
	items    []Item
	counters *counterSet

	// block is the columnar form of the item profiles; nil means the
	// scalar cascade (see linearBackend.block).
	block *profileBlock
}

// NewPrunedLinearBackend scans sequentially but skips full TED*
// evaluations for items the filter cascade proves out of range (the
// §10 pruning strategy PrunedTopL pioneered, now over precompiled
// size / padding / label-multiset bounds evaluated best-first through
// the block kernels when all items are profiled), and abandons the
// survivors mid-computation once their running cost crosses the
// threshold. Mutations edit the item slice in place (see dynamic.go).
func NewPrunedLinearBackend(items []Item) DynamicIndex {
	return &prunedBackend{items: items, counters: &counterSet{}, block: compileBlock(items)}
}

func (b *prunedBackend) KNN(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	res, _, err := prunedKNN(ctx, query, b.items, b.block, l, b.counters)
	return res, err
}

func (b *prunedBackend) Range(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	return scanRange(ctx, query, b.items, b.block, r, b.counters)
}

// scanRange is the cascade-pruned range scan shared by the pruned
// backend and the planner's scan-over-epoch-items path (which passes a
// nil block and takes the scalar cascade). Results are exact and
// canonically sorted.
func scanRange(ctx context.Context, query Item, items []Item, blk *profileBlock, r int, counters *counterSet) ([]Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	comp := tedComputers.Get().(*ted.Computer)
	defer tedComputers.Put(comp)
	var out []Neighbor
	if survivors, ok := rangeBlockSurvivors(query, items, blk, r, counters); ok {
		for i, j := range survivors {
			if i%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			it := items[j]
			d, o := verifyDistanceAtMost(comp, query, it, r, counters)
			if o == ted.OutcomeExact && d <= r {
				out = append(out, Neighbor{Node: it.Node, Dist: d})
			}
		}
		sortNeighborsCanonical(out)
		return out, nil
	}
	for i, it := range items {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		d, o := cascadeDistanceAtMost(comp, query, it, r, counters)
		if o == ted.OutcomeExact && d <= r {
			out = append(out, Neighbor{Node: it.Node, Dist: d})
		}
	}
	sortNeighborsCanonical(out)
	return out, nil
}

func (b *prunedBackend) Len() int             { return len(b.items) }
func (b *prunedBackend) DistanceCalls() int64 { return b.counters.distCalls.Load() }
func (b *prunedBackend) Counters() Counters   { return b.counters.snapshot() }
func (b *prunedBackend) ResetStats()          { b.counters.reset() }

func (b *prunedBackend) counterSink() *counterSet     { return b.counters }
func (b *prunedBackend) setCounterSink(c *counterSet) { b.counters = c }

// Clone returns a structurally private copy: duplicated item slice,
// shared counter accumulator and (immutable) profile block.
func (b *prunedBackend) Clone() DynamicIndex {
	return &prunedBackend{items: append([]Item(nil), b.items...), counters: b.counters, block: b.block}
}

// cancelCheckStride is how many candidates a sequential scan processes
// between context checks.
const cancelCheckStride = 16

// prunedKNN is the lower-bound-pruned top-l scan shared by the pruned
// backend and the legacy PrunedTopL free function. The returned ranking
// is exact with respect to the full TED* distance: every reported
// neighbor carries its true distance and the set is the canonical
// (distance, node) top-l, identical to a full scan's.
func prunedKNN(ctx context.Context, query Item, items []Item, blk *profileBlock, l int, counters *counterSet) ([]Neighbor, PruneStats, error) {
	var stats PruneStats
	if l <= 0 || len(items) == 0 {
		return nil, stats, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	// Precompile every candidate's cheap cascade bounds — the block
	// kernels when blk covers the items — and scan best-first:
	// likely-close candidates are verified first, which tightens the
	// pruning threshold early, and the precompiled tiers then dismiss
	// the tail without touching the trees — the label tier runs lazily,
	// only for candidates size and padding admit.
	order, sizeB, padB, blocked, err := cascadeOrder(ctx, query, items, blk, 1, counters)
	if err != nil {
		return nil, stats, err
	}

	comp := tedComputers.Get().(*ted.Computer)
	defer tedComputers.Put(comp)

	var results []Neighbor
	kth := func() int {
		if len(results) < l {
			return -1 // no threshold yet
		}
		return results[len(results)-1].Dist
	}
	insert := func(n Neighbor) {
		results = append(results, n)
		sortNeighborsCanonical(results)
		if len(results) > l {
			results = results[:l]
		}
	}
	for i, j := range order {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		it := items[j]
		t := kth()
		if t >= 0 {
			if int(padB[j]) > t {
				// The order is ascending by padding bound and the threshold
				// only tightens, so every remaining candidate is dismissed by
				// the same tiers right now — cut the whole tail in one pass,
				// attributing each slot to size or padding via its bounds.
				var bySize int64
				for _, jj := range order[i:] {
					if int(sizeB[jj]) > t {
						bySize++
					}
				}
				rest := int64(len(order) - i)
				counters.cascadePruneBulk(bySize, rest-bySize)
				if blocked {
					counters.blockSurviveBulk(rest-bySize, 0, 0)
				}
				stats.PrunedByBound += int(rest)
				break
			}
			var pruned bool
			if blocked {
				pruned = blk.labelTier(query, int(j), t)
			} else {
				_, pruned = labelTierPrunes(query, it, t)
			}
			if pruned {
				if blocked {
					counters.blockSurvive(tierPadding)
				}
				stats.PrunedByBound++
				counters.cascadePrune(tierLabel)
				continue
			}
		}
		if blocked {
			counters.blockSurvive(tierLabel)
		}
		budget := ted.Unbounded
		if t >= 0 {
			budget = t
		}
		d, out := verifyDistanceAtMost(comp, query, it, budget, counters)
		switch out {
		case ted.OutcomeExact:
			stats.FullEvaluations++
			if t < 0 || d <= t {
				insert(Neighbor{Node: it.Node, Dist: d})
			}
		case ted.OutcomeAborted:
			stats.EarlyExits++
		default:
			stats.PrunedByBound++
		}
	}
	return results, stats, nil
}

// ParallelForCtx runs fn(i) for i in [0, n) across workers (<= 0 means
// GOMAXPROCS), stopping early when ctx is canceled; it returns
// ctx.Err() in that case. Slots already handed to workers still
// complete, so fn must stay safe to run after cancellation.
func ParallelForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return ParallelForCtxWorkers(ctx, n, workers, func(_, i int) { fn(i) })
}

// ParallelForCtxWorkers is ParallelForCtx with the worker index exposed,
// so callers can give each goroutine its own scratch state (for example
// a pooled ted.Computer). Worker indexes are dense in [0, workers).
func ParallelForCtxWorkers(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = BatchOptions{Workers: workers}.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if i%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(0, i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range next {
				fn(w, i)
			}
		}(w)
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
