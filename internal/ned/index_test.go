package ned

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ned/internal/graph"
)

func randomTestGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	added := 0
	for added < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		added++
	}
	return b.Build()
}

func allTestBackends(items []Item) map[string]Index {
	return map[string]Index{
		"vp":     NewVPBackend(items),
		"bk":     NewBKBackend(items),
		"linear": NewLinearBackend(items, 2),
		"pruned": NewPrunedLinearBackend(items),
	}
}

// exhaustiveKNN is the trusted oracle: every distance evaluated in full
// with the plain (unbudgeted) ItemDistance, canonically sorted.
func exhaustiveKNN(query Item, items []Item, l int) []Neighbor {
	all := make([]Neighbor, len(items))
	for i, it := range items {
		all[i] = Neighbor{Node: it.Node, Dist: ItemDistance(query, it)}
	}
	sortNeighborsCanonical(all)
	if l > len(all) {
		l = len(all)
	}
	return all[:l]
}

// TestBackendsAgree checks the unified Index contract directly: every
// backend returns results identical — distances AND nodes, not just the
// distance multiset — to the exhaustive unbudgeted scan, on both KNN
// and Range. This is what makes the budget pipeline safe: thresholds
// may only skip work, never change answers.
func TestBackendsAgree(t *testing.T) {
	ctx := context.Background()
	for trial := int64(0); trial < 3; trial++ {
		g := randomTestGraph(70, 150, 40+trial)
		var nodes []graph.NodeID
		for v := 0; v < g.NumNodes(); v++ {
			nodes = append(nodes, graph.NodeID(v))
		}
		items := BuildItems(g, nodes, 2, false, 2)
		backends := allTestBackends(items)
		query := NewItem(randomTestGraph(50, 100, 90+trial), 0, 2, false)

		ref := exhaustiveKNN(query, items, 9)
		var refRange []Neighbor
		for _, it := range items {
			if d := ItemDistance(query, it); d <= 3 {
				refRange = append(refRange, Neighbor{Node: it.Node, Dist: d})
			}
		}
		sortNeighborsCanonical(refRange)
		for name, ix := range backends {
			if ix.Len() != len(items) {
				t.Errorf("%s: Len = %d, want %d", name, ix.Len(), len(items))
			}
			got, err := ix.KNN(ctx, query, 9)
			if err != nil {
				t.Fatalf("%s KNN: %v", name, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(ref) {
				t.Errorf("trial %d %s: KNN %v, exhaustive %v", trial, name, got, ref)
			}
			gotRange, err := ix.Range(ctx, query, 3)
			if err != nil {
				t.Fatalf("%s Range: %v", name, err)
			}
			if fmt.Sprint(gotRange) != fmt.Sprint(refRange) {
				t.Errorf("trial %d %s: Range %v, exhaustive %v", trial, name, gotRange, refRange)
			}
			if ix.DistanceCalls() == 0 {
				t.Errorf("%s: DistanceCalls stayed 0 after queries", name)
			}
			c := ix.Counters()
			if c.DistanceCalls != ix.DistanceCalls() {
				t.Errorf("%s: Counters.DistanceCalls %d != DistanceCalls %d", name, c.DistanceCalls, ix.DistanceCalls())
			}
			ix.ResetStats()
			if ix.DistanceCalls() != 0 || ix.Counters() != (Counters{}) {
				t.Errorf("%s: ResetStats did not zero the counters", name)
			}
		}
	}
}

func TestBackendsPreCanceled(t *testing.T) {
	g := randomTestGraph(30, 60, 8)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	items := BuildItems(g, nodes, 2, false, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	query := items[0]
	for name, ix := range allTestBackends(items) {
		if _, err := ix.KNN(ctx, query, 3); !errors.Is(err, context.Canceled) {
			t.Errorf("%s KNN: got %v, want context.Canceled", name, err)
		}
		if _, err := ix.Range(ctx, query, 2); !errors.Is(err, context.Canceled) {
			t.Errorf("%s Range: got %v, want context.Canceled", name, err)
		}
	}
}

// TestParallelForCtxCancelMidFlight proves deterministically that an
// in-flight parallel loop aborts on cancellation: workers block until
// the context is canceled, so the loop can only finish early.
func TestParallelForCtxCancelMidFlight(t *testing.T) {
	const n = 1 << 20
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var startOnce sync.Once
	started := make(chan struct{})
	var ran atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- ParallelForCtx(ctx, n, 2, func(i int) {
			startOnce.Do(func() { close(started) })
			<-ctx.Done() // block until the main goroutine cancels
			ran.Add(1)
		})
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Errorf("loop ran all %d iterations despite cancellation", got)
	}
}

func TestDirectedItemsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(25, true)
	for i := 0; i < 60; i++ {
		u, v := graph.NodeID(rng.Intn(25)), graph.NodeID(rng.Intn(25))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	a := NewItem(g, 1, 2, true)
	c := NewItem(g, 2, 2, true)
	if got, want := ItemDistance(a, c), DistanceDirected(g, 1, g, 2, 2); got != want {
		t.Errorf("directed ItemDistance = %d, want DistanceDirected = %d", got, want)
	}
	if lb := ItemLowerBound(a, c); lb > ItemDistance(a, c) {
		t.Errorf("lower bound %d exceeds distance %d", lb, ItemDistance(a, c))
	}
}

func TestPrunedBackendMatchesPrunedTopL(t *testing.T) {
	g := randomTestGraph(50, 110, 11)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	sigs := Signatures(g, nodes, 2)
	query := NewSignature(randomTestGraph(30, 60, 12), 0, 2)
	want, _ := PrunedTopL(query, sigs, 5)
	ix := NewPrunedLinearBackend(ItemsOf(sigs))
	got, err := ix.KNN(context.Background(), query.Item(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("pruned backend %v != PrunedTopL %v", got, want)
	}
}
