package ned

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ned/internal/graph"
)

func randomTestGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	added := 0
	for added < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		added++
	}
	return b.Build()
}

func allTestBackends(items []Item) map[string]Index {
	return map[string]Index{
		"vp":     NewVPBackend(items),
		"bk":     NewBKBackend(items),
		"linear": NewLinearBackend(items, 2),
		"pruned": NewPrunedLinearBackend(items),
	}
}

// TestBackendsAgree checks the unified Index contract directly: every
// backend returns the same KNN distance multiset and the same Range
// result set on random graphs.
func TestBackendsAgree(t *testing.T) {
	ctx := context.Background()
	for trial := int64(0); trial < 3; trial++ {
		g := randomTestGraph(70, 150, 40+trial)
		var nodes []graph.NodeID
		for v := 0; v < g.NumNodes(); v++ {
			nodes = append(nodes, graph.NodeID(v))
		}
		items := BuildItems(g, nodes, 2, false, 2)
		backends := allTestBackends(items)
		query := NewItem(randomTestGraph(50, 100, 90+trial), 0, 2, false)

		ref, err := backends["linear"].KNN(ctx, query, 9)
		if err != nil {
			t.Fatal(err)
		}
		refRange, err := backends["linear"].Range(ctx, query, 3)
		if err != nil {
			t.Fatal(err)
		}
		for name, ix := range backends {
			if ix.Len() != len(items) {
				t.Errorf("%s: Len = %d, want %d", name, ix.Len(), len(items))
			}
			got, err := ix.KNN(ctx, query, 9)
			if err != nil {
				t.Fatalf("%s KNN: %v", name, err)
			}
			for i := range got {
				if got[i].Dist != ref[i].Dist {
					t.Errorf("trial %d %s: KNN dists %v, linear %v", trial, name, got, ref)
					break
				}
			}
			gotRange, err := ix.Range(ctx, query, 3)
			if err != nil {
				t.Fatalf("%s Range: %v", name, err)
			}
			if fmt.Sprint(gotRange) != fmt.Sprint(refRange) {
				t.Errorf("trial %d %s: Range %v, linear %v", trial, name, gotRange, refRange)
			}
			if ix.DistanceCalls() == 0 {
				t.Errorf("%s: DistanceCalls stayed 0 after queries", name)
			}
			ix.ResetStats()
			if ix.DistanceCalls() != 0 {
				t.Errorf("%s: ResetStats did not zero the counter", name)
			}
		}
	}
}

func TestBackendsPreCanceled(t *testing.T) {
	g := randomTestGraph(30, 60, 8)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	items := BuildItems(g, nodes, 2, false, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	query := items[0]
	for name, ix := range allTestBackends(items) {
		if _, err := ix.KNN(ctx, query, 3); !errors.Is(err, context.Canceled) {
			t.Errorf("%s KNN: got %v, want context.Canceled", name, err)
		}
		if _, err := ix.Range(ctx, query, 2); !errors.Is(err, context.Canceled) {
			t.Errorf("%s Range: got %v, want context.Canceled", name, err)
		}
	}
}

// TestParallelForCtxCancelMidFlight proves deterministically that an
// in-flight parallel loop aborts on cancellation: workers block until
// the context is canceled, so the loop can only finish early.
func TestParallelForCtxCancelMidFlight(t *testing.T) {
	const n = 1 << 20
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var startOnce sync.Once
	started := make(chan struct{})
	var ran atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- ParallelForCtx(ctx, n, 2, func(i int) {
			startOnce.Do(func() { close(started) })
			<-ctx.Done() // block until the main goroutine cancels
			ran.Add(1)
		})
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Errorf("loop ran all %d iterations despite cancellation", got)
	}
}

func TestDirectedItemsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(25, true)
	for i := 0; i < 60; i++ {
		u, v := graph.NodeID(rng.Intn(25)), graph.NodeID(rng.Intn(25))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	a := NewItem(g, 1, 2, true)
	c := NewItem(g, 2, 2, true)
	if got, want := ItemDistance(a, c), DistanceDirected(g, 1, g, 2, 2); got != want {
		t.Errorf("directed ItemDistance = %d, want DistanceDirected = %d", got, want)
	}
	if lb := ItemLowerBound(a, c); lb > ItemDistance(a, c) {
		t.Errorf("lower bound %d exceeds distance %d", lb, ItemDistance(a, c))
	}
}

func TestPrunedBackendMatchesPrunedTopL(t *testing.T) {
	g := randomTestGraph(50, 110, 11)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	sigs := Signatures(g, nodes, 2)
	query := NewSignature(randomTestGraph(30, 60, 12), 0, 2)
	want, _ := PrunedTopL(query, sigs, 5)
	ix := NewPrunedLinearBackend(ItemsOf(sigs))
	got, err := ix.KNN(context.Background(), query.Item(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("pruned backend %v != PrunedTopL %v", got, want)
	}
}
