package ned

import (
	"context"
	"sort"
)

// Query planning. A Plan is the explicit, inspectable form of "how this
// query will execute over the shards": which shards participate, in
// what mode the fan-out runs, and — per shard — whether the query goes
// through the shard's index or through a direct cascade-pruned scan of
// its items. The Corpus builds one from live statistics (shard sizes,
// staleness, observed cascade prune rates) per query or per batch; the
// planner exists because the fixed all-shards fan-out that is optimal
// for large balanced corpora costs small or skewed ones real latency
// (BENCH_PARALLEL_CHURN showed up to +66% on the reader side), and the
// statistics to do better are already being collected.
//
// Every mode answers node-identically to the naive all-shards fan-out:
//   - PlanParallel IS that fan-out;
//   - PlanSequential visits shards one by one, largest first, and once
//     l results are held it narrows each remaining shard to a range
//     query at the current l-th distance t. Any candidate that enters
//     the global top-l has distance <= t, and Range includes distance
//     == t, so no winner is missed and the canonical merge reproduces
//     the parallel answer exactly;
//   - PlanSingle is the one-live-shard (or empty) degenerate case;
//   - a Scan shard answers through the same prunedKNN / scanRange
//     kernels the pruned backend runs, which are exact.

// PlanMode is the fan-out strategy a plan executes.
type PlanMode int

const (
	// PlanParallel queries every live shard concurrently on the
	// executor and merges canonically — the classic fan-out.
	PlanParallel PlanMode = iota
	// PlanSequential visits live shards largest-first, carrying the
	// running l-th distance as a range bound into later shards. Cheaper
	// than parallel when the corpus is small or the executor has one
	// worker (fan-out overhead with no concurrency to buy).
	PlanSequential
	// PlanSingle short-circuits to a direct call on the only live
	// shard (or answers empty when none is live).
	PlanSingle
)

func (m PlanMode) String() string {
	switch m {
	case PlanParallel:
		return "parallel"
	case PlanSequential:
		return "sequential"
	default:
		return "single"
	}
}

// PlanShard is one shard's slice of a plan. When Scan is non-nil the
// shard answers by a direct cascade-pruned scan of those items (sorted
// node-ascending) instead of through Ix — the planner's scan-vs-tree
// call for tree backends whose index is tiny, stale, or outclassed by
// the cascade; counters still land in the shard's accumulator.
type PlanShard struct {
	Ix   Index
	Scan []Item
	N    int // live item count (len(Scan) when scanning)
}

func (ps *PlanShard) knn(ctx context.Context, query Item, l int) ([]Neighbor, error) {
	if ps.Scan != nil {
		res, _, err := prunedKNN(ctx, query, ps.Scan, nil, l, counterSinkOf(ps.Ix))
		return res, err
	}
	return ps.Ix.KNN(ctx, query, l)
}

func (ps *PlanShard) rng(ctx context.Context, query Item, r int) ([]Neighbor, error) {
	if ps.Scan != nil {
		return scanRange(ctx, query, ps.Scan, nil, r, counterSinkOf(ps.Ix))
	}
	return ps.Ix.Range(ctx, query, r)
}

// counterSinkOf exposes an index's counter accumulator to the planner's
// scan path, so scans attribute their work to the same per-shard totals
// tree queries do. Nil for counter-less Index implementations; the
// kernels tolerate a nil set.
func counterSinkOf(ix Index) *counterSet {
	if h, ok := ix.(counterHost); ok {
		return h.counterSink()
	}
	return nil
}

// Plan is an executable query plan over a fixed set of live shards.
// Plans are built per query (or once per batch) and are immutable.
type Plan struct {
	Mode   PlanMode
	Shards []PlanShard
}

// Scans reports how many shards the plan answers by direct scan.
func (p *Plan) Scans() int {
	n := 0
	for i := range p.Shards {
		if p.Shards[i].Scan != nil {
			n++
		}
	}
	return n
}

// PlanInput is what BuildPlan decides from: the live shards (N > 0
// each), the executor width available to a parallel fan-out, the
// result size l (0 for range queries), and the sequential-total
// threshold (<= 0 takes the default).
type PlanInput struct {
	Shards  []PlanShard
	Workers int
	L       int
	SeqMax  int
}

// defaultSeqMax is the total-corpus-size threshold below which a
// sequential visit beats the parallel fan-out when no corpus-derived
// value is supplied.
const defaultSeqMax = 1024

// BuildPlan picks the fan-out mode: single for <= 1 live shard,
// sequential when there is no concurrency to buy (one worker) or the
// whole corpus is small enough that fan-out overhead dominates, and
// parallel otherwise. Sequential plans order shards largest-first so
// the range-narrowing threshold tightens as early as possible.
func BuildPlan(in PlanInput) *Plan {
	p := &Plan{Shards: in.Shards}
	if len(in.Shards) <= 1 {
		p.Mode = PlanSingle
		return p
	}
	total := 0
	for i := range in.Shards {
		total += in.Shards[i].N
	}
	seqMax := in.SeqMax
	if seqMax <= 0 {
		seqMax = defaultSeqMax
	}
	if in.Workers <= 1 || total <= seqMax {
		p.Mode = PlanSequential
		sort.SliceStable(p.Shards, func(i, j int) bool { return p.Shards[i].N > p.Shards[j].N })
		return p
	}
	p.Mode = PlanParallel
	return p
}

// Scan-vs-tree thresholds. A shard scans when its index cannot pay for
// itself: the epoch is tiny, the query wants most of it anyway, or the
// index has accumulated enough tombstone/tail debt that its traversal
// overhead exceeds the flat cascade. A hot cascade (observed prune rate
// above scanHotPruneRate — the filter tiers dismissing three quarters
// of candidates before any tree work) raises the size cutoff: scanning
// is cheaper than the naive n·TED bound suggests.
const (
	scanCutoff       = 32
	scanCutoffHot    = 128
	scanHotPruneRate = 0.75
	scanStaleRatio   = 0.4
)

// UseScanOverTree is the planner's per-shard scan-vs-tree decision for
// tree backends. n is the shard's live size, l the requested result
// count (0 for range queries), stale the shard index's StaleRatio, and
// pruneRate the corpus's observed cascade prune rate
// (LowerBoundPrunes / (LowerBoundPrunes + DistanceCalls)).
func UseScanOverTree(n, l int, stale, pruneRate float64) bool {
	cutoff := float64(scanCutoff)
	if pruneRate > scanHotPruneRate {
		cutoff = scanCutoffHot
	}
	return n <= int(cutoff) || (l > 0 && l >= n) || stale >= scanStaleRatio
}

// KNN executes the plan for a top-l query. Answers are node-identical
// to FanKNN over the same shards (see the file comment for why).
func (p *Plan) KNN(ctx context.Context, exec *Executor, query Item, l int) ([]Neighbor, error) {
	switch p.Mode {
	case PlanSingle:
		if len(p.Shards) == 0 {
			return nil, ctx.Err()
		}
		return p.Shards[0].knn(ctx, query, l)
	case PlanSequential:
		var acc []Neighbor
		for i := range p.Shards {
			ps := &p.Shards[i]
			var res []Neighbor
			var err error
			if len(acc) < l {
				res, err = ps.knn(ctx, query, l)
			} else {
				// acc already holds l results; anything that still enters
				// the top-l is within the current l-th distance, and Range
				// is inclusive, so ties survive for the canonical merge.
				res, err = ps.rng(ctx, query, acc[len(acc)-1].Dist)
			}
			if err != nil {
				return nil, err
			}
			acc = MergeTopL([][]Neighbor{acc, res}, l)
		}
		return acc, nil
	default:
		per := make([][]Neighbor, len(p.Shards))
		errs := make([]error, len(p.Shards))
		if err := exec.Do(ctx, len(p.Shards), 0, func(i int) {
			per[i], errs[i] = p.Shards[i].knn(ctx, query, l)
		}); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return MergeTopL(per, l), nil
	}
}

// Range executes the plan for a range query: the exact union of
// per-shard range results, canonically sorted.
func (p *Plan) Range(ctx context.Context, exec *Executor, query Item, r int) ([]Neighbor, error) {
	switch p.Mode {
	case PlanSingle:
		if len(p.Shards) == 0 {
			return nil, ctx.Err()
		}
		return p.Shards[0].rng(ctx, query, r)
	case PlanSequential:
		var out []Neighbor
		for i := range p.Shards {
			res, err := p.Shards[i].rng(ctx, query, r)
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
		sortNeighborsCanonical(out)
		return dedupNeighbors(out), nil
	default:
		per := make([][]Neighbor, len(p.Shards))
		errs := make([]error, len(p.Shards))
		if err := exec.Do(ctx, len(p.Shards), 0, func(i int) {
			per[i], errs[i] = p.Shards[i].rng(ctx, query, r)
		}); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var out []Neighbor
		for _, ns := range per {
			out = append(out, ns...)
		}
		sortNeighborsCanonical(out)
		return dedupNeighbors(out), nil
	}
}
