package ned

import (
	"context"
	"fmt"
	"testing"

	"ned/internal/graph"
)

// TestShardOf pins the placement function: deterministic, in range,
// degenerate at n=1, and reasonably balanced on dense ID ranges (the
// common case for this library's graphs).
func TestShardOf(t *testing.T) {
	for v := 0; v < 100; v++ {
		if got := ShardOf(graph.NodeID(v), 1); got != 0 {
			t.Fatalf("ShardOf(%d, 1) = %d", v, got)
		}
	}
	const n, nodes = 8, 8000
	counts := make([]int, n)
	for v := 0; v < nodes; v++ {
		si := ShardOf(graph.NodeID(v), n)
		if si < 0 || si >= n {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", v, n, si)
		}
		if si != ShardOf(graph.NodeID(v), n) {
			t.Fatalf("ShardOf(%d, %d) not deterministic", v, n)
		}
		counts[si]++
	}
	want := nodes / n
	for si, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("shard %d holds %d of %d nodes (want ~%d): unbalanced hash", si, c, nodes, want)
		}
	}
}

// TestFanOutMatchesSingleIndex: partitioning items across shards and
// querying through the fan-out/merge router must answer exactly like
// one index over all items — KNN and Range, odd shard counts and empty
// shards included.
func TestFanOutMatchesSingleIndex(t *testing.T) {
	ctx := context.Background()
	g := randomTestGraph(70, 150, 24)
	gq := randomTestGraph(40, 80, 25)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	items := BuildItems(g, nodes, 2, false, 0)
	whole := NewPrunedLinearBackend(items)
	exec := NewExecutor(4)

	for _, n := range []int{2, 3, 7, 40} {
		per := make([][]Item, n)
		for _, it := range items {
			si := ShardOf(it.Node, n)
			per[si] = append(per[si], it)
		}
		shards := make([]Index, n)
		for i := range per {
			shards[i] = NewPrunedLinearBackend(per[i])
		}
		for q := 0; q < 6; q++ {
			query := NewItem(gq, graph.NodeID(q*5), 2, false)
			for _, l := range []int{1, 4, 200} {
				want, err := whole.KNN(ctx, query, l)
				if err != nil {
					t.Fatal(err)
				}
				got, err := FanKNN(ctx, exec, shards, query, l)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("shards=%d l=%d: FanKNN %v, single %v", n, l, got, want)
				}
			}
			for _, r := range []int{0, 2, 5} {
				want, err := whole.Range(ctx, query, r)
				if err != nil {
					t.Fatal(err)
				}
				got, err := FanRange(ctx, exec, shards, query, r)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("shards=%d r=%d: FanRange %v, single %v", n, r, got, want)
				}
			}
		}
	}
}

// TestMergeTopL: the merge respects the canonical (distance, node)
// order and the l cap.
func TestMergeTopL(t *testing.T) {
	per := [][]Neighbor{
		{{Node: 3, Dist: 1}, {Node: 9, Dist: 4}},
		nil,
		{{Node: 1, Dist: 1}, {Node: 2, Dist: 2}},
		{{Node: 7, Dist: 0}},
	}
	got := MergeTopL(per, 3)
	want := []Neighbor{{Node: 7, Dist: 0}, {Node: 1, Dist: 1}, {Node: 3, Dist: 1}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("MergeTopL = %v, want %v", got, want)
	}
}

// TestCloneIsolation: mutating a cloned backend never changes the
// original's answers — the property the epoch protocol rests on.
func TestCloneIsolation(t *testing.T) {
	ctx := context.Background()
	g := randomTestGraph(50, 110, 26)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	items := BuildItems(g, nodes, 2, false, 0)
	query := NewItem(randomTestGraph(30, 60, 27), 4, 2, false)

	build := map[string]func() DynamicIndex{
		"vp":     func() DynamicIndex { return NewVPBackend(items) },
		"bk":     func() DynamicIndex { return NewBKBackend(items) },
		"linear": func() DynamicIndex { return NewLinearBackend(items, 2) },
		"pruned": func() DynamicIndex { return NewPrunedLinearBackend(items) },
	}
	for name, mk := range build {
		orig := mk()
		before, err := orig.KNN(ctx, query, 10)
		if err != nil {
			t.Fatal(err)
		}
		clone := orig.Clone()
		// Mutate the clone hard: remove half the nodes, re-insert two.
		var rm []graph.NodeID
		for v := 0; v < g.NumNodes(); v += 2 {
			rm = append(rm, graph.NodeID(v))
		}
		clone.Remove(rm...)
		clone.Insert(items[0], items[2])
		after, err := orig.KNN(ctx, query, 10)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(before) != fmt.Sprint(after) {
			t.Errorf("%s: mutating the clone changed the original: %v -> %v", name, before, after)
		}
		if orig.Len() == clone.Len() {
			t.Errorf("%s: clone mutation did not change clone.Len", name)
		}
		// Counters are shared by design: queries against either land in
		// one accumulator.
		origCalls := orig.Counters().DistanceCalls
		if _, err := clone.KNN(ctx, query, 3); err != nil {
			t.Fatal(err)
		}
		if got := orig.Counters().DistanceCalls; got <= origCalls {
			t.Errorf("%s: clone's queries did not land in the shared counter set (%d -> %d)", name, origCalls, got)
		}
	}
}
