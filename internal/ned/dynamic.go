package ned

import (
	"context"
	"sort"

	"ned/internal/graph"
	"ned/internal/ted"
)

// This file makes every index backend mutable behind one interface. The
// paper pitches NED for evolving graphs (de-anonymization against
// networks that change over time), so the index layer supports node
// churn without a full re-index:
//
//   - the linear and pruned scans update their item slices in place —
//     mutation is as cheap as the slice ops and queries never degrade;
//   - the VP-tree takes a tombstone + append path: removals mark tree
//     nodes dead (they keep routing, never rank), insertions land in a
//     linearly-scanned tail merged into every query;
//   - the BK-tree inserts natively (its structure grows by design) and
//     removes via tombstones.
//
// Tombstones and tails are staleness: they cost routing and scan work
// on every query while serving nothing. StaleRatio exposes that
// fraction so the owner (ned.Corpus) can amortize a full rebuild once a
// configurable threshold is crossed.
//
// Mutations are NOT safe concurrently with queries or each other. The
// sharded Corpus engine never mutates a published index at all: it
// Clones the current epoch under the owning shard's write lock, mutates
// the private clone, and publishes it as the next epoch, so lock-free
// readers keep serving from the old structure. Results after any
// mutation sequence are identical to a freshly built index over the
// same live items (the churn-equivalence suite enforces this).

// DynamicIndex is an Index that supports incremental mutation.
type DynamicIndex interface {
	Index
	// Insert adds items to the index. The caller guarantees the nodes are
	// not already indexed.
	Insert(items ...Item)
	// Remove deletes the items with the given node IDs, reporting how
	// many were present. Unknown nodes are ignored.
	Remove(nodes ...graph.NodeID) int
	// Stale reports how much of the index structure is occupied by
	// tombstones or unindexed appends (stale) out of the whole structure
	// queries pay to traverse (total) — 0/live for backends that mutate
	// in place. Above the owner's threshold ratio, a rebuild pays for
	// itself; the owner sums the pairs across shards for an aggregate
	// ratio.
	Stale() (stale, total int)
	// Clone returns a structurally private copy of the index: mutations
	// on the clone never touch the original's structure, so a published
	// epoch stays immutable for lock-free readers while its successor is
	// prepared. Item payloads and the serving-counter accumulator are
	// shared (counters stay continuous across epochs). O(n) copying, no
	// metric evaluations.
	Clone() DynamicIndex
}

// StaleRatio is the rebuild-policy form of Stale: the stale fraction of
// ix's structure, 0 for an empty index.
func StaleRatio(ix DynamicIndex) float64 {
	stale, total := ix.Stale()
	if total == 0 {
		return 0
	}
	return float64(stale) / float64(total)
}

// nodeSet builds a membership set for a removal batch.
func nodeSet(nodes []graph.NodeID) map[graph.NodeID]bool {
	s := make(map[graph.NodeID]bool, len(nodes))
	for _, v := range nodes {
		s[v] = true
	}
	return s
}

// removeItems filters items whose node is in gone, in place, returning
// the compacted slice and the number dropped.
func removeItems(items []Item, gone map[graph.NodeID]bool) ([]Item, int) {
	w := 0
	for _, it := range items {
		if gone[it.Node] {
			continue
		}
		items[w] = it
		w++
	}
	dropped := len(items) - w
	return items[:w], dropped
}

// --- linear backend ---

// Scan mutations recompile the profile block: the columnar arenas are
// index-aligned with the item slice and immutable (shared by epoch
// clones), so any slice edit needs a fresh block. Linear in the item
// count, the same order as the slice edit itself plus profile copying.

func (b *linearBackend) Insert(items ...Item) {
	b.items = append(b.items, items...)
	b.block = compileBlock(b.items)
}

func (b *linearBackend) Remove(nodes ...graph.NodeID) int {
	var n int
	b.items, n = removeItems(b.items, nodeSet(nodes))
	if n > 0 {
		b.block = compileBlock(b.items)
	}
	return n
}

func (b *linearBackend) Stale() (int, int) { return 0, len(b.items) }

// --- pruned linear backend ---

func (b *prunedBackend) Insert(items ...Item) {
	b.items = append(b.items, items...)
	b.block = compileBlock(b.items)
}

func (b *prunedBackend) Remove(nodes ...graph.NodeID) int {
	var n int
	b.items, n = removeItems(b.items, nodeSet(nodes))
	if n > 0 {
		b.block = compileBlock(b.items)
	}
	return n
}

func (b *prunedBackend) Stale() (int, int) { return 0, len(b.items) }

// --- VP-tree backend ---

func (b *vpBackend) Insert(items ...Item) { b.tail = append(b.tail, items...) }

func (b *vpBackend) Remove(nodes ...graph.NodeID) int {
	gone := nodeSet(nodes)
	var n int
	b.tail, n = removeItems(b.tail, gone)
	n += b.t.Delete(func(it Item) bool { return gone[it.Node] })
	return n
}

func (b *vpBackend) Stale() (int, int) {
	stale := b.t.Deleted() + len(b.tail)
	total := b.t.Len() + b.t.Deleted() + len(b.tail)
	return stale, total
}

// mergeTailKNN folds the appended tail into a KNN result from the tree:
// out arrives canonically sorted with at most l entries; each tail item
// is evaluated under the current kth-best budget and merged. The union
// top-l equals a freshly built index's answer.
func (b *vpBackend) mergeTailKNN(ctx context.Context, query Item, l int, out []Neighbor) ([]Neighbor, error) {
	comp := tedComputers.Get().(*ted.Computer)
	defer tedComputers.Put(comp)
	for i, it := range b.tail {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		budget := ted.Unbounded
		if len(out) >= l {
			budget = out[len(out)-1].Dist
		}
		d, o := cascadeDistanceAtMost(comp, query, it, budget, b.counters)
		if o != ted.OutcomeExact || d > budget {
			continue
		}
		out = insertNeighborCanonical(out, Neighbor{Node: it.Node, Dist: d}, l)
	}
	return out, nil
}

// insertNeighborCanonical inserts n into a canonically-sorted slice at
// its (distance, node) position, trimming to at most l entries —
// O(log l) search plus one shift, versus a full re-sort per accepted
// tail item.
func insertNeighborCanonical(out []Neighbor, n Neighbor, l int) []Neighbor {
	i := sort.Search(len(out), func(i int) bool {
		if out[i].Dist != n.Dist {
			return out[i].Dist > n.Dist
		}
		return out[i].Node > n.Node
	})
	out = append(out, Neighbor{})
	copy(out[i+1:], out[i:])
	out[i] = n
	if len(out) > l {
		out = out[:l]
	}
	return out
}

// rangeTail appends tail items within distance r of the query.
func (b *vpBackend) rangeTail(ctx context.Context, query Item, r int, out []Neighbor) ([]Neighbor, error) {
	comp := tedComputers.Get().(*ted.Computer)
	defer tedComputers.Put(comp)
	for i, it := range b.tail {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		d, o := cascadeDistanceAtMost(comp, query, it, r, b.counters)
		if o == ted.OutcomeExact && d <= r {
			out = append(out, Neighbor{Node: it.Node, Dist: d})
		}
	}
	return out, nil
}

// --- BK-tree backend ---

func (b *bkBackend) Insert(items ...Item) {
	// The BK-tree inserts natively; its metric evaluations during the
	// descent are maintenance, not serving work, so the counter hook is
	// muted for the duration (Insert runs only on an unpublished clone
	// under the owner's shard lock, so no query observes the flag
	// mid-flight).
	b.building.Store(true)
	for _, it := range items {
		b.t.Insert(it)
	}
	b.building.Store(false)
}

func (b *bkBackend) Remove(nodes ...graph.NodeID) int {
	gone := nodeSet(nodes)
	return b.t.Delete(func(it Item) bool { return gone[it.Node] })
}

func (b *bkBackend) Stale() (int, int) {
	return b.t.Deleted(), b.t.Len() + b.t.Deleted()
}
