package ned

import (
	"sort"

	"ned/internal/graph"
)

// Rebalancing policy. The Corpus's background rebalancer samples
// per-shard contention (write-lock wait, mutation counts, epoch-clone
// bytes) between ticks and asks Decide what to do; the mechanics of
// actually moving items — clone-and-publish per shard, placement table
// edit, never blocking readers — live in the Corpus. This file is the
// pure policy: given the loads, pick at most one split and one merge
// per tick, MRV-style (split the contended unit behind the scenes,
// fold quiet fragments back together), so the layout converges in
// small, cheap, always-consistent steps instead of one stop-the-world
// reshard.

// ShardLoad is one shard slot's observed load since the previous
// rebalancer tick. Counters are deltas, not totals. A slot with Live
// false is a retired husk (merged away, kept so placement indices stay
// stable) and is skipped by the policy except as a split target.
type ShardLoad struct {
	Shard      int
	Live       bool
	Nodes      int
	LockWaitNS int64
	Mutations  int64
	CloneBytes int64
	StaleRatio float64
}

// score collapses a shard's contention signals into one comparable
// cost: clone bytes are the dominant term on this engine (every
// mutation pays an epoch clone proportional to shard size), lock wait
// is nanoseconds scaled down to roughly byte-cost parity, and each
// mutation carries a fixed overhead floor.
func (s ShardLoad) score() int64 {
	return s.CloneBytes + s.LockWaitNS/16 + s.Mutations*64
}

// BalancePolicy bounds what the rebalancer may do. Zero values take
// the defaults below.
type BalancePolicy struct {
	// MaxShards caps live shards; splits stop there.
	MaxShards int
	// MinShardNodes is the merge size ceiling and half the split size
	// floor: a shard splits only above 2*MinShardNodes, merges only at
	// or below MinShardNodes.
	MinShardNodes int
	// SplitFraction is the share of the total tick score one shard must
	// carry to be declared hot.
	SplitFraction float64
	// SplitMinMutations is the minimum mutation delta for a split —
	// a shard that is large but quiet is left alone.
	SplitMinMutations int64
	// MergeMaxMutations is the maximum mutation delta for a merge
	// participant — only quiet shards fold together.
	MergeMaxMutations int64
}

func (p BalancePolicy) withDefaults() BalancePolicy {
	if p.MaxShards <= 0 {
		p.MaxShards = 32
	}
	if p.MinShardNodes <= 0 {
		p.MinShardNodes = 16
	}
	if p.SplitFraction <= 0 {
		p.SplitFraction = 0.5
	}
	if p.SplitMinMutations <= 0 {
		p.SplitMinMutations = 8
	}
	// MergeMaxMutations: 0 is the default (merge only untouched shards).
	return p
}

// Decision is one tick's verdict: Split is the shard slot to split
// (-1 for none), MergeSrc/MergeDst the pair to fold (src's items move
// into dst; -1/-1 for none). A tick never splits and merges the same
// slot.
type Decision struct {
	Split    int
	MergeSrc int
	MergeDst int
}

// Decide picks at most one split and one merge from a tick's loads.
// Split: the highest-scoring live shard, if it is hot (carries at
// least SplitFraction of the total score), busy (SplitMinMutations),
// big enough to split (> 2*MinShardNodes), and the live count is below
// MaxShards. Merge: the two smallest quiet live shards at or below
// MinShardNodes, smaller folding into larger so the lighter epoch is
// the one cloned around.
func Decide(loads []ShardLoad, pol BalancePolicy) Decision {
	pol = pol.withDefaults()
	d := Decision{Split: -1, MergeSrc: -1, MergeDst: -1}
	live := 0
	var total int64
	for _, l := range loads {
		if !l.Live {
			continue
		}
		live++
		total += l.score()
	}
	if live == 0 {
		return d
	}

	if live < pol.MaxShards && total > 0 {
		best, bestScore := -1, int64(0)
		for _, l := range loads {
			if !l.Live || l.Nodes < 2*pol.MinShardNodes || l.Mutations < pol.SplitMinMutations {
				continue
			}
			if s := l.score(); s > bestScore {
				best, bestScore = l.Shard, s
			}
		}
		if best >= 0 && float64(bestScore) >= pol.SplitFraction*float64(total) {
			d.Split = best
		}
	}

	if live > 1 {
		var quiet []ShardLoad
		for _, l := range loads {
			if l.Live && l.Shard != d.Split &&
				l.Nodes > 0 && l.Nodes <= pol.MinShardNodes &&
				l.Mutations <= pol.MergeMaxMutations {
				quiet = append(quiet, l)
			}
		}
		if len(quiet) >= 2 {
			sort.Slice(quiet, func(i, j int) bool {
				if quiet[i].Nodes != quiet[j].Nodes {
					return quiet[i].Nodes < quiet[j].Nodes
				}
				return quiet[i].Shard < quiet[j].Shard
			})
			d.MergeSrc, d.MergeDst = quiet[0].Shard, quiet[1].Shard
		}
	}
	return d
}

// SplitPartition divides a hot shard's nodes (sorted ascending) into
// the set that stays and the set that moves to the new shard. Nodes in
// hot — the shard's recently mutated set — alternate stay/move so the
// write pressure itself is what gets halved, not just the node count;
// the cold remainder splits by a salted hash so repeated splits of the
// same shard cut along different lines.
func SplitPartition(nodes []graph.NodeID, hot map[graph.NodeID]bool, salt uint64) (stay, move []graph.NodeID) {
	toggle := false
	for _, v := range nodes {
		if hot[v] {
			if toggle {
				move = append(move, v)
			} else {
				stay = append(stay, v)
			}
			toggle = !toggle
			continue
		}
		x := uint64(v) ^ salt
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x&1 == 1 {
			move = append(move, v)
		} else {
			stay = append(stay, v)
		}
	}
	// A split that moves nothing (or everything) is useless; force at
	// least one node each way so the split always makes progress.
	if len(move) == 0 && len(stay) > 1 {
		move = append(move, stay[len(stay)-1])
		stay = stay[:len(stay)-1]
	}
	if len(stay) == 0 && len(move) > 1 {
		stay = append(stay, move[len(move)-1])
		move = move[:len(move)-1]
	}
	return stay, move
}
