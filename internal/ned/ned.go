// Package ned implements NED, the inter-graph node metric of §3: the
// TED* distance between the unordered k-adjacent trees of two nodes that
// may live in different graphs. It also provides the directed-graph
// variant of §3.3, the weighted variant of §12, and the Hausdorff
// graph-to-graph distance of Appendix A.
package ned

import (
	"ned/internal/graph"
	"ned/internal/ted"
	"ned/internal/tree"
)

// Distance returns δ_k(u, v) = TED*(T(u,k), T(v,k)) (Equation 1): the
// NED distance between node u of graph gu and node v of graph gv for
// neighborhood depth k. gu and gv may be the same graph.
func Distance(gu *graph.Graph, u graph.NodeID, gv *graph.Graph, v graph.NodeID, k int) int {
	tu, _ := tree.KAdjacent(gu, u, k)
	tv, _ := tree.KAdjacent(gv, v, k)
	return ted.Distance(tu, tv)
}

// DistanceDirected returns δ_k_D(u, v) for nodes of directed graphs
// (Equation 2): the sum of TED* over the incoming and outgoing
// k-adjacent tree pairs. Both graphs should be directed; for undirected
// graphs the result is simply 2·Distance.
func DistanceDirected(gu *graph.Graph, u graph.NodeID, gv *graph.Graph, v graph.NodeID, k int) int {
	tiu, _ := tree.KAdjacentIncoming(gu, u, k)
	tiv, _ := tree.KAdjacentIncoming(gv, v, k)
	tou, _ := tree.KAdjacentOutgoing(gu, u, k)
	tov, _ := tree.KAdjacentOutgoing(gv, v, k)
	return ted.Distance(tiu, tiv) + ted.Distance(tou, tov)
}

// WeightedDistance returns the weighted NED of §12 using the supplied
// TED* weights (nil means unit weights).
func WeightedDistance(gu *graph.Graph, u graph.NodeID, gv *graph.Graph, v graph.NodeID, k int, w ted.Weights) float64 {
	tu, _ := tree.KAdjacent(gu, u, k)
	tv, _ := tree.KAdjacent(gv, v, k)
	return ted.WeightedDistance(tu, tv, w)
}

// Signature is a node's precomputed k-adjacent tree. Precomputing
// signatures amortizes BFS extraction across many distance evaluations
// (every experiment in §13 does this).
type Signature struct {
	Node graph.NodeID
	K    int
	Tree *tree.Tree
}

// NewSignature extracts the k-adjacent tree signature of node v.
func NewSignature(g *graph.Graph, v graph.NodeID, k int) Signature {
	t, _ := tree.KAdjacent(g, v, k)
	return Signature{Node: v, K: k, Tree: t}
}

// Signatures extracts signatures for a set of nodes.
func Signatures(g *graph.Graph, nodes []graph.NodeID, k int) []Signature {
	out := make([]Signature, len(nodes))
	for i, v := range nodes {
		out[i] = NewSignature(g, v, k)
	}
	return out
}

// Between returns the NED distance between two precomputed signatures.
// Signatures with different K are comparable in principle (TED* is
// defined on any tree pair) but the value is then the paper's
// cross-parameter distance, so callers normally keep K equal.
func Between(a, b Signature) int {
	return ted.Distance(a.Tree, b.Tree)
}

// Neighbor is a candidate node with its NED distance to a query.
type Neighbor struct {
	Node graph.NodeID
	Dist int
}

// NearestSet returns every candidate whose NED distance to the query
// signature equals the minimum distance (the "nearest neighbor result
// set" of §13.3, whose size Figure 8a reports as a function of k).
func NearestSet(query Signature, candidates []Signature) []Neighbor {
	best := -1
	var out []Neighbor
	for _, c := range candidates {
		d := ted.Distance(query.Tree, c.Tree)
		switch {
		case best == -1 || d < best:
			best = d
			out = out[:0]
			out = append(out, Neighbor{c.Node, d})
		case d == best:
			out = append(out, Neighbor{c.Node, d})
		}
	}
	return out
}

// TopL returns the l nearest candidates in ascending distance order,
// breaking distance ties by node ID for determinism. If l exceeds the
// candidate count every candidate is returned.
func TopL(query Signature, candidates []Signature, l int) []Neighbor {
	all := make([]Neighbor, len(candidates))
	for i, c := range candidates {
		all[i] = Neighbor{c.Node, ted.Distance(query.Tree, c.Tree)}
	}
	sortNeighbors(all)
	if l > len(all) {
		l = len(all)
	}
	return all[:l]
}

// Ties counts how many nodes in the top-l ranking share a distance value
// with at least one other ranked node (the "identical distances (ties)
// in the ranking" of Figure 8b).
func Ties(ranked []Neighbor) int {
	counts := map[int]int{}
	for _, n := range ranked {
		counts[n.Dist]++
	}
	ties := 0
	for _, c := range counts {
		if c > 1 {
			ties += c
		}
	}
	return ties
}

func sortNeighbors(ns []Neighbor) {
	// Insertion-friendly sizes are common, but use a proper sort for
	// large candidate sets.
	sortSlice(ns, func(a, b Neighbor) bool {
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		return a.Node < b.Node
	})
}
