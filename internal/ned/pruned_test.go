package ned

import (
	"math/rand"
	"testing"

	"ned/internal/graph"
)

func prunedTestSetup(t *testing.T) (Signature, []Signature) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	g1 := randomGraph(rng, 150, 380)
	g2 := randomGraph(rng, 150, 380)
	query := NewSignature(g1, 3, 3)
	var nodes []graph.NodeID
	for v := 0; v < 150; v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	return query, Signatures(g2, nodes, 3)
}

func TestPrunedTopLMatchesTopL(t *testing.T) {
	query, cands := prunedTestSetup(t)
	for _, l := range []int{1, 3, 10} {
		want := TopL(query, cands, l)
		got, stats := PrunedTopL(query, cands, l)
		if len(got) != len(want) {
			t.Fatalf("l=%d: got %d results, want %d", l, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("l=%d rank %d: distance %d, want %d", l, i, got[i].Dist, want[i].Dist)
			}
		}
		if stats.FullEvaluations+stats.PrunedByBound+stats.EarlyExits != len(cands) {
			t.Errorf("l=%d: stats do not cover all candidates: %+v", l, stats)
		}
		if stats.EarlyExits == 0 {
			t.Logf("l=%d: no early exits on this workload", l)
		}
	}
}

func TestPrunedTopLActuallyPrunes(t *testing.T) {
	// Candidates with wildly different level profiles should mostly be
	// skipped by the padding bound.
	rng := rand.New(rand.NewSource(7))
	g1 := randomGraph(rng, 100, 150)    // sparse: thin trees
	g2 := randomGraph(rng, 100, 150)    // sparse too: some close matches
	dense := randomGraph(rng, 100, 900) // dense: fat trees, mostly prunable
	query := NewSignature(g1, 0, 3)
	var cands []Signature
	for v := 0; v < 100; v++ {
		cands = append(cands, NewSignature(g2, graph.NodeID(v), 3))
		cands = append(cands, NewSignature(dense, graph.NodeID(v), 3))
	}
	_, stats := PrunedTopL(query, cands, 3)
	if stats.PrunedByBound == 0 {
		t.Error("expected some candidates pruned by the padding bound")
	}
	if stats.FullEvaluations == len(cands) {
		t.Error("pruning saved no work")
	}
}

func TestPrunedTopLEdgeCases(t *testing.T) {
	query, cands := prunedTestSetup(t)
	if res, _ := PrunedTopL(query, cands, 0); res != nil {
		t.Error("l=0 should return nil")
	}
	if res, _ := PrunedTopL(query, nil, 5); res != nil {
		t.Error("no candidates should return nil")
	}
	// l larger than candidate count: everything returned.
	res, _ := PrunedTopL(query, cands[:4], 10)
	if len(res) != 4 {
		t.Errorf("got %d results, want 4", len(res))
	}
}

func TestLowerBoundNeverExceedsDistance(t *testing.T) {
	query, cands := prunedTestSetup(t)
	for _, c := range cands[:60] {
		lb := LowerBound(query, c)
		d := Between(query, c)
		if lb > d {
			t.Fatalf("bound %d > distance %d for node %d", lb, d, c.Node)
		}
	}
}

func TestPrefixDistance(t *testing.T) {
	query, cands := prunedTestSetup(t)
	c := cands[0]
	// Full-depth prefix equals the real distance.
	if got, want := PrefixDistance(query, c, 10), Between(query, c); got != want {
		t.Errorf("full prefix %d != distance %d", got, want)
	}
	// Prefix at depth 0 compares bare roots: always 0.
	if got := PrefixDistance(query, c, 0); got != 0 {
		t.Errorf("depth-0 prefix = %d, want 0", got)
	}
}
