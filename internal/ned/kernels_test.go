package ned

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ned/internal/graph"
	"ned/internal/tree"
)

// fuzzCorpusTrees loads the TED* fuzz corpus (the seed inputs plus
// crashers the fuzzer has minimized over time) as decoded trees, so the
// kernel-equivalence property runs over adversarial shapes, not just
// random graphs.
func fuzzCorpusTrees(t *testing.T) []*tree.Tree {
	t.Helper()
	var out []*tree.Tree
	root := filepath.Join("..", "ted", "testdata", "fuzz")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			rest, ok := strings.CutPrefix(strings.TrimSpace(line), "string(")
			if !ok {
				continue
			}
			enc, err := strconv.Unquote(strings.TrimSuffix(rest, ")"))
			if err != nil {
				continue
			}
			if tr, err := tree.Decode(enc); err == nil && tr.Size() <= 200 {
				out = append(out, tr)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	if len(out) < 10 {
		t.Fatalf("fuzz corpus yielded only %d trees", len(out))
	}
	return out
}

// fuzzSeededItems turns the fuzz trees into a profiled item corpus:
// undirected items, or directed ones pairing each tree with the next as
// out/in signatures.
func fuzzSeededItems(t *testing.T, trees []*tree.Tree, dict *tree.Interner, directed bool) []Item {
	t.Helper()
	var items []Item
	for i, tr := range trees {
		it := Item{Node: graph.NodeID(i), K: 2, Out: tr}
		if directed {
			it.In = trees[(i+1)%len(trees)]
		}
		items = append(items, it)
	}
	ProfileItems(items, dict, 2)
	return items
}

// TestBlockKernelsMatchScalarCascade is the block-vs-scalar contract of
// cascade.go pinned bit for bit over the fuzz corpus: for every query
// and candidate block, the block kernels' per-slot bound values, the
// counting-sorted evaluation order, the size+padding survivor bitmap at
// every threshold, and the lazy label-tier decisions must all equal
// what the scalar per-candidate cascade computes. Undirected and
// directed (summed out/in) corpora are both covered.
func TestBlockKernelsMatchScalarCascade(t *testing.T) {
	trees := fuzzCorpusTrees(t)
	for _, directed := range []bool{false, true} {
		dict := tree.NewInterner()
		items := fuzzSeededItems(t, trees, dict, directed)
		blk := compileBlock(items)
		if blk == nil {
			t.Fatalf("directed=%v: fully profiled corpus failed to compile a block", directed)
		}
		sizeB := make([]int32, blk.n)
		padB := make([]int32, blk.n)
		words := make([]uint64, (blk.n+63)/64)
		for qi := 0; qi < len(items); qi += 7 {
			q := items[qi]
			if !blk.bounds(q, sizeB, padB) {
				t.Fatalf("directed=%v query %d: block bounds refused a profiled query", directed, qi)
			}
			for j, it := range items {
				want := itemCascadeBounds(q, it)
				if sizeB[j] != want.size || padB[j] != want.pad {
					t.Fatalf("directed=%v query %d slot %d: block bounds (%d,%d), scalar (%d,%d)",
						directed, qi, j, sizeB[j], padB[j], want.size, want.pad)
				}
			}
			for _, thr := range []int{0, 1, 2, 3, 5, 9, 40} {
				szPruned, padPruned := tierFilterBlock(sizeB, padB, int32(thr), words)
				wantSz, wantPad := 0, 0
				for j := range items {
					bit := words[j>>6]>>(uint(j)&63)&1 == 1
					pass := int(padB[j]) <= thr
					if bit != pass {
						t.Fatalf("directed=%v query %d slot %d t=%d: bitmap %v, scalar admit %v",
							directed, qi, j, thr, bit, pass)
					}
					if !pass {
						if int(sizeB[j]) > thr {
							wantSz++
						} else {
							wantPad++
						}
					}
					gotLabel := blk.labelTier(q, j, thr)
					_, wantLabel := labelTierPrunes(q, items[j], thr)
					if gotLabel != wantLabel {
						t.Fatalf("directed=%v query %d slot %d t=%d: block label tier %v, scalar %v",
							directed, qi, j, thr, gotLabel, wantLabel)
					}
				}
				if szPruned != wantSz || padPruned != wantPad {
					t.Fatalf("directed=%v query %d t=%d: tier attribution (%d,%d), scalar (%d,%d)",
						directed, qi, thr, szPruned, padPruned, wantSz, wantPad)
				}
			}
		}
	}
}

// TestBlockOrderMatchesComparisonSort pins the counting-sorted
// evaluation order to cascadeOrder's comparison sort: identical slot
// sequences, so block and scalar scans evaluate candidates in the same
// canonical (padding bound, node) order and the threshold evolves
// identically. The insertion-sort fallback for degenerate bound ranges
// is covered by a synthetic wide-bound block.
func TestBlockOrderMatchesComparisonSort(t *testing.T) {
	trees := fuzzCorpusTrees(t)
	dict := tree.NewInterner()
	items := fuzzSeededItems(t, trees, dict, false)
	// Scramble node IDs so node order differs from slot order and the
	// tie-break is actually exercised.
	for i := range items {
		items[i].Node = graph.NodeID((i*2654435761 + 17) % (4 * len(items)))
	}
	blk := compileBlock(items)
	if blk == nil {
		t.Fatal("profiled corpus failed to compile a block")
	}
	q := items[3]
	sizeB := make([]int32, blk.n)
	padB := make([]int32, blk.n)
	if !blk.bounds(q, sizeB, padB) {
		t.Fatal("block bounds refused a profiled query")
	}
	got := blockOrder(padB, blk.byNode)
	want := make([]int32, len(items))
	for i := range want {
		want[i] = int32(i)
	}
	// The reference order, straight from cascadeOrder's comparator.
	for i := 1; i < len(want); i++ {
		for k := i; k > 0; k-- {
			a, b := want[k-1], want[k]
			if padB[a] < padB[b] || (padB[a] == padB[b] && items[a].Node < items[b].Node) {
				break
			}
			want[k-1], want[k] = b, a
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverges at %d: counting sort %v, comparison %v", i, got[:i+1], want[:i+1])
		}
	}

	// Degenerate bound range: force the insertion-sort fallback and pin
	// it to the same reference.
	widePad := make([]int32, len(padB))
	copy(widePad, padB)
	widePad[0] = int32(4*len(padB) + 100000)
	gotWide := blockOrder(widePad, blk.byNode)
	wantWide := make([]int32, len(items))
	for i := range wantWide {
		wantWide[i] = int32(i)
	}
	for i := 1; i < len(wantWide); i++ {
		for k := i; k > 0; k-- {
			a, b := wantWide[k-1], wantWide[k]
			if widePad[a] < widePad[b] || (widePad[a] == widePad[b] && items[a].Node < items[b].Node) {
				break
			}
			wantWide[k-1], wantWide[k] = b, a
		}
	}
	for i := range wantWide {
		if gotWide[i] != wantWide[i] {
			t.Fatalf("fallback order diverges at %d", i)
		}
	}
}

// TestBlockCompileFallbacks pins the refusal paths: a block never
// compiles over unprofiled or mixed-direction items, and bounds refuses
// an unprofiled query — each is the scans' signal to take the scalar
// cascade instead of serving wrong (or panicking) fast-path answers.
func TestBlockCompileFallbacks(t *testing.T) {
	trees := fuzzCorpusTrees(t)
	dict := tree.NewInterner()
	items := fuzzSeededItems(t, trees, dict, false)

	unprofiled := append([]Item(nil), items...)
	unprofiled[len(unprofiled)/2].OutP = nil
	if compileBlock(unprofiled) != nil {
		t.Error("compileBlock accepted a batch with an unprofiled item")
	}

	mixed := append([]Item(nil), items...)
	mixed[1].In = mixed[2].Out
	mixed[1].InP = mixed[2].OutP
	if compileBlock(mixed) != nil {
		t.Error("compileBlock accepted a mix of directed and undirected items")
	}

	if compileBlock(nil) != nil {
		t.Error("compileBlock accepted an empty batch")
	}

	blk := compileBlock(items)
	if blk == nil {
		t.Fatal("profiled corpus failed to compile a block")
	}
	bare := Item{Node: 1, K: 2, Out: trees[0]}
	if blk.bounds(bare, make([]int32, blk.n), make([]int32, blk.n)) {
		t.Error("bounds accepted an unprofiled query")
	}
}
