package ned

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecutorDoRunsAll: every index in [0, n) runs exactly once, under
// concurrent Do calls sharing one pool.
func TestExecutorDoRunsAll(t *testing.T) {
	e := NewExecutor(4)
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			const n = 500
			hits := make([]atomic.Int32, n)
			if err := e.Do(context.Background(), n, 0, func(i int) {
				hits[i].Add(1)
			}); err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("index %d ran %d times", i, got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestExecutorDoCancel: cancellation mid-batch stops handing out work
// and surfaces the context error.
func TestExecutorDoCancel(t *testing.T) {
	e := NewExecutor(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := e.Do(ctx, 10_000, 0, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do after cancel: %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Errorf("cancellation did not stop the batch (%d ran)", n)
	}
}

// TestExecutorNestedDo: fan-outs issued from inside pool workers (the
// BatchKNN -> per-shard shape) must complete without deadlock — a
// saturated pool degrades to inline execution.
func TestExecutorNestedDo(t *testing.T) {
	e := NewExecutor(3)
	var total atomic.Int32
	err := e.Do(context.Background(), 20, 0, func(i int) {
		if err := e.Do(context.Background(), 8, 0, func(j int) {
			total.Add(1)
		}); err != nil {
			t.Errorf("nested Do: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != 20*8 {
		t.Fatalf("nested Do ran %d tasks, want %d", got, 20*8)
	}
}

// TestExecutorWorkerReuse: sequential batches reuse pooled workers
// while they are warm instead of spawning a fresh pool per call. The
// executor's whole point is that goroutine count stays bounded by its
// width; this asserts the observable half — the slot pool never exceeds
// the cap — by hammering it from many submitters.
func TestExecutorWorkerReuse(t *testing.T) {
	e := NewExecutor(2)
	for round := 0; round < 50; round++ {
		if err := e.Do(context.Background(), 10, 0, func(i int) {}); err != nil {
			t.Fatal(err)
		}
		if live := len(e.slots); live > 2 {
			t.Fatalf("round %d: %d live workers, cap 2", round, live)
		}
	}
}

// TestExecutorPreCanceled: a dead context runs nothing.
func TestExecutorPreCanceled(t *testing.T) {
	e := NewExecutor(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := e.Do(ctx, 5, 0, func(i int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran {
		t.Error("pre-canceled Do ran work")
	}
}
