package ned

import (
	"context"

	"ned/internal/ted"
	"ned/internal/tree"
)

// PrunedTopL answers the same query as TopL but skips full TED*
// evaluations for candidates that provably cannot enter the result: the
// O(height) padding lower bound of ted.LowerBound prunes any candidate
// whose bound already exceeds the current l-th distance. It is the
// low-level form of the pruned-linear index backend (NewPrunedLinearBackend);
// both share one implementation.
//
// The returned ranking is exact with respect to the full TED* distance:
// every reported neighbor carries its true distance, and the set equals
// TopL's up to equal-distance ties. Stats reports how much work was
// saved.
func PrunedTopL(query Signature, candidates []Signature, l int) ([]Neighbor, PruneStats) {
	res, stats, _ := prunedKNN(context.Background(), query.Item(), ItemsOf(candidates), nil, l, nil)
	return res, stats
}

// PruneStats reports the work profile of a pruned query.
type PruneStats struct {
	FullEvaluations int // candidates whose TED* computation ran to completion
	PrunedByBound   int // candidates skipped via the padding lower bound
	EarlyExits      int // candidates abandoned mid-TED* once the budget was crossed
}

// ItemsOf converts precomputed signatures into index items.
func ItemsOf(sigs []Signature) []Item {
	items := make([]Item, len(sigs))
	for i, s := range sigs {
		items[i] = s.Item()
	}
	return items
}

// LowerBound exposes the padding lower bound on NED between two
// signatures: a valid lower bound on Between(a, b).
func LowerBound(a, b Signature) int {
	return ted.LowerBound(a.Tree, b.Tree)
}

// PrefixDistance evaluates NED on the depth-truncated signatures — the
// §10 lower-bound heuristic. With kPrefix >= both tree heights it equals
// Between(a, b).
func PrefixDistance(a, b Signature, kPrefix int) int {
	ta := truncated(a.Tree, kPrefix)
	tb := truncated(b.Tree, kPrefix)
	return ted.Distance(ta, tb)
}

func truncated(t *tree.Tree, k int) *tree.Tree {
	if k >= t.Height() {
		return t
	}
	return t.Truncate(k)
}
