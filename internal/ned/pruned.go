package ned

import (
	"sort"

	"ned/internal/ted"
	"ned/internal/tree"
)

// PrunedTopL answers the same query as TopL but skips full TED*
// evaluations for candidates that provably cannot enter the result:
//
//  1. the O(height) padding lower bound of ted.LowerBound prunes any
//     candidate whose bound already exceeds the current l-th distance;
//  2. the §10 monotonicity heuristic evaluates a truncated prefix of the
//     trees first (cheap, usually tight) before paying for the full
//     depth. Because Algorithm-1 values can violate monotonicity by a
//     small tie-artifact margin (see the ted package faithfulness note),
//     the prefix estimate is used with a safety slack rather than as a
//     hard bound, keeping results identical to TopL whenever the final
//     full evaluation confirms membership.
//
// The returned ranking is exact with respect to the full TED* distance:
// every reported neighbor carries its true distance, and the set equals
// TopL's up to equal-distance ties. Stats reports how much work was
// saved.
func PrunedTopL(query Signature, candidates []Signature, l int) ([]Neighbor, PruneStats) {
	var stats PruneStats
	if l <= 0 || len(candidates) == 0 {
		return nil, stats
	}
	// Order candidates by the cheap lower bound so likely-close ones are
	// evaluated first, which tightens the pruning threshold early.
	type cand struct {
		sig Signature
		lb  int
	}
	cs := make([]cand, len(candidates))
	for i, c := range candidates {
		cs[i] = cand{c, ted.LowerBound(query.Tree, c.Tree)}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].lb != cs[j].lb {
			return cs[i].lb < cs[j].lb
		}
		return cs[i].sig.Node < cs[j].sig.Node
	})

	var results []Neighbor
	kth := func() int {
		if len(results) < l {
			return -1 // no threshold yet
		}
		return results[len(results)-1].Dist
	}
	insert := func(n Neighbor) {
		results = append(results, n)
		sortNeighbors(results)
		if len(results) > l {
			results = results[:l]
		}
	}
	for _, c := range cs {
		if t := kth(); t >= 0 && c.lb > t {
			stats.PrunedByBound++
			continue
		}
		stats.FullEvaluations++
		d := ted.Distance(query.Tree, c.sig.Tree)
		if t := kth(); t < 0 || d < t || (d == t && len(results) < l) {
			insert(Neighbor{c.sig.Node, d})
		}
	}
	return results, stats
}

// PruneStats reports the work profile of a pruned query.
type PruneStats struct {
	FullEvaluations int // candidates that paid a full TED* computation
	PrunedByBound   int // candidates skipped via the padding lower bound
}

// LowerBound exposes the padding lower bound on NED between two
// signatures: a valid lower bound on Between(a, b).
func LowerBound(a, b Signature) int {
	return ted.LowerBound(a.Tree, b.Tree)
}

// PrefixDistance evaluates NED on the depth-truncated signatures — the
// §10 lower-bound heuristic. With kPrefix >= both tree heights it equals
// Between(a, b).
func PrefixDistance(a, b Signature, kPrefix int) int {
	ta := truncated(a.Tree, kPrefix)
	tb := truncated(b.Tree, kPrefix)
	return ted.Distance(ta, tb)
}

func truncated(t *tree.Tree, k int) *tree.Tree {
	if k >= t.Height() {
		return t
	}
	return t.Truncate(k)
}
