package ned

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"ned/internal/graph"
	"ned/internal/tree"
)

func TestSignaturesParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 200, 500)
	var nodes []graph.NodeID
	for v := 0; v < 200; v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	serial := Signatures(g, nodes, 3)
	for _, workers := range []int{0, 1, 4, 32} {
		par := SignaturesParallel(g, nodes, 3, BatchOptions{Workers: workers})
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: length %d", workers, len(par))
		}
		for i := range par {
			if par[i].Node != serial[i].Node || !tree.Isomorphic(par[i].Tree, serial[i].Tree) {
				t.Fatalf("workers=%d: signature %d differs", workers, i)
			}
		}
	}
}

func TestDistanceMatrixProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g1 := randomGraph(rng, 60, 140)
	g2 := randomGraph(rng, 60, 140)
	var nodes []graph.NodeID
	for v := 0; v < 25; v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	as := Signatures(g1, nodes, 2)
	bs := Signatures(g2, nodes, 2)
	m := DistanceMatrix(as, bs, BatchOptions{})
	if len(m) != len(as) || len(m[0]) != len(bs) {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	// Spot check against direct computation.
	for i := 0; i < len(as); i += 7 {
		for j := 0; j < len(bs); j += 5 {
			if want := Between(as[i], bs[j]); m[i][j] != want {
				t.Fatalf("m[%d][%d] = %d, want %d", i, j, m[i][j], want)
			}
		}
	}
}

func TestTopLParallelMatchesTopL(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g1 := randomGraph(rng, 100, 250)
	g2 := randomGraph(rng, 100, 250)
	query := NewSignature(g1, 0, 3)
	var nodes []graph.NodeID
	for v := 0; v < 100; v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	cands := Signatures(g2, nodes, 3)
	want := TopL(query, cands, 7)
	got := TopLParallel(query, cands, 7, BatchOptions{Workers: 8})
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if res := TopLParallel(query, nil, 3, BatchOptions{}); res != nil {
		t.Error("empty candidates should return nil")
	}
}

func TestSignaturePersistenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 80, 200)
	var nodes []graph.NodeID
	for v := 0; v < 30; v++ {
		nodes = append(nodes, graph.NodeID(v*2))
	}
	sigs := Signatures(g, nodes, 3)

	var buf bytes.Buffer
	if err := WriteSignatures(&buf, sigs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSignatures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sigs) {
		t.Fatalf("round trip changed count: %d -> %d", len(sigs), len(back))
	}
	for i := range back {
		if back[i].Node != sigs[i].Node || back[i].K != sigs[i].K {
			t.Fatalf("signature %d metadata changed", i)
		}
		if Between(back[i], sigs[i]) != 0 {
			t.Fatalf("signature %d tree changed", i)
		}
	}
}

func TestSignaturePersistenceFile(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 40, 90)
	sigs := Signatures(g, []graph.NodeID{1, 2, 3}, 2)
	path := filepath.Join(t.TempDir(), "sigs.txt")
	if err := SaveSignaturesFile(path, sigs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSignaturesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("loaded %d signatures", len(back))
	}
	if _, err := LoadSignaturesFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestReadSignaturesErrors(t *testing.T) {
	cases := []string{
		"x 3 0,0\n",
		"1 y 0,0\n",
		"1 3 0,zz\n",
		"1\n",
	}
	for _, c := range cases {
		if _, err := ReadSignatures(strings.NewReader(c)); err == nil {
			t.Errorf("ReadSignatures(%q) should fail", c)
		}
	}
	// Single-node tree (empty encoding) is valid.
	sigs, err := ReadSignatures(strings.NewReader("5 2 \n"))
	if err != nil || len(sigs) != 1 || sigs[0].Tree.Size() != 1 {
		t.Errorf("single-node signature failed: %v %v", sigs, err)
	}
}
