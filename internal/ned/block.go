package ned

import (
	"math/bits"
	"slices"

	"ned/internal/tree"
)

// This file wraps the columnar profile arenas (internal/tree) into the
// candidate block the linear and pruned scans sweep: one arena for the
// out-trees, one for the in-trees when the corpus is directed, plus the
// slot permutation sorted by node that makes counting sort reproduce
// cascadeOrder's canonical (padding bound, node) order. The block is
// compiled when a scan backend is built or mutated and is immutable
// afterwards, so epoch clones share it; the item slice and the block
// are index-aligned (slot i describes items[i]).

// profileBlock is the struct-of-arrays form of a scan backend's item
// profiles. nil (or a failed compile) means the backend runs the
// scalar per-candidate cascade with identical results.
type profileBlock struct {
	out *tree.ProfileArena
	in  *tree.ProfileArena // nil for undirected corpora
	n   int

	// byNode holds the slots sorted ascending by node ID — the stable
	// iteration order that lets blockOrder's counting sort break padding
	// ties by node, matching the comparison sort bit for bit.
	byNode []int32
}

// compileBlock builds the block over items, or returns nil when the
// batch cannot take the block path: any item unprofiled, or a mix of
// directed and undirected items. Callers treat nil as "use the scalar
// cascade".
func compileBlock(items []Item) *profileBlock {
	if len(items) == 0 {
		return nil
	}
	directed := items[0].In != nil
	outs := make([]*tree.Profile, len(items))
	var ins []*tree.Profile
	if directed {
		ins = make([]*tree.Profile, len(items))
	}
	for i := range items {
		it := &items[i]
		if it.OutP == nil || (it.In != nil) != directed {
			return nil
		}
		outs[i] = it.OutP
		if directed {
			if it.InP == nil {
				return nil
			}
			ins[i] = it.InP
		}
	}
	blk := &profileBlock{out: tree.CompileArena(outs), n: len(items)}
	if blk.out == nil {
		return nil
	}
	if directed {
		if blk.in = tree.CompileArena(ins); blk.in == nil {
			return nil
		}
	}
	blk.byNode = make([]int32, len(items))
	for i := range blk.byNode {
		blk.byNode[i] = int32(i)
	}
	slices.SortFunc(blk.byNode, func(a, b int32) int {
		if items[a].Node < items[b].Node {
			return -1
		}
		if items[a].Node > items[b].Node {
			return 1
		}
		return 0
	})
	return blk
}

// bounds sweeps the size and padding tiers over the whole block,
// filling the per-slot bound arrays (len >= b.n each). It reports false
// when the query side lacks the profiles the kernels need — the scan
// then falls back to the scalar path. The values are bit-identical to
// itemCascadeBounds on every slot (kernels_test.go).
func (b *profileBlock) bounds(q Item, sizeB, padB []int32) bool {
	if q.OutP == nil {
		return false
	}
	directed := b.in != nil && q.In != nil
	if directed && q.InP == nil {
		return false
	}
	sizeB, padB = sizeB[:b.n], padB[:b.n]
	for i := range sizeB {
		sizeB[i], padB[i] = 0, 0
	}
	sizeTierBlock(q.OutP.Size, b.out.Sizes, sizeB)
	paddingTierBlock(q.OutP.Levels, b.out.LevOff, b.out.Levels, padB)
	if directed {
		sizeTierBlock(q.InP.Size, b.in.Sizes, sizeB)
		paddingTierBlock(q.InP.Levels, b.in.LevOff, b.in.Levels, padB)
	}
	return true
}

// labelTier runs the lazy label tier for one slot at threshold t:
// the O(1) combined-width gate first, the per-level merges only when
// the gate says the tier could fire — decision-identical to
// labelTierPrunes, reading the candidate side off the arenas.
func (b *profileBlock) labelTier(q Item, slot, t int) bool {
	directed := b.in != nil && q.In != nil
	cap := (int(q.OutP.MaxLevel) + int(b.out.MaxW[slot]) + 3) / 4
	if directed {
		cap += (int(q.InP.MaxLevel) + int(b.in.MaxW[slot]) + 3) / 4
	}
	if cap <= t {
		return false
	}
	term := labelTermArena(q.OutP.Levels, q.OutP.Labels, b.out.SlotLevels(slot), b.out.SlotLabels(slot))
	if directed {
		term += labelTermArena(q.InP.Levels, q.InP.Labels, b.in.SlotLevels(slot), b.in.SlotLabels(slot))
	}
	return term > t
}

// blockThresholdCap bounds the radii the block Range path serves:
// beyond it the int32 tier arithmetic could not represent the
// threshold, and a radius that large prunes nothing anyway, so those
// queries take the scalar path.
const blockThresholdCap = 1 << 30

// rangeBlockSurvivors runs the whole filter cascade over the block at
// the static threshold r and returns the slots that reach the verify
// stage, in slot order: the size and padding tiers fold into a
// survivor bitmap in one kernel sweep, then the lazy label tier walks
// only the set bits. ok is false when the scan must take the scalar
// path instead — no block, a block misaligned with the item slice, an
// unprofiled query, or a radius beyond the int32 tier arithmetic. All
// counter accounting for the filtered slots happens here; the caller
// verifies the survivors (which records the verify outcomes).
func rangeBlockSurvivors(q Item, items []Item, blk *profileBlock, r int, cs *counterSet) ([]int32, bool) {
	if blk == nil || blk.n != len(items) || r < 0 || r >= blockThresholdCap {
		return nil, false
	}
	sizeB := make([]int32, blk.n)
	padB := make([]int32, blk.n)
	if !blk.bounds(q, sizeB, padB) {
		return nil, false
	}
	cs.blockSweep(blk.n)
	words := make([]uint64, (blk.n+63)/64)
	szPruned, padPruned := tierFilterBlock(sizeB, padB, int32(r), words)
	cs.cascadePruneBulk(int64(szPruned), int64(padPruned))
	survivors := make([]int32, 0, blk.n-szPruned-padPruned)
	for w, word := range words {
		base := int32(w) << 6
		for word != 0 {
			j := base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			if blk.labelTier(q, int(j), r) {
				cs.cascadePrune(tierLabel)
				continue
			}
			survivors = append(survivors, j)
		}
	}
	cs.blockSurviveBulk(int64(blk.n-szPruned), int64(blk.n-szPruned-padPruned), int64(len(survivors)))
	return survivors, true
}
