package ned

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Executor is a bounded pool of reusable worker goroutines shared by
// everything a Corpus fans out: per-shard query routing (shard.go) and
// BatchKNN's per-signature fan-out. Before it existed every BatchKNN
// call spun up (and tore down) a private goroutine pool; the executor
// keeps workers warm across calls and bounds total concurrency at one
// configured width no matter how many fan-outs overlap.
//
// Scheduling never blocks and never deadlocks on nested use: a task is
// handed to an idle pooled worker if one is waiting, run on a freshly
// spawned worker if the pool is below capacity, and otherwise executed
// inline by the submitter — which is exactly the backpressure a
// saturated pool wants, and makes fan-outs issued from inside a worker
// (BatchKNN queries fanning out across shards) degrade to sequential
// execution instead of deadlocking.
type Executor struct {
	max   int
	work  chan func()   // unbuffered: handoff to a worker mid-wait
	slots chan struct{} // live-worker tokens, capacity max
}

// executorIdle is how long a pooled worker waits for its next task
// before exiting. Workers respawn on demand, so an idle executor decays
// to zero goroutines instead of pinning a pool for the corpus lifetime
// (a Corpus has no Close).
const executorIdle = 100 * time.Millisecond

// NewExecutor returns an executor of the given width; <= 0 means
// GOMAXPROCS.
func NewExecutor(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{
		max:   workers,
		work:  make(chan func()),
		slots: make(chan struct{}, workers),
	}
}

// Workers reports the executor's width.
func (e *Executor) Workers() int { return e.max }

// Go schedules fn: idle pooled worker, new worker below capacity, or
// inline on the caller. It never blocks.
func (e *Executor) Go(fn func()) {
	select {
	case e.work <- fn:
		return
	default:
	}
	select {
	case e.work <- fn:
	case e.slots <- struct{}{}:
		go e.worker(fn)
	default:
		fn()
	}
}

// worker runs fn, then serves handed-off tasks until it has been idle
// for executorIdle, releasing its slot on exit.
func (e *Executor) worker(fn func()) {
	timer := time.NewTimer(executorIdle)
	defer timer.Stop()
	for {
		fn()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(executorIdle)
		select {
		case fn = <-e.work:
		case <-timer.C:
			// Handoff on e.work is synchronous (the channel is unbuffered
			// and senders never block on it), so once this case is taken no
			// task can have been committed to this worker.
			<-e.slots
			return
		}
	}
}

// Do runs fn(i) for i in [0, n) across at most `workers` concurrent
// participants drawn from the pool (workers <= 0 means the executor
// width), work-stealing indices off a shared counter. It stops handing
// out new indices as soon as ctx is canceled and returns ctx.Err();
// indices already claimed still finish (fn must stay safe to run after
// cancellation), but fn bodies that check ctx themselves — every index
// backend does — abort promptly too.
func (e *Executor) Do(ctx context.Context, n, workers int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if workers <= 0 || workers > e.max {
		workers = e.max
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		e.Go(func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		})
	}
	wg.Wait()
	return ctx.Err()
}
