package ned

import (
	"math/rand"
	"testing"

	"ned/internal/graph"
	"ned/internal/ted"
	"ned/internal/tree"
)

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func TestDistanceIdenticalNeighborhoods(t *testing.T) {
	// Interior nodes of long paths in two different graphs have
	// isomorphic k-adjacent trees for small k.
	g1 := lineGraph(20)
	g2 := lineGraph(30)
	if d := Distance(g1, 10, g2, 15, 3); d != 0 {
		t.Errorf("interior path nodes: distance = %d, want 0", d)
	}
	// An endpoint differs from an interior node.
	if d := Distance(g1, 0, g2, 15, 3); d == 0 {
		t.Error("endpoint vs interior should differ")
	}
}

func TestDistanceMatchesSignatureDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g1 := randomGraph(rng, 60, 150)
	g2 := randomGraph(rng, 60, 150)
	for i := 0; i < 50; i++ {
		u := graph.NodeID(rng.Intn(60))
		v := graph.NodeID(rng.Intn(60))
		want := Distance(g1, u, g2, v, 3)
		got := Between(NewSignature(g1, u, 3), NewSignature(g2, v, 3))
		if got != want {
			t.Fatalf("pair %d: signature distance %d != direct %d", i, got, want)
		}
	}
}

func TestDistanceSymmetricAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g1 := randomGraph(rng, 50, 120)
	g2 := randomGraph(rng, 50, 120)
	for i := 0; i < 50; i++ {
		u := graph.NodeID(rng.Intn(50))
		v := graph.NodeID(rng.Intn(50))
		if d1, d2 := Distance(g1, u, g2, v, 3), Distance(g2, v, g1, u, 3); d1 != d2 {
			t.Fatalf("pair %d: asymmetric %d vs %d", i, d1, d2)
		}
	}
}

func TestDistanceDirected(t *testing.T) {
	// Star pointing out vs star pointing in: outgoing trees differ,
	// incoming trees differ, both contribute.
	bOut := graph.NewBuilder(4, true)
	bOut.AddEdge(0, 1)
	bOut.AddEdge(0, 2)
	bOut.AddEdge(0, 3)
	gOut := bOut.Build()
	bIn := graph.NewBuilder(4, true)
	bIn.AddEdge(1, 0)
	bIn.AddEdge(2, 0)
	bIn.AddEdge(3, 0)
	gIn := bIn.Build()

	if d := DistanceDirected(gOut, 0, gOut, 0, 2); d != 0 {
		t.Errorf("self comparison = %d, want 0", d)
	}
	d := DistanceDirected(gOut, 0, gIn, 0, 2)
	// Outgoing trees: star(3) vs single node -> 3; incoming symmetric -> 3.
	if d != 6 {
		t.Errorf("out-star vs in-star = %d, want 6", d)
	}
	// Undirected equivalence: directed NED on undirected graphs = 2x NED.
	g := lineGraph(10)
	if d, u := DistanceDirected(g, 2, g, 5, 2), Distance(g, 2, g, 5, 2); d != 2*u {
		t.Errorf("directed on undirected = %d, want 2*%d", d, u)
	}
}

func TestWeightedDistanceUnitEqualsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g1 := randomGraph(rng, 40, 100)
	g2 := randomGraph(rng, 40, 100)
	for i := 0; i < 30; i++ {
		u := graph.NodeID(rng.Intn(40))
		v := graph.NodeID(rng.Intn(40))
		want := float64(Distance(g1, u, g2, v, 2))
		if got := WeightedDistance(g1, u, g2, v, 2, ted.UnitWeights{}); got != want {
			t.Fatalf("pair %d: weighted %v != %v", i, got, want)
		}
	}
}

func TestNearestSetAllMinima(t *testing.T) {
	g := lineGraph(30)
	query := NewSignature(g, 15, 2)
	var nodes []graph.NodeID
	for v := 0; v < 30; v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	cands := Signatures(g, nodes, 2)
	nn := NearestSet(query, cands)
	if len(nn) == 0 {
		t.Fatal("empty nearest set")
	}
	// Every interior node has distance 0 to the query; the set must
	// contain all of them and nothing farther.
	for _, n := range nn {
		if n.Dist != 0 {
			t.Errorf("nearest set contains non-minimal distance %d", n.Dist)
		}
	}
	// Interior nodes 2..27 share the same 2-adjacent tree shape.
	if len(nn) != 26 {
		t.Errorf("nearest set size = %d, want 26 interior nodes", len(nn))
	}
}

func TestTopLOrderingAndTies(t *testing.T) {
	g := lineGraph(12)
	query := NewSignature(g, 6, 2)
	var nodes []graph.NodeID
	for v := 0; v < 12; v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	cands := Signatures(g, nodes, 2)
	top := TopL(query, cands, 5)
	if len(top) != 5 {
		t.Fatalf("TopL returned %d results", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Dist < top[i-1].Dist {
			t.Error("TopL not sorted by distance")
		}
		if top[i].Dist == top[i-1].Dist && top[i].Node < top[i-1].Node {
			t.Error("TopL ties not broken by node ID")
		}
	}
	if ties := Ties(top); ties == 0 {
		t.Error("interior path nodes should produce ties at k=2")
	}
	// l larger than candidates.
	if all := TopL(query, cands, 100); len(all) != 12 {
		t.Errorf("oversized l returned %d", len(all))
	}
}

func TestMonotonicityAcrossK(t *testing.T) {
	// §10 in its NED form: distances should (statistically) not decrease
	// with k. Tie artifacts allow rare dips; assert the aggregate trend.
	rng := rand.New(rand.NewSource(4))
	g1 := randomGraph(rng, 80, 160)
	g2 := randomGraph(rng, 80, 160)
	violations, trials := 0, 0
	for i := 0; i < 60; i++ {
		u := graph.NodeID(rng.Intn(80))
		v := graph.NodeID(rng.Intn(80))
		prev := -1
		for k := 1; k <= 4; k++ {
			d := Distance(g1, u, g2, v, k)
			if prev >= 0 && d < prev {
				violations++
				break
			}
			prev = d
		}
		trials++
	}
	if violations > trials/10 {
		t.Errorf("monotonicity violated in %d/%d sweeps", violations, trials)
	}
}

func TestHausdorffBasics(t *testing.T) {
	g1 := lineGraph(10)
	g2 := lineGraph(10)
	if h := Hausdorff(g1, g2, 2); h != 0 {
		t.Errorf("identical graphs: H = %d, want 0", h)
	}
	// A line and a star differ structurally.
	b := graph.NewBuilder(10, false)
	for i := 1; i < 10; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	star := b.Build()
	if h := Hausdorff(g1, star, 2); h == 0 {
		t.Error("line vs star: H should be positive")
	}
	// Symmetry.
	if Hausdorff(g1, star, 2) != Hausdorff(star, g1, 2) {
		t.Error("Hausdorff must be symmetric")
	}
}

func TestHausdorffSampled(t *testing.T) {
	g1 := lineGraph(40)
	g2 := lineGraph(50)
	nodes1 := []graph.NodeID{10, 20, 30}
	nodes2 := []graph.NodeID{15, 25, 35}
	if h := HausdorffSampled(g1, nodes1, g2, nodes2, 2); h != 0 {
		t.Errorf("interior samples of two lines: H = %d, want 0", h)
	}
}

func TestSignatureTreeMatchesKAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 50, 120)
	sig := NewSignature(g, 7, 3)
	want, _ := tree.KAdjacent(g, 7, 3)
	if !tree.Isomorphic(sig.Tree, want) {
		t.Error("signature tree differs from KAdjacent extraction")
	}
	if sig.Node != 7 || sig.K != 3 {
		t.Errorf("signature metadata wrong: %+v", sig)
	}
}
