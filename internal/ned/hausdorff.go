package ned

import (
	"sort"

	"ned/internal/graph"
	"ned/internal/ted"
)

func sortSlice(ns []Neighbor, less func(a, b Neighbor) bool) {
	sort.Slice(ns, func(i, j int) bool { return less(ns[i], ns[j]) })
}

// Hausdorff returns the Hausdorff graph-to-graph distance of Appendix A
// (Definition 9) built on NED: H(A,B) = max(h(A,B), h(B,A)) with
// h(A,B) = max_{a∈A} min_{b∈B} δ_T(T(a,k), T(b,k)).
//
// Because NED is a metric, H is a metric on graphs (up to the usual
// identification of graphs at Hausdorff distance zero). The computation
// is O(|A|·|B|) distance evaluations; sampling variants belong to the
// caller.
func Hausdorff(ga, gb *graph.Graph, k int) int {
	sa := allSignatures(ga, k)
	sb := allSignatures(gb, k)
	return hausdorffSets(sa, sb)
}

// HausdorffSampled is Hausdorff over node subsets, for large graphs.
func HausdorffSampled(ga *graph.Graph, nodesA []graph.NodeID, gb *graph.Graph, nodesB []graph.NodeID, k int) int {
	sa := Signatures(ga, nodesA, k)
	sb := Signatures(gb, nodesB, k)
	return hausdorffSets(sa, sb)
}

func allSignatures(g *graph.Graph, k int) []Signature {
	nodes := make([]graph.NodeID, g.NumNodes())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	return Signatures(g, nodes, k)
}

func hausdorffSets(sa, sb []Signature) int {
	return maxInt(directedHausdorff(sa, sb), directedHausdorff(sb, sa))
}

func directedHausdorff(from, to []Signature) int {
	comp := tedComputers.Get().(*ted.Computer)
	defer tedComputers.Put(comp)
	worst := 0
	for _, a := range from {
		best := -1
		for _, b := range to {
			// Only a strict improvement on the running minimum matters,
			// so the TED* computation may abandon any pair that provably
			// costs best or more.
			budget := ted.Unbounded
			if best >= 0 {
				budget = best - 1
			}
			d, out := comp.DistanceAtMost(a.Tree, b.Tree, budget)
			if out != ted.OutcomeExact {
				continue // d >= best: cannot improve the minimum
			}
			if best == -1 || d < best {
				best = d
			}
			if best == 0 {
				break
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
