package ned

import (
	"context"
	"fmt"
	"testing"

	"ned/internal/graph"
	"ned/internal/tree"
)

// profiledCopy returns the items compiled against a fresh dictionary,
// leaving the originals unprofiled (Item is a value; profiles are the
// only pointers added).
func profiledCopy(items []Item, dict *tree.Interner) []Item {
	out := append([]Item(nil), items...)
	ProfileItems(out, dict, 2)
	return out
}

// TestCascadeProfiledBackendsAgree is the cascade-path equivalence
// suite at the index layer: every backend, fed fully profiled items and
// a profiled query, must answer KNN and Range node-identically to the
// exhaustive unbudgeted scan over the unprofiled items — the filter
// tiers, the interned-key isomorphism fast path, and the best-first
// orders may only skip work, never change answers. Directed items are
// covered too (summed out/in bounds).
func TestCascadeProfiledBackendsAgree(t *testing.T) {
	ctx := context.Background()
	for _, directed := range []bool{false, true} {
		for trial := int64(0); trial < 3; trial++ {
			g := randomDirTestGraph(70, 160, 40+trial, directed)
			var nodes []graph.NodeID
			for v := 0; v < g.NumNodes(); v++ {
				nodes = append(nodes, graph.NodeID(v))
			}
			items := BuildItems(g, nodes, 2, directed, 2)
			dict := tree.NewInterner()
			profiled := profiledCopy(items, dict)
			query := NewItem(randomDirTestGraph(50, 100, 90+trial, directed), 0, 2, directed)
			pq := query
			ProfileItem(&pq, dict)

			ref := exhaustiveKNN(query, items, 9)
			var refRange []Neighbor
			for _, it := range items {
				if d := ItemDistance(query, it); d <= 4 {
					refRange = append(refRange, Neighbor{Node: it.Node, Dist: d})
				}
			}
			sortNeighborsCanonical(refRange)

			for name, ix := range allTestBackends(profiled) {
				got, err := ix.KNN(ctx, pq, 9)
				if err != nil {
					t.Fatalf("%s KNN: %v", name, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(ref) {
					t.Errorf("directed=%v trial %d %s: profiled KNN %v, exhaustive %v",
						directed, trial, name, got, ref)
				}
				gotRange, err := ix.Range(ctx, pq, 4)
				if err != nil {
					t.Fatalf("%s Range: %v", name, err)
				}
				if fmt.Sprint(gotRange) != fmt.Sprint(refRange) {
					t.Errorf("directed=%v trial %d %s: profiled Range %v, exhaustive %v",
						directed, trial, name, gotRange, refRange)
				}
				c := ix.Counters()
				if c.LowerBoundPrunes != c.SizePrunes+c.PaddingPrunes+c.LabelPrunes {
					t.Errorf("%s: LowerBoundPrunes=%d != size %d + padding %d + label %d",
						name, c.LowerBoundPrunes, c.SizePrunes, c.PaddingPrunes, c.LabelPrunes)
				}
			}
		}
	}
}

func randomDirTestGraph(n, m int, seed int64, directed bool) *graph.Graph {
	if !directed {
		return randomTestGraph(n, m, seed)
	}
	g := randomTestGraph(n, m, seed)
	b := graph.NewBuilder(n, true)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// TestCascadeTiersFire drives a profiled scan with a tight result set
// and checks the tier counters actually attribute prunes: on a mixed
// workload at least one cascade tier must fire, and the canon fast
// path must rank an isomorphic duplicate at distance 0 without error.
func TestCascadeTiersFire(t *testing.T) {
	ctx := context.Background()
	g := randomTestGraph(120, 260, 5)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	items := BuildItems(g, nodes, 2, false, 2)
	dict := tree.NewInterner()
	profiled := profiledCopy(items, dict)

	// Query with an item from the corpus itself: its isomorphic twin is
	// indexed, so the interned-key fast path must surface it at 0.
	pq := profiled[17]
	for name, ix := range map[string]Index{
		"linear": NewLinearBackend(profiled, 2),
		"pruned": NewPrunedLinearBackend(profiled),
	} {
		got, err := ix.KNN(ctx, pq, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) == 0 || got[0].Dist != 0 {
			t.Fatalf("%s: self-query top hit %v, want distance 0", name, got)
		}
		c := ix.Counters()
		if c.LowerBoundPrunes == 0 {
			t.Errorf("%s: no cascade prunes on a 120-item scan with l=3", name)
		}
		if c.LowerBoundPrunes != c.SizePrunes+c.PaddingPrunes+c.LabelPrunes {
			t.Errorf("%s: tier sum %d+%d+%d != LowerBoundPrunes %d",
				name, c.SizePrunes, c.PaddingPrunes, c.LabelPrunes, c.LowerBoundPrunes)
		}
	}
}

// TestCascadeLabelTierFires pins the tier the cheaper bounds cannot
// express: candidates with the exact level-size profile of the query
// but different wiring have size and padding bounds of 0, so only the
// label-multiset tier can dismiss them without TED* work. A self-query
// with l=1 drives the threshold to 0 after the first hit; the twin
// with identical levels must then be label-pruned, not evaluated.
func TestCascadeLabelTierFires(t *testing.T) {
	ctx := context.Background()
	// Same level sizes (1,2,2), different wiring: in a both depth-1
	// nodes have one child; in b one has two and one has none.
	a := tree.MustNew([]int32{-1, 0, 0, 1, 2})
	bTree := tree.MustNew([]int32{-1, 0, 0, 1, 1})
	dict := tree.NewInterner()
	items := []Item{
		{Node: 1, K: 2, Out: a},
		{Node: 2, K: 2, Out: bTree},
	}
	ProfileItems(items, dict, 1)
	q := items[0]
	if d := ItemDistance(q, items[1]); d == 0 {
		t.Fatal("test trees are isomorphic; pick different wiring")
	}
	ix := NewPrunedLinearBackend(items)
	got, err := ix.KNN(ctx, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Node != 1 || got[0].Dist != 0 {
		t.Fatalf("self-query returned %v, want node 1 at 0", got)
	}
	c := ix.Counters()
	if c.LabelPrunes != 1 {
		t.Errorf("LabelPrunes = %d, want 1 (twin has equal levels, different wiring); counters %+v",
			c.LabelPrunes, c)
	}
}

// TestCascadeBoundsDominance spot-checks the item-level bound chain the
// best-first orders sort by, including directed summing: size <= pad <=
// bound <= exact distance.
func TestCascadeBoundsDominance(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := randomDirTestGraph(60, 130, 3, directed)
		var nodes []graph.NodeID
		for v := 0; v < g.NumNodes(); v++ {
			nodes = append(nodes, graph.NodeID(v))
		}
		items := BuildItems(g, nodes, 3, directed, 2)
		dict := tree.NewInterner()
		profiled := profiledCopy(items, dict)
		q := profiled[0]
		for _, it := range profiled {
			cb := itemCascadeBounds(q, it)
			lt, _ := labelTierPrunes(q, it, -1) // t=-1 forces the merge
			d := ItemDistance(q, it)
			if int(cb.size) > int(cb.pad) || int(cb.pad) > d || lt > d {
				t.Fatalf("directed=%v node %d: chain size=%d pad=%d labelterm=%d exact=%d",
					directed, it.Node, cb.size, cb.pad, lt, d)
			}
			if int(cb.pad) != ItemLowerBound(q, it) {
				t.Fatalf("directed=%v node %d: profile padding %d != tree-walk %d",
					directed, it.Node, cb.pad, ItemLowerBound(q, it))
			}
		}
	}
}
