package ned

import (
	"context"
	"slices"

	"ned/internal/ted"
	"ned/internal/tree"
)

// This file is the filter–verify cascade every index backend evaluates
// candidates through: a monotone chain of precompiled lower bounds —
//
//	size |n1−n2|  <=  padding Σ|L_d gaps|  <=  label-multiset  <=  TED*
//
// — each tier read off flat per-item Profiles (internal/tree) compiled
// once at extraction, insert, or snapshot-load time, so the per-
// candidate filter costs a few int32 scans instead of tree walks and
// string compares. A candidate is dismissed at the first tier exceeding
// the search threshold; survivors reach the verify stage: an interned-
// key isomorphism fast path (equal AHU keys mean distance 0 without any
// matching work), profile-based canonical pair orientation, and finally
// the budgeted TED* of PR 2. Pruning never changes results — every tier
// lower-bounds the exact distance (proofs in internal/ted/profile.go),
// and the verify stage returns exactly what the unprofiled path would.
//
// Items without profiles (direct backend construction, legacy helpers)
// fall back to the PR-2 behavior: tree-walk bounds and string-compare
// orientation. Answers are identical either way; only the work differs.
//
// Block-vs-scalar kernel contract: the tiers exist in two forms that
// MUST stay decision-identical. The scalar kernels in this file
// (sizeBoundProfiled, padBoundProfiled, labelTierPrunes) evaluate one
// candidate at a time through its *tree.Profile pointers — the BK and
// VP backends, whose traversal order is dictated by tree geometry, run
// every budgeted evaluation through them via cascadeDistanceAtMost.
// The block kernels (kernels.go) evaluate the same tiers over a whole
// candidate block laid out as a struct-of-arrays profile arena
// (block.go): contiguous int32 sweeps emitting per-slot bound values
// and survivor bitmaps, no per-candidate pointer chasing. The linear
// and pruned scans consume blocks. For any (query, candidate,
// threshold), block and scalar kernels admit and dismiss identically
// and produce equal bound values — kernels_test.go pins this
// bit-for-bit over fuzz-seeded corpora — so all four backends stay
// node-identical. Whatever the filter path, survivors reach one shared
// verify stage (verifyDistanceAtMost).

// cascadeTier names the filter tier that dismissed a candidate; the
// counters report the per-tier breakdown.
type cascadeTier uint8

const (
	tierSize cascadeTier = iota
	tierPadding
	tierLabel
)

// ProfileItem compiles its signature trees into Profiles against the
// corpus dictionary (idempotent: trees already profiled are kept).
func ProfileItem(it *Item, dict *tree.Interner) {
	if it.Out != nil && it.OutP == nil {
		it.OutP = dict.ProfileCached(it.Out)
	}
	if it.In != nil && it.InP == nil {
		it.InP = dict.ProfileCached(it.In)
	}
}

// ProfileItems compiles profiles for a batch of items in parallel; the
// dictionary is safe for concurrent interning.
func ProfileItems(items []Item, dict *tree.Interner, workers int) {
	parallelFor(len(items), BatchOptions{Workers: workers}.workers(), func(i int) {
		ProfileItem(&items[i], dict)
	})
}

// ProfileQueryItem compiles a query item's profiles read-only: shapes
// the corpus has never indexed get profile-local labels instead of
// growing the corpus dictionary, so an arbitrary query stream costs
// no corpus memory and no dictionary write lock. Query-only — a
// read-only profile must never be indexed (ProfileItem for that).
func ProfileQueryItem(it *Item, dict *tree.Interner) {
	if it.Out != nil && it.OutP == nil {
		it.OutP = dict.ProfileQueryCached(it.Out)
	}
	if it.In != nil && it.InP == nil {
		it.InP = dict.ProfileQueryCached(it.In)
	}
}

// pairProfiled reports whether every tree pair the distance needs has
// profiles on both sides, i.e. whether the cascade can run.
func pairProfiled(q, it Item) bool {
	if q.OutP == nil || it.OutP == nil {
		return false
	}
	if q.In != nil && it.In != nil && (q.InP == nil || it.InP == nil) {
		return false
	}
	return true
}

// candBound is the precompiled cheap half of one candidate's cascade:
// the size and padding tiers (size <= pad), a handful of int32 loads
// per candidate. The label tier is deliberately NOT precompiled — it
// costs a linear merge per candidate, so the scans evaluate it lazily,
// only for candidates the cheap tiers admit (see labelTermOver).
type candBound struct {
	size, pad int32
}

// tier attributes a prune by the padding value alone to the cheapest
// tier that already decides it. Callers guarantee pad > t.
func (cb candBound) tier(t int) cascadeTier {
	if int(cb.size) > t {
		return tierSize
	}
	return tierPadding
}

// itemCascadeBounds computes the cheap cascade tiers for one candidate
// — summed over the out/in tree pairs for directed items — for
// best-first ordering, where every candidate needs a key regardless of
// threshold. Unprofiled pairs fall back to the tree-walk bounds.
func itemCascadeBounds(q, it Item) candBound {
	if !pairProfiled(q, it) {
		return candBound{size: int32(itemSizeBound(q, it)), pad: int32(ItemLowerBound(q, it))}
	}
	cb := candBound{
		size: int32(ted.SizeBound(q.OutP, it.OutP)),
		pad:  int32(ted.PaddingBound(q.OutP, it.OutP)),
	}
	if q.In != nil && it.In != nil {
		cb.size += int32(ted.SizeBound(q.InP, it.InP))
		cb.pad += int32(ted.PaddingBound(q.InP, it.InP))
	}
	return cb
}

// labelTierPrunes runs the label-multiset tier at threshold t: the
// term (summed over tree pairs) is a valid lower bound on the distance
// in its own right, checked only after the padding tier passed — the
// full tier-2 value is max(padding, term) per pair, so when padding
// <= t only the term can still prune. The O(n) level merges run only
// when the O(1) width cap says the tier could possibly fire: a level's
// multiset difference never exceeds the two levels' combined width, so
// term <= ceil((MaxLevel_a + MaxLevel_b) / 4) per pair. Never prunes
// unprofiled pairs, whose label tier degenerates to the padding bound.
func labelTierPrunes(q, it Item, t int) (term int, pruned bool) {
	if !pairProfiled(q, it) {
		return 0, false
	}
	directed := q.In != nil && it.In != nil
	cap := labelTermCap(q.OutP, it.OutP)
	if directed {
		cap += labelTermCap(q.InP, it.InP)
	}
	if cap <= t {
		return 0, false
	}
	term = ted.LevelLabelTerm(q.OutP, it.OutP)
	if directed {
		term += ted.LevelLabelTerm(q.InP, it.InP)
	}
	return term, term > t
}

// labelTermCap is the largest value one pair's label term can reach.
func labelTermCap(a, b *tree.Profile) int {
	return (int(a.MaxLevel) + int(b.MaxLevel) + 3) / 4
}

// itemSizeBound is tier 0 without profiles: node-count gaps.
func itemSizeBound(q, it Item) int {
	s := ted.SizeLowerBound(q.Out, it.Out)
	if q.In != nil && it.In != nil {
		s += ted.SizeLowerBound(q.In, it.In)
	}
	return s
}

// cascadeDistanceAtMost is the full per-candidate pipeline: the tiers
// gate (cheapest first, each only when the previous one passed), then
// the verify stage runs the budgeted TED*. All counter accounting —
// per-tier prunes, early exits, distance calls — happens here; callers
// must not observe again. The outcome contract is itemDistanceAtMost's:
// OutcomeExact means d is the exact distance; anything else means both
// d and the true distance exceed the budget.
func cascadeDistanceAtMost(c *ted.Computer, q, it Item, budget int, cs *counterSet) (int, ted.Outcome) {
	if budget != ted.Unbounded && pairProfiled(q, it) {
		if s := sizeBoundProfiled(q, it); s > budget {
			cs.cascadePrune(tierSize)
			return s, ted.OutcomePruned
		}
		if p := padBoundProfiled(q, it); p > budget {
			cs.cascadePrune(tierPadding)
			return p, ted.OutcomePruned
		}
		if lt, pruned := labelTierPrunes(q, it, budget); pruned {
			cs.cascadePrune(tierLabel)
			return lt, ted.OutcomePruned
		}
	}
	return verifyDistanceAtMost(c, q, it, budget, cs)
}

func sizeBoundProfiled(q, it Item) int {
	s := ted.SizeBound(q.OutP, it.OutP)
	if q.In != nil && it.In != nil {
		s += ted.SizeBound(q.InP, it.InP)
	}
	return s
}

func padBoundProfiled(q, it Item) int {
	p := ted.PaddingBound(q.OutP, it.OutP)
	if q.In != nil && it.In != nil {
		p += ted.PaddingBound(q.InP, it.InP)
	}
	return p
}

// verifyDistanceAtMost is the verify stage alone, for callers that
// already ran the tiers (the best-first scans precompile them per
// candidate). It mirrors itemDistanceAtMost — out-tree first, the
// in-tree under whatever budget is left — with the profile fast paths,
// and records the outcome on cs.
func verifyDistanceAtMost(c *ted.Computer, q, it Item, budget int, cs *counterSet) (int, ted.Outcome) {
	d, out := treeDistanceAtMost(c, q.Out, it.Out, q.OutP, it.OutP, budget)
	if out != ted.OutcomeExact {
		cs.observe(out)
		return d, out
	}
	if q.In != nil && it.In != nil {
		rem := ted.Unbounded
		if budget != ted.Unbounded {
			rem = budget - d
		}
		d2, out2 := treeDistanceAtMost(c, q.In, it.In, q.InP, it.InP, rem)
		if out2 == ted.OutcomePruned {
			// The out-tree comparison already did matching work, so the
			// pair as a whole was abandoned mid-computation.
			out2 = ted.OutcomeAborted
		}
		cs.observe(out2)
		return d + d2, out2
	}
	cs.observe(out)
	return d, out
}

// treeDistanceAtMost is the budgeted TED* on one tree pair, taking
// every profile shortcut available: equal interned AHU keys mean the
// trees are isomorphic — distance 0, no matching work at all — and
// otherwise the canonical pair orientation is decided from the profiles
// (size, height) with tree.Canonical breaking the rare full tie —
// derived lazily, cached on each tree — bit-compatible with ted's
// orient. The computation itself takes the profiled
// faithful-level fast path (ted.Computer.DistanceAtMostProfiled):
// per-level sorted label runs and per-node sorted children collections
// come off the profiles instead of being rebuilt and re-sorted per
// pair, with bit-identical results. Without profiles it is plain
// DistanceAtMost.
func treeDistanceAtMost(c *ted.Computer, t1, t2 *tree.Tree, p1, p2 *tree.Profile, budget int) (int, ted.Outcome) {
	if p1 == nil || p2 == nil {
		return c.DistanceAtMost(t1, t2, budget)
	}
	if p1.Canon == p2.Canon {
		return 0, ted.OutcomeExact
	}
	if profileSwap(t1, t2, p1, p2) {
		t1, t2, p1, p2 = t2, t1, p2, p1
	}
	return c.DistanceAtMostProfiled(t1, t2, p1, p2, budget)
}

// profileSwap mirrors ted's canonical pair orientation — size, then
// height, then AHU encoding — true when the pair must swap. The size
// and height tiers come off the profiles; only a full tie consults
// tree.Canonical, which each tree derives once and caches.
func profileSwap(t1, t2 *tree.Tree, p1, p2 *tree.Profile) bool {
	switch {
	case p1.Size != p2.Size:
		return p1.Size > p2.Size
	case len(p1.Levels) != len(p2.Levels):
		return len(p1.Levels) > len(p2.Levels)
	default:
		return tree.Canonical(t1) > tree.Canonical(t2)
	}
}

// cascadeOrder precompiles every candidate's cheap cascade bounds and
// returns the best-first evaluation order: ascending (padding bound,
// node), so the candidates most likely to rank are evaluated first and
// the shared kth-best threshold tightens as early as possible. When blk
// covers the item slice and the query is profiled, the bounds come from
// one block-kernel sweep over the columnar arenas and the order from a
// counting sort — no per-candidate pointer chasing; otherwise the
// scalar per-item bounds run in parallel and a comparison sort orders
// them. Both paths produce bit-identical bound arrays and the same
// order. sizeB/padB are indexed by the original item position; the
// order holds indices, so nothing item-sized is copied or re-sorted.
func cascadeOrder(ctx context.Context, query Item, items []Item, blk *profileBlock, workers int, cs *counterSet) (order, sizeB, padB []int32, blocked bool, err error) {
	n := len(items)
	sizeB, padB = make([]int32, n), make([]int32, n)
	if blk != nil && blk.n == n && blk.bounds(query, sizeB, padB) {
		cs.blockSweep(n)
		return blockOrder(padB, blk.byNode), sizeB, padB, true, nil
	}
	if err := ParallelForCtx(ctx, n, workers, func(i int) {
		cb := itemCascadeBounds(query, items[i])
		sizeB[i], padB[i] = cb.size, cb.pad
	}); err != nil {
		return nil, nil, nil, false, err
	}
	order = make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if padB[a] != padB[b] {
			return int(padB[a] - padB[b])
		}
		return int(items[a].Node - items[b].Node)
	})
	return order, sizeB, padB, false, nil
}
