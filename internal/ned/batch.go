package ned

import (
	"context"
	"runtime"
	"sync"

	"ned/internal/graph"
	"ned/internal/ted"
)

// BatchOptions controls parallel batch computations. The zero value uses
// all CPUs.
type BatchOptions struct {
	// Workers is the goroutine count; <= 0 means GOMAXPROCS.
	Workers int
}

func (o BatchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SignaturesParallel extracts k-adjacent tree signatures for many nodes
// concurrently. Extraction is read-only on the graph, so workers share
// it safely. Output order matches the input order.
func SignaturesParallel(g *graph.Graph, nodes []graph.NodeID, k int, opts BatchOptions) []Signature {
	out := make([]Signature, len(nodes))
	parallelFor(len(nodes), opts.workers(), func(i int) {
		out[i] = NewSignature(g, nodes[i], k)
	})
	return out
}

// DistanceMatrix computes the full NED matrix between two signature
// sets in parallel: m[i][j] = NED(as[i], bs[j]). Row-major [len(as)][len(bs)].
// Useful for the Hausdorff distance, clustering, and assignment-based
// graph matching on top of NED.
func DistanceMatrix(as, bs []Signature, opts BatchOptions) [][]int {
	m := make([][]int, len(as))
	parallelFor(len(as), opts.workers(), func(i int) {
		row := make([]int, len(bs))
		for j, b := range bs {
			row[j] = ted.Distance(as[i].Tree, b.Tree)
		}
		m[i] = row
	})
	return m
}

// TopLParallel is TopL with the candidate distances evaluated across
// workers. Results are identical to TopL. It is the low-level form of
// the parallel linear index backend (NewLinearBackend).
func TopLParallel(query Signature, candidates []Signature, l int, opts BatchOptions) []Neighbor {
	if l <= 0 || len(candidates) == 0 {
		return nil
	}
	res, _ := NewLinearBackend(ItemsOf(candidates), opts.Workers).KNN(context.Background(), query.Item(), l)
	return res
}

// parallelFor runs fn(i) for i in [0, n) across the given worker count.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
