package ned

import (
	"context"
	"runtime"

	"ned/internal/graph"
)

// BatchOptions controls parallel batch computations. The zero value uses
// all CPUs.
type BatchOptions struct {
	// Workers is the goroutine count; <= 0 means GOMAXPROCS.
	Workers int
}

func (o BatchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SignaturesParallel extracts k-adjacent tree signatures for many nodes
// concurrently. Extraction is read-only on the graph, so workers share
// it safely. Output order matches the input order.
func SignaturesParallel(g *graph.Graph, nodes []graph.NodeID, k int, opts BatchOptions) []Signature {
	out := make([]Signature, len(nodes))
	parallelFor(len(nodes), opts.workers(), func(i int) {
		out[i] = NewSignature(g, nodes[i], k)
	})
	return out
}

// DistanceMatrix computes the full NED matrix between two signature
// sets in parallel: m[i][j] = NED(as[i], bs[j]). Row-major [len(as)][len(bs)].
// Useful for the Hausdorff distance, clustering, and assignment-based
// graph matching on top of NED. Each worker goroutine owns one pooled
// ted.Computer, so the whole matrix reuses a fixed set of TED* scratch
// buffers.
func DistanceMatrix(as, bs []Signature, opts BatchOptions) [][]int {
	m := make([][]int, len(as))
	workers := opts.workers()
	comps := acquireComputers(workers)
	defer releaseComputers(comps)
	parallelForWorkers(len(as), workers, func(w, i int) {
		row := make([]int, len(bs))
		for j, b := range bs {
			row[j] = comps[w].Distance(as[i].Tree, b.Tree)
		}
		m[i] = row
	})
	return m
}

// TopLParallel is TopL with the candidate distances evaluated across
// workers. Results are identical to TopL. It is the low-level form of
// the parallel linear index backend (NewLinearBackend).
func TopLParallel(query Signature, candidates []Signature, l int, opts BatchOptions) []Neighbor {
	if l <= 0 || len(candidates) == 0 {
		return nil
	}
	res, _ := NewLinearBackend(ItemsOf(candidates), opts.Workers).KNN(context.Background(), query.Item(), l)
	return res
}

// parallelFor runs fn(i) for i in [0, n) across the given worker count.
func parallelFor(n, workers int, fn func(i int)) {
	parallelForWorkers(n, workers, func(_, i int) { fn(i) })
}

// parallelForWorkers is parallelFor with the worker index exposed, so
// callers can hand each goroutine its own scratch state. Worker indexes
// are dense in [0, workers). It is the uncancellable form of
// ParallelForCtxWorkers (index.go), which owns the loop implementation.
func parallelForWorkers(n, workers int, fn func(worker, i int)) {
	_ = ParallelForCtxWorkers(context.Background(), n, workers, fn)
}
