package ned

import (
	"context"

	"ned/internal/graph"
)

// This file is the shard router behind the sharded Corpus engine: a
// deterministic node -> shard hash, and query fan-out/merge that keeps
// sharded answers node-identical to a single index over the union of
// the shards' items.
//
// Exactness of the merge: each shard answers over a disjoint item
// subset with the shared canonical (distance, node) order, so
//   - the global top-l is contained in the union of per-shard top-l's
//     (any global winner beats at least the l-th best of its own shard),
//   - a range result is exactly the union of per-shard range results,
// and re-sorting the union canonically and trimming reproduces the
// unsharded answer bit for bit.

// ShardOf deterministically maps a node to one of n shards. The
// splitmix64 finalizer scrambles the (typically dense, clustered) node
// IDs so shards stay balanced regardless of how a graph numbers its
// nodes; the assignment depends only on (node, n), so equal corpora
// partition identically across processes — snapshots reshard on load by
// re-hashing, never by trusting recorded placement.
func ShardOf(v graph.NodeID, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// MergeTopL merges per-shard KNN answers (each canonically sorted) into
// the global canonical top-l.
func MergeTopL(per [][]Neighbor, l int) []Neighbor {
	var out []Neighbor
	for _, ns := range per {
		out = append(out, ns...)
	}
	sortNeighborsCanonical(out)
	if len(out) > l {
		out = out[:l]
	}
	return out
}

// FanKNN answers a KNN query over a sharded index: one KNN(l) per
// non-empty shard, in parallel on the executor, merged canonically. A
// single shard short-circuits to a direct call.
func FanKNN(ctx context.Context, exec *Executor, shards []Index, query Item, l int) ([]Neighbor, error) {
	if len(shards) == 1 {
		return shards[0].KNN(ctx, query, l)
	}
	per, err := fanOut(ctx, exec, shards, func(ctx context.Context, ix Index) ([]Neighbor, error) {
		return ix.KNN(ctx, query, l)
	})
	if err != nil {
		return nil, err
	}
	return MergeTopL(per, l), nil
}

// FanRange answers a range query over a sharded index: per-shard ranges
// in parallel, union re-sorted canonically.
func FanRange(ctx context.Context, exec *Executor, shards []Index, query Item, r int) ([]Neighbor, error) {
	if len(shards) == 1 {
		return shards[0].Range(ctx, query, r)
	}
	per, err := fanOut(ctx, exec, shards, func(ctx context.Context, ix Index) ([]Neighbor, error) {
		return ix.Range(ctx, query, r)
	})
	if err != nil {
		return nil, err
	}
	var out []Neighbor
	for _, ns := range per {
		out = append(out, ns...)
	}
	sortNeighborsCanonical(out)
	return out, nil
}

// fanOut runs one query per non-empty shard across the executor and
// collects the per-shard answers (empty shards are skipped entirely —
// their slot stays nil). The first per-shard error wins.
func fanOut(ctx context.Context, exec *Executor, shards []Index,
	query func(ctx context.Context, ix Index) ([]Neighbor, error)) ([][]Neighbor, error) {
	live := make([]int, 0, len(shards))
	for i, ix := range shards {
		if ix.Len() > 0 {
			live = append(live, i)
		}
	}
	per := make([][]Neighbor, len(shards))
	if len(live) == 0 {
		return per, ctx.Err()
	}
	if len(live) == 1 {
		res, err := query(ctx, shards[live[0]])
		if err != nil {
			return nil, err
		}
		per[live[0]] = res
		return per, nil
	}
	errs := make([]error, len(shards))
	if err := exec.Do(ctx, len(live), 0, func(i int) {
		si := live[i]
		per[si], errs[si] = query(ctx, shards[si])
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return per, nil
}
