package ned

import (
	"context"
	"fmt"

	"ned/internal/graph"
)

// This file is the shard router behind the sharded Corpus engine: a
// deterministic node -> shard hash, the directory-based placement table
// the rebalancer edits on top of it, and query fan-out/merge that keeps
// sharded answers node-identical to a single index over the union of
// the shards' items.
//
// Exactness of the merge: each shard answers over a disjoint item
// subset with the shared canonical (distance, node) order, so
//   - the global top-l is contained in the union of per-shard top-l's
//     (any global winner beats at least the l-th best of its own shard),
//   - a range result is exactly the union of per-shard range results,
// and re-sorting the union canonically and trimming reproduces the
// unsharded answer bit for bit. A reader racing a rebalance may briefly
// observe a node in two shards at once (the move publishes the
// destination epoch before shrinking the source); the merge dedups
// identical (distance, node) entries, so even that window answers
// exactly — a no-op for the steady disjoint state.

// ShardOf deterministically maps a node to one of n shards. The
// splitmix64 finalizer scrambles the (typically dense, clustered) node
// IDs so shards stay balanced regardless of how a graph numbers its
// nodes; the assignment depends only on (node, n), so equal corpora
// seed identical layouts across processes — a snapshot with no recorded
// placement (or loaded under a shard-count override) reshards by
// re-hashing.
func ShardOf(v graph.NodeID, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(v) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// Placement is the directory-based node -> shard map. The seed layout
// is pure hash: Base redirect buckets (one per seed shard), bucket b
// routing to shard Redirect[b], plus node-level Moves overrides. A
// fresh corpus starts with the identity redirect and no moves —
// byte-for-byte the old blind-hash behavior — and the rebalancer edits
// only the table: splitting a hot shard adds Moves entries for the
// nodes it relocates, merging a cold shard repoints its redirect
// buckets and rewrites its moves. Lookup cost is one map probe (skipped
// entirely while Moves is nil) plus one hash.
//
// A Placement is immutable once published (the Corpus shares it through
// the same atomic-epoch discipline as shard indexes); mutators Clone
// first. Snapshots and segments record non-trivial placements so a
// rebalanced corpus restores into the same layout.
type Placement struct {
	Base     int                    // redirect bucket count (the hash domain)
	Shards   int                    // shard slots the table routes into
	Redirect []int32                // len Base: bucket -> shard slot
	Moves    map[graph.NodeID]int32 // node-level overrides; nil when none
}

// NewHashPlacement returns the identity placement over n shards — the
// blind-hash seed layout.
func NewHashPlacement(n int) *Placement {
	if n < 1 {
		n = 1
	}
	p := &Placement{Base: n, Shards: n, Redirect: make([]int32, n)}
	for i := range p.Redirect {
		p.Redirect[i] = int32(i)
	}
	return p
}

// Of returns the shard slot owning node v.
func (p *Placement) Of(v graph.NodeID) int {
	if p.Moves != nil {
		if s, ok := p.Moves[v]; ok {
			return int(s)
		}
	}
	return int(p.Redirect[ShardOf(v, p.Base)])
}

// Trivial reports whether the placement is exactly the blind-hash seed
// layout, in which case persistence layers omit it and readers re-derive
// placement by hashing — the pre-directory format, byte for byte.
func (p *Placement) Trivial() bool {
	if p == nil {
		return true
	}
	if p.Shards != p.Base || len(p.Moves) != 0 {
		return false
	}
	for i, s := range p.Redirect {
		if int(s) != i {
			return false
		}
	}
	return true
}

// Clone returns a deep, independently mutable copy.
func (p *Placement) Clone() *Placement {
	np := &Placement{Base: p.Base, Shards: p.Shards, Redirect: append([]int32(nil), p.Redirect...)}
	if len(p.Moves) > 0 {
		np.Moves = make(map[graph.NodeID]int32, len(p.Moves))
		for v, s := range p.Moves {
			np.Moves[v] = s
		}
	}
	return np
}

// SetMove routes node v to shard s, dropping the override when the
// redirect table already routes it there (so Moves stays minimal and a
// placement whose every move is undone compacts back to trivial).
func (p *Placement) SetMove(v graph.NodeID, s int) {
	if int(p.Redirect[ShardOf(v, p.Base)]) == s {
		delete(p.Moves, v)
		return
	}
	if p.Moves == nil {
		p.Moves = make(map[graph.NodeID]int32)
	}
	p.Moves[v] = int32(s)
}

// Referenced reports which shard slots the table can route a node to.
// Unreferenced slots are retired (their items were merged away); the
// rebalancer reuses them for splits.
func (p *Placement) Referenced() []bool {
	ref := make([]bool, p.Shards)
	for _, s := range p.Redirect {
		if int(s) >= 0 && int(s) < p.Shards {
			ref[s] = true
		}
	}
	for _, s := range p.Moves {
		if int(s) >= 0 && int(s) < p.Shards {
			ref[s] = true
		}
	}
	return ref
}

// Validate checks internal consistency — persistence layers call it on
// loaded placements so corrupt tables fail loudly instead of routing
// nodes out of range.
func (p *Placement) Validate() error {
	if p.Base < 1 || p.Shards < 1 {
		return fmt.Errorf("placement: base=%d shards=%d", p.Base, p.Shards)
	}
	if len(p.Redirect) != p.Base {
		return fmt.Errorf("placement: %d redirect buckets for base %d", len(p.Redirect), p.Base)
	}
	for b, s := range p.Redirect {
		if int(s) < 0 || int(s) >= p.Shards {
			return fmt.Errorf("placement: bucket %d routes to shard %d of %d", b, s, p.Shards)
		}
	}
	for v, s := range p.Moves {
		if v < 0 {
			return fmt.Errorf("placement: move for negative node %d", v)
		}
		if int(s) < 0 || int(s) >= p.Shards {
			return fmt.Errorf("placement: node %d moved to shard %d of %d", v, s, p.Shards)
		}
	}
	return nil
}

// dedupNeighbors drops adjacent duplicates from a canonically sorted
// result — the same (distance, node) entry reported by two shards, which
// only happens in the brief window where a rebalance has published a
// node's destination epoch but not yet shrunk its source.
func dedupNeighbors(ns []Neighbor) []Neighbor {
	w := 0
	for i, n := range ns {
		if i > 0 && n == ns[w-1] {
			continue
		}
		ns[w] = n
		w++
	}
	return ns[:w]
}

// MergeTopL merges per-shard KNN answers (each canonically sorted) into
// the global canonical top-l.
func MergeTopL(per [][]Neighbor, l int) []Neighbor {
	var out []Neighbor
	for _, ns := range per {
		out = append(out, ns...)
	}
	sortNeighborsCanonical(out)
	out = dedupNeighbors(out)
	if len(out) > l {
		out = out[:l]
	}
	return out
}

// FanKNN answers a KNN query over a sharded index: one KNN(l) per
// non-empty shard, in parallel on the executor, merged canonically. A
// single shard short-circuits to a direct call.
func FanKNN(ctx context.Context, exec *Executor, shards []Index, query Item, l int) ([]Neighbor, error) {
	if len(shards) == 1 {
		return shards[0].KNN(ctx, query, l)
	}
	per, err := fanOut(ctx, exec, shards, func(ctx context.Context, ix Index) ([]Neighbor, error) {
		return ix.KNN(ctx, query, l)
	})
	if err != nil {
		return nil, err
	}
	return MergeTopL(per, l), nil
}

// FanRange answers a range query over a sharded index: per-shard ranges
// in parallel, union re-sorted canonically.
func FanRange(ctx context.Context, exec *Executor, shards []Index, query Item, r int) ([]Neighbor, error) {
	if len(shards) == 1 {
		return shards[0].Range(ctx, query, r)
	}
	per, err := fanOut(ctx, exec, shards, func(ctx context.Context, ix Index) ([]Neighbor, error) {
		return ix.Range(ctx, query, r)
	})
	if err != nil {
		return nil, err
	}
	var out []Neighbor
	for _, ns := range per {
		out = append(out, ns...)
	}
	sortNeighborsCanonical(out)
	return dedupNeighbors(out), nil
}

// fanOut runs one query per non-empty shard across the executor and
// collects the per-shard answers (empty shards are skipped entirely —
// their slot stays nil). The first per-shard error wins.
func fanOut(ctx context.Context, exec *Executor, shards []Index,
	query func(ctx context.Context, ix Index) ([]Neighbor, error)) ([][]Neighbor, error) {
	live := make([]int, 0, len(shards))
	for i, ix := range shards {
		if ix.Len() > 0 {
			live = append(live, i)
		}
	}
	per := make([][]Neighbor, len(shards))
	if len(live) == 0 {
		return per, ctx.Err()
	}
	if len(live) == 1 {
		res, err := query(ctx, shards[live[0]])
		if err != nil {
			return nil, err
		}
		per[live[0]] = res
		return per, nil
	}
	errs := make([]error, len(shards))
	if err := exec.Do(ctx, len(live), 0, func(i int) {
		si := live[i]
		per[si], errs[si] = query(ctx, shards[si])
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return per, nil
}
