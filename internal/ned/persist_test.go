package ned

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ned/internal/graph"
	"ned/internal/tree"
)

// TestSignaturesRoundTripLarge serializes a signature whose encoded line
// is far past the old 1 MiB scanner cap (which used to fail the whole
// read) and checks it survives a round trip bit-for-bit.
func TestSignaturesRoundTripLarge(t *testing.T) {
	// A 600k-node star encodes as ~1.2 MB of "0," repetitions.
	const n = 600_000
	parent := make([]int32, n)
	parent[0] = -1
	big := tree.MustNew(parent)
	sigs := []Signature{
		{Node: 7, K: 3, Tree: big},
		{Node: 8, K: 3, Tree: tree.Path(5)},
	}
	var buf bytes.Buffer
	if err := WriteSignatures(&buf, sigs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1<<20 {
		t.Fatalf("test line only %d bytes; expected to exceed the old 1 MiB cap", buf.Len())
	}
	got, err := ReadSignatures(&buf)
	if err != nil {
		t.Fatalf("ReadSignatures: %v", err)
	}
	if len(got) != len(sigs) {
		t.Fatalf("got %d signatures, want %d", len(got), len(sigs))
	}
	for i, g := range got {
		if g.Node != sigs[i].Node || g.K != sigs[i].K {
			t.Errorf("signature %d header mismatch: %+v", i, g)
		}
		if !tree.Isomorphic(g.Tree, sigs[i].Tree) || g.Tree.Size() != sigs[i].Tree.Size() {
			t.Errorf("signature %d tree did not round-trip", i)
		}
	}
}

// TestReadSignaturesTooLongNamesLine: a line exceeding the cap must
// produce an error naming the offending line, not a silent truncation.
func TestReadSignaturesTooLongNamesLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# header\n")
	sb.WriteString("1 2 0\n")
	sb.WriteString("2 2 ")
	sb.WriteString(strings.Repeat("0,", maxSignatureLine/2+8))
	sb.WriteString("\n")
	_, err := ReadSignatures(strings.NewReader(sb.String()))
	if err == nil {
		t.Fatal("expected an error for an over-long line")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error does not name the offending line: %v", err)
	}
	if !strings.Contains(err.Error(), "too long") && !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("error does not explain the length cap: %v", err)
	}
}

func TestReadSignaturesMalformedNamesLine(t *testing.T) {
	in := "# header\n1 2 0\nnot-a-number 2 0\n"
	_, err := ReadSignatures(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("malformed line not named: %v", err)
	}
}

func TestSignaturesFileRoundTrip(t *testing.T) {
	g := randomTestGraph(40, 90, 21)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	sigs := Signatures(g, nodes, 2)
	path := t.TempDir() + "/sigs.txt"
	if err := SaveSignaturesFile(path, sigs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSignaturesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sigs) {
		t.Fatalf("got %d signatures, want %d", len(got), len(sigs))
	}
	for i := range got {
		if fmt.Sprint(got[i].Node, got[i].K, tree.Encode(got[i].Tree)) !=
			fmt.Sprint(sigs[i].Node, sigs[i].K, tree.Encode(sigs[i].Tree)) {
			t.Fatalf("signature %d did not round-trip", i)
		}
	}
}
