package ned

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"ned/internal/graph"
	"ned/internal/tree"
)

// TestSignaturesRoundTripLarge serializes a signature whose encoded line
// is far past the old 1 MiB scanner cap (which used to fail the whole
// read) and checks it survives a round trip bit-for-bit.
func TestSignaturesRoundTripLarge(t *testing.T) {
	// A 600k-node star encodes as ~1.2 MB of "0," repetitions.
	const n = 600_000
	parent := make([]int32, n)
	parent[0] = -1
	big := tree.MustNew(parent)
	sigs := []Signature{
		{Node: 7, K: 3, Tree: big},
		{Node: 8, K: 3, Tree: tree.Path(5)},
	}
	var buf bytes.Buffer
	if err := WriteSignatures(&buf, sigs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1<<20 {
		t.Fatalf("test line only %d bytes; expected to exceed the old 1 MiB cap", buf.Len())
	}
	got, err := ReadSignatures(&buf)
	if err != nil {
		t.Fatalf("ReadSignatures: %v", err)
	}
	if len(got) != len(sigs) {
		t.Fatalf("got %d signatures, want %d", len(got), len(sigs))
	}
	for i, g := range got {
		if g.Node != sigs[i].Node || g.K != sigs[i].K {
			t.Errorf("signature %d header mismatch: %+v", i, g)
		}
		if !tree.Isomorphic(g.Tree, sigs[i].Tree) || g.Tree.Size() != sigs[i].Tree.Size() {
			t.Errorf("signature %d tree did not round-trip", i)
		}
	}
}

// TestReadSignaturesTooLongNamesLine: a line exceeding the cap must
// produce an error naming the offending line, not a silent truncation.
func TestReadSignaturesTooLongNamesLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# header\n")
	sb.WriteString("1 2 0\n")
	sb.WriteString("2 2 ")
	sb.WriteString(strings.Repeat("0,", maxSignatureLine/2+8))
	sb.WriteString("\n")
	_, err := ReadSignatures(strings.NewReader(sb.String()))
	if err == nil {
		t.Fatal("expected an error for an over-long line")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error does not name the offending line: %v", err)
	}
	if !strings.Contains(err.Error(), "too long") && !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("error does not explain the length cap: %v", err)
	}
}

func TestReadSignaturesMalformedNamesLine(t *testing.T) {
	in := "# header\n1 2 0\nnot-a-number 2 0\n"
	_, err := ReadSignatures(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("malformed line not named: %v", err)
	}
}

// TestCorpusSnapshotGolden locks the v1 snapshot format against the
// checked-in golden files: if either direction of the codec drifts,
// snapshots written by earlier builds stop loading, which is exactly
// what the format version exists to prevent. Evolve the format by
// bumping the version and adding a new golden, never by editing these.
func TestCorpusSnapshotGolden(t *testing.T) {
	cases := []struct {
		path     string
		meta     CorpusMeta
		nodes    []graph.NodeID
		outSizes []int
	}{
		{
			path:     "testdata/corpus_v1.golden",
			meta:     CorpusMeta{Version: 1, Backend: "bk", K: 2, Directed: false},
			nodes:    []graph.NodeID{0, 3, 7},
			outSizes: []int{4, 1, 4},
		},
		{
			path:     "testdata/corpus_v1_directed.golden",
			meta:     CorpusMeta{Version: 1, Backend: "vp", K: 2, Directed: true},
			nodes:    []graph.NodeID{1, 4},
			outSizes: []int{2, 1},
		},
	}
	for _, tc := range cases {
		raw, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		meta, items, err := ReadCorpusItems(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if meta.Version != tc.meta.Version || meta.Backend != tc.meta.Backend ||
			meta.K != tc.meta.K || meta.Directed != tc.meta.Directed {
			t.Fatalf("%s: meta %+v, want %+v", tc.path, meta, tc.meta)
		}
		if len(items) != len(tc.nodes) {
			t.Fatalf("%s: %d items, want %d", tc.path, len(items), len(tc.nodes))
		}
		for i, it := range items {
			if it.Node != tc.nodes[i] || it.Out.Size() != tc.outSizes[i] {
				t.Errorf("%s item %d: node %d size %d, want node %d size %d",
					tc.path, i, it.Node, it.Out.Size(), tc.nodes[i], tc.outSizes[i])
			}
			if tc.meta.Directed && it.In == nil {
				t.Errorf("%s item %d: missing incoming tree", tc.path, i)
			}
		}
		// Re-encoding reproduces the golden bytes exactly.
		var buf bytes.Buffer
		if err := WriteCorpusItems(&buf, meta, items); err != nil {
			t.Fatal(err)
		}
		if buf.String() != string(raw) {
			t.Errorf("%s: WriteCorpusItems drifted from the golden format:\ngot:  %q\nwant: %q",
				tc.path, buf.String(), string(raw))
		}
	}
}

// TestCorpusSnapshotGoldenV2 locks the v2 sharded manifest format
// against its checked-in golden (empty shard section included):
// re-partitioning the parsed items by ShardOf and re-encoding must
// reproduce the golden bytes, so shard placement stays a pure function
// of (node, shards) and the on-disk format cannot drift.
func TestCorpusSnapshotGoldenV2(t *testing.T) {
	const path = "testdata/corpus_v2.golden"
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	meta, items, err := ReadCorpusItems(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if meta.Version != 2 || meta.Backend != "bk" || meta.K != 2 || meta.Directed || meta.Shards != 2 {
		t.Fatalf("%s: meta %+v", path, meta)
	}
	wantNodes := []graph.NodeID{0, 3, 7}
	if len(items) != len(wantNodes) {
		t.Fatalf("%s: %d items, want %d", path, len(items), len(wantNodes))
	}
	for i, it := range items {
		if it.Node != wantNodes[i] {
			t.Errorf("%s item %d: node %d, want %d", path, i, it.Node, wantNodes[i])
		}
	}
	shardItems := make([][]Item, meta.Shards)
	for _, it := range items {
		si := ShardOf(it.Node, meta.Shards)
		shardItems[si] = append(shardItems[si], it)
	}
	var buf bytes.Buffer
	if err := WriteShardedCorpusItems(&buf, meta, shardItems); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(raw) {
		t.Errorf("%s: WriteShardedCorpusItems drifted from the golden format:\ngot:  %q\nwant: %q",
			path, buf.String(), string(raw))
	}
}

// TestShardedCorpusItemsRoundTripRandom round-trips a hash-partitioned
// v2 manifest of both directednesses through the codec.
func TestShardedCorpusItemsRoundTripRandom(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := randomTestGraph(40, 90, 23)
		var nodes []graph.NodeID
		for v := 0; v < g.NumNodes(); v += 3 {
			nodes = append(nodes, graph.NodeID(v))
		}
		items := BuildItems(g, nodes, 2, directed, 0)
		const shards = 4
		per := make([][]Item, shards)
		for _, it := range items {
			per[ShardOf(it.Node, shards)] = append(per[ShardOf(it.Node, shards)], it)
		}
		meta := CorpusMeta{Version: 2, Backend: "vp", K: 2, Directed: directed, Shards: shards}
		var buf bytes.Buffer
		if err := WriteShardedCorpusItems(&buf, meta, per); err != nil {
			t.Fatal(err)
		}
		gotMeta, got, err := ReadCorpusItems(&buf)
		if err != nil {
			t.Fatalf("directed=%v: %v", directed, err)
		}
		if gotMeta.Version != 2 || gotMeta.Shards != shards || gotMeta.Directed != directed || len(got) != len(items) {
			t.Fatalf("directed=%v: meta %+v with %d items", directed, gotMeta, len(got))
		}
		gotSet := make(map[graph.NodeID]string, len(got))
		for _, it := range got {
			gotSet[it.Node] = tree.Encode(it.Out)
		}
		for _, it := range items {
			if gotSet[it.Node] != tree.Encode(it.Out) {
				t.Errorf("directed=%v: node %d did not round-trip", directed, it.Node)
			}
		}
	}
}

// TestCorpusSnapshotRoundTripRandom round-trips generated corpora of
// both directednesses through the codec.
func TestCorpusSnapshotRoundTripRandom(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := randomTestGraph(30, 70, 22)
		var nodes []graph.NodeID
		for v := 0; v < g.NumNodes(); v += 2 {
			nodes = append(nodes, graph.NodeID(v))
		}
		items := BuildItems(g, nodes, 3, directed, 0)
		meta := CorpusMeta{Version: 1, Backend: "vp", K: 3, Directed: directed}
		var buf bytes.Buffer
		if err := WriteCorpusItems(&buf, meta, items); err != nil {
			t.Fatal(err)
		}
		gotMeta, got, err := ReadCorpusItems(&buf)
		if err != nil {
			t.Fatalf("directed=%v: %v", directed, err)
		}
		if gotMeta.Directed != directed || gotMeta.K != 3 || len(got) != len(items) {
			t.Fatalf("directed=%v: meta %+v with %d items", directed, gotMeta, len(got))
		}
		for i := range got {
			if got[i].Node != items[i].Node || tree.Encode(got[i].Out) != tree.Encode(items[i].Out) {
				t.Errorf("directed=%v item %d did not round-trip", directed, i)
			}
			if directed && tree.Encode(got[i].In) != tree.Encode(items[i].In) {
				t.Errorf("directed=%v item %d incoming tree did not round-trip", directed, i)
			}
		}
	}
}

// TestSnapshotParsesAsSignatureFile: undirected corpus snapshots are
// valid signature files — including the "-" placeholder a single-node
// tree serializes as, which ReadSignatures must accept too.
func TestSnapshotParsesAsSignatureFile(t *testing.T) {
	snap := "# ned corpus v1 backend=vp k=2 directed=0 nodes=3\n0 2 0,0,1\n3 2 -\n7 2 0,1\n"
	sigs, err := ReadSignatures(strings.NewReader(snap))
	if err != nil {
		t.Fatalf("ReadSignatures(snapshot): %v", err)
	}
	if len(sigs) != 3 {
		t.Fatalf("got %d signatures, want 3", len(sigs))
	}
	if sigs[1].Node != 3 || sigs[1].Tree.Size() != 1 {
		t.Errorf("placeholder line parsed as node %d size %d, want node 3 size 1",
			sigs[1].Node, sigs[1].Tree.Size())
	}
}

// TestReadCorpusItemsLegacy: input without a snapshot header parses as
// a version-0 snapshot with the plain-signature semantics.
func TestReadCorpusItemsLegacy(t *testing.T) {
	in := "# ned signatures v1: node k parentvector\n3 2 0,0\n5 2\n"
	meta, items, err := ReadCorpusItems(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 0 {
		t.Fatalf("legacy input reported version %d", meta.Version)
	}
	if len(items) != 2 || items[0].Node != 3 || items[1].Node != 5 {
		t.Fatalf("legacy items: %+v", items)
	}
	if items[1].Out.Size() != 1 {
		t.Errorf("legacy empty encoding: tree size %d, want 1", items[1].Out.Size())
	}
}

// TestReadCorpusItemsErrors walks the corrupted-input error paths; each
// must fail with an error naming the offending line or field.
func TestReadCorpusItemsErrors(t *testing.T) {
	header := "# ned corpus v1 backend=vp k=2 directed=0 nodes=1\n"
	cases := []struct {
		name, in, want string
	}{
		{"future version", "# ned corpus v4 backend=vp k=2 directed=0 shards=1 base=1 nodes=0\n", "version 4 not supported"},
		{"v2 missing shards", "# ned corpus v2 backend=vp k=2 directed=0 nodes=0\n", "missing shards="},
		{"v2 bad shard count", "# ned corpus v2 backend=vp k=2 directed=0 shards=0 nodes=0\n", "bad snapshot shard count"},
		{"v2 item outside section", "# ned corpus v2 backend=vp k=2 directed=0 shards=1 nodes=1\n0 2 0\n", "before any shard section"},
		{"v2 section out of order", "# ned corpus v2 backend=vp k=2 directed=0 shards=2 nodes=1\n# shard 1 nodes=1\n0 2 0\n", "out of order"},
		{"v2 short section", "# ned corpus v2 backend=vp k=2 directed=0 shards=2 nodes=2\n# shard 0 nodes=2\n0 2 0\n# shard 1 nodes=1\n1 2 0\n", "declares 2 nodes, found 1"},
		{"v2 missing section", "# ned corpus v2 backend=vp k=2 directed=0 shards=2 nodes=1\n# shard 0 nodes=1\n0 2 0\n", "declares 2 shards, found 1 sections"},
		{"v2 malformed section", "# ned corpus v2 backend=vp k=2 directed=0 shards=1 nodes=1\n# shard zero nodes=1\n0 2 0\n", "bad shard index"},
		{"bad version", "# ned corpus vx backend=vp k=2 directed=0 nodes=0\n", "malformed snapshot version"},
		{"missing field", "# ned corpus v1 backend=vp k=2 directed=0\n", "missing nodes="},
		{"bad k", "# ned corpus v1 backend=vp k=zero directed=0 nodes=0\n", "bad snapshot k"},
		{"bad directed", "# ned corpus v1 backend=vp k=2 directed=yes nodes=0\n", "bad snapshot directed"},
		{"bad node count", "# ned corpus v1 backend=vp k=2 directed=0 nodes=-4\n", "bad snapshot node count"},
		{"field count", header + "0 2\n", "has 2 fields, want 3"},
		{"bad node id", header + "x 2 0\n", "bad node id"},
		{"bad item k", header + "0 2x 0\n", "bad k"},
		{"k disagrees", header + "0 3 0\n", "disagrees with header"},
		{"bad tree", header + "0 2 0,?\n", "decoding"},
		{"duplicate", "# ned corpus v1 backend=vp k=2 directed=0 nodes=2\n4 2 0\n4 2 0\n", "already appeared on line 2"},
		{"truncated", "# ned corpus v1 backend=vp k=2 directed=0 nodes=2\n4 2 0\n", "declares 2 nodes, found 1"},
		{"padded", "# ned corpus v1 backend=vp k=2 directed=0 nodes=0\n4 2 0\n", "declares 0 nodes, found 1"},
		{"directed missing in-tree", "# ned corpus v1 backend=vp k=2 directed=1 nodes=1\n0 2 0\n", "want 4"},
		{"directed bad in-tree", "# ned corpus v1 backend=vp k=2 directed=1 nodes=1\n0 2 0 0,?\n", "incoming tree"},
		{"second header after items", header + "0 2 0\n" + header, "second snapshot header"},
		{"two consecutive headers", header + header + "0 2 0\n", "second snapshot header"},
		{"header after legacy items", "3 2 0,0\n" + header, "second snapshot header"},
	}
	for _, tc := range cases {
		_, _, err := ReadCorpusItems(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestWriteCorpusItemsRejectsBadItems: writing refuses items that could
// not round-trip.
func TestWriteCorpusItemsRejectsBadItems(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCorpusItems(&buf, CorpusMeta{Version: 1, Backend: "vp", K: 2}, []Item{{Node: 3, K: 2}})
	if err == nil || !strings.Contains(err.Error(), "no tree") {
		t.Errorf("nil out tree: %v", err)
	}
	err = WriteCorpusItems(&buf, CorpusMeta{Version: 1, Backend: "vp", K: 2, Directed: true},
		[]Item{{Node: 3, K: 2, Out: tree.Path(2)}})
	if err == nil || !strings.Contains(err.Error(), "no tree") {
		t.Errorf("nil in tree on directed snapshot: %v", err)
	}
}

// TestSaveSignaturesFileAtomic: a save failure (here: the target path
// is a directory, so the final rename fails) must leave no tmp residue,
// and a successful save over an existing file replaces it wholesale.
func TestSaveSignaturesFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/sigs.txt"
	sigs := []Signature{{Node: 1, K: 2, Tree: tree.Path(3)}}
	if err := SaveSignaturesFile(path, sigs); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
	// Target is an existing directory: the rename must fail, the tmp
	// file must be cleaned up, and the directory must survive.
	sub := dir + "/taken"
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveSignaturesFile(sub, sigs); err == nil {
		t.Fatal("saving over a directory succeeded")
	}
	if _, err := os.Stat(sub + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind after failure: %v", err)
	}
	if fi, err := os.Stat(sub); err != nil || !fi.IsDir() {
		t.Fatalf("target directory damaged: %v", err)
	}
}

func TestSignaturesFileRoundTrip(t *testing.T) {
	g := randomTestGraph(40, 90, 21)
	var nodes []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		nodes = append(nodes, graph.NodeID(v))
	}
	sigs := Signatures(g, nodes, 2)
	path := t.TempDir() + "/sigs.txt"
	if err := SaveSignaturesFile(path, sigs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSignaturesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sigs) {
		t.Fatalf("got %d signatures, want %d", len(got), len(sigs))
	}
	for i := range got {
		if fmt.Sprint(got[i].Node, got[i].K, tree.Encode(got[i].Tree)) !=
			fmt.Sprint(sigs[i].Node, sigs[i].K, tree.Encode(sigs[i].Tree)) {
			t.Fatalf("signature %d did not round-trip", i)
		}
	}
}
