package deanon

import (
	"math/rand"
	"testing"

	"ned/internal/anonymize"
	"ned/internal/datasets"
	"ned/internal/graph"
)

func buildExperiment(t *testing.T, ratio float64, queries, candidates, topL int) (Experiment, *graph.Graph) {
	t.Helper()
	train := datasets.MustGenerate(datasets.PGP, datasets.Options{Scale: 0.1, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	var anon anonymize.Result
	if ratio == 0 {
		anon = anonymize.Naive(train, rng)
	} else {
		anon = anonymize.Perturb(train, ratio, rng)
	}
	qs := SampleQueries(make([]graph.NodeID, anon.Graph.NumNodes()), queries, rng)
	candSet := map[graph.NodeID]bool{}
	for _, q := range qs {
		candSet[anon.Identity[q]] = true
	}
	for len(candSet) < candidates {
		candSet[graph.NodeID(rng.Intn(train.NumNodes()))] = true
	}
	var cands []graph.NodeID
	for c := range candSet {
		cands = append(cands, c)
	}
	return Experiment{
		Train:      train,
		Test:       anon.Graph,
		Identity:   anon.Identity,
		Queries:    qs,
		Candidates: cands,
		TopL:       topL,
	}, train
}

func TestPrecisionNaiveAnonymizationIsHigh(t *testing.T) {
	// With structure fully intact, NED should re-identify most nodes
	// within a generous top-l.
	e, _ := buildExperiment(t, 0, 15, 80, 5)
	p := Precision(e, &NEDScorer{K: 3})
	if p < 0.6 {
		t.Errorf("naive-anonymization NED precision = %.2f, want >= 0.6", p)
	}
}

func TestPrecisionDegradesWithPerturbation(t *testing.T) {
	eLow, _ := buildExperiment(t, 0.01, 15, 80, 5)
	eHigh, _ := buildExperiment(t, 0.40, 15, 80, 5)
	pLow := Precision(eLow, &NEDScorer{K: 3})
	pHigh := Precision(eHigh, &NEDScorer{K: 3})
	if pHigh > pLow {
		t.Errorf("precision should not improve with perturbation: %.2f -> %.2f", pLow, pHigh)
	}
}

func TestPrecisionGrowsWithTopL(t *testing.T) {
	e1, _ := buildExperiment(t, 0.02, 15, 80, 1)
	e10 := e1
	e10.TopL = 10
	p1 := Precision(e1, &NEDScorer{K: 3})
	p10 := Precision(e10, &NEDScorer{K: 3})
	if p10 < p1 {
		t.Errorf("top-10 precision %.2f below top-1 %.2f", p10, p1)
	}
}

func TestFeatureScorerRuns(t *testing.T) {
	e, _ := buildExperiment(t, 0.01, 10, 60, 5)
	p := Precision(e, &FeatureScorer{Depth: 2})
	if p < 0 || p > 1 {
		t.Errorf("precision out of range: %v", p)
	}
}

func TestScorerNames(t *testing.T) {
	if (&NEDScorer{}).Name() != "NED" {
		t.Error("NEDScorer name")
	}
	if (&FeatureScorer{}).Name() != "Feature" {
		t.Error("FeatureScorer name")
	}
}

func TestPrecisionEmptyQueries(t *testing.T) {
	e := Experiment{TopL: 5}
	if p := Precision(e, &NEDScorer{K: 2}); p != 0 {
		t.Errorf("empty experiment precision = %v", p)
	}
}

func TestSampleQueriesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	qs := SampleQueries(make([]graph.NodeID, 50), 20, rng)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := map[graph.NodeID]bool{}
	for _, q := range qs {
		if seen[q] {
			t.Fatal("duplicate query")
		}
		seen[q] = true
	}
	// Requesting more than available caps at the population size.
	if got := SampleQueries(make([]graph.NodeID, 5), 10, rng); len(got) != 5 {
		t.Errorf("oversample returned %d", len(got))
	}
}
