// Package deanon implements the graph de-anonymization attack harness of
// §13.5: given a non-anonymized training graph and an anonymized testing
// graph, re-identify each test node by ranking training nodes under an
// inter-graph node similarity and checking whether the true identity
// appears among the top-l matches.
package deanon

import (
	"math/rand"
	"sort"

	"ned/internal/baseline"
	"ned/internal/graph"
	"ned/internal/ned"
)

// Scorer ranks candidate training nodes for one anonymized node; smaller
// is more similar. Implementations exist for NED and the Feature
// baseline; any inter-graph node distance fits.
type Scorer interface {
	// Name labels the method in experiment output.
	Name() string
	// Prepare is called once per (train, test) graph pair before any
	// Distance call, so implementations can precompute signatures.
	Prepare(train, test *graph.Graph, candidates, queries []graph.NodeID)
	// Distance returns the dissimilarity between anonymized test node q
	// and candidate training node c.
	Distance(q, c graph.NodeID) float64
}

// NEDScorer ranks with NED at a fixed k.
type NEDScorer struct {
	K    int
	sigQ map[graph.NodeID]ned.Signature
	sigC map[graph.NodeID]ned.Signature
}

// Name implements Scorer.
func (s *NEDScorer) Name() string { return "NED" }

// Prepare implements Scorer.
func (s *NEDScorer) Prepare(train, test *graph.Graph, candidates, queries []graph.NodeID) {
	s.sigC = make(map[graph.NodeID]ned.Signature, len(candidates))
	for _, c := range candidates {
		s.sigC[c] = ned.NewSignature(train, c, s.K)
	}
	s.sigQ = make(map[graph.NodeID]ned.Signature, len(queries))
	for _, q := range queries {
		s.sigQ[q] = ned.NewSignature(test, q, s.K)
	}
}

// Distance implements Scorer.
func (s *NEDScorer) Distance(q, c graph.NodeID) float64 {
	return float64(ned.Between(s.sigQ[q], s.sigC[c]))
}

// FeatureScorer ranks with the ReFeX-style feature baseline at recursion
// depth Depth (paired with NED's k as in §13.5).
type FeatureScorer struct {
	Depth int
	featQ []baseline.FeatureVector
	featC []baseline.FeatureVector
}

// Name implements Scorer.
func (s *FeatureScorer) Name() string { return "Feature" }

// Prepare implements Scorer.
func (s *FeatureScorer) Prepare(train, test *graph.Graph, candidates, queries []graph.NodeID) {
	s.featC = baseline.RegionalFeaturesAll(train, s.Depth)
	s.featQ = baseline.RegionalFeaturesAll(test, s.Depth)
}

// Distance implements Scorer.
func (s *FeatureScorer) Distance(q, c graph.NodeID) float64 {
	return baseline.L1(s.featQ[q], s.featC[c])
}

// Experiment describes one de-anonymization run.
type Experiment struct {
	Train      *graph.Graph   // the graph with identities
	Test       *graph.Graph   // the anonymized graph
	Identity   []graph.NodeID // ground truth: Identity[testNode] = trainNode
	Queries    []graph.NodeID // test nodes to re-identify
	Candidates []graph.NodeID // training nodes considered as matches
	TopL       int            // success = truth within the best TopL candidates
}

// SampleQueries draws n distinct test nodes (and guarantees their true
// identities are among the candidates).
func SampleQueries(res []graph.NodeID, n int, rng *rand.Rand) []graph.NodeID {
	perm := rng.Perm(len(res))
	if n > len(perm) {
		n = len(perm)
	}
	out := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = graph.NodeID(perm[i])
	}
	return out
}

// Precision runs the attack with the scorer and returns the fraction of
// queries whose true identity ranked within the top l candidates.
func Precision(e Experiment, s Scorer) float64 {
	if len(e.Queries) == 0 {
		return 0
	}
	s.Prepare(e.Train, e.Test, e.Candidates, e.Queries)
	hits := 0
	type scored struct {
		c graph.NodeID
		d float64
	}
	for _, q := range e.Queries {
		truth := e.Identity[q]
		ranked := make([]scored, 0, len(e.Candidates))
		for _, c := range e.Candidates {
			ranked = append(ranked, scored{c, s.Distance(q, c)})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].d != ranked[j].d {
				return ranked[i].d < ranked[j].d
			}
			return ranked[i].c < ranked[j].c
		})
		l := e.TopL
		if l > len(ranked) {
			l = len(ranked)
		}
		for _, r := range ranked[:l] {
			if r.c == truth {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(e.Queries))
}
