package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the WAL replay path: it must
// never panic, a non-error replay's valid prefix must re-replay to the
// same records (the truncate-then-resume invariant OpenWALAt relies
// on), and valid must never exceed the input.
func FuzzWALReplay(f *testing.F) {
	var golden []byte
	if b, err := os.ReadFile(filepath.Join("testdata", "golden-wal.log")); err == nil {
		golden = b
	}
	f.Add(golden)
	for _, cut := range []int{0, 1, 7, 8, 9, 20} {
		if cut <= len(golden) {
			f.Add(golden[:cut])
		}
	}
	if len(golden) > 0 {
		mut := append([]byte(nil), golden...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, valid, err := DecodeWAL(b)
		if valid < 0 || valid > int64(len(b)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(b))
		}
		if err != nil {
			return
		}
		recs2, valid2, err2 := DecodeWAL(b[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("valid prefix does not re-replay cleanly: %d/%d records, %d/%d bytes, err %v",
				len(recs2), len(recs), valid2, valid, err2)
		}
	})
}

// FuzzSegmentRead only asserts the reader never panics or succeeds on
// garbage that isn't byte-identical to a real segment's semantics —
// i.e. it must not crash; errors are expected.
func FuzzSegmentRead(f *testing.F) {
	if b, err := os.ReadFile(filepath.Join("testdata", "golden.nedseg")); err == nil {
		f.Add(b)
		if len(b) > 40 {
			f.Add(b[:40])
		}
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		Read(bytes.NewReader(b)) // must not panic; errors are the expected outcome
	})
}
