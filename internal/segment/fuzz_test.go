package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the WAL replay path: it must
// never panic, a non-error replay's valid prefix must re-replay to the
// same records (the truncate-then-resume invariant OpenWALAt relies
// on), and valid must never exceed the input.
func FuzzWALReplay(f *testing.F) {
	var golden []byte
	if b, err := os.ReadFile(filepath.Join("testdata", "golden-wal.log")); err == nil {
		golden = b
	}
	f.Add(golden)
	for _, cut := range []int{0, 1, 7, 8, 9, 20} {
		if cut <= len(golden) {
			f.Add(golden[:cut])
		}
	}
	if len(golden) > 0 {
		mut := append([]byte(nil), golden...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	// Injected-fault residue: the frame shapes the faultfs chaos tests
	// leave on disk — short writes tearing a frame at arbitrary points,
	// a torn frame followed by a clean one (the wedge-bug shape), and a
	// half-overwritten final frame.
	if len(golden) > 0 {
		// Every frame torn at its midpoint (short write of that frame).
		frames := walFrameBounds(golden)
		prev := int64(0)
		for _, end := range frames {
			mid := prev + (end-prev)/2
			f.Add(append([]byte(nil), golden[:mid]...))
			// Torn frame followed by intact later frames: mid-file
			// corruption, must fail loudly — but never panic.
			torn := append([]byte(nil), golden[:mid]...)
			torn = append(torn, golden[end:]...)
			f.Add(torn)
			prev = end
		}
		// A final frame whose first half was overwritten with zeros (out
		// of order page writeback).
		if last := len(frames); last > 1 {
			start := frames[last-2]
			smashed := append([]byte(nil), golden...)
			for i := start; i < start+(frames[last-1]-start)/2; i++ {
				smashed[i] = 0
			}
			f.Add(smashed)
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, valid, err := DecodeWAL(b)
		if valid < 0 || valid > int64(len(b)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(b))
		}
		if err != nil {
			return
		}
		recs2, valid2, err2 := DecodeWAL(b[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("valid prefix does not re-replay cleanly: %d/%d records, %d/%d bytes, err %v",
				len(recs2), len(recs), valid2, valid, err2)
		}
	})
}

// walFrameBounds returns each intact frame's end offset in a clean log
// image (for carving fuzz seeds at frame-relative positions).
func walFrameBounds(b []byte) []int64 {
	var bounds []int64
	off := int64(0)
	for int(off)+8 <= len(b) {
		plen := int64(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
		end := off + 8 + plen
		if end > int64(len(b)) {
			break
		}
		bounds = append(bounds, end)
		off = end
	}
	return bounds
}

// FuzzSegmentRead only asserts the reader never panics or succeeds on
// garbage that isn't byte-identical to a real segment's semantics —
// i.e. it must not crash; errors are expected.
func FuzzSegmentRead(f *testing.F) {
	if b, err := os.ReadFile(filepath.Join("testdata", "golden.nedseg")); err == nil {
		f.Add(b)
		if len(b) > 40 {
			f.Add(b[:40])
		}
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		Read(bytes.NewReader(b)) // must not panic; errors are the expected outcome
	})
}
