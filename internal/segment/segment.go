// Package segment is the durable persistence layer of the Corpus
// engine: a versioned binary segment format that round-trips a
// materialized corpus — signature trees AND their compiled cascade
// profiles AND the shape dictionary they are expressed against —
// without re-extracting, re-parsing, or re-profiling anything on load,
// plus a mutation write-ahead log (wal.go) and the checkpoint/log file
// discipline (files.go) that together recover a crashed corpus to its
// last committed mutation.
//
// # Segment format
//
// A segment is a magic string followed by framed sections:
//
//	magic   "NEDSEG01" (8 bytes)
//	section [type u8][payloadLen u64][payload][crc32c(payload) u32]
//
// in fixed order: meta (1), dict (2), an optional graph (3), an
// optional placement directory (7), one shard item table (4) per
// shard, optionally one VP-index dump (6) per shard, and end (5). All
// integers are little-endian. Every section is
// independently length-framed and checksummed, and the end section
// repeats the total item count, so a torn tail — truncation anywhere,
// even between sections — fails loudly instead of loading a silently
// smaller corpus. Segments are always written through
// fsx.WriteFileAtomic, so a torn segment on disk means external
// corruption, never a crashed writer.
//
//	meta:  backend string (u16 len + bytes), k u32, directed u8,
//	       shards u32, items u64, dictLen u32, hasGraph u8,
//	       hasIndex u8, then one u64 payload length per shard item
//	       table — the section offsets that let a reader slice or
//	       skip shards.
//	dict:  nShapes u32, kidOff (nShapes+1)×u32, kids kidOff[n]×u32 —
//	       the interner's CSR shape table (tree.ExportShapes).
//	graph: nodes u32, directed u8, edges u64, then u32 pairs — the
//	       backing graph, so a recovered corpus keeps Insert and
//	       UpdateGraph without a sidecar file.
//	place: base u32, shards u32 (must equal meta's), redirect base×u32
//	       (each < shards), moves u64, then (node u32, shard u32) pairs
//	       node-ascending — the rebalancer's placement directory.
//	       Written only when the placement is non-trivial; its absence
//	       means the blind-hash seed layout, which keeps segments of
//	       never-rebalanced corpora byte-identical to earlier builds.
//	shard: a pure u32 word stream (the payload length must be a
//	       multiple of 4): shardIndex, itemCount, then per item
//	       (strictly node-ascending — readers reject out-of-order or
//	       duplicate nodes): node, k, flags (bit0 = has incoming
//	       tree), and per tree n, parents n×u32 (parents[0] is the
//	       root's -1), then the compiled profile columns
//	       labels n×u32, perm n×u32, kids (n-1)×u32.
//	index: shardIndex u32, nNodes u32, nTail u32, then per VP-tree
//	       node in preorder: node u32, radius f64 (IEEE-754 bits as
//	       u64), flags u8 (bit0 = has inside child, bit1 = has beyond
//	       child), then nTail×u32 post-build tail nodes. nNodes ==
//	       nTail == 0 means the shard carries no persisted index and
//	       rebuilds lazily.
//	end:   items u64 (must equal meta's).
//
// The index sections persist what even the item tables cannot buy
// back: a vantage-point tree costs O(n log n) TED* evaluations to
// build, so a segment that carries the built structure (radii and
// split topology, restored without a single metric call) turns a
// multi-second re-index into a sub-millisecond restore.
//
// The profile columns are the flat int32 vectors the filter cascade
// reads per candidate; persisting them (against the persisted
// dictionary) is what turns restart cost from O(corpus × reparse +
// reprofile) into a sequential read plus validation. The shard layout
// is deliberately word-only and word-aligned: on a little-endian host
// the wire format IS the in-memory column layout, so the decoder
// aliases parent vectors and profile columns straight into the
// checksummed section payload — zero copies, zero per-column
// allocations — and only a big-endian host pays a byte-swapping pass.
package segment

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"unsafe"

	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/tree"
)

// hostLittleEndian gates the bulk int32 decode fast path: on a
// little-endian host the wire format IS the in-memory layout, so a
// column of persisted int32s loads with one memmove instead of a
// per-element shift-and-or loop.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Magic identifies (and versions) the binary segment format; sniff a
// stream's first len(Magic) bytes with IsSegment to route it here or
// to the text snapshot parsers.
const Magic = "NEDSEG01"

// IsSegment reports whether a stream beginning with prefix is a binary
// segment. Text snapshots start with '#' or an item line, so the first
// byte alone separates the families; the full magic is still verified
// by Read.
func IsSegment(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// Section types, in their required order (index sections, when
// present, sit between the shard tables and the end marker).
const (
	secMeta  = 1
	secDict  = 2
	secGraph = 3
	secShard = 4
	secEnd   = 5
	secIndex = 6
	secPlace = 7
)

// maxSectionLen bounds a section's declared payload length. Checked
// before any allocation, so a corrupt length field fails loudly
// instead of attempting an absurd allocation.
const maxSectionLen = 1 << 32

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the corpus-level metadata a segment records. Place travels
// in its own optional section (never the meta blob, whose layout is
// frozen): nil or trivial on write means no section; on read it is the
// decoded directory, nil for the hash seed layout.
type Meta struct {
	Backend  string // flag-style backend name recorded at snapshot time
	K        int    // neighborhood depth shared by every item
	Directed bool   // whether items carry incoming trees too
	Shards   int    // shard count the writer partitioned by
	Items    int    // total item count across shards

	Place *ned.Placement // non-trivial placement directory, nil if hash
}

// VPNode is one persisted vantage-point-tree node, in preorder. The
// item itself lives in the shard's item table; the node references it
// by its graph node ID.
type VPNode struct {
	Node   graph.NodeID
	Radius float64
	Inside bool // has an inside child
	Beyond bool // has a beyond child
}

// VPIndex is one shard's persisted VP-tree index: the preorder
// structure dump plus the node IDs appended after the build (the
// backend's linear tail). A zero VPIndex means "no persisted index" —
// the shard rebuilds lazily on first query. Together Nodes and Tail
// must reference each of the shard's items exactly once.
type VPIndex struct {
	Nodes []VPNode
	Tail  []graph.NodeID
}

// empty reports whether this shard carries no persisted index.
func (ix *VPIndex) empty() bool { return len(ix.Nodes) == 0 && len(ix.Tail) == 0 }

// --- encoding helpers ---

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// dec is a bounds-checked little-endian cursor with a sticky error, so
// decoding corrupt (but checksum-passing, i.e. faithfully persisted
// yet inconsistent) bytes degrades to an error, never a panic or an
// unbounded allocation.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("segment: truncated payload")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("segment: truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("segment: truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// i32s decodes n little-endian u32 values as int32s, checking the
// byte budget before allocating.
func (d *dec) i32s(n int) []int32 {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b) < 4*n {
		d.fail("segment: truncated payload (want %d int32s, have %d bytes)", n, len(d.b))
		return nil
	}
	out := make([]int32, n)
	d.i32sInto(out)
	return out
}

// i32sInto fills dst with little-endian u32 values read as int32s —
// the bulk-decode hot loop, kept tight (binary.LittleEndian.Uint32
// compiles to a single unaligned load).
func (d *dec) i32sInto(dst []int32) {
	if d.err != nil {
		return
	}
	n := len(dst)
	if len(d.b) < 4*n {
		d.fail("segment: truncated payload (want %d int32s, have %d bytes)", n, len(d.b))
		return
	}
	src := d.b[:4*n]
	if hostLittleEndian && n > 0 {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 4*n), src)
	} else {
		for i := range dst {
			dst[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
		}
	}
	d.b = d.b[4*n:]
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("segment: %d trailing bytes in section payload", len(d.b))
	}
	return nil
}

// --- section framing ---

// writeSection frames one section: type, length, payload, checksum.
func writeSection(w io.Writer, typ byte, payload []byte) error {
	hdr := make([]byte, 0, 9)
	hdr = append(hdr, typ)
	hdr = appendU64(hdr, uint64(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("segment: writing section header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("segment: writing section payload: %w", err)
	}
	var crc []byte
	crc = appendU32(crc, crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(crc); err != nil {
		return fmt.Errorf("segment: writing section checksum: %w", err)
	}
	return nil
}

// readSection reads and checksum-verifies one framed section. Any
// short read — a torn tail — is a loud error: segments are written
// atomically, so an incomplete one was corrupted after the fact.
func readSection(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("segment: truncated section header: %w", err)
	}
	typ = hdr[0]
	n := uint64(hdr[1]) | uint64(hdr[2])<<8 | uint64(hdr[3])<<16 | uint64(hdr[4])<<24 |
		uint64(hdr[5])<<32 | uint64(hdr[6])<<40 | uint64(hdr[7])<<48 | uint64(hdr[8])<<56
	if n > maxSectionLen {
		return 0, nil, fmt.Errorf("segment: section declares %d bytes (cap %d)", n, uint64(maxSectionLen))
	}
	// Exact-size read under a trust cap: ordinary sections get a single
	// allocation and one ReadFull. Beyond the cap, collect through a
	// buffer that grows with the bytes actually present, so a corrupt
	// length field on a short file cannot force a giant up-front
	// allocation.
	const trustedAlloc = 64 << 20
	if n <= trustedAlloc {
		payload = make([]byte, n)
		got, err := io.ReadFull(r, payload)
		if err != nil {
			return 0, nil, fmt.Errorf("segment: truncated section payload (%d of %d bytes): %w", got, n, io.ErrUnexpectedEOF)
		}
	} else {
		var buf bytes.Buffer
		got, err := io.CopyN(&buf, r, int64(n))
		if err != nil || uint64(got) != n {
			return 0, nil, fmt.Errorf("segment: truncated section payload (%d of %d bytes): %w", got, n, io.ErrUnexpectedEOF)
		}
		payload = buf.Bytes()
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return 0, nil, fmt.Errorf("segment: truncated section checksum: %w", err)
	}
	want := binary.LittleEndian.Uint32(crcb[:])
	if crc32.Checksum(payload, castagnoli) != want {
		return 0, nil, fmt.Errorf("segment: section type %d checksum mismatch", typ)
	}
	return typ, payload, nil
}

// expectSection reads one section and requires its type.
func expectSection(r io.Reader, want byte) ([]byte, error) {
	typ, payload, err := readSection(r)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("segment: section type %d where %d expected", typ, want)
	}
	return payload, nil
}

// --- sizes ---

// encodedTreeSize is the byte length of one serialized tree + profile:
// 4n u32 words (n, parents n, labels n, perm n, kids n-1).
func encodedTreeSize(n int) int { return 16 * n }

// encodedItemSize is the byte length of one serialized item: the
// 3-word header plus each tree.
func encodedItemSize(it *ned.Item, directed bool) int {
	s := 12 + encodedTreeSize(it.Out.Size())
	if directed {
		s += encodedTreeSize(it.In.Size())
	}
	return s
}

// --- writing ---

// appendTree serializes one tree and its compiled profile. The full
// parent vector is written — including the root's -1 — so a decoder
// on a little-endian host can alias it in place as the tree's own
// storage.
func appendTree(b []byte, t *tree.Tree, p *tree.Profile) []byte {
	parents := t.ParentVector()
	b = appendU32(b, uint32(len(parents)))
	for _, v := range parents {
		b = appendU32(b, uint32(v))
	}
	for _, v := range p.Labels {
		b = appendU32(b, uint32(v))
	}
	for _, v := range p.Perm {
		b = appendU32(b, uint32(v))
	}
	for _, v := range p.Kids {
		b = appendU32(b, uint32(v))
	}
	return b
}

// Write serializes a materialized corpus as a binary segment: meta,
// the shape dictionary, the optional backing graph, shardItems[i] as
// shard i's item table (callers MUST pass them node-ascending — the
// format requires it and readers enforce it — which also makes equal
// corpora produce byte-identical segments), optionally the built
// VP-tree index of every shard, and the end marker. Every item must
// carry compiled, fully resolved profiles against dict; meta.Shards
// and meta.Items are derived from shardItems. indexes is nil (no
// index sections) or one VPIndex per shard, each either empty or
// referencing exactly that shard's items.
func Write(w io.Writer, meta Meta, dict *tree.Interner, g *graph.Graph, shardItems [][]ned.Item, indexes []VPIndex) error {
	meta.Shards = len(shardItems)
	meta.Items = 0
	for _, items := range shardItems {
		meta.Items += len(items)
	}
	if indexes != nil && len(indexes) != len(shardItems) {
		return fmt.Errorf("segment: %d index dumps for %d shards", len(indexes), len(shardItems))
	}
	for si, items := range shardItems {
		if indexes != nil {
			if ix := &indexes[si]; !ix.empty() && len(ix.Nodes)+len(ix.Tail) != len(items) {
				return fmt.Errorf("segment: shard %d index references %d items, shard has %d",
					si, len(ix.Nodes)+len(ix.Tail), len(items))
			}
		}
		for i := range items {
			it := &items[i]
			if it.Node < 0 {
				return fmt.Errorf("segment: shard %d: negative node id %d", si, it.Node)
			}
			if it.Out == nil || it.OutP == nil || !it.OutP.Resolved() {
				return fmt.Errorf("segment: node %d has no compiled outgoing profile (segments require a materialized, profiled corpus)", it.Node)
			}
			if meta.Directed && (it.In == nil || it.InP == nil || !it.InP.Resolved()) {
				return fmt.Errorf("segment: node %d has no compiled incoming profile on a directed corpus", it.Node)
			}
		}
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := io.WriteString(bw, Magic); err != nil {
		return fmt.Errorf("segment: writing magic: %w", err)
	}

	kidOff, kids := dict.ExportShapes()

	// Meta, including the shard table byte lengths (section offsets).
	mb := make([]byte, 0, 64+8*len(shardItems))
	if len(meta.Backend) > 0xFFFF {
		return fmt.Errorf("segment: backend name too long")
	}
	mb = append(mb, byte(len(meta.Backend)), byte(len(meta.Backend)>>8))
	mb = append(mb, meta.Backend...)
	mb = appendU32(mb, uint32(meta.K))
	if meta.Directed {
		mb = append(mb, 1)
	} else {
		mb = append(mb, 0)
	}
	mb = appendU32(mb, uint32(meta.Shards))
	mb = appendU64(mb, uint64(meta.Items))
	mb = appendU32(mb, uint32(len(kidOff)-1))
	if g != nil {
		mb = append(mb, 1)
	} else {
		mb = append(mb, 0)
	}
	if indexes != nil {
		mb = append(mb, 1)
	} else {
		mb = append(mb, 0)
	}
	for si, items := range shardItems {
		size := 8
		for i := range items {
			size += encodedItemSize(&items[i], meta.Directed)
		}
		_ = si
		mb = appendU64(mb, uint64(size))
	}
	if err := writeSection(bw, secMeta, mb); err != nil {
		return err
	}

	// Dictionary.
	db := make([]byte, 0, 4+4*len(kidOff)+4*len(kids))
	db = appendU32(db, uint32(len(kidOff)-1))
	for _, v := range kidOff {
		db = appendU32(db, uint32(v))
	}
	for _, v := range kids {
		db = appendU32(db, uint32(v))
	}
	if err := writeSection(bw, secDict, db); err != nil {
		return err
	}

	// Graph.
	if g != nil {
		edges := g.Edges()
		gb := make([]byte, 0, 13+8*len(edges))
		gb = appendU32(gb, uint32(g.NumNodes()))
		if g.Directed() {
			gb = append(gb, 1)
		} else {
			gb = append(gb, 0)
		}
		gb = appendU64(gb, uint64(len(edges)))
		for _, e := range edges {
			gb = appendU32(gb, uint32(e.U))
			gb = appendU32(gb, uint32(e.V))
		}
		if err := writeSection(bw, secGraph, gb); err != nil {
			return err
		}
	}

	// Placement directory — only a rebalanced layout writes one.
	if !meta.Place.Trivial() {
		place := meta.Place
		if err := place.Validate(); err != nil {
			return fmt.Errorf("segment: placement: %w", err)
		}
		if place.Shards != len(shardItems) {
			return fmt.Errorf("segment: placement routes into %d shards, segment has %d", place.Shards, len(shardItems))
		}
		pb := make([]byte, 0, 16+4*len(place.Redirect)+8*len(place.Moves))
		pb = appendU32(pb, uint32(place.Base))
		pb = appendU32(pb, uint32(place.Shards))
		for _, s := range place.Redirect {
			pb = appendU32(pb, uint32(s))
		}
		pb = appendU64(pb, uint64(len(place.Moves)))
		moved := make([]graph.NodeID, 0, len(place.Moves))
		for v := range place.Moves {
			moved = append(moved, v)
		}
		sort.Slice(moved, func(i, j int) bool { return moved[i] < moved[j] })
		for _, v := range moved {
			pb = appendU32(pb, uint32(v))
			pb = appendU32(pb, uint32(place.Moves[v]))
		}
		if err := writeSection(bw, secPlace, pb); err != nil {
			return err
		}
	}

	// Shard item tables.
	var sb []byte
	for si, items := range shardItems {
		size := 8
		for i := range items {
			size += encodedItemSize(&items[i], meta.Directed)
		}
		if cap(sb) < size {
			sb = make([]byte, 0, size)
		}
		sb = sb[:0]
		sb = appendU32(sb, uint32(si))
		sb = appendU32(sb, uint32(len(items)))
		for i := range items {
			it := &items[i]
			sb = appendU32(sb, uint32(it.Node))
			sb = appendU32(sb, uint32(it.K))
			flags := uint32(0)
			if meta.Directed {
				flags |= 1
			}
			sb = appendU32(sb, flags)
			sb = appendTree(sb, it.Out, it.OutP)
			if meta.Directed {
				sb = appendTree(sb, it.In, it.InP)
			}
		}
		if err := writeSection(bw, secShard, sb); err != nil {
			return err
		}
	}

	// VP-index dumps, one section per shard.
	for si := range indexes {
		ix := &indexes[si]
		ib := make([]byte, 0, 12+13*len(ix.Nodes)+4*len(ix.Tail))
		ib = appendU32(ib, uint32(si))
		ib = appendU32(ib, uint32(len(ix.Nodes)))
		ib = appendU32(ib, uint32(len(ix.Tail)))
		for i := range ix.Nodes {
			n := &ix.Nodes[i]
			ib = appendU32(ib, uint32(n.Node))
			ib = appendU64(ib, math.Float64bits(n.Radius))
			flags := byte(0)
			if n.Inside {
				flags |= 1
			}
			if n.Beyond {
				flags |= 2
			}
			ib = append(ib, flags)
		}
		for _, v := range ix.Tail {
			ib = appendU32(ib, uint32(v))
		}
		if err := writeSection(bw, secIndex, ib); err != nil {
			return err
		}
	}

	eb := appendU64(nil, uint64(meta.Items))
	if err := writeSection(bw, secEnd, eb); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("segment: flushing: %w", err)
	}
	return nil
}

// --- reading ---

// shardWords exposes a shard payload as its int32 word stream. On a
// little-endian host with the (allocator-guaranteed, but verified)
// 4-byte alignment, the returned slice ALIASES payload — the section's
// checksummed bytes become the backing storage of every tree and
// profile decoded from it, which is the whole point of the word-only
// shard layout. Otherwise one byte-swapping copy is made.
func shardWords(payload []byte) ([]int32, error) {
	if len(payload)%4 != 0 {
		return nil, fmt.Errorf("segment: shard payload length %d not a multiple of 4", len(payload))
	}
	n := len(payload) / 4
	if n == 0 {
		return nil, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&payload[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&payload[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out, nil
}

// decodeTree decodes one serialized tree + profile from the word
// stream at words[pos:], returning the cursor past it. The parent
// vector and profile columns are subslices of words — aliased payload
// on little-endian hosts — handed to tree.NewOwned / ProfileFromParts
// without the defensive copies the public constructors make; both
// treat their columns as immutable, so sharing the section payload is
// safe. Only the tree's derived indexes are allocated, carved from s.
func decodeTree(words []int32, pos int, in *tree.Interner, s *tree.Slab) (*tree.Tree, *tree.Profile, int, error) {
	if pos >= len(words) {
		return nil, nil, 0, fmt.Errorf("segment: truncated payload")
	}
	n := int(uint32(words[pos]))
	pos++
	// Budget the whole encoded tree (parents + labels + perm + kids =
	// 4n-1 words) before slicing anything sized by n.
	if n < 1 || n > (len(words)-pos+1)/4 {
		return nil, nil, 0, fmt.Errorf("segment: tree declares %d nodes with %d words left", n, len(words)-pos)
	}
	parents := words[pos : pos+n : pos+n]
	labels := words[pos+n : pos+2*n : pos+2*n]
	perm := words[pos+2*n : pos+3*n : pos+3*n]
	kids := words[pos+3*n : pos+4*n-1 : pos+4*n-1]
	pos += 4*n - 1
	t, err := tree.NewOwned(parents, s)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("segment: %w", err)
	}
	p, err := in.ProfileFromParts(t, labels, perm, kids)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("segment: %w", err)
	}
	return t, p, pos, nil
}

// decodeShard decodes one shard item table payload.
func decodeShard(payload []byte, si int, meta Meta, in *tree.Interner) ([]ned.Item, error) {
	words, err := shardWords(payload)
	if err != nil {
		return nil, err
	}
	if len(words) < 2 {
		return nil, fmt.Errorf("segment: shard %d payload truncated", si)
	}
	if got := int(uint32(words[0])); got != si {
		return nil, fmt.Errorf("segment: shard section %d out of order (want %d)", got, si)
	}
	count := int(uint32(words[1]))
	pos := 2
	// Minimum item: 3 header words + a 1-node tree's 4 words.
	if count < 0 || count > (len(words)-pos)/7 {
		return nil, fmt.Errorf("segment: shard %d declares %d items with %d words left", si, count, len(words)-pos)
	}
	slab := &tree.Slab{}
	items := make([]ned.Item, 0, count)
	last := int32(-1)
	for i := 0; i < count; i++ {
		if len(words)-pos < 3 {
			return nil, fmt.Errorf("segment: shard %d truncated at item %d", si, i)
		}
		node := words[pos]
		k := int(uint32(words[pos+1]))
		flags := uint32(words[pos+2])
		pos += 3
		if node < 0 {
			return nil, fmt.Errorf("segment: shard %d item %d has negative node id", si, i)
		}
		// Writers emit items strictly node-ascending per shard; since the
		// placement maps a node to exactly one shard, this single ordered
		// pass doubles as the whole-segment duplicate check.
		if node <= last {
			return nil, fmt.Errorf("segment: shard %d items not node-ascending (%d after %d)", si, node, last)
		}
		last = node
		if k != meta.K {
			return nil, fmt.Errorf("segment: node %d has k=%d, segment k=%d", node, k, meta.K)
		}
		hasIn := flags&1 != 0
		if hasIn != meta.Directed {
			return nil, fmt.Errorf("segment: node %d directedness disagrees with segment meta", node)
		}
		if want := metaShardOf(meta, graph.NodeID(node)); want != si {
			return nil, fmt.Errorf("segment: node %d filed under shard %d, placement routes it to %d",
				node, si, want)
		}
		it := ned.Item{Node: graph.NodeID(node), K: k}
		var err error
		if it.Out, it.OutP, pos, err = decodeTree(words, pos, in, slab); err != nil {
			return nil, fmt.Errorf("node %d: %w", node, err)
		}
		if hasIn {
			if it.In, it.InP, pos, err = decodeTree(words, pos, in, slab); err != nil {
				return nil, fmt.Errorf("node %d incoming: %w", node, err)
			}
		}
		items = append(items, it)
	}
	if pos != len(words) {
		return nil, fmt.Errorf("segment: shard %d: %d trailing words in section payload", si, len(words)-pos)
	}
	return items, nil
}

// metaShardOf is the shard a segment's layout files node v under: the
// recorded placement directory when the segment carries one, the blind
// hash otherwise.
func metaShardOf(meta Meta, v graph.NodeID) int {
	if meta.Place != nil {
		return meta.Place.Of(v)
	}
	return ned.ShardOf(v, meta.Shards)
}

// decodePlacement decodes the placement directory section.
func decodePlacement(payload []byte, shards int) (*ned.Placement, error) {
	d := &dec{b: payload}
	base := int(d.u32())
	ps := int(d.u32())
	if d.err == nil && ps != shards {
		d.fail("segment: placement routes into %d shards, meta declares %d", ps, shards)
	}
	if d.err == nil && (base < 1 || base > 1<<20) {
		d.fail("segment: implausible placement base %d", base)
	}
	redirect := d.i32s(base)
	nMoves := int(d.u64())
	if d.err == nil && (nMoves < 0 || len(d.b) != 8*nMoves) {
		d.fail("segment: placement declares %d moves with %d bytes left", nMoves, len(d.b))
	}
	if d.err != nil {
		return nil, d.err
	}
	place := &ned.Placement{Base: base, Shards: shards, Redirect: redirect}
	if nMoves > 0 {
		place.Moves = make(map[graph.NodeID]int32, nMoves)
		last := int32(-1)
		for i := 0; i < nMoves; i++ {
			node := int32(d.u32())
			s := int32(d.u32())
			if node <= last {
				return nil, fmt.Errorf("segment: placement moves not node-ascending (%d after %d)", node, last)
			}
			last = node
			place.Moves[graph.NodeID(node)] = s
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if err := place.Validate(); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	return place, nil
}

// decodeIndex decodes one shard's VP-index dump section.
func decodeIndex(payload []byte, si int) (VPIndex, error) {
	var ix VPIndex
	d := &dec{b: payload}
	if got := int(d.u32()); d.err == nil && got != si {
		return ix, fmt.Errorf("segment: index section %d out of order (want %d)", got, si)
	}
	nNodes := int(d.u32())
	nTail := int(d.u32())
	if d.err == nil && (nNodes < 0 || nTail < 0 || len(d.b) != 13*nNodes+4*nTail) {
		d.fail("segment: shard %d index declares %d nodes and %d tail items with %d bytes",
			si, nNodes, nTail, len(d.b))
	}
	if d.err != nil {
		return ix, d.err
	}
	if nNodes > 0 {
		ix.Nodes = make([]VPNode, nNodes)
		for i := range ix.Nodes {
			n := &ix.Nodes[i]
			node := int32(d.u32())
			n.Radius = math.Float64frombits(d.u64())
			flags := d.u8()
			if node < 0 {
				return ix, fmt.Errorf("segment: shard %d index node %d has negative node id", si, i)
			}
			if flags > 3 {
				return ix, fmt.Errorf("segment: shard %d index node %d has unknown flags %#x", si, i, flags)
			}
			n.Node = graph.NodeID(node)
			n.Inside = flags&1 != 0
			n.Beyond = flags&2 != 0
		}
	}
	if nTail > 0 {
		ix.Tail = make([]graph.NodeID, nTail)
		for i := range ix.Tail {
			v := int32(d.u32())
			if v < 0 {
				return ix, fmt.Errorf("segment: shard %d index tail entry %d has negative node id", si, i)
			}
			ix.Tail[i] = graph.NodeID(v)
		}
	}
	if err := d.done(); err != nil {
		return ix, fmt.Errorf("segment: shard %d index: %w", si, err)
	}
	return ix, nil
}

// Read parses a binary segment, reconstructing the shape dictionary,
// every item with its compiled profiles, the embedded graph (nil when
// the segment carries none), and the persisted per-shard VP-index
// dumps (nil when the segment carries none — indexes[si] may also be
// empty for individual shards, which then rebuild lazily). Items are
// returned flattened in shard order (node-ascending within each
// shard, as written); callers re-file them through meta.Place when the
// segment carries a placement directory (re-hashing for whatever shard
// count they run with otherwise) — and must discard the index dumps
// and placement if that count differs from meta.Shards. Any
// truncation, checksum mismatch, or internal inconsistency is a loud
// error.
func Read(r io.Reader) (Meta, []ned.Item, *tree.Interner, *graph.Graph, []VPIndex, error) {
	var meta Meta
	fail := func(err error) (Meta, []ned.Item, *tree.Interner, *graph.Graph, []VPIndex, error) {
		return meta, nil, nil, nil, nil, err
	}
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fail(fmt.Errorf("segment: reading magic: %w", err))
	}
	if !IsSegment(magic[:]) {
		return fail(fmt.Errorf("segment: bad magic %q", magic[:]))
	}

	// Meta.
	payload, err := expectSection(r, secMeta)
	if err != nil {
		return fail(err)
	}
	d := &dec{b: payload}
	if len(d.b) < 2 {
		return fail(fmt.Errorf("segment: truncated meta"))
	}
	blen := int(d.b[0]) | int(d.b[1])<<8
	d.b = d.b[2:]
	if len(d.b) < blen {
		return fail(fmt.Errorf("segment: truncated meta backend name"))
	}
	meta.Backend = string(d.b[:blen])
	d.b = d.b[blen:]
	meta.K = int(d.u32())
	directed := d.u8()
	meta.Shards = int(d.u32())
	meta.Items = int(d.u64())
	dictLen := int(d.u32())
	hasGraph := d.u8()
	hasIndex := d.u8()
	if d.err == nil && (directed > 1 || hasGraph > 1 || hasIndex > 1 || meta.K < 1 || meta.Shards < 1 ||
		meta.Items < 0 || dictLen < 0 || meta.Shards > 1<<20) {
		d.fail("segment: implausible meta (k=%d shards=%d items=%d dict=%d)", meta.K, meta.Shards, meta.Items, dictLen)
	}
	meta.Directed = directed == 1
	shardLens := make([]uint64, 0, max(meta.Shards, 0))
	for i := 0; d.err == nil && i < meta.Shards; i++ {
		shardLens = append(shardLens, d.u64())
	}
	if d.err != nil {
		return fail(d.err)
	}
	if err := d.done(); err != nil {
		return fail(err)
	}

	// Dictionary.
	payload, err = expectSection(r, secDict)
	if err != nil {
		return fail(err)
	}
	d = &dec{b: payload}
	n := int(d.u32())
	if d.err == nil && n != dictLen {
		d.fail("segment: dict section has %d shapes, meta declares %d", n, dictLen)
	}
	kidOff := d.i32s(n + 1)
	var kids []int32
	if d.err == nil {
		kids = d.i32s(int(kidOff[n]))
	}
	if d.err != nil {
		return fail(d.err)
	}
	if err := d.done(); err != nil {
		return fail(err)
	}
	in, err := tree.NewInternerFromShapes(kidOff, kids)
	if err != nil {
		return fail(fmt.Errorf("segment: %w", err))
	}

	// Graph.
	var g *graph.Graph
	if hasGraph == 1 {
		payload, err = expectSection(r, secGraph)
		if err != nil {
			return fail(err)
		}
		d = &dec{b: payload}
		nodes := int(d.u32())
		gdir := d.u8()
		edges := int(d.u64())
		if d.err == nil && (gdir > 1 || edges < 0 || len(d.b) != 8*edges) {
			d.fail("segment: graph section declares %d edges with %d bytes", edges, len(d.b))
		}
		if d.err != nil {
			return fail(d.err)
		}
		b := graph.NewBuilder(nodes, gdir == 1)
		for i := 0; i < edges; i++ {
			u, v := int32(d.u32()), int32(d.u32())
			if u < 0 || int(u) >= nodes || v < 0 || int(v) >= nodes {
				return fail(fmt.Errorf("segment: graph edge (%d,%d) outside [0,%d)", u, v, nodes))
			}
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
		if err := d.done(); err != nil {
			return fail(err)
		}
		g = b.Build()
	}

	// Optional placement directory: the section after the graph is
	// either the placement (rebalanced layouts) or the first shard
	// table (seed layouts) — one section of lookahead decides.
	typ, payload, err := readSection(r)
	if err != nil {
		return fail(err)
	}
	if typ == secPlace {
		if meta.Place, err = decodePlacement(payload, meta.Shards); err != nil {
			return fail(err)
		}
		typ, payload, err = readSection(r)
		if err != nil {
			return fail(err)
		}
	}

	// Shard item tables: collect payloads sequentially, decode in
	// parallel — item decoding (tree construction + profile
	// reconstruction) dominates load time and shards are independent.
	payloads := make([][]byte, meta.Shards)
	for si := 0; si < meta.Shards; si++ {
		if si > 0 {
			typ, payload, err = readSection(r)
			if err != nil {
				return fail(err)
			}
		}
		if typ != secShard {
			return fail(fmt.Errorf("segment: section type %d where %d expected", typ, secShard))
		}
		payloads[si] = payload
		if uint64(len(payloads[si])) != shardLens[si] {
			return fail(fmt.Errorf("segment: shard %d payload is %d bytes, meta declares %d",
				si, len(payloads[si]), shardLens[si]))
		}
	}
	shardItems := make([][]ned.Item, meta.Shards)
	errs := make([]error, meta.Shards)
	workers := min(runtime.GOMAXPROCS(0), meta.Shards)
	var wg sync.WaitGroup
	next := make(chan int, meta.Shards)
	for si := 0; si < meta.Shards; si++ {
		next <- si
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range next {
				shardItems[si], errs[si] = decodeShard(payloads[si], si, meta, in)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fail(err)
		}
	}

	// VP-index dumps.
	var indexes []VPIndex
	if hasIndex == 1 {
		indexes = make([]VPIndex, meta.Shards)
		for si := 0; si < meta.Shards; si++ {
			payload, err = expectSection(r, secIndex)
			if err != nil {
				return fail(err)
			}
			if indexes[si], err = decodeIndex(payload, si); err != nil {
				return fail(err)
			}
		}
	}

	// End marker.
	payload, err = expectSection(r, secEnd)
	if err != nil {
		return fail(err)
	}
	d = &dec{b: payload}
	total := int(d.u64())
	if err := d.done(); err != nil {
		return fail(err)
	}
	// No cross-shard duplicate scan needed: decodeShard enforced strict
	// node-ascending order within each shard, and a duplicate node would
	// hash to the same shard.
	items := make([]ned.Item, 0, meta.Items)
	for _, sh := range shardItems {
		items = append(items, sh...)
	}
	if len(items) != meta.Items || total != meta.Items {
		return fail(fmt.Errorf("segment: item counts disagree: meta %d, end %d, decoded %d",
			meta.Items, total, len(items)))
	}
	// A segment is a whole file: trailing bytes mean concatenation or
	// corruption, the same garble the text loader rejects.
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return fail(fmt.Errorf("segment: trailing data after end section"))
	}
	return meta, items, in, g, indexes, nil
}

// Verify walks a segment stream shallowly: magic, then every framed
// section checksum-verified in order until the end marker, then EOF.
// It does not decode payloads — that is Read's job — but it proves the
// file is structurally whole, which is what the checkpoint writer
// needs to confirm before deleting the generations a torn or bit-
// flipped write would otherwise have been recovered from.
func Verify(r io.Reader) error {
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("segment: verify: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return fmt.Errorf("segment: verify: bad magic %q", magic[:])
	}
	seen := 0
	for {
		typ, _, err := readSection(r)
		if err != nil {
			return fmt.Errorf("segment: verify: %w", err)
		}
		seen++
		if typ == secEnd {
			break
		}
		if seen > 1<<20 {
			return fmt.Errorf("segment: verify: no end marker after %d sections", seen)
		}
	}
	var one [1]byte
	if n, _ := r.Read(one[:]); n != 0 {
		return fmt.Errorf("segment: verify: trailing data after end section")
	}
	return nil
}
