package segment

import (
	"bytes"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/tree"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureGraph builds a small deterministic graph.
func fixtureGraph(n, m int, directed bool, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, directed)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// fixture extracts, profiles, and shards every node of a deterministic
// graph — the exact inputs Write consumes.
func fixture(t testing.TB, directed bool, shards int) (Meta, *tree.Interner, *graph.Graph, [][]ned.Item) {
	t.Helper()
	g := fixtureGraph(40, 90, directed, 42)
	nodes := make([]graph.NodeID, g.NumNodes())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	items := ned.BuildItems(g, nodes, 2, directed, 2)
	dict := tree.NewInterner()
	// Profile serially: parallel interning assigns dictionary labels in
	// scheduling order, and the golden test needs identical bytes on
	// every run.
	ned.ProfileItems(items, dict, 1)
	shardItems := make([][]ned.Item, shards)
	for _, it := range items {
		si := ned.ShardOf(it.Node, shards)
		shardItems[si] = append(shardItems[si], it)
	}
	meta := Meta{Backend: "vp", K: 2, Directed: directed}
	return meta, dict, g, shardItems
}

func encode(t testing.TB, meta Meta, dict *tree.Interner, g *graph.Graph, shardItems [][]ned.Item) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, meta, dict, g, shardItems, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func sameTree(a, b *tree.Tree) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	av, bv := a.ParentVector(), b.ParentVector()
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

func sameProfile(a, b *tree.Profile) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	eq := func(x, y []int32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.Labels, b.Labels) && eq(a.Perm, b.Perm) && eq(a.Kids, b.Kids) &&
		eq(a.Levels, b.Levels) && a.Canon == b.Canon &&
		a.LeafLabel == b.LeafLabel && a.Size == b.Size && a.MaxLevel == b.MaxLevel
}

func checkRoundTrip(t *testing.T, directed bool) {
	t.Helper()
	meta, dict, g, shardItems := fixture(t, directed, 4)
	blob := encode(t, meta, dict, g, shardItems)

	gotMeta, gotItems, gotDict, gotGraph, _, err := Read(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if gotMeta.Backend != "vp" || gotMeta.K != 2 || gotMeta.Directed != directed ||
		gotMeta.Shards != 4 {
		t.Fatalf("meta round-trip: %+v", gotMeta)
	}
	var want []ned.Item
	for _, sh := range shardItems {
		want = append(want, sh...)
	}
	if len(gotItems) != len(want) || gotMeta.Items != len(want) {
		t.Fatalf("got %d items, want %d", len(gotItems), len(want))
	}
	for i := range want {
		w, gItem := &want[i], &gotItems[i]
		if w.Node != gItem.Node || w.K != gItem.K {
			t.Fatalf("item %d identity: got (%d,%d) want (%d,%d)", i, gItem.Node, gItem.K, w.Node, w.K)
		}
		if !sameTree(w.Out, gItem.Out) || !sameTree(w.In, gItem.In) {
			t.Fatalf("item %d trees differ", i)
		}
		if !sameProfile(w.OutP, gItem.OutP) || !sameProfile(w.InP, gItem.InP) {
			t.Fatalf("item %d profiles differ", i)
		}
		if !gItem.OutP.Resolved() {
			t.Fatalf("item %d profile unresolved after load", i)
		}
	}
	if gotDict.Len() != dict.Len() {
		t.Fatalf("dictionary round-trip: %d shapes, want %d", gotDict.Len(), dict.Len())
	}
	if gotGraph == nil {
		t.Fatal("graph lost in round-trip")
	}
	wantEdges, gotEdges := g.Edges(), gotGraph.Edges()
	if gotGraph.NumNodes() != g.NumNodes() || gotGraph.Directed() != g.Directed() ||
		len(gotEdges) != len(wantEdges) {
		t.Fatalf("graph shape changed: %d nodes %d edges, want %d nodes %d edges",
			gotGraph.NumNodes(), len(gotEdges), g.NumNodes(), len(wantEdges))
	}
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			t.Fatalf("edge %d: got %v want %v", i, gotEdges[i], wantEdges[i])
		}
	}
}

func TestSegmentRoundTripUndirected(t *testing.T) { checkRoundTrip(t, false) }
func TestSegmentRoundTripDirected(t *testing.T)   { checkRoundTrip(t, true) }

func TestSegmentWithoutGraph(t *testing.T) {
	meta, dict, _, shardItems := fixture(t, false, 2)
	blob := encode(t, meta, dict, nil, shardItems)
	_, _, _, g, _, err := Read(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g != nil {
		t.Fatal("graph materialized from a graphless segment")
	}
}

func TestSegmentEmptyCorpus(t *testing.T) {
	dict := tree.NewInterner()
	blob := encode(t, Meta{Backend: "linear", K: 3}, dict, nil, make([][]ned.Item, 3))
	meta, items, gotDict, _, _, err := Read(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(items) != 0 || meta.Items != 0 || gotDict.Len() != 0 || meta.Shards != 3 {
		t.Fatalf("empty corpus round-trip: %+v, %d items, %d shapes", meta, len(items), gotDict.Len())
	}
}

// Equal corpora must produce byte-identical segments — the property the
// golden-file test depends on.
func TestSegmentDeterministic(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, true, 4)
	if !bytes.Equal(encode(t, meta, dict, g, shardItems), encode(t, meta, dict, g, shardItems)) {
		t.Fatal("two writes of one corpus differ")
	}
}

// Every truncation point must fail loudly: segments are written
// atomically, so a short segment is corruption, never an in-progress
// write.
func TestSegmentTruncationFailsLoudly(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 2)
	blob := encode(t, meta, dict, g, shardItems)
	for cut := 0; cut < len(blob); cut++ {
		if _, _, _, _, _, err := Read(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("segment truncated to %d of %d bytes loaded without error", cut, len(blob))
		}
	}
}

// Every single-bit corruption must fail loudly: each section's payload
// is checksummed and the framing fields are structurally validated.
func TestSegmentCorruptionFailsLoudly(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 2)
	blob := encode(t, meta, dict, g, shardItems)
	for off := 0; off < len(blob); off++ {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		if _, _, _, _, _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("segment with byte %d flipped loaded without error", off)
		}
	}
}

func TestSegmentTrailingDataFailsLoudly(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 2)
	blob := encode(t, meta, dict, g, shardItems)
	if _, _, _, _, _, err := Read(bytes.NewReader(append(blob, 0))); err == nil {
		t.Fatal("segment with trailing byte loaded without error")
	}
}

// An item filed under the wrong shard is an internal inconsistency the
// reader must reject, since corpus recovery re-derives shard placement
// by hash.
func TestSegmentMisfiledItemRejected(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 4)
	var mis [][]ned.Item
	mis = append(mis, nil, nil, nil, nil)
	for si, sh := range shardItems {
		mis[(si+1)%4] = append(mis[(si+1)%4], sh...)
	}
	blob := encode(t, meta, dict, g, mis)
	if _, _, _, _, _, err := Read(bytes.NewReader(blob)); err == nil {
		t.Fatal("segment with misfiled items loaded without error")
	}
}

func TestSegmentRejectsUnprofiledItems(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 2)
	shardItems[0][0].OutP = nil
	var buf bytes.Buffer
	if err := Write(&buf, meta, dict, g, shardItems, nil); err == nil {
		t.Fatal("Write accepted an item without a compiled profile")
	}
}

func TestIsSegment(t *testing.T) {
	if !IsSegment([]byte(Magic + "anything")) {
		t.Fatal("magic not recognized")
	}
	for _, p := range [][]byte{nil, []byte("# ned corpus v2"), []byte("NEDSEG0"), []byte("0 2 0,0")} {
		if IsSegment(p) {
			t.Fatalf("IsSegment(%q) = true", p)
		}
	}
}

// The golden segment locks the format in both directions: today's
// writer must reproduce the committed bytes, and today's reader must
// load the committed bytes. Regenerate with: go test ./internal/segment
// -run TestSegmentGolden -update
func TestSegmentGolden(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, true, 4)
	blob := encode(t, meta, dict, g, shardItems)
	path := filepath.Join("testdata", "golden.nedseg")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("writer output diverged from golden segment (%d vs %d bytes); if the format change is intentional, bump the magic and regenerate with -update", len(blob), len(want))
	}
	gotMeta, items, _, gotGraph, _, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("reader rejects golden segment: %v", err)
	}
	if gotMeta.Items != len(items) || gotMeta.K != 2 || !gotMeta.Directed || gotGraph == nil {
		t.Fatalf("golden segment loaded oddly: %+v, %d items", gotMeta, len(items))
	}
}

// fixtureIndexes fabricates one VPIndex per shard covering exactly the
// shard's items: the first half as preorder tree nodes with synthetic
// radii, the rest as the linear tail. The segment layer persists
// structure, it does not interpret it — preorder validity is the
// corpus layer's contract.
func fixtureIndexes(shardItems [][]ned.Item) []VPIndex {
	indexes := make([]VPIndex, len(shardItems))
	for si, items := range shardItems {
		ix := &indexes[si]
		half := len(items) / 2
		for i, it := range items {
			if i < half {
				ix.Nodes = append(ix.Nodes, VPNode{
					Node:   it.Node,
					Radius: float64(i) * 1.5,
					Inside: i%2 == 0,
					Beyond: i%3 == 0,
				})
			} else {
				ix.Tail = append(ix.Tail, it.Node)
			}
		}
	}
	return indexes
}

func TestSegmentIndexRoundTrip(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 3)
	indexes := fixtureIndexes(shardItems)
	// One shard persists no index: empty dumps must round-trip as empty.
	indexes[1] = VPIndex{}

	var buf bytes.Buffer
	if err := Write(&buf, meta, dict, g, shardItems, indexes); err != nil {
		t.Fatalf("Write with indexes: %v", err)
	}
	_, _, _, _, got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(indexes) {
		t.Fatalf("Read returned %d indexes, want %d", len(got), len(indexes))
	}
	for si := range indexes {
		w, r := indexes[si], got[si]
		if len(w.Nodes) != len(r.Nodes) || len(w.Tail) != len(r.Tail) {
			t.Fatalf("shard %d: got %d/%d nodes/tail, want %d/%d",
				si, len(r.Nodes), len(r.Tail), len(w.Nodes), len(w.Tail))
		}
		for i := range w.Nodes {
			if w.Nodes[i] != r.Nodes[i] {
				t.Fatalf("shard %d node %d: got %+v, want %+v", si, i, r.Nodes[i], w.Nodes[i])
			}
		}
		for i := range w.Tail {
			if w.Tail[i] != r.Tail[i] {
				t.Fatalf("shard %d tail %d: got %d, want %d", si, i, r.Tail[i], w.Tail[i])
			}
		}
	}
}

func TestSegmentWithoutIndexReturnsNil(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 2)
	blob := encode(t, meta, dict, g, shardItems)
	_, _, _, _, indexes, err := Read(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if indexes != nil {
		t.Fatalf("segment written without indexes read back %d index dumps", len(indexes))
	}
}

func TestSegmentIndexWriteValidation(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 2)

	short := fixtureIndexes(shardItems)[:1]
	if err := Write(&bytes.Buffer{}, meta, dict, g, shardItems, short); err == nil {
		t.Error("Write accepted an index slice shorter than the shard count")
	}

	mismatched := fixtureIndexes(shardItems)
	mismatched[0].Tail = mismatched[0].Tail[:len(mismatched[0].Tail)-1]
	if err := Write(&bytes.Buffer{}, meta, dict, g, shardItems, mismatched); err == nil {
		t.Error("Write accepted an index not covering its shard's items")
	}
}

func TestSegmentIndexCorruptionFailsLoudly(t *testing.T) {
	meta, dict, g, shardItems := fixture(t, false, 2)
	var buf bytes.Buffer
	if err := Write(&buf, meta, dict, g, shardItems, fixtureIndexes(shardItems)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	blob := buf.Bytes()
	for off := 0; off < len(blob); off++ {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		if _, _, _, _, _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("segment with byte %d flipped loaded without error", off)
		}
	}
}

func TestDecodeIndexRejectsBadPayloads(t *testing.T) {
	enc := func(si, nNodes, nTail uint32, body []byte) []byte {
		b := appendU32(nil, si)
		b = appendU32(b, nNodes)
		b = appendU32(b, nTail)
		return append(b, body...)
	}
	node := func(id uint32, radius float64, flags byte) []byte {
		b := appendU32(nil, id)
		b = appendU64(b, math.Float64bits(radius))
		return append(b, flags)
	}

	cases := []struct {
		name    string
		payload []byte
	}{
		{"wrong shard order", enc(5, 0, 0, nil)},
		{"short payload", enc(0, 2, 0, node(1, 1.0, 0))},
		{"trailing bytes", enc(0, 1, 0, append(node(1, 1.0, 0), 0xff))},
		{"negative node id", enc(0, 1, 0, node(0x80000001, 1.0, 0))},
		{"unknown flags", enc(0, 1, 0, node(1, 1.0, 9))},
		{"negative tail id", enc(0, 0, 1, appendU32(nil, 0x80000001))},
	}
	for _, tc := range cases {
		if _, err := decodeIndex(tc.payload, 0); err == nil {
			t.Errorf("%s: decodeIndex accepted the payload", tc.name)
		}
	}
}
