package segment

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"ned/internal/faultfs"
	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/tree"
)

// walFixtureRecords builds a deterministic mutation sequence.
func walFixtureRecords(t testing.TB) []Record {
	t.Helper()
	mk := func(parents ...int32) *tree.Tree {
		tr, err := tree.New(parents)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	return []Record{
		{Upserts: []ned.Item{
			{Node: 3, K: 2, Out: mk(-1, 0, 0, 1)},
			{Node: 9, K: 2, Out: mk(-1, 0), In: mk(-1, 0, 1)},
		}},
		{Deletes: []graph.NodeID{3}},
		{Upserts: []ned.Item{{Node: 12, K: 2, Out: mk(-1)}},
			Deletes: []graph.NodeID{9, 44}},
		{}, // an empty batch must still frame and replay
	}
}

func sameRecord(a, b Record) bool {
	if len(a.Upserts) != len(b.Upserts) || len(a.Deletes) != len(b.Deletes) {
		return false
	}
	for i := range a.Upserts {
		x, y := a.Upserts[i], b.Upserts[i]
		if x.Node != y.Node || x.K != y.K || !sameTree(x.Out, y.Out) || !sameTree(x.In, y.In) {
			return false
		}
	}
	for i := range a.Deletes {
		if a.Deletes[i] != b.Deletes[i] {
			return false
		}
	}
	return true
}

// writeFixtureWAL commits the fixture records into a fresh log, and
// returns the path along with each frame's end offset.
func writeFixtureWAL(t *testing.T, dir string, policy FsyncPolicy) (string, []int64) {
	t.Helper()
	path := filepath.Join(dir, "wal-00000000.log")
	w, err := CreateWAL(path, policy)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int64
	published := 0
	for _, rec := range walFixtureRecords(t) {
		if err := w.Commit(rec, func() { published++ }); err != nil {
			t.Fatal(err)
		}
		_, b := w.Stats()
		bounds = append(bounds, b)
	}
	if published != len(walFixtureRecords(t)) {
		t.Fatalf("published %d of %d commits", published, len(walFixtureRecords(t)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, bounds
}

func TestWALRoundTrip(t *testing.T) {
	path, bounds := writeFixtureWAL(t, t.TempDir(), FsyncAlways)
	recs, valid, err := ReplayWAL(path)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	want := walFixtureRecords(t)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !sameRecord(recs[i], want[i]) {
			t.Fatalf("record %d did not round-trip", i)
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if valid != st.Size() || valid != bounds[len(bounds)-1] {
		t.Fatalf("valid prefix %d, file %d, last frame end %d", valid, st.Size(), bounds[len(bounds)-1])
	}
}

// Truncating the log at every byte must recover exactly the fully
// framed prefix — no error, no partial record, valid marking the cut.
func TestWALTornTailEveryByte(t *testing.T) {
	path, bounds := writeFixtureWAL(t, t.TempDir(), FsyncNone)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(blob); cut++ {
		recs, valid, err := DecodeWAL(blob[:cut])
		if err != nil {
			t.Fatalf("cut %d: torn tail reported as error: %v", cut, err)
		}
		wantN, wantValid := 0, int64(0)
		for _, b := range bounds {
			if int64(cut) >= b {
				wantN++
				wantValid = b
			}
		}
		if len(recs) != wantN || valid != wantValid {
			t.Fatalf("cut %d: recovered %d records to byte %d, want %d records to byte %d",
				cut, len(recs), valid, wantN, wantValid)
		}
	}
}

// Corruption strictly inside the log — bytes follow the broken frame —
// can never be a torn append and must fail loudly.
func TestWALMidFileCorruptionFailsLoudly(t *testing.T) {
	path, bounds := writeFixtureWAL(t, t.TempDir(), FsyncNone)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := int(bounds[0])
	// Flip each payload and checksum byte of the first frame; later
	// frames follow, so replay must refuse rather than truncate.
	for off := 4; off < firstEnd; off++ {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		if _, _, err := DecodeWAL(mut); err == nil {
			t.Fatalf("byte %d flipped mid-file, replay reported no error", off)
		}
	}
}

// A checksum-valid frame whose payload is malformed is faithful
// persistence of garbage — loud, even at the tail.
func TestWALMalformedPayloadFailsLoudly(t *testing.T) {
	b := appendRecord(nil, Record{})
	// Rewrite the version byte and re-checksum: framing is intact, the
	// payload is not.
	b[8] = 77
	crc := crc32.Checksum(b[8:], castagnoli)
	b[4], b[5], b[6], b[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	if _, _, err := DecodeWAL(b); err == nil {
		t.Fatal("malformed checksummed payload replayed without error")
	}
}

func TestOpenWALAtDropsTornTailAndResumesAppending(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeFixtureWAL(t, dir, FsyncAlways)
	// Simulate a crash mid-append: garbage tail past the last frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, valid, err := ReplayWAL(path)
	if err != nil {
		t.Fatalf("ReplayWAL over torn tail: %v", err)
	}
	st, _ := os.Stat(path)
	if valid >= st.Size() {
		t.Fatalf("valid prefix %d should exclude the torn tail (file %d)", valid, st.Size())
	}
	w, err := OpenWALAt(path, valid, int64(len(recs)), FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{Deletes: []graph.NodeID{7}}
	if err := w.Commit(extra, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, valid2, err := ReplayWAL(path)
	if err != nil {
		t.Fatalf("ReplayWAL after resume: %v", err)
	}
	if len(recs2) != len(recs)+1 || !sameRecord(recs2[len(recs2)-1], extra) {
		t.Fatalf("resume produced %d records, want %d", len(recs2), len(recs)+1)
	}
	st2, _ := os.Stat(path)
	if valid2 != st2.Size() {
		t.Fatalf("resumed log has invalid tail: valid %d, size %d", valid2, st2.Size())
	}
}

func TestOpenWALAtRejectsShorterFile(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeFixtureWAL(t, dir, FsyncNone)
	st, _ := os.Stat(path)
	if _, err := OpenWALAt(path, st.Size()+10, 4, FsyncNone); err == nil {
		t.Fatal("OpenWALAt accepted a validated prefix longer than the file")
	}
}

func TestCreateWALRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeFixtureWAL(t, dir, FsyncNone)
	if _, err := CreateWAL(path, FsyncNone); err == nil {
		t.Fatal("CreateWAL overwrote an existing log")
	}
}

func TestWALRotate(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateWAL(WALPath(dir, 0), FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	recs := walFixtureRecords(t)
	if err := w.Commit(recs[0], nil); err != nil {
		t.Fatal(err)
	}
	captured := false
	if err := w.Rotate(WALPath(dir, 1), func() { captured = true }); err != nil {
		t.Fatal(err)
	}
	if !captured {
		t.Fatal("capture hook did not run")
	}
	if w.Path() != WALPath(dir, 1) {
		t.Fatalf("active wal is %s", w.Path())
	}
	if n, b := w.Stats(); n != 0 || b != 0 {
		t.Fatalf("rotated wal reports %d records %d bytes", n, b)
	}
	if err := w.Commit(recs[1], nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	old, _, err := ReplayWAL(WALPath(dir, 0))
	if err != nil || len(old) != 1 || !sameRecord(old[0], recs[0]) {
		t.Fatalf("old wal: %d records, err %v", len(old), err)
	}
	cur, _, err := ReplayWAL(WALPath(dir, 1))
	if err != nil || len(cur) != 1 || !sameRecord(cur[0], recs[1]) {
		t.Fatalf("rotated wal: %d records, err %v", len(cur), err)
	}
}

func TestWALClosedCommitFails(t *testing.T) {
	w, err := CreateWAL(filepath.Join(t.TempDir(), "w.log"), FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(Record{}, nil); err == nil {
		t.Fatal("commit on closed wal succeeded")
	}
}

func TestReplayMissingWAL(t *testing.T) {
	recs, valid, err := ReplayWAL(filepath.Join(t.TempDir(), "absent.log"))
	if err != nil || len(recs) != 0 || valid != 0 {
		t.Fatalf("missing wal: %d records, %d valid, %v", len(recs), valid, err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	if p, err := ParseFsyncPolicy("always"); err != nil || p != FsyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseFsyncPolicy("none"); err != nil || p != FsyncNone {
		t.Fatalf("none: %v %v", p, err)
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if FsyncAlways.String() != "always" || FsyncNone.String() != "none" {
		t.Fatal("policy String round-trip broken")
	}
}

// The golden log locks the WAL frame format both directions, exactly
// like the segment golden. Regenerate with -update.
func TestWALGolden(t *testing.T) {
	var blob []byte
	for _, rec := range walFixtureRecords(t) {
		blob = appendRecord(blob, rec)
	}
	path := filepath.Join("testdata", "golden-wal.log")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatal("wal encoder diverged from golden log")
	}
	recs, valid, err := DecodeWAL(want)
	if err != nil || len(recs) != len(walFixtureRecords(t)) || valid != int64(len(want)) {
		t.Fatalf("golden log replay: %d records, %d valid, %v", len(recs), valid, err)
	}
}

// --- fault-injection regressions(the torn-frame-after-failed-Commit
// bug): a short write must wedge the log so no later append can land
// behind torn bytes, and the on-disk file must replay to exactly the
// acknowledged prefix. The injector is installed before CreateWAL —
// file handles capture the filesystem at open time, exactly as the
// durable stack opens its WAL under whatever seam is current. ---

func TestWALShortWriteWedgesAndPreservesPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-00000000.log")
	// The third frame write tears mid-frame with ENOSPC.
	inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{
		Op: faultfs.OpWrite, Path: "wal-", Nth: 3, Fault: faultfs.FaultShortWrite, Err: syscall.ENOSPC,
	})
	defer inj.Install()()

	w, err := CreateWAL(path, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	recs := walFixtureRecords(t)
	if err := w.Commit(recs[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(recs[1], nil); err != nil {
		t.Fatal(err)
	}
	published := false
	if err := w.Commit(recs[2], func() { published = true }); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short-write commit: err = %v, want ENOSPC", err)
	}
	if published {
		t.Fatal("failed commit ran its publish hook")
	}
	if w.Wedged() == nil {
		t.Fatal("short write did not wedge the log")
	}

	// The regression: this commit would have succeeded and buried the
	// torn frame mid-file, losing itself AND confusing replay. It must
	// refuse instead.
	if err := w.Commit(recs[2], nil); !errors.Is(err, ErrWALWedged) {
		t.Fatalf("commit after wedge: err = %v, want ErrWALWedged", err)
	}
	if err := w.Rotate(filepath.Join(dir, "wal-00000001.log"), nil); !errors.Is(err, ErrWALWedged) {
		t.Fatalf("rotate after wedge: err = %v, want ErrWALWedged", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, valid, err := ReplayWAL(path)
	if err != nil {
		t.Fatalf("replaying wedged log: %v", err)
	}
	if len(got) != 2 || !sameRecord(got[0], recs[0]) || !sameRecord(got[1], recs[1]) {
		t.Fatalf("replayed %d records, want the 2 acknowledged ones", len(got))
	}
	// The wedge truncated the torn bytes: valid covers the whole file.
	st, _ := os.Stat(path)
	if valid != st.Size() {
		t.Fatalf("valid prefix %d, file %d — torn bytes were not truncated", valid, st.Size())
	}

	// Recovery path: reopen at the validated prefix and resume.
	w2, err := OpenWALAt(path, valid, int64(len(got)), FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(recs[2], nil); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _, err := ReplayWAL(path)
	if err != nil || len(got2) != 3 {
		t.Fatalf("after resume: %d records, %v", len(got2), err)
	}
}

// A sync failure is as fatal as a write failure: the kernel may have
// dropped the dirty pages, so the frame's durability is unknowable.
func TestWALSyncFailureWedges(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-00000000.log")
	inj := faultfs.NewInjector(dir).AddRule(faultfs.Rule{
		Op: faultfs.OpSync, Path: "wal-", Nth: 2, Fault: faultfs.FaultErr,
	})
	defer inj.Install()()

	w, err := CreateWAL(path, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	recs := walFixtureRecords(t)
	if err := w.Commit(recs[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(recs[1], nil); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync-failed commit: err = %v, want EIO", err)
	}
	if err := w.Commit(recs[1], nil); !errors.Is(err, ErrWALWedged) {
		t.Fatalf("commit after sync wedge: err = %v, want ErrWALWedged", err)
	}
	w.Close()

	got, _, err := ReplayWAL(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != 1 || !sameRecord(got[0], recs[0]) {
		t.Fatalf("replayed %d records, want the 1 acknowledged one", len(got))
	}
}

// Even when the wedge's repair truncate ALSO fails, the torn bytes stay
// at the tail — where the torn-tail contract already drops them — and
// the refusal to append keeps them there.
func TestWALWedgeTruncateFailureStillReplayable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-00000000.log")
	inj := faultfs.NewInjector(dir).
		AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal-", Nth: 2, Fault: faultfs.FaultShortWrite}).
		AddRule(faultfs.Rule{Op: faultfs.OpTruncate, Fault: faultfs.FaultErr})
	defer inj.Install()()

	w, err := CreateWAL(path, FsyncNone)
	if err != nil {
		t.Fatal(err)
	}
	recs := walFixtureRecords(t)
	if err := w.Commit(recs[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(recs[1], nil); err == nil {
		t.Fatal("short write did not surface")
	}
	if err := w.Commit(recs[2], nil); !errors.Is(err, ErrWALWedged) {
		t.Fatalf("commit after wedge: err = %v, want ErrWALWedged", err)
	}
	w.Close()

	got, valid, err := ReplayWAL(path)
	if err != nil {
		t.Fatalf("replay over un-truncatable torn tail: %v", err)
	}
	if len(got) != 1 || !sameRecord(got[0], recs[0]) {
		t.Fatalf("replayed %d records, want the 1 acknowledged one", len(got))
	}
	st, _ := os.Stat(path)
	if valid >= st.Size() {
		t.Fatalf("expected torn residue past the valid prefix (valid %d, file %d)", valid, st.Size())
	}
}
