package segment

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func touch(t *testing.T, path string) {
	t.Helper()
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointScan(t *testing.T) {
	dir := t.TempDir()
	if HasState(dir) {
		t.Fatal("empty dir reported state")
	}
	if _, _, ok, err := LatestCheckpoint(filepath.Join(dir, "absent")); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
	touch(t, CheckpointPath(dir, 0))
	touch(t, CheckpointPath(dir, 7))
	touch(t, CheckpointPath(dir, 3))
	touch(t, filepath.Join(dir, "checkpoint-junk.nedseg"))
	touch(t, filepath.Join(dir, "unrelated.txt"))
	seq, path, ok, err := LatestCheckpoint(dir)
	if err != nil || !ok || seq != 7 || path != CheckpointPath(dir, 7) {
		t.Fatalf("LatestCheckpoint = %d %q %v %v", seq, path, ok, err)
	}
	if !HasState(dir) {
		t.Fatal("dir with checkpoints reported no state")
	}
}

func TestWALSeqScan(t *testing.T) {
	dir := t.TempDir()
	seqs, err := WALSeqs(dir)
	if err != nil || len(seqs) != 0 {
		t.Fatalf("empty dir: %v %v", seqs, err)
	}
	touch(t, WALPath(dir, 5))
	touch(t, WALPath(dir, 2))
	touch(t, WALPath(dir, 9))
	touch(t, filepath.Join(dir, "wal-.log"))
	touch(t, filepath.Join(dir, "wal-00000001.bak"))
	seqs, err = WALSeqs(dir)
	if err != nil || !reflect.DeepEqual(seqs, []int64{2, 5, 9}) {
		t.Fatalf("WALSeqs = %v %v", seqs, err)
	}
}

func TestRemoveObsolete(t *testing.T) {
	dir := t.TempDir()
	touch(t, CheckpointPath(dir, 1))
	touch(t, CheckpointPath(dir, 4))
	touch(t, WALPath(dir, 1))
	touch(t, WALPath(dir, 4))
	touch(t, WALPath(dir, 5))
	touch(t, filepath.Join(dir, "checkpoint-00000009.nedseg.tmp"))
	touch(t, filepath.Join(dir, "keepme.txt"))
	if err := RemoveObsolete(dir, 4); err != nil {
		t.Fatal(err)
	}
	var names []string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{"checkpoint-00000004.nedseg", "keepme.txt", "wal-00000004.log", "wal-00000005.log"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("after RemoveObsolete: %v, want %v", names, want)
	}
}
