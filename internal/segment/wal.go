package segment

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"ned/internal/faultfs"
	"ned/internal/fsx"
	"ned/internal/graph"
	"ned/internal/ned"
	"ned/internal/tree"
)

// The mutation write-ahead log. Every committed mutation batch —
// Insert, Remove, or an UpdateGraph's refresh — appends one
// checksummed frame BEFORE the corresponding epoch pointers publish,
// so a crash after the append replays the mutation and a crash before
// it never exposed the mutation to a query. Frames record absolute
// state (the full post-mutation items for upserts, node IDs for
// deletes), which makes replay idempotent: re-applying a suffix that
// partially survived a crash converges to the same corpus.
//
// Log format: a sequence of frames
//
//	[payloadLen u32][crc32c(payload) u32][payload]
//
// with payload
//
//	version u8 (=1)
//	upserts u32, then per upsert: node u32, k u32, flags u8
//	  (bit0 = has incoming tree), then per tree n u32 + parents (n-1)×u32
//	deletes u32, then node u32 each
//
// Upserts carry trees only, not profiles: replay re-profiles against
// the recovering corpus's dictionary (growing it as needed), which
// keeps frames small — the WAL is the per-mutation hot path; the
// segment checkpoint is where profile bytes belong.
//
// Torn-tail semantics (the crash contract): a final frame cut short —
// header or payload extending past EOF, or a checksum mismatch on a
// frame that runs exactly to EOF — is the expected residue of a crash
// mid-append and is silently dropped; replay returns the committed
// prefix and its byte length so the log can be truncated before
// appending resumes. Corruption strictly inside the file (bytes
// follow the bad frame) cannot be a torn append and fails loudly.

// FsyncPolicy controls when the WAL forces its appends to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every committed batch: a crash loses
	// nothing that was acknowledged.
	FsyncAlways FsyncPolicy = iota
	// FsyncNone leaves flushing to the OS: faster commits, but a crash
	// may lose the most recent acknowledged batches (never corrupting
	// earlier ones — torn tails are dropped on replay).
	FsyncNone
)

// ParseFsyncPolicy parses the flag spellings "always" and "none".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("segment: unknown fsync policy %q (want always or none)", s)
}

func (p FsyncPolicy) String() string {
	if p == FsyncAlways {
		return "always"
	}
	return "none"
}

// Record is one committed mutation batch. Upserts are the full
// post-mutation items (trees; profiles are recomputed on replay),
// deletes the nodes the batch removed. A node never appears in both.
type Record struct {
	Upserts []ned.Item
	Deletes []graph.NodeID
}

// maxWALPayload bounds a frame's declared payload length; a larger
// declaration is either a torn tail (if the file ends first) or loud
// corruption.
const maxWALPayload = 1 << 30

// WAL is an open, append-only mutation log. The commit mutex orders
// append-then-publish pairs, which is what Rotate relies on to cut a
// consistent checkpoint: state captured under the same mutex reflects
// exactly the mutations already appended to the old file.
type WAL struct {
	mu      sync.Mutex
	f       faultfs.File
	path    string
	policy  FsyncPolicy
	records int64
	bytes   int64
	buf     []byte
	wedged  error // first append/sync failure; sticky, blocks commits
}

// ErrWALWedged marks a WAL refusing further appends after an earlier
// append or sync failure left its durable tail uncertain. Callers see
// it wrapped with the original cause.
var ErrWALWedged = fmt.Errorf("segment: wal wedged by earlier i/o failure")

// CreateWAL creates a new, empty log at path (which must not exist)
// and makes its directory entry durable.
func CreateWAL(path string, policy FsyncPolicy) (*WAL, error) {
	fs := faultfs.Default()
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: creating wal: %w", err)
	}
	if err := fsx.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		fs.Remove(path)
		return nil, err
	}
	return &WAL{f: f, path: path, policy: policy}, nil
}

// OpenWALAt reopens an existing log for appending at a replay-validated
// prefix: the file is truncated to size — discarding a torn tail the
// replay already refused — and appends resume from there.
func OpenWALAt(path string, size int64, records int64, policy FsyncPolicy) (*WAL, error) {
	f, err := faultfs.Default().OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: reopening wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: reopening wal: %w", err)
	}
	if st.Size() < size {
		f.Close()
		return nil, fmt.Errorf("segment: wal %s is %d bytes, shorter than its validated prefix %d", path, st.Size(), size)
	}
	if st.Size() > size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("segment: truncating wal torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("segment: syncing truncated wal: %w", err)
		}
	}
	return &WAL{f: f, path: path, policy: policy, records: records, bytes: size}, nil
}

// wedge records the first append/sync failure and tries to restore the
// on-disk file to its last known-durable prefix so the log stays
// replayable even if the process keeps running. The repair is best
// effort: if the truncate itself fails, the torn bytes stay — but the
// wedged flag guarantees no later append lands behind them, so replay
// still recovers the committed prefix via torn-tail dropping.
func (w *WAL) wedge(cause error) {
	if w.wedged == nil {
		w.wedged = cause
	}
	if w.f != nil {
		if w.f.Truncate(w.bytes) == nil {
			w.f.Sync()
		}
	}
}

// Wedged reports the sticky failure blocking this WAL, nil if healthy.
func (w *WAL) Wedged() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wedged
}

// Commit appends rec as one frame, forces it to disk per the fsync
// policy, and only then runs publish (the epoch-pointer stores that
// make the mutation visible). The append and the publish happen under
// one mutex so Rotate can cut the log at a point consistent with the
// published state.
//
// A failed append or sync wedges the WAL: the partial frame is
// truncated away if possible, and every subsequent Commit or Rotate
// refuses with ErrWALWedged. Without the wedge, a short write followed
// by a successful append would bury torn bytes mid-file, making the
// entire tail — including the later, acknowledged frame — unreplayable.
func (w *WAL) Commit(rec Record, publish func()) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("segment: wal is closed")
	}
	if w.wedged != nil {
		return fmt.Errorf("%w: %w", ErrWALWedged, w.wedged)
	}
	w.buf = appendRecord(w.buf[:0], rec)
	if _, err := w.f.Write(w.buf); err != nil {
		w.wedge(err)
		return fmt.Errorf("segment: wal append: %w", err)
	}
	if w.policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			// The kernel may have dropped the dirty pages (the fsync-gate
			// lesson): the frame's durability is unknowable. Wedge.
			w.wedge(err)
			return fmt.Errorf("segment: wal sync: %w", err)
		}
	}
	w.records++
	w.bytes += int64(len(w.buf))
	if publish != nil {
		publish()
	}
	return nil
}

// Rotate atomically cuts the log: capture runs under the commit mutex
// (snapshot the epoch pointers there — every mutation committed to the
// old file is visible to it, and none from the new file are), the old
// file is synced and closed, and appends continue in a fresh log at
// path. On error the WAL keeps its current file and capture must be
// discarded. A wedged WAL refuses to rotate: its tail is suspect, and
// the caller's recovery path rebuilds from a verified checkpoint
// instead.
func (w *WAL) Rotate(path string, capture func()) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("segment: wal is closed")
	}
	if w.wedged != nil {
		return fmt.Errorf("%w: %w", ErrWALWedged, w.wedged)
	}
	if err := w.f.Sync(); err != nil {
		w.wedge(err)
		return fmt.Errorf("segment: syncing wal before rotation: %w", err)
	}
	fs := faultfs.Default()
	nf, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("segment: creating rotated wal: %w", err)
	}
	if err := fsx.SyncDir(filepath.Dir(path)); err != nil {
		nf.Close()
		fs.Remove(path)
		return err
	}
	if capture != nil {
		capture()
	}
	old := w.f
	w.f, w.path = nf, path
	w.records, w.bytes = 0, 0
	old.Close()
	return nil
}

// Sync forces appended frames to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if w.wedged != nil {
		return fmt.Errorf("%w: %w", ErrWALWedged, w.wedged)
	}
	if err := w.f.Sync(); err != nil {
		w.wedge(err)
		return err
	}
	return nil
}

// Close syncs (under FsyncAlways the data already is) and closes the
// log. Further commits fail. Closing a wedged WAL skips the sync — its
// durable prefix is already as good as it will get.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var serr error
	if w.wedged == nil {
		serr = w.f.Sync()
	}
	cerr := w.f.Close()
	w.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// Stats reports the records and bytes appended to the current file.
func (w *WAL) Stats() (records, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes
}

// Policy returns the log's fsync policy.
func (w *WAL) Policy() FsyncPolicy {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.policy
}

// Path returns the current log file path.
func (w *WAL) Path() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.path
}

// appendRecord encodes rec as one framed record appended to b.
func appendRecord(b []byte, rec Record) []byte {
	start := len(b)
	// Reserve the frame header; patch once the payload is known.
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = append(b, 1) // payload version
	b = appendU32(b, uint32(len(rec.Upserts)))
	for i := range rec.Upserts {
		it := &rec.Upserts[i]
		b = appendU32(b, uint32(it.Node))
		b = appendU32(b, uint32(it.K))
		if it.In != nil {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendWALTree(b, it.Out)
		if it.In != nil {
			b = appendWALTree(b, it.In)
		}
	}
	b = appendU32(b, uint32(len(rec.Deletes)))
	for _, v := range rec.Deletes {
		b = appendU32(b, uint32(v))
	}
	payload := b[start+8:]
	n := uint32(len(payload))
	crc := crc32.Checksum(payload, castagnoli)
	h := b[start:]
	h[0], h[1], h[2], h[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	h[4], h[5], h[6], h[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	return b
}

func appendWALTree(b []byte, t *tree.Tree) []byte {
	parents := t.ParentVector()
	b = appendU32(b, uint32(len(parents)))
	for _, v := range parents[1:] {
		b = appendU32(b, uint32(v))
	}
	return b
}

// decodeRecord decodes one checksum-verified frame payload.
func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	d := &dec{b: payload}
	if v := d.u8(); d.err == nil && v != 1 {
		return rec, fmt.Errorf("segment: wal record version %d unsupported", v)
	}
	nUp := int(d.u32())
	if d.err == nil && (nUp < 0 || len(d.b) < nUp*13) {
		d.fail("segment: wal record declares %d upserts with %d bytes", nUp, len(d.b))
	}
	if d.err != nil {
		return rec, d.err
	}
	rec.Upserts = make([]ned.Item, 0, nUp)
	for i := 0; i < nUp; i++ {
		node := int32(d.u32())
		k := int(d.u32())
		flags := d.u8()
		if d.err != nil {
			return rec, d.err
		}
		if node < 0 || k < 1 || flags > 1 {
			return rec, fmt.Errorf("segment: wal upsert %d malformed (node=%d k=%d flags=%d)", i, node, k, flags)
		}
		it := ned.Item{Node: graph.NodeID(node), K: k}
		var err error
		if it.Out, err = decodeWALTree(d); err != nil {
			return rec, err
		}
		if flags&1 != 0 {
			if it.In, err = decodeWALTree(d); err != nil {
				return rec, err
			}
		}
		rec.Upserts = append(rec.Upserts, it)
	}
	nDel := int(d.u32())
	if d.err == nil && (nDel < 0 || len(d.b) != nDel*4) {
		d.fail("segment: wal record declares %d deletes with %d bytes", nDel, len(d.b))
	}
	if d.err != nil {
		return rec, d.err
	}
	rec.Deletes = make([]graph.NodeID, 0, nDel)
	for i := 0; i < nDel; i++ {
		v := int32(d.u32())
		if v < 0 {
			return rec, fmt.Errorf("segment: wal delete %d has negative node id", i)
		}
		rec.Deletes = append(rec.Deletes, graph.NodeID(v))
	}
	if err := d.done(); err != nil {
		return rec, err
	}
	return rec, nil
}

func decodeWALTree(d *dec) (*tree.Tree, error) {
	n := int(d.u32())
	if d.err == nil && (n < 1 || len(d.b) < 4*(n-1)) {
		d.fail("segment: wal tree declares %d nodes with %d bytes", n, len(d.b))
	}
	if d.err != nil {
		return nil, d.err
	}
	parents := make([]int32, n)
	parents[0] = -1
	for i := 1; i < n; i++ {
		parents[i] = int32(d.u32())
	}
	t, err := tree.New(parents)
	if err != nil {
		return nil, fmt.Errorf("segment: wal tree: %w", err)
	}
	return t, nil
}

// DecodeWAL replays a log image, returning the committed records and
// the byte length of the valid prefix. A torn tail (see the package
// comment for the exact contract) ends replay silently; corruption
// with further data behind it is a loud error.
func DecodeWAL(b []byte) ([]Record, int64, error) {
	var recs []Record
	off := 0
	for {
		rest := b[off:]
		if len(rest) < 8 {
			if len(rest) > 0 {
				// Torn frame header.
				return recs, int64(off), nil
			}
			return recs, int64(off), nil
		}
		plen := int(uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24)
		crc := uint32(rest[4]) | uint32(rest[5])<<8 | uint32(rest[6])<<16 | uint32(rest[7])<<24
		if plen > maxWALPayload {
			if len(rest)-8 < plen {
				// The declared frame runs past EOF: a torn length field.
				return recs, int64(off), nil
			}
			return nil, int64(off), fmt.Errorf("segment: wal frame at %d declares %d bytes (cap %d)", off, plen, maxWALPayload)
		}
		if len(rest)-8 < plen {
			// Torn payload.
			return recs, int64(off), nil
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, castagnoli) != crc {
			if 8+plen == len(rest) {
				// The final frame is checksum-broken: its bytes landed out
				// of order during the crash. Same torn tail, drop it.
				return recs, int64(off), nil
			}
			return nil, int64(off), fmt.Errorf("segment: wal frame at %d checksum mismatch with %d bytes following", off, len(rest)-8-plen)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The checksum passed, so these bytes are what was written —
			// and they are malformed. Never a torn append.
			return nil, int64(off), fmt.Errorf("segment: wal frame at %d: %w", off, err)
		}
		recs = append(recs, rec)
		off += 8 + plen
	}
}

// ReplayWAL reads and replays the log at path. A missing file is not
// an error: it replays to nothing, as an empty log would.
func ReplayWAL(path string) ([]Record, int64, error) {
	b, err := faultfs.Default().ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("segment: reading wal: %w", err)
	}
	recs, valid, err := DecodeWAL(b)
	if err != nil {
		return nil, valid, fmt.Errorf("segment: %s: %w", path, err)
	}
	return recs, valid, nil
}
