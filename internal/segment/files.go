package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ned/internal/fsx"
)

// A durable corpus directory holds numbered generations:
//
//	checkpoint-00000042.nedseg   full binary segment, generation 42
//	wal-00000042.log             mutations committed after checkpoint 42
//
// Checkpoints are written atomically (tmp + fsync + rename), so a
// visible checkpoint is always complete; WALs are append-only and may
// end in a torn tail. Recovery loads the highest-numbered checkpoint
// and replays every wal with generation >= that number in ascending
// order — rotation advances the active wal's generation even if the
// checkpoint that prompted it then fails to write, so consecutive
// trailing generations may each hold committed mutations. A successful
// checkpoint deletes the generations below it.

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".nedseg"
	walPrefix        = "wal-"
	walSuffix        = ".log"
)

// CheckpointPath names generation seq's checkpoint segment in dir.
func CheckpointPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", checkpointPrefix, seq, checkpointSuffix))
}

// WALPath names generation seq's mutation log in dir.
func WALPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", walPrefix, seq, walSuffix))
}

// parseSeq extracts the generation from a checkpoint or wal file name.
func parseSeq(name, prefix, suffix string) (int64, bool) {
	s, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, suffix)
	if !ok || s == "" {
		return 0, false
	}
	seq, err := strconv.ParseInt(s, 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// LatestCheckpoint returns the highest checkpoint generation in dir.
// ok is false when dir holds no checkpoints (including when dir does
// not exist).
func LatestCheckpoint(dir string) (seq int64, path string, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, "", false, nil
		}
		return 0, "", false, fmt.Errorf("segment: scanning %s: %w", dir, err)
	}
	best := int64(-1)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s, isCkpt := parseSeq(e.Name(), checkpointPrefix, checkpointSuffix); isCkpt && s > best {
			best = s
		}
	}
	if best < 0 {
		return 0, "", false, nil
	}
	return best, CheckpointPath(dir, best), true, nil
}

// WALSeqs returns the wal generations present in dir, ascending.
func WALSeqs(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("segment: scanning %s: %w", dir, err)
	}
	var seqs []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s, isWAL := parseSeq(e.Name(), walPrefix, walSuffix); isWAL {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// HasState reports whether dir holds any checkpoint — i.e. whether it
// is an initialized durable corpus directory.
func HasState(dir string) bool {
	_, _, ok, err := LatestCheckpoint(dir)
	return err == nil && ok
}

// RemoveObsolete deletes checkpoints and wals with generations below
// keep, plus stray atomic-write temporaries. Failures to unlink are
// ignored — obsolete files are garbage, not state — but the directory
// is synced so successful deletions are durable.
func RemoveObsolete(dir string, keep int64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("segment: scanning %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		drop := strings.HasSuffix(name, ".tmp")
		if s, isCkpt := parseSeq(name, checkpointPrefix, checkpointSuffix); isCkpt && s < keep {
			drop = true
		}
		if s, isWAL := parseSeq(name, walPrefix, walSuffix); isWAL && s < keep {
			drop = true
		}
		if drop {
			os.Remove(filepath.Join(dir, name))
		}
	}
	return fsx.SyncDir(dir)
}
