package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ned/internal/faultfs"
	"ned/internal/fsx"
)

// A durable corpus directory holds numbered generations:
//
//	checkpoint-00000042.nedseg   full binary segment, generation 42
//	wal-00000042.log             mutations committed after checkpoint 42
//
// Checkpoints are written atomically (tmp + fsync + rename), so a
// visible checkpoint is always complete; WALs are append-only and may
// end in a torn tail. Recovery loads the highest-numbered checkpoint
// and replays every wal with generation >= that number in ascending
// order — rotation advances the active wal's generation even if the
// checkpoint that prompted it then fails to write, so consecutive
// trailing generations may each hold committed mutations. A successful
// checkpoint deletes the generations below it.
//
// A checkpoint that fails to decode on recovery is quarantined:
// renamed to <name>.quarantined so it stops shadowing older good
// generations, and recovery falls back to the next-lower checkpoint
// plus the surviving WAL tail. Quarantined files are kept for forensic
// inspection until a later checkpoint's cleanup retires their
// generation.

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".nedseg"
	walPrefix        = "wal-"
	walSuffix        = ".log"
	quarantineSuffix = ".quarantined"
)

// CheckpointPath names generation seq's checkpoint segment in dir.
func CheckpointPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", checkpointPrefix, seq, checkpointSuffix))
}

// WALPath names generation seq's mutation log in dir.
func WALPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", walPrefix, seq, walSuffix))
}

// parseSeq extracts the generation from a checkpoint or wal file name.
func parseSeq(name, prefix, suffix string) (int64, bool) {
	s, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, suffix)
	if !ok || s == "" {
		return 0, false
	}
	seq, err := strconv.ParseInt(s, 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// LatestCheckpoint returns the highest checkpoint generation in dir.
// ok is false when dir holds no checkpoints (including when dir does
// not exist).
func LatestCheckpoint(dir string) (seq int64, path string, ok bool, err error) {
	seqs, err := Checkpoints(dir)
	if err != nil || len(seqs) == 0 {
		return 0, "", false, err
	}
	best := seqs[0]
	return best, CheckpointPath(dir, best), true, nil
}

// Checkpoints returns the checkpoint generations present in dir,
// descending (newest first) — the order recovery tries them in. A
// missing directory holds none.
func Checkpoints(dir string) ([]int64, error) {
	entries, err := faultfs.Default().ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("segment: scanning %s: %w", dir, err)
	}
	var seqs []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s, isCkpt := parseSeq(e.Name(), checkpointPrefix, checkpointSuffix); isCkpt {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// Quarantine renames an unreadable checkpoint aside (appending
// ".quarantined") so it stops shadowing older generations, and makes
// the rename durable. The quarantined file keeps its bytes for
// inspection; RemoveObsolete retires it with its generation.
func Quarantine(path string) error {
	fs := faultfs.Default()
	if err := fs.Rename(path, path+quarantineSuffix); err != nil {
		return fmt.Errorf("segment: quarantining %s: %w", path, err)
	}
	return fsx.SyncDir(filepath.Dir(path))
}

// WALSeqs returns the wal generations present in dir, ascending.
func WALSeqs(dir string) ([]int64, error) {
	entries, err := faultfs.Default().ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("segment: scanning %s: %w", dir, err)
	}
	var seqs []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if s, isWAL := parseSeq(e.Name(), walPrefix, walSuffix); isWAL {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// HasState reports whether dir holds any checkpoint — i.e. whether it
// is an initialized durable corpus directory.
func HasState(dir string) bool {
	_, _, ok, err := LatestCheckpoint(dir)
	return err == nil && ok
}

// RemoveObsolete deletes checkpoints, wals, and quarantined
// checkpoints with generations below keep, plus stray atomic-write
// temporaries. Failures to unlink are ignored — obsolete files are
// garbage, not state — but the directory is synced so successful
// deletions are durable.
func RemoveObsolete(dir string, keep int64) error {
	fs := faultfs.Default()
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("segment: scanning %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		drop := strings.HasSuffix(name, ".tmp")
		base := strings.TrimSuffix(name, quarantineSuffix)
		if s, isCkpt := parseSeq(base, checkpointPrefix, checkpointSuffix); isCkpt && s < keep {
			drop = true
		}
		if s, isWAL := parseSeq(base, walPrefix, walSuffix); isWAL && s < keep {
			drop = true
		}
		if drop {
			fs.Remove(filepath.Join(dir, name))
		}
	}
	return fsx.SyncDir(dir)
}
