package ted

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ned/internal/tree"
)

func TestDistanceIdenticalTrees(t *testing.T) {
	cases := []*tree.Tree{
		tree.Star(1),
		tree.Star(5),
		tree.Path(7),
		tree.FullKAry(2, 3),
		tree.Caterpillar(4, 2),
	}
	for _, tr := range cases {
		if d := Distance(tr, tr); d != 0 {
			t.Errorf("Distance(%v, itself) = %d, want 0", tr, d)
		}
	}
}

func TestDistanceIsomorphicTrees(t *testing.T) {
	// Same shape, different child order at the root: root with subtrees
	// {leaf, path-of-2} in both orders.
	a := tree.MustNew([]int32{-1, 0, 0, 1}) // root; A, B at depth 1; A has a child
	b := tree.MustNew([]int32{-1, 0, 0, 2}) // root; A, B at depth 1; B has a child
	if !tree.Isomorphic(a, b) {
		t.Fatal("test setup: trees should be isomorphic")
	}
	if d := Distance(a, b); d != 0 {
		t.Errorf("Distance(isomorphic) = %d, want 0", d)
	}
}

func TestDistanceStarSizes(t *testing.T) {
	// Star(3) -> Star(5): insert two leaves.
	if d := Distance(tree.Star(3), tree.Star(5)); d != 2 {
		t.Errorf("Distance(Star3, Star5) = %d, want 2", d)
	}
}

func TestDistancePathVsStar(t *testing.T) {
	// Path(3) -> Star(3): delete the depth-2 leaf (1), insert two leaves
	// at depth 1 (2). Hand-computed TED* = 3.
	if d := Distance(tree.Path(3), tree.Star(3)); d != 3 {
		t.Errorf("Distance(Path3, Star3) = %d, want 3", d)
	}
}

func TestDistanceSingleMove(t *testing.T) {
	// T1: root -> {A(2 kids), B(0 kids)}; T2: root -> {A'(1 kid), B'(1 kid)}.
	// One "move a node at the same level" converts T1 into T2.
	t1 := tree.MustNew([]int32{-1, 0, 0, 1, 1})
	t2 := tree.MustNew([]int32{-1, 0, 0, 1, 2})
	if d := Distance(t1, t2); d != 1 {
		t.Errorf("Distance = %d, want 1 (single move)", d)
	}
}

func TestDistanceFigure2Style(t *testing.T) {
	// A case in the spirit of Figure 2: differing leaves at two levels.
	// T1: root -> {A -> {F, G}, B}; T2: root -> {A -> {H}, B -> {E}}.
	t1 := tree.MustNew([]int32{-1, 0, 0, 1, 1})
	t2 := tree.MustNew([]int32{-1, 0, 0, 1, 2})
	// Level 2 sizes 2 vs 2, but parent spread differs: 1 move.
	if d := Distance(t1, t2); d != 1 {
		t.Errorf("Distance = %d, want 1", d)
	}
	// Remove one deep leaf from t2: sizes 2 vs 1 at depth 2.
	t3 := tree.MustNew([]int32{-1, 0, 0, 1})
	d := Distance(t1, t3)
	if d != 1 {
		t.Errorf("Distance = %d, want 1 (delete one leaf)", d)
	}
}

func TestDistanceDifferentHeights(t *testing.T) {
	// Path(4) vs Path(2): delete two deep nodes.
	if d := Distance(tree.Path(4), tree.Path(2)); d != 2 {
		t.Errorf("Distance(Path4, Path2) = %d, want 2", d)
	}
	// Single root vs full binary tree of height 2 (7 nodes): insert 6.
	if d := Distance(tree.Path(1), tree.FullKAry(2, 2)); d != 6 {
		t.Errorf("Distance(root, FullBinary2) = %d, want 6", d)
	}
	// Star(1) is a root plus one leaf: one fewer insert.
	if d := Distance(tree.Star(1), tree.FullKAry(2, 2)); d != 5 {
		t.Errorf("Distance(Star1, FullBinary2) = %d, want 5", d)
	}
}

func TestReportConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := tree.Random(rng, 1+rng.Intn(30), 4)
		b := tree.Random(rng, 1+rng.Intn(30), 4)
		rep := DistanceReport(a, b)
		if err := rep.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if rep.Distance != Distance(a, b) {
			t.Fatalf("case %d: report distance %d != Distance %d", i, rep.Distance, Distance(a, b))
		}
	}
}

// randomTreePair is a helper for property tests below.
func randomTree(rng *rand.Rand, maxN, maxD int) *tree.Tree {
	return tree.Random(rng, 1+rng.Intn(maxN), maxD)
}

func TestMetricIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a := randomTree(rng, 20, 4)
		b := randomTree(rng, 20, 4)
		d := Distance(a, b)
		iso := tree.Isomorphic(a, b)
		if (d == 0) != iso {
			t.Fatalf("case %d: distance %d but isomorphic=%v\nA:\n%s\nB:\n%s",
				i, d, iso, a.Pretty(), b.Pretty())
		}
	}
}

func TestMetricSymmetry(t *testing.T) {
	// Exact symmetry is guaranteed by the canonical pair orientation.
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		a := randomTree(rng, 25, 5)
		b := randomTree(rng, 25, 5)
		if d1, d2 := Distance(a, b), Distance(b, a); d1 != d2 {
			t.Fatalf("case %d: asymmetric %d vs %d\nA:\n%s\nB:\n%s",
				i, d1, d2, a.Pretty(), b.Pretty())
		}
	}
}

func TestMetricTriangleInequality(t *testing.T) {
	// The Definition-3 optimum satisfies the triangle inequality exactly
	// (§7.2); the Algorithm-1 value can exceed the optimum under matching
	// ties, so exact violations occur at a sub-percent rate (see the
	// package faithfulness note). Assert the measured rate stays tiny.
	rng := rand.New(rand.NewSource(17))
	const trials = 4000
	violations := 0
	for i := 0; i < trials; i++ {
		a := randomTree(rng, 18, 4)
		b := randomTree(rng, 18, 4)
		c := randomTree(rng, 18, 4)
		ab, bc, ac := Distance(a, b), Distance(b, c), Distance(a, c)
		if ac > ab+bc {
			violations++
		}
	}
	if rate := float64(violations) / trials; rate > 0.005 {
		t.Errorf("triangle violation rate %.4f exceeds 0.5%% (%d/%d)", rate, violations, trials)
	}
}

func TestMetricNonNegativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng, 30, 5)
		b := randomTree(rng, 30, 5)
		return Distance(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicityInK(t *testing.T) {
	// Lemma 5: truncating both trees to fewer levels cannot increase
	// TED*. Exact for the Definition-3 optimum; the Algorithm-1 value
	// violates it at ~1% of pairs through matching-tie artifacts, so the
	// test bounds the measured rate (using the fixed-orientation variant,
	// as the lemma's transformation direction requires).
	rng := rand.New(rand.NewSource(19))
	const trials = 2000
	violations := 0
	for i := 0; i < trials; i++ {
		a := randomTree(rng, 40, 6)
		b := randomTree(rng, 40, 6)
		prev := -1
		maxH := a.Height()
		if b.Height() > maxH {
			maxH = b.Height()
		}
		for k := 0; k <= maxH; k++ {
			d := DistanceOrdered(a.Truncate(k), b.Truncate(k))
			if prev >= 0 && d < prev {
				violations++
				break
			}
			prev = d
		}
	}
	if rate := float64(violations) / trials; rate > 0.03 {
		t.Errorf("monotonicity violation rate %.4f exceeds 3%% (%d/%d)", rate, violations, trials)
	}
}

func TestMonotonicityLowerBoundUse(t *testing.T) {
	// The §10 application: NED at small k lower-bounds NED at larger k,
	// which is what makes k-sweeps usable for tie-breaking. Verify on
	// trees whose level widths stay inside the exhaustive oracle's range,
	// where the optimum (and hence monotonicity) is certain.
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 100; i++ {
		a := tree.RandomShape(rng, []int{1, 3, 4, 4})
		b := tree.RandomShape(rng, []int{1, 2, 4, 3})
		d2 := Distance(a.Truncate(2), b.Truncate(2))
		d3 := Distance(a, b)
		// Allow equality; a decrease of more than the tie-artifact
		// magnitude would indicate a real bug.
		if d2 > d3+1 {
			t.Fatalf("case %d: k=2 distance %d far exceeds k=3 distance %d", i, d2, d3)
		}
	}
}

func TestWeightedUnitMatchesUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		a := randomTree(rng, 25, 4)
		b := randomTree(rng, 25, 4)
		want := float64(Distance(a, b))
		if got := WeightedDistance(a, b, UnitWeights{}); got != want {
			t.Fatalf("case %d: weighted unit %v != unweighted %v", i, got, want)
		}
		if got := WeightedDistance(a, b, nil); got != want {
			t.Fatalf("case %d: nil weights %v != unweighted %v", i, got, want)
		}
	}
}

func TestWeightedTriangleInequality(t *testing.T) {
	// Lemma 6: positive weights preserve the triangle inequality of the
	// Definition-3 optimum. As with the unweighted case the Algorithm-1
	// value carries tie artifacts, amplified by extreme weight ratios, so
	// the test bounds the measured violation rate.
	w := LevelWeights{PadW: []float64{1, 2.5, 0.5, 3}, MoveW: []float64{2, 1, 4, 0.25}}
	rng := rand.New(rand.NewSource(29))
	const trials = 2000
	violations := 0
	for i := 0; i < trials; i++ {
		a := randomTree(rng, 16, 3)
		b := randomTree(rng, 16, 3)
		c := randomTree(rng, 16, 3)
		ab := WeightedDistance(a, b, w)
		bc := WeightedDistance(b, c, w)
		ac := WeightedDistance(a, c, w)
		if ac > ab+bc+1e-9 {
			violations++
		}
	}
	if rate := float64(violations) / trials; rate > 0.01 {
		t.Errorf("weighted triangle violation rate %.4f exceeds 1%% (%d/%d)", rate, violations, trials)
	}
}

func TestUpperBoundWeightsAreMetricWeights(t *testing.T) {
	w := UpperBoundWeights{}
	for d := 0; d < 10; d++ {
		if w.Pad(d) <= 0 || w.Move(d) <= 0 {
			t.Fatalf("depth %d: non-positive weight", d)
		}
	}
	if w.Move(0) != 4 {
		t.Errorf("Move(0) = %v, want 4 (paper level 1)", w.Move(0))
	}
}

func BenchmarkDistanceSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t1 := tree.Random(rng, 50, 3)
	t2 := tree.Random(rng, 50, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(t1, t2)
	}
}

func BenchmarkDistanceWide(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	t1 := tree.RandomShape(rng, []int{1, 10, 100, 200})
	t2 := tree.RandomShape(rng, []int{1, 12, 90, 220})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(t1, t2)
	}
}
