package ted

import (
	"testing"

	"ned/internal/tree"
)

// TestProfiledBitIdenticalToOriented pins the profiled faithful-level
// fast path to the plain oriented computation, bit for bit: same
// distance, same outcome class, and the same value even on pruned and
// aborted evaluations, at every budget. The fast path's claim is not
// "equivalent answers" but "the identical computation reading
// precompiled data", so nothing weaker than full equality is accepted.
func TestProfiledBitIdenticalToOriented(t *testing.T) {
	trees := append(fuzzSeedTrees(t), randomTrees(100)...)
	in := tree.NewInterner()
	profiles := make([]*tree.Profile, len(trees))
	for i, tr := range trees {
		profiles[i] = in.Profile(tr)
	}
	cOriented, cProfiled := NewComputer(), NewComputer()
	pairs := 0
	for i, t1 := range trees {
		for j, t2 := range trees {
			if j > i+30 { // cap the quadratic sweep; pairs stay diverse
				break
			}
			p1, p2 := profiles[i], profiles[j]
			if p1.Canon == p2.Canon {
				continue // the cascade answers isomorphic pairs before TED*
			}
			a, b, pa, pb := t1, t2, p1, p2
			if profileSwapTest(a, b, pa, pb) {
				a, b, pa, pb = b, a, pb, pa
			}
			want := cOriented.Distance(a, b)
			for _, budget := range []int{Unbounded, want + 3, want, want - 1, want / 2, 1, 0} {
				wd, wout := cOriented.DistanceAtMostOriented(a, b, pa.Levels, pb.Levels, budget)
				gd, gout := cProfiled.DistanceAtMostProfiled(a, b, pa, pb, budget)
				if gd != wd || gout != wout {
					t.Fatalf("profiled (%d,%v) != oriented (%d,%v) at budget %d for %q vs %q",
						gd, gout, wd, wout, budget, tree.Encode(a), tree.Encode(b))
				}
			}
			pairs++
		}
	}
	t.Logf("checked %d pairs over %d trees", pairs, len(trees))
}

// TestProfiledQueryProfiles covers the query side: read-only profiles
// (possibly carrying unresolved local labels) against indexed resolved
// profiles must still be bit-identical to the oriented path — and a
// mutually-unresolved pair must fall back rather than compare
// incomparable local labels.
func TestProfiledQueryProfiles(t *testing.T) {
	indexed := randomTrees(40)
	in := tree.NewInterner()
	ip := make([]*tree.Profile, len(indexed))
	for i, tr := range indexed {
		ip[i] = in.Profile(tr)
	}
	// Query trees compiled read-only against the same dictionary: some
	// shapes resolve, novel ones get profile-local negative labels.
	queries := randomTrees(60)[20:]
	cOriented, cProfiled := NewComputer(), NewComputer()
	unresolved := 0
	for _, q := range queries {
		qp := in.ProfileQuery(q)
		if !qp.Resolved() {
			unresolved++
		}
		for i, tr := range indexed {
			p := ip[i]
			if qp.Canon == p.Canon {
				continue
			}
			a, b, pa, pb := q, tr, qp, p
			if profileSwapTest(a, b, pa, pb) {
				a, b, pa, pb = b, a, pb, pa
			}
			want := cOriented.Distance(a, b)
			for _, budget := range []int{Unbounded, want, want - 1, 0} {
				wd, wout := cOriented.DistanceAtMostOriented(a, b, pa.Levels, pb.Levels, budget)
				gd, gout := cProfiled.DistanceAtMostProfiled(a, b, pa, pb, budget)
				if gd != wd || gout != wout {
					t.Fatalf("query-profiled (%d,%v) != oriented (%d,%v) at budget %d for %q vs %q",
						gd, gout, wd, wout, budget, tree.Encode(a), tree.Encode(b))
				}
			}
		}
	}
	if unresolved == 0 {
		t.Fatalf("no unresolved query profile in the sweep; the local-label path went untested")
	}

	// Two unresolved profiles carry incomparable local labels; the fast
	// path must refuse them (fall back) and still produce exact results.
	other := tree.NewInterner()
	q1, q2 := tree.Caterpillar(5, 4), tree.Caterpillar(4, 5)
	u1, u2 := other.ProfileQuery(q1), other.ProfileQuery(q2)
	if u1.Resolved() || u2.Resolved() {
		t.Fatalf("expected both probe profiles unresolved against an empty dictionary")
	}
	want := cOriented.Distance(q1, q2) // orient(q1,q2) keeps this order or not; compare exact value only
	d, out := cProfiled.DistanceAtMostProfiled(q1, q2, u1, u2, Unbounded)
	if out != OutcomeExact || d != want {
		t.Fatalf("mutually-unresolved pair: got (%d,%v), want exact %d", d, out, want)
	}
}

// profileSwapTest mirrors the cascade's canonical pair orientation
// (size, height, then the trees' AHU encodings) for the tests.
func profileSwapTest(t1, t2 *tree.Tree, p1, p2 *tree.Profile) bool {
	switch {
	case p1.Size != p2.Size:
		return p1.Size > p2.Size
	case len(p1.Levels) != len(p2.Levels):
		return len(p1.Levels) > len(p2.Levels)
	default:
		return tree.Canonical(t1) > tree.Canonical(t2)
	}
}
