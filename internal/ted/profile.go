package ted

import "ned/internal/tree"

// This file is the bound side of the filter–verify cascade: lower
// bounds on TED* computed purely from precompiled tree.Profiles — no
// tree traversal, no canonization, no matching. The three tiers form a
// provable dominance chain
//
//	SizeBound <= PaddingBound <= LabelBound <= TED*
//
// so an index can evaluate them cheapest-first and stop at the first
// tier that exceeds its search threshold, while pruning stays exact:
// every tier lower-bounds the Definition-3 optimum, which Algorithm 1's
// value (the distance the indexes serve) never undershoots.
//
// Soundness arguments, per tier, against any edit script turning T1
// into T2 (insert leaf / delete leaf / move a node within its level):
//
//   - Size: each insert or delete changes the node count by exactly 1
//     and moves change nothing, so |n1-n2| ops are unavoidable.
//   - Padding: each insert or delete changes exactly one level's size
//     by 1 (no operation changes two levels' sizes at once), so the
//     per-level size gaps must be paid separately: Σ_d | |L_d(T1)| −
//     |L_d(T2)| | ops at least. Summing the per-level gaps dominates
//     the single global gap, hence Size <= Padding.
//   - Label multisets: give every node its subtree shape as a label
//     (interned corpus-wide, so equal labels <=> isomorphic subtrees)
//     and compare, per level, the two label multisets. One operation
//     perturbs each level's multiset by at most 4 elements: an insert
//     or delete adds/removes one leaf label at its own level (1) and
//     relabels the one ancestor sitting at each shallower level (2 per
//     level); a move relabels at most two nodes per shallower level —
//     the old and new parent chains (4 per level) — and nothing at or
//     below its own level, since the moved subtree is carried intact.
//     The symmetric difference D_d of level d's multisets is a metric,
//     so a script of m operations can bridge at most 4m of it:
//     m >= max_d ceil(D_d / 4). The tier takes the max with the padding
//     bound, which both guarantees the dominance chain and keeps the
//     tier useful when level sizes match but wiring differs (there
//     D_d > 0 while the padding bound is 0).
//
// PaddingBound is bit-identical to the tree-walking LowerBound on the
// profiled trees (property-tested in cascade_test.go); profiles simply
// make it two flat []int32 scans.

// SizeBound is tier 0 of the cascade: |size(T1) − size(T2)| from the
// precompiled profiles. Dominated by PaddingBound; costs two loads.
func SizeBound(a, b *tree.Profile) int {
	d := int(a.Size) - int(b.Size)
	if d < 0 {
		d = -d
	}
	return d
}

// PaddingBound is tier 1 of the cascade: the total padding cost
// Σ_d | |L_d(T1)| − |L_d(T2)| |, identical to LowerBound but read off
// the two precompiled level-size vectors in a single loop.
func PaddingBound(a, b *tree.Profile) int {
	la, lb := a.Levels, b.Levels
	if len(la) < len(lb) {
		la, lb = lb, la
	}
	bound := 0
	for d, n := range la {
		var m int32
		if d < len(lb) {
			m = lb[d]
		}
		diff := int(n) - int(m)
		if diff < 0 {
			diff = -diff
		}
		bound += diff
	}
	return bound
}

// LevelLabelTerm is the label-multiset half of tier 2: max over depths
// of ceil(D_d / 4), with D_d the symmetric difference between the two
// levels' interned subtree-label multisets (a linear merge of two
// sorted int32 runs per level). On its own it neither dominates nor is
// dominated by PaddingBound; LabelBound combines the two. Both
// profiles must come from the same tree.Interner.
func LevelLabelTerm(a, b *tree.Profile) int {
	maxDiff := int64(0)
	var offA, offB int32
	for d := 0; d < len(a.Levels) || d < len(b.Levels); d++ {
		var runA, runB []int32
		if d < len(a.Levels) {
			runA = a.Labels[offA : offA+a.Levels[d]]
			offA += a.Levels[d]
		}
		if d < len(b.Levels) {
			runB = b.Labels[offB : offB+b.Levels[d]]
			offB += b.Levels[d]
		}
		if diff := symmetricDifference(runA, runB); diff > maxDiff {
			maxDiff = diff
		}
	}
	return int((maxDiff + 3) / 4)
}

// LabelBound is tier 2 of the cascade: max(PaddingBound, LevelLabelTerm),
// a valid TED* lower bound that dominates the padding bound.
func LabelBound(a, b *tree.Profile) int {
	p := PaddingBound(a, b)
	if t := LevelLabelTerm(a, b); t > p {
		return t
	}
	return p
}
