package ted

import "ned/internal/tree"

// LowerBound returns a cheap lower bound on the TED* distance: the total
// padding cost Σ_i P_i = Σ_i | |L_i(T1)| − |L_i(T2)| |. Every edit script
// must pay each level's size difference in leaf insertions or deletions
// (no operation changes two levels' sizes at once), and matching costs
// are non-negative, so the bound is valid for the Definition-3 optimum
// and a fortiori for the Algorithm-1 value.
//
// The bound costs O(height) given the trees' level indexes — no
// canonization or matching — which makes it suitable for candidate
// pruning in similarity queries (see internal/ned's pruned search).
func LowerBound(t1, t2 *tree.Tree) int {
	maxD := t1.Height()
	if h := t2.Height(); h > maxD {
		maxD = h
	}
	lb := 0
	for d := 0; d <= maxD; d++ {
		diff := t1.LevelSize(d) - t2.LevelSize(d)
		if diff < 0 {
			diff = -diff
		}
		lb += diff
	}
	return lb
}

// SizeLowerBound returns the even cheaper |size(T1) − size(T2)| bound,
// which is dominated by LowerBound but needs only the node counts.
func SizeLowerBound(t1, t2 *tree.Tree) int {
	diff := t1.Size() - t2.Size()
	if diff < 0 {
		diff = -diff
	}
	return diff
}
