package ted

import (
	"testing"

	"ned/internal/tree"
)

// fuzzTreeSizeCap bounds the trees a fuzz iteration accepts: TED* is
// O(k·n³) in the worst case, and the fuzzer's job here is to explore
// shapes, not to time out on megabyte paths.
const fuzzTreeSizeCap = 120

// decodeFuzzTree parses a fuzz-supplied encoding, rejecting inputs the
// production parser rejects and inputs too large to fuzz productively.
func decodeFuzzTree(enc string) (*tree.Tree, bool) {
	if len(enc) > 4*fuzzTreeSizeCap {
		return nil, false
	}
	t, err := tree.Decode(enc)
	if err != nil || t.Size() > fuzzTreeSizeCap {
		return nil, false
	}
	return t, true
}

// FuzzTEDStarAxioms fuzzes the metric axioms of §7 on random tree
// triples: non-negativity, identity of indiscernibles against the AHU
// isomorphism oracle (δ = 0 iff isomorphic, Theorem §7.1), symmetry,
// and the triangle inequality. These are exactly the properties every
// metric index backend relies on for exact pruning, so a counterexample
// here means silently wrong query results everywhere.
func FuzzTEDStarAxioms(f *testing.F) {
	f.Add("", "", "")
	f.Add("0", "0,0", "0,1")
	f.Add("0,0,1,1,2", "0,0,0,1", "0,1,2,3")
	f.Add("0,0,1,1,2,2,3", "0,0,1,2,2", "0")
	f.Add("0,1,2,3,4,5", "0,0,0,0,0,0", "0,0,1,1")
	f.Fuzz(func(t *testing.T, e1, e2, e3 string) {
		t1, ok1 := decodeFuzzTree(e1)
		t2, ok2 := decodeFuzzTree(e2)
		t3, ok3 := decodeFuzzTree(e3)
		if !ok1 || !ok2 || !ok3 {
			return
		}
		d12 := Distance(t1, t2)
		d21 := Distance(t2, t1)
		d13 := Distance(t1, t3)
		d23 := Distance(t2, t3)

		if d12 < 0 || d13 < 0 || d23 < 0 {
			t.Fatalf("negative distance: d12=%d d13=%d d23=%d", d12, d13, d23)
		}
		for _, tr := range []*tree.Tree{t1, t2, t3} {
			if d := Distance(tr, tr); d != 0 {
				t.Fatalf("identity violated: d(t, t) = %d for %q", d, tree.Encode(tr))
			}
		}
		if iso := tree.Isomorphic(t1, t2); (d12 == 0) != iso {
			t.Fatalf("indiscernibility violated: d=%d, isomorphic=%v for %q vs %q",
				d12, iso, e1, e2)
		}
		if d12 != d21 {
			t.Fatalf("symmetry violated: d(t1,t2)=%d, d(t2,t1)=%d for %q vs %q",
				d12, d21, e1, e2)
		}
		if d13 > d12+d23 {
			t.Fatalf("triangle inequality violated: d(t1,t3)=%d > d(t1,t2)+d(t2,t3)=%d+%d for %q, %q, %q",
				d13, d12, d23, e1, e2, e3)
		}
	})
}

// FuzzDistanceAtMost fuzzes the budget contract every index backend
// builds its exactness on: OutcomeExact means the returned value IS the
// exact distance; any other outcome means both the returned value and
// the true distance exceed the budget, and the returned value never
// overshoots the true distance (it stays a valid lower bound).
func FuzzDistanceAtMost(f *testing.F) {
	f.Add("", "", 0)
	f.Add("0,0,1", "0,1", 1)
	f.Add("0,0,0,1,1", "0,1,2", 0)
	f.Add("0,0,1,1,2,2", "0,0,0,0", 3)
	f.Add("0,1,2,3", "0,0,1,1", -5)
	f.Add("0,0,1,2", "0", 1000)
	f.Fuzz(func(t *testing.T, e1, e2 string, budget int) {
		t1, ok1 := decodeFuzzTree(e1)
		t2, ok2 := decodeFuzzTree(e2)
		if !ok1 || !ok2 {
			return
		}
		if budget > Unbounded {
			budget = Unbounded
		}
		exact := Distance(t1, t2)
		c := NewComputer()
		d, out := c.DistanceAtMost(t1, t2, budget)
		switch out {
		case OutcomeExact:
			if d != exact {
				t.Fatalf("OutcomeExact returned %d, true distance %d (budget %d, %q vs %q)",
					d, exact, budget, e1, e2)
			}
		case OutcomePruned, OutcomeAborted:
			if d <= budget {
				t.Fatalf("outcome %v but d=%d <= budget=%d (%q vs %q)", out, d, budget, e1, e2)
			}
			if d > exact {
				t.Fatalf("outcome %v returned %d above the true distance %d (%q vs %q)",
					out, d, exact, e1, e2)
			}
			if exact <= budget {
				t.Fatalf("outcome %v at budget %d, but the true distance %d fits it (%q vs %q)",
					out, budget, exact, e1, e2)
			}
		default:
			t.Fatalf("unknown outcome %v", out)
		}
		// A Computer must stay reusable after budgeted aborts: the same
		// pair under no budget is exact again.
		if d2, out2 := c.DistanceAtMost(t1, t2, Unbounded); out2 != OutcomeExact || d2 != exact {
			t.Fatalf("Computer corrupted after budgeted call: got %d (%v), want %d", d2, out2, exact)
		}
	})
}
