package ted

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ned/internal/tree"
)

func TestLowerBoundIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1000; i++ {
		a := randomTree(rng, 30, 5)
		b := randomTree(rng, 30, 5)
		lb := LowerBound(a, b)
		d := Distance(a, b)
		if lb > d {
			t.Fatalf("case %d: lower bound %d > distance %d\nA:\n%s\nB:\n%s",
				i, lb, d, a.Pretty(), b.Pretty())
		}
	}
}

func TestLowerBoundExactOnPurePadding(t *testing.T) {
	// Stars differ only in level sizes: the bound is tight.
	if lb, d := LowerBound(tree.Star(3), tree.Star(8)), Distance(tree.Star(3), tree.Star(8)); lb != d {
		t.Errorf("stars: bound %d != distance %d", lb, d)
	}
	if lb := LowerBound(tree.Path(5), tree.Path(5)); lb != 0 {
		t.Errorf("identical paths: bound %d", lb)
	}
}

func TestSizeLowerBoundDominated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng, 25, 4)
		b := randomTree(rng, 25, 4)
		return SizeLowerBound(a, b) <= LowerBound(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng, 25, 4)
		b := randomTree(rng, 25, 4)
		return LowerBound(a, b) == LowerBound(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
