package ted

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ned/internal/tree"
)

// fuzzSeedTrees parses every checked-in fuzz seed under testdata/fuzz
// (all targets) and returns the trees their string inputs decode to, so
// property tests sweep exactly the shapes the fuzzers found interesting.
func fuzzSeedTrees(t *testing.T) []*tree.Tree {
	t.Helper()
	var out []*tree.Tree
	root := filepath.Join("testdata", "fuzz")
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			rest, ok := strings.CutPrefix(line, "string(")
			if !ok {
				continue
			}
			lit := strings.TrimSuffix(rest, ")")
			enc, err := strconv.Unquote(lit)
			if err != nil {
				continue
			}
			if tr, ok := decodeFuzzTree(enc); ok {
				out = append(out, tr)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	if len(out) < 5 {
		t.Fatalf("only %d fuzz seed trees found under %s", len(out), root)
	}
	return out
}

// randomTrees draws a deterministic mix of tree.Random shapes plus the
// adversarial generators (stars, paths, caterpillars).
func randomTrees(n int) []*tree.Tree {
	rng := rand.New(rand.NewSource(42))
	out := make([]*tree.Tree, 0, n+6)
	for i := 0; i < n; i++ {
		out = append(out, tree.Random(rng, 1+rng.Intn(60), 1+rng.Intn(6)))
	}
	out = append(out,
		tree.Star(12), tree.Star(25),
		tree.Path(9), tree.Path(14),
		tree.Caterpillar(4, 3), tree.FullKAry(2, 4),
	)
	return out
}

// TestCascadeDominance pins the monotone chain the filter–verify
// cascade relies on, over the checked-in fuzz seeds and random
// generated pairs:
//
//	SizeBound <= PaddingBound <= LabelBound <= exact TED*
//
// (tier 0 is the exported SizeLowerBound wired into the cascade; its
// profile form must agree with it). A violation anywhere would make a
// tier prune a candidate that belongs in the answer.
func TestCascadeDominance(t *testing.T) {
	trees := append(fuzzSeedTrees(t), randomTrees(120)...)
	in := tree.NewInterner()
	profiles := make([]*tree.Profile, len(trees))
	for i, tr := range trees {
		profiles[i] = in.Profile(tr)
	}
	pairs := 0
	for i, t1 := range trees {
		for j, t2 := range trees {
			if j > i+40 { // cap the quadratic sweep; pairs stay diverse
				break
			}
			p1, p2 := profiles[i], profiles[j]
			size := SizeBound(p1, p2)
			pad := PaddingBound(p1, p2)
			label := LabelBound(p1, p2)
			exact := Distance(t1, t2)
			if size != SizeLowerBound(t1, t2) {
				t.Fatalf("SizeBound=%d disagrees with SizeLowerBound=%d for %q vs %q",
					size, SizeLowerBound(t1, t2), tree.Encode(t1), tree.Encode(t2))
			}
			if size > pad || pad > label || label > exact {
				t.Fatalf("dominance chain broken: size=%d pad=%d label=%d exact=%d for %q vs %q",
					size, pad, label, exact, tree.Encode(t1), tree.Encode(t2))
			}
			pairs++
		}
	}
	t.Logf("checked %d pairs over %d trees (%d interned shapes)", pairs, len(trees), in.Len())
}

// TestProfilePaddingBitIdentical pins the profile-based padding bound
// to the tree-walking LowerBound, bit for bit, over the fuzz seeds and
// random pairs: the cascade's tier 1 must be the same number the §10
// pruning strategy always used, just read off two flat []int32.
func TestProfilePaddingBitIdentical(t *testing.T) {
	trees := append(fuzzSeedTrees(t), randomTrees(200)...)
	in := tree.NewInterner()
	profiles := make([]*tree.Profile, len(trees))
	for i, tr := range trees {
		profiles[i] = in.Profile(tr)
	}
	for i, t1 := range trees {
		for j, t2 := range trees {
			want := LowerBound(t1, t2)
			if got := PaddingBound(profiles[i], profiles[j]); got != want {
				t.Fatalf("PaddingBound=%d, LowerBound=%d for %q vs %q",
					got, want, tree.Encode(t1), tree.Encode(t2))
			}
		}
	}
}

// TestProfileOrientedMatchesDistance pins the profile-oriented budgeted
// entry to the string-oriented one: deciding the canonical orientation
// from profiles (size, height, interned AHU encoding) and skipping
// isomorphic pairs via the interned key must reproduce Distance exactly
// at every budget.
func TestProfileOrientedMatchesDistance(t *testing.T) {
	trees := randomTrees(80)
	in := tree.NewInterner()
	profiles := make([]*tree.Profile, len(trees))
	for i, tr := range trees {
		profiles[i] = in.Profile(tr)
	}
	c := NewComputer()
	for i, t1 := range trees {
		for j, t2 := range trees {
			p1, p2 := profiles[i], profiles[j]
			want := Distance(t1, t2)
			if (p1.Canon == p2.Canon) != tree.Isomorphic(t1, t2) {
				t.Fatalf("interned canon key equality disagrees with isomorphism for %q vs %q",
					tree.Encode(t1), tree.Encode(t2))
			}
			if p1.Canon == p2.Canon {
				if want != 0 {
					t.Fatalf("equal canon keys but distance %d", want)
				}
				continue
			}
			a, b, pa, pb := t1, t2, p1, p2
			if pa.Size > pb.Size ||
				(pa.Size == pb.Size && len(pa.Levels) > len(pb.Levels)) ||
				(pa.Size == pb.Size && len(pa.Levels) == len(pb.Levels) && tree.Canonical(a) > tree.Canonical(b)) {
				a, b, pa, pb = b, a, pb, pa
			}
			for _, budget := range []int{Unbounded, want, want - 1, want / 2, 0} {
				d, out := c.DistanceAtMostOriented(a, b, pa.Levels, pb.Levels, budget)
				if out == OutcomeExact {
					if d != want {
						t.Fatalf("oriented exact=%d, Distance=%d (budget %d)", d, want, budget)
					}
				} else if d <= budget || d > want {
					t.Fatalf("oriented outcome %v: d=%d budget=%d true=%d", out, d, budget, want)
				}
			}
		}
	}
}
